// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (§6) as testing.B benchmarks, one per artifact, plus
// ablation benches for the design choices called out in DESIGN.md §6.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The workloads are the laptop-scale defaults of internal/exp; the
// cmd/experiments binary runs the same harnesses with measured-vs-paper
// tables and a -full flag for near-paper scale.
package repro

import (
	"context"
	"fmt"
	"os"
	"testing"

	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/exp"
	"indaas/internal/faultgraph"
	"indaas/internal/pia"
	"indaas/internal/placement"
	"indaas/internal/psi"
	"indaas/internal/ranking"
	"indaas/internal/riskgroup"
	"indaas/internal/sia"
	"indaas/internal/topology"
)

// BenchmarkTable2PIA regenerates Table 2: the Jaccard ranking of two- and
// three-way redundancy deployments over the four key-value stores' package
// closures (§6.2.3), with exact cleartext set operations per iteration.
func BenchmarkTable2PIA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable2(exp.Table2Config{Protocol: pia.ProtocolCleartext})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2PIAPrivate runs the same audit through the real P-SOP
// protocol (512-bit keys).
func BenchmarkTable2PIAPrivate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable2(exp.Table2Config{Protocol: pia.ProtocolPSOP, Bits: 512})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Topologies regenerates Table 3: building the three
// fat-tree configurations and tallying their devices.
func BenchmarkTable3Topologies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunTable3()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6aNetworkAudit regenerates the §6.2.1 case study: 190
// two-way deployments audited by sampling + size ranking and by minimal RGs
// + probability ranking.
func BenchmarkFig6aNetworkAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig6a(exp.Fig6aConfig{Rounds: 20_000})
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6bHardwareAudit regenerates the §6.2.2 case study: correlated
// VM placement, audit, suggestion, re-deployment, re-audit.
func BenchmarkFig6bHardwareAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := exp.RunFig6b()
		if err != nil {
			b.Fatal(err)
		}
		if err := res.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}

// fig7Workload builds the Fig. 7 deployment graph for a k-port fat tree.
func fig7Workload(b *testing.B, k int) *faultgraph.Graph {
	b.Helper()
	ft, err := topology.FatTree(k)
	if err != nil {
		b.Fatal(err)
	}
	bld := faultgraph.NewBuilder()
	var servers []faultgraph.NodeID
	for pod := 0; pod < 2; pod++ {
		srv := topology.FatTreeServer(pod, 0, 0)
		routes, err := ft.RoutesToInternet(srv)
		if err != nil {
			b.Fatal(err)
		}
		var routeNodes []faultgraph.NodeID
		for ri, route := range routes {
			var devs []faultgraph.NodeID
			for _, d := range route {
				devs = append(devs, bld.Basic(d))
			}
			routeNodes = append(routeNodes, bld.Gate(fmt.Sprintf("%s r%d", srv, ri), faultgraph.OR, devs...))
		}
		servers = append(servers, bld.Gate(srv+" fails", faultgraph.AND, routeNodes...))
	}
	bld.SetTop(bld.Gate("deployment fails", faultgraph.AND, servers...))
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkFig7MinimalRG times the exact minimal RG algorithm on scaled
// Fig. 7 topologies (the paper's Fig. 7 x-axis is this computation's cost).
func BenchmarkFig7MinimalRG(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			g := fig7Workload(b, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if len(fam) == 0 {
					b.Fatal("no minimal RGs")
				}
			}
		})
	}
}

// BenchmarkFig7Sampling times the failure sampling algorithm at growing
// round counts and reports the detection rate against ground truth.
func BenchmarkFig7Sampling(b *testing.B) {
	g := fig7Workload(b, 8)
	truth, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, rounds := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				// Bias 0.97 per the Fig. 7 methodology (EXPERIMENTS.md).
				fam, err := riskgroup.Sampler{Rounds: rounds, Bias: 0.97, Shrink: true, Seed: int64(i + 1)}.Sample(g)
				if err != nil {
					b.Fatal(err)
				}
				rate = riskgroup.DetectionRate(truth, fam)
			}
			b.ReportMetric(100*rate, "%detected")
		})
	}
}

// fullBench gates the near-paper-scale benchmarks: the k=24 exact
// enumeration alone runs for tens of minutes, so it only executes when
// INDAAS_FULL_BENCH=1 (CI's bench smoke would otherwise time out).
func fullBench(b *testing.B) {
	b.Helper()
	if os.Getenv("INDAAS_FULL_BENCH") == "" {
		b.Skip("set INDAAS_FULL_BENCH=1 to run the near-paper-scale Fig. 7 points")
	}
}

// BenchmarkFig7FullMinimalRG extends BenchmarkFig7MinimalRG to the paper's
// Table 3 arities (the k=24 point mirrors the paper's 1046-minute run in
// miniature). Measured numbers live in PERFORMANCE.md.
func BenchmarkFig7FullMinimalRG(b *testing.B) {
	fullBench(b)
	for _, k := range []int{20, 24} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			g := fig7Workload(b, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
				if err != nil {
					b.Fatal(err)
				}
				if len(fam) == 0 {
					b.Fatal("no minimal RGs")
				}
			}
		})
	}
}

// BenchmarkFig7FullSampling runs the sampler at Fig. 7's upper round counts
// on the k=24 topology, where the exact algorithm is impractical — the
// paper's core accuracy/cost trade-off at near-paper scale.
func BenchmarkFig7FullSampling(b *testing.B) {
	fullBench(b)
	g := fig7Workload(b, 24)
	for _, rounds := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("rounds=%d", rounds), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fam, err := riskgroup.Sampler{Rounds: rounds, Bias: 0.97, Shrink: true, Seed: int64(i + 1)}.Sample(g)
				if err != nil {
					b.Fatal(err)
				}
				if len(fam) == 0 {
					b.Fatal("no RGs detected")
				}
			}
		})
	}
}

// benchPlacementDB builds an n-server pool for placement search: two
// servers per ToR, redundant cores, disks drawn from four shared batches —
// enough correlation structure that deployments genuinely differ.
func benchPlacementDB(b *testing.B, n int) (*depdb.DB, []string) {
	b.Helper()
	db := depdb.New()
	nodes := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("srv%03d", i+1)
		tor := fmt.Sprintf("ToR%d", i/2+1)
		if err := db.Put(
			deps.NewNetwork(name, "Internet", tor, "Core1"),
			deps.NewNetwork(name, "Internet", tor, "Core2"),
			deps.NewHardware(name, "Disk", fmt.Sprintf("batch-%d", i%4)),
		); err != nil {
			b.Fatal(err)
		}
		nodes[i] = name
	}
	return db, nodes
}

// BenchmarkPlacementSearch times the deployment-space search per strategy —
// the cost of one /v1/recommend job. The custom metric is candidate audits
// per second: how fast the batch-parallel evaluator shards fault-graph
// builds + minimal-RG runs across the worker pool.
func BenchmarkPlacementSearch(b *testing.B) {
	cases := []struct {
		strategy placement.Strategy
		n, r     int
	}{
		{placement.Exact, 12, 3},  // 220 candidates, the oracle regime
		{placement.Greedy, 48, 4}, // 4 rounds × ≤48 marginal audits
		{placement.Beam, 48, 4},   // width 12 over the same pool
	}
	for _, tc := range cases {
		name := fmt.Sprintf("strategy=%s/n=%d/r=%d", tc.strategy, tc.n, tc.r)
		b.Run(name, func(b *testing.B) {
			db, nodes := benchPlacementDB(b, tc.n)
			req := placement.Request{
				Nodes: nodes, Replicas: tc.r, Strategy: tc.strategy, TopK: 3,
			}
			b.ResetTimer()
			evaluated := 0
			for i := 0; i < b.N; i++ {
				res, err := placement.Search(context.Background(), db, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Top) == 0 {
					b.Fatal("no recommendation")
				}
				evaluated = res.Evaluated
			}
			b.ReportMetric(float64(evaluated), "audits/op")
			b.ReportMetric(float64(evaluated)*float64(b.N)/b.Elapsed().Seconds(), "audits/sec")
		})
	}
}

// benchSets builds k datasets of n elements with a 20% shared core.
func benchSets(k, n int) [][]string {
	sets := make([][]string, k)
	for i := range sets {
		set := make([]string, 0, n)
		for j := 0; j < n/5; j++ {
			set = append(set, fmt.Sprintf("pkg:shared-%d", j))
		}
		for j := n / 5; j < n; j++ {
			set = append(set, fmt.Sprintf("cloud%d/private-%d", i, j))
		}
		sets[i] = set
	}
	return sets
}

// benchProviders wraps benchSets as PIA providers.
func benchProviders(k, n int) []pia.Provider {
	sets := benchSets(k, n)
	out := make([]pia.Provider, k)
	for i := range out {
		out[i] = pia.Provider{Name: fmt.Sprintf("Cloud%d", i+1), Components: sets[i]}
	}
	return out
}

// benchComponents generates n labelled components.
func benchComponents(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s-%03d", prefix, i)
	}
	return out
}

// uniformProbs assigns probability p to every benchComponents member.
func uniformProbs(prefix string, n int, p float64) map[string]float64 {
	out := make(map[string]float64, n)
	for _, c := range benchComponents(prefix, n) {
		out[c] = p
	}
	return out
}

// benchBensonDB loads the Benson DC's candidate-rack routes into a DepDB.
func benchBensonDB(dc *topology.Topology) (*depdb.DB, error) {
	db := depdb.New()
	for _, rack := range topology.BensonCandidateRacks() {
		routes, err := dc.RoutesToInternet(rack)
		if err != nil {
			return nil, err
		}
		for _, r := range routes {
			if err := db.Put(deps.NewNetwork(rack, "Internet", r...)); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// BenchmarkFig8PSOP times the P-SOP protocol per (k, n) point of Fig. 8.
func BenchmarkFig8PSOP(b *testing.B) {
	for _, k := range []int{2, 4} {
		for _, n := range []int{100, 400} {
			b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
				sets := benchSets(k, n)
				b.ResetTimer()
				var bytes int64
				for i := 0; i < b.N; i++ {
					res, err := psi.PSOP(psi.PSOPConfig{Bits: 512}, sets)
					if err != nil {
						b.Fatal(err)
					}
					bytes = res.Stats.BytesSent
				}
				b.ReportMetric(float64(bytes)/1024, "KB-sent")
			})
		}
	}
}

// BenchmarkFig8KS times the Kissner-Song baseline per (k, n) point; note the
// quadratic growth in n versus P-SOP's linear growth.
func BenchmarkFig8KS(b *testing.B) {
	for _, k := range []int{2, 4} {
		for _, n := range []int{25, 100} {
			b.Run(fmt.Sprintf("k=%d/n=%d", k, n), func(b *testing.B) {
				sets := benchSets(k, n)
				b.ResetTimer()
				var bytes int64
				for i := 0; i < b.N; i++ {
					res, err := psi.KS(psi.KSConfig{Bits: 512, BlindBits: 64}, sets)
					if err != nil {
						b.Fatal(err)
					}
					bytes = res.Stats.BytesSent
				}
				b.ReportMetric(float64(bytes)/1024, "KB-sent")
			})
		}
	}
}

// BenchmarkFig9SIAvsPIA times each §6.3.3 method over all two-way
// deployments of 4 providers with 60-component sets.
func BenchmarkFig9SIAvsPIA(b *testing.B) {
	providers := benchProviders(4, 60)
	deployments := pia.AllPairs(4)
	graphFor := func(d pia.Deployment) *faultgraph.Graph {
		sources := make([]faultgraph.SourceSet, len(d))
		for i, idx := range d {
			sources[i] = faultgraph.SourceSet{Source: providers[idx].Name, Components: providers[idx].Components}
		}
		g, err := faultgraph.FromSourceSets("deployment fails", len(sources), sources)
		if err != nil {
			b.Fatal(err)
		}
		return g
	}
	b.Run("SIA-minimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range deployments {
				if _, err := riskgroup.MinimalRGs(graphFor(d), riskgroup.MinimalOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("SIA-sampling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, d := range deployments {
				if _, err := (riskgroup.Sampler{Rounds: 10_000, Seed: 1}).Sample(graphFor(d)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("PIA-P-SOP", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pia.AuditDeployments(pia.Config{Protocol: pia.ProtocolPSOP, Bits: 512}, providers, deployments); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PIA-KS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := pia.Config{Protocol: pia.ProtocolKS, Bits: 512, MinHashM: 32, KSBlindBits: 64}
			if _, err := pia.AuditDeployments(cfg, providers, deployments); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPrivateAuditBatch times one batched private audit — every pair
// of 6 providers with 200-component sets through P-SOP at 512 bits, one
// shared commutative group — across worker counts, reporting pairs/sec (the
// figure /v1/private-audits returns as pairs_per_sec). On a single-core
// host the worker counts tie and the row worth recording is the batch
// throughput itself; on an N-core host the pairs fan out N-wide.
func BenchmarkPrivateAuditBatch(b *testing.B) {
	providers := benchProviders(6, 200)
	deployments := pia.AllPairs(6)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := pia.AuditDeployments(
					pia.Config{Protocol: pia.ProtocolPSOP, Bits: 512, Workers: workers},
					providers, deployments)
				if err != nil {
					b.Fatal(err)
				}
				if len(rep.Entries) != len(deployments) {
					b.Fatal("short report")
				}
			}
			b.ReportMetric(float64(len(deployments))/(float64(b.Elapsed().Nanoseconds())/float64(b.N)/1e9), "pairs/sec")
		})
	}
}

// BenchmarkFig9Full runs the SIA-vs-PIA comparison at near-paper scale:
// paper key size (1024 bits), 10⁵ sampling rounds, provider counts up to 8.
// Two-way deployments run over 500-component sets; three-way deployments
// over 80-component sets, because the three-way minimal-RG family is the
// cross product of the private sets (n³ minimal risk groups per triple) —
// which is Fig. 9's own point about trusted-auditor SIA at the
// component-set level. Gated like the Fig. 7 full points; measured numbers
// live in PERFORMANCE.md:
//
//	INDAAS_FULL_BENCH=1 go test -run='^$' -bench=Fig9Full -benchtime=1x .
func BenchmarkFig9Full(b *testing.B) {
	fullBench(b)
	cases := []struct {
		name string
		cfg  exp.Fig9Config
	}{
		{"two-way", exp.Fig9Config{
			ProviderCounts: []int{4, 6, 8}, Elements: 500, Arities: []int{2},
			Rounds: 100_000, Bits: 1024, KSMinHashM: 32,
		}},
		{"three-way", exp.Fig9Config{
			ProviderCounts: []int{4, 6}, Elements: 80, Arities: []int{3},
			Rounds: 100_000, Bits: 1024, KSMinHashM: 32,
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := exp.RunFig9(tc.cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				for _, p := range res.Points {
					fmt.Printf("fig9full: %-12s m=%d arity=%d  %v\n", p.Method, p.Providers, p.Arity, p.Elapsed)
				}
				b.StartTimer()
			}
		})
	}
}

// --- ablation benches (DESIGN.md §6) ---------------------------------------

// BenchmarkAblationMinimizeCadence compares per-node absorption against
// final-only minimization in the exact algorithm. The workload is the k=4
// fat-tree deployment: without per-node absorption intermediate families
// grow as the raw product of route families (3^(k/2) per server — already
// 43M sets at k=8), which is precisely why the default minimizes
// aggressively at every node.
func BenchmarkAblationMinimizeCadence(b *testing.B) {
	g := fig7Workload(b, 4)
	b.Run("per-node", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("final-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{FinalMinimizeOnly: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSamplerShrink compares raw sampling with greedy shrink.
func BenchmarkAblationSamplerShrink(b *testing.B) {
	g := fig7Workload(b, 8)
	for _, shrink := range []bool{false, true} {
		b.Run(fmt.Sprintf("shrink=%v", shrink), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := (riskgroup.Sampler{Rounds: 20_000, Shrink: shrink, Seed: 1}).Sample(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSamplerWorkers sweeps the sampler's worker count on a
// fixed workload (0 = one goroutine per CPU). On a single-core host the
// parallel path degenerates gracefully; on multicore it scales the Fig. 7
// sampling wall clock down near-linearly.
func BenchmarkAblationSamplerWorkers(b *testing.B) {
	g := fig7Workload(b, 8)
	for _, workers := range []int{1, 2, 4, 0} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := riskgroup.Sampler{Rounds: 20_000, Bias: 0.97, Shrink: true, Seed: 1, Workers: workers}
				if _, err := s.Sample(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPSOPKeySize sweeps the commutative key size.
func BenchmarkAblationPSOPKeySize(b *testing.B) {
	sets := benchSets(2, 100)
	for _, bits := range []int{512, 1024, 2048} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := psi.PSOP(psi.PSOPConfig{Bits: bits}, sets); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationMinHashM sweeps the MinHash signature width used by PIA
// for large component-sets (accuracy rises with m; this measures the cost).
func BenchmarkAblationMinHashM(b *testing.B) {
	providers := benchProviders(2, 2000)
	for _, m := range []int{128, 512, 2048} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			cfg := pia.Config{Protocol: pia.ProtocolCleartext, MinHashM: m}
			for i := 0; i < b.N; i++ {
				if _, err := pia.AuditDeployments(cfg, providers, pia.AllPairs(2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationKarpLuby sweeps the sample count of the large-family
// Pr(T) estimator against the exact inclusion–exclusion baseline.
func BenchmarkAblationKarpLuby(b *testing.B) {
	// A weighted component-set deployment with a large minimal-RG family.
	sources := []faultgraph.SourceSet{
		{Source: "E1", Components: benchComponents("x", 40), Probs: uniformProbs("x", 40, 0.02)},
		{Source: "E2", Components: benchComponents("y", 40), Probs: uniformProbs("y", 40, 0.02)},
	}
	g, err := faultgraph.FromSourceSets("T", 2, sources)
	if err != nil {
		b.Fatal(err)
	}
	fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
	if err != nil {
		b.Fatal(err)
	}
	for _, samples := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("samples=%d", samples), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ranking.KarpLubyEstimate(g, fam, samples, 1)
			}
		})
	}
}

// BenchmarkSIABuildGraph times §4.1.1 graph construction from DepDB on the
// Benson DC (the fixed cost every audit pays before analysis).
func BenchmarkSIABuildGraph(b *testing.B) {
	dc := topology.BensonDC()
	db, err := benchBensonDB(dc)
	if err != nil {
		b.Fatal(err)
	}
	spec := sia.GraphSpec{Deployment: "pair", Servers: []string{"Rack5", "Rack29"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sia.BuildGraph(db, spec); err != nil {
			b.Fatal(err)
		}
	}
}
