// Weightedaudit (run with: go run ./examples/weightedaudit) demonstrates
// the paper's §5.1/§5.2 extensions implemented in this repository beyond
// the core INDaaS prototype:
//
//   - failure-probability acquisition: per-type device failure rates
//     estimated from incident logs (Gill et al. style) and CVSS-derived
//     package failure probabilities feed a probability-ranked audit;
//
//   - audit trails: each provider's PIA input is committed to with a signed
//     Merkle root, and a meta-audit catches a provider that under-declared
//     its component-set.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"indaas/internal/audittrail"
	"indaas/internal/core"
	"indaas/internal/deps"
	"indaas/internal/failprob"
	"indaas/internal/sia"
)

func main() {
	// --- §5.1: estimate failure probabilities -----------------------------
	// A year of incident logs over the device population: 6 of 40 ToRs and
	// 1 of 4 cores failed at least once.
	pop := failprob.Population{"ToR": 40, "Core": 4}
	emp, err := failprob.NewEmpirical(pop, 365*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	day := func(n int) time.Time {
		return time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
	}
	for i, ev := range []failprob.FailureEvent{
		{Device: "tor3", Type: "ToR"}, {Device: "tor7", Type: "ToR"},
		{Device: "tor12", Type: "ToR"}, {Device: "tor19", Type: "ToR"},
		{Device: "tor23", Type: "ToR"}, {Device: "tor31", Type: "ToR"},
		{Device: "core2", Type: "Core"},
	} {
		ev.At = day(30 * (i + 1))
		if err := emp.Observe(ev); err != nil {
			log.Fatal(err)
		}
	}
	cvss := failprob.NewCVSS()
	if err := cvss.SetScore("libssl1.0.0=1.0.1e", 9.8); err != nil { // Heartbleed-class
		log.Fatal(err)
	}
	if err := cvss.SetScore("zlib1g=1.2.8", 1.9); err != nil {
		log.Fatal(err)
	}
	assigner := &failprob.Assigner{
		TypeOf: func(comp string) string {
			switch {
			case len(comp) > 3 && comp[:3] == "tor":
				return "ToR"
			case len(comp) > 4 && comp[:4] == "core":
				return "Core"
			}
			return ""
		},
		Empirical: emp,
		CVSS:      cvss,
		Default:   0.02, // everything else: baseline hardware failure rate
	}
	for _, c := range []string{"tor3", "core1", "libssl1.0.0=1.0.1e", "srv-disk"} {
		fmt.Printf("estimated Pr(fail) %-22s = %.3f\n", c, assigner.Prob(c))
	}

	// --- probability-ranked audit -----------------------------------------
	auditor := core.NewAuditor()
	err = auditor.Register("sample", core.Static{
		deps.NewNetwork("S1", "Internet", "tor3", "core1"),
		deps.NewNetwork("S2", "Internet", "tor3", "core2"),
		deps.NewSoftware("Riak1", "S1", "libssl1.0.0=1.0.1e", "zlib1g=1.2.8"),
		deps.NewSoftware("Riak2", "S2", "libssl1.0.0=1.0.1e", "zlib1g=1.2.8"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := auditor.Acquire(); err != nil {
		log.Fatal(err)
	}
	rep, err := auditor.AuditAlternatives("weighted", []sia.GraphSpec{{
		Deployment: "S1+S2",
		Servers:    []string{"S1", "S2"},
		Prob:       assigner.Prob,
	}}, sia.Options{Algorithm: sia.MinimalRG, RankMode: sia.RankByProb})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := rep.Render(os.Stdout, 6); err != nil {
		log.Fatal(err)
	}

	// --- §5.2: audit trail --------------------------------------------------
	honest := []string{"pkg:libssl1.0.0=1.0.1e", "pkg:zlib1g=1.2.8", "c1/tor3"}
	signer, err := audittrail.NewSigner("Cloud1")
	if err != nil {
		log.Fatal(err)
	}
	commitment, err := signer.Commit("audit-2014-10", honest, time.Now())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCloud1 committed to %d components (signed Merkle root %x…)\n",
		commitment.Count, commitment.Root[:8])
	if err := audittrail.MetaAudit(commitment, honest); err != nil {
		log.Fatalf("honest reveal rejected: %v", err)
	}
	fmt.Println("meta-audit of the honest reveal: OK")
	if err := audittrail.MetaAudit(commitment, honest[:2]); err != nil {
		fmt.Printf("meta-audit of an under-declared reveal: caught (%v)\n", err)
	} else {
		log.Fatal("under-declared reveal was not caught")
	}
}
