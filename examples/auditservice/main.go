// Auditservice demonstrates the always-on audit daemon (§5 as a service):
// it starts an in-process `indaas serve` equivalent on a loopback port,
// drives 48 concurrent submissions from many simulated clients — several of
// them identical, so the content-addressed cache and in-flight coalescing
// collapse them onto a handful of computations — cancels a runaway job via
// the API, and prints the service metrics at the end.
//
//	go run ./examples/auditservice
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"indaas/internal/auditd"
	"indaas/internal/deps"
)

func records() []auditd.RecordWire {
	return auditd.WireRecords([]deps.Record{
		deps.NewNetwork("s1", "Internet", "ToR1", "Agg1", "Core1"),
		deps.NewNetwork("s1", "Internet", "ToR1", "Agg2", "Core2"),
		deps.NewNetwork("s2", "Internet", "ToR1", "Agg1", "Core1"),
		deps.NewNetwork("s2", "Internet", "ToR1", "Agg2", "Core2"),
		deps.NewNetwork("s3", "Internet", "ToR2", "Agg2", "Core2"),
		deps.NewHardware("s1", "Disk", "batch-7-SED900"),
		deps.NewHardware("s2", "Disk", "batch-7-SED900"),
		deps.NewHardware("s3", "Disk", "S3-SED900"),
		deps.NewSoftware("nginx", "s1", "libc6", "libssl3"),
		deps.NewSoftware("nginx", "s2", "libc6", "libssl3"),
		deps.NewSoftware("httpd", "s3", "libc6", "libapr1"),
	})
}

func main() {
	svc := auditd.New(auditd.Config{Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	fmt.Printf("audit service on %s (4 workers)\n", ts.URL)

	client := auditd.NewClient(ts.URL, http.DefaultClient)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// 48 concurrent clients, but only 3 distinct audits between them: the
	// deduplication machinery should run at most 3 computations.
	deployments := [][]auditd.DeploymentWire{
		{{Name: "s1+s2 (shared ToR)", Servers: []string{"s1", "s2"}}},
		{{Name: "s1+s3 (independent)", Servers: []string{"s1", "s3"}}},
		{
			{Name: "s1+s2", Servers: []string{"s1", "s2"}},
			{Name: "s1+s3", Servers: []string{"s1", "s3"}},
			{Name: "s2+s3", Servers: []string{"s2", "s3"}},
		},
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var ids []string
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := client.Submit(ctx, &auditd.SubmitRequest{
				Title:       fmt.Sprintf("client %02d", i),
				Records:     records(),
				Deployments: deployments[i%len(deployments)],
				FailureProb: 0.01,
			})
			if err != nil {
				log.Printf("client %02d: %v", i, err)
				return
			}
			mu.Lock()
			ids = append(ids, st.ID)
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	for _, id := range ids {
		st, err := client.WaitDone(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		if st.State != auditd.StateDone {
			log.Fatalf("job %s finished %s: %s", id, st.State, st.Error)
		}
	}
	fmt.Printf("48 concurrent submissions completed\n")

	// Fetch one report and show the ranking the clients care about.
	last, err := client.Report(ctx, ids[len(ids)-1])
	if err != nil {
		log.Fatal(err)
	}
	best, err := last.Best()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report %q ranks %q most independent (Pr(outage)=%.6f, %d unexpected RGs)\n",
		last.Title, best.Deployment, best.FailureProb, best.Unexpected)

	// Cancel a runaway job through the API: 2 billion sampling rounds
	// could never finish, but the DELETE frees its worker immediately.
	runaway, err := client.Submit(ctx, &auditd.SubmitRequest{
		Title:       "runaway",
		Records:     records(),
		Deployments: []auditd.DeploymentWire{{Name: "s1+s2", Servers: []string{"s1", "s2"}}},
		Algorithm:   "failure-sampling",
		Rounds:      2_000_000_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	st, err := client.Cancel(ctx, runaway.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runaway job %s: %s\n", runaway.ID, st.State)

	stats := svc.Stats()
	fmt.Printf("computations=%d cache-hits=%d coalesced=%d hit-rate=%.2f\n",
		stats.Computations, stats.CacheHits, stats.Coalesced, stats.HitRate())
	if err := svc.Shutdown(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("service drained cleanly")
}
