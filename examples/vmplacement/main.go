// Vmplacement reproduces the paper's second case study (§6.2.2, Fig. 6b):
// OpenStack's least-loaded scheduler silently places both replicas of a Riak
// store on the same physical server; the INDaaS audit catches the resulting
// size-1 risk groups before the service goes public, and the suggested
// re-deployment removes them.
//
//	go run ./examples/vmplacement
package main

import (
	"fmt"
	"log"
	"os"

	"indaas/internal/exp"
)

func main() {
	fmt.Println("deploying Riak on two VMs in the four-server lab cloud…")
	res, err := exp.RunFig6b()
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		fmt.Printf("\nWARNING: result deviates from the paper: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Printf("the scheduler put both replicas on %s — a single server whose\n", res.VM7Host)
	fmt.Println("failure would undermine the redundancy effort, exactly the risk the")
	fmt.Printf("audit's top-ranked groups expose. re-deploying per the report (%s)\n", res.Suggestion)
	fmt.Printf("leaves %d unexpected risk groups.\n", res.AfterUnexpected)
}
