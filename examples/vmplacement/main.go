// Vmplacement reproduces the paper's second case study (§6.2.2, Fig. 6b):
// OpenStack's least-loaded scheduler silently places both replicas of a Riak
// store on the same physical server; the INDaaS audit catches the resulting
// size-1 risk groups before the service goes public, and the suggested
// re-deployment removes them.
//
// A second act replays the same cloud with schedulers that consult the
// audit machinery *before* committing a placement: anti-affinity (the fix
// the paper's report motivates) avoids the shared host, and the
// independence scheduler — which delegates the host choice to the
// internal/placement engine — additionally avoids the shared switch.
//
//	go run ./examples/vmplacement
package main

import (
	"fmt"
	"log"
	"os"

	"indaas/internal/cloudsim"
	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/exp"
	"indaas/internal/sia"
)

func main() {
	fmt.Println("deploying Riak on two VMs in the four-server lab cloud…")
	res, err := exp.RunFig6b()
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		fmt.Printf("\nWARNING: result deviates from the paper: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Printf("the scheduler put both replicas on %s — a single server whose\n", res.VM7Host)
	fmt.Println("failure would undermine the redundancy effort, exactly the risk the")
	fmt.Printf("audit's top-ranked groups expose. re-deploying per the report (%s)\n", res.Suggestion)
	fmt.Printf("leaves %d unexpected risk groups.\n", res.AfterUnexpected)

	fmt.Println("\nreplaying the deployment with audit-aware schedulers:")
	for _, policy := range []string{"anti-affinity", "independence"} {
		hosts, unexpected, err := placeRiak(policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s VM7→%s VM8→%s  unexpected-RGs=%d\n",
			policy, hosts[0], hosts[1], unexpected)
	}
	fmt.Println("\nanti-affinity only forbids the shared host; the independence")
	fmt.Println("scheduler audits every candidate through the placement engine and")
	fmt.Println("crosses the switch boundary too — no migration ever needed.")
}

// placeRiak rebuilds the Fig. 6b cloud (same pre-existing load) and places
// the two Riak replicas with the given policy, returning their hosts and
// the unexpected-RG count of the resulting deployment's audit.
func placeRiak(policy string) ([2]string, int, error) {
	cloud := cloudsim.FourServerLab(1)
	for _, pin := range []struct{ vm, host string }{
		{"web-vm1", "Server1"}, {"web-vm2", "Server1"},
		{"batch-vm3", "Server3"}, {"batch-vm4", "Server3"},
		{"db-vm5", "Server4"}, {"db-vm6", "Server4"},
	} {
		if _, err := cloud.PlaceOn(pin.vm, pin.host); err != nil {
			return [2]string{}, 0, err
		}
	}
	var vm7, vm8 cloudsim.VM
	var err error
	switch policy {
	case "anti-affinity":
		if vm7, err = cloud.Place("VM7", "riak", cloudsim.AntiAffinity); err != nil {
			return [2]string{}, 0, err
		}
		vm8, err = cloud.Place("VM8", "riak", cloudsim.AntiAffinity)
	case "independence":
		sched := &cloudsim.IndependenceScheduler{Cloud: cloud}
		if vm7, err = sched.Place("VM7", "riak"); err != nil {
			return [2]string{}, 0, err
		}
		vm8, err = sched.Place("VM8", "riak")
	default:
		return [2]string{}, 0, fmt.Errorf("unknown policy %q", policy)
	}
	if err != nil {
		return [2]string{}, 0, err
	}
	unexpected, err := auditRiak(cloud)
	if err != nil {
		return [2]string{}, 0, err
	}
	return [2]string{vm7.Host, vm8.Host}, unexpected, nil
}

// auditRiak runs the §6.2.2 audit over the deployed pair and returns the
// unexpected-RG count.
func auditRiak(cloud *cloudsim.Cloud) (int, error) {
	db := depdb.New()
	for _, vm := range []string{"VM7", "VM8"} {
		records, err := cloud.DependencyRecords(vm)
		if err != nil {
			return 0, err
		}
		if err := db.Put(records...); err != nil {
			return 0, err
		}
	}
	spec := sia.GraphSpec{
		Deployment: "riak",
		Servers:    []string{"VM7", "VM8"},
		Kinds:      []deps.Kind{deps.KindNetwork, deps.KindHardware},
	}
	g, err := sia.BuildGraph(db, spec)
	if err != nil {
		return 0, err
	}
	audit, err := sia.Audit(g, spec, sia.Options{Algorithm: sia.MinimalRG, RankMode: sia.RankBySize})
	if err != nil {
		return 0, err
	}
	return audit.Unexpected, nil
}
