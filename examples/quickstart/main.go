// Quickstart: audit the independence of a two-way redundant storage service
// (the Fig. 2 / Fig. 3 sample system) in a dozen lines.
//
//	go run ./examples/quickstart
//
// The deployment replicates state across servers S1 and S2. Both servers sit
// behind the same top-of-rack switch and both run software linked against
// the same libc — the audit surfaces both as unexpected risk groups, then
// shows how an alternative placement compares.
package main

import (
	"fmt"
	"log"
	"os"

	"indaas/internal/core"
	"indaas/internal/deps"
	"indaas/internal/sia"
)

func main() {
	auditor := core.NewAuditor()

	// In production these records come from acquisition modules (NSDMiner,
	// lshw, apt-rdepends); here they are the paper's Fig. 3 sample.
	err := auditor.Register("sample", core.Static{
		deps.NewNetwork("S1", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("S1", "Internet", "ToR1", "Core2"),
		deps.NewNetwork("S2", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("S2", "Internet", "ToR1", "Core2"),
		deps.NewHardware("S1", "CPU", "S1-Intel(R)X5550@2.6GHz"),
		deps.NewHardware("S1", "Disk", "S1-SED900"),
		deps.NewHardware("S2", "CPU", "S2-Intel(R)X5550@2.6GHz"),
		deps.NewHardware("S2", "Disk", "S2-SED900"),
		deps.NewSoftware("QueryEngine1", "S1", "libc6", "libgcc1"),
		deps.NewSoftware("Riak1", "S1", "libc6", "libsvn1"),
		deps.NewSoftware("QueryEngine2", "S2", "libc6", "libgcc1"),
		deps.NewSoftware("Riak2", "S2", "libc6", "libsvn1"),
		// An alternative server in another rack, for comparison.
		deps.NewNetwork("S3", "Internet", "ToR2", "Core1"),
		deps.NewNetwork("S3", "Internet", "ToR2", "Core2"),
		deps.NewHardware("S3", "CPU", "S3-AMD-Opteron6272@2.1GHz"),
		deps.NewHardware("S3", "Disk", "S3-ST2000DM001"),
		deps.NewSoftware("QueryEngine3", "S3", "musl", "libgcc1"),
		deps.NewSoftware("Riak3", "S3", "musl", "libsvn1"),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := auditor.Acquire(); err != nil {
		log.Fatal(err)
	}

	// Audit the deployed configuration and an alternative.
	rep, err := auditor.AuditAlternatives("quickstart", []sia.GraphSpec{
		{Deployment: "S1+S2 (same rack)", Servers: []string{"S1", "S2"}},
		{Deployment: "S1+S3 (cross rack)", Servers: []string{"S1", "S3"}},
	}, sia.Options{Algorithm: sia.MinimalRG, RankMode: sia.RankBySize})
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.Render(os.Stdout, 8); err != nil {
		log.Fatal(err)
	}

	best, err := rep.Best()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmost independent deployment: %s (%d unexpected risk groups)\n",
		best.Deployment, best.Unexpected)
}
