// Agentservice demonstrates the full networked deployment of Fig. 1/Fig. 5
// on one machine: two data source servers, an auditing agent, an auditing
// client, and — for the private path — three PIA proxies running the P-SOP
// ring protocol over TCP.
//
//	go run ./examples/agentservice
package main

import (
	"fmt"
	"log"

	"indaas/internal/agent"
	"indaas/internal/deps"
)

func main() {
	// --- SIA over the network (Fig. 5a) ------------------------------------
	src1, err := agent.NewSource("127.0.0.1:0", agent.StaticAcquirer{
		deps.NewNetwork("S1", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("S2", "Internet", "ToR1", "Core2"),
		deps.NewHardware("S1", "Disk", "S1-disk"),
		deps.NewHardware("S2", "Disk", "S2-disk"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer src1.Close()
	src2, err := agent.NewSource("127.0.0.1:0", agent.StaticAcquirer{
		deps.NewNetwork("S3", "Internet", "ToR2", "Core1"),
		deps.NewNetwork("S4", "Internet", "ToR3", "Core2"),
		deps.NewHardware("S3", "Disk", "S3-disk"),
		deps.NewHardware("S4", "Disk", "S4-disk"),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer src2.Close()

	ag, err := agent.NewAgent("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ag.Close()
	fmt.Printf("data sources on %s and %s, auditing agent on %s\n",
		src1.Addr(), src2.Addr(), ag.Addr())

	client, err := agent.NewClient(ag.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Audit(agent.AuditRequest{
		Title:   "networked audit",
		Sources: []string{src1.Addr(), src2.Addr()},
		Deployments: []agent.DeploymentSpec{
			{Name: "same-rack", Servers: []string{"S1", "S2"}},
			{Name: "cross-rack", Servers: []string{"S3", "S4"}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSIA report (via agent):")
	for i, a := range resp.Audits {
		fmt.Printf("  #%d %-12s unexpected-RGs=%d score=%.1f\n", i+1, a.Deployment, a.Unexpected, a.Score)
		for _, rg := range a.RGs {
			fmt.Printf("       RG %v\n", rg)
		}
	}

	// --- PIA over the network (Fig. 5b) ------------------------------------
	sets := [][]string{
		{"pkg:libssl=1.0.1k", "pkg:libc6=2.19", "cloudA/lb", "cloudA/db"},
		{"pkg:libssl=1.0.1k", "pkg:libc6=2.19", "cloudB/router"},
		{"pkg:libc6=2.19", "cloudC/cache", "cloudC/queue"},
	}
	var proxyAddrs []string
	for i, s := range sets {
		px, err := agent.NewProxy("127.0.0.1:0", s)
		if err != nil {
			log.Fatal(err)
		}
		defer px.Close()
		proxyAddrs = append(proxyAddrs, px.Addr())
		fmt.Printf("\nPIA proxy for cloud %c on %s (%d components, kept private)", 'A'+i, px.Addr(), len(s))
	}
	fmt.Println()

	inter, union, err := agent.SupervisePSOP("demo-run", proxyAddrs, 1024)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nP-SOP over TCP: |∩| = %d, |∪| = %d, 3-way Jaccard = %.4f\n",
		inter, union, float64(inter)/float64(union))
	fmt.Println("the supervisor saw only commutatively encrypted blobs — no cloud's")
	fmt.Println("component list ever left its proxy in cleartext.")
}
