// Privateaudit reproduces the paper's third case study (§6.2.3 and Table 2)
// through the served PIA flow: four clouds — each running a different
// key-value store — register their software dependency closures with an
// audit service, then ask which redundancy deployment shares the fewest
// packages, without any cloud's package list ever appearing in an audit
// request or response.
//
//	go run ./examples/privateaudit [-cleartext] [-bits N]
//
// The walk-through exercises the full /v1 surface: POST /v1/providers to
// register each dataset (the service answers with a content fingerprint,
// never echoing components), POST /v1/private-audits referencing the
// datasets by name, and a second identical submission that is answered from
// the content-addressed cache — fingerprints match, so no protocol rounds
// run at all.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"

	"flag"

	"indaas/internal/auditd"
	"indaas/internal/swpkg"
)

func main() {
	cleartext := flag.Bool("cleartext", false, "skip the private protocol (trusted-auditor baseline)")
	bits := flag.Int("bits", 512, "commutative key size for P-SOP (paper: 1024)")
	flag.Parse()

	svc := auditd.New(auditd.Config{Workers: 2})
	defer svc.Shutdown(context.Background())
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := auditd.NewClient(ts.URL, http.DefaultClient)
	ctx := context.Background()

	// Each cloud registers its apt-rdepends package closure once. The
	// service stores the normalized set and publishes only a fingerprint.
	u, roots := swpkg.KeyValueStoreUniverse()
	for i, root := range roots {
		ids, err := u.ClosureIDs(root)
		if err != nil {
			log.Fatal(err)
		}
		comps := make([]string, len(ids))
		for j, id := range ids {
			comps[j] = "pkg:" + id // §4.2.3 normalization: name+version
		}
		info, err := client.RegisterProvider(ctx, fmt.Sprintf("Cloud%d", i+1), comps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("registered %-6s (%s): %4d packages, fingerprint %.12s…\n",
			info.Name, root, info.Components, info.Fingerprint)
	}

	protocol := "p-sop"
	if *cleartext {
		protocol = "cleartext"
	}
	// Every two-way pair plus every three-way deployment, in one batched
	// job. Providers are referenced by name only.
	req := &auditd.PrivateAuditRequest{
		Title: "Table 2 redundancy deployments",
		Providers: []auditd.ProviderWire{
			{Name: "Cloud1"}, {Name: "Cloud2"}, {Name: "Cloud3"}, {Name: "Cloud4"},
		},
		Deployments: [][]string{
			{"Cloud1", "Cloud2"}, {"Cloud1", "Cloud3"}, {"Cloud1", "Cloud4"},
			{"Cloud2", "Cloud3"}, {"Cloud2", "Cloud4"}, {"Cloud3", "Cloud4"},
			{"Cloud1", "Cloud2", "Cloud3"}, {"Cloud1", "Cloud2", "Cloud4"},
			{"Cloud1", "Cloud3", "Cloud4"}, {"Cloud2", "Cloud3", "Cloud4"},
		},
		Protocol: protocol,
		Bits:     *bits,
	}
	fmt.Printf("\nsubmitting private audit (%s, %d deployments)…\n", protocol, len(req.Deployments))
	st, err := client.PrivateAudit(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	if st, err = client.WaitDone(ctx, st.ID); err != nil {
		log.Fatal(err)
	}
	if st.State != auditd.StateDone {
		log.Fatalf("job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	res, err := client.PrivateAuditResult(ctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}

	// Render the ranking next to the paper's Table 2 values and verify both
	// agree (±0.0035 — see internal/exp for why a tolerance is inherent).
	paper := swpkg.Table2Paper()
	fmt.Printf("\nrank  deployment                  Jaccard  paper\n")
	for i, e := range res.Entries {
		var idx []string
		for _, name := range e.Providers {
			idx = append(idx, strings.TrimPrefix(name, "Cloud"))
		}
		sort.Strings(idx)
		want := paper[strings.Join(idx, "+")]
		got := math.NaN()
		if e.Jaccard != nil {
			got = *e.Jaccard
		}
		fmt.Printf("#%-4d %-27s %.4f   %.4f\n", i+1, strings.Join(e.Providers, " & "), got, want)
		if math.Abs(got-want) > 0.0035 {
			fmt.Printf("\nWARNING: J(%s) deviates from the paper\n", strings.Join(idx, "+"))
			os.Exit(1)
		}
	}
	fmt.Printf("all %d similarities match the paper's Table 2 (%d bytes on the wire)\n",
		res.Pairs, res.BytesSent)

	// Resubmit the identical audit: the cache key is built from the dataset
	// fingerprints, so the service answers instantly without rerunning a
	// single protocol round.
	before := svc.Stats()
	st2, err := client.PrivateAudit(ctx, req)
	if err != nil {
		log.Fatal(err)
	}
	after := svc.Stats()
	if after.Computations != before.Computations && st2.State == auditd.StateDone {
		log.Fatalf("expected a cache hit, but computations went %d → %d", before.Computations, after.Computations)
	}
	fmt.Printf("\nresubmitted: job %s answered %s from cache (computations still %d, cache hits %d)\n",
		st2.ID, st2.State, after.Computations, after.CacheHits)
}
