// Privateaudit reproduces the paper's third case study (§6.2.3, Fig. 6c and
// Table 2): a service provider choosing among four clouds — each running a
// different key-value store — asks PIA which redundancy deployment shares
// the fewest software dependencies, without any cloud revealing its package
// list to anyone.
//
//	go run ./examples/privateaudit [-cleartext] [-bits N]
//
// By default the Jaccard similarities are computed through the P-SOP
// private set intersection cardinality protocol; -cleartext switches to the
// trusted-auditor baseline (instant, same numbers).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"indaas/internal/exp"
	"indaas/internal/pia"
)

func main() {
	cleartext := flag.Bool("cleartext", false, "skip the private protocol (trusted-auditor baseline)")
	bits := flag.Int("bits", 512, "commutative key size for P-SOP (paper: 1024)")
	flag.Parse()

	cfg := exp.Table2Config{Protocol: pia.ProtocolPSOP, Bits: *bits}
	if *cleartext {
		cfg.Protocol = pia.ProtocolCleartext
	}
	fmt.Printf("running PIA over Riak/MongoDB/Redis/CouchDB package closures (%s)…\n",
		cfg.Protocol)
	res, err := exp.RunTable2(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		fmt.Printf("\nWARNING: result deviates from the paper: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Printf("best two-way deployment:   %s (J = %.4f)\n", res.TwoWay[0].Clouds, res.TwoWay[0].Measured)
	fmt.Printf("best three-way deployment: %s (J = %.4f)\n", res.ThreeWay[0].Clouds, res.ThreeWay[0].Measured)
	fmt.Println("both rankings match the paper's Table 2.")
}
