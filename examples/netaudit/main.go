// Netaudit reproduces the paper's first case study (§6.2.1, Fig. 6a): a data
// center operator wants to replicate a service across two racks and uses
// INDaaS to find the placement with no hidden common network dependency.
//
//	go run ./examples/netaudit [-rounds N]
//
// The run audits all 190 two-way deployments over the 20 candidate racks of
// the Benson-style topology, prints the most independent placements, and
// cross-checks with the failure-probability analysis at p = 0.1.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"indaas/internal/exp"
)

func main() {
	rounds := flag.Int("rounds", 200_000, "failure sampling rounds (paper: 1e6)")
	flag.Parse()

	fmt.Println("auditing 190 candidate two-way deployments on the Benson-style DC…")
	res, err := exp.RunFig6a(exp.Fig6aConfig{Rounds: *rounds})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Render().Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		fmt.Printf("\nWARNING: result deviates from the paper: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("\nall §6.2.1 numbers reproduced: without auditing, a random placement")
	fmt.Printf("avoids correlated failures only %.0f%% of the time; INDaaS identifies\n", 100*res.RandomSuccess)
	fmt.Printf("%s as the uniquely safest placement (Pr(outage) = %.6f at p = 0.1).\n",
		res.ProbBest, res.ProbBestProb)
}
