// Placement walks the independence-maximizing deployment recommender over
// the Fig. 6b lab cloud (§6.2.2): one probe VM per physical server turns
// "where should two Riak replicas go?" into a choose-2-of-4 search, the
// exact/greedy/beam strategies agree on the cross-switch optimum, and the
// same search then runs as a job on an in-process audit service through
// POST /v1/depdb + POST /v1/recommend — the full product surface of
// internal/placement.
//
//	go run ./examples/placement
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"indaas/internal/auditd"
	"indaas/internal/cloudsim"
	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/placement"
	"indaas/internal/sia"
)

func main() {
	// The Fig. 6b substrate: Server1/Server2 behind Switch1, Server3/Server4
	// behind Switch2, both switches through redundant cores. One probe VM
	// per server models "a Riak replica hosted there".
	cloud := cloudsim.FourServerLab(1)
	db := depdb.New()
	var pool []string
	for _, srv := range cloud.Servers {
		probe := "riak@" + srv.Name
		if _, err := cloud.PlaceOn(probe, srv.Name); err != nil {
			log.Fatal(err)
		}
		records, err := cloud.DependencyRecords(probe)
		if err != nil {
			log.Fatal(err)
		}
		if err := db.Put(records...); err != nil {
			log.Fatal(err)
		}
		pool = append(pool, probe)
	}
	fmt.Printf("candidate pool: %s\n\n", strings.Join(pool, ", "))

	// All three strategies over the same evaluator.
	ctx := context.Background()
	base := placement.Request{
		Nodes:    pool,
		Replicas: 2,
		TopK:     3,
		Kinds:    []deps.Kind{deps.KindNetwork, deps.KindHardware},
		Audit:    sia.Options{Algorithm: sia.MinimalRG, RankMode: sia.RankBySize},
	}
	for _, strat := range []placement.Strategy{placement.Exact, placement.Greedy, placement.Beam} {
		req := base
		req.Strategy = strat
		res, err := placement.Search(ctx, db, req)
		if err != nil {
			log.Fatal(err)
		}
		top := res.Top[0]
		// Evaluated counts every audit run, partial deployments included —
		// greedy/beam pay a few extra small audits to skip most of the
		// C(n, r) space.
		fmt.Printf("%-6s ran %2d candidate audits (space: %d deployments) → %s  (size-1 RGs: %d)\n",
			strat, res.Evaluated, res.TotalCandidates,
			strings.Join(top.Nodes, " + "), size1(top.Score.SizeVector))
	}
	fmt.Println("\nall strategies cross the switch boundary — a same-switch pair would")
	fmt.Println("inherit the {Switch} size-1 risk group the §6.2.2 audit flags.")

	// The same search as a service job: push the records, then recommend.
	svc := auditd.New(auditd.Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := auditd.NewClient(ts.URL, http.DefaultClient)
	cctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()

	ingest, err := client.Ingest(cctx, auditd.WireRecords(db.Records()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserved on %s: ingested %d records (fingerprint %.12s…)\n",
		ts.URL, ingest.Added, ingest.Fingerprint)

	st, err := client.Recommend(cctx, &auditd.RecommendRequest{
		Title:    "riak replica placement",
		Replicas: 2,
		TopK:     3,
		Strategy: "exact",
		Kinds:    []string{"network", "hardware"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := client.WaitDone(cctx, st.ID); err != nil {
		log.Fatal(err)
	}
	res, err := client.RecommendResult(cctx, st.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s ranked %d deployments:\n", st.ID, len(res.Rankings))
	for _, r := range res.Rankings {
		fmt.Printf("  #%d %-28s RGs=%d size-1=%d score=%.2f\n",
			r.Rank, strings.Join(r.Nodes, " + "), r.RGCount, size1(r.SizeVector), r.Score)
	}

	// Identical searches are content-addressed: resubmitting is a cache hit.
	again, err := client.Recommend(cctx, &auditd.RecommendRequest{
		Title:    "same question, different asker",
		Replicas: 2,
		TopK:     3,
		Strategy: "exact",
		Kinds:    []string{"network", "hardware"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmission: state=%s cached=%v\n", again.State, again.Cached)

	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := svc.Shutdown(shutdownCtx); err != nil {
		log.Fatal(err)
	}
}

func size1(sizeVector []int) int {
	if len(sizeVector) == 0 {
		return 0
	}
	return sizeVector[0]
}
