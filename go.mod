module indaas

go 1.22
