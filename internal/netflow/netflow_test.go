package netflow

import (
	"strings"
	"testing"

	"indaas/internal/deps"
	"indaas/internal/topology"
)

func fatTree4(t *testing.T) *topology.Topology {
	t.Helper()
	ft, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	return ft
}

func TestInternetFlowsDeterministicAndRouted(t *testing.T) {
	g := &Generator{Topo: fatTree4(t)}
	srv := topology.FatTreeServer(0, 0, 0)
	flows, err := g.InternetFlows(srv, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 50 {
		t.Fatalf("flows = %d", len(flows))
	}
	again, err := g.InternetFlows(srv, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if strings.Join(flows[i].Path, ",") != strings.Join(again[i].Path, ",") {
			t.Fatal("flow routing not deterministic")
		}
	}
	routes, err := g.Topo.RoutesToInternet(srv)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{}
	for _, r := range routes {
		valid[strings.Join(r, ",")] = true
	}
	for _, f := range flows {
		if !valid[strings.Join(f.Path, ",")] {
			t.Errorf("flow took a non-existent route %v", f.Path)
		}
	}
}

func TestInternetFlowsUnknownServer(t *testing.T) {
	g := &Generator{Topo: fatTree4(t)}
	if _, err := g.InternetFlows("ghost", 5); err == nil {
		t.Error("unknown server accepted")
	}
}

func TestMineRecoversAllRoutes(t *testing.T) {
	g := &Generator{Topo: fatTree4(t)}
	srv := topology.FatTreeServer(1, 0, 1)
	flows, err := g.InternetFlows(srv, 400)
	if err != nil {
		t.Fatal(err)
	}
	m := &Miner{MinFlows: 2}
	recs := m.Mine(flows)
	cov, err := Coverage(g.Topo, srv, recs)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 1 {
		t.Errorf("coverage with 400 flows = %v, want 1 (k=4 has only 4 routes)", cov)
	}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid mined record: %v", err)
		}
		if r.Network.Src != srv || r.Network.Dst != "Internet" {
			t.Errorf("mined record endpoints: %+v", r.Network)
		}
	}
}

func TestMineCoverageGrowsWithFlows(t *testing.T) {
	// On a larger tree, few flows cover few routes; more flows cover more.
	ft, err := topology.FatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	g := &Generator{Topo: ft}
	srv := topology.FatTreeServer(0, 0, 0)
	m := &Miner{}
	coverages := make([]float64, 0, 3)
	for _, n := range []int{4, 32, 2000} {
		flows, err := g.InternetFlows(srv, n)
		if err != nil {
			t.Fatal(err)
		}
		cov, err := Coverage(ft, srv, m.Mine(flows))
		if err != nil {
			t.Fatal(err)
		}
		coverages = append(coverages, cov)
	}
	if !(coverages[0] < coverages[2]) {
		t.Errorf("coverage not growing: %v", coverages)
	}
	if coverages[2] != 1 {
		t.Errorf("2000 flows over 16 routes should reach full coverage, got %v", coverages[2])
	}
}

func TestMineThreshold(t *testing.T) {
	flows := []Flow{
		{Src: "a", Dst: "Internet", Path: []string{"x"}},
		{Src: "a", Dst: "Internet", Path: []string{"x"}},
		{Src: "a", Dst: "Internet", Path: []string{"y"}}, // seen once: filtered
	}
	m := &Miner{MinFlows: 2}
	recs := m.Mine(flows)
	if len(recs) != 1 || recs[0].Network.Route[0] != "x" {
		t.Errorf("threshold mining = %v", recs)
	}
}

func TestServerFlows(t *testing.T) {
	g := &Generator{Topo: fatTree4(t)}
	flows, err := g.ServerFlows(topology.FatTreeServer(0, 0, 0), topology.FatTreeServer(1, 0, 0), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 100 {
		t.Fatalf("flows = %d", len(flows))
	}
	// All paths are cross-pod: 5 hops.
	for _, f := range flows {
		if len(f.Path) != 5 {
			t.Errorf("cross-pod flow path %v", f.Path)
		}
	}
	recs := (&Miner{}).Mine(flows)
	if len(recs) == 0 || len(recs) > 4 {
		t.Errorf("mined %d distinct routes, want 1..4", len(recs))
	}
}

func TestCoverageIgnoresOtherServers(t *testing.T) {
	ft := fatTree4(t)
	srv := topology.FatTreeServer(0, 0, 0)
	other := deps.NewNetwork(topology.FatTreeServer(0, 0, 1), "Internet", "tor0_0", "agg0_0", "core0_0")
	cov, err := Coverage(ft, srv, []deps.Record{other})
	if err != nil {
		t.Fatal(err)
	}
	if cov != 0 {
		t.Errorf("coverage counted another server's records: %v", cov)
	}
}
