// Package netflow simulates traffic-based network dependency acquisition —
// the paper's NSDMiner module (§3, [31,46]).
//
// NSDMiner discovers network dependencies by observing traffic flows. Here,
// a Generator routes simulated service traffic over a topology (hashing
// flows across redundant routes like ECMP) and records flow observations;
// the Miner aggregates observations back into Table 1 network dependency
// records. The mining code path — flows in, per-server route dependencies
// out — matches the real tool's shape; only the capture source is synthetic
// (see DESIGN.md §1.3).
package netflow

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"indaas/internal/deps"
	"indaas/internal/topology"
)

// Flow is one observed traffic flow with the network path it took.
type Flow struct {
	Src     string   // source endpoint (server)
	Dst     string   // destination endpoint (server or "Internet")
	SrcPort int      // ephemeral source port (drives ECMP hashing)
	Bytes   int      // payload size observed
	Path    []string // devices traversed
}

// Generator produces flows for services running on a topology.
type Generator struct {
	Topo *topology.Topology
}

// InternetFlows emits n flows from server to the Internet, spreading them
// across the server's redundant routes by ECMP-style hashing of the
// 5-tuple. Flows are deterministic in (server, n).
func (g *Generator) InternetFlows(server string, n int) ([]Flow, error) {
	routes, err := g.Topo.RoutesToInternet(server)
	if err != nil {
		return nil, err
	}
	if len(routes) == 0 {
		return nil, fmt.Errorf("netflow: server %q has no routes", server)
	}
	out := make([]Flow, 0, n)
	for i := 0; i < n; i++ {
		port := 32768 + i
		route := routes[ecmpHash(server, "Internet", port)%uint32(len(routes))]
		out = append(out, Flow{
			Src: server, Dst: "Internet", SrcPort: port,
			Bytes: 512 + (i%7)*128,
			Path:  append([]string(nil), route...),
		})
	}
	return out, nil
}

// ServerFlows emits n flows between two fat-tree servers across their
// redundant paths.
func (g *Generator) ServerFlows(src, dst string, n int) ([]Flow, error) {
	routes, err := topology.ServerToServerRoutes(g.Topo, src, dst)
	if err != nil {
		return nil, err
	}
	out := make([]Flow, 0, n)
	for i := 0; i < n; i++ {
		port := 32768 + i
		route := routes[ecmpHash(src, dst, port)%uint32(len(routes))]
		out = append(out, Flow{
			Src: src, Dst: dst, SrcPort: port,
			Bytes: 1024 + (i%5)*256,
			Path:  append([]string(nil), route...),
		})
	}
	return out, nil
}

func ecmpHash(src, dst string, port int) uint32 {
	h := fnv.New32a()
	h.Write([]byte(src))
	h.Write([]byte{0})
	h.Write([]byte(dst))
	h.Write([]byte{0})
	h.Write([]byte{byte(port), byte(port >> 8)})
	return h.Sum32()
}

// Miner aggregates flow observations into network dependency records.
type Miner struct {
	// MinFlows is the minimum number of flows that must traverse a route
	// before it is reported as a dependency (NSDMiner's noise filter).
	MinFlows int
}

// Mine returns one Table 1 network record per (src, dst, route) triple
// observed at least MinFlows times. Records are sorted by src, dst, route
// for deterministic output.
func (m *Miner) Mine(flows []Flow) []deps.Record {
	minFlows := m.MinFlows
	if minFlows <= 0 {
		minFlows = 1
	}
	type key struct {
		src, dst, route string
	}
	counts := make(map[key]int)
	paths := make(map[key][]string)
	for _, f := range flows {
		k := key{f.Src, f.Dst, strings.Join(f.Path, ",")}
		counts[k]++
		if _, ok := paths[k]; !ok {
			paths[k] = append([]string(nil), f.Path...)
		}
	}
	keys := make([]key, 0, len(counts))
	for k, c := range counts {
		if c >= minFlows {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		if keys[i].dst != keys[j].dst {
			return keys[i].dst < keys[j].dst
		}
		return keys[i].route < keys[j].route
	})
	out := make([]deps.Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, deps.NewNetwork(k.src, k.dst, paths[k]...))
	}
	return out
}

// Coverage reports the fraction of a server's true routes to the Internet
// that appear in the mined records — the "~90% of relevant dependencies"
// metric of §6.
func Coverage(t *topology.Topology, server string, mined []deps.Record) (float64, error) {
	routes, err := t.RoutesToInternet(server)
	if err != nil {
		return 0, err
	}
	truth := make(map[string]bool, len(routes))
	for _, r := range routes {
		truth[strings.Join(r, ",")] = true
	}
	if len(truth) == 0 {
		return 1, nil
	}
	found := 0
	seen := map[string]bool{}
	for _, rec := range mined {
		if rec.Kind != deps.KindNetwork || rec.Network.Src != server {
			continue
		}
		k := strings.Join(rec.Network.Route, ",")
		if truth[k] && !seen[k] {
			seen[k] = true
			found++
		}
	}
	return float64(found) / float64(len(truth)), nil
}
