package deps

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// This file implements the XML wire format of Table 1. The paper writes
// dependency records as attribute-only elements:
//
//	<network src="S1" dst="Internet" route="ToR1,Core1"/>
//	<hardware hw="S1" type="CPU" dep="S1-Intel(R)X5550@2.6GHz"/>
//	<software pgm="Riak1" hw="S1" dep="libc6,libsvn1"/>
//
// A document is a <dependencies> element containing any number of records.

type xmlNetwork struct {
	XMLName xml.Name `xml:"network"`
	Src     string   `xml:"src,attr"`
	Dst     string   `xml:"dst,attr"`
	Route   string   `xml:"route,attr"`
}

type xmlHardware struct {
	XMLName xml.Name `xml:"hardware"`
	HW      string   `xml:"hw,attr"`
	Type    string   `xml:"type,attr"`
	Dep     string   `xml:"dep,attr"`
}

type xmlSoftware struct {
	XMLName xml.Name `xml:"software"`
	Pgm     string   `xml:"pgm,attr"`
	HW      string   `xml:"hw,attr"`
	Dep     string   `xml:"dep,attr"`
}

type xmlDocument struct {
	XMLName  xml.Name      `xml:"dependencies"`
	Network  []xmlNetwork  `xml:"network"`
	Hardware []xmlHardware `xml:"hardware"`
	Software []xmlSoftware `xml:"software"`
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// EncodeXML writes records as an indented XML document.
func EncodeXML(w io.Writer, records []Record) error {
	doc := xmlDocument{}
	for i, r := range records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("deps: record %d: %w", i, err)
		}
		switch r.Kind {
		case KindNetwork:
			doc.Network = append(doc.Network, xmlNetwork{
				Src: r.Network.Src, Dst: r.Network.Dst, Route: strings.Join(r.Network.Route, ","),
			})
		case KindHardware:
			doc.Hardware = append(doc.Hardware, xmlHardware{
				HW: r.Hardware.HW, Type: r.Hardware.Type, Dep: r.Hardware.Dep,
			})
		case KindSoftware:
			doc.Software = append(doc.Software, xmlSoftware{
				Pgm: r.Software.Pgm, HW: r.Software.HW, Dep: strings.Join(r.Software.Dep, ","),
			})
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("deps: encode: %w", err)
	}
	if err := enc.Close(); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// DecodeXML parses an XML document produced by EncodeXML (or hand-written in
// the same schema) back into records. Record order within each kind is
// preserved; kinds are returned grouped network, hardware, software.
func DecodeXML(r io.Reader) ([]Record, error) {
	var doc xmlDocument
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("deps: decode: %w", err)
	}
	var out []Record
	for _, n := range doc.Network {
		rec := NewNetwork(n.Src, n.Dst, splitList(n.Route)...)
		if err := rec.Validate(); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	for _, h := range doc.Hardware {
		rec := NewHardware(h.HW, h.Type, h.Dep)
		if err := rec.Validate(); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	for _, s := range doc.Software {
		rec := NewSoftware(s.Pgm, s.HW, splitList(s.Dep)...)
		if err := rec.Validate(); err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}
