package deps

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := []struct {
		k    Kind
		want string
	}{
		{KindNetwork, "network"},
		{KindHardware, "hardware"},
		{KindSoftware, "software"},
		{Kind(42), "Kind(42)"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.k), got, c.want)
		}
	}
}

func TestKindFromString(t *testing.T) {
	for _, k := range []Kind{KindNetwork, KindHardware, KindSoftware} {
		got, err := KindFromString(k.String())
		if err != nil || got != k {
			t.Errorf("KindFromString(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if got, err := KindFromString("  Network "); err != nil || got != KindNetwork {
		t.Errorf("KindFromString with spaces/case = %v, %v", got, err)
	}
	if _, err := KindFromString("bogus"); err == nil {
		t.Error("KindFromString(bogus) should fail")
	}
}

func TestRecordValidate(t *testing.T) {
	valid := []Record{
		NewNetwork("S1", "Internet", "ToR1", "Core1"),
		NewNetwork("S1", "Internet"), // empty route is allowed (direct link)
		NewHardware("S1", "CPU", "S1-Intel(R)X5550@2.6GHz"),
		NewSoftware("Riak1", "S1", "libc6", "libsvn1"),
		NewSoftware("Riak1", "S1"), // program with no package deps
	}
	for i, r := range valid {
		if err := r.Validate(); err != nil {
			t.Errorf("valid record %d rejected: %v", i, err)
		}
	}
	invalid := []Record{
		{Kind: KindNetwork}, // missing payload
		{Kind: KindHardware, Network: &Network{Src: "a", Dst: "b"}}, // wrong payload
		NewNetwork("", "Internet", "x"),                             // missing src
		NewNetwork("S1", "", "x"),                                   // missing dst
		NewNetwork("S1", "Internet", ""),                            // empty route hop
		NewHardware("", "CPU", "m"),                                 // missing hw
		NewHardware("S1", "", "m"),                                  // missing type
		NewHardware("S1", "CPU", ""),                                // missing dep
		NewSoftware("", "S1", "libc6"),                              // missing pgm
		NewSoftware("Riak", "", "libc6"),                            // missing hw
		NewSoftware("Riak", "S1", ""),                               // empty dep
		{Kind: Kind(9)},                                             // unknown kind
		{Kind: KindNetwork, Network: &Network{Src: "a", Dst: "b"}, Hardware: &Hardware{}}, // extra payload
	}
	for i, r := range invalid {
		if err := r.Validate(); err == nil {
			t.Errorf("invalid record %d accepted: %v", i, r)
		}
	}
}

func TestRecordSubject(t *testing.T) {
	cases := []struct {
		r    Record
		want string
	}{
		{NewNetwork("S1", "Internet", "ToR1"), "S1"},
		{NewHardware("S2", "Disk", "S2-SED900"), "S2"},
		{NewSoftware("Riak1", "S3", "libc6"), "S3"},
		{Record{Kind: KindNetwork}, ""},
	}
	for i, c := range cases {
		if got := c.r.Subject(); got != c.want {
			t.Errorf("case %d: Subject() = %q, want %q", i, got, c.want)
		}
	}
}

func TestRecordComponents(t *testing.T) {
	cases := []struct {
		r    Record
		want []string
	}{
		{NewNetwork("S1", "Internet", "ToR1", "Core1"), []string{"ToR1", "Core1"}},
		{NewHardware("S1", "CPU", "m1"), []string{"m1"}},
		{NewSoftware("Riak1", "S1", "libc6", "libsvn1"), []string{"Riak1", "libc6", "libsvn1"}},
	}
	for i, c := range cases {
		if got := c.r.Components(); !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d: Components() = %v, want %v", i, got, c.want)
		}
	}
}

func TestRecordString(t *testing.T) {
	r := NewNetwork("S1", "Internet", "ToR1", "Core1")
	want := `<src="S1" dst="Internet" route="ToR1,Core1"/>`
	if got := r.String(); got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	h := NewHardware("S1", "CPU", "S1-X5550")
	if !strings.Contains(h.String(), `type="CPU"`) {
		t.Errorf("hardware String() missing type: %s", h.String())
	}
	s := NewSoftware("Riak1", "S1", "libc6")
	if !strings.Contains(s.String(), `pgm="Riak1"`) {
		t.Errorf("software String() missing pgm: %s", s.String())
	}
}

func TestRecordEqual(t *testing.T) {
	a := NewNetwork("S1", "Internet", "ToR1", "Core1")
	b := NewNetwork("S1", "Internet", "ToR1", "Core1")
	c := NewNetwork("S1", "Internet", "ToR1", "Core2")
	if !a.Equal(b) {
		t.Error("identical network records not Equal")
	}
	if a.Equal(c) {
		t.Error("different routes compare Equal")
	}
	if a.Equal(NewHardware("S1", "CPU", "m")) {
		t.Error("different kinds compare Equal")
	}
	s1 := NewSoftware("P", "S1", "x", "y")
	s2 := NewSoftware("P", "S1", "x", "y")
	s3 := NewSoftware("P", "S1", "y", "x")
	if !s1.Equal(s2) || s1.Equal(s3) {
		t.Error("software Equal mismatch")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	records := []Record{
		NewNetwork("S1", "Internet", "ToR1", "Core1"),
		NewNetwork("S1", "Internet", "ToR1", "Core2"),
		NewNetwork("S2", "Internet", "ToR1", "Core1"),
		NewHardware("S1", "CPU", "S1-Intel(R)X5550@2.6GHz"),
		NewHardware("S1", "Disk", "S1-SED900"),
		NewSoftware("QueryEngine1", "S1", "libc6", "libgcc1"),
		NewSoftware("Riak1", "S1", "libc6", "libsvn1"),
	}
	var buf bytes.Buffer
	if err := EncodeXML(&buf, records); err != nil {
		t.Fatalf("EncodeXML: %v", err)
	}
	got, err := DecodeXML(&buf)
	if err != nil {
		t.Fatalf("DecodeXML: %v", err)
	}
	if len(got) != len(records) {
		t.Fatalf("round trip length %d, want %d", len(got), len(records))
	}
	for i := range records {
		if !records[i].Equal(got[i]) {
			t.Errorf("record %d: got %v, want %v", i, got[i], records[i])
		}
	}
}

func TestXMLEncodeRejectsInvalid(t *testing.T) {
	var buf bytes.Buffer
	err := EncodeXML(&buf, []Record{{Kind: KindNetwork}})
	if err == nil {
		t.Fatal("EncodeXML accepted an invalid record")
	}
}

func TestXMLDecodeHandWritten(t *testing.T) {
	doc := `<?xml version="1.0"?>
<dependencies>
  <network src="S1" dst="Internet" route="ToR1, Core1 "/>
  <hardware hw="S1" type="CPU" dep="S1-X5550"/>
  <software pgm="Riak1" hw="S1" dep="libc6,libsvn1"/>
  <software pgm="Solo" hw="S2" dep=""/>
</dependencies>`
	got, err := DecodeXML(strings.NewReader(doc))
	if err != nil {
		t.Fatalf("DecodeXML: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d records, want 4", len(got))
	}
	if !got[0].Equal(NewNetwork("S1", "Internet", "ToR1", "Core1")) {
		t.Errorf("route list not trimmed: %v", got[0])
	}
	if got[3].Software == nil || len(got[3].Software.Dep) != 0 {
		t.Errorf("empty dep list should decode to no deps: %v", got[3])
	}
}

func TestXMLDecodeMalformed(t *testing.T) {
	if _, err := DecodeXML(strings.NewReader("this is not xml")); err == nil {
		t.Error("DecodeXML accepted garbage")
	}
	if _, err := DecodeXML(strings.NewReader(`<dependencies><network src="" dst="d"/></dependencies>`)); err == nil {
		t.Error("DecodeXML accepted record with empty src")
	}
}

func TestXMLRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	word := func() string {
		letters := "abcdefghijklmnopqrstuvwxyzABC0123456789._-()@/"
		n := 1 + rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = letters[rng.Intn(len(letters))]
		}
		return string(b)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var records []Record
		n := 1 + r.Intn(20)
		for i := 0; i < n; i++ {
			switch r.Intn(3) {
			case 0:
				var route []string
				for j := 0; j < r.Intn(5); j++ {
					route = append(route, word())
				}
				records = append(records, NewNetwork(word(), word(), route...))
			case 1:
				records = append(records, NewHardware(word(), word(), word()))
			default:
				var dep []string
				for j := 0; j < r.Intn(6); j++ {
					dep = append(dep, word())
				}
				records = append(records, NewSoftware(word(), word(), dep...))
			}
		}
		// XML grouping by kind: compare kind-grouped order.
		sort.SliceStable(records, func(i, j int) bool { return records[i].Kind < records[j].Kind })
		var buf bytes.Buffer
		if err := EncodeXML(&buf, records); err != nil {
			return false
		}
		got, err := DecodeXML(&buf)
		if err != nil || len(got) != len(records) {
			return false
		}
		for i := range records {
			if !records[i].Equal(got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestComponentSetOps(t *testing.T) {
	a := NewComponentSet("x", "y", "z")
	b := NewComponentSet("y", "z", "w")
	if got := a.Intersect(b).Sorted(); !reflect.DeepEqual(got, []string{"y", "z"}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b).Sorted(); !reflect.DeepEqual(got, []string{"w", "x", "y", "z"}) {
		t.Errorf("Union = %v", got)
	}
	if a.Len() != 3 || !a.Contains("x") || a.Contains("w") {
		t.Error("basic set ops broken")
	}
	a.Add("w")
	if !a.Contains("w") {
		t.Error("Add failed")
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		sets []ComponentSet
		want float64
	}{
		{nil, 0},
		{[]ComponentSet{NewComponentSet()}, 0},
		{[]ComponentSet{NewComponentSet("a", "b")}, 1},
		{[]ComponentSet{NewComponentSet("a", "b"), NewComponentSet("b", "c")}, 1.0 / 3.0},
		{[]ComponentSet{NewComponentSet("a"), NewComponentSet("b")}, 0},
		{[]ComponentSet{NewComponentSet("a", "b", "c"), NewComponentSet("a", "b", "c")}, 1},
		{[]ComponentSet{NewComponentSet("a", "b"), NewComponentSet("a", "c"), NewComponentSet("a", "d")}, 0.25},
	}
	for i, c := range cases {
		if got := Jaccard(c.sets...); got != c.want {
			t.Errorf("case %d: Jaccard = %v, want %v", i, got, c.want)
		}
	}
}

func TestJaccardProperties(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := make(ComponentSet), make(ComponentSet)
		for _, x := range xs {
			a.Add(string(rune('a' + x%26)))
		}
		for _, y := range ys {
			b.Add(string(rune('a' + y%26)))
		}
		j := Jaccard(a, b)
		if j < 0 || j > 1 {
			return false
		}
		// Symmetry.
		if Jaccard(b, a) != j {
			return false
		}
		// Identity.
		if a.Len() > 0 && Jaccard(a, a) != 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizer(t *testing.T) {
	n := NewNormalizer("cloud1")
	if err := n.AddRouter("isp-gw", "203.0.113.7"); err != nil {
		t.Fatalf("AddRouter: %v", err)
	}
	if err := n.AddRouter("bad", "not-an-ip"); err == nil {
		t.Error("AddRouter accepted an invalid IP")
	}
	n.AddSharedPackage("libssl=1.0.1")

	if got := n.Router("isp-gw"); got != "router:203.0.113.7" {
		t.Errorf("Router(isp-gw) = %q", got)
	}
	if got := n.Router("tor-17"); got != "cloud1/tor-17" {
		t.Errorf("Router(tor-17) = %q", got)
	}
	if got := n.Package("libssl=1.0.1"); got != "pkg:libssl=1.0.1" {
		t.Errorf("Package(shared) = %q", got)
	}
	if got := n.Package("internal-lib=2"); got != "cloud1/internal-lib=2" {
		t.Errorf("Package(private) = %q", got)
	}
	if !IsShared("router:203.0.113.7") || !IsShared("pkg:x=1") || IsShared("cloud1/x") {
		t.Error("IsShared misclassifies")
	}
}

func TestNormalizerComponentSetFromRecords(t *testing.T) {
	n := NewNormalizer("c1")
	if err := n.AddRouter("core1", "198.51.100.1"); err != nil {
		t.Fatal(err)
	}
	n.AddSharedPackage("libc6=2.19")
	records := []Record{
		NewNetwork("S1", "Internet", "tor1", "core1"),
		NewHardware("S1", "Disk", "S1-SED900"),
		NewSoftware("Riak", "S1", "libc6=2.19", "riak-core=1.4"),
	}
	set := n.ComponentSetFromRecords(records)
	want := []string{"c1/S1-SED900", "c1/riak-core=1.4", "c1/tor1", "pkg:libc6=2.19", "router:198.51.100.1"}
	if got := set.Sorted(); !reflect.DeepEqual(got, want) {
		t.Errorf("ComponentSetFromRecords = %v, want %v", got, want)
	}
	// Two providers sharing the third-party router and package overlap only
	// on those.
	n2 := NewNormalizer("c2")
	if err := n2.AddRouter("edge9", "198.51.100.1"); err != nil {
		t.Fatal(err)
	}
	n2.AddSharedPackage("libc6=2.19")
	set2 := n2.ComponentSetFromRecords([]Record{
		NewNetwork("X", "Internet", "edge9"),
		NewSoftware("Redis", "X", "libc6=2.19"),
	})
	inter := set.Intersect(set2).Sorted()
	if !reflect.DeepEqual(inter, []string{"pkg:libc6=2.19", "router:198.51.100.1"}) {
		t.Errorf("cross-provider intersection = %v", inter)
	}
}
