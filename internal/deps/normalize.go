package deps

import (
	"fmt"
	"net"
	"strings"
)

// Normalization (§4.2.3): before private auditing, each provider maps its
// component identifiers into a shared namespace so that the *same* third-party
// component held by different providers compares equal, while provider-private
// components keep provider-qualified names. The paper normalizes two classes:
//
//  1. third-party routing elements, identified by their accessible IP address;
//  2. third-party software packages, identified by name plus version.
//
// A Normalizer carries the provider name (used to qualify private components)
// and a directory of third-party identities.

// Normalizer rewrites raw component identifiers into the shared namespace.
type Normalizer struct {
	// Provider qualifies identifiers that are private to this provider.
	Provider string
	// RouterIPs maps a locally-known router name to its public IP address.
	// Routers without an entry are treated as provider-internal.
	RouterIPs map[string]string
	// SharedPackages marks package identifiers (name=version) that come from
	// a public distribution and therefore normalize to themselves. Packages
	// not listed are treated as provider-internal builds.
	SharedPackages map[string]bool
}

// NewNormalizer returns a Normalizer for the named provider.
func NewNormalizer(provider string) *Normalizer {
	return &Normalizer{
		Provider:       provider,
		RouterIPs:      make(map[string]string),
		SharedPackages: make(map[string]bool),
	}
}

// AddRouter registers a third-party router's public IP. The IP must parse.
func (n *Normalizer) AddRouter(name, ip string) error {
	if net.ParseIP(ip) == nil {
		return fmt.Errorf("deps: router %q has invalid IP %q", name, ip)
	}
	n.RouterIPs[name] = ip
	return nil
}

// AddSharedPackage registers a package identifier as publicly shared.
func (n *Normalizer) AddSharedPackage(id string) { n.SharedPackages[id] = true }

// Router normalizes a routing element: third-party routers become
// "router:<ip>", internal ones "<provider>/<name>".
func (n *Normalizer) Router(name string) string {
	if ip, ok := n.RouterIPs[name]; ok {
		return "router:" + ip
	}
	return n.private(name)
}

// Package normalizes a software package identifier (expected "name=version"
// or a bare name): shared packages become "pkg:<id>", internal ones
// "<provider>/<id>".
func (n *Normalizer) Package(id string) string {
	if n.SharedPackages[id] {
		return "pkg:" + id
	}
	return n.private(id)
}

func (n *Normalizer) private(id string) string {
	if n.Provider == "" {
		return id
	}
	return n.Provider + "/" + id
}

// ComponentSetFromRecords extracts the normalized component-set of a set of
// dependency records (§4.2.3): routing elements from network records and
// package identifiers from software records. Hardware model identifiers are
// included as private components (the paper's PIA normalizes only routers and
// packages; hardware models are provider-qualified, matching Fig. 3 where
// model strings carry a server prefix).
func (n *Normalizer) ComponentSetFromRecords(records []Record) ComponentSet {
	set := make(ComponentSet)
	for _, r := range records {
		switch r.Kind {
		case KindNetwork:
			if r.Network == nil {
				continue
			}
			for _, dev := range r.Network.Route {
				set.Add(n.Router(dev))
			}
		case KindHardware:
			if r.Hardware == nil {
				continue
			}
			set.Add(n.private(r.Hardware.Dep))
		case KindSoftware:
			if r.Software == nil {
				continue
			}
			for _, pkg := range r.Software.Dep {
				set.Add(n.Package(pkg))
			}
		}
	}
	return set
}

// IsShared reports whether a normalized identifier denotes a third-party
// (cross-provider comparable) component.
func IsShared(normalized string) bool {
	return strings.HasPrefix(normalized, "router:") || strings.HasPrefix(normalized, "pkg:")
}
