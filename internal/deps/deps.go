// Package deps defines INDaaS's uniform representation of structural
// dependency data (Table 1 of the paper).
//
// Three record kinds cover the three most common causes of correlated
// failures: network dependencies (a route from a source to a destination
// through network devices), hardware dependencies (a physical component of a
// machine, identified by its model), and software dependencies (a program and
// the packages it transitively requires).
//
// Records are produced by dependency acquisition modules (see packages
// netflow, hwinv and swpkg), stored in a DepDB (package depdb), and consumed
// by the auditing protocols (packages sia and pia).
package deps

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the dependency record types of Table 1.
type Kind int

const (
	// KindNetwork is a route dependency: <src="S" dst="D" route="x,y,z"/>.
	KindNetwork Kind = iota
	// KindHardware is a physical component: <hw="H" type="T" dep="x"/>.
	KindHardware
	// KindSoftware is a package dependency: <pgm="S" hw="H" dep="x,y,z"/>.
	KindSoftware
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNetwork:
		return "network"
	case KindHardware:
		return "hardware"
	case KindSoftware:
		return "software"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// KindFromString parses the name produced by Kind.String.
func KindFromString(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "network":
		return KindNetwork, nil
	case "hardware":
		return KindHardware, nil
	case "software":
		return KindSoftware, nil
	}
	return 0, fmt.Errorf("deps: unknown dependency kind %q", s)
}

// Network describes one route from Src to Dst via the ordered network
// devices in Route. A server typically has several Network records for the
// same (Src, Dst) pair, one per redundant route; the server's connectivity
// fails only when every route fails (an AND of routes), while each route
// fails when any device on it fails (an OR of devices).
type Network struct {
	Src   string   // source endpoint, e.g. a server name
	Dst   string   // destination endpoint, e.g. "Internet"
	Route []string // devices traversed, in order
}

// Hardware describes one physical component of machine HW. Type is the
// component class (CPU, Disk, RAM, NIC, ...) and Dep its model identifier.
// Following Fig. 3 of the paper, model identifiers are qualified per machine
// ("S1-SED900") unless the acquirer deliberately exposes shared batches.
type Hardware struct {
	HW   string // machine that contains the component
	Type string // component class
	Dep  string // component model identifier
}

// Software describes a program Pgm running on machine HW together with the
// packages it depends on (transitively resolved by the acquirer).
type Software struct {
	Pgm string   // program name
	HW  string   // machine the program runs on
	Dep []string // package identifiers, typically name=version
}

// Record is a tagged union of the three dependency kinds; exactly one of
// Network, Hardware, Software is non-nil, matching Kind.
type Record struct {
	Kind     Kind
	Network  *Network
	Hardware *Hardware
	Software *Software
}

// NewNetwork wraps a Network dependency in a Record.
func NewNetwork(src, dst string, route ...string) Record {
	return Record{Kind: KindNetwork, Network: &Network{Src: src, Dst: dst, Route: append([]string(nil), route...)}}
}

// NewHardware wraps a Hardware dependency in a Record.
func NewHardware(hw, typ, dep string) Record {
	return Record{Kind: KindHardware, Hardware: &Hardware{HW: hw, Type: typ, Dep: dep}}
}

// NewSoftware wraps a Software dependency in a Record.
func NewSoftware(pgm, hw string, dep ...string) Record {
	return Record{Kind: KindSoftware, Software: &Software{Pgm: pgm, HW: hw, Dep: append([]string(nil), dep...)}}
}

// Validate reports whether the record is structurally sound: the payload
// matching Kind is present, all others absent, and mandatory fields set.
func (r Record) Validate() error {
	switch r.Kind {
	case KindNetwork:
		if r.Network == nil || r.Hardware != nil || r.Software != nil {
			return fmt.Errorf("deps: network record with wrong payload")
		}
		if r.Network.Src == "" || r.Network.Dst == "" {
			return fmt.Errorf("deps: network record needs src and dst")
		}
		for _, d := range r.Network.Route {
			if d == "" {
				return fmt.Errorf("deps: network record %s->%s has empty route element", r.Network.Src, r.Network.Dst)
			}
		}
	case KindHardware:
		if r.Hardware == nil || r.Network != nil || r.Software != nil {
			return fmt.Errorf("deps: hardware record with wrong payload")
		}
		if r.Hardware.HW == "" || r.Hardware.Type == "" || r.Hardware.Dep == "" {
			return fmt.Errorf("deps: hardware record needs hw, type and dep")
		}
	case KindSoftware:
		if r.Software == nil || r.Network != nil || r.Hardware != nil {
			return fmt.Errorf("deps: software record with wrong payload")
		}
		if r.Software.Pgm == "" || r.Software.HW == "" {
			return fmt.Errorf("deps: software record needs pgm and hw")
		}
		for _, d := range r.Software.Dep {
			if d == "" {
				return fmt.Errorf("deps: software record %s has empty dep", r.Software.Pgm)
			}
		}
	default:
		return fmt.Errorf("deps: unknown kind %d", int(r.Kind))
	}
	return nil
}

// Subject returns the machine/endpoint a record is about: Src for network
// records, HW for hardware and software records. DepDB indexes on this.
func (r Record) Subject() string {
	switch r.Kind {
	case KindNetwork:
		if r.Network != nil {
			return r.Network.Src
		}
	case KindHardware:
		if r.Hardware != nil {
			return r.Hardware.HW
		}
	case KindSoftware:
		if r.Software != nil {
			return r.Software.HW
		}
	}
	return ""
}

// Components returns the identifiers of every component the record names,
// including the subject itself. Used for component-set extraction (§4.2.3).
func (r Record) Components() []string {
	var out []string
	switch r.Kind {
	case KindNetwork:
		if r.Network != nil {
			out = append(out, r.Network.Route...)
		}
	case KindHardware:
		if r.Hardware != nil {
			out = append(out, r.Hardware.Dep)
		}
	case KindSoftware:
		if r.Software != nil {
			out = append(out, r.Software.Pgm)
			out = append(out, r.Software.Dep...)
		}
	}
	return out
}

// String renders the record in the paper's Table 1 / Fig. 3 notation.
func (r Record) String() string {
	switch r.Kind {
	case KindNetwork:
		if r.Network == nil {
			return "<network:nil/>"
		}
		return fmt.Sprintf(`<src=%q dst=%q route=%q/>`, r.Network.Src, r.Network.Dst, strings.Join(r.Network.Route, ","))
	case KindHardware:
		if r.Hardware == nil {
			return "<hardware:nil/>"
		}
		return fmt.Sprintf(`<hw=%q type=%q dep=%q/>`, r.Hardware.HW, r.Hardware.Type, r.Hardware.Dep)
	case KindSoftware:
		if r.Software == nil {
			return "<software:nil/>"
		}
		return fmt.Sprintf(`<pgm=%q hw=%q dep=%q/>`, r.Software.Pgm, r.Software.HW, strings.Join(r.Software.Dep, ","))
	default:
		return fmt.Sprintf("<unknown kind=%d/>", int(r.Kind))
	}
}

// Equal reports deep equality of two records.
func (r Record) Equal(o Record) bool {
	if r.Kind != o.Kind {
		return false
	}
	switch r.Kind {
	case KindNetwork:
		if (r.Network == nil) != (o.Network == nil) {
			return false
		}
		if r.Network == nil {
			return true
		}
		return r.Network.Src == o.Network.Src && r.Network.Dst == o.Network.Dst && equalStrings(r.Network.Route, o.Network.Route)
	case KindHardware:
		if (r.Hardware == nil) != (o.Hardware == nil) {
			return false
		}
		if r.Hardware == nil {
			return true
		}
		return *r.Hardware == *o.Hardware
	case KindSoftware:
		if (r.Software == nil) != (o.Software == nil) {
			return false
		}
		if r.Software == nil {
			return true
		}
		return r.Software.Pgm == o.Software.Pgm && r.Software.HW == o.Software.HW && equalStrings(r.Software.Dep, o.Software.Dep)
	}
	return false
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ComponentSet is an unordered set of normalized component identifiers — the
// most basic level of detail (§4.1.1, Fig. 4a) and the unit PIA operates on.
type ComponentSet map[string]struct{}

// NewComponentSet builds a set from the given identifiers.
func NewComponentSet(ids ...string) ComponentSet {
	s := make(ComponentSet, len(ids))
	for _, id := range ids {
		s[id] = struct{}{}
	}
	return s
}

// Add inserts id into the set.
func (s ComponentSet) Add(id string) { s[id] = struct{}{} }

// Contains reports membership.
func (s ComponentSet) Contains(id string) bool { _, ok := s[id]; return ok }

// Len returns the cardinality.
func (s ComponentSet) Len() int { return len(s) }

// Sorted returns the members in lexicographic order.
func (s ComponentSet) Sorted() []string {
	out := make([]string, 0, len(s))
	for id := range s {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Union returns s ∪ o as a new set.
func (s ComponentSet) Union(o ComponentSet) ComponentSet {
	u := make(ComponentSet, len(s)+len(o))
	for id := range s {
		u[id] = struct{}{}
	}
	for id := range o {
		u[id] = struct{}{}
	}
	return u
}

// Intersect returns s ∩ o as a new set.
func (s ComponentSet) Intersect(o ComponentSet) ComponentSet {
	small, large := s, o
	if len(o) < len(s) {
		small, large = o, s
	}
	out := make(ComponentSet)
	for id := range small {
		if large.Contains(id) {
			out[id] = struct{}{}
		}
	}
	return out
}

// Jaccard computes the exact Jaccard similarity across one or more sets:
// |S0 ∩ ... ∩ Sk-1| / |S0 ∪ ... ∪ Sk-1| (§4.2.2). Jaccard of zero sets or of
// sets with an empty union is defined as 0.
func Jaccard(sets ...ComponentSet) float64 {
	if len(sets) == 0 {
		return 0
	}
	inter := sets[0]
	union := sets[0]
	for _, s := range sets[1:] {
		inter = inter.Intersect(s)
		union = union.Union(s)
	}
	if union.Len() == 0 {
		return 0
	}
	return float64(inter.Len()) / float64(union.Len())
}
