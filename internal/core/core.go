// Package core is the INDaaS façade: the pluggable architecture of Fig. 1.
//
// An Auditor owns a dependency database (DepDB) and a set of registered
// dependency acquisition modules (DAMs, §3). Acquire runs the modules and
// stores their records; AuditAlternatives runs structural independence
// auditing (SIA, §4.1) over candidate redundancy deployments; PIA runs
// through the pia package over normalized component-sets.
//
// The concrete acquisition modules in this repository are adapters over the
// simulation substrates:
//
//   - NetflowAcquirer — NSDMiner-style flow mining (package netflow);
//   - HardwareAcquirer — lshw-style inventory walking (package hwinv);
//   - SoftwareAcquirer — apt-rdepends-style closure resolution (swpkg);
//   - CloudAcquirer — VM dependency extraction from the IaaS simulator
//     (package cloudsim);
//   - Static — canned records (e.g. loaded from Table 1 XML files).
package core

import (
	"fmt"
	"sort"
	"sync"

	"indaas/internal/cloudsim"
	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/hwinv"
	"indaas/internal/netflow"
	"indaas/internal/report"
	"indaas/internal/sia"
	"indaas/internal/swpkg"
	"indaas/internal/topology"
)

// Acquirer is a pluggable dependency acquisition module: anything that can
// produce Table 1 records for the requested subjects (empty = all known).
type Acquirer interface {
	Collect(subjects []string) ([]deps.Record, error)
}

// AcquirerFunc adapts a function to the Acquirer interface.
type AcquirerFunc func(subjects []string) ([]deps.Record, error)

// Collect implements Acquirer.
func (f AcquirerFunc) Collect(subjects []string) ([]deps.Record, error) { return f(subjects) }

// Static serves a fixed record set, filtered by subject.
type Static []deps.Record

// Collect implements Acquirer.
func (a Static) Collect(subjects []string) ([]deps.Record, error) {
	if len(subjects) == 0 {
		return a, nil
	}
	want := make(map[string]bool, len(subjects))
	for _, s := range subjects {
		want[s] = true
	}
	var out []deps.Record
	for _, r := range a {
		if want[r.Subject()] {
			out = append(out, r)
		}
	}
	return out, nil
}

// Auditor is the INDaaS entry point.
type Auditor struct {
	mu        sync.Mutex
	db        *depdb.DB
	acquirers map[string]Acquirer
}

// NewAuditor returns an Auditor with an empty DepDB.
func NewAuditor() *Auditor {
	return &Auditor{db: depdb.New(), acquirers: make(map[string]Acquirer)}
}

// DB exposes the dependency database.
func (a *Auditor) DB() *depdb.DB { return a.db }

// Register adds a named acquisition module.
func (a *Auditor) Register(name string, acq Acquirer) error {
	if name == "" || acq == nil {
		return fmt.Errorf("core: acquisition module needs a name and an implementation")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.acquirers[name]; dup {
		return fmt.Errorf("core: duplicate acquisition module %q", name)
	}
	a.acquirers[name] = acq
	return nil
}

// Modules lists the registered acquisition module names, sorted.
func (a *Auditor) Modules() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.acquirers))
	for n := range a.acquirers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Acquire runs every registered module (§2 Step 3) for the given subjects
// and stores the records in the DepDB. Modules run in deterministic name
// order so repeated runs produce identical databases.
func (a *Auditor) Acquire(subjects ...string) error {
	for _, name := range a.Modules() {
		a.mu.Lock()
		acq := a.acquirers[name]
		a.mu.Unlock()
		records, err := acq.Collect(subjects)
		if err != nil {
			return fmt.Errorf("core: module %q: %w", name, err)
		}
		if err := a.db.Put(records...); err != nil {
			return fmt.Errorf("core: module %q: %w", name, err)
		}
	}
	return nil
}

// AuditAlternatives runs SIA over candidate deployments and returns the
// ranked report (§2 Steps 4–6 in the trusted-auditor scenario).
func (a *Auditor) AuditAlternatives(title string, specs []sia.GraphSpec, opts sia.Options) (*report.Report, error) {
	return sia.AuditDeployments(a.db, title, specs, opts)
}

// NetflowAcquirer adapts the NSDMiner-style miner: it generates flowsPerSrv
// simulated flows from each requested server to the Internet over the given
// topology and mines route dependencies from them.
func NetflowAcquirer(topo *topology.Topology, flowsPerSrv int) Acquirer {
	return AcquirerFunc(func(subjects []string) ([]deps.Record, error) {
		if len(subjects) == 0 {
			subjects = topo.Servers()
		}
		gen := &netflow.Generator{Topo: topo}
		miner := &netflow.Miner{MinFlows: 1}
		var flows []netflow.Flow
		for _, s := range subjects {
			fs, err := gen.InternetFlows(s, flowsPerSrv)
			if err != nil {
				return nil, err
			}
			flows = append(flows, fs...)
		}
		return miner.Mine(flows), nil
	})
}

// TopologyAcquirer serves ground-truth routes straight from the topology —
// the idealized acquisition path used when mining noise is not under study.
func TopologyAcquirer(topo *topology.Topology) Acquirer {
	return AcquirerFunc(func(subjects []string) ([]deps.Record, error) {
		if len(subjects) == 0 {
			subjects = topo.Servers()
		}
		var out []deps.Record
		for _, s := range subjects {
			routes, err := topo.RoutesToInternet(s)
			if err != nil {
				return nil, err
			}
			for _, r := range routes {
				out = append(out, deps.NewNetwork(s, "Internet", r...))
			}
		}
		return out, nil
	})
}

// HardwareAcquirer adapts the lshw-style inventory walker over a fleet.
func HardwareAcquirer(machines []hwinv.Machine, qualified bool) Acquirer {
	byName := make(map[string]hwinv.Machine, len(machines))
	for _, m := range machines {
		byName[m.Name] = m
	}
	return AcquirerFunc(func(subjects []string) ([]deps.Record, error) {
		if len(subjects) == 0 {
			return hwinv.CollectFleet(machines, qualified), nil
		}
		var out []deps.Record
		for _, s := range subjects {
			m, ok := byName[s]
			if !ok {
				continue // machines outside this module's scope
			}
			out = append(out, hwinv.Collect(m, qualified)...)
		}
		return out, nil
	})
}

// Install describes a program installation for SoftwareAcquirer.
type Install struct {
	Pgm  string // record's program name, e.g. "Riak1"
	HW   string // machine it runs on
	Root string // root package in the universe, e.g. "riak"
}

// SoftwareAcquirer adapts the apt-rdepends-style resolver: every install's
// dependency closure becomes one software record.
func SoftwareAcquirer(u *swpkg.Universe, installs []Install) Acquirer {
	return AcquirerFunc(func(subjects []string) ([]deps.Record, error) {
		want := make(map[string]bool, len(subjects))
		for _, s := range subjects {
			want[s] = true
		}
		var out []deps.Record
		for _, inst := range installs {
			if len(subjects) > 0 && !want[inst.HW] {
				continue
			}
			rec, err := u.Record(inst.Pgm, inst.HW, inst.Root)
			if err != nil {
				return nil, err
			}
			out = append(out, rec)
		}
		return out, nil
	})
}

// CloudAcquirer extracts VM dependency records from the IaaS simulator.
func CloudAcquirer(c *cloudsim.Cloud, vms []string) Acquirer {
	return AcquirerFunc(func(subjects []string) ([]deps.Record, error) {
		names := vms
		if len(subjects) > 0 {
			names = subjects
		}
		var out []deps.Record
		for _, vm := range names {
			recs, err := c.DependencyRecords(vm)
			if err != nil {
				return nil, err
			}
			out = append(out, recs...)
		}
		return out, nil
	})
}
