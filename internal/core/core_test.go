package core

import (
	"fmt"
	"reflect"
	"testing"

	"indaas/internal/cloudsim"
	"indaas/internal/deps"
	"indaas/internal/hwinv"
	"indaas/internal/sia"
	"indaas/internal/swpkg"
	"indaas/internal/topology"
)

func TestRegisterAndModules(t *testing.T) {
	a := NewAuditor()
	if err := a.Register("hw", Static{}); err != nil {
		t.Fatal(err)
	}
	if err := a.Register("hw", Static{}); err == nil {
		t.Error("duplicate module accepted")
	}
	if err := a.Register("", Static{}); err == nil {
		t.Error("unnamed module accepted")
	}
	if err := a.Register("nil", nil); err == nil {
		t.Error("nil module accepted")
	}
	if err := a.Register("aaa", Static{}); err != nil {
		t.Fatal(err)
	}
	if got := a.Modules(); !reflect.DeepEqual(got, []string{"aaa", "hw"}) {
		t.Errorf("Modules = %v", got)
	}
}

func TestAcquireRunsModulesInOrder(t *testing.T) {
	a := NewAuditor()
	var order []string
	mk := func(name string) Acquirer {
		return AcquirerFunc(func([]string) ([]deps.Record, error) {
			order = append(order, name)
			return []deps.Record{deps.NewHardware("S-"+name, "CPU", "m")}, nil
		})
	}
	for _, n := range []string{"zzz", "aaa", "mmm"} {
		if err := a.Register(n, mk(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Acquire(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []string{"aaa", "mmm", "zzz"}) {
		t.Errorf("module order = %v", order)
	}
	if a.DB().Len() != 3 {
		t.Errorf("DB has %d records", a.DB().Len())
	}
}

func TestAcquirePropagatesErrors(t *testing.T) {
	a := NewAuditor()
	if err := a.Register("bad", AcquirerFunc(func([]string) ([]deps.Record, error) {
		return nil, fmt.Errorf("boom")
	})); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(); err == nil {
		t.Error("module error swallowed")
	}
	if err := a.Register("invalid", AcquirerFunc(func([]string) ([]deps.Record, error) {
		return []deps.Record{{Kind: deps.KindNetwork}}, nil
	})); err != nil {
		t.Fatal(err)
	}
}

func TestStaticFiltering(t *testing.T) {
	s := Static{
		deps.NewHardware("A", "CPU", "m1"),
		deps.NewHardware("B", "CPU", "m2"),
	}
	all, _ := s.Collect(nil)
	if len(all) != 2 {
		t.Error("Collect(nil) should return everything")
	}
	one, _ := s.Collect([]string{"B"})
	if len(one) != 1 || one[0].Subject() != "B" {
		t.Errorf("Collect(B) = %v", one)
	}
}

func TestTopologyAcquirer(t *testing.T) {
	dc := topology.BensonDC()
	acq := TopologyAcquirer(dc)
	recs, err := acq.Collect([]string{"Rack29"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("Rack29 records = %d, want 2 (dual routes)", len(recs))
	}
	if recs[0].Network.Route[0] != "e29" {
		t.Errorf("route = %v", recs[0].Network.Route)
	}
}

func TestNetflowAcquirerMatchesTopologyOnSmallTree(t *testing.T) {
	ft, err := topology.FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	srv := topology.FatTreeServer(0, 0, 0)
	mined, err := NetflowAcquirer(ft, 500).Collect([]string{srv})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := TopologyAcquirer(ft).Collect([]string{srv})
	if err != nil {
		t.Fatal(err)
	}
	if len(mined) != len(truth) {
		t.Errorf("mined %d routes, topology has %d", len(mined), len(truth))
	}
}

func TestHardwareAcquirer(t *testing.T) {
	fleet := hwinv.GenerateFleet("S", 3, 5)
	acq := HardwareAcquirer(fleet, true)
	recs, err := acq.Collect([]string{"S2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records")
	}
	for _, r := range recs {
		if r.Hardware.HW != "S2" {
			t.Errorf("record for %s, want S2", r.Hardware.HW)
		}
	}
	all, err := acq.Collect(nil)
	if err != nil || len(all) != 3*len(recs) {
		t.Errorf("Collect(nil) = %d records, %v", len(all), err)
	}
}

func TestSoftwareAcquirer(t *testing.T) {
	u, roots := swpkg.KeyValueStoreUniverse()
	acq := SoftwareAcquirer(u, []Install{
		{Pgm: "Riak1", HW: "S1", Root: roots[0]},
		{Pgm: "Redis1", HW: "S2", Root: roots[2]},
	})
	recs, err := acq.Collect([]string{"S1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Software.Pgm != "Riak1" {
		t.Fatalf("records = %v", recs)
	}
	if len(recs[0].Software.Dep) < 100 {
		t.Errorf("riak closure suspiciously small: %d", len(recs[0].Software.Dep))
	}
	bad := SoftwareAcquirer(u, []Install{{Pgm: "X", HW: "S1", Root: "ghost"}})
	if _, err := bad.Collect(nil); err == nil {
		t.Error("unknown root accepted")
	}
}

func TestCloudAcquirer(t *testing.T) {
	c := cloudsim.FourServerLab(1)
	if _, err := c.PlaceOn("VM7", "Server2"); err != nil {
		t.Fatal(err)
	}
	recs, err := CloudAcquirer(c, []string{"VM7"}).Collect(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 { // 2 routes + VM + host
		t.Errorf("records = %d", len(recs))
	}
}

// TestEndToEndAuditViaFacade is the quickstart flow: acquire from modules,
// audit alternatives, pick the most independent deployment.
func TestEndToEndAuditViaFacade(t *testing.T) {
	a := NewAuditor()
	dc := topology.BensonDC()
	if err := a.Register("net", TopologyAcquirer(dc)); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire("Rack2", "Rack3", "Rack5", "Rack29"); err != nil {
		t.Fatal(err)
	}
	rep, err := a.AuditAlternatives("facade", []sia.GraphSpec{
		{Deployment: "Rack2+Rack3", Servers: []string{"Rack2", "Rack3"}},
		{Deployment: "Rack5+Rack29", Servers: []string{"Rack5", "Rack29"}},
	}, sia.Options{Algorithm: sia.MinimalRG, RankMode: sia.RankBySize})
	if err != nil {
		t.Fatal(err)
	}
	best, err := rep.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Deployment != "Rack5+Rack29" {
		t.Errorf("best = %s", best.Deployment)
	}
	if best.Unexpected != 0 {
		t.Errorf("best deployment has %d unexpected RGs", best.Unexpected)
	}
}
