package swpkg

import (
	"math"
	"sort"
	"strings"
	"testing"

	"indaas/internal/deps"
)

func TestAddAndGet(t *testing.T) {
	u := NewUniverse()
	if err := u.Add(Package{Name: "a", Version: "1", Depends: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	if err := u.Add(Package{Name: "a", Version: "2"}); err == nil {
		t.Error("duplicate package accepted")
	}
	if err := u.Add(Package{Name: "", Version: "1"}); err == nil {
		t.Error("empty name accepted")
	}
	if err := u.Add(Package{Name: "x", Version: ""}); err == nil {
		t.Error("empty version accepted")
	}
	p, ok := u.Get("a")
	if !ok || p.ID() != "a=1" {
		t.Errorf("Get(a) = %+v, %v", p, ok)
	}
	if u.Len() != 1 {
		t.Errorf("Len = %d", u.Len())
	}
}

// TestUpgrade: an upgrade bumps the installed version in place (Add keeps
// rejecting duplicates) and the new closure flows into Resolve/Record.
func TestUpgrade(t *testing.T) {
	u := NewUniverse()
	for _, p := range []Package{
		{Name: "app", Version: "1.0", Depends: []string{"libc"}},
		{Name: "libc", Version: "2.31"},
		{Name: "libssl", Version: "3.0"},
	} {
		if err := u.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := u.Upgrade("ghost", "1.1", nil); err == nil {
		t.Error("upgrade of an unknown package accepted")
	}
	if err := u.Upgrade("app", "", nil); err == nil {
		t.Error("upgrade without a version accepted")
	}
	// Version-only upgrade keeps the dependency edges.
	if err := u.Upgrade("libc", "2.36", nil); err != nil {
		t.Fatal(err)
	}
	if p, _ := u.Get("libc"); p.ID() != "libc=2.36" {
		t.Errorf("after upgrade Get(libc) = %+v", p)
	}
	// An upgrade that changes the edges changes the closure.
	if err := u.Upgrade("app", "2.0", []string{"libc", "libssl"}); err != nil {
		t.Fatal(err)
	}
	ids, err := u.ClosureIDs("app")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"app=2.0", "libc=2.36", "libssl=3.0"}
	if !sort.StringsAreSorted(ids) || strings.Join(ids, " ") != strings.Join(want, " ") {
		t.Errorf("closure after upgrade = %v, want %v", ids, want)
	}
	if u.Len() != 3 {
		t.Errorf("Len = %d after upgrades, want 3", u.Len())
	}
}

func TestResolveChain(t *testing.T) {
	u := NewUniverse()
	mustAdd(t, u, Package{Name: "app", Version: "1", Depends: []string{"libx"}})
	mustAdd(t, u, Package{Name: "libx", Version: "2", Depends: []string{"liby"}})
	mustAdd(t, u, Package{Name: "liby", Version: "3"})
	ids, err := u.ClosureIDs("app")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"app=1", "libx=2", "liby=3"}
	if !equalStrings(ids, want) {
		t.Errorf("closure = %v, want %v", ids, want)
	}
}

func TestResolveDiamondAndCycle(t *testing.T) {
	u := NewUniverse()
	mustAdd(t, u, Package{Name: "app", Version: "1", Depends: []string{"l", "r"}})
	mustAdd(t, u, Package{Name: "l", Version: "1", Depends: []string{"base"}})
	mustAdd(t, u, Package{Name: "r", Version: "1", Depends: []string{"base"}})
	mustAdd(t, u, Package{Name: "base", Version: "1", Depends: []string{"app"}}) // cycle back
	pkgs, err := u.Resolve("app")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 4 {
		t.Errorf("diamond+cycle closure = %d packages, want 4", len(pkgs))
	}
}

func TestResolveErrors(t *testing.T) {
	u := NewUniverse()
	mustAdd(t, u, Package{Name: "app", Version: "1", Depends: []string{"ghost"}})
	if _, err := u.Resolve("nothere"); err == nil {
		t.Error("Resolve(unknown) succeeded")
	}
	if _, err := u.Resolve("app"); err == nil {
		t.Error("Resolve with missing dependency succeeded")
	}
}

func TestRecord(t *testing.T) {
	u := NewUniverse()
	mustAdd(t, u, Package{Name: "riak", Version: "1.4", Depends: []string{"libc6"}})
	mustAdd(t, u, Package{Name: "libc6", Version: "2.19"})
	rec, err := u.Record("Riak1", "S1", "riak")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Software.Pgm != "Riak1" || rec.Software.HW != "S1" {
		t.Errorf("record header = %+v", rec.Software)
	}
	if !equalStrings(rec.Software.Dep, []string{"libc6=2.19"}) {
		t.Errorf("record deps = %v (root must be excluded)", rec.Software.Dep)
	}
	if _, err := u.Record("X", "S1", "ghost"); err == nil {
		t.Error("Record with unknown root succeeded")
	}
}

func TestKeyValueStoreUniverseClosureSizes(t *testing.T) {
	u, roots := KeyValueStoreUniverse()
	if !equalStrings(roots, []string{"riak", "mongodb", "redis", "couchdb"}) {
		t.Fatalf("roots = %v", roots)
	}
	wantSizes := map[string]int{}
	for i, s := range kvStores {
		total := 0
		for mask, count := range kvRegionSizes {
			if mask&s.Bit != 0 {
				total += count
			}
		}
		wantSizes[roots[i]] = total
	}
	for _, root := range roots {
		ids, err := u.ClosureIDs(root)
		if err != nil {
			t.Fatalf("%s: %v", root, err)
		}
		if len(ids) != wantSizes[root] {
			t.Errorf("%s closure = %d packages, want %d", root, len(ids), wantSizes[root])
		}
	}
}

func TestKeyValueStoreUniverseHasRealisticNames(t *testing.T) {
	u, _ := KeyValueStoreUniverse()
	ids, err := u.ClosureIDs("riak")
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(ids, " ")
	for _, want := range []string{"libc6=2.19", "libssl1.0.0=1.0.1k", "libsvn1=1.8.10", "erlang-base=17.3"} {
		if !strings.Contains(joined, want) {
			t.Errorf("riak closure missing %s", want)
		}
	}
	// The shared OpenSSL package must be in all four closures (the
	// Heartbleed-style common dependency the paper motivates with [23]).
	for _, root := range []string{"mongodb", "redis", "couchdb"} {
		ids, err := u.ClosureIDs(root)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(strings.Join(ids, " "), "libssl1.0.0=1.0.1k") {
			t.Errorf("%s closure missing shared libssl", root)
		}
	}
}

// TestTable2JaccardReproduction is the acceptance test for Table 2:
// every Jaccard similarity is within ±0.0035 of the paper, and both the
// two-way and three-way rankings match exactly.
func TestTable2JaccardReproduction(t *testing.T) {
	u, roots := KeyValueStoreUniverse()
	sets := make([]deps.ComponentSet, len(roots))
	for i, root := range roots {
		s, err := u.ClosureSet(root)
		if err != nil {
			t.Fatal(err)
		}
		sets[i] = s
	}
	paper := Table2Paper()
	measured := make(map[string]float64)
	for key, want := range paper {
		var members []deps.ComponentSet
		for _, idxStr := range strings.Split(key, "+") {
			members = append(members, sets[int(idxStr[0]-'1')])
		}
		got := deps.Jaccard(members...)
		measured[key] = got
		if math.Abs(got-want) > 0.0035 {
			t.Errorf("J(%s) = %.4f, paper %.4f (|Δ| > 0.0035)", key, got, want)
		}
	}
	// Ranking preservation: sort keys by measured and by paper; orders must
	// match within each deployment arity.
	for _, arity := range []int{2, 3} {
		var keys []string
		for k := range paper {
			if strings.Count(k, "+") == arity-1 {
				keys = append(keys, k)
			}
		}
		byPaper := append([]string(nil), keys...)
		byMeasured := append([]string(nil), keys...)
		sort.Slice(byPaper, func(i, j int) bool { return paper[byPaper[i]] < paper[byPaper[j]] })
		sort.Slice(byMeasured, func(i, j int) bool { return measured[byMeasured[i]] < measured[byMeasured[j]] })
		if !equalStrings(byPaper, byMeasured) {
			t.Errorf("%d-way ranking differs: paper %v, measured %v", arity, byPaper, byMeasured)
		}
	}
}

func TestRegionPackagesCounts(t *testing.T) {
	for mask, count := range kvRegionSizes {
		pkgs := regionPackages(mask, count)
		want := count
		if mask == bitRiak || mask == bitMongoDB || mask == bitRedis || mask == bitCouchDB {
			want--
		}
		if len(pkgs) != want {
			t.Errorf("region %04b: %d packages, want %d", mask, len(pkgs), want)
		}
		seen := map[string]bool{}
		for _, p := range pkgs {
			if seen[p.Name] {
				t.Errorf("region %04b: duplicate package %s", mask, p.Name)
			}
			seen[p.Name] = true
		}
	}
}

func mustAdd(t *testing.T, u *Universe, p Package) {
	t.Helper()
	if err := u.Add(p); err != nil {
		t.Fatal(err)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
