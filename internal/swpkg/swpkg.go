// Package swpkg simulates a software package universe and implements an
// apt-rdepends-style recursive dependency resolver — the software dependency
// acquisition module of the paper's prototype (§3, [17]).
//
// A Universe is a set of versioned packages with dependency edges; Resolve
// computes the transitive closure of a package's dependencies, which is
// exactly what the paper stores as the "dep" list of a software dependency
// record (Table 1) and what PIA compares across providers (§4.2.3).
package swpkg

import (
	"fmt"
	"sort"

	"indaas/internal/deps"
)

// Package is one versioned software package.
type Package struct {
	Name    string
	Version string
	// Depends lists the names of directly required packages.
	Depends []string
}

// ID returns the canonical "name=version" identifier used for PIA
// normalization (§4.2.3: "standard names plus version numbers").
func (p Package) ID() string { return p.Name + "=" + p.Version }

// Universe is a package database. The zero value is not usable; call
// NewUniverse.
type Universe struct {
	pkgs map[string]Package
}

// NewUniverse returns an empty package universe.
func NewUniverse() *Universe {
	return &Universe{pkgs: make(map[string]Package)}
}

// Add registers a package. Duplicate names are rejected.
func (u *Universe) Add(p Package) error {
	if p.Name == "" || p.Version == "" {
		return fmt.Errorf("swpkg: package needs name and version, got %+v", p)
	}
	if _, dup := u.pkgs[p.Name]; dup {
		return fmt.Errorf("swpkg: duplicate package %q", p.Name)
	}
	u.pkgs[p.Name] = Package{Name: p.Name, Version: p.Version, Depends: append([]string(nil), p.Depends...)}
	return nil
}

// Upgrade replaces an installed package's version (and, when depends is
// non-nil, its dependency edges) — a rolling software upgrade as the agent
// fleet's churn generator replays it. Unknown packages are an error: an
// upgrade of something never installed is Add's job.
func (u *Universe) Upgrade(name, version string, depends []string) error {
	if version == "" {
		return fmt.Errorf("swpkg: upgrade of %q needs a version", name)
	}
	p, ok := u.pkgs[name]
	if !ok {
		return fmt.Errorf("swpkg: cannot upgrade unknown package %q", name)
	}
	p.Version = version
	if depends != nil {
		p.Depends = append([]string(nil), depends...)
	}
	u.pkgs[name] = p
	return nil
}

// Get looks up a package by name.
func (u *Universe) Get(name string) (Package, bool) {
	p, ok := u.pkgs[name]
	return p, ok
}

// Len returns the number of packages in the universe.
func (u *Universe) Len() int { return len(u.pkgs) }

// Resolve returns the transitive dependency closure of root, including root
// itself, sorted by name. Dependency cycles are tolerated (each package
// appears once); missing dependencies are an error, like a broken apt index.
func (u *Universe) Resolve(root string) ([]Package, error) {
	if _, ok := u.pkgs[root]; !ok {
		return nil, fmt.Errorf("swpkg: unknown package %q", root)
	}
	seen := map[string]bool{root: true}
	queue := []string{root}
	var out []Package
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		p, ok := u.pkgs[name]
		if !ok {
			return nil, fmt.Errorf("swpkg: package %q depends on missing package %q", root, name)
		}
		out = append(out, p)
		for _, d := range p.Depends {
			if !seen[d] {
				seen[d] = true
				queue = append(queue, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ClosureIDs returns the sorted "name=version" identifiers of root's
// dependency closure, including root itself.
func (u *Universe) ClosureIDs(root string) ([]string, error) {
	pkgs, err := u.Resolve(root)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p.ID()
	}
	return out, nil
}

// ClosureSet returns the closure as a component set.
func (u *Universe) ClosureSet(root string) (deps.ComponentSet, error) {
	ids, err := u.ClosureIDs(root)
	if err != nil {
		return nil, err
	}
	return deps.NewComponentSet(ids...), nil
}

// Record produces the Table 1 software dependency record for program pgm
// running on machine hw with the given root package: the record's dep list
// is the dependency closure, excluding the root package itself (the root is
// the record's pgm).
func (u *Universe) Record(pgm, hw, root string) (deps.Record, error) {
	ids, err := u.ClosureIDs(root)
	if err != nil {
		return deps.Record{}, err
	}
	rootID := u.pkgs[root].ID()
	depIDs := make([]string, 0, len(ids)-1)
	for _, id := range ids {
		if id != rootID {
			depIDs = append(depIDs, id)
		}
	}
	return deps.NewSoftware(pgm, hw, depIDs...), nil
}
