package swpkg

import (
	"fmt"
	"sort"
)

// This file freezes the synthetic key-value-store package universe behind
// the Table 2 / §6.2.3 reproduction.
//
// The paper measured Jaccard similarities between the apt dependency
// closures of Riak (Cloud1), MongoDB (Cloud2), Redis (Cloud3) and CouchDB
// (Cloud4). The actual closures are not published, but any four sets are
// characterized by their 15 Venn-region cardinalities. cmd/vennsolve
// searched for region sizes matching Table 2's ten similarities; the
// system is mutually inconsistent as exact Jaccards of four fixed sets
// (continuous minimax residual ≈ 0.002 — consistent with MinHash estimation
// noise in the original measurements), so the frozen solution below matches
// every entry within ±0.0034 and preserves both of Table 2's rankings
// exactly. See EXPERIMENTS.md.

// Store bit assignment within region masks.
const (
	bitRiak = 1 << iota
	bitMongoDB
	bitRedis
	bitCouchDB
)

// kvStores maps the store name to its region bit, in cloud order.
var kvStores = []struct {
	Name string
	Bit  int
}{
	{"riak", bitRiak},
	{"mongodb", bitMongoDB},
	{"redis", bitRedis},
	{"couchdb", bitCouchDB},
}

// kvRegionSizes is the frozen cmd/vennsolve solution (seed 3, scale 1200).
// kvRegionSizes[mask] is the number of packages shared by exactly the
// stores in mask. Singleton regions include the store package itself.
var kvRegionSizes = map[int]int{
	0b0001: 5,
	0b0010: 229,
	0b0011: 219,
	0b0100: 107,
	0b0101: 66,
	0b0111: 10,
	0b1000: 241,
	0b1001: 42,
	0b1010: 13,
	0b1011: 1,
	0b1100: 127,
	0b1111: 133,
}

// kvAliases gives the first packages of selected regions realistic Debian
// names, so that sample records read like the paper's Fig. 3. Counts are
// unchanged: aliases replace generated names one-for-one.
var kvAliases = map[int][]Package{
	0b1111: {
		{Name: "libc6", Version: "2.19"},
		{Name: "libgcc1", Version: "1:4.9.2"},
		{Name: "zlib1g", Version: "1:1.2.8"},
		{Name: "libstdc++6", Version: "4.9.2"},
		{Name: "libssl1.0.0", Version: "1.0.1k"}, // the Heartbleed-class shared dependency [23]
	},
	0b0001: {
		{Name: "libsvn1", Version: "1.8.10"},
		{Name: "erlang-base", Version: "17.3"},
	},
	0b0010: {
		{Name: "libboost-system", Version: "1.55.0"},
		{Name: "libsnappy1", Version: "1.1.2"},
	},
	0b0100: {
		{Name: "libjemalloc1", Version: "3.6.0"},
	},
	0b1000: {
		{Name: "libicu52", Version: "52.1"},
		{Name: "libmozjs185", Version: "1.8.5"},
	},
}

func regionTag(mask int) string {
	tags := []string{"rk", "mg", "rd", "cd"}
	var parts []string
	for i, s := range kvStores {
		if mask&s.Bit != 0 {
			parts = append(parts, tags[i])
		}
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "-"
		}
		out += p
	}
	return out
}

// KeyValueStoreUniverse builds the canned universe containing the four
// key-value stores and their dependency closures. It returns the universe
// and the store root package names in cloud order (Cloud1..Cloud4):
// riak, mongodb, redis, couchdb.
//
// Within each Venn region the packages form a dependency chain, and every
// store in the region depends on the chain's head — so resolving a store's
// closure genuinely exercises recursive resolution, and the closure of
// store S is exactly the union of the regions containing S.
func KeyValueStoreUniverse() (*Universe, []string) {
	u := NewUniverse()
	heads := make(map[int]string) // region mask -> chain head package name
	masks := make([]int, 0, len(kvRegionSizes))
	for m := range kvRegionSizes {
		masks = append(masks, m)
	}
	sort.Ints(masks)
	for _, mask := range masks {
		count := kvRegionSizes[mask]
		names := regionPackages(mask, count)
		// Chain: names[i] depends on names[i+1].
		for i, p := range names {
			if i+1 < len(names) {
				p.Depends = []string{names[i+1].Name}
			}
			if err := u.Add(p); err != nil {
				panic("swpkg: canned universe must build: " + err.Error())
			}
		}
		if len(names) > 0 {
			heads[mask] = names[0].Name
		}
	}
	var roots []string
	for _, s := range kvStores {
		var dependsOn []string
		for _, mask := range masks {
			if mask&s.Bit != 0 {
				dependsOn = append(dependsOn, heads[mask])
			}
		}
		if err := u.Add(Package{Name: s.Name, Version: storeVersion(s.Name), Depends: dependsOn}); err != nil {
			panic("swpkg: canned universe must build: " + err.Error())
		}
		roots = append(roots, s.Name)
	}
	return u, roots
}

// regionPackages generates the packages of one region. The store package
// itself counts against its singleton region, so singleton regions generate
// one fewer synthetic package.
func regionPackages(mask, count int) []Package {
	singleton := mask == bitRiak || mask == bitMongoDB || mask == bitRedis || mask == bitCouchDB
	if singleton {
		count-- // the store package occupies one slot of this region
	}
	out := make([]Package, 0, count)
	out = append(out, kvAliases[mask]...)
	if len(out) > count {
		out = out[:count]
	}
	tag := regionTag(mask)
	for i := len(out); i < count; i++ {
		out = append(out, Package{
			Name:    fmt.Sprintf("lib%s-%03d", tag, i),
			Version: "1.0",
		})
	}
	return out
}

func storeVersion(name string) string {
	switch name {
	case "riak":
		return "1.4.8"
	case "mongodb":
		return "2.6.5"
	case "redis":
		return "2.8.17"
	case "couchdb":
		return "1.6.1"
	default:
		return "1.0"
	}
}

// Table2Paper returns the paper's published Table 2 values keyed by the
// sorted cloud indices (1-based) of the deployment, for experiment
// comparison output.
func Table2Paper() map[string]float64 {
	return map[string]float64{
		"1+2": 0.5059, "1+3": 0.2939, "1+4": 0.2081,
		"2+3": 0.1547, "2+4": 0.1419, "3+4": 0.3489,
		"1+2+3": 0.1536, "1+2+4": 0.1207, "1+3+4": 0.1353, "2+3+4": 0.1128,
	}
}
