package wire

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
)

func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	a, b := net.Pipe()
	return NewConn(a), NewConn(b)
}

func TestSendRecvRoundTrip(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	type payload struct {
		X int      `json:"x"`
		S []string `json:"s"`
	}
	done := make(chan error, 1)
	go func() { done <- a.Send("hello", payload{X: 7, S: []string{"a", "b"}}) }()
	msg, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if msg.Type != "hello" {
		t.Fatalf("type = %q", msg.Type)
	}
	var got payload
	if err := msg.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.X != 7 || len(got.S) != 2 {
		t.Errorf("payload = %+v", got)
	}
}

func TestExpect(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	go func() { _ = a.Send("pong", map[string]int{"n": 3}) }()
	var out struct {
		N int `json:"n"`
	}
	if err := b.Expect("pong", &out); err != nil || out.N != 3 {
		t.Fatalf("Expect: %v, %+v", err, out)
	}
	go func() { _ = a.Send("other", nil) }()
	if err := b.Expect("pong", nil); err == nil || !strings.Contains(err.Error(), "expected") {
		t.Errorf("type mismatch not detected: %v", err)
	}
}

func TestExpectSurfacesPeerError(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	go func() { _ = a.SendError(io.ErrUnexpectedEOF) }()
	err := b.Expect("whatever", nil)
	if err == nil || !strings.Contains(err.Error(), "unexpected EOF") {
		t.Errorf("peer error not surfaced: %v", err)
	}
}

func TestByteAccounting(t *testing.T) {
	a, b := pipePair(t)
	defer a.Close()
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = a.Send("x", map[string]string{"k": "v"})
	}()
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	<-done
	if a.BytesWritten() == 0 || b.BytesRead() == 0 {
		t.Error("byte accounting missing")
	}
	if a.BytesWritten() != b.BytesRead() {
		t.Errorf("written %d != read %d", a.BytesWritten(), b.BytesRead())
	}
}

func TestRecvRejectsOversized(t *testing.T) {
	a, b := net.Pipe()
	conn := NewConn(b)
	defer conn.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], MaxMessageSize+1)
		a.Write(hdr[:])
		a.Close()
	}()
	if _, err := conn.Recv(); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("oversized frame accepted: %v", err)
	}
}

func TestRecvRejectsGarbage(t *testing.T) {
	a, b := net.Pipe()
	conn := NewConn(b)
	defer conn.Close()
	go func() {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 4)
		a.Write(hdr[:])
		a.Write([]byte("nope"))
		a.Close()
	}()
	if _, err := conn.Recv(); err == nil {
		t.Error("garbage frame accepted")
	}
}

func TestRecvRejectsMissingType(t *testing.T) {
	a, b := net.Pipe()
	conn := NewConn(b)
	defer conn.Close()
	go func() {
		frame := []byte(`{"payload":{}}`)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
		a.Write(hdr[:])
		a.Write(frame)
		a.Close()
	}()
	if _, err := conn.Recv(); err == nil {
		t.Error("untyped message accepted")
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dialing a closed port succeeded")
	}
}

func TestTCPEndToEnd(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		conn := NewConn(c)
		defer conn.Close()
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		_ = conn.Send("echo-"+msg.Type, msg.Payload)
	}()
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send("ping", map[string]bool{"ok": true}); err != nil {
		t.Fatal(err)
	}
	var out struct {
		OK bool `json:"ok"`
	}
	if err := conn.Expect("echo-ping", &out); err != nil || !out.OK {
		t.Fatalf("echo: %v %+v", err, out)
	}
}
