// Package wire implements the message transport between INDaaS roles
// (auditing client, auditing agent, data sources, PIA proxies): length-
// prefixed JSON messages over TCP (the prototype substitute for the paper's
// SSH channels; see DESIGN.md §1.3).
//
// Framing: 4-byte big-endian payload length, then a JSON object
// {"type": "...", "payload": ...}. Payloads are capped to guard against
// resource-exhaustion from malformed peers.
package wire

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxMessageSize caps a single message's encoded size (64 MiB — a 100k-item
// encrypted dataset at 2048-bit keys fits comfortably).
const MaxMessageSize = 64 << 20

// Message is the envelope every INDaaS wire exchange uses.
type Message struct {
	Type    string          `json:"type"`
	Payload json.RawMessage `json:"payload,omitempty"`
}

// Conn wraps a stream with framing, JSON codecs and byte accounting.
// Safe for one reader and one writer goroutine concurrently.
type Conn struct {
	raw io.ReadWriteCloser
	br  *bufio.Reader

	wmu          sync.Mutex
	bytesRead    int64
	bytesWritten int64
	mu           sync.Mutex
}

// NewConn wraps an established stream.
func NewConn(raw io.ReadWriteCloser) *Conn {
	return &Conn{raw: raw, br: bufio.NewReader(raw)}
}

// Dial connects to an INDaaS endpoint.
func Dial(addr string) (*Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewConn(c), nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.raw.Close() }

// BytesRead and BytesWritten report accounting totals.
func (c *Conn) BytesRead() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesRead
}

// BytesWritten reports the total payload bytes written.
func (c *Conn) BytesWritten() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytesWritten
}

func (c *Conn) addRead(n int64) {
	c.mu.Lock()
	c.bytesRead += n
	c.mu.Unlock()
}

func (c *Conn) addWritten(n int64) {
	c.mu.Lock()
	c.bytesWritten += n
	c.mu.Unlock()
}

// Send encodes v as the payload of a typed message and writes it.
func (c *Conn) Send(msgType string, v any) error {
	var payload json.RawMessage
	if v != nil {
		b, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("wire: marshal %s payload: %w", msgType, err)
		}
		payload = b
	}
	frame, err := json.Marshal(Message{Type: msgType, Payload: payload})
	if err != nil {
		return fmt.Errorf("wire: marshal %s: %w", msgType, err)
	}
	if len(frame) > MaxMessageSize {
		return fmt.Errorf("wire: message of %d bytes exceeds cap", len(frame))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if _, err := c.raw.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.raw.Write(frame); err != nil {
		return fmt.Errorf("wire: write frame: %w", err)
	}
	c.addWritten(int64(len(frame)) + 4)
	return nil
}

// Recv reads the next message.
func (c *Conn) Recv() (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return nil, err // io.EOF propagates cleanly for connection close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("wire: peer announced %d-byte message, cap is %d", n, MaxMessageSize)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, fmt.Errorf("wire: read frame: %w", err)
	}
	c.addRead(int64(n) + 4)
	var m Message
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("wire: decode frame: %w", err)
	}
	if m.Type == "" {
		return nil, fmt.Errorf("wire: message without type")
	}
	return &m, nil
}

// Expect reads the next message and verifies its type, decoding the payload
// into out (which may be nil to discard).
func (c *Conn) Expect(msgType string, out any) error {
	m, err := c.Recv()
	if err != nil {
		return err
	}
	if m.Type == TypeError {
		var e ErrorPayload
		if json.Unmarshal(m.Payload, &e) == nil && e.Error != "" {
			return fmt.Errorf("wire: peer error: %s", e.Error)
		}
		return fmt.Errorf("wire: peer error")
	}
	if m.Type != msgType {
		return fmt.Errorf("wire: expected %q, got %q", msgType, m.Type)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(m.Payload, out); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", msgType, err)
	}
	return nil
}

// Decode unmarshals a message payload.
func (m *Message) Decode(out any) error {
	if err := json.Unmarshal(m.Payload, out); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", m.Type, err)
	}
	return nil
}

// TypeError is the conventional error message type.
const TypeError = "error"

// ErrorPayload carries a peer-reported failure.
type ErrorPayload struct {
	Error string `json:"error"`
}

// SendError reports a failure to the peer.
func (c *Conn) SendError(err error) error {
	return c.Send(TypeError, ErrorPayload{Error: err.Error()})
}
