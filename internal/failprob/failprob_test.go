package failprob

import (
	"math"
	"testing"
	"time"

	"indaas/internal/faultgraph"
)

func day(n int) time.Time {
	return time.Date(2014, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, n)
}

func TestEmpiricalEstimates(t *testing.T) {
	// Gill et al. style: 100 ToRs, 10 cores; 5 distinct ToRs and 1 core
	// failed during the year.
	e, err := NewEmpirical(Population{"ToR": 100, "Core": 10}, 365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	events := []FailureEvent{
		{Device: "tor1", Type: "ToR", At: day(10)},
		{Device: "tor2", Type: "ToR", At: day(30)},
		{Device: "tor1", Type: "ToR", At: day(50)}, // repeat failure: same device
		{Device: "tor3", Type: "ToR", At: day(90)},
		{Device: "tor4", Type: "ToR", At: day(120)},
		{Device: "tor5", Type: "ToR", At: day(200)},
		{Device: "core1", Type: "Core", At: day(80)},
	}
	for _, ev := range events {
		if err := e.Observe(ev); err != nil {
			t.Fatal(err)
		}
	}
	p, err := e.Prob("ToR")
	if err != nil || p != 0.05 {
		t.Errorf("Prob(ToR) = %v, %v; want 0.05", p, err)
	}
	p, err = e.Prob("Core")
	if err != nil || p != 0.1 {
		t.Errorf("Prob(Core) = %v, %v; want 0.1", p, err)
	}
	if _, err := e.Prob("PDU"); err == nil {
		t.Error("unknown type accepted")
	}
	if got := e.Types(); len(got) != 2 || got[0] != "Core" {
		t.Errorf("Types = %v", got)
	}
}

func TestEmpiricalValidation(t *testing.T) {
	if _, err := NewEmpirical(Population{"x": 1}, 0); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewEmpirical(Population{"x": 0}, time.Hour); err == nil {
		t.Error("zero population accepted")
	}
	e, err := NewEmpirical(Population{"ToR": 10}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(FailureEvent{Device: "d", Type: "Mystery", At: day(0)}); err == nil {
		t.Error("unknown event type accepted")
	}
	// No events: probability zero.
	if p, err := e.Prob("ToR"); err != nil || p != 0 {
		t.Errorf("no-event Prob = %v, %v", p, err)
	}
}

func TestCVSS(t *testing.T) {
	c := NewCVSS()
	if err := c.SetScore("openssl=1.0.1e", 10.0); err != nil { // Heartbleed-class
		t.Fatal(err)
	}
	if err := c.SetScore("zlib=1.2.8", 2.5); err != nil {
		t.Fatal(err)
	}
	if err := c.SetScore("bad", 11); err == nil {
		t.Error("score > 10 accepted")
	}
	if err := c.SetScore("bad", -1); err == nil {
		t.Error("negative score accepted")
	}
	if p := c.Prob("openssl=1.0.1e"); math.Abs(p-0.2) > 1e-12 {
		t.Errorf("Prob(openssl) = %v, want 0.2", p)
	}
	if p := c.Prob("zlib=1.2.8"); math.Abs(p-0.05) > 1e-12 {
		t.Errorf("Prob(zlib) = %v, want 0.05", p)
	}
	if p := c.Prob("unknown"); p != 0 {
		t.Errorf("Prob(unknown) = %v, want 0", p)
	}
	// Scale saturation at 1.
	c.Scale = 0.5
	if p := c.Prob("openssl=1.0.1e"); p != 1 {
		t.Errorf("saturated Prob = %v, want 1", p)
	}
}

func TestAssignerResolutionOrder(t *testing.T) {
	e, err := NewEmpirical(Population{"ToR": 10}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Observe(FailureEvent{Device: "tor1", Type: "ToR", At: day(0)}); err != nil {
		t.Fatal(err)
	}
	c := NewCVSS()
	if err := c.SetScore("libssl", 5.0); err != nil {
		t.Fatal(err)
	}
	a := &Assigner{
		Overrides: map[string]float64{"tor1": 0.42},
		TypeOf: func(comp string) string {
			if comp == "tor1" || comp == "tor2" {
				return "ToR"
			}
			return ""
		},
		Empirical: e,
		CVSS:      c,
		Default:   0.01,
	}
	if p := a.Prob("tor1"); p != 0.42 {
		t.Errorf("override lost: %v", p)
	}
	if p := a.Prob("tor2"); p != 0.1 {
		t.Errorf("empirical estimate = %v, want 0.1", p)
	}
	if p := a.Prob("libssl"); p != 0.1 {
		t.Errorf("CVSS estimate = %v, want 0.1", p)
	}
	if p := a.Prob("anything-else"); p != 0.01 {
		t.Errorf("default = %v, want 0.01", p)
	}
}

func TestAssignerUnknownDefault(t *testing.T) {
	a := &Assigner{}
	if p := a.Prob("x"); p != faultgraph.ProbUnknown {
		t.Errorf("empty assigner should return ProbUnknown, got %v", p)
	}
}
