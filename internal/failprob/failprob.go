// Package failprob implements failure-probability acquisition, the §5.1
// extension the paper identifies as future work: without per-component
// failure likelihoods, INDaaS cannot build fault-set-level graphs or rank
// risk groups by probability.
//
// Two estimators are provided, following the paper's two pointers:
//
//   - an empirical estimator in the style of Gill et al. [22]: the failure
//     probability of a device *type* over a time window is the number of
//     devices of that type that failed at least once, divided by the type's
//     population;
//   - a CVSS-based estimator [48] for software packages: a package's
//     vulnerability score (0..10) maps to an annualized failure/compromise
//     probability.
//
// An Assigner merges both into the per-component probability function that
// sia.GraphSpec.Prob expects.
package failprob

import (
	"fmt"
	"sort"
	"time"

	"indaas/internal/faultgraph"
)

// FailureEvent is one observed device failure (from incident logs or a
// monitoring system).
type FailureEvent struct {
	Device string
	Type   string // device type, e.g. "ToR", "AggSwitch", "CoreRouter"
	At     time.Time
}

// Population declares how many devices of each type exist.
type Population map[string]int

// Empirical estimates per-type failure probabilities from failure events
// over an observation window, per Gill et al.: distinct failed devices of a
// type divided by the type's population.
type Empirical struct {
	window     time.Duration
	population Population
	failed     map[string]map[string]bool // type -> set of failed devices
	start, end time.Time
	haveEvents bool
}

// NewEmpirical creates an estimator for the given population and
// observation window (used to annualize; must be positive).
func NewEmpirical(pop Population, window time.Duration) (*Empirical, error) {
	if window <= 0 {
		return nil, fmt.Errorf("failprob: observation window must be positive")
	}
	for typ, n := range pop {
		if n <= 0 {
			return nil, fmt.Errorf("failprob: population of %q must be positive, got %d", typ, n)
		}
	}
	return &Empirical{
		window:     window,
		population: pop,
		failed:     make(map[string]map[string]bool),
	}, nil
}

// Observe records a failure event. Events for unknown types are an error so
// population mistakes surface early.
func (e *Empirical) Observe(ev FailureEvent) error {
	if _, ok := e.population[ev.Type]; !ok {
		return fmt.Errorf("failprob: event for unknown device type %q", ev.Type)
	}
	set := e.failed[ev.Type]
	if set == nil {
		set = make(map[string]bool)
		e.failed[ev.Type] = set
	}
	set[ev.Device] = true
	if !e.haveEvents || ev.At.Before(e.start) {
		e.start = ev.At
	}
	if !e.haveEvents || ev.At.After(e.end) {
		e.end = ev.At
	}
	e.haveEvents = true
	return nil
}

// Prob returns the estimated failure probability of a device type over the
// observation window: |devices of that type that ever failed| / population.
func (e *Empirical) Prob(deviceType string) (float64, error) {
	pop, ok := e.population[deviceType]
	if !ok {
		return 0, fmt.Errorf("failprob: unknown device type %q", deviceType)
	}
	return float64(len(e.failed[deviceType])) / float64(pop), nil
}

// Types lists the known device types, sorted.
func (e *Empirical) Types() []string {
	out := make([]string, 0, len(e.population))
	for t := range e.population {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// CVSS maps Common Vulnerability Scoring System base scores to failure
// probabilities for software packages (§5.1: "CVSS can be used to provide
// vulnerability-related failure probabilities").
type CVSS struct {
	scores map[string]float64 // package id -> base score 0..10
	// Scale converts a score into a probability; default score/10 * 0.2
	// (a critical 10.0 vulnerability ≈ 20% chance of causing an outage or
	// compromise during the audit horizon).
	Scale float64
}

// NewCVSS creates an empty score table with the default scale.
func NewCVSS() *CVSS {
	return &CVSS{scores: make(map[string]float64), Scale: 0.02}
}

// SetScore records a package's CVSS base score (0..10).
func (c *CVSS) SetScore(pkg string, score float64) error {
	if score < 0 || score > 10 {
		return fmt.Errorf("failprob: CVSS score %v out of [0,10]", score)
	}
	c.scores[pkg] = score
	return nil
}

// Prob converts a package's score to a failure probability; packages
// without a recorded vulnerability get probability 0... they may still fail
// for non-security reasons, which callers model via Assigner.Default.
func (c *CVSS) Prob(pkg string) float64 {
	p := c.scores[pkg] * c.Scale
	if p > 1 {
		p = 1
	}
	return p
}

// Assigner merges estimators into the component→probability function SIA
// consumes. Resolution order: exact per-component overrides, then the
// type-based empirical estimate (via TypeOf), then CVSS, then Default.
type Assigner struct {
	// Overrides pin exact probabilities for specific components.
	Overrides map[string]float64
	// TypeOf maps a component name to its device type ("" = not a device).
	TypeOf func(component string) string
	// Empirical supplies per-type estimates (may be nil).
	Empirical *Empirical
	// CVSS supplies software package estimates (may be nil).
	CVSS *CVSS
	// Default applies when nothing else matches; use
	// faultgraph.ProbUnknown to leave such components unweighted.
	Default float64
}

// Prob implements the sia.GraphSpec.Prob contract.
func (a *Assigner) Prob(component string) float64 {
	if p, ok := a.Overrides[component]; ok {
		return p
	}
	if a.TypeOf != nil && a.Empirical != nil {
		if typ := a.TypeOf(component); typ != "" {
			if p, err := a.Empirical.Prob(typ); err == nil {
				return p
			}
		}
	}
	if a.CVSS != nil {
		if p := a.CVSS.Prob(component); p > 0 {
			return p
		}
	}
	if a.Default != 0 {
		return a.Default
	}
	return faultgraph.ProbUnknown
}
