// Package bitset provides the dense fixed-width bitsets backing the SIA hot
// path: risk groups are sets of small dense integers (basic-event ranks), so
// set algebra — union, subset tests, dedup hashing, canonical ordering —
// compiles down to a handful of word operations instead of sorted-slice
// merges and string map keys.
package bitset

import "math/bits"

// Set is a fixed-width bitset. All binary operations require both operands
// to have the same word length (sets built over the same universe).
type Set []uint64

// Words returns the number of uint64 words needed for a universe of width
// indices.
func Words(width int) int { return (width + 63) / 64 }

// New returns an empty set over a universe of width indices.
func New(width int) Set { return make(Set, Words(width)) }

// Set marks index i as a member.
func (s Set) Set(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Clear removes index i.
func (s Set) Clear(i int) { s[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether index i is a member.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<(uint(i)&63)) != 0 }

// Reset empties the set in place.
func (s Set) Reset() {
	for i := range s {
		s[i] = 0
	}
}

// CopyFrom overwrites s with o.
func (s Set) CopyFrom(o Set) { copy(s, o) }

// Or unions o into s.
func (s Set) Or(o Set) {
	for i, w := range o {
		s[i] |= w
	}
}

// OrOf overwrites s with a ∪ b.
func (s Set) OrOf(a, b Set) {
	for i := range s {
		s[i] = a[i] | b[i]
	}
}

// Count returns the number of members (popcount).
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// SubsetOf reports whether s ⊆ o.
func (s Set) SubsetOf(o Set) bool {
	for i, w := range s {
		if w&^o[i] != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and o hold exactly the same members.
func (s Set) Equal(o Set) bool {
	for i, w := range s {
		if w != o[i] {
			return false
		}
	}
	return true
}

// Hash returns a 64-bit FNV-1a hash over the words, for dedup maps keyed by
// set value without a per-set string allocation.
func (s Set) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, w := range s {
		for b := 0; b < 64; b += 8 {
			h ^= (w >> uint(b)) & 0xff
			h *= prime64
		}
	}
	return h
}

// Less orders equal-width sets by their lowest differing index: the set
// owning the smallest member of the symmetric difference sorts first. For
// sets of equal cardinality this coincides with lexicographic order over the
// sorted member sequences, which is the family order the slice-based RG
// implementation used.
func (s Set) Less(o Set) bool {
	for i, w := range s {
		if d := w ^ o[i]; d != 0 {
			return w&(d&-d) != 0
		}
	}
	return false
}

// First returns the smallest member, or -1 if the set is empty.
func (s Set) First() int {
	for i, w := range s {
		if w != 0 {
			return i<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// AppendIndices appends the members in ascending order to dst.
func (s Set) AppendIndices(dst []int) []int {
	for i, w := range s {
		base := i << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}
