package bitset

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(130) // three words
	if len(s) != 3 {
		t.Fatalf("Words(130) = %d, want 3", len(s))
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		s.Set(i)
		if !s.Has(i) {
			t.Errorf("Has(%d) false after Set", i)
		}
	}
	if s.Count() != 5 {
		t.Errorf("Count = %d, want 5", s.Count())
	}
	if s.First() != 0 {
		t.Errorf("First = %d, want 0", s.First())
	}
	s.Clear(0)
	if s.Has(0) || s.Count() != 4 || s.First() != 63 {
		t.Error("Clear(0) misbehaved")
	}
	if got := s.AppendIndices(nil); !reflect.DeepEqual(got, []int{63, 64, 127, 129}) {
		t.Errorf("AppendIndices = %v", got)
	}
	s.Reset()
	if s.Count() != 0 || s.First() != -1 {
		t.Error("Reset left members behind")
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b, u := New(100), New(100), New(100)
	a.Set(1)
	a.Set(70)
	b.Set(2)
	b.Set(70)
	u.OrOf(a, b)
	if got := u.AppendIndices(nil); !reflect.DeepEqual(got, []int{1, 2, 70}) {
		t.Errorf("OrOf = %v", got)
	}
	if !a.SubsetOf(u) || !b.SubsetOf(u) || u.SubsetOf(a) {
		t.Error("SubsetOf wrong")
	}
	c := New(100)
	c.CopyFrom(a)
	if !c.Equal(a) || c.Equal(b) {
		t.Error("CopyFrom/Equal wrong")
	}
	c.Or(b)
	if !c.Equal(u) {
		t.Error("Or wrong")
	}
	if a.Hash() == b.Hash() && !a.Equal(b) {
		t.Error("distinct small sets collided (FNV should separate these)")
	}
}

// TestLessMatchesSliceOrder: for equal-cardinality sets, Less must equal
// lexicographic order over sorted member slices — the family order the RG
// code relies on.
func TestLessMatchesSliceOrder(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + r.Intn(6)
		mk := func() ([]int, Set) {
			m := map[int]bool{}
			for len(m) < n {
				m[r.Intn(150)] = true
			}
			var xs []int
			s := New(150)
			for x := range m {
				xs = append(xs, x)
				s.Set(x)
			}
			sort.Ints(xs)
			return xs, s
		}
		xa, sa := mk()
		xb, sb := mk()
		want := false
		for i := range xa {
			if xa[i] != xb[i] {
				want = xa[i] < xb[i]
				break
			}
		}
		if got := sa.Less(sb); got != want {
			t.Fatalf("Less(%v, %v) = %v, want %v", xa, xb, got, want)
		}
	}
}

func TestSubsetOfRandomized(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 1000; trial++ {
		a, b := New(200), New(200)
		for i := 0; i < 200; i++ {
			if r.Intn(3) == 0 {
				b.Set(i)
				if r.Intn(2) == 0 {
					a.Set(i)
				}
			}
		}
		if !a.SubsetOf(b) {
			t.Fatal("constructed subset rejected")
		}
		// Adding one element outside b must break the subset relation.
		for i := 0; i < 200; i++ {
			if !b.Has(i) {
				a.Set(i)
				if a.SubsetOf(b) {
					t.Fatal("superset accepted")
				}
				break
			}
		}
	}
}
