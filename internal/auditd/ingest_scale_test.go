package auditd

import (
	"context"
	"fmt"
	"testing"
	"time"

	"indaas/internal/store"
)

func benchShutdown(b testing.TB, s *Server) {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	s.Shutdown(ctx)
}

// seedIngested boots a durable server whose database already holds total
// records (persisted through the ingest path, like production data).
func seedIngested(tb testing.TB, total int) *Server {
	tb.Helper()
	st, err := store.Open(store.Options{Dir: tb.TempDir(), NoSync: true})
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { st.Close() })
	s := New(Config{Workers: 1, Store: st})
	var batch []RecordWire
	for i := 0; len(batch)*1 < total; i++ {
		batch = append(batch, RecordWire{
			Kind: "hardware", HW: fmt.Sprintf("seed-%d", i), Type: "Disk", Dep: fmt.Sprintf("seed-%d-disk", i),
		})
	}
	batch = batch[:total]
	if _, err := s.Ingest(&IngestRequest{Records: batch}); err != nil {
		tb.Fatal(err)
	}
	return s
}

// ingestBatch pushes a 3-record batch about a fresh machine.
func ingestBatch(tb testing.TB, s *Server, seq int) {
	tb.Helper()
	m := fmt.Sprintf("live-%d", seq)
	_, err := s.Ingest(&IngestRequest{Records: []RecordWire{
		{Kind: "network", Src: m, Dst: "Internet", Route: []string{"tor-" + m, "Core1"}},
		{Kind: "hardware", HW: m, Type: "Disk", Dep: m + "-disk"},
		{Kind: "software", Pgm: "nginx", HW: m, Deps: []string{"libc6"}},
	}})
	if err != nil {
		tb.Fatal(err)
	}
}

// TestIngestCostIsBatchBound is the O(batch) proof that doesn't depend on
// wall-clock noise: the allocations per ingest must not scale with the
// database size. Before the fix, every ingest re-materialized and re-encoded
// the whole database (staged.Put(db.Snapshot().Records()...)), so a 10×
// larger database meant ~10× the allocations per request.
func TestIngestCostIsBatchBound(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation profiling fixture")
	}
	measure := func(total int) float64 {
		s := seedIngested(t, total)
		defer gracefulShutdown(t, s)
		seq := 0
		return testing.AllocsPerRun(20, func() {
			ingestBatch(t, s, seq)
			seq++
		})
	}
	small := measure(500)
	big := measure(5000)
	if big > 3*small {
		t.Fatalf("ingest allocations scale with database size: %.0f allocs at 500 records vs %.0f at 5000", small, big)
	}
}

// BenchmarkIngest measures one 3-record ingest against databases of
// increasing size on a durable server. O(batch) ingest shows as a flat
// ns/op column; the pre-fix O(total) staging showed linear growth.
func BenchmarkIngest(b *testing.B) {
	for _, total := range []int{1_000, 10_000, 50_000} {
		b.Run(fmt.Sprintf("base=%d", total), func(b *testing.B) {
			s := seedIngested(b, total)
			b.Cleanup(func() { benchShutdown(b, s) })
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ingestBatch(b, s, i)
			}
		})
	}
}
