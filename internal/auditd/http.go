package auditd

import (
	"encoding/json"
	"errors"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"indaas/internal/telemetry"
)

// maxRequestBody bounds submit bodies (inline record sets included) at 32 MiB.
const maxRequestBody = 32 << 20

// Handler returns the service's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/audits", s.handleSubmit)
	mux.HandleFunc("POST /v1/recommend", s.handleRecommend)
	mux.HandleFunc("POST /v1/private-audits", s.handlePrivateAudit)
	mux.HandleFunc("POST /v1/providers", s.handleRegisterProvider)
	mux.HandleFunc("GET /v1/providers", s.handleProviders)
	mux.HandleFunc("POST /v1/depdb", s.handleIngest)
	mux.HandleFunc("GET /v1/watch", s.handleWatch)
	mux.HandleFunc("POST /v1/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/audits", s.handleList)
	mux.HandleFunc("GET /v1/audits/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/audits/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/audits/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("DELETE /v1/audits/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCached)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // client gone mid-write is not actionable
}

func writeErr(w http.ResponseWriter, err error) {
	code := httpStatus(err)
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		// A transient condition (full queue, rate limit, shutdown, degraded
		// store): tell well-behaved clients — including Client's backoff —
		// when to retry. The rate limiter quotes its refill time; everything
		// else defaults to one second (the header granularity's floor).
		secs := 1
		var se *statusErr
		if errors.As(err, &se) && se.retryAfter > 0 {
			if s := int(se.retryAfter.Seconds() + 0.999); s > secs {
				secs = s
			}
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// decodeJSON parses a bounded, unknown-field-rejecting JSON body into v; on
// failure it writes the 400 envelope and reports false.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeJSON(w, 400, errorBody{Error: "bad request body: " + err.Error()})
		return false
	}
	return true
}

// ForwardedHeader marks a request a cluster peer already routed once: the
// receiving node must compute it locally (single-hop ownership, no forward
// loops). ReplicatedHeader marks an ingest pushed by a peer's replication
// hook: admitted without rate limiting and not replicated onward.
const (
	ForwardedHeader  = "X-Indaas-Forwarded"
	ReplicatedHeader = "X-Indaas-Replicated"
)

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	req.NoForward = r.Header.Get(ForwardedHeader) != ""
	st, err := s.Submit(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	telemetry.AnnotateJob(r, st.ID)
	code := 202 // accepted, result pending
	if st.State == StateDone {
		code = 200 // cache hit: already answered
	}
	writeJSON(w, code, st)
}

// handleRecommend submits a placement recommendation job; the job lifecycle
// (poll, result, cancel) runs through the shared /v1/audits/{id} endpoints.
func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req RecommendRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	req.NoForward = r.Header.Get(ForwardedHeader) != ""
	st, err := s.Recommend(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	telemetry.AnnotateJob(r, st.ID)
	code := 202
	if st.State == StateDone {
		code = 200 // cache hit: already answered
	}
	writeJSON(w, code, st)
}

// handlePrivateAudit submits a private (PIA) audit job; like
// recommendations, its lifecycle runs through the shared /v1/audits/{id}
// endpoints.
func (s *Server) handlePrivateAudit(w http.ResponseWriter, r *http.Request) {
	var req PrivateAuditRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	req.NoForward = r.Header.Get(ForwardedHeader) != ""
	st, err := s.PrivateAudit(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	telemetry.AnnotateJob(r, st.ID)
	code := 202
	if st.State == StateDone {
		code = 200 // cache hit: already answered
	}
	writeJSON(w, code, st)
}

// handleRegisterProvider registers (or replaces) a private-audit provider
// dataset.
func (s *Server) handleRegisterProvider(w http.ResponseWriter, r *http.Request) {
	var req RegisterProviderRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	info, err := s.RegisterProvider(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, info)
}

// handleProviders lists registered provider datasets — fingerprints and
// component counts only, never the components themselves.
func (s *Server) handleProviders(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, 200, struct {
		Providers []ProviderInfo `json:"providers"`
	}{s.Providers()})
}

// handleIngest appends dependency records to the server's database.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	req.Replicated = r.Header.Get(ReplicatedHeader) != ""
	resp, err := s.Ingest(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, 200, struct {
		Jobs []JobStatus `json:"jobs"`
	}{s.Jobs()})
}

// maxStatusWait caps one ?wait long-poll. A wait above the cap is silently
// truncated and the response may carry a NON-terminal state with code 200 —
// clients must keep polling until the state is terminal (Client.WaitDone
// does) rather than treat any 200 as completion. A variable so tests can
// shrink the cap.
var maxStatusWait = time.Minute

// handleStatus returns a job's status; ?wait=5s long-polls until the job is
// terminal or the wait elapses (capped at maxStatusWait).
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	var wait time.Duration
	if v := r.URL.Query().Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			writeJSON(w, 400, errorBody{Error: "bad wait duration"})
			return
		}
		if d > maxStatusWait {
			d = maxStatusWait
		}
		wait = d
	}
	telemetry.AnnotateJob(r, r.PathValue("id"))
	st, err := s.WaitDone(r.Context(), r.PathValue("id"), wait)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, st)
}

// handleTrace returns a job's phase timeline as JSON (GET
// /v1/jobs/{id}/trace, also mounted under /v1/audits for symmetry with the
// other job endpoints).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	telemetry.AnnotateJob(r, r.PathValue("id"))
	resp, err := s.Trace(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, resp)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	res, err := s.Result(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, st)
}

func (s *Server) handleCached(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Cached(r.PathValue("key"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, 200, rep)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.Stats().render(w)
	if s.cfg.ExtraMetrics != nil {
		s.cfg.ExtraMetrics(w)
	}
}

// handleHealthz reports liveness plus the served database's identity — the
// record count and canonical fingerprint — so an operator (or the restart
// smoke test) can confirm a restarted daemon serves the same data. Status
// flips to "degraded" (with the reason and the error count) while repeated
// store failures have the daemon serving memory-only; OK stays true — the
// daemon is alive and answering, just not durable.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type health struct {
		OK             bool    `json:"ok"`
		Status         string  `json:"status"`
		Durable        bool    `json:"durable"`
		DegradedReason string  `json:"degraded_reason,omitempty"`
		StoreErrors    int64   `json:"store_errors,omitempty"`
		DBRecords      int     `json:"db_records"`
		DBFingerprint  string  `json:"db_fingerprint,omitempty"`
		Uptime         float64 `json:"uptime"` // seconds since start
		Goroutines     int     `json:"goroutines"`
	}
	h := health{
		OK: true, Status: "ok", Durable: s.store != nil,
		Uptime:     time.Since(s.began).Seconds(),
		Goroutines: runtime.NumGoroutine(),
	}
	if s.store != nil {
		if deg, reason := s.breaker.degraded(); deg {
			h.Status = "degraded"
			h.Durable = false
			h.DegradedReason = reason
		}
		h.StoreErrors = s.m.storeErrors.Load()
	}
	s.mu.Lock()
	db := s.db
	s.mu.Unlock()
	if db != nil {
		snap := db.Snapshot()
		h.DBRecords = snap.Len()
		h.DBFingerprint = snap.Fingerprint()
	}
	writeJSON(w, 200, h)
}
