package auditd

import (
	"sync"
	"testing"
	"time"

	"indaas/internal/store"
)

// testClock is a settable clock for the store's Now hook.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// TestStoreGCEvictsIdleDaemon is the -store-max-age fix: with no writes
// arriving, the background GC ticker must still age results out of the disk
// store AND the memory LRU. The store runs on a fake clock, so the test
// advances age without waiting.
func TestStoreGCEvictsIdleDaemon(t *testing.T) {
	clock := &testClock{t: time.Unix(1_700_000_000, 0)}
	st, err := store.Open(store.Options{Dir: t.TempDir(), MaxAge: time.Hour, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(Config{Workers: 1, Store: st})
	defer gracefulShutdown(t, s)

	first := mustSubmit(t, s, quickRequest("ages-out"))
	waitDone(t, s, first.ID)
	if st.Stats().ResultBytes == 0 {
		t.Fatal("result not persisted")
	}

	// The daemon now goes idle; only the ticker runs. Without it, MaxAge
	// would be a no-op until the next Put.
	clock.advance(2 * time.Hour)
	stop := s.StartStoreGC(5 * time.Millisecond)
	defer stop()
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Evictions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ticker never evicted the aged result: %+v", st.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	stop() // idempotent

	if s.Stats().StoreEvictions == 0 {
		t.Fatalf("disk eviction was not mirrored into the daemon: %+v", s.Stats())
	}
	// Both tiers dropped the entry: an identical submission recomputes.
	again := mustSubmit(t, s, quickRequest("ages-out"))
	if again.Cached || again.DiskHit {
		t.Fatalf("aged-out result still served: %+v", again)
	}
	waitDone(t, s, again.ID)
}

// TestStoreGCDirect covers the synchronous entry point and the memory-only
// no-op.
func TestStoreGCDirect(t *testing.T) {
	clock := &testClock{t: time.Unix(1_700_000_000, 0)}
	st, err := store.Open(store.Options{Dir: t.TempDir(), MaxAge: time.Minute, Now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(Config{Workers: 1, Store: st})
	defer gracefulShutdown(t, s)
	j := mustSubmit(t, s, quickRequest("gc"))
	waitDone(t, s, j.ID)

	if n, err := s.StoreGC(); err != nil || n != 0 {
		t.Fatalf("young entry evicted: n=%d err=%v", n, err)
	}
	clock.advance(time.Hour)
	n, err := s.StoreGC()
	if err != nil || n == 0 {
		t.Fatalf("aged entry survived GC: n=%d err=%v", n, err)
	}

	plain := New(Config{Workers: 1})
	defer gracefulShutdown(t, plain)
	if n, err := plain.StoreGC(); err != nil || n != 0 {
		t.Fatalf("memory-only StoreGC: n=%d err=%v", n, err)
	}
	plain.StartStoreGC(time.Millisecond)() // no-op stop must not panic
}
