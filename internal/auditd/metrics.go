package auditd

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"

	"indaas/internal/store"
	"indaas/internal/telemetry"
)

// metrics holds the service counters, updated atomically so the /metrics
// handler never contends with the job table lock.
type metrics struct {
	submitted    atomic.Int64 // jobs accepted (any path)
	completed    atomic.Int64 // jobs finished successfully
	failed       atomic.Int64 // jobs finished with an error
	canceled     atomic.Int64 // jobs canceled via the API or shutdown
	cacheHits    atomic.Int64 // jobs answered from the result cache
	coalesced    atomic.Int64 // jobs attached to an in-flight computation
	cacheMisses  atomic.Int64 // jobs that had to enqueue a computation
	rejected     atomic.Int64 // submissions refused (queue full / closing)
	computations atomic.Int64 // computations actually run by workers
	busyWorkers  atomic.Int64 // workers currently running a computation

	recommendations atomic.Int64 // placement recommendation jobs accepted
	privateAudits   atomic.Int64 // private (PIA) audit jobs accepted
	privatePairs    atomic.Int64 // provider pairs evaluated by private-audit computations
	ingestedRecords atomic.Int64 // dependency records accepted via /v1/depdb
	ingestGroups    atomic.Int64 // ingest commit groups (one segment + pointer fsync pair each)
	ingestThrottled atomic.Int64 // ingests rejected by the rate limiter (429)
	watchReaudits   atomic.Int64 // re-audit jobs submitted by watch refreshers

	deltaHits     atomic.Int64 // jobs answered whole from an ancestor result
	deltaPartials atomic.Int64 // jobs that recomputed only their dirty subjects
	deltaDirty    atomic.Int64 // dirty subjects across all delta-partial jobs

	storeHits      atomic.Int64 // jobs answered from the disk store
	storeEvictions atomic.Int64 // disk evictions mirrored into the memory LRU
	storeErrors    atomic.Int64 // persist/encode failures (results kept in memory)
	storeSkipped   atomic.Int64 // writes skipped while serving degraded

	jobsRecovered atomic.Int64 // journaled jobs re-enqueued at boot
	workerPanics  atomic.Int64 // workload panics isolated to their own job

	// Latency histograms (lock-free; Observe is two atomic adds). Store
	// put/get latencies live in store.Stats, next to the data they time.
	jobDuration  telemetry.Histogram // submission → completion, every serve path
	queueWait    telemetry.Histogram // submission → worker pickup (computed jobs)
	compute      telemetry.Histogram // worker time inside the run closure
	ingestCommit telemetry.Histogram // ingest group commit (persist + apply + notify)
	ingestNotify telemetry.Histogram // ingest dirtying a watch → event queued
}

// Stats is a point-in-time snapshot of the service counters, exported for
// tests and operational introspection.
type Stats struct {
	Submitted    int64
	Completed    int64
	Failed       int64
	Canceled     int64
	CacheHits    int64
	Coalesced    int64
	CacheMisses  int64
	Rejected     int64
	Computations int64
	BusyWorkers  int64
	QueueDepth   int
	Workers      int
	CacheEntries int

	Recommendations int64
	// PrivateAudits counts accepted private (PIA) audit jobs;
	// PrivatePairs totals the provider pairs their computations evaluated
	// (cache and coalescing hits evaluate none).
	PrivateAudits   int64
	PrivatePairs    int64
	IngestedRecords int64
	// IngestGroups counts commit groups: concurrent ingests fold into one
	// group per fsync pair, so IngestGroups ≪ ingest requests under load.
	// IngestThrottled counts ingests rejected by the admission rate limit.
	IngestGroups    int64
	IngestThrottled int64

	// Watch* describe the /v1/watch subsystem: live subscribers, lifetime
	// subscriptions, events queued to subscribers, events dropped (each drop
	// evicts its slow consumer), dirty marks from ingests, and re-audit jobs
	// the refreshers submitted.
	WatchSubscribers   int
	WatchSubscriptions int64
	WatchEvents        int64
	WatchDropped       int64
	WatchEvicted       int64
	WatchDirtyMarks    int64
	WatchReaudits      int64

	// DeltaHits counts jobs answered entirely from an ancestor result after
	// a database change that missed their subjects; DeltaPartials counts
	// jobs that re-audited only their dirty subjects and spliced the rest;
	// DeltaDirtySubjects totals the dirty subjects across partial jobs.
	DeltaHits          int64
	DeltaPartials      int64
	DeltaDirtySubjects int64

	// StoreEnabled reports whether the service runs with a persistent
	// store; the Store* fields below are only meaningful when it does.
	StoreEnabled       bool
	StoreHits          int64 // jobs answered from the disk tier
	StoreEvictions     int64 // disk evictions mirrored into the memory LRU
	StoreErrors        int64 // persist failures (results stayed in memory)
	StoreSkippedWrites int64 // writes skipped while serving degraded
	StoreTrips         int64 // times the breaker tripped into degraded mode
	Store              store.Stats

	// Degraded reports the circuit breaker's state: true while repeated
	// store-write failures have the daemon serving memory-only.
	Degraded       bool
	DegradedReason string

	// JobsRecovered counts journaled jobs re-enqueued at boot after a crash;
	// WorkerPanics counts workload panics isolated to their own job.
	JobsRecovered int64
	WorkerPanics  int64

	// Latency distributions (see the metrics struct for phase boundaries).
	JobDuration  telemetry.HistogramSnapshot
	QueueWait    telemetry.HistogramSnapshot
	Compute      telemetry.HistogramSnapshot
	IngestCommit telemetry.HistogramSnapshot
	IngestNotify telemetry.HistogramSnapshot

	// Uptime, Runtime, and Build describe the process itself for the
	// auditd_uptime_seconds / auditd_goroutines / auditd_heap_bytes /
	// auditd_gc_pause_seconds_total / auditd_build_info samples.
	Uptime  time.Duration
	Runtime telemetry.RuntimeStats
	Build   telemetry.BuildInfo
}

// HitRate is the fraction of accepted jobs that did not need their own
// computation (memory cache hits, disk store hits, delta lineage hits, and
// in-flight coalescing).
func (s Stats) HitRate() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.CacheHits+s.StoreHits+s.DeltaHits+s.Coalesced) / float64(s.Submitted)
}

// render writes the counters in the Prometheus text exposition format.
func (s Stats) render(w io.Writer) {
	gauge := func(name, help string, v interface{}) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	fcounter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %s\n", name, help, name, name, strconv.FormatFloat(v, 'g', -1, 64))
	}
	hist := func(name, help string, h telemetry.HistogramSnapshot) {
		h.WritePrometheus(w, name, help)
	}
	fmt.Fprintf(w, "# HELP auditd_build_info Build identity of the running binary (value is always 1).\n"+
		"# TYPE auditd_build_info gauge\nauditd_build_info{go_version=%q,revision=%q} 1\n",
		s.Build.GoVersion, s.Build.Revision)
	gauge("auditd_uptime_seconds", "Seconds since the service started.", strconv.FormatFloat(s.Uptime.Seconds(), 'g', -1, 64))
	gauge("auditd_goroutines", "Goroutines in the process.", s.Runtime.Goroutines)
	gauge("auditd_heap_bytes", "Live heap bytes (runtime.MemStats.HeapAlloc).", s.Runtime.HeapBytes)
	fcounter("auditd_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", s.Runtime.GCPauseTotal.Seconds())
	counter("auditd_jobs_submitted_total", "Jobs accepted by the service.", s.Submitted)
	counter("auditd_jobs_completed_total", "Jobs finished successfully.", s.Completed)
	counter("auditd_jobs_failed_total", "Jobs finished with an error.", s.Failed)
	counter("auditd_jobs_canceled_total", "Jobs canceled before completion.", s.Canceled)
	counter("auditd_jobs_rejected_total", "Submissions refused (queue full or shutting down).", s.Rejected)
	counter("auditd_cache_hits_total", "Jobs answered from the result cache.", s.CacheHits)
	counter("auditd_cache_coalesced_total", "Jobs attached to an identical in-flight computation.", s.Coalesced)
	counter("auditd_cache_misses_total", "Jobs that enqueued their own computation.", s.CacheMisses)
	counter("auditd_computations_total", "Computations executed by the worker pool.", s.Computations)
	counter("auditd_recommendations_total", "Placement recommendation jobs accepted.", s.Recommendations)
	counter("auditd_private_audits_total", "Private (PIA) audit jobs accepted.", s.PrivateAudits)
	counter("auditd_private_pairs_total", "Provider pairs evaluated by private-audit computations.", s.PrivatePairs)
	counter("auditd_depdb_ingested_records_total", "Dependency records accepted via /v1/depdb.", s.IngestedRecords)
	counter("auditd_depdb_commit_groups_total", "Ingest commit groups (one snapshot segment and fsync pair each).", s.IngestGroups)
	counter("auditd_depdb_throttled_total", "Ingests rejected by the admission rate limit (429).", s.IngestThrottled)
	gauge("auditd_watch_subscribers", "Live /v1/watch subscriptions.", s.WatchSubscribers)
	counter("auditd_watch_subscriptions_total", "Watch subscriptions ever registered.", s.WatchSubscriptions)
	counter("auditd_watch_events_total", "Events queued to watch subscribers.", s.WatchEvents)
	counter("auditd_watch_dropped_events_total", "Events dropped on full subscriber queues (each drop evicts).", s.WatchDropped)
	counter("auditd_watch_evicted_total", "Watch subscribers evicted as slow consumers.", s.WatchEvicted)
	counter("auditd_watch_dirty_marks_total", "Times an ingest marked a watch subscription dirty.", s.WatchDirtyMarks)
	counter("auditd_watch_reaudits_total", "Re-audit jobs submitted by watch refreshers.", s.WatchReaudits)
	counter("auditd_delta_hits_total", "Jobs answered whole from an ancestor result (database changed, subjects untouched).", s.DeltaHits)
	counter("auditd_delta_partial_total", "Jobs that re-audited only their dirty subjects and spliced the rest.", s.DeltaPartials)
	counter("auditd_delta_dirty_subjects_total", "Dirty subjects re-audited across delta-partial jobs.", s.DeltaDirtySubjects)
	gauge("auditd_cache_hit_rate", "Fraction of jobs served without a dedicated computation.", s.HitRate())
	gauge("auditd_cache_entries", "Reports currently in the result cache.", s.CacheEntries)
	gauge("auditd_queue_depth", "Computations waiting for a worker.", s.QueueDepth)
	gauge("auditd_workers", "Size of the worker pool.", s.Workers)
	gauge("auditd_workers_busy", "Workers currently running a computation.", s.BusyWorkers)
	counter("auditd_jobs_recovered_total", "Journaled jobs re-enqueued at boot after a crash.", s.JobsRecovered)
	counter("auditd_worker_panics_total", "Workload panics isolated to their own job.", s.WorkerPanics)
	hist("auditd_job_duration_seconds", "End-to-end job latency from submission to completion, all serve paths.", s.JobDuration)
	hist("auditd_job_queue_wait_seconds", "Time computations waited for a worker.", s.QueueWait)
	hist("auditd_job_compute_seconds", "Worker time spent inside run closures.", s.Compute)
	hist("auditd_ingest_commit_seconds", "Ingest group commit latency (snapshot persist, depdb apply, watch notify).", s.IngestCommit)
	hist("auditd_ingest_notify_seconds", "Latency from an ingest dirtying a watch subscription to its notification event being queued.", s.IngestNotify)
	// The degraded gauge renders unconditionally: a dashboard watching an
	// incident must never see the series vanish because the store flag is
	// off (memory-only daemons legitimately report 0 forever).
	degraded := 0
	if s.Degraded {
		degraded = 1
	}
	gauge("auditd_degraded", "1 while the daemon serves memory-only after store failures.", degraded)
	if s.StoreEnabled {
		counter("auditd_store_hits_total", "Jobs answered from the persistent store.", s.StoreHits)
		counter("auditd_store_puts_total", "Entries written to the persistent store.", s.Store.Puts)
		counter("auditd_store_evictions_total", "Persistent-store evictions (mirrored into the memory cache).", s.Store.Evictions)
		counter("auditd_store_compactions_total", "Persistent-store segment compactions.", s.Store.Compactions)
		counter("auditd_store_errors_total", "Persist failures; the results stayed in memory.", s.StoreErrors)
		counter("auditd_store_skipped_writes_total", "Store writes skipped while serving degraded.", s.StoreSkippedWrites)
		counter("auditd_store_breaker_trips_total", "Times repeated store failures tripped degraded mode.", s.StoreTrips)
		hist("auditd_store_put_seconds", "Persistent-store Put latency, fsync included.", s.Store.PutLatency)
		hist("auditd_store_get_seconds", "Persistent-store Get latency.", s.Store.GetLatency)
		gauge("auditd_store_entries", "Live entries in the persistent store.", s.Store.Entries)
		gauge("auditd_store_live_bytes", "Bytes of live entries in the persistent store.", s.Store.LiveBytes)
		gauge("auditd_store_file_bytes", "Persistent-store segment size on disk.", s.Store.FileBytes)
		gauge("auditd_store_recovered_entries", "Entries recovered when the store was opened.", s.Store.Recovery.Entries)
		gauge("auditd_store_recovery_truncated_bytes", "Torn-tail bytes dropped by the last recovery.", s.Store.Recovery.TruncatedBytes)
		gauge("auditd_store_recovery_quarantined_bytes", "Mid-segment corrupt bytes quarantined by the last recovery.", s.Store.Recovery.QuarantinedBytes)
	}
}
