package auditd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"indaas/internal/deps"
	"indaas/internal/sia"
	"indaas/internal/telemetry"
)

// RecordWire is the JSON form of a deps.Record: a flat tagged union, one
// kind per record, matching the Table 1 fields.
type RecordWire struct {
	Kind string `json:"kind"` // "network", "hardware" or "software"
	// Network fields.
	Src   string   `json:"src,omitempty"`
	Dst   string   `json:"dst,omitempty"`
	Route []string `json:"route,omitempty"`
	// Hardware fields (HW doubles as the software host machine).
	HW   string `json:"hw,omitempty"`
	Type string `json:"type,omitempty"`
	Dep  string `json:"dep,omitempty"`
	// Software fields.
	Pgm  string   `json:"pgm,omitempty"`
	Deps []string `json:"deps,omitempty"`
}

// Record converts the wire form into a validated deps.Record.
func (w RecordWire) Record() (deps.Record, error) {
	var r deps.Record
	switch w.Kind {
	case "network":
		r = deps.NewNetwork(w.Src, w.Dst, w.Route...)
	case "hardware":
		r = deps.NewHardware(w.HW, w.Type, w.Dep)
	case "software":
		r = deps.NewSoftware(w.Pgm, w.HW, w.Deps...)
	default:
		return r, fmt.Errorf("auditd: unknown record kind %q", w.Kind)
	}
	return r, r.Validate()
}

// WireRecords converts native records to their wire form, for clients
// assembling requests from a local DepDB.
func WireRecords(records []deps.Record) []RecordWire {
	out := make([]RecordWire, 0, len(records))
	for _, r := range records {
		var w RecordWire
		switch r.Kind {
		case deps.KindNetwork:
			w = RecordWire{Kind: "network", Src: r.Network.Src, Dst: r.Network.Dst, Route: r.Network.Route}
		case deps.KindHardware:
			w = RecordWire{Kind: "hardware", HW: r.Hardware.HW, Type: r.Hardware.Type, Dep: r.Hardware.Dep}
		case deps.KindSoftware:
			w = RecordWire{Kind: "software", Pgm: r.Software.Pgm, HW: r.Software.HW, Deps: r.Software.Dep}
		}
		out = append(out, w)
	}
	return out
}

// DeploymentWire is one redundancy deployment to audit.
type DeploymentWire struct {
	Name    string   `json:"name"`
	Servers []string `json:"servers"`
	// Needed is the n of an n-of-m deployment; 0 means plain m-way
	// redundancy.
	Needed int `json:"needed,omitempty"`
	// Kinds restricts the dependency kinds considered
	// ("network", "hardware", "software"); empty means all.
	Kinds []string `json:"kinds,omitempty"`
}

// SubmitRequest is the body of POST /v1/audits: the §2 Step 1 client
// specification plus algorithm options.
type SubmitRequest struct {
	// Title names the report; it does NOT contribute to the cache key, so
	// identical audits under different titles still share one computation.
	Title string `json:"title,omitempty"`
	// Records inlines the dependency records to audit. Empty means audit
	// the server's preloaded database.
	Records []RecordWire `json:"records,omitempty"`
	// Deployments lists the alternative deployments to audit and rank.
	Deployments []DeploymentWire `json:"deployments"`
	// Algorithm is "minimal-rg" (default) or "failure-sampling".
	Algorithm string `json:"algorithm,omitempty"`
	// Rounds is the sampling round count (default 100000).
	Rounds int `json:"rounds,omitempty"`
	// Seed seeds the sampler (default 1).
	Seed int64 `json:"seed,omitempty"`
	// SamplerWorkers is the sampler's parallelism. The service default is
	// 1 (sequential) so results — and therefore cache keys — do not depend
	// on the host's CPU count.
	SamplerWorkers int `json:"sampler_workers,omitempty"`
	// FailureProb, when > 0, assigns this uniform failure probability to
	// every component and switches to probability ranking.
	FailureProb float64 `json:"failure_prob,omitempty"`
	// ScoreTopN is the n of the §4.1.4 independence score (0 = all RGs).
	ScoreTopN int `json:"score_top_n,omitempty"`
	// MaxSets / MaxSize bound the minimal-RG algorithm (see riskgroup).
	MaxSets int `json:"max_sets,omitempty"`
	MaxSize int `json:"max_size,omitempty"`
	// TimeoutMS caps the job's run time, measured from the moment a worker
	// starts the computation (queue wait does not count); 0 means the
	// server default. The cap is per job — a job coalescing onto a shared
	// computation keeps its own deadline without imposing it on the other
	// waiters — and, like Title, does not contribute to the cache key.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoForward pins the job to this node. Set by the HTTP layer for
	// requests a cluster peer already forwarded once (single-hop ownership);
	// never by clients, and excluded from JSON and the cache key.
	NoForward bool `json:"-"`
}

// normalized is the canonical, defaults-applied form of a request that the
// cache key hashes: two requests that can only produce identical reports
// (titles aside) normalize identically.
type normalized struct {
	DBFingerprint string           `json:"db"`
	Deployments   []DeploymentWire `json:"deployments"`
	Algorithm     string           `json:"algorithm"`
	Rounds        int              `json:"rounds,omitempty"`
	Seed          int64            `json:"seed,omitempty"`
	Workers       int              `json:"workers,omitempty"`
	FailureProb   float64          `json:"failure_prob,omitempty"`
	ScoreTopN     int              `json:"score_top_n,omitempty"`
	MaxSets       int              `json:"max_sets,omitempty"`
	MaxSize       int              `json:"max_size,omitempty"`
}

// normalize validates the request's option fields and applies defaults,
// returning the canonical form (minus the DB fingerprint, filled in by the
// caller) and the sia options to run with.
func (r *SubmitRequest) normalize() (normalized, sia.Options, error) {
	var n normalized
	var opts sia.Options
	if len(r.Deployments) == 0 {
		return n, opts, fmt.Errorf("auditd: request has no deployments")
	}
	for i, d := range r.Deployments {
		if d.Name == "" || len(d.Servers) == 0 {
			return n, opts, fmt.Errorf("auditd: deployment %d needs a name and at least one server", i)
		}
		if d.Needed < 0 || d.Needed > len(d.Servers) {
			return n, opts, fmt.Errorf("auditd: deployment %q: needed=%d out of range 0..%d", d.Name, d.Needed, len(d.Servers))
		}
		kinds := append([]string(nil), d.Kinds...)
		sort.Strings(kinds)
		for _, k := range kinds {
			if _, err := deps.KindFromString(k); err != nil {
				return n, opts, fmt.Errorf("auditd: deployment %q: %w", d.Name, err)
			}
		}
		n.Deployments = append(n.Deployments, DeploymentWire{
			Name: d.Name, Servers: append([]string(nil), d.Servers...), Needed: d.Needed, Kinds: kinds,
		})
	}
	switch r.Algorithm {
	case "", "minimal-rg":
		n.Algorithm = "minimal-rg"
		opts.Algorithm = sia.MinimalRG
		// Sampler knobs are irrelevant here; keep them zero so they
		// cannot fragment the cache key.
	case "failure-sampling":
		n.Algorithm = "failure-sampling"
		opts.Algorithm = sia.FailureSampling
		n.Rounds = r.Rounds
		if n.Rounds == 0 {
			n.Rounds = 100_000
		}
		n.Seed = r.Seed
		if n.Seed == 0 {
			n.Seed = 1 // the sampler's documented Seed==0 meaning
		}
		n.Workers = r.SamplerWorkers
		if n.Workers == 0 {
			n.Workers = 1 // host-independent by default
		}
		opts.Rounds, opts.Seed, opts.Workers = n.Rounds, n.Seed, n.Workers
	default:
		return n, opts, fmt.Errorf("auditd: unknown algorithm %q", r.Algorithm)
	}
	if r.FailureProb < 0 || r.FailureProb > 1 {
		return n, opts, fmt.Errorf("auditd: failure_prob %v out of [0,1]", r.FailureProb)
	}
	n.FailureProb = r.FailureProb
	if r.FailureProb > 0 {
		opts.RankMode = sia.RankByProb
	}
	if r.ScoreTopN < 0 || r.MaxSets < 0 || r.MaxSize < 0 || r.Rounds < 0 || r.TimeoutMS < 0 || r.SamplerWorkers < 0 {
		// Rejecting sampler_workers < 0 matters for cache correctness: the
		// sampler maps it to GOMAXPROCS, which would make a
		// content-addressed result depend on the host's CPU count.
		return n, opts, fmt.Errorf("auditd: negative option")
	}
	n.ScoreTopN, n.MaxSets, n.MaxSize = r.ScoreTopN, r.MaxSets, r.MaxSize
	opts.ScoreTopN, opts.MaxSets, opts.MaxSize = r.ScoreTopN, r.MaxSets, r.MaxSize
	return n, opts, nil
}

// specs converts the normalized deployments into sia graph specs.
func (n *normalized) specs() []sia.GraphSpec {
	var probFn func(string) float64
	if n.FailureProb > 0 {
		p := n.FailureProb
		probFn = func(string) float64 { return p }
	}
	specs := make([]sia.GraphSpec, 0, len(n.Deployments))
	for _, d := range n.Deployments {
		var kinds []deps.Kind
		for _, name := range d.Kinds {
			k, _ := deps.KindFromString(name) // validated in normalize
			kinds = append(kinds, k)
		}
		specs = append(specs, sia.GraphSpec{
			Deployment: d.Name,
			Servers:    d.Servers,
			Needed:     d.Needed,
			Kinds:      kinds,
			Prob:       probFn,
		})
	}
	return specs
}

// key derives the content address: the SHA-256 of the canonical JSON of the
// normalized request (which embeds the DepDB snapshot fingerprint).
func (n *normalized) key() string {
	return canonicalKey(n)
}

// CacheKey derives the content address the request would be cached under
// against a database with the given fingerprint, without submitting it. The
// cluster router uses it to route the per-deployment sub-audits of a fanned-
// out request to their hash owners.
func (r *SubmitRequest) CacheKey(dbFingerprint string) (string, error) {
	n, _, err := r.normalize()
	if err != nil {
		return "", err
	}
	n.DBFingerprint = dbFingerprint
	return n.key(), nil
}

// requestKey derives the database-independent identity of the request: the
// content address with the DepDB fingerprint blanked. Results computed for
// the same requestKey against different database generations form one
// lineage, which is what delta audits walk to find a reusable ancestor.
func (n *normalized) requestKey() string {
	c := *n
	c.DBFingerprint = ""
	return canonicalKey(&c)
}

// canonicalKey hashes a normalized request form (audit or recommendation)
// into its content address.
func canonicalKey(v any) string {
	blob, err := json.Marshal(v)
	if err != nil {
		// normalized forms contain only plain data; Marshal cannot fail.
		panic(fmt.Sprintf("auditd: canonical marshal: %v", err))
	}
	sum := sha256.Sum256(blob)
	return hex.EncodeToString(sum[:])
}

// JobStatus is the wire form of a job's lifecycle state, returned by submit
// and status endpoints.
type JobStatus struct {
	ID       string `json:"id"`
	State    string `json:"state"` // queued, running, done, failed, canceled
	CacheKey string `json:"cache_key"`
	// Cached is true when the job was answered from the result cache
	// without touching the queue.
	Cached bool `json:"cached,omitempty"`
	// DiskHit is true when the cached answer came from the persistent store
	// rather than the in-memory LRU — e.g. the result was computed before a
	// daemon restart.
	DiskHit bool `json:"disk_hit,omitempty"`
	// Coalesced is true when the job attached to an identical in-flight
	// computation instead of enqueueing its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// DeltaHit is true when the job was answered through the delta-audit
	// lineage: the database changed since an identical request was computed,
	// but the change did not reach the job's subjects (instant answer,
	// DirtySubjects empty) or reached only some of them (only those were
	// re-audited; DirtySubjects lists them).
	DeltaHit bool `json:"delta_hit,omitempty"`
	// DirtySubjects are the job's subjects whose dependency records changed
	// since the ancestor result this job reused was computed.
	DirtySubjects []string `json:"dirty_subjects,omitempty"`
	// Recovered marks a job replayed from the crash journal at boot: a
	// submission an earlier process accepted but never settled, re-enqueued
	// under its original id.
	Recovered   bool       `json:"recovered,omitempty"`
	Error       string     `json:"error,omitempty"`
	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`
	// Trace is the phase timeline of the job's computation (queue-wait,
	// graph-build, minimal-rgs, sampling, splice, persist, notify), with
	// start offsets and durations in nanoseconds relative to submission.
	// Absent for jobs served from a cache/disk/delta hit — they never ran a
	// computation. TraceCounts carries pipeline counts (rgs_found,
	// rounds_sampled, subjects_spliced).
	Trace       []telemetry.Phase `json:"trace,omitempty"`
	TraceCounts map[string]int64  `json:"trace_counts,omitempty"`
}

// TraceResponse is the body of GET /v1/jobs/{id}/trace: the job's phase
// timeline, pipeline counts, and end-to-end elapsed time (submission to
// completion, or to now while the job is still active).
type TraceResponse struct {
	ID        string            `json:"id"`
	State     string            `json:"state"`
	ElapsedNS int64             `json:"elapsed_ns"`
	Phases    []telemetry.Phase `json:"trace"`
	Counts    map[string]int64  `json:"counts,omitempty"`
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
}
