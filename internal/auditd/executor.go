package auditd

// The executor seam: a computation is a Workload — a keyed run closure plus
// the routing facts a scheduler needs — handed to an Executor. The in-process
// worker pool (localExecutor) is one implementation; internal/cluster wraps
// it with a remote executor that forwards workloads to the hash owner of
// their content address and falls back to the wrapped pool when the owner is
// unreachable. The Server never cares which one it holds.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Workload kinds, shared with the crash journal's job kinds: every
// submission path tags its workload so a remote executor knows which wire
// endpoint to re-submit it to and which result type to fetch back.
const (
	KindAudit        = "audit"
	KindRecommend    = "recommend"
	KindPrivateAudit = "private-audit"
)

// Workload is one unit of executable work: the run closure and the facts a
// scheduler needs to place it without understanding its payload.
type Workload struct {
	// Key is the content address of the result (see canonicalKey): any
	// executor anywhere may compute this workload and the result is valid
	// under Key on every node.
	Key string
	// Kind names the workload family — KindAudit, KindRecommend or
	// KindPrivateAudit — so a remote executor knows which result type to
	// fetch back.
	Kind string
	// Wire is the workload's wire request (*SubmitRequest and friends), nil
	// when the submission cannot be re-expressed over HTTP. A remote executor
	// re-submits it verbatim to the owning node.
	Wire any
	// DBFingerprint is the database snapshot the run closure captured; a
	// remote executor may only forward a non-self-contained workload to a
	// node whose database reports the same fingerprint.
	DBFingerprint string
	// SelfContained means the wire request carries everything needed to
	// compute it (inline records, inline provider components): any node can
	// run it regardless of database state.
	SelfContained bool
	// NoForward pins the workload to the local pool: set for requests that
	// were already forwarded once (single-hop ownership), journal-recovered
	// jobs, and delta-planned runs that splice local lineage state.
	NoForward bool
	// Run computes the result. It must honor ctx cancellation.
	Run func(ctx context.Context) (any, error)
}

// ExecCallbacks observe one submitted workload's lifecycle. The executor
// calls Started when a worker actually picks the workload up and Done exactly
// once with the outcome; a workload canceled while still queued gets
// Done(nil, ctx.Err()) without Started. Both are invoked from the executing
// goroutine — never synchronously from Submit, whose caller may hold locks —
// and Started always precedes Done.
type ExecCallbacks struct {
	Started func()
	Done    func(res any, err error)
}

// Executor runs workloads. Submit is asynchronous and non-blocking: it either
// accepts the workload (callbacks fire later) or returns an error — a full
// queue, a closed executor — and fires nothing. Execute is the synchronous
// escape hatch: it runs the workload on the calling goroutine through the
// same panic barrier and hook, bypassing the queue; remote executors use it
// to compute locally when forwarding fails. Close stops intake; Wait blocks
// until accepted work has drained.
type Executor interface {
	Submit(ctx context.Context, w *Workload, cb ExecCallbacks) error
	Execute(ctx context.Context, w *Workload) (any, error)
	QueueDepth() int
	Close()
	Wait()
}

// errExecutorSaturated rejects a Submit when the queue is full; the server
// maps it to 429.
var errExecutorSaturated = errors.New("executor queue is full")

// execItem is one queued workload with its lifecycle observers.
type execItem struct {
	ctx context.Context
	w   *Workload
	cb  ExecCallbacks
}

// localExecutor is the in-process bounded worker pool: a buffered channel of
// workloads drained by a fixed set of goroutines. It owns the worker-side
// metrics (busy gauge, computation counter, compute histogram, panic counter)
// so a clustered node only counts computations it actually ran — forwarded
// work shows up on the owner, not the coordinator.
type localExecutor struct {
	mu     sync.Mutex
	closed bool
	queue  chan *execItem
	wg     sync.WaitGroup
	m      *metrics
	// runHook is Config.RunHook: the fault-injection seam, run before every
	// workload.
	runHook func(ctx context.Context, key string) error
}

// newLocalExecutor starts a pool of workers draining a queue of depth
// queueDepth.
func newLocalExecutor(workers, queueDepth int, m *metrics, runHook func(ctx context.Context, key string) error) *localExecutor {
	e := &localExecutor{
		queue:   make(chan *execItem, queueDepth),
		m:       m,
		runHook: runHook,
	}
	for i := 0; i < workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Submit queues the workload without blocking; the select mirrors the
// pre-refactor non-blocking channel send, so saturation behavior (and the 429
// it maps to) is unchanged.
func (e *localExecutor) Submit(ctx context.Context, w *Workload, cb ExecCallbacks) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return errors.New("executor is closed")
	}
	select {
	case e.queue <- &execItem{ctx: ctx, w: w, cb: cb}:
		return nil
	default:
		return errExecutorSaturated
	}
}

// Execute runs the workload synchronously behind the panic barrier and the
// fault-injection hook. A panicking workload fails only its own jobs — the
// stack lands in JobStatus.Error — while the caller and the rest of the
// daemon keep serving.
func (e *localExecutor) Execute(ctx context.Context, w *Workload) (res any, err error) {
	defer func() {
		if r := recover(); r != nil {
			e.m.workerPanics.Add(1)
			res = nil
			err = fmt.Errorf("worker panic: %v\n%s", r, debug.Stack())
		}
	}()
	if hook := e.runHook; hook != nil {
		if err := hook(ctx, w.Key); err != nil {
			return nil, err
		}
	}
	return w.Run(ctx)
}

// worker drains the queue until Close closes it.
func (e *localExecutor) worker() {
	defer e.wg.Done()
	for item := range e.queue {
		e.runItem(item)
	}
}

// runItem executes one queued workload and settles its callbacks.
func (e *localExecutor) runItem(item *execItem) {
	if item.ctx.Err() != nil {
		// Canceled while queued: discard without running.
		item.cb.Done(nil, item.ctx.Err())
		return
	}
	if item.cb.Started != nil {
		item.cb.Started()
	}
	e.m.busyWorkers.Add(1)
	e.m.computations.Add(1)
	computeStart := time.Now()
	res, err := e.Execute(item.ctx, item.w)
	e.m.compute.Observe(time.Since(computeStart))
	e.m.busyWorkers.Add(-1)
	item.cb.Done(res, err)
}

// QueueDepth reports workloads accepted but not yet picked up.
func (e *localExecutor) QueueDepth() int { return len(e.queue) }

// Close stops intake and lets the workers drain what was accepted.
// Idempotent.
func (e *localExecutor) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	close(e.queue)
}

// Wait blocks until every worker has exited; call after Close.
func (e *localExecutor) Wait() { e.wg.Wait() }
