package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"indaas/internal/report"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestHTTPEndToEnd drives the full submit → poll → report flow over real
// HTTP and pins the report JSON to a golden file (elapsed times zeroed —
// the only nondeterministic field).
func TestHTTPEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	req := &SubmitRequest{
		Title:   "e2e smoke",
		Records: testRecords(),
		Deployments: []DeploymentWire{
			{Name: "s1+s2", Servers: []string{"s1", "s2"}},
			{Name: "s1 alone", Servers: []string{"s1"}},
			{Name: "net only", Servers: []string{"s1", "s2"}, Kinds: []string{"network"}},
		},
		FailureProb: 0.01,
	}
	st, err := c.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State == StateFailed || st.State == StateCanceled {
		t.Fatalf("submit landed in %s", st.State)
	}
	end, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if end.State != StateDone {
		t.Fatalf("job finished %s (%s)", end.State, end.Error)
	}
	rep, err := c.Report(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	compareReportGolden(t, rep, filepath.Join("testdata", "e2e_report_golden.json"))

	// The same report is reachable by content address.
	cached, err := c.Cached(ctx, st.CacheKey)
	if err != nil {
		t.Fatal(err)
	}
	if len(cached.Audits) != len(rep.Audits) {
		t.Fatalf("cached lookup returned %d audits, want %d", len(cached.Audits), len(rep.Audits))
	}

	// An unweighted audit must survive JSON encoding (NaN → omitted).
	unweighted := &SubmitRequest{
		Title:       "unweighted",
		Records:     testRecords(),
		Deployments: []DeploymentWire{{Name: "s1+s2", Servers: []string{"s1", "s2"}}},
		Algorithm:   "failure-sampling",
		Rounds:      5_000,
	}
	st2, err := c.Submit(ctx, unweighted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDone(ctx, st2.ID); err != nil {
		t.Fatal(err)
	}
	rep2, err := c.Report(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Audits) != 1 || rep2.Audits[0].Algorithm != "failure-sampling" {
		t.Fatalf("unexpected unweighted report: %+v", rep2)
	}

	// Metrics expose the counters the dashboard needs.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"auditd_jobs_submitted_total 2",
		"auditd_cache_hit_rate",
		"auditd_queue_depth",
		"auditd_workers_busy",
		"auditd_computations_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	// Error surfaces: unknown job, premature report, bad body.
	if _, err := c.Status(ctx, "job-999999", 0); httpStatus(err) != 404 {
		t.Errorf("unknown job: want 404, got %v", err)
	}
	if _, err := c.Submit(ctx, &SubmitRequest{}); httpStatus(err) != 400 {
		t.Errorf("empty submit: want 400, got %v", err)
	}
}

// TestHTTPCancel cancels an in-flight job through the API and confirms the
// worker pool recovers, all over real HTTP.
func TestHTTPCancel(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, slowRequest("stuck", 77))
	if err != nil {
		t.Fatal(err)
	}
	canceled, err := c.Cancel(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if canceled.State != StateCanceled {
		t.Fatalf("cancel returned %s", canceled.State)
	}
	quick, err := c.Submit(ctx, quickRequest("after"))
	if err != nil {
		t.Fatal(err)
	}
	end, err := c.WaitDone(ctx, quick.ID)
	if err != nil {
		t.Fatal(err)
	}
	if end.State != StateDone {
		t.Fatalf("post-cancel job finished %s", end.State)
	}
}

// compareReportGolden pins a report's JSON to a golden file with elapsed
// times zeroed.
func compareReportGolden(t *testing.T, rep *report.Report, golden string) {
	t.Helper()
	norm := *rep
	norm.Audits = append([]report.DeploymentAudit(nil), rep.Audits...)
	for i := range norm.Audits {
		norm.Audits[i].Elapsed = 0
	}
	got, err := json.MarshalIndent(&norm, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/auditd -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report drifted from %s.\ngot:\n%s", golden, got)
	}
}
