package auditd

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"indaas/internal/deps"
)

// TestTokenBucket covers the bucket's arithmetic on a fake clock: refill,
// deficit quoting, the oversized-batch clamp, and the unlimited nil bucket.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }

	if b := newTokenBucket(0, 10, clock); b != nil {
		t.Fatal("rate 0 must mean unlimited (nil bucket)")
	}
	var nb *tokenBucket
	if ok, _ := nb.take(1e9); !ok {
		t.Fatal("nil bucket refused a take")
	}

	b := newTokenBucket(10, 5, clock)
	if ok, _ := b.take(5); !ok {
		t.Fatal("full bucket refused its burst")
	}
	ok, ra := b.take(2)
	if ok || ra != 200*time.Millisecond {
		t.Fatalf("empty bucket take(2) = %v, %v; want refusal quoting 200ms", ok, ra)
	}
	now = now.Add(200 * time.Millisecond)
	if ok, _ := b.take(2); !ok {
		t.Fatal("bucket did not refill at rate")
	}
	// A batch larger than the whole bucket quotes the full refill, not the
	// (unpayable) deficit — the client's backoff still terminates.
	ok, ra = b.take(500)
	if ok || ra > 500*time.Millisecond || ra <= 0 {
		t.Fatalf("oversized take = %v, %v; want refusal within one bucket refill", ok, ra)
	}
	// Refill never overshoots the burst.
	now = now.Add(time.Hour)
	if ok, _ := b.take(5); !ok {
		t.Fatal("bucket lost its burst capacity")
	}
	if ok, _ := b.take(1); ok {
		t.Fatal("bucket held more than its burst after a long idle")
	}
	// An oversized batch is admitted once the bucket is full — it borrows,
	// so a patient client is never starved — and the debt throttles what
	// follows until the refill repays it.
	now = now.Add(time.Hour)
	if ok, _ := b.take(20); !ok {
		t.Fatal("full bucket refused an oversized batch outright")
	}
	ok, ra = b.take(1)
	if ok || ra != 1600*time.Millisecond {
		t.Fatalf("take(1) under debt = %v, %v; want refusal quoting the 16-token deficit", ok, ra)
	}
	now = now.Add(1600 * time.Millisecond)
	if ok, _ := b.take(1); !ok {
		t.Fatal("debt never repaid")
	}
}

func nicRecord(i int) RecordWire {
	return WireRecords([]deps.Record{deps.NewHardware("s1", "NIC", "x520")})[i%1]
}

// TestIngestRateLimit429: a batch that outruns the bucket is refused whole
// with 429 and a Retry-After quoting the deficit's refill time.
func TestIngestRateLimit429(t *testing.T) {
	s := New(Config{Workers: 1, IngestRate: 1, IngestBurst: 4})
	defer shutdown(t, s)

	batch := []RecordWire{nicRecord(0), nicRecord(1), nicRecord(2), nicRecord(3)}
	if _, err := s.Ingest(&IngestRequest{Records: batch}); err != nil {
		t.Fatalf("ingest within burst: %v", err)
	}
	_, err := s.Ingest(&IngestRequest{Records: batch})
	if httpStatus(err) != 429 {
		t.Fatalf("ingest past burst = %v, want 429", err)
	}
	var se *statusErr
	if !errors.As(err, &se) || se.retryAfter <= 0 || se.retryAfter > 5*time.Second {
		t.Fatalf("throttle carried retryAfter %v, want the ~4s deficit", se.retryAfter)
	}
	st := s.Stats()
	if st.IngestThrottled != 1 || st.IngestedRecords != 4 {
		t.Fatalf("after throttle: throttled=%d ingested=%d", st.IngestThrottled, st.IngestedRecords)
	}
}

// TestIngestThrottleSelfPaces is the fleet contract over HTTP: the 429
// carries a Retry-After header, a retrying client honors it, and the
// once-throttled ingest lands on its own.
func TestIngestThrottleSelfPaces(t *testing.T) {
	s := New(Config{Workers: 1, IngestRate: 20, IngestBurst: 4})
	defer gracefulShutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()
	batch := []RecordWire{nicRecord(0), nicRecord(1), nicRecord(2), nicRecord(3)}

	noRetry := NewClient(ts.URL, ts.Client())
	noRetry.Retry = RetryPolicy{MaxAttempts: 1}
	if _, err := noRetry.Ingest(ctx, batch); err != nil {
		t.Fatalf("ingest within burst: %v", err)
	}
	_, err := noRetry.Ingest(ctx, batch)
	if httpStatus(err) != 429 {
		t.Fatalf("ingest past burst = %v, want 429", err)
	}
	// The header's floor is one whole second even for a 20ms deficit.
	var se *statusErr
	if !errors.As(err, &se) || se.retryAfter != time.Second {
		t.Fatalf("429 carried retryAfter %v, want the 1s header", se)
	}

	c := NewClient(ts.URL, ts.Client())
	c.Retry = RetryPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 100 * time.Millisecond}
	start := time.Now()
	resp, err := c.Ingest(ctx, batch)
	if err != nil {
		t.Fatalf("self-pacing ingest: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry fired after %v, want the server's Retry-After honored", elapsed)
	}
	// The refused batch never landed (all or nothing); the two admitted
	// batches did.
	if resp.Total != 8 {
		t.Fatalf("database holds %d records, want the two admitted batches", resp.Total)
	}
	if st := s.Stats(); st.IngestThrottled < 2 {
		t.Fatalf("IngestThrottled = %d, want both refusals counted", st.IngestThrottled)
	}
}
