package auditd

// Private-audit (PIA) service tests: the registry round-trip, the served
// audit path with fingerprint-addressed caching, registry durability across
// restarts, journal recovery of in-flight private audits, and the NaN-safe
// wire encoding.

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"indaas/internal/report"
)

// testPrivateAuditRequest references the registered "left"/"right" datasets
// by name: the request itself carries no components.
func testPrivateAuditRequest(title string) *PrivateAuditRequest {
	return &PrivateAuditRequest{
		Title:     title,
		Providers: []ProviderWire{{Name: "left"}, {Name: "right"}},
		Protocol:  "cleartext",
	}
}

func registerTestProviders(t *testing.T, s *Server) {
	t.Helper()
	for name, comps := range map[string][]string{
		"left":  {"pkg:a", "pkg:b", "pkg:c", "pkg:shared"},
		"right": {"pkg:x", "pkg:y", "pkg:shared"},
	} {
		if _, err := s.RegisterProvider(&RegisterProviderRequest{Name: name, Components: comps}); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPrivateAuditServed drives the full served flow through the HTTP API
// and Client: register datasets, audit them by reference, read the ranked
// result, then resubmit and require a cache hit — the fingerprints did not
// change, so no protocol rounds may run.
func TestPrivateAuditServed(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, http.DefaultClient)
	ctx := context.Background()

	if _, err := c.RegisterProvider(ctx, "left", []string{"pkg:a", "pkg:b", "pkg:c", "pkg:shared"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterProvider(ctx, "right", []string{"pkg:x", "pkg:y", "pkg:shared"}); err != nil {
		t.Fatal(err)
	}
	provs, err := c.Providers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) != 2 || provs[0].Name != "left" || provs[0].Components != 4 || provs[0].Fingerprint == "" {
		t.Fatalf("providers = %+v", provs)
	}

	st, err := c.PrivateAudit(ctx, testPrivateAuditRequest("served"))
	if err != nil {
		t.Fatal(err)
	}
	if end, err := c.WaitDone(ctx, st.ID); err != nil || end.State != StateDone {
		t.Fatalf("WaitDone = %+v, %v", end, err)
	}
	res, err := c.PrivateAuditResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	// |{shared}| / |{a,b,c,x,y,shared}| = 1/6.
	if res.Pairs != 1 || len(res.Entries) != 1 || res.Entries[0].Jaccard == nil {
		t.Fatalf("result = %+v", res)
	}
	if got := *res.Entries[0].Jaccard; math.Abs(got-1.0/6) > 1e-9 {
		t.Fatalf("jaccard = %v, want 1/6", got)
	}
	if res.Protocol != "cleartext" || res.Title != "served" {
		t.Fatalf("result header = %q/%q", res.Protocol, res.Title)
	}

	// The wrong-kind guards on the shared result endpoint.
	if _, err := c.Report(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "PrivateAuditResult") {
		t.Fatalf("Report on a private audit = %v", err)
	}
	if _, err := c.RecommendResult(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "PrivateAuditResult") {
		t.Fatalf("RecommendResult on a private audit = %v", err)
	}

	// Identical resubmission: answered from cache, nothing recomputed, and
	// the retitle path hands back the new title on a shallow copy.
	before := s.Stats()
	st2, err := c.PrivateAudit(ctx, testPrivateAuditRequest("served again"))
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.Cached || st2.CacheKey != st.CacheKey {
		t.Fatalf("resubmit = %+v, want a done cache hit on %s", st2, st.CacheKey)
	}
	after := s.Stats()
	if after.Computations != before.Computations {
		t.Fatalf("resubmit recomputed: %d → %d", before.Computations, after.Computations)
	}
	res2, err := c.PrivateAuditResult(ctx, st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Title != "served again" || res.Title != "served" {
		t.Fatalf("retitle leaked: %q / %q", res2.Title, res.Title)
	}
	if after.PrivateAudits != 2 || after.PrivatePairs != 1 {
		t.Fatalf("PrivateAudits=%d PrivatePairs=%d, want 2/1", after.PrivateAudits, after.PrivatePairs)
	}

	// The counters surface on /metrics under compliant names.
	var buf bytes.Buffer
	s.Stats().render(&buf)
	for _, want := range []string{"auditd_private_audits_total 2", "auditd_private_pairs_total 1"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestPrivateAuditInlineSharesCacheKey: an inline submission of the same
// datasets under the same names addresses the same cached result — the key
// hashes fingerprints, not transport.
func TestPrivateAuditInlineSharesCacheKey(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	registerTestProviders(t, s)

	st, err := s.PrivateAudit(testPrivateAuditRequest("by reference"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, st.ID)

	inline := testPrivateAuditRequest("inline")
	inline.Providers = []ProviderWire{
		// Unsorted components and a duplicate: normalization canonicalizes.
		{Name: "right", Components: []string{"pkg:y", "pkg:shared", "pkg:x", "pkg:y"}},
		{Name: "left", Components: []string{"pkg:shared", "pkg:c", "pkg:b", "pkg:a"}},
	}
	st2, err := s.PrivateAudit(inline)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached || st2.CacheKey != st.CacheKey {
		t.Fatalf("inline submission missed the cache: %+v vs key %s", st2, st.CacheKey)
	}
}

// TestRegisterProviderErrors pins the registry's rejection paths.
func TestRegisterProviderErrors(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	cases := []struct {
		name string
		req  RegisterProviderRequest
		want string
	}{
		{"empty name", RegisterProviderRequest{Components: []string{"a"}}, "needs a name"},
		{"slash in name", RegisterProviderRequest{Name: "a/b", Components: []string{"a"}}, "may not contain"},
		{"empty set", RegisterProviderRequest{Name: "p"}, "empty component-set"},
		{"empty component", RegisterProviderRequest{Name: "p", Components: []string{"a", ""}}, "empty component name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.RegisterProvider(&tc.req)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
			if code := httpStatus(err); code != 400 {
				t.Fatalf("status = %d, want 400", code)
			}
		})
	}
}

// TestPrivateAuditRegistryRestart: registered datasets and cached private
// audits survive a restart — the registry reloads from KindMeta records and
// a resubmitted audit disk-hits instead of recomputing.
func TestPrivateAuditRegistryRestart(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	s1 := New(Config{Workers: 1, Store: st1})
	registerTestProviders(t, s1)
	j, err := s1.PrivateAudit(testPrivateAuditRequest("before restart"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, j.ID)
	gracefulShutdown(t, s1)

	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 1, Store: st2})
	defer gracefulShutdown(t, s2)
	provs := s2.Providers()
	if len(provs) != 2 || provs[0].Name != "left" || provs[1].Name != "right" {
		t.Fatalf("restored providers = %+v", provs)
	}

	st, err := s2.PrivateAudit(testPrivateAuditRequest("after restart"))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.Cached {
		t.Fatalf("post-restart resubmit = %+v, want a disk hit", st)
	}
	stats := s2.Stats()
	if stats.Computations != 0 || stats.StoreHits != 1 {
		t.Fatalf("computations=%d storeHits=%d, want 0/1", stats.Computations, stats.StoreHits)
	}
	res, err := s2.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if pr, ok := res.(*PrivateAuditResponse); !ok || pr.Title != "after restart" {
		t.Fatalf("restored result = %#v", res)
	}
}

// TestPrivateAuditJournalRecovery: a private audit accepted before a crash
// is replayed at the next boot under its original id — which requires the
// provider registry to restore before the journal replays.
func TestPrivateAuditJournalRecovery(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	release := make(chan struct{})
	s1 := New(Config{Workers: 1, Store: st1, RunHook: blockingHook(release)})
	defer shutdown(t, s1) // cancels the parked computation at test end
	registerTestProviders(t, s1)

	first, err := s1.PrivateAudit(testPrivateAuditRequest("crash-me"))
	if err != nil {
		t.Fatal(err)
	}
	if first.State == StateDone {
		t.Fatalf("job settled before the crash: %+v", first)
	}
	if err := st1.Close(); err != nil { // emulate kill -9
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 1, Store: st2})
	defer gracefulShutdown(t, s2)
	n, err := s2.RecoverJobs()
	if err != nil || n != 1 {
		t.Fatalf("RecoverJobs = %d, %v; want 1 job", n, err)
	}
	done := waitDone(t, s2, first.ID)
	if done.State != StateDone || !done.Recovered {
		t.Fatalf("recovered job = %+v, want done+recovered", done)
	}
	res, err := s2.Result(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	pr, ok := res.(*PrivateAuditResponse)
	if !ok || len(pr.Entries) != 1 || pr.Entries[0].Jaccard == nil {
		t.Fatalf("recovered result = %#v", res)
	}
	if got := *pr.Entries[0].Jaccard; math.Abs(got-1.0/6) > 1e-9 {
		t.Fatalf("recovered jaccard = %v, want 1/6", got)
	}
	waitNoJournal(t, st2)
}

// TestPrivateAuditResponseGoldenJSON pins the wire encoding against a
// golden file, including the NaN paths: a NaN Jaccard and a zero-elapsed
// throughput are omitted rather than emitted (encoding/json rejects NaN),
// and the encoding round-trips.
func TestPrivateAuditResponseGoldenJSON(t *testing.T) {
	rep := &report.PIAReport{Entries: []report.PIAEntry{
		{Providers: []string{"left", "right"}, Jaccard: 0.25, Estimated: true,
			BytesSent: 4096, Elapsed: 5 * time.Millisecond},
		{Providers: []string{"left", "mid"}, Jaccard: math.NaN()},
	}}
	infos := []ProviderInfo{
		{Name: "left", Fingerprint: "fp-left", Components: 4},
		{Name: "mid", Fingerprint: "fp-mid", Components: 2},
		{Name: "right", Fingerprint: "fp-right", Components: 3},
	}
	res := PrivateAuditResponseFromReport(rep, infos, "p-sop", 2*time.Second)
	res.Title = "golden"

	got, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "private_audit_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("wire encoding drifted from %s (UPDATE_GOLDEN=1 to regenerate):\n%s", golden, got)
	}

	var back PrivateAuditResponse
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatal(err)
	}
	if back.Entries[1].Jaccard != nil {
		t.Fatalf("NaN jaccard round-tripped as %v, want omitted", *back.Entries[1].Jaccard)
	}
	if back.Entries[0].Jaccard == nil || *back.Entries[0].Jaccard != 0.25 || !back.Entries[0].Estimated {
		t.Fatalf("entry 0 mangled: %+v", back.Entries[0])
	}
	if back.PairsPerSec == nil || *back.PairsPerSec != 1 {
		t.Fatalf("pairs_per_sec = %v, want 1", back.PairsPerSec)
	}

	// Zero elapsed: the rate is +Inf and must be omitted, not encoded.
	instant := PrivateAuditResponseFromReport(rep, infos, "p-sop", 0)
	if instant.PairsPerSec != nil {
		t.Fatalf("zero-elapsed PairsPerSec = %v, want nil", *instant.PairsPerSec)
	}
	if _, err := json.Marshal(instant); err != nil {
		t.Fatalf("zero-elapsed response does not encode: %v", err)
	}
}

// TestPrivateAuditRecoveryMatchesCleanRun: the journal replay produces
// byte-identical results (elapsed aside) to an uninterrupted run.
func TestPrivateAuditRecoveryMatchesCleanRun(t *testing.T) {
	clean := New(Config{Workers: 1})
	defer shutdown(t, clean)
	registerTestProviders(t, clean)
	j, err := clean.PrivateAudit(testPrivateAuditRequest("clean"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, clean, j.ID)
	cleanRes, err := clean.Result(j.ID)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	st1 := openStore(t, dir)
	release := make(chan struct{})
	s1 := New(Config{Workers: 1, Store: st1, RunHook: blockingHook(release)})
	defer shutdown(t, s1)
	registerTestProviders(t, s1)
	if _, err := s1.PrivateAudit(testPrivateAuditRequest("clean")); err != nil {
		t.Fatal(err)
	}
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 1, Store: st2})
	defer gracefulShutdown(t, s2)
	if n, err := s2.RecoverJobs(); err != nil || n != 1 {
		t.Fatalf("RecoverJobs = %d, %v", n, err)
	}
	waitDone(t, s2, "job-000001")
	recRes, err := s2.Result("job-000001")
	if err != nil {
		t.Fatal(err)
	}

	elapsed := regexp.MustCompile(`"(elapsed_ns|pairs_per_sec)":[0-9.eE+-]+,?`)
	norm := func(v any) string {
		b, _ := json.Marshal(v)
		return elapsed.ReplaceAllString(string(b), "")
	}
	if got, want := norm(recRes), norm(cleanRes); got != want {
		t.Fatalf("recovered result diverges:\n%s\nvs\n%s", got, want)
	}
}
