package auditd

import (
	"bytes"
	"encoding/json"
	"fmt"

	"indaas/internal/depdb"
	"indaas/internal/report"
	"indaas/internal/store"
)

// Store key namespaces. Result entries use the raw content address (a
// SHA-256 hex string, which never contains '/'); DepDB entries live under
// the depdb/ prefix so the two spaces cannot collide.
const (
	// snapshotKeyPrefix + fingerprint stores an encoded DepDB snapshot.
	snapshotKeyPrefix = "depdb/"
	// currentSnapshotKey stores the fingerprint of the snapshot a restarted
	// daemon should serve.
	currentSnapshotKey = "depdb/current"
)

// persistedResult is the disk envelope for a completed computation: a kind
// tag telling the decoder which concrete wire type the payload holds.
type persistedResult struct {
	Kind    string          `json:"kind"` // "audit" or "recommend"
	Payload json.RawMessage `json:"payload"`
}

// encodeResult serializes a completed result for the disk store. Both
// payload types already define stable, NaN-safe JSON.
func encodeResult(res any) ([]byte, error) {
	var kind string
	switch res.(type) {
	case *report.Report:
		kind = "audit"
	case *RecommendResponse:
		kind = "recommend"
	default:
		return nil, fmt.Errorf("auditd: result type %T is not persistable", res)
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return json.Marshal(persistedResult{Kind: kind, Payload: payload})
}

// decodeResult reverses encodeResult.
func decodeResult(blob []byte) (any, error) {
	var env persistedResult
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, err
	}
	switch env.Kind {
	case "audit":
		rep := new(report.Report)
		if err := json.Unmarshal(env.Payload, rep); err != nil {
			return nil, err
		}
		return rep, nil
	case "recommend":
		resp := new(RecommendResponse)
		if err := json.Unmarshal(env.Payload, resp); err != nil {
			return nil, err
		}
		return resp, nil
	default:
		return nil, fmt.Errorf("auditd: unknown persisted result kind %q", env.Kind)
	}
}

// RestoreDB rebuilds the dependency database a crashed or restarted daemon
// was serving: the persisted current DepDB snapshot, loaded into a fresh
// mutable database so later ingests keep working. It returns nil (and no
// error) when the store holds no snapshot. The restored database reproduces
// the pre-restart canonical fingerprint, so cached results computed against
// it stay addressable.
func RestoreDB(st *store.Store) (*depdb.DB, error) {
	fpBlob, _, ok, err := st.Get(currentSnapshotKey)
	if err != nil {
		return nil, fmt.Errorf("auditd: reading current snapshot pointer: %w", err)
	}
	if !ok {
		return nil, nil
	}
	fp := string(fpBlob)
	blob, _, ok, err := st.Get(snapshotKeyPrefix + fp)
	if err != nil {
		return nil, fmt.Errorf("auditd: reading snapshot %s: %w", fp, err)
	}
	if !ok {
		return nil, fmt.Errorf("auditd: store names current snapshot %s but holds no entry for it", fp)
	}
	db, err := depdb.DecodeDB(bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	if got := db.Fingerprint(); got != fp {
		return nil, fmt.Errorf("auditd: snapshot stored as %s decodes to fingerprint %s", fp, got)
	}
	return db, nil
}

// diskGet serves a content address from the disk store after an in-memory
// miss. It is called WITHOUT s.mu held — the read, checksum verification
// and JSON decode may take milliseconds for a large report and must not
// stall the job table; the store synchronizes itself. IO or decode failures
// degrade to a miss: the computation simply reruns.
func (s *Server) diskGet(key string) (any, bool) {
	if s.store == nil {
		return nil, false
	}
	blob, kind, ok, err := s.store.Get(key)
	if err != nil || !ok || kind != store.KindResult {
		return nil, false
	}
	res, err := decodeResult(blob)
	if err != nil {
		return nil, false
	}
	return res, true
}

// persistResult writes a completed computation through to the disk store,
// returning any keys the store evicted to stay within budget (mirrored into
// the memory LRU by the caller). Persist failures are recorded but never
// fail the job: the result still lives in memory.
func (s *Server) persistResult(key string, res any) []string {
	if s.store == nil {
		return nil
	}
	blob, err := encodeResult(res)
	if err != nil {
		s.m.storeErrors.Add(1)
		return nil
	}
	evicted, err := s.store.Put(key, store.KindResult, blob)
	if err != nil {
		s.m.storeErrors.Add(1)
	}
	return evicted
}

// persistSnapshot makes an ingested DepDB snapshot durable: the encoded
// snapshot under its canonical fingerprint, the current pointer for restart
// recovery, and deletion of the superseded snapshot. Caller holds
// s.ingestMu, which serializes persisted snapshots with their ingests.
func (s *Server) persistSnapshot(snap *depdb.Snapshot) error {
	if s.store == nil {
		return nil
	}
	fp := snap.Fingerprint()
	if s.snapFP == fp {
		return nil
	}
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		return err
	}
	evicted, err := s.store.Put(snapshotKeyPrefix+fp, store.KindSnapshot, buf.Bytes())
	if err != nil {
		return err
	}
	ev2, err := s.store.Put(currentSnapshotKey, store.KindMeta, []byte(fp))
	evicted = append(evicted, ev2...)
	if err != nil {
		return err
	}
	if prev := s.snapFP; prev != "" {
		// Superseded: the new snapshot carries every record the old one did.
		// Best-effort — a leftover old snapshot only costs bytes.
		s.store.Delete(snapshotKeyPrefix + prev)
	}
	s.snapFP = fp
	s.mu.Lock()
	s.dropCachedLocked(evicted, "")
	s.mu.Unlock()
	return nil
}

// dropCachedLocked mirrors disk-store evictions into the in-memory LRU so
// the two tiers cannot disagree about what is retrievable. except (usually
// the key just written) is spared: even if the store could not retain it,
// the in-memory copy stays valid. Caller holds s.mu.
func (s *Server) dropCachedLocked(keys []string, except string) {
	for _, key := range keys {
		if key == except {
			continue
		}
		s.cache.remove(key)
		s.m.storeEvictions.Add(1)
	}
}
