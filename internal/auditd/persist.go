package auditd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/report"
	"indaas/internal/store"
)

// Store key namespaces. Result entries use the raw content address (a
// SHA-256 hex string, which never contains '/'); DepDB entries live under
// the depdb/ prefix so the two spaces cannot collide.
//
// The dependency database persists as a *snapshot chain*: depdb/current
// holds a snapMeta naming a generation and its segment count, and
// depdb/seg/<gen>/<i> holds the i-th batch of records (Table 1 XML). Each
// ingest appends one segment — O(batch) bytes — instead of rewriting the
// whole database; RestoreDB replays the chain in order and consolidates it
// back to a single segment, so chains stay short across restarts and a
// crash between writes is harmless (the current pointer flips only after
// the segment it names is durable).
const (
	// currentSnapshotKey stores the snapMeta of the chain a restarted
	// daemon should replay.
	currentSnapshotKey = "depdb/current"
	// segmentKeyPrefix + "<gen>/<i>" stores one ingested batch.
	segmentKeyPrefix = "depdb/seg/"
	// legacySnapshotPrefix is the pre-chain layout: one whole-database
	// snapshot under its fingerprint, named by a raw-string current pointer.
	// RestoreDB migrates it forward.
	legacySnapshotPrefix = "depdb/"
)

// snapMeta is the JSON value of currentSnapshotKey: which generation of the
// snapshot chain is live, how many segments it has, and the canonical
// fingerprint replaying them must reproduce.
type snapMeta struct {
	Fingerprint string `json:"fingerprint"`
	Gen         int    `json:"gen"`
	Segments    int    `json:"segments"`
}

func segmentKey(gen, i int) string {
	return fmt.Sprintf("%s%d/%d", segmentKeyPrefix, gen, i)
}

// readSnapMeta loads the persisted chain state; a missing or legacy-format
// pointer yields the zero meta (Segments == 0 ⇒ nothing persisted yet, so
// the next ingest starts a fresh generation with a full base segment).
func readSnapMeta(st *store.Store) snapMeta {
	var meta snapMeta
	blob, _, ok, err := st.Get(currentSnapshotKey)
	if err != nil || !ok {
		return snapMeta{}
	}
	if json.Unmarshal(blob, &meta) != nil || meta.Segments <= 0 {
		return snapMeta{}
	}
	return meta
}

// persistedResult is the disk envelope for a completed computation: a kind
// tag telling the decoder which concrete wire type the payload holds.
type persistedResult struct {
	Kind    string          `json:"kind"` // "audit", "recommend" or "private-audit"
	Payload json.RawMessage `json:"payload"`
}

// encodeResult serializes a completed result for the disk store. All
// payload types already define stable, NaN-safe JSON.
func encodeResult(res any) ([]byte, error) {
	var kind string
	switch res.(type) {
	case *report.Report:
		kind = "audit"
	case *RecommendResponse:
		kind = "recommend"
	case *PrivateAuditResponse:
		kind = "private-audit"
	default:
		return nil, fmt.Errorf("auditd: result type %T is not persistable", res)
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return nil, err
	}
	return json.Marshal(persistedResult{Kind: kind, Payload: payload})
}

// decodeResult reverses encodeResult.
func decodeResult(blob []byte) (any, error) {
	var env persistedResult
	if err := json.Unmarshal(blob, &env); err != nil {
		return nil, err
	}
	switch env.Kind {
	case "audit":
		rep := new(report.Report)
		if err := json.Unmarshal(env.Payload, rep); err != nil {
			return nil, err
		}
		return rep, nil
	case "recommend":
		resp := new(RecommendResponse)
		if err := json.Unmarshal(env.Payload, resp); err != nil {
			return nil, err
		}
		return resp, nil
	case "private-audit":
		resp := new(PrivateAuditResponse)
		if err := json.Unmarshal(env.Payload, resp); err != nil {
			return nil, err
		}
		return resp, nil
	default:
		return nil, fmt.Errorf("auditd: unknown persisted result kind %q", env.Kind)
	}
}

// RestoreDB rebuilds the dependency database a crashed or restarted daemon
// was serving by replaying the persisted snapshot chain, loaded into a fresh
// mutable database so later ingests keep working. It returns nil (and no
// error) when the store holds no snapshot. The restored database reproduces
// the pre-restart canonical fingerprint, so cached results computed against
// it stay addressable. A chain longer than one segment is consolidated back
// to a single segment while the daemon is still offline — the one moment
// O(database) persistence work is acceptable — and stale generations are
// swept.
func RestoreDB(st *store.Store) (*depdb.DB, error) {
	blob, _, ok, err := st.Get(currentSnapshotKey)
	if err != nil {
		return nil, fmt.Errorf("auditd: reading current snapshot pointer: %w", err)
	}
	if !ok {
		return nil, nil
	}
	var meta snapMeta
	if json.Unmarshal(blob, &meta) != nil || meta.Segments <= 0 {
		return restoreLegacyDB(st, strings.TrimSpace(string(blob)))
	}
	db := depdb.New()
	for i := 0; i < meta.Segments; i++ {
		seg, _, ok, err := st.Get(segmentKey(meta.Gen, i))
		if err != nil {
			return nil, fmt.Errorf("auditd: reading snapshot segment %d/%d: %w", meta.Gen, i, err)
		}
		if !ok {
			return nil, fmt.Errorf("auditd: store names a %d-segment chain but segment %d/%d is missing", meta.Segments, meta.Gen, i)
		}
		records, err := deps.DecodeXML(bytes.NewReader(seg))
		if err != nil {
			return nil, fmt.Errorf("auditd: decoding snapshot segment %d/%d: %w", meta.Gen, i, err)
		}
		if err := db.Put(records...); err != nil {
			return nil, fmt.Errorf("auditd: replaying snapshot segment %d/%d: %w", meta.Gen, i, err)
		}
	}
	if got := db.Fingerprint(); got != meta.Fingerprint {
		return nil, fmt.Errorf("auditd: snapshot chain stored as %s replays to fingerprint %s", meta.Fingerprint, got)
	}
	live := meta
	if meta.Segments > 1 {
		next, err := consolidateChain(st, db, meta)
		if err != nil {
			return nil, err
		}
		live = next
	}
	sweepStaleSegments(st, live)
	return db, nil
}

// restoreLegacyDB migrates a pre-chain store: the current pointer held a raw
// fingerprint string and the whole database sat under depdb/<fp>. The
// fingerprint algorithm has changed since, so the entry is re-addressed
// under a fresh single-segment chain and the legacy keys are deleted.
func restoreLegacyDB(st *store.Store, legacyFP string) (*depdb.DB, error) {
	if legacyFP == "" {
		return nil, nil
	}
	blob, _, ok, err := st.Get(legacySnapshotPrefix + legacyFP)
	if err != nil {
		return nil, fmt.Errorf("auditd: reading legacy snapshot %s: %w", legacyFP, err)
	}
	if !ok {
		return nil, fmt.Errorf("auditd: store names current snapshot %s but holds no entry for it", legacyFP)
	}
	db, err := depdb.DecodeDB(bytes.NewReader(blob))
	if err != nil {
		return nil, err
	}
	meta := snapMeta{Fingerprint: db.Fingerprint(), Gen: 1, Segments: 1}
	if _, err := writeChain(st, db.Records(), meta); err != nil {
		return nil, fmt.Errorf("auditd: migrating legacy snapshot: %w", err)
	}
	st.Delete(legacySnapshotPrefix + legacyFP) // best-effort; superseded
	return db, nil
}

// consolidateChain rewrites a multi-segment chain as one segment under the
// next generation and deletes the old generation's segments. The new
// generation is fully durable before the current pointer flips, so a crash
// at any point leaves a replayable chain.
func consolidateChain(st *store.Store, db *depdb.DB, meta snapMeta) (snapMeta, error) {
	next := snapMeta{Fingerprint: meta.Fingerprint, Gen: meta.Gen + 1, Segments: 1}
	if _, err := writeChain(st, db.Records(), next); err != nil {
		return meta, fmt.Errorf("auditd: consolidating snapshot chain: %w", err)
	}
	for i := 0; i < meta.Segments; i++ {
		st.Delete(segmentKey(meta.Gen, i)) // best-effort; swept on next boot
	}
	return next, nil
}

// writeChain persists records as a fresh single-segment chain and flips the
// current pointer to it, returning any result keys the store evicted to
// stay in budget (empty at boot time, when only RestoreDB calls write).
func writeChain(st *store.Store, records []deps.Record, meta snapMeta) ([]string, error) {
	var buf bytes.Buffer
	if err := deps.EncodeXML(&buf, records); err != nil {
		return nil, err
	}
	evicted, err := st.Put(segmentKey(meta.Gen, 0), store.KindSnapshot, buf.Bytes())
	if err != nil {
		return evicted, err
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return evicted, err
	}
	ev2, err := st.Put(currentSnapshotKey, store.KindMeta, blob)
	return append(evicted, ev2...), err
}

// sweepStaleSegments deletes snapshot segments of any generation other than
// the live one — residue of crashes between a consolidation's writes. The
// caller passes the chain meta it just replayed (never re-read here: a
// transient read failure must not be mistaken for "no chain", which would
// delete the live generation and leave the store unbootable). With no live
// chain there is nothing to distinguish stale from, so nothing is swept.
func sweepStaleSegments(st *store.Store, live snapMeta) {
	if live.Segments <= 0 {
		return
	}
	prefix := fmt.Sprintf("%s%d/", segmentKeyPrefix, live.Gen)
	for _, e := range st.Entries() {
		if !strings.HasPrefix(e.Key, segmentKeyPrefix) || strings.HasPrefix(e.Key, prefix) {
			continue
		}
		st.Delete(e.Key)
	}
}

// diskGet serves a content address from the disk store after an in-memory
// miss. It is called WITHOUT s.mu held — the read, checksum verification
// and JSON decode may take milliseconds for a large report and must not
// stall the job table; the store synchronizes itself. IO or decode failures
// degrade to a miss: the computation simply reruns.
func (s *Server) diskGet(key string) (any, bool) {
	if s.store == nil {
		return nil, false
	}
	blob, kind, ok, err := s.store.Get(key)
	if err != nil || !ok || kind != store.KindResult {
		return nil, false
	}
	res, err := decodeResult(blob)
	if err != nil {
		return nil, false
	}
	return res, true
}

// persistResult writes a completed computation through to the disk store,
// returning any keys the store evicted to stay within budget (mirrored into
// the memory LRU by the caller). Persist failures are logged once with the
// label (which job or delta adoption was being written) and feed the
// circuit breaker, but never fail the job: the result still lives in
// memory. While the breaker is open the write is skipped outright.
func (s *Server) persistResult(label, key string, res any) []string {
	if s.store == nil {
		return nil
	}
	if !s.breaker.allow() {
		s.m.storeSkipped.Add(1)
		return nil
	}
	blob, err := encodeResult(res)
	if err != nil {
		s.m.storeErrors.Add(1)
		return nil
	}
	evicted, err := s.store.Put(key, store.KindResult, blob)
	if err != nil {
		s.storeFailure("persisting result of "+label, err)
	} else {
		s.storeOK()
	}
	return evicted
}

// persistIngestLocked makes one ingest batch durable before it is committed
// to the live database. The steady-state cost is O(batch): the batch is
// appended as one new chain segment and the current pointer advances. Only
// the very first durable write of a database (nothing persisted yet — e.g. a
// -deps preload about to take its first ingest) pays O(database) to lay down
// the base segment. Crash ordering: the segment is durable before the
// pointer names it, and the pointer is durable before the ingest is
// acknowledged, so every acknowledged ingest replays and every crash leaves
// a consistent chain (an orphaned segment from an unacknowledged ingest is
// overwritten by the retry or swept at boot). Caller holds s.ingestMu.
func (s *Server) persistIngestLocked(db *depdb.DB, batch []deps.Record) error {
	newFP := db.FingerprintWith(batch...)
	meta := s.snapMeta
	var evicted []string
	if meta.Segments == 0 || s.snapDirty {
		// First durable snapshot — or the persisted chain went stale while
		// degraded ingests were committed to memory only: the base segment
		// must carry everything the live database already holds plus the
		// batch. A fresh generation replaces the stale chain; its old
		// segments are swept at the next boot.
		meta = snapMeta{Fingerprint: newFP, Gen: meta.Gen + 1, Segments: 1}
		ev, err := writeChain(s.store, append(db.Records(), batch...), meta)
		evicted = append(evicted, ev...)
		if err != nil {
			return err
		}
	} else {
		var buf bytes.Buffer
		if err := deps.EncodeXML(&buf, batch); err != nil {
			return err
		}
		ev, err := s.store.Put(segmentKey(meta.Gen, meta.Segments), store.KindSnapshot, buf.Bytes())
		evicted = append(evicted, ev...)
		if err != nil {
			return err
		}
		meta.Fingerprint = newFP
		meta.Segments++
		blob, err := json.Marshal(meta)
		if err != nil {
			return err
		}
		ev, err = s.store.Put(currentSnapshotKey, store.KindMeta, blob)
		evicted = append(evicted, ev...)
		if err != nil {
			return err
		}
	}
	s.snapMeta = meta
	s.snapDirty = false
	s.mu.Lock()
	s.dropCachedLocked(evicted, "")
	s.mu.Unlock()
	return nil
}

// dropCachedLocked mirrors disk-store evictions into the in-memory LRU so
// the two tiers cannot disagree about what is retrievable. except (usually
// the key just written) is spared: even if the store could not retain it,
// the in-memory copy stays valid. Caller holds s.mu.
func (s *Server) dropCachedLocked(keys []string, except string) {
	for _, key := range keys {
		if key == except {
			continue
		}
		s.cache.Remove(key)
		s.m.storeEvictions.Add(1)
	}
}
