package auditd

// End-to-end tests for the watch subsystem: subscribe → initial report →
// ingest-triggered delta re-audits streamed to the subscriber, over the
// in-process API, over SSE/HTTP, through slow-consumer eviction, and across
// a daemon restart with live subscribers.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"indaas/internal/depdb"
	"indaas/internal/sia"
)

// nextWatchEvent blocks for the subscription's next event.
func nextWatchEvent(t *testing.T, sub *Subscription) *WatchEvent {
	t.Helper()
	select {
	case raw, ok := <-sub.Events():
		if !ok {
			t.Fatal("watch events channel closed early")
		}
		ev, ok := raw.(*WatchEvent)
		if !ok {
			t.Fatalf("watch event has type %T", raw)
		}
		return ev
	case <-time.After(20 * time.Second):
		t.Fatal("no watch event within 20s")
	}
	return nil
}

// noWatchEvent asserts the subscription stays quiet for the window.
func noWatchEvent(t *testing.T, sub *Subscription, window time.Duration) {
	t.Helper()
	select {
	case raw, ok := <-sub.Events():
		t.Fatalf("unexpected watch event %+v (open=%v)", raw, ok)
	case <-time.After(window):
	}
}

// watchStats polls until pred accepts the server's stats (watch counters
// settle asynchronously after events are observed).
func watchStats(t *testing.T, s *Server, what string, pred func(Stats) bool) Stats {
	t.Helper()
	var st Stats
	for i := 0; i < 400; i++ {
		st = s.Stats()
		if pred(st) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("stats never reached %s: %+v", what, st)
	return st
}

// TestWatchStreamsSplicedReaudit is the headline flow: the subscription's
// initial report arrives unprompted; an ingest touching one watched server
// triggers a re-audit that splices only the dirty deployment — and the
// streamed report is byte-identical to a full recompute over the same
// records; an ingest touching nothing watched stays silent.
func TestWatchStreamsSplicedReaudit(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	records := deltaRecords()
	mustIngest(t, s, records)

	sub, err := s.Watch(deltaAuditRequest("live"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	ev1 := nextWatchEvent(t, sub)
	if ev1.Seq != 1 || len(ev1.Trigger) != 0 {
		t.Fatalf("initial event = seq %d trigger %v, want seq 1 and no trigger", ev1.Seq, ev1.Trigger)
	}
	if ev1.Job.State != StateDone || ev1.Report == nil || ev1.Error != "" {
		t.Fatalf("initial event = %+v, want a completed report", ev1)
	}

	dirtyRec := RecordWire{Kind: "software", Pgm: "etcd", HW: "s3", Deps: []string{"libc6"}}
	mustIngest(t, s, []RecordWire{dirtyRec})

	ev2 := nextWatchEvent(t, sub)
	if ev2.Seq != 2 || !reflect.DeepEqual(ev2.Trigger, []string{"s3"}) {
		t.Fatalf("re-audit event = seq %d trigger %v, want seq 2 triggered by s3", ev2.Seq, ev2.Trigger)
	}
	if ev2.Job.State != StateDone || !ev2.Job.DeltaHit || ev2.Report == nil {
		t.Fatalf("re-audit event = %+v, want a spliced delta report", ev2)
	}
	if !reflect.DeepEqual(ev2.Job.DirtySubjects, []string{"s3"}) {
		t.Fatalf("DirtySubjects = %v, want [s3]", ev2.Job.DirtySubjects)
	}

	// Acceptance: the spliced report a subscriber receives equals the full
	// recompute of the same generation, byte for byte.
	db := depdb.New()
	for _, w := range append(records, dirtyRec) {
		r, err := w.Record()
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := s.dbFingerprint(), db.Snapshot().Fingerprint(); got != want {
		t.Fatalf("server fingerprint %s, ground truth %s", got, want)
	}
	if ev2.Fingerprint != db.Snapshot().Fingerprint() {
		t.Fatalf("event fingerprint %s, want %s", ev2.Fingerprint, db.Snapshot().Fingerprint())
	}
	want, err := sia.AuditDeployments(db.Snapshot(), "", []sia.GraphSpec{
		{Deployment: "front", Servers: []string{"s1", "s2"}},
		{Deployment: "back", Servers: []string{"s3", "s4"}},
	}, sia.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if auditsJSON(t, ev2.Report) != auditsJSON(t, want) {
		t.Fatalf("streamed splice diverges from full recompute:\n got %s\nwant %s",
			auditsJSON(t, ev2.Report), auditsJSON(t, want))
	}

	// A record about a server no watched deployment audits never wakes the
	// refresher — the interest filter drops it at the hub.
	mustIngest(t, s, []RecordWire{{Kind: "hardware", HW: "spare-9", Type: "NIC", Dep: "spare-9-X520"}})
	noWatchEvent(t, sub, 150*time.Millisecond)

	st := watchStats(t, s, "2 re-audits", func(st Stats) bool { return st.WatchReaudits == 2 })
	if st.WatchSubscribers != 1 || st.WatchSubscriptions != 1 {
		t.Fatalf("subscriber gauges = %d/%d, want 1/1", st.WatchSubscribers, st.WatchSubscriptions)
	}
	// Two marks: the subscription's initial kick and the s3 ingest.
	if st.WatchEvents != 2 || st.WatchDirtyMarks != 2 || st.WatchDropped != 0 {
		t.Fatalf("watch counters = %+v", st)
	}
	if st.DeltaPartials != 1 {
		t.Fatalf("DeltaPartials = %d, want the re-audit spliced", st.DeltaPartials)
	}

	sub.Close()
	watchStats(t, s, "unsubscribe", func(st Stats) bool { return st.WatchSubscribers == 0 })
}

// TestWatchCoalescesIngestStorm: many ingests landing while one re-audit
// runs fold into a single follow-up — dirt accumulates, it never queues.
// The RunHook gate holds each computation until the test releases it.
func TestWatchCoalescesIngestStorm(t *testing.T) {
	gate := make(chan struct{}, 64)
	s := New(Config{Workers: 1, RunHook: func(ctx context.Context, key string) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}})
	defer shutdown(t, s)
	mustIngest(t, s, deltaRecords())

	sub, err := s.Watch(deltaAuditRequest("storm"), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	gate <- struct{}{}
	if ev := nextWatchEvent(t, sub); ev.Seq != 1 {
		t.Fatalf("initial seq = %d", ev.Seq)
	}

	// Ten concurrent ingests, all touching the watched server s3. The first
	// wakes the refresher, whose re-audit blocks on the gate; the rest can
	// only accumulate dirt.
	const storm = 10
	var wg sync.WaitGroup
	errs := make(chan error, storm)
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := s.Ingest(&IngestRequest{Records: []RecordWire{
				{Kind: "software", Pgm: fmt.Sprintf("pkg-%d", i), HW: "s3", Deps: []string{"libc6"}},
			}})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		gate <- struct{}{}
	}

	var events []*WatchEvent
drain:
	for {
		select {
		case raw, ok := <-sub.Events():
			if !ok {
				t.Fatal("events channel closed mid-storm")
			}
			events = append(events, raw.(*WatchEvent))
		case <-time.After(700 * time.Millisecond):
			break drain
		}
	}
	// At most two re-audits can follow the storm: one for the dirt taken at
	// wake-up, one for everything that accumulated while it ran.
	if len(events) < 1 || len(events) > 2 {
		t.Fatalf("storm of %d ingests produced %d re-audit events, want 1 or 2", storm, len(events))
	}
	last := events[len(events)-1]
	if last.Report == nil || last.Fingerprint != s.dbFingerprint() {
		t.Fatalf("final event = %+v, want the end-state report", last)
	}
	st := s.Stats()
	// Marks are per commit group (plus the initial kick), and the storm's
	// grouping is scheduling-dependent: anywhere from one group to ten.
	if st.WatchDirtyMarks < 2 || st.WatchDirtyMarks > storm+1 {
		t.Fatalf("WatchDirtyMarks = %d, want 2..%d", st.WatchDirtyMarks, storm+1)
	}
	if st.WatchReaudits > 3 {
		t.Fatalf("WatchReaudits = %d for %d ingests, want coalescing to ≤ 3", st.WatchReaudits, storm)
	}
}

// TestWatchValidation: inline records and a database-less server are both
// rejected up front with 400.
func TestWatchValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	if _, err := s.Watch(quickRequest("inline"), 0); httpStatus(err) != 400 {
		t.Fatalf("watch with inline records = %v, want 400", err)
	}
	req := deltaAuditRequest("no-db")
	if _, err := s.Watch(req, 0); httpStatus(err) != 400 {
		t.Fatalf("watch before any ingest = %v, want 400", err)
	}
	mustIngest(t, s, deltaRecords())
	sub, err := s.Watch(req, 0)
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
}

// TestWatchSlowConsumerEvicted: a subscriber that never drains its queue is
// evicted on the first overflow; its buffered events stay readable and the
// channel then closes.
func TestWatchSlowConsumerEvicted(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	mustIngest(t, s, deltaRecords())

	sub, err := s.Watch(deltaAuditRequest("sluggish"), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Let the initial report fill the single queue slot before overflowing.
	watchStats(t, s, "initial event queued", func(st Stats) bool { return st.WatchEvents == 1 })

	mustIngest(t, s, []RecordWire{{Kind: "software", Pgm: "etcd", HW: "s3", Deps: []string{"libc6"}}})
	st := watchStats(t, s, "eviction", func(st Stats) bool { return st.WatchEvicted == 1 })
	if st.WatchDropped != 1 || st.WatchSubscribers != 0 {
		t.Fatalf("after eviction: %+v", st)
	}
	if !sub.Evicted() {
		t.Fatal("subscription does not report its eviction")
	}
	if ev := nextWatchEvent(t, sub); ev.Seq != 1 || ev.Report == nil {
		t.Fatalf("buffered event = %+v, want the initial report still readable", ev)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("events channel still open after eviction drained")
	}
}

// TestWatchOverHTTP drives the SSE endpoint end to end: the typed client
// subscribes and sees the ingest-triggered splice; a plain GET with the
// spec in the query string gets the same stream (the curl path).
func TestWatchOverHTTP(t *testing.T) {
	s := New(Config{Workers: 2})
	defer gracefulShutdown(t, s)
	mustIngest(t, s, deltaRecords())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	c := NewClient(ts.URL, ts.Client())
	w, err := c.Watch(ctx, deltaAuditRequest("sse"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	ev1, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Seq != 1 || ev1.Report == nil {
		t.Fatalf("initial SSE event = %+v", ev1)
	}

	if _, err := c.Ingest(ctx, []RecordWire{{Kind: "software", Pgm: "etcd", HW: "s3", Deps: []string{"libc6"}}}); err != nil {
		t.Fatal(err)
	}
	ev2, err := w.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ev2.Seq != 2 || !ev2.Job.DeltaHit || ev2.Report == nil || !reflect.DeepEqual(ev2.Trigger, []string{"s3"}) {
		t.Fatalf("SSE re-audit event = %+v, want a spliced delta triggered by s3", ev2)
	}
	w.Close()

	// The curl path: GET with the request JSON-encoded in ?spec.
	spec, err := json.Marshal(deltaAuditRequest("curl"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/watch?buffer=2&spec=" + url.QueryEscape(string(spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		t.Fatalf("GET /v1/watch = %d %s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	rd := bufio.NewReader(resp.Body)
	var sawReport bool
	for !sawReport {
		line, err := rd.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v", err)
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev WatchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		if ev.Seq != 1 || ev.Report == nil {
			t.Fatalf("GET stream event = %+v", ev)
		}
		sawReport = true
	}

	// Malformed GETs are rejected before any stream starts.
	for _, bad := range []string{"/v1/watch", "/v1/watch?spec=%7Bnope", "/v1/watch?buffer=0&spec=%7B%7D"} {
		resp, err := http.Get(ts.URL + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Fatalf("GET %s = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestWatchSurvivesRestartUnderChurn is the race/restart contract: watch
// subscriptions churn while ingests and submits run concurrently, the
// daemon restarts under live subscribers, and the HTTP watcher — riding the
// client's resubscribe — keeps receiving reports from the recovered
// database. Run with -race this also exercises the hub/committer/refresher
// interleavings.
func TestWatchSurvivesRestartUnderChurn(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	s1 := New(Config{Workers: 2, Store: st1})
	mustIngest(t, s1, deltaRecords())

	// The proxy front door survives the "restart"; the handler behind it is
	// swapped when the second daemon comes up, as a port takeover would.
	var handlerMu sync.Mutex
	handler := s1.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerMu.Lock()
		h := handler
		handlerMu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer proxy.Close()
	var down atomic.Bool
	c := NewClient(proxy.URL, &http.Client{Transport: &gateTransport{down: &down, base: proxy.Client().Transport}})
	c.Retry = RetryPolicy{MaxAttempts: 8, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	w, err := c.Watch(ctx, deltaAuditRequest("durable"))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if ev, err := w.Next(); err != nil || ev.Report == nil {
		t.Fatalf("initial event = %+v, %v", ev, err)
	}

	// Churn: subscriptions opening and closing, ingests and submits landing,
	// all interleaved with the watcher above. cur tracks the live daemon so
	// the in-process churn follows the restart.
	var cur atomic.Pointer[Server]
	cur.Store(s1)
	stopChurn := make(chan struct{})
	stopSubs := make(chan struct{})
	var churnWG, subWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		subWG.Add(1)
		go func(g int) {
			defer subWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopSubs:
					return
				default:
				}
				sub, err := cur.Load().Watch(deltaAuditRequest(fmt.Sprintf("churn-%d-%d", g, i)), 4)
				if err != nil {
					continue // restarting; the next round lands on the new daemon
				}
				select {
				case <-sub.Events():
				case <-time.After(20 * time.Millisecond):
				}
				sub.Close()
			}
		}(g)
	}
	churnWG.Add(2)
	go func() { // ingest churn touching a watched server
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				return
			default:
			}
			cur.Load().Ingest(&IngestRequest{Records: []RecordWire{
				{Kind: "software", Pgm: fmt.Sprintf("churn-%d", i), HW: "s2", Deps: []string{"libc6"}},
			}})
		}
	}()
	go func() { // submit churn against the server database
		defer churnWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopChurn:
				return
			default:
			}
			if st, err := cur.Load().Submit(deltaAuditRequest(fmt.Sprintf("probe-%d", i))); err == nil {
				cur.Load().WaitDone(context.Background(), st.ID, 50*time.Millisecond)
			}
		}
	}()
	time.Sleep(300 * time.Millisecond)
	// Quiesce the ingest/submit churn so the post-restart fingerprint is
	// deterministic; subscription churn keeps running across the restart.
	close(stopChurn)
	churnWG.Wait()

	// Restart with live subscribers: the graceful shutdown closes every
	// stream, the watcher's reconnects bounce off the gated transport, and
	// the new daemon serves the restored database.
	down.Store(true)
	gracefulShutdown(t, s1)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openStore(t, dir)
	db, err := RestoreDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 2, Store: st2, DB: db})
	cur.Store(s2)
	handlerMu.Lock()
	handler = s2.Handler()
	handlerMu.Unlock()
	down.Store(false)

	resp, err := c.Ingest(ctx, []RecordWire{{Kind: "software", Pgm: "post-restart", HW: "s3", Deps: []string{"libc6"}}})
	if err != nil {
		t.Fatalf("post-restart ingest: %v", err)
	}
	// The watcher must converge on the recovered daemon's end state: drain
	// (possibly stale pre-restart) events until one carries the post-restart
	// fingerprint.
	for {
		ev, err := w.Next()
		if err != nil {
			t.Fatalf("watch across restart: %v", err)
		}
		if ev.Fingerprint == resp.Fingerprint {
			if ev.Report == nil || ev.Job.State != StateDone {
				t.Fatalf("post-restart event = %+v, want a completed report", ev)
			}
			break
		}
	}
	close(stopSubs)
	subWG.Wait()
	w.Close()
	gracefulShutdown(t, s2)
}
