package auditd

import (
	"strings"
	"testing"
)

// TestSubmitNormalizeErrors pins every rejection path of
// SubmitRequest.normalize — previously only reachable through happy-path
// e2e runs — with the message fragment a client would see.
func TestSubmitNormalizeErrors(t *testing.T) {
	valid := func() *SubmitRequest {
		return &SubmitRequest{
			Records:     testRecords(),
			Deployments: []DeploymentWire{{Name: "d", Servers: []string{"s1", "s2"}}},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*SubmitRequest)
		wantErr string
	}{
		{
			name:    "no deployments",
			mutate:  func(r *SubmitRequest) { r.Deployments = nil },
			wantErr: "no deployments",
		},
		{
			name:    "deployment without name",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Name = "" },
			wantErr: "needs a name",
		},
		{
			name:    "deployment without servers",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Servers = nil },
			wantErr: "at least one server",
		},
		{
			name:    "needed negative",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Needed = -1 },
			wantErr: "out of range",
		},
		{
			name:    "needed exceeds servers",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Needed = 3 },
			wantErr: "out of range",
		},
		{
			name:    "bad kind",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Kinds = []string{"router"} },
			wantErr: "kind",
		},
		{
			name:    "bad algorithm",
			mutate:  func(r *SubmitRequest) { r.Algorithm = "quantum" },
			wantErr: `unknown algorithm "quantum"`,
		},
		{
			name:    "failure prob above one",
			mutate:  func(r *SubmitRequest) { r.FailureProb = 1.5 },
			wantErr: "out of [0,1]",
		},
		{
			name:    "failure prob negative",
			mutate:  func(r *SubmitRequest) { r.FailureProb = -0.1 },
			wantErr: "out of [0,1]",
		},
		{
			name:    "negative score_top_n",
			mutate:  func(r *SubmitRequest) { r.ScoreTopN = -1 },
			wantErr: "negative option",
		},
		{
			name:    "negative max_sets",
			mutate:  func(r *SubmitRequest) { r.MaxSets = -1 },
			wantErr: "negative option",
		},
		{
			name:    "negative max_size",
			mutate:  func(r *SubmitRequest) { r.MaxSize = -1 },
			wantErr: "negative option",
		},
		{
			name:    "negative rounds",
			mutate:  func(r *SubmitRequest) { r.Rounds = -5 },
			wantErr: "negative option",
		},
		{
			name:    "negative timeout",
			mutate:  func(r *SubmitRequest) { r.TimeoutMS = -1 },
			wantErr: "negative option",
		},
		{
			name: "negative sampler workers",
			mutate: func(r *SubmitRequest) {
				r.Algorithm = "failure-sampling"
				r.SamplerWorkers = -2
			},
			wantErr: "negative option",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := valid()
			tc.mutate(req)
			if _, _, err := req.normalize(); err == nil {
				t.Fatal("normalize accepted an invalid request")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// The valid fixture itself must normalize, with minimal-rg defaults.
	n, opts, err := valid().normalize()
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if n.Algorithm != "minimal-rg" || opts.Rounds != 0 || opts.Seed != 0 || opts.Workers != 0 {
		t.Fatalf("minimal-rg normalization leaked sampler knobs: %+v / %+v", n, opts)
	}
}

// TestSubmitNormalizeSamplingDefaults: the sampler path applies the
// documented host-independent defaults explicitly so they land in the key.
func TestSubmitNormalizeSamplingDefaults(t *testing.T) {
	req := &SubmitRequest{
		Records:     testRecords(),
		Deployments: []DeploymentWire{{Name: "d", Servers: []string{"s1"}}},
		Algorithm:   "failure-sampling",
	}
	n, opts, err := req.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Rounds != 100_000 || n.Seed != 1 || n.Workers != 1 {
		t.Fatalf("sampling defaults not applied: %+v", n)
	}
	if opts.Rounds != 100_000 || opts.Seed != 1 || opts.Workers != 1 {
		t.Fatalf("sia options diverge from canonical form: %+v", opts)
	}
}

// TestSubmitNormalizeCanonicalKinds: kind lists sort into one canonical
// order so permutations share a cache key.
func TestSubmitNormalizeCanonicalKinds(t *testing.T) {
	mk := func(kinds ...string) *SubmitRequest {
		return &SubmitRequest{
			Records:     testRecords(),
			Deployments: []DeploymentWire{{Name: "d", Servers: []string{"s1", "s2"}, Kinds: kinds}},
		}
	}
	a, _, err := mk("software", "network").normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := mk("network", "software").normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.key() != b.key() {
		t.Fatal("kind order must not fragment the cache key")
	}
}

// TestRecordWireErrors: malformed records are rejected at conversion, not
// deep inside a graph build.
func TestRecordWireErrors(t *testing.T) {
	cases := []struct {
		name string
		w    RecordWire
	}{
		{"unknown kind", RecordWire{Kind: "router", Src: "a"}},
		{"empty kind", RecordWire{}},
		{"network with empty route element", RecordWire{Kind: "network", Src: "a", Dst: "b", Route: []string{""}}},
		{"network without src", RecordWire{Kind: "network", Dst: "b", Route: []string{"x"}}},
		{"hardware without dep", RecordWire{Kind: "hardware", HW: "a", Type: "Disk"}},
		{"software without pgm", RecordWire{Kind: "software", HW: "a", Deps: []string{"libc6"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.w.Record(); err == nil {
				t.Fatalf("Record() accepted %+v", tc.w)
			}
		})
	}
}

// TestRecommendNormalizeErrors covers the recommendation request's
// rejection paths the same way.
func TestRecommendNormalizeErrors(t *testing.T) {
	valid := func() *RecommendRequest {
		return &RecommendRequest{
			Records:  testRecords(),
			Nodes:    []string{"s1", "s2"},
			Replicas: 2,
		}
	}
	cases := []struct {
		name    string
		mutate  func(*RecommendRequest)
		wantErr string
	}{
		{"zero replicas", func(r *RecommendRequest) { r.Replicas = 0 }, "replicas"},
		{"bad strategy", func(r *RecommendRequest) { r.Strategy = "magic" }, "strategy"},
		{"bad kind", func(r *RecommendRequest) { r.Kinds = []string{"router"} }, "kind"},
		{"bad algorithm", func(r *RecommendRequest) { r.Algorithm = "quantum" }, "algorithm"},
		{"failure prob out of range", func(r *RecommendRequest) { r.FailureProb = 2 }, "out of [0,1]"},
		{"negative top_k", func(r *RecommendRequest) { r.TopK = -1 }, "negative option"},
		{"negative beam width", func(r *RecommendRequest) { r.BeamWidth = -1 }, "negative option"},
		{"negative workers", func(r *RecommendRequest) { r.Workers = -1 }, "negative option"},
		{"negative sampler workers", func(r *RecommendRequest) { r.SamplerWorkers = -1 }, "negative option"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := valid()
			tc.mutate(req)
			if _, _, err := req.normalize(); err == nil {
				t.Fatal("normalize accepted an invalid request")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
