package auditd

import (
	"strings"
	"testing"
)

// TestSubmitNormalizeErrors pins every rejection path of
// SubmitRequest.normalize — previously only reachable through happy-path
// e2e runs — with the message fragment a client would see.
func TestSubmitNormalizeErrors(t *testing.T) {
	valid := func() *SubmitRequest {
		return &SubmitRequest{
			Records:     testRecords(),
			Deployments: []DeploymentWire{{Name: "d", Servers: []string{"s1", "s2"}}},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*SubmitRequest)
		wantErr string
	}{
		{
			name:    "no deployments",
			mutate:  func(r *SubmitRequest) { r.Deployments = nil },
			wantErr: "no deployments",
		},
		{
			name:    "deployment without name",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Name = "" },
			wantErr: "needs a name",
		},
		{
			name:    "deployment without servers",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Servers = nil },
			wantErr: "at least one server",
		},
		{
			name:    "needed negative",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Needed = -1 },
			wantErr: "out of range",
		},
		{
			name:    "needed exceeds servers",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Needed = 3 },
			wantErr: "out of range",
		},
		{
			name:    "bad kind",
			mutate:  func(r *SubmitRequest) { r.Deployments[0].Kinds = []string{"router"} },
			wantErr: "kind",
		},
		{
			name:    "bad algorithm",
			mutate:  func(r *SubmitRequest) { r.Algorithm = "quantum" },
			wantErr: `unknown algorithm "quantum"`,
		},
		{
			name:    "failure prob above one",
			mutate:  func(r *SubmitRequest) { r.FailureProb = 1.5 },
			wantErr: "out of [0,1]",
		},
		{
			name:    "failure prob negative",
			mutate:  func(r *SubmitRequest) { r.FailureProb = -0.1 },
			wantErr: "out of [0,1]",
		},
		{
			name:    "negative score_top_n",
			mutate:  func(r *SubmitRequest) { r.ScoreTopN = -1 },
			wantErr: "negative option",
		},
		{
			name:    "negative max_sets",
			mutate:  func(r *SubmitRequest) { r.MaxSets = -1 },
			wantErr: "negative option",
		},
		{
			name:    "negative max_size",
			mutate:  func(r *SubmitRequest) { r.MaxSize = -1 },
			wantErr: "negative option",
		},
		{
			name:    "negative rounds",
			mutate:  func(r *SubmitRequest) { r.Rounds = -5 },
			wantErr: "negative option",
		},
		{
			name:    "negative timeout",
			mutate:  func(r *SubmitRequest) { r.TimeoutMS = -1 },
			wantErr: "negative option",
		},
		{
			name: "negative sampler workers",
			mutate: func(r *SubmitRequest) {
				r.Algorithm = "failure-sampling"
				r.SamplerWorkers = -2
			},
			wantErr: "negative option",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := valid()
			tc.mutate(req)
			if _, _, err := req.normalize(); err == nil {
				t.Fatal("normalize accepted an invalid request")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// The valid fixture itself must normalize, with minimal-rg defaults.
	n, opts, err := valid().normalize()
	if err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	if n.Algorithm != "minimal-rg" || opts.Rounds != 0 || opts.Seed != 0 || opts.Workers != 0 {
		t.Fatalf("minimal-rg normalization leaked sampler knobs: %+v / %+v", n, opts)
	}
}

// TestSubmitNormalizeSamplingDefaults: the sampler path applies the
// documented host-independent defaults explicitly so they land in the key.
func TestSubmitNormalizeSamplingDefaults(t *testing.T) {
	req := &SubmitRequest{
		Records:     testRecords(),
		Deployments: []DeploymentWire{{Name: "d", Servers: []string{"s1"}}},
		Algorithm:   "failure-sampling",
	}
	n, opts, err := req.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Rounds != 100_000 || n.Seed != 1 || n.Workers != 1 {
		t.Fatalf("sampling defaults not applied: %+v", n)
	}
	if opts.Rounds != 100_000 || opts.Seed != 1 || opts.Workers != 1 {
		t.Fatalf("sia options diverge from canonical form: %+v", opts)
	}
}

// TestSubmitNormalizeCanonicalKinds: kind lists sort into one canonical
// order so permutations share a cache key.
func TestSubmitNormalizeCanonicalKinds(t *testing.T) {
	mk := func(kinds ...string) *SubmitRequest {
		return &SubmitRequest{
			Records:     testRecords(),
			Deployments: []DeploymentWire{{Name: "d", Servers: []string{"s1", "s2"}, Kinds: kinds}},
		}
	}
	a, _, err := mk("software", "network").normalize()
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := mk("network", "software").normalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.key() != b.key() {
		t.Fatal("kind order must not fragment the cache key")
	}
}

// TestRecordWireErrors: malformed records are rejected at conversion, not
// deep inside a graph build.
func TestRecordWireErrors(t *testing.T) {
	cases := []struct {
		name string
		w    RecordWire
	}{
		{"unknown kind", RecordWire{Kind: "router", Src: "a"}},
		{"empty kind", RecordWire{}},
		{"network with empty route element", RecordWire{Kind: "network", Src: "a", Dst: "b", Route: []string{""}}},
		{"network without src", RecordWire{Kind: "network", Dst: "b", Route: []string{"x"}}},
		{"hardware without dep", RecordWire{Kind: "hardware", HW: "a", Type: "Disk"}},
		{"software without pgm", RecordWire{Kind: "software", HW: "a", Deps: []string{"libc6"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.w.Record(); err == nil {
				t.Fatalf("Record() accepted %+v", tc.w)
			}
		})
	}
}

// TestRecommendNormalizeErrors covers the recommendation request's
// rejection paths the same way.
func TestRecommendNormalizeErrors(t *testing.T) {
	valid := func() *RecommendRequest {
		return &RecommendRequest{
			Records:  testRecords(),
			Nodes:    []string{"s1", "s2"},
			Replicas: 2,
		}
	}
	cases := []struct {
		name    string
		mutate  func(*RecommendRequest)
		wantErr string
	}{
		{"zero replicas", func(r *RecommendRequest) { r.Replicas = 0 }, "replicas"},
		{"bad strategy", func(r *RecommendRequest) { r.Strategy = "magic" }, "strategy"},
		{"bad kind", func(r *RecommendRequest) { r.Kinds = []string{"router"} }, "kind"},
		{"bad algorithm", func(r *RecommendRequest) { r.Algorithm = "quantum" }, "algorithm"},
		{"failure prob out of range", func(r *RecommendRequest) { r.FailureProb = 2 }, "out of [0,1]"},
		{"negative top_k", func(r *RecommendRequest) { r.TopK = -1 }, "negative option"},
		{"negative beam width", func(r *RecommendRequest) { r.BeamWidth = -1 }, "negative option"},
		{"negative workers", func(r *RecommendRequest) { r.Workers = -1 }, "negative option"},
		{"negative sampler workers", func(r *RecommendRequest) { r.SamplerWorkers = -1 }, "negative option"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := valid()
			tc.mutate(req)
			if _, _, err := req.normalize(); err == nil {
				t.Fatal("normalize accepted an invalid request")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestPrivateAuditNormalizeErrors pins every rejection path of
// PrivateAuditRequest.normalize with the message fragment a client sees.
func TestPrivateAuditNormalizeErrors(t *testing.T) {
	valid := func() *PrivateAuditRequest {
		return &PrivateAuditRequest{
			Providers: []ProviderWire{
				{Name: "a", Components: []string{"c1", "c2"}},
				{Name: "b", Components: []string{"c2", "c3"}},
			},
		}
	}
	cases := []struct {
		name    string
		mutate  func(*PrivateAuditRequest)
		wantErr string
	}{
		{"one provider", func(r *PrivateAuditRequest) { r.Providers = r.Providers[:1] }, "at least two providers"},
		{"negative bits", func(r *PrivateAuditRequest) { r.Bits = -1 }, "negative option"},
		{"negative minhash_m", func(r *PrivateAuditRequest) { r.MinHashM = -1 }, "negative option"},
		{"negative minhash_threshold", func(r *PrivateAuditRequest) { r.MinHashThreshold = -1 }, "negative option"},
		{"negative ks_blind_bits", func(r *PrivateAuditRequest) { r.KSBlindBits = -1 }, "negative option"},
		{"negative workers", func(r *PrivateAuditRequest) { r.Workers = -1 }, "negative option"},
		{"negative timeout", func(r *PrivateAuditRequest) { r.TimeoutMS = -1 }, "negative option"},
		{"unknown protocol", func(r *PrivateAuditRequest) { r.Protocol = "magic" }, `unknown protocol "magic"`},
		{"bits too small", func(r *PrivateAuditRequest) { r.Bits = 64 }, "too small"},
		{"unnamed provider", func(r *PrivateAuditRequest) { r.Providers[1].Name = "" }, "has no name"},
		{"duplicate provider", func(r *PrivateAuditRequest) { r.Providers[1].Name = "a" }, `duplicate provider "a"`},
		{"empty component name", func(r *PrivateAuditRequest) { r.Providers[0].Components = []string{"c1", ""} }, "empty component name"},
		{"reference without registry", func(r *PrivateAuditRequest) { r.Providers[0].Components = nil }, "no registry is available"},
		{"single-provider deployment", func(r *PrivateAuditRequest) { r.Deployments = [][]string{{"a"}} }, "at least two providers"},
		{"deployment with unknown provider", func(r *PrivateAuditRequest) { r.Deployments = [][]string{{"a", "zz"}} }, `unknown provider "zz"`},
		{"deployment repeats provider", func(r *PrivateAuditRequest) { r.Deployments = [][]string{{"a", "a"}} }, `lists provider "a" twice`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := valid()
			tc.mutate(req)
			if _, _, _, _, err := req.normalize(nil); err == nil {
				t.Fatal("normalize accepted an invalid request")
			} else if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// An unknown reference with a registry present names the provider.
	ref := valid()
	ref.Providers[0].Components = nil
	lookup := func(string) ([]string, string, bool) { return nil, "", false }
	if _, _, _, _, err := ref.normalize(lookup); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("unknown reference error = %v", err)
	}
}

// TestPrivateAuditNormalizeDefaults pins the canonical form: protocol and
// key-size defaults land in the key, parallelism and titles stay out of it,
// and deployment lists canonicalize order-insensitively.
func TestPrivateAuditNormalizeDefaults(t *testing.T) {
	base := &PrivateAuditRequest{
		Providers: []ProviderWire{
			{Name: "b", Components: []string{"c2", "c3"}},
			{Name: "a", Components: []string{"c1", "c2"}},
			{Name: "c", Components: []string{"c4"}},
		},
	}
	n, cfg, provs, deps, err := base.normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.Protocol != "p-sop" || n.Bits != 512 || cfg.Bits != 512 {
		t.Fatalf("defaults: %+v", n)
	}
	if len(provs) != 3 || provs[0].Name != "a" || provs[2].Name != "c" {
		t.Fatalf("providers not sorted: %+v", provs)
	}
	if len(deps) != 3 { // empty deployment list means every pair
		t.Fatalf("all-pairs expansion: %+v", deps)
	}

	// Title, workers and timeout never reach the key; deployment order and
	// intra-deployment name order do not either.
	key := n.key()
	noisy := &PrivateAuditRequest{
		Title:     "different title",
		Providers: base.Providers,
		Deployments: [][]string{
			{"c", "b"}, {"b", "a"}, {"c", "a"}, {"a", "b"},
		},
		Workers:   7,
		TimeoutMS: 9999,
	}
	n2, _, _, _, err := noisy.normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n2.key() != key {
		t.Fatalf("key drifted on non-semantic fields:\n%s\nvs\n%s", n2.key(), key)
	}

	// KS always estimates via MinHash: the default m is pinned into the key.
	ks := &PrivateAuditRequest{Providers: base.Providers, Protocol: "ks"}
	nks, cfgKS, _, _, err := ks.normalize(nil)
	if err != nil {
		t.Fatal(err)
	}
	if nks.MinHashM != 512 || cfgKS.MinHashM != 512 {
		t.Fatalf("ks minhash default: %+v", nks)
	}

	// Cleartext ignores bits entirely, so it cannot split the key space.
	c1 := &PrivateAuditRequest{Providers: base.Providers, Protocol: "cleartext"}
	c2 := &PrivateAuditRequest{Providers: base.Providers, Protocol: "cleartext", Bits: 2048}
	nc1, _, _, _, err1 := c1.normalize(nil)
	nc2, _, _, _, err2 := c2.normalize(nil)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if nc1.key() != nc2.key() {
		t.Fatal("cleartext bits leaked into the cache key")
	}
}
