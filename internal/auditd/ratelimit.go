package auditd

import (
	"sync"
	"time"
)

// tokenBucket rate-limits ingest admission. Tokens are records: a batch of
// n records costs n tokens, so a churn storm of fat batches throttles just
// like a storm of many small ones. The bucket refills continuously at rate
// tokens/second up to burst; a request that cannot be paid for is rejected
// with the time at which enough tokens will have accumulated — the server's
// Retry-After hint, which the fleet's client backoff honors, so pushers
// self-pace instead of hammering.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newTokenBucket returns a full bucket, or nil when rate <= 0 (unlimited).
// burst <= 0 defaults to one second's worth of tokens (minimum 1).
func newTokenBucket(rate, burst float64, now func() time.Time) *tokenBucket {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	if now == nil {
		now = time.Now
	}
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: now(), now: now}
}

// take tries to spend n tokens. On failure it reports how long until the
// deficit refills (at least a millisecond, so callers can surface it).
func (b *tokenBucket) take(n float64) (ok bool, retryAfter time.Duration) {
	if b == nil {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens += elapsed * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= n {
		b.tokens -= n
		return true, 0
	}
	// A batch larger than the whole bucket could never be paid for in full:
	// once the bucket is full it borrows instead, driving tokens negative so
	// later requests repay the debt. The long-term rate holds and a patient
	// retrying client always makes progress.
	if n > b.burst && b.tokens >= b.burst {
		b.tokens -= n
		return true, 0
	}
	deficit := n - b.tokens
	if n > b.burst {
		deficit = b.burst - b.tokens
	}
	d := time.Duration(deficit / b.rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return false, d
}
