package auditd

import (
	"log"
	"sync"
	"time"
)

// breaker is the store-write circuit breaker behind degraded-mode serving.
// While closed, every durable write proceeds; after threshold consecutive
// failures it opens, and the daemon serves memory-only — no write attempts,
// no per-job error spam — until a half-open probe (one write allowed per
// cooldown) succeeds and restores durable mode.
type breaker struct {
	mu        sync.Mutex
	now       func() time.Time
	threshold int
	cooldown  time.Duration
	failures  int // consecutive failures
	open      bool
	retryAt   time.Time
	reason    string // last failure, shown by /healthz while degraded
	trips     int64
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 15 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &breaker{now: now, threshold: threshold, cooldown: cooldown}
}

// allow reports whether a durable write should be attempted: always while
// closed, and once per cooldown while open (the half-open probe).
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.now().Before(b.retryAt) {
		return false
	}
	// Half-open: let this write probe the store. Push retryAt forward so a
	// burst of traffic sends one probe per cooldown, not one per request.
	b.retryAt = b.now().Add(b.cooldown)
	return true
}

// failure records a failed store write and reports whether this one
// tripped the breaker open.
func (b *breaker) failure(err error) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	b.reason = err.Error()
	if b.open {
		// A failed half-open probe: stay open for another cooldown.
		b.retryAt = b.now().Add(b.cooldown)
		return false
	}
	if b.failures < b.threshold {
		return false
	}
	b.open = true
	b.trips++
	b.retryAt = b.now().Add(b.cooldown)
	return true
}

// success records a store write that went through and reports whether it
// closed an open breaker (durable mode restored).
func (b *breaker) success() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	if !b.open {
		return false
	}
	b.open = false
	b.reason = ""
	return true
}

// degraded reports whether the breaker is open and why.
func (b *breaker) degraded() (bool, string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open, b.reason
}

func (b *breaker) tripCount() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// storeFailure logs one actionable line per failed store write — what was
// being written, for which job, and the underlying error — and feeds the
// breaker, announcing the trip into degraded mode when it happens.
func (s *Server) storeFailure(what string, err error) {
	s.m.storeErrors.Add(1)
	log.Printf("auditd: store write failed (%s): %v", what, err)
	if s.breaker.failure(err) {
		log.Printf("auditd: %d consecutive store write failures; serving degraded (memory-only), probing every %v",
			s.breaker.threshold, s.breaker.cooldown)
	}
}

// storeOK records a successful store write, announcing recovery when it
// closes an open breaker.
func (s *Server) storeOK() {
	if s.breaker.success() {
		log.Printf("auditd: store writes succeeding again; durable mode restored")
	}
}
