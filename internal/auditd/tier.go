package auditd

// The result-tier seam: completed results live in a chain of content-
// addressed tiers probed in order — the in-memory LRU first, then the disk
// store, then any extra tiers the embedder configured (a clustered node adds
// a peer-cache tier that asks the key's hash owner). Every tier serves the
// same (key → result) contract, so composing them is just a slice.

import "sync"

// ResultTier is one layer of the content-addressed result hierarchy.
// Implementations synchronize themselves; the server calls them without its
// job-table lock held (except the first, memory tier, whose calls may come
// from under it — Get/Put/Remove must therefore never block on IO for the
// memory tier, and lower tiers are only ever probed with the lock released).
type ResultTier interface {
	// Name identifies the tier ("memory", "disk", "peer") for attribution:
	// the server counts a hit against the right metric by name.
	Name() string
	// Get returns the result stored under key, if any.
	Get(key string) (any, bool)
	// Put stores a completed result, returning the keys the tier evicted to
	// make room (mirrored out of the memory tier by the caller). Read-only
	// tiers no-op.
	Put(key string, res any) (evicted []string)
	// Remove drops the key if present (used to mirror lower-tier evictions).
	Remove(key string)
}

// tierDisk is the disk tier's Name; enqueue uses it to attribute a
// lower-tier hit to auditd_store_hits_total and JobStatus.DiskHit.
const tierDisk = "disk"

// memoryTier is the first tier: the LRU result cache behind its own lock, so
// reads that used to require the server's job-table lock (delta planning,
// /v1/cache) can run against the tier directly.
type memoryTier struct {
	mu  sync.Mutex
	lru *resultCache
}

func newMemoryTier(capacity int) *memoryTier {
	return &memoryTier{lru: newResultCache(capacity)}
}

func (t *memoryTier) Name() string { return "memory" }

func (t *memoryTier) Get(key string) (any, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.get(key)
}

func (t *memoryTier) Put(key string, res any) []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lru.put(key, res)
	return nil
}

func (t *memoryTier) Remove(key string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lru.remove(key)
}

// Len reports live entries (the auditd_cache_entries gauge).
func (t *memoryTier) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lru.len()
}

// diskTier adapts the persistent store (plus its circuit breaker and result
// codec, which live on the Server) to the tier contract. Get decodes a
// persisted result; Put writes through with the generic label — the compute
// path keeps calling persistResult directly so failures log the owning job.
type diskTier struct {
	s *Server
}

func (t *diskTier) Name() string { return tierDisk }

func (t *diskTier) Get(key string) (any, bool) { return t.s.diskGet(key) }

func (t *diskTier) Put(key string, res any) []string {
	return t.s.persistResult("result", key, res)
}

// Remove is a no-op: disk eviction is policy-driven (store GC, size/age
// budgets), never a mirror of another tier's eviction.
func (t *diskTier) Remove(string) {}

// probeLowerTiers asks every tier below memory for the key, in order,
// returning the first hit and the name of the tier that served it. Callers
// must not hold s.mu: lower tiers do IO (disk reads, peer HTTP fetches).
func (s *Server) probeLowerTiers(key string) (res any, tier string, ok bool) {
	for _, t := range s.tiers[1:] {
		if r, hit := t.Get(key); hit {
			return r, t.Name(), true
		}
	}
	return nil, "", false
}
