package auditd

// Survivability tests: crash-safe job recovery through the journal,
// degraded (memory-only) serving behind the store circuit breaker, and
// worker panic isolation. "kill -9" is emulated in-process by closing the
// store out from under a daemon whose workload is parked on a RunHook —
// the journal record is on disk, the job never settles, and a second
// daemon opening the same directory must pick the work back up.

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"indaas/internal/faultinject"
	"indaas/internal/store"
)

// blockingHook parks every computation until release is closed; it honors
// cancellation so an abandoned daemon can still shut down.
func blockingHook(release <-chan struct{}) func(context.Context, string) error {
	return func(ctx context.Context, key string) error {
		select {
		case <-release:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// waitNoJournal polls until the store holds no KindJob entries (journal
// tombstones land asynchronously after a job settles).
func waitNoJournal(t *testing.T, st *store.Store) {
	t.Helper()
	for i := 0; i < 400; i++ {
		live := 0
		for _, e := range st.Entries() {
			if e.Kind == store.KindJob {
				live++
			}
		}
		if live == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("journal records never tombstoned")
}

func journalEntries(st *store.Store) []string {
	var keys []string
	for _, e := range st.Entries() {
		if e.Kind == store.KindJob {
			keys = append(keys, e.Key)
		}
	}
	return keys
}

// TestJournalRecoveryAfterCrash is the tentpole contract: a job accepted
// before a kill -9 is re-enqueued at the next boot under its original id,
// completes with the same report an uninterrupted run produces, re-anchors
// the delta lineage, and its journal record is tombstoned.
func TestJournalRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	release := make(chan struct{})
	s1 := New(Config{Workers: 1, Store: st1, RunHook: blockingHook(release)})
	defer shutdown(t, s1) // cancels the parked computation at test end
	mustIngest(t, s1, deltaRecords())

	first := mustSubmit(t, s1, deltaAuditRequest("crash-me"))
	if first.ID != "job-000001" || first.State == StateDone {
		t.Fatalf("submitted = %+v, want a queued job-000001", first)
	}
	// Submit returned, so the journal record is already durable; the
	// workload is parked on the hook. Emulate kill -9 by yanking the store.
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	if keys := journalEntries(st2); len(keys) != 1 || keys[0] != "job/job-000001" {
		t.Fatalf("journal after crash = %v, want [job/job-000001]", keys)
	}
	db, err := RestoreDB(st2)
	if err != nil || db == nil {
		t.Fatalf("RestoreDB = %v, %v", db, err)
	}
	s2 := New(Config{Workers: 1, Store: st2, DB: db})
	defer gracefulShutdown(t, s2)
	n, err := s2.RecoverJobs()
	if err != nil || n != 1 {
		t.Fatalf("RecoverJobs = %d, %v; want 1 job", n, err)
	}
	if got := s2.Stats().JobsRecovered; got != 1 {
		t.Fatalf("JobsRecovered = %d", got)
	}

	// Same id, flagged as recovered, and it completes for real this time.
	done := waitDone(t, s2, "job-000001")
	if done.State != StateDone || !done.Recovered {
		t.Fatalf("recovered job = %+v, want done+recovered", done)
	}
	recoveredRep, err := s2.Report("job-000001")
	if err != nil {
		t.Fatal(err)
	}

	// The recovered run's report must match an uninterrupted run's.
	clean := New(Config{Workers: 1})
	defer gracefulShutdown(t, clean)
	mustIngest(t, clean, deltaRecords())
	cj := mustSubmit(t, clean, deltaAuditRequest("crash-me"))
	waitDone(t, clean, cj.ID)
	cleanRep, err := clean.Report(cj.ID)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := regexp.MustCompile(`"elapsed_ns":\d+`)
	norm := func(rep any) string {
		b, _ := json.Marshal(rep)
		return elapsed.ReplaceAllString(string(b), `"elapsed_ns":0`)
	}
	if got, want := norm(recoveredRep), norm(cleanRep); got != want {
		t.Fatalf("recovered report diverges from clean run:\n%s\nvs\n%s", got, want)
	}

	waitNoJournal(t, st2)

	// Fresh ids continue past the recovered one, and the recovered job's
	// completion re-anchored the lineage: ingest-then-resubmit delta-hits.
	next := mustSubmit(t, s2, deltaAuditRequest("next"))
	if next.ID != "job-000002" {
		t.Fatalf("post-recovery id = %s, want job-000002", next.ID)
	}
	mustIngest(t, s2, []RecordWire{{Kind: "hardware", HW: "spare-9", Type: "NIC", Dep: "spare-9-nic"}})
	delta := mustSubmit(t, s2, deltaAuditRequest("post-crash-delta"))
	if delta.State != StateDone || !delta.DeltaHit {
		t.Fatalf("post-crash delta = %+v", delta)
	}
	if got := s2.Stats().Computations; got != 1 {
		t.Fatalf("computations = %d, want only the recovered job's", got)
	}
}

// TestStaleJournalSelfHeals: a crash after the result was persisted but
// before the journal tombstone leaves a stale record; the next boot replays
// it, the replay disk-hits instantly, and the record is cleared — no
// recomputation, no wedged boots.
func TestStaleJournalSelfHeals(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	s1 := New(Config{Workers: 1, Store: st1})
	req := quickRequest("stale")
	j := mustSubmit(t, s1, req)
	waitDone(t, s1, j.ID)
	waitNoJournal(t, st1)
	// Re-create the journal record the crash would have left behind.
	blob, _ := json.Marshal(req)
	rec, _ := json.Marshal(journalRecord{Kind: journalKindAudit, Request: blob})
	if _, err := st1.Put(journalKey(j.ID), store.KindJob, rec); err != nil {
		t.Fatal(err)
	}
	gracefulShutdown(t, s1)
	st1.Close()

	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 1, Store: st2})
	defer gracefulShutdown(t, s2)
	n, err := s2.RecoverJobs()
	if err != nil || n != 1 {
		t.Fatalf("RecoverJobs = %d, %v", n, err)
	}
	st, err := s2.Status(j.ID)
	if err != nil || st.State != StateDone || !st.DiskHit || !st.Recovered {
		t.Fatalf("replayed job = %+v, %v; want an instant disk hit", st, err)
	}
	if got := s2.Stats().Computations; got != 0 {
		t.Fatalf("stale-journal replay ran %d computations", got)
	}
	waitNoJournal(t, st2)
}

// TestCanceledJobNotResurrected: canceling a journaled job tombstones its
// record, so a restart does not replay work the client explicitly killed.
func TestCanceledJobNotResurrected(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	release := make(chan struct{})
	s1 := New(Config{Workers: 1, Store: st1, RunHook: blockingHook(release)})
	j := mustSubmit(t, s1, quickRequest("doomed"))
	if _, err := s1.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	waitNoJournal(t, st1)
	close(release)
	gracefulShutdown(t, s1)
	st1.Close()

	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 1, Store: st2})
	defer gracefulShutdown(t, s2)
	if n, _ := s2.RecoverJobs(); n != 0 {
		t.Fatalf("recovered %d jobs after an explicit cancel", n)
	}
}

// faultStore opens a store in dir routed through the injecting FS.
func faultStore(t *testing.T, dir string, fs *faultinject.FS) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir, OpenFile: func(name string, flag int, perm os.FileMode) (store.File, error) {
		return fs.OpenFile(name, flag, perm)
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// fakeClock is a manually advanced clock for breaker cooldown tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestDegradedModeTripAndRecover: repeated ENOSPC trips the breaker — the
// daemon keeps serving from memory, stops hammering the disk — and a
// successful half-open probe after the cooldown restores durable mode.
func TestDegradedModeTripAndRecover(t *testing.T) {
	fs := &faultinject.FS{}
	st := faultStore(t, t.TempDir(), fs)
	clock := &fakeClock{now: time.Now()}
	s := New(Config{
		Workers: 1, Store: st,
		StoreFailureThreshold: 2, StoreRetryInterval: 10 * time.Second,
		Now: clock.Now,
	})
	defer gracefulShutdown(t, s)

	fs.FailWrites(fs.Writes()+1, 0, syscall.ENOSPC) // every write fails until Reset

	// Job A: the journal write fails (1), then the result persist fails (2)
	// — threshold reached, breaker opens.
	a := mustSubmit(t, s, quickRequest("a"))
	if waitDone(t, s, a.ID).State != StateDone {
		t.Fatal("store failures must not fail the job")
	}
	stats := s.Stats()
	if !stats.Degraded || stats.StoreTrips != 1 || stats.StoreErrors != 2 {
		t.Fatalf("after trip: %+v", stats)
	}
	if !strings.Contains(stats.DegradedReason, "no space left") {
		t.Fatalf("degraded reason = %q", stats.DegradedReason)
	}

	// Job B (distinct key): served memory-only, no new write attempts.
	reqB := quickRequest("b")
	reqB.Deployments[0].Name = "alt"
	b := mustSubmit(t, s, reqB)
	if waitDone(t, s, b.ID).State != StateDone {
		t.Fatal("degraded daemon must keep serving")
	}
	stats = s.Stats()
	if stats.StoreErrors != 2 {
		t.Fatalf("degraded mode still hit the store: %d errors", stats.StoreErrors)
	}
	if stats.StoreSkippedWrites == 0 {
		t.Fatal("no writes were skipped while degraded")
	}

	// Disk recovers; after the cooldown the next write probes and closes
	// the breaker.
	fs.Reset()
	clock.Advance(11 * time.Second)
	reqC := quickRequest("c")
	reqC.Deployments[0].Name = "other"
	c := mustSubmit(t, s, reqC)
	done := waitDone(t, s, c.ID)
	stats = s.Stats()
	if stats.Degraded {
		t.Fatalf("breaker still open after a successful probe: %+v", stats)
	}
	// Done implies durable again: the result is on disk.
	if _, kind, ok, err := st.Get(done.CacheKey); err != nil || !ok || kind != store.KindResult {
		t.Fatalf("post-recovery result not durable: kind=%v ok=%v err=%v", kind, ok, err)
	}
}

// TestIngestDegradedChainRepair: an ingest that cannot persist is rejected
// 503 (safe to retry); once the breaker is open the retry commits to memory
// with Durable=false; and the first durable ingest after recovery rebuilds
// the snapshot chain in full, so a restart serves every batch — including
// the ones accepted while degraded.
func TestIngestDegradedChainRepair(t *testing.T) {
	dir := t.TempDir()
	fs := &faultinject.FS{}
	st := faultStore(t, dir, fs)
	clock := &fakeClock{now: time.Now()}
	s := New(Config{
		Workers: 1, Store: st,
		StoreFailureThreshold: 1, StoreRetryInterval: 10 * time.Second,
		Now: clock.Now,
	})

	batch := func(hw string) []RecordWire {
		return []RecordWire{{Kind: "hardware", HW: hw, Type: "Disk", Dep: hw + "-disk"}}
	}
	r1, err := s.Ingest(&IngestRequest{Records: batch("h1")})
	if err != nil || !r1.Durable {
		t.Fatalf("ingest 1 = %+v, %v", r1, err)
	}

	fs.FailWrites(fs.Writes()+1, 0, syscall.ENOSPC)
	_, err = s.Ingest(&IngestRequest{Records: batch("h2")})
	if err == nil || httpStatus(err) != 503 || !strings.Contains(err.Error(), "safe to retry") {
		t.Fatalf("failed ingest = %v (HTTP %d), want a retryable 503", err, httpStatus(err))
	}
	// The memory DB was left untouched, so the retry cannot duplicate. The
	// breaker (threshold 1) is now open: the retry is accepted memory-only.
	r2, err := s.Ingest(&IngestRequest{Records: batch("h2")})
	if err != nil || r2.Durable {
		t.Fatalf("degraded ingest = %+v, %v; want accepted with Durable=false", r2, err)
	}
	if r2.Total != 2 {
		t.Fatalf("degraded ingest total = %d, want 2", r2.Total)
	}

	// Disk back: the next ingest probes, and — because the chain went stale
	// — lays down a full fresh base carrying the degraded batch too.
	fs.Reset()
	clock.Advance(11 * time.Second)
	r3, err := s.Ingest(&IngestRequest{Records: batch("h3")})
	if err != nil || !r3.Durable {
		t.Fatalf("healing ingest = %+v, %v", r3, err)
	}

	gracefulShutdown(t, s)
	st.Close()
	st2 := openStore(t, dir)
	db, err := RestoreDB(st2)
	if err != nil || db == nil {
		t.Fatalf("RestoreDB = %v, %v", db, err)
	}
	snap := db.Snapshot()
	if snap.Fingerprint() != r3.Fingerprint || snap.Len() != r3.Total {
		t.Fatalf("restored db = %s (%d records), want %s (%d)",
			snap.Fingerprint(), snap.Len(), r3.Fingerprint, r3.Total)
	}
}

// TestWorkerPanicIsolated: a panicking workload fails only its own job —
// with the stack in the error — and the worker keeps serving later jobs.
func TestWorkerPanicIsolated(t *testing.T) {
	var calls atomic.Int64
	s := New(Config{Workers: 1, RunHook: func(ctx context.Context, key string) error {
		if calls.Add(1) == 1 {
			panic("kaboom")
		}
		return nil
	}})
	defer gracefulShutdown(t, s)

	a := mustSubmit(t, s, quickRequest("panics"))
	stA := waitDone(t, s, a.ID)
	if stA.State != StateFailed {
		t.Fatalf("panicked job = %+v, want failed", stA)
	}
	if !strings.Contains(stA.Error, "worker panic: kaboom") || !strings.Contains(stA.Error, "goroutine") {
		t.Fatalf("panic error lost the stack: %q", stA.Error)
	}
	// The same request again: the failure was not cached, the worker
	// survived, and this time it completes.
	b := mustSubmit(t, s, quickRequest("retry"))
	if stB := waitDone(t, s, b.ID); stB.State != StateDone {
		t.Fatalf("post-panic job = %+v", stB)
	}
	stats := s.Stats()
	if stats.WorkerPanics != 1 || stats.Failed != 1 || stats.Completed != 1 {
		t.Fatalf("stats after panic = %+v", stats)
	}
}

// TestRunHookErrorFailsJob: a hook error (the chaos delay hook's context
// cancellation, say) fails or cancels the job without running the workload.
func TestRunHookErrorFailsJob(t *testing.T) {
	s := New(Config{Workers: 1, RunHook: func(ctx context.Context, key string) error {
		return errors.New("injected pre-run failure")
	}})
	defer gracefulShutdown(t, s)
	j := mustSubmit(t, s, quickRequest("hooked"))
	st := waitDone(t, s, j.ID)
	if st.State != StateFailed || !strings.Contains(st.Error, "injected pre-run failure") {
		t.Fatalf("hooked job = %+v", st)
	}
}
