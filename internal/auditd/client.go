package auditd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"indaas/internal/report"
)

// maxResponseBody is the client-side read cap. Reports can dwarf requests
// (a k=24 fat-tree audit carries >10⁴ risk groups), so this is deliberately
// far larger than the server's request bound — a sanity stop, not a budget.
const maxResponseBody = 1 << 30

// RetryPolicy controls the client's backoff on transient failures: refused
// connections (daemon restarting), 429 (queue full) and 502/503/504.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request; 1 disables
	// retries and <= 0 means the default (6).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms); MaxDelay
	// caps it (default 3s). A server Retry-After hint overrides a shorter
	// computed delay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryPolicy is what NewClient installs: six attempts spanning
// roughly five seconds — enough to ride out a daemon restart or a briefly
// full queue without masking a real outage for long.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 3 * time.Second}

// backoff is the capped, jittered exponential delay before attempt+2; a
// server Retry-After hint wins when longer. Jitter de-synchronizes clients
// hammering a recovering daemon.
func (p RetryPolicy) backoff(attempt int, hint time.Duration) time.Duration {
	base, cap := p.BaseDelay, p.MaxDelay
	if base <= 0 {
		base = DefaultRetryPolicy.BaseDelay
	}
	if cap <= 0 {
		cap = DefaultRetryPolicy.MaxDelay
	}
	d := base << uint(attempt)
	if d <= 0 || d > cap {
		d = cap
	}
	d = d/2 + time.Duration(rand.Int63n(int64(d))) // 50%..150%
	if hint > d {
		d = hint
	}
	return d
}

// Client talks to an audit service over its HTTP/JSON API.
type Client struct {
	// bases lists the endpoints this client may talk to: the NewClient base
	// first, then any SetPeers additions. Requests target the current base;
	// a refused connection rotates to the next one, so failover retries move
	// on to a live node instead of hammering a dead one.
	bases []string
	idx   atomic.Int64
	// header holds extra headers applied to every request (see SetHeader).
	header map[string]string
	hc     *http.Client
	// Retry is the transient-failure policy applied to every call. Submits,
	// polls, and report fetches are content-addressed or read-only, hence
	// idempotent and always retried; Ingest appends records, so it is only
	// resent when the connection was refused (nothing reached the server)
	// or the server said 429/503 before ingesting.
	Retry RetryPolicy
}

// NewClient returns a client for the service at base, e.g.
// "http://127.0.0.1:7080". The optional hc overrides http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{bases: []string{strings.TrimRight(base, "/")}, hc: hc, Retry: DefaultRetryPolicy}
}

// SetPeers adds fallback endpoints the client rotates to when the current
// one refuses connections — the other nodes of an auditd cluster, where any
// node can answer any request. Endpoints already known are skipped.
// Configure peers before issuing requests; SetPeers is not safe to call
// concurrently with in-flight calls.
func (c *Client) SetPeers(peers ...string) {
	for _, p := range peers {
		p = strings.TrimRight(p, "/")
		if p == "" {
			continue
		}
		known := false
		for _, b := range c.bases {
			if b == p {
				known = true
				break
			}
		}
		if !known {
			c.bases = append(c.bases, p)
		}
	}
}

// SetHeader attaches a header to every request the client sends (the
// cluster router uses this to mark forwarded and replicated traffic).
// Configure headers before issuing requests; SetHeader is not safe to call
// concurrently with in-flight calls.
func (c *Client) SetHeader(key, value string) {
	if c.header == nil {
		c.header = make(map[string]string)
	}
	c.header[key] = value
}

// currentBase is the endpoint requests currently target.
func (c *Client) currentBase() string {
	return c.bases[int(c.idx.Load())%len(c.bases)]
}

// rotate advances to the next endpoint after a refused connection. With a
// single base it is a no-op and retries stay on the one endpoint.
func (c *Client) rotate() {
	if len(c.bases) > 1 {
		c.idx.Add(1)
	}
}

func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	return c.doRetry(ctx, method, path, body, out, true)
}

// doRetry marshals body once and runs the attempt loop. idempotent widens
// the retry set to include ambiguous transport failures (the request may
// have executed); non-idempotent calls only retry errors that prove the
// server did not act.
func (c *Client) doRetry(ctx context.Context, method, path string, body, out interface{}, idempotent bool) error {
	var blob []byte
	if body != nil {
		var err error
		blob, err = json.Marshal(body)
		if err != nil {
			return err
		}
	}
	attempts := c.Retry.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultRetryPolicy.MaxAttempts
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, blob, out)
		if err == nil || attempt+1 >= attempts {
			return err
		}
		retry, hint := transientError(err, idempotent)
		if !retry {
			return err
		}
		if errors.Is(err, syscall.ECONNREFUSED) {
			// The node is down, not busy: move the next attempt to a peer
			// (no-op without peers) instead of waiting out a dead endpoint.
			c.rotate()
		}
		if sleepCtx(ctx, c.Retry.backoff(attempt, hint)) != nil {
			return err // the caller's deadline beats another attempt
		}
	}
}

func (c *Client) doOnce(ctx context.Context, method, path string, blob []byte, out interface{}) error {
	var rd io.Reader
	if blob != nil {
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.currentBase()+path, rd)
	if err != nil {
		return err
	}
	if blob != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range c.header {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var ra time.Duration
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
		var eb errorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return &statusErr{code: resp.StatusCode, retryAfter: ra, err: fmt.Errorf("auditd: %s", eb.Error)}
		}
		return &statusErr{code: resp.StatusCode, retryAfter: ra, err: fmt.Errorf("auditd: HTTP %d", resp.StatusCode)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(body, out)
}

// transientError classifies an error as worth retrying, with the server's
// Retry-After hint when one came back. A refused connection means nothing
// reached the daemon — safe to resend anything; other transport errors are
// ambiguous and retried only for idempotent requests.
func transientError(err error, idempotent bool) (bool, time.Duration) {
	var se *statusErr
	if errors.As(err, &se) {
		switch se.code {
		case http.StatusTooManyRequests, http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true, se.retryAfter
		}
		return false, 0
	}
	var ue *url.Error
	if errors.As(err, &ue) {
		if errors.Is(ue.Err, context.Canceled) || errors.Is(ue.Err, context.DeadlineExceeded) {
			return false, 0
		}
		if errors.Is(err, syscall.ECONNREFUSED) {
			return true, 0
		}
		return idempotent, 0
	}
	return false, 0
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Submit submits an audit job.
func (c *Client) Submit(ctx context.Context, req *SubmitRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/audits", req, &st)
	return st, err
}

// Status fetches a job's status; wait > 0 long-polls server-side.
func (c *Client) Status(ctx context.Context, id string, wait time.Duration) (JobStatus, error) {
	path := "/v1/audits/" + url.PathEscape(id)
	if wait > 0 {
		path += "?wait=" + url.QueryEscape(wait.String())
	}
	var st JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// WaitDone long-polls until the job reaches a terminal state or ctx is
// done. It survives a daemon restart mid-poll: transient errors — refused
// connections while the daemon is down, 429/503 — are retried with backoff
// for as long as ctx allows, and a journal-recovering daemon serves the
// same job id again once it is back up. Hard errors (404 on an evicted
// job, 400s) still return immediately.
func (c *Client) WaitDone(ctx context.Context, id string) (JobStatus, error) {
	attempt := 0
	for {
		st, err := c.Status(ctx, id, 10*time.Second)
		if err != nil {
			retry, hint := transientError(err, true)
			if !retry {
				return st, err
			}
			if sleepCtx(ctx, c.Retry.backoff(attempt, hint)) != nil {
				return st, err
			}
			attempt++
			continue
		}
		attempt = 0
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// Report fetches a finished audit job's report. Asking for a
// recommendation or private-audit job's result is an error rather than a
// silently zero-valued report — the shared result endpoint serves all
// payload kinds.
func (c *Client) Report(ctx context.Context, id string) (*report.Report, error) {
	raw, err := c.result(ctx, id)
	if err != nil {
		return nil, err
	}
	switch resultKind(raw) {
	case "recommendation":
		return nil, fmt.Errorf("auditd: job %s is a recommendation job; use RecommendResult", id)
	case "private-audit":
		return nil, fmt.Errorf("auditd: job %s is a private-audit job; use PrivateAuditResult", id)
	}
	var rep report.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// result fetches a finished job's raw payload from the shared endpoint.
func (c *Client) result(ctx context.Context, id string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/audits/"+url.PathEscape(id)+"/report", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// resultKind sniffs which job kind a result payload belongs to: audit
// reports carry "audits", recommendations carry "rankings" + "strategy",
// private audits carry "entries" + "protocol".
func resultKind(raw json.RawMessage) string {
	var probe struct {
		Audits   json.RawMessage `json:"audits"`
		Rankings json.RawMessage `json:"rankings"`
		Strategy string          `json:"strategy"`
		Entries  json.RawMessage `json:"entries"`
		Protocol string          `json:"protocol"`
	}
	if json.Unmarshal(raw, &probe) != nil {
		return ""
	}
	if probe.Audits == nil && (probe.Entries != nil || probe.Protocol != "") {
		return "private-audit"
	}
	if probe.Audits == nil && (probe.Rankings != nil || probe.Strategy != "") {
		return "recommendation"
	}
	return "audit"
}

// Recommend submits a placement recommendation job; poll it with Status or
// WaitDone like any audit job and fetch the result with RecommendResult.
func (c *Client) Recommend(ctx context.Context, req *RecommendRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/recommend", req, &st)
	return st, err
}

// RecommendResult fetches a finished recommendation job's ranking; asking
// for an audit job's result is an error (see Report).
func (c *Client) RecommendResult(ctx context.Context, id string) (*RecommendResponse, error) {
	raw, err := c.result(ctx, id)
	if err != nil {
		return nil, err
	}
	switch resultKind(raw) {
	case "audit":
		return nil, fmt.Errorf("auditd: job %s is an audit job; use Report", id)
	case "private-audit":
		return nil, fmt.Errorf("auditd: job %s is a private-audit job; use PrivateAuditResult", id)
	}
	var res RecommendResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// PrivateAudit submits a private (PIA) audit job; poll it with Status or
// WaitDone like any audit job and fetch the result with PrivateAuditResult.
func (c *Client) PrivateAudit(ctx context.Context, req *PrivateAuditRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/private-audits", req, &st)
	return st, err
}

// PrivateAuditResult fetches a finished private-audit job's report; asking
// for another job kind's result is an error (see Report).
func (c *Client) PrivateAuditResult(ctx context.Context, id string) (*PrivateAuditResponse, error) {
	raw, err := c.result(ctx, id)
	if err != nil {
		return nil, err
	}
	switch resultKind(raw) {
	case "audit":
		return nil, fmt.Errorf("auditd: job %s is an audit job; use Report", id)
	case "recommendation":
		return nil, fmt.Errorf("auditd: job %s is a recommendation job; use RecommendResult", id)
	}
	var res PrivateAuditResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// RegisterProvider registers (or replaces) a private-audit provider dataset
// on the server. Registration is a last-write-wins set, so retries are
// safe.
func (c *Client) RegisterProvider(ctx context.Context, name string, components []string) (ProviderInfo, error) {
	var info ProviderInfo
	err := c.do(ctx, http.MethodPost, "/v1/providers", &RegisterProviderRequest{Name: name, Components: components}, &info)
	return info, err
}

// Providers lists the server's registered private-audit datasets
// (fingerprints and component counts only).
func (c *Client) Providers(ctx context.Context) ([]ProviderInfo, error) {
	var out struct {
		Providers []ProviderInfo `json:"providers"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/providers", nil, &out)
	return out.Providers, err
}

// Ingest appends dependency records to the server's database and returns
// the database's new canonical fingerprint. Ingest is NOT idempotent — a
// duplicated batch changes the fingerprint — so only failures that prove
// the server did not ingest (refused connection, 429/503 rejections, which
// the server sends before committing anything) are retried.
func (c *Client) Ingest(ctx context.Context, records []RecordWire) (IngestResponse, error) {
	var resp IngestResponse
	err := c.doRetry(ctx, http.MethodPost, "/v1/depdb", &IngestRequest{Records: records}, &resp, false)
	return resp, err
}

// Cancel cancels a job (idempotent).
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/audits/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Trace fetches a job's phase timeline (GET /v1/jobs/{id}/trace): the
// named pipeline phases a cold computation passed through, with monotonic
// offsets and durations. Hit-path jobs return an empty timeline.
func (c *Client) Trace(ctx context.Context, id string) (TraceResponse, error) {
	var tr TraceResponse
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id)+"/trace", nil, &tr)
	return tr, err
}

// Cached looks a report up by its content address.
func (c *Client) Cached(ctx context.Context, key string) (*report.Report, error) {
	var rep report.Report
	if err := c.do(ctx, http.MethodGet, "/v1/cache/"+url.PathEscape(key), nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// CachedAny looks any result kind up by its content address, decoding the
// payload by shape (see DecodeResultPayload). Cluster peers probe each
// other's caches with it, where a key's kind is not known in advance — the
// typed Cached would silently mis-decode a recommendation into an
// almost-empty report.
func (c *Client) CachedAny(ctx context.Context, key string) (any, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/cache/"+url.PathEscape(key), nil, &raw); err != nil {
		return nil, err
	}
	return DecodeResultPayload(raw)
}

// DecodeResultPayload decodes a raw result payload — as served unwrapped by
// the shared report endpoint and /v1/cache/{key} — into its concrete type:
// *report.Report, *RecommendResponse or *PrivateAuditResponse, sniffed by
// shape exactly as the typed result fetchers do.
func DecodeResultPayload(raw json.RawMessage) (any, error) {
	switch resultKind(raw) {
	case "recommendation":
		res := new(RecommendResponse)
		if err := json.Unmarshal(raw, res); err != nil {
			return nil, err
		}
		return res, nil
	case "private-audit":
		res := new(PrivateAuditResponse)
		if err := json.Unmarshal(raw, res); err != nil {
			return nil, err
		}
		return res, nil
	default:
		rep := new(report.Report)
		if err := json.Unmarshal(raw, rep); err != nil {
			return nil, err
		}
		return rep, nil
	}
}

// Metrics fetches the raw metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.currentBase()+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	return string(blob), err
}

// Watcher is a live /v1/watch stream. Next blocks for the following event;
// Close ends the stream. The watcher survives transient failures — a
// refused connection while the daemon restarts, 429/503, a dropped stream —
// by resubscribing with the client's backoff, so delivery across a daemon
// restart is at-least-once: after a resubscribe the server replays the
// subscription's initial report and Seq restarts from 1.
type Watcher struct {
	c      *Client
	ctx    context.Context
	cancel context.CancelFunc
	blob   []byte // the subscription request, resent on every (re)connect
	body   io.ReadCloser
	rd     *bufio.Reader
}

// Watch subscribes to an audit request over SSE: the request is audited
// immediately and re-audited after every ingest touching its deployments,
// each report arriving as a WatchEvent. The stream lives until ctx is done
// or Close is called.
func (c *Client) Watch(ctx context.Context, req *SubmitRequest) (*Watcher, error) {
	blob, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	wctx, cancel := context.WithCancel(ctx)
	w := &Watcher{c: c, ctx: wctx, cancel: cancel, blob: blob}
	if err := w.connect(); err != nil {
		cancel()
		return nil, err
	}
	return w, nil
}

// connect (re)establishes the stream with one POST /v1/watch.
func (w *Watcher) connect() error {
	req, err := http.NewRequestWithContext(w.ctx, http.MethodPost, w.c.currentBase()+"/v1/watch", bytes.NewReader(w.blob))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	for k, v := range w.c.header {
		req.Header.Set(k, v)
	}
	resp, err := w.c.hc.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var ra time.Duration
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
				ra = time.Duration(secs) * time.Second
			}
		}
		var eb errorBody
		if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
			return &statusErr{code: resp.StatusCode, retryAfter: ra, err: fmt.Errorf("auditd: %s", eb.Error)}
		}
		return &statusErr{code: resp.StatusCode, retryAfter: ra, err: fmt.Errorf("auditd: HTTP %d", resp.StatusCode)}
	}
	w.body = resp.Body
	w.rd = bufio.NewReader(resp.Body)
	return nil
}

// Next returns the stream's next event. Transport failures and server-side
// stream ends (shutdown, eviction) resubscribe with backoff until ctx is
// done; non-transient rejections (e.g. a 400 on a request the database
// outgrew) are returned.
func (w *Watcher) Next() (*WatchEvent, error) {
	attempt := 0
	for {
		if w.rd != nil {
			ev, err := w.readEvent()
			if err == nil {
				return ev, nil
			}
			// The stream broke or the server closed it: drop the connection
			// and fall through to resubscribe.
			w.closeBody()
		}
		if err := w.ctx.Err(); err != nil {
			return nil, err
		}
		if err := w.connect(); err != nil {
			retry, hint := transientError(err, true)
			if !retry {
				return nil, err
			}
			if errors.Is(err, syscall.ECONNREFUSED) {
				w.c.rotate() // resubscribe on a live peer, if the client has one
			}
			if sleepCtx(w.ctx, w.c.Retry.backoff(attempt, hint)) != nil {
				return nil, w.ctx.Err()
			}
			attempt++
			continue
		}
		attempt = 0
	}
}

// readEvent parses SSE frames until one report event arrives. Heartbeat
// comments are skipped; a closed frame or EOF ends the stream.
func (w *Watcher) readEvent() (*WatchEvent, error) {
	var event string
	var data []byte
	for {
		line, err := w.rd.ReadString('\n')
		if err != nil {
			return nil, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if event == "closed" {
				return nil, errors.New("auditd: watch stream closed by server")
			}
			if event == "report" && len(data) > 0 {
				ev := new(WatchEvent)
				if err := json.Unmarshal(data, ev); err != nil {
					return nil, err
				}
				return ev, nil
			}
			event, data = "", nil // unknown frame; keep reading
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = append(data, strings.TrimSpace(strings.TrimPrefix(line, "data:"))...)
		}
	}
}

func (w *Watcher) closeBody() {
	if w.body != nil {
		w.body.Close()
		w.body, w.rd = nil, nil
	}
}

// Close ends the stream and releases the connection.
func (w *Watcher) Close() {
	w.cancel()
	w.closeBody()
}
