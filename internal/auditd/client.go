package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"indaas/internal/report"
)

// maxResponseBody is the client-side read cap. Reports can dwarf requests
// (a k=24 fat-tree audit carries >10⁴ risk groups), so this is deliberately
// far larger than the server's request bound — a sanity stop, not a budget.
const maxResponseBody = 1 << 30

// Client talks to an audit service over its HTTP/JSON API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the service at base, e.g.
// "http://127.0.0.1:7080". The optional hc overrides http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

func (c *Client) do(ctx context.Context, method, path string, body, out interface{}) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.Unmarshal(blob, &eb) == nil && eb.Error != "" {
			return &statusErr{code: resp.StatusCode, err: fmt.Errorf("auditd: %s", eb.Error)}
		}
		return &statusErr{code: resp.StatusCode, err: fmt.Errorf("auditd: HTTP %d", resp.StatusCode)}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(blob, out)
}

// Submit submits an audit job.
func (c *Client) Submit(ctx context.Context, req *SubmitRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/audits", req, &st)
	return st, err
}

// Status fetches a job's status; wait > 0 long-polls server-side.
func (c *Client) Status(ctx context.Context, id string, wait time.Duration) (JobStatus, error) {
	path := "/v1/audits/" + url.PathEscape(id)
	if wait > 0 {
		path += "?wait=" + url.QueryEscape(wait.String())
	}
	var st JobStatus
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// WaitDone long-polls until the job reaches a terminal state or ctx is done.
func (c *Client) WaitDone(ctx context.Context, id string) (JobStatus, error) {
	for {
		st, err := c.Status(ctx, id, 10*time.Second)
		if err != nil {
			return st, err
		}
		switch st.State {
		case StateDone, StateFailed, StateCanceled:
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
	}
}

// Report fetches a finished audit job's report. Asking for a
// recommendation job's result is an error rather than a silently
// zero-valued report — the shared result endpoint serves both payloads.
func (c *Client) Report(ctx context.Context, id string) (*report.Report, error) {
	raw, err := c.result(ctx, id)
	if err != nil {
		return nil, err
	}
	if kind := resultKind(raw); kind == "recommendation" {
		return nil, fmt.Errorf("auditd: job %s is a recommendation job; use RecommendResult", id)
	}
	var rep report.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// result fetches a finished job's raw payload from the shared endpoint.
func (c *Client) result(ctx context.Context, id string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/audits/"+url.PathEscape(id)+"/report", nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// resultKind sniffs which job kind a result payload belongs to: audit
// reports carry "audits", recommendations carry "rankings" + "strategy".
func resultKind(raw json.RawMessage) string {
	var probe struct {
		Audits   json.RawMessage `json:"audits"`
		Rankings json.RawMessage `json:"rankings"`
		Strategy string          `json:"strategy"`
	}
	if json.Unmarshal(raw, &probe) != nil {
		return ""
	}
	if probe.Audits == nil && (probe.Rankings != nil || probe.Strategy != "") {
		return "recommendation"
	}
	return "audit"
}

// Recommend submits a placement recommendation job; poll it with Status or
// WaitDone like any audit job and fetch the result with RecommendResult.
func (c *Client) Recommend(ctx context.Context, req *RecommendRequest) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/recommend", req, &st)
	return st, err
}

// RecommendResult fetches a finished recommendation job's ranking; asking
// for an audit job's result is an error (see Report).
func (c *Client) RecommendResult(ctx context.Context, id string) (*RecommendResponse, error) {
	raw, err := c.result(ctx, id)
	if err != nil {
		return nil, err
	}
	if kind := resultKind(raw); kind == "audit" {
		return nil, fmt.Errorf("auditd: job %s is an audit job; use Report", id)
	}
	var res RecommendResponse
	if err := json.Unmarshal(raw, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Ingest appends dependency records to the server's database and returns
// the database's new canonical fingerprint.
func (c *Client) Ingest(ctx context.Context, records []RecordWire) (IngestResponse, error) {
	var resp IngestResponse
	err := c.do(ctx, http.MethodPost, "/v1/depdb", &IngestRequest{Records: records}, &resp)
	return resp, err
}

// Cancel cancels a job (idempotent).
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/audits/"+url.PathEscape(id), nil, &st)
	return st, err
}

// Cached looks a report up by its content address.
func (c *Client) Cached(ctx context.Context, key string) (*report.Report, error) {
	var rep report.Report
	if err := c.do(ctx, http.MethodGet, "/v1/cache/"+url.PathEscape(key), nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Metrics fetches the raw metrics exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBody))
	return string(blob), err
}
