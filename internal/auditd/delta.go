// Delta audits: when the dependency database moves from snapshot A to
// snapshot B, a job submitted against B does not have to recompute from
// scratch. The server keeps a lineage index — for each database-independent
// request identity, the recent (fingerprint, snapshot, result address)
// triples — and diffs the candidate ancestor's snapshot against the current
// one (cheap: same-database snapshots diff in O(records ingested between
// them)). Subjects the diff does not reach audit identically against either
// snapshot (see sia.DirtyDeployments), so:
//
//   - if no subject of the request is dirty, the ancestor result is the
//     answer, byte for byte: it is adopted under the new content address and
//     the job finishes instantly (JobStatus.DeltaHit, empty DirtySubjects);
//   - if some subjects are dirty, only those deployments are re-audited and
//     spliced with the ancestor's clean per-deployment audits, then
//     re-ranked — producing the same bytes a full recompute would, for the
//     cost of the dirty cone (DeltaHit with DirtySubjects listing the
//     re-audited servers).
//
// Recommendations delta the same way at candidate granularity: the ancestor
// search's per-deployment score memo is replayed for every candidate that
// contains no dirty node, so only moved candidates are re-audited.
package auditd

import (
	"context"
	"fmt"
	"indaas/internal/telemetry"

	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/placement"
	"indaas/internal/report"
	"indaas/internal/sia"
)

// Lineage bounds: per request identity the newest lineagePerKey generations
// are kept; across identities the lineageMaxKeys least recently registered
// are dropped wholesale. Entries are small — they reference results by
// content address and snapshots by generation mark — except recommendation
// score memos, which are capped separately.
const (
	lineagePerKey  = 4
	lineageMaxKeys = 256
	// lineageMaxScores bounds the recommendation score memos retained —
	// both per memo (recommend.go drops a larger memo at the source) and in
	// aggregate across the whole index (addLocked strips the oldest memos
	// past the budget, keeping their cheap fp/resultKey entries). A dropped
	// memo only costs a full re-search; an exact search over a huge pool is
	// cheaper to redo than to pin tens of MB per retained generation.
	lineageMaxScores = 250_000
)

// lineageEntry records one computed (or adopted) result generation.
type lineageEntry struct {
	resultKey string
	fp        string
	snap      *depdb.Snapshot
	// Audit jobs: the graph specs the result was computed for.
	specs []sia.GraphSpec
	// Recommendation jobs: the kinds filter, the node universe
	// (pool ∪ fixed), and the search's score memo.
	kinds  []deps.Kind
	nodes  []string
	scores map[string]placement.Score
}

// lineageReg is the registration a submission carries through the job
// machinery: on successful completion the entry is published under reqKey.
type lineageReg struct {
	reqKey string
	entry  *lineageEntry
}

// lineageIndex maps request identities to their recent result generations.
// Guarded by Server.mu.
type lineageIndex struct {
	entries map[string][]*lineageEntry // newest last
	order   []string                   // reqKeys, least recently registered first
	// scoreTotal tracks the retained recommendation score entries across
	// every lineage entry, enforcing the aggregate lineageMaxScores budget.
	scoreTotal int
}

func newLineageIndex() *lineageIndex {
	return &lineageIndex{entries: make(map[string][]*lineageEntry)}
}

// addLocked publishes an entry, deduplicating by fingerprint and enforcing
// the retention bounds. Registering a known identity refreshes its recency,
// so the keys evicted past lineageMaxKeys really are the least recently
// registered ones. Caller holds Server.mu.
func (l *lineageIndex) addLocked(reg *lineageReg) {
	if reg == nil || reg.entry == nil || reg.entry.resultKey == "" {
		return
	}
	es, known := l.entries[reg.reqKey]
	for _, e := range es {
		if e.fp == reg.entry.fp {
			return // this generation is already represented
		}
	}
	if known {
		for i, k := range l.order {
			if k == reg.reqKey {
				l.order = append(append(l.order[:i:i], l.order[i+1:]...), k)
				break
			}
		}
	} else {
		l.order = append(l.order, reg.reqKey)
	}
	l.scoreTotal += len(reg.entry.scores)
	es = append(es, reg.entry)
	for len(es) > lineagePerKey {
		l.scoreTotal -= len(es[0].scores)
		es = es[1:]
	}
	l.entries[reg.reqKey] = es
	for len(l.entries) > lineageMaxKeys && len(l.order) > 0 {
		oldest := l.order[0]
		l.order = l.order[1:]
		for _, e := range l.entries[oldest] {
			l.scoreTotal -= len(e.scores)
		}
		delete(l.entries, oldest)
	}
	l.enforceScoreBudgetLocked()
}

// enforceScoreBudgetLocked strips score memos, oldest identity first, until
// the aggregate budget holds. The entries themselves stay — fingerprints,
// snapshots and result addresses are cheap and keep whole-result adoption
// working; only seeded partial re-scoring falls back to a full search.
// Adoption-chained entries share one memo map, and the budget counts each
// retaining reference, erring toward keeping less.
func (l *lineageIndex) enforceScoreBudgetLocked() {
	for _, key := range l.order {
		if l.scoreTotal <= lineageMaxScores {
			return
		}
		for _, e := range l.entries[key] {
			if len(e.scores) == 0 {
				continue
			}
			l.scoreTotal -= len(e.scores)
			e.scores = nil
			if l.scoreTotal <= lineageMaxScores {
				return
			}
		}
	}
}

// lookupLocked returns copies of the retained generations for a request
// identity, newest last, safe to inspect after releasing Server.mu: the
// struct copies pin their scores-map references even if the budget enforcer
// strips the originals concurrently, and everything the fields point to
// (snapshots, specs, score maps) is never mutated after publication.
func (l *lineageIndex) lookupLocked(reqKey string) []*lineageEntry {
	es := l.entries[reqKey]
	out := make([]*lineageEntry, len(es))
	for i, e := range es {
		cp := *e
		out[i] = &cp
	}
	return out
}

// deltaPlan is the outcome of delta planning for one submission.
type deltaPlan struct {
	// adopt, when non-nil, is an ancestor result valid verbatim for the new
	// database generation: the job can finish without touching the queue.
	adopt any
	// run, when set, replaces the full recompute with a partial one that
	// re-audits only the dirty subjects.
	run func(ctx context.Context) (any, error)
	// dirty lists the re-audited subjects (empty for adopt).
	dirty []string
	// scores, for an adopted recommendation, is the ancestor's score memo —
	// chained onto the new generation's lineage entry so delta searches keep
	// working across consecutive clean ingests.
	scores map[string]placement.Score
}

// planAuditDelta looks for an ancestor result to reuse for an audit
// submission against the server database. It returns nil when no usable
// ancestor exists (first audit of this shape, lineage evicted, ancestor
// result no longer retrievable) — the caller then runs the full compute.
func (s *Server) planAuditDelta(reqKey, key string, snap *depdb.Snapshot, specs []sia.GraphSpec, opts sia.Options) *deltaPlan {
	type candidate struct {
		entry    *lineageEntry
		dirty    []bool
		subjects []string
		nDirty   int
	}
	if _, hit := s.cache.Get(key); hit {
		return nil // plain content-addressed hit; enqueue handles it
	}
	s.mu.Lock()
	entries := s.lineage.lookupLocked(reqKey)
	s.mu.Unlock()
	// Diffing and dirty analysis run without Server.mu: entries are
	// immutable once published, and the work is O(records ingested since
	// the ancestor) — fine for this submission, not for every concurrent
	// submit and poll serialized behind the job-table lock.
	var full, partial *candidate
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if e.fp == snap.Fingerprint() || len(e.specs) == 0 {
			continue
		}
		diff := e.snap.Diff(snap)
		if diff.Empty() {
			continue
		}
		dirty, subjects := sia.DirtyDeployments(specs, diff)
		n := 0
		for _, d := range dirty {
			if d {
				n++
			}
		}
		c := &candidate{entry: e, dirty: dirty, subjects: subjects, nDirty: n}
		if n == 0 {
			full = c
			break // newest clean ancestor wins outright
		}
		if partial == nil {
			partial = c // newest ancestor: smallest expected dirty cone
		}
	}

	chosen := full
	if chosen == nil {
		chosen = partial
	}
	if chosen == nil || chosen.nDirty == len(specs) {
		return nil // nothing to reuse, or everything dirty anyway
	}
	ancestor, ok := s.retrieveResult(chosen.entry.resultKey)
	if !ok {
		return nil
	}
	oldRep, ok := ancestor.(*report.Report)
	if !ok {
		return nil
	}
	if chosen.nDirty == 0 {
		return &deltaPlan{adopt: ancestor}
	}
	dirty := chosen.dirty
	return &deltaPlan{
		dirty: chosen.subjects,
		run: func(ctx context.Context) (any, error) {
			return spliceAudit(ctx, snap, specs, opts, oldRep, dirty)
		},
	}
}

// planRecommendDelta is planAuditDelta's analogue for placement
// recommendations. A clean pool adopts the ancestor response whole; a
// partially dirty pool seeds the search with the ancestor's scores for every
// candidate free of dirty nodes.
func (s *Server) planRecommendDelta(reqKey, key string, snap *depdb.Snapshot, preq *placement.Request, kinds []deps.Kind, universe []string) *deltaPlan {
	if _, hit := s.cache.Get(key); hit {
		return nil
	}
	s.mu.Lock()
	entries := s.lineage.lookupLocked(reqKey)
	s.mu.Unlock()
	var chosen *lineageEntry
	var dirtyNodes []string
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if e.fp == snap.Fingerprint() || len(e.nodes) == 0 {
			continue
		}
		diff := e.snap.Diff(snap)
		if diff.Empty() {
			continue
		}
		dirty := intersectSorted(sia.DirtySubjects(diff, kinds), universe)
		if len(dirty) == 0 {
			chosen, dirtyNodes = e, nil
			break
		}
		if chosen == nil && len(e.scores) > 0 {
			chosen, dirtyNodes = e, dirty
		}
	}

	if chosen == nil || len(dirtyNodes) == len(universe) {
		return nil
	}
	if len(dirtyNodes) == 0 {
		ancestor, ok := s.retrieveResult(chosen.resultKey)
		if !ok {
			return nil
		}
		if _, isRec := ancestor.(*RecommendResponse); !isRec {
			return nil
		}
		return &deltaPlan{adopt: ancestor, scores: chosen.scores}
	}
	seed := make(map[string]placement.Score, len(chosen.scores))
	dirtySet := make(map[string]bool, len(dirtyNodes))
	for _, n := range dirtyNodes {
		dirtySet[n] = true
	}
seeding:
	for k, sc := range chosen.scores {
		for _, n := range placement.KeyNodes(k) {
			if dirtySet[n] {
				continue seeding
			}
		}
		seed[k] = sc
	}
	if len(seed) == 0 {
		return nil // nothing reusable; a plain full search is equivalent
	}
	preq.SeedScores = seed
	return &deltaPlan{dirty: dirtyNodes}
}

// retrieveResult fetches a completed result by content address, walking the
// result-tier chain in order (memory, disk, any extras). Never called with
// Server.mu held — lower tiers do IO.
func (s *Server) retrieveResult(key string) (any, bool) {
	for _, t := range s.tiers {
		if res, ok := t.Get(key); ok {
			return res, true
		}
	}
	return nil, false
}

// spliceAudit produces the report a full recompute against db would produce,
// re-auditing only the dirty specs and taking the rest verbatim from the
// ancestor report. Clean specs' fault graphs are identical between the two
// snapshots (that is what clean means), so the spliced report matches the
// full recompute byte for byte.
func spliceAudit(ctx context.Context, db depdb.Reader, specs []sia.GraphSpec, opts sia.Options, old *report.Report, dirty []bool) (*report.Report, error) {
	tr := telemetry.FromContext(ctx)
	defer tr.Start("splice")()
	pool := make(map[string][]report.DeploymentAudit, len(old.Audits))
	for _, a := range old.Audits {
		id := auditIdentity(a.Deployment, a.Sources)
		pool[id] = append(pool[id], a)
	}
	rep := &report.Report{}
	for i, spec := range specs {
		if !dirty[i] {
			id := auditIdentity(spec.Deployment, spec.Servers)
			if as := pool[id]; len(as) > 0 {
				rep.Audits = append(rep.Audits, as[0])
				pool[id] = as[1:]
				tr.Add("subjects_spliced", 1)
				continue
			}
			// Defensive: the ancestor should always carry a clean spec's
			// audit; recompute rather than fail if it somehow does not.
		}
		endBuild := tr.Start("graph-build")
		g, err := sia.BuildGraph(db, spec)
		endBuild()
		if err != nil {
			return nil, err
		}
		audit, err := sia.AuditContext(ctx, g, spec, opts)
		if err != nil {
			return nil, fmt.Errorf("sia: auditing %q: %w", spec.Deployment, err)
		}
		rep.Audits = append(rep.Audits, *audit)
	}
	if opts.RankMode == sia.RankByProb {
		rep.Rank(report.CompareByFailureProb)
	} else {
		rep.Rank(report.CompareBySizeVector)
	}
	return rep, nil
}

// auditIdentity names a deployment audit within one request shape. Within a
// lineage the specs are fixed (same requestKey), so name+sources is a
// faithful identity; duplicates are consumed multiset-style by the splicer.
func auditIdentity(name string, sources []string) string {
	id := name
	for _, s := range sources {
		id += "\x1f" + s
	}
	return id
}

// intersectSorted returns the members of sorted that appear in universe,
// preserving order.
func intersectSorted(sorted, universe []string) []string {
	in := make(map[string]bool, len(universe))
	for _, u := range universe {
		in[u] = true
	}
	var out []string
	for _, s := range sorted {
		if in[s] {
			out = append(out, s)
		}
	}
	return out
}
