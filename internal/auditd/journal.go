package auditd

import (
	"encoding/json"
	"fmt"
	"log"
	"strconv"
	"strings"

	"indaas/internal/store"
)

// The job journal makes accepted work — not just finished results —
// durable. Every submission that will actually compute is written to the
// store under job/<id> before the job can enter the queue, tombstoned when
// the job settles, and replayed by RecoverJobs at the next boot if a crash
// interrupted it.
const jobKeyPrefix = "job/"

// The journal's job kinds are the workload kinds (see executor.go): one
// vocabulary for what a job is, on disk and on the wire.
const (
	journalKindAudit     = KindAudit
	journalKindRecommend = KindRecommend
	journalKindPrivate   = KindPrivateAudit
)

// journalRecord is the disk envelope of one accepted job: enough to replay
// the submission verbatim. Requests are stored in their wire form, so a
// replay walks the same validation, normalization, delta planning, and
// caching as the original call.
type journalRecord struct {
	Kind    string          `json:"kind"`
	Request json.RawMessage `json:"request"`
}

func journalKey(id string) string { return jobKeyPrefix + id }

// journalFor builds the journal payload for a submission, or nil — meaning
// "do not journal" — on a memory-only service.
func (s *Server) journalFor(kind string, req any) *journalRecord {
	if s.store == nil {
		return nil
	}
	blob, err := json.Marshal(req)
	if err != nil {
		// Wire requests always marshal; never block a submission on this.
		return nil
	}
	return &journalRecord{Kind: kind, Request: blob}
}

// persistJob journals an accepted job. Skipped while degraded: a job
// accepted in memory-only mode is lost by a crash, exactly as it would be
// on a service with no store at all. Called without s.mu held.
func (s *Server) persistJob(id string, jr *journalRecord) {
	if s.store == nil || jr == nil {
		return
	}
	if !s.breaker.allow() {
		s.m.storeSkipped.Add(1)
		return
	}
	blob, err := json.Marshal(jr)
	if err != nil {
		s.m.storeErrors.Add(1)
		return
	}
	evicted, err := s.store.Put(journalKey(id), store.KindJob, blob)
	if err != nil {
		s.storeFailure("journaling job "+id, err)
	} else {
		s.storeOK()
	}
	if len(evicted) > 0 {
		s.mu.Lock()
		s.dropCachedLocked(evicted, "")
		s.mu.Unlock()
	}
}

// clearJournals tombstones the journal records of settled jobs. Failures
// are tolerated: a stale record only costs a redundant — and, with the
// result already durable, instantly cache-answered — re-submission at the
// next boot. Called without s.mu held.
func (s *Server) clearJournals(ids []string) {
	if s.store == nil || len(ids) == 0 {
		return
	}
	if !s.breaker.allow() {
		s.m.storeSkipped.Add(int64(len(ids)))
		return
	}
	for _, id := range ids {
		if err := s.store.Delete(journalKey(id)); err != nil {
			s.storeFailure("clearing journal of job "+id, err)
			return
		}
	}
	s.storeOK()
}

// journaledIDsLocked collects and claims the journaled ids among jobs;
// the caller tombstones them after releasing s.mu. Claiming (flipping
// j.journaled off) keeps the concurrent terminal paths — completion,
// cancel, expiry — from double-clearing.
func journaledIDsLocked(jobs []*job) []string {
	var ids []string
	for _, j := range jobs {
		if j.journaled {
			j.journaled = false
			ids = append(ids, j.id)
		}
	}
	return ids
}

// RecoverJobs re-enqueues every journaled job an earlier process accepted
// but never settled — the kill -9 recovery path. Call it once at boot,
// after RestoreDB and before serving traffic, so a client polling a
// pre-crash job id finds it again under the same id with Recovered set.
// Jobs whose results became durable before the crash settle instantly as
// disk hits. Records that can no longer be replayed are dropped (with a
// log line) rather than wedging every future boot. Returns the number of
// jobs re-enqueued.
func (s *Server) RecoverJobs() (int, error) {
	if s.store == nil {
		return 0, nil
	}
	recovered := 0
	for _, e := range s.store.Entries() { // oldest first: submission order
		if e.Kind != store.KindJob || !strings.HasPrefix(e.Key, jobKeyPrefix) {
			continue
		}
		id := strings.TrimPrefix(e.Key, jobKeyPrefix)
		blob, _, ok, err := s.store.Get(e.Key)
		if err != nil || !ok {
			s.dropJournal(e.Key, fmt.Errorf("unreadable: ok=%v err=%v", ok, err))
			continue
		}
		var jr journalRecord
		if err := json.Unmarshal(blob, &jr); err != nil {
			s.dropJournal(e.Key, err)
			continue
		}
		switch jr.Kind {
		case journalKindAudit:
			var req SubmitRequest
			if err := json.Unmarshal(jr.Request, &req); err != nil {
				s.dropJournal(e.Key, err)
				continue
			}
			if _, err := s.submit(&req, id); err != nil {
				s.dropJournal(e.Key, err)
				continue
			}
		case journalKindRecommend:
			var req RecommendRequest
			if err := json.Unmarshal(jr.Request, &req); err != nil {
				s.dropJournal(e.Key, err)
				continue
			}
			if _, err := s.recommend(&req, id); err != nil {
				s.dropJournal(e.Key, err)
				continue
			}
		case journalKindPrivate:
			var req PrivateAuditRequest
			if err := json.Unmarshal(jr.Request, &req); err != nil {
				s.dropJournal(e.Key, err)
				continue
			}
			if _, err := s.privateAudit(&req, id); err != nil {
				s.dropJournal(e.Key, err)
				continue
			}
		default:
			s.dropJournal(e.Key, fmt.Errorf("unknown job kind %q", jr.Kind))
			continue
		}
		recovered++
		s.m.jobsRecovered.Add(1)
		log.Printf("auditd: recovered job %s from the journal", id)
	}
	return recovered, nil
}

// dropJournal deletes a journal record that cannot be replayed, logging why.
func (s *Server) dropJournal(key string, err error) {
	log.Printf("auditd: dropping journal record %s: %v", key, err)
	if derr := s.store.Delete(key); derr != nil {
		log.Printf("auditd: dropping journal record %s: %v", key, derr)
	}
}

// allocIDLocked assigns a job id: the next fresh one, or — when replaying
// the journal — the job's original id, bumping the counter past it so the
// ids of recovered and new jobs never collide.
func (s *Server) allocIDLocked(recoverID string) string {
	if recoverID != "" {
		if n, err := strconv.ParseUint(strings.TrimPrefix(recoverID, "job-"), 10, 64); err == nil && n > s.nextID {
			s.nextID = n
		}
		return recoverID
	}
	s.nextID++
	return fmt.Sprintf("job-%06d", s.nextID)
}
