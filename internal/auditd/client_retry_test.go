package auditd

// Client retry/backoff tests, driven by fake transports: refused
// connections and 429/503 rejections are retried with capped jittered
// backoff (honoring Retry-After), ambiguous transport failures are retried
// only for idempotent calls, and WaitDone rides out a full daemon restart.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

func refusedErr() error {
	return &net.OpError{Op: "dial", Net: "tcp", Err: os.NewSyscallError("connect", syscall.ECONNREFUSED)}
}

// flakyTransport refuses the first n round trips, then delegates.
type flakyTransport struct {
	calls atomic.Int64
	n     int64
	base  http.RoundTripper
}

func (f *flakyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if f.calls.Add(1) <= f.n {
		return nil, refusedErr()
	}
	return f.base.RoundTrip(r)
}

// brokenTransport always fails with an ambiguous (non-refused) error.
type brokenTransport struct{ calls atomic.Int64 }

func (b *brokenTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	b.calls.Add(1)
	return nil, errors.New("connection reset mid-flight")
}

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

// TestClientRetriesRefusedConnection: a submit (and an ingest — nothing
// reached the server) survives a daemon that is briefly down.
func TestClientRetriesRefusedConnection(t *testing.T) {
	s := New(Config{Workers: 1})
	defer gracefulShutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()

	ft := &flakyTransport{n: 2, base: ts.Client().Transport}
	c := NewClient(ts.URL, &http.Client{Transport: ft})
	c.Retry = fastRetry()
	st, err := c.Submit(ctx, quickRequest("retry-me"))
	if err != nil {
		t.Fatalf("submit through flaky transport: %v", err)
	}
	if got := ft.calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two refused, one served)", got)
	}
	if done, err := c.WaitDone(ctx, st.ID); err != nil || done.State != StateDone {
		t.Fatalf("wait = %+v, %v", done, err)
	}

	ft2 := &flakyTransport{n: 1, base: ts.Client().Transport}
	c2 := NewClient(ts.URL, &http.Client{Transport: ft2})
	c2.Retry = fastRetry()
	resp, err := c2.Ingest(ctx, []RecordWire{{Kind: "hardware", HW: "h1", Type: "Disk", Dep: "h1-d"}})
	if err != nil || resp.Added != 1 {
		t.Fatalf("ingest through flaky transport = %+v, %v", resp, err)
	}
	if got := ft2.calls.Load(); got != 2 {
		t.Fatalf("ingest attempts = %d, want 2", got)
	}
}

// TestIngestNotRetriedOnAmbiguousError: a transport failure that may have
// reached the server must not resend a non-idempotent ingest — a duplicate
// batch would silently change the database fingerprint. Idempotent calls
// keep retrying.
func TestIngestNotRetriedOnAmbiguousError(t *testing.T) {
	bt := &brokenTransport{}
	c := NewClient("http://127.0.0.1:0", &http.Client{Transport: bt})
	c.Retry = fastRetry()
	ctx := context.Background()

	if _, err := c.Ingest(ctx, []RecordWire{{Kind: "hardware", HW: "h", Type: "Disk", Dep: "d"}}); err == nil {
		t.Fatal("broken transport reported success")
	}
	if got := bt.calls.Load(); got != 1 {
		t.Fatalf("ingest attempts = %d, want exactly 1", got)
	}

	bt.calls.Store(0)
	if _, err := c.Status(ctx, "job-000001", 0); err == nil {
		t.Fatal("broken transport reported success")
	}
	if got := bt.calls.Load(); got != int64(c.Retry.MaxAttempts) {
		t.Fatalf("status attempts = %d, want %d", got, c.Retry.MaxAttempts)
	}
}

// TestQueueFullCarriesRetryAfterAndClientBacksOff: the server's 429 names a
// retry delay, and the client honors it — the retried submit lands after
// the queue drains.
func TestQueueFullCarriesRetryAfterAndClientBacksOff(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1, RunHook: blockingHook(release)})
	defer gracefulShutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()

	// Occupy the worker and the single queue slot with distinct keys. Wait
	// for the worker to pick up the first job so the second lands in the
	// queue slot rather than racing it for the same one.
	reqA, reqB := quickRequest("hold-a"), quickRequest("hold-b")
	reqB.Deployments[0].Name = "alt-b"
	a := mustSubmit(t, s, reqA)
	for i := 0; i < 400; i++ {
		if st, err := s.Status(a.ID); err == nil && st.State == StateRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mustSubmit(t, s, reqB)

	reqC := quickRequest("rejected")
	reqC.Deployments[0].Name = "alt-c"
	noRetry := NewClient(ts.URL, ts.Client())
	noRetry.Retry = RetryPolicy{MaxAttempts: 1}
	_, err := noRetry.Submit(ctx, reqC)
	if err == nil || httpStatus(err) != 429 {
		t.Fatalf("submit to full queue = %v (HTTP %d), want 429", err, httpStatus(err))
	}
	var se *statusErr
	if !errors.As(err, &se) || se.retryAfter != time.Second {
		t.Fatalf("429 carried retryAfter=%v, want 1s", se.retryAfter)
	}

	// With retries on, the same submit waits out the full queue.
	go close(release)
	c := NewClient(ts.URL, ts.Client())
	c.Retry = RetryPolicy{MaxAttempts: 8, BaseDelay: 20 * time.Millisecond, MaxDelay: 200 * time.Millisecond}
	st, err := c.Submit(ctx, reqC)
	if err != nil {
		t.Fatalf("retried submit: %v", err)
	}
	if done, err := c.WaitDone(ctx, st.ID); err != nil || done.State != StateDone {
		t.Fatalf("wait = %+v, %v", done, err)
	}
}

// gateTransport refuses while down is set, else delegates — the client's
// view of a daemon that is killed and later comes back.
type gateTransport struct {
	down *atomic.Bool
	base http.RoundTripper
}

func (g *gateTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	if g.down.Load() {
		return nil, refusedErr()
	}
	return g.base.RoundTrip(r)
}

// TestWaitDoneSurvivesDaemonRestart is the end-to-end client contract: a
// WaitDone in flight when the daemon is killed keeps retrying through the
// refused connections, and — because the restarted daemon recovers the
// journal before serving — finds the SAME job id again and returns its
// completion.
func TestWaitDoneSurvivesDaemonRestart(t *testing.T) {
	oldCap := maxStatusWait
	maxStatusWait = 50 * time.Millisecond
	defer func() { maxStatusWait = oldCap }()

	dir := t.TempDir()
	st1 := openStore(t, dir)
	release := make(chan struct{})
	s1 := New(Config{Workers: 1, Store: st1, RunHook: blockingHook(release)})
	defer shutdown(t, s1)

	// The proxy front door survives the "restart"; the handler behind it is
	// swapped when the second daemon comes up, as a port takeover would.
	var handlerMu sync.Mutex
	handler := s1.Handler()
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerMu.Lock()
		h := handler
		handlerMu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer proxy.Close()
	var down atomic.Bool
	c := NewClient(proxy.URL, &http.Client{Transport: &gateTransport{down: &down, base: proxy.Client().Transport}})
	c.Retry = RetryPolicy{MaxAttempts: 6, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, quickRequest("survives-restart"))
	if err != nil {
		t.Fatal(err)
	}

	type waitResult struct {
		st  JobStatus
		err error
	}
	waited := make(chan waitResult, 1)
	go func() {
		st, err := c.WaitDone(ctx, st.ID)
		waited <- waitResult{st, err}
	}()

	// Let the poll loop establish itself, then kill the daemon mid-poll.
	time.Sleep(150 * time.Millisecond)
	down.Store(true)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	s2 := New(Config{Workers: 1, Store: st2})
	defer gracefulShutdown(t, s2)
	if n, err := s2.RecoverJobs(); err != nil || n != 1 {
		t.Fatalf("RecoverJobs = %d, %v", n, err)
	}
	handlerMu.Lock()
	handler = s2.Handler()
	handlerMu.Unlock()
	down.Store(false)

	res := <-waited
	if res.err != nil {
		t.Fatalf("WaitDone across restart: %v", res.err)
	}
	if res.st.ID != st.ID || res.st.State != StateDone || !res.st.Recovered {
		t.Fatalf("WaitDone = %+v, want the same job done and recovered", res.st)
	}
}

// TestRetryAfterHintOverridesBackoff: a 503 carrying Retry-After: 1 holds
// the retry for the full second even when the policy's own backoff is
// milliseconds.
func TestRetryAfterHintOverridesBackoff(t *testing.T) {
	s := New(Config{Workers: 1})
	defer gracefulShutdown(t, s)
	inner := s.Handler()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"degraded"}`))
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewClient(ts.URL, ts.Client())
	c.Retry = fastRetry()
	start := time.Now()
	if _, err := c.Submit(context.Background(), quickRequest("hinted")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Fatalf("retry fired after %v, want the server's 1s hint honored", elapsed)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
}
