package auditd

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"indaas/internal/depdb"
	"indaas/internal/deps"
)

// testRecords is a small two-server deployment sharing a ToR switch and
// libc6 — it has unexpected size-1 risk groups, like the paper's Fig. 4c.
func testRecords() []RecordWire {
	return WireRecords([]deps.Record{
		deps.NewNetwork("s1", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("s1", "Internet", "ToR1", "Core2"),
		deps.NewNetwork("s2", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("s2", "Internet", "ToR1", "Core2"),
		deps.NewHardware("s1", "Disk", "S1-SED900"),
		deps.NewHardware("s2", "Disk", "S2-SED900"),
		deps.NewSoftware("nginx", "s1", "libc6", "libssl3"),
		deps.NewSoftware("httpd", "s2", "libc6", "libapr1"),
	})
}

func quickRequest(title string) *SubmitRequest {
	return &SubmitRequest{
		Title:   title,
		Records: testRecords(),
		Deployments: []DeploymentWire{
			{Name: "s1+s2", Servers: []string{"s1", "s2"}},
		},
	}
}

// slowRequest samples an absurd number of rounds: it can only finish by
// cancellation. seed diversifies the cache key so tests control coalescing.
func slowRequest(title string, seed int64) *SubmitRequest {
	r := quickRequest(title)
	r.Algorithm = "failure-sampling"
	r.Rounds = 2_000_000_000
	r.Seed = seed
	r.SamplerWorkers = 2
	return r
}

func mustSubmit(t *testing.T, s *Server, req *SubmitRequest) JobStatus {
	t.Helper()
	st, err := s.Submit(req)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return st
}

func waitDone(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := s.WaitDone(ctx, id, 30*time.Second)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if st.State == StateQueued || st.State == StateRunning {
		t.Fatalf("job %s still %s after wait", id, st.State)
	}
	return st
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	s.Shutdown(ctx) // deadline forces cancellation of leftover jobs
}

func TestSubmitValidation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	cases := []*SubmitRequest{
		{}, // no deployments
		{Deployments: quickRequest("").Deployments}, // no records, no preloaded DB
		func() *SubmitRequest { r := quickRequest(""); r.Algorithm = "magic"; return r }(),
		func() *SubmitRequest { r := quickRequest(""); r.FailureProb = 2; return r }(),
		func() *SubmitRequest { r := quickRequest(""); r.Deployments[0].Kinds = []string{"nope"}; return r }(),
		func() *SubmitRequest { r := quickRequest(""); r.Deployments[0].Needed = 5; return r }(),
		func() *SubmitRequest { r := quickRequest(""); r.Records[0].Kind = "router"; return r }(),
		// Negative sampler workers would fall through to GOMAXPROCS and
		// make a content-addressed result host-dependent.
		func() *SubmitRequest {
			r := quickRequest("")
			r.Algorithm = "failure-sampling"
			r.SamplerWorkers = -1
			return r
		}(),
	}
	for i, req := range cases {
		if _, err := s.Submit(req); err == nil {
			t.Errorf("case %d: want error", i)
		} else if httpStatus(err) != 400 {
			t.Errorf("case %d: want 400, got %d", i, httpStatus(err))
		}
	}
}

// TestCacheHitSkipsRecomputation is the acceptance assertion: a repeated
// identical job is answered from the content-addressed cache without
// re-running the RG algorithms.
func TestCacheHitSkipsRecomputation(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)

	first := mustSubmit(t, s, quickRequest("first"))
	if first.Cached {
		t.Fatal("first submission cannot be a cache hit")
	}
	waitDone(t, s, first.ID)

	second := mustSubmit(t, s, quickRequest("second title, same audit"))
	if !second.Cached || second.State != StateDone {
		t.Fatalf("identical resubmission must hit the cache: %+v", second)
	}
	if second.CacheKey != first.CacheKey {
		t.Fatalf("cache keys differ: %s vs %s", first.CacheKey, second.CacheKey)
	}
	st := s.Stats()
	if st.Computations != 1 {
		t.Fatalf("want exactly 1 computation, got %d", st.Computations)
	}
	if st.CacheHits != 1 || st.HitRate() != 0.5 {
		t.Fatalf("want 1 cache hit (rate 0.5), got %+v", st)
	}

	// Each job keeps its own title over the shared audits.
	rep1, err := s.Report(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := s.Report(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.Title != "first" || rep2.Title != "second title, same audit" {
		t.Fatalf("titles lost: %q / %q", rep1.Title, rep2.Title)
	}
	if len(rep2.Audits) != 1 || rep2.Audits[0].Unexpected == 0 {
		t.Fatalf("shared ToR1/libc6 must yield unexpected RGs: %+v", rep2.Audits)
	}
	if !math.IsNaN(rep2.Audits[0].FailureProb) {
		t.Fatal("unweighted audit must keep NaN failure prob in-process")
	}

	// The content address is directly dereferenceable.
	if _, err := s.Cached(second.CacheKey); err != nil {
		t.Fatalf("cached lookup: %v", err)
	}
}

// TestCacheKeyCanonicalization: defaults applied explicitly, irrelevant
// sampler knobs, titles and timeouts must not fragment the cache key.
func TestCacheKeyCanonicalization(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	base := mustSubmit(t, s, quickRequest("a"))

	explicit := quickRequest("b")
	explicit.Algorithm = "minimal-rg"
	explicit.Rounds = 31337 // sampler knob: irrelevant for minimal-rg
	explicit.Seed = 99
	explicit.SamplerWorkers = 7
	explicit.TimeoutMS = 60_000
	st := mustSubmit(t, s, explicit)
	if st.CacheKey != base.CacheKey {
		t.Fatal("explicit defaults and irrelevant sampler knobs must not change the key")
	}

	sampling := quickRequest("c")
	sampling.Algorithm = "failure-sampling"
	st = mustSubmit(t, s, sampling)
	if st.CacheKey == base.CacheKey {
		t.Fatal("a different algorithm must change the key")
	}
}

// TestConcurrentJobs is the acceptance load point: ≥32 in-flight jobs on a
// small bounded pool, none rejected, all completing.
func TestConcurrentJobs(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 64})
	defer shutdown(t, s)

	const jobs = 40
	ids := make([]string, jobs)
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := quickRequest(fmt.Sprintf("job-%d", i))
			// Distinct deployment names → distinct cache keys: every job
			// needs its own computation.
			req.Deployments[0].Name = fmt.Sprintf("s1+s2 #%d", i)
			st, err := s.Submit(req)
			if err != nil {
				errs <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, id := range ids {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s finished %s (%s)", id, st.State, st.Error)
		}
	}
	st := s.Stats()
	if st.Submitted != jobs || st.Completed != jobs || st.Rejected != 0 {
		t.Fatalf("want %d submitted+completed, 0 rejected; got %+v", jobs, st)
	}
}

// TestCoalescingSharesOneComputation: identical jobs racing in together
// must cost one computation between them.
func TestCoalescingSharesOneComputation(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)

	req := func(i int) *SubmitRequest {
		r := quickRequest(fmt.Sprintf("racer-%d", i))
		r.Algorithm = "failure-sampling"
		r.Rounds = 400_000 // long enough that racers overlap, short enough to finish
		return r
	}
	const racers = 6
	ids := make([]string, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := s.Submit(req(i))
			if err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for _, id := range ids {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s finished %s (%s)", id, st.State, st.Error)
		}
	}
	st := s.Stats()
	if st.Computations != 1 {
		t.Fatalf("identical jobs must share one computation, ran %d", st.Computations)
	}
	if st.Coalesced+st.CacheHits != racers-1 {
		t.Fatalf("want %d coalesced+cached, got %+v", racers-1, st)
	}
}

// TestCancelReleasesWorker is the acceptance cancellation point: an
// in-flight job canceled via the API must release its worker goroutine (the
// pool has one worker; a follow-up job can only complete if the canceled
// computation actually stopped).
func TestCancelReleasesWorker(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	slow := mustSubmit(t, s, slowRequest("stuck", 1))
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := s.Status(slow.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	st, err := s.Cancel(slow.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("cancel returned state %s", st.State)
	}
	// The single worker must come back: a fresh job completes.
	quick := mustSubmit(t, s, quickRequest("after-cancel"))
	if st := waitDone(t, s, quick.ID); st.State != StateDone {
		t.Fatalf("post-cancel job finished %s (%s)", st.State, st.Error)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("worker took %v to come back", elapsed)
	}
	if s.Stats().Canceled != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
	// Canceling again is idempotent; the report stays unavailable.
	if st, err := s.Cancel(slow.ID); err != nil || st.State != StateCanceled {
		t.Fatalf("re-cancel: %v %+v", err, st)
	}
	if _, err := s.Report(slow.ID); httpStatus(err) != 409 {
		t.Fatalf("want 409 for canceled job's report, got %v", err)
	}
}

// TestCancelOneCoalescedJobKeepsComputation: with two jobs on one
// computation, canceling one must not kill the other's result.
func TestCancelOneCoalescedJobKeepsComputation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	// Occupy the only worker so the next two submissions coalesce in queue.
	blocker := mustSubmit(t, s, slowRequest("blocker", 2))
	a := mustSubmit(t, s, quickRequest("a"))
	b := mustSubmit(t, s, quickRequest("b"))
	if a.CacheKey != b.CacheKey {
		t.Fatal("fixture must coalesce")
	}
	if _, err := s.Cancel(a.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, s, b.ID); st.State != StateDone {
		t.Fatalf("job b finished %s (%s)", st.State, st.Error)
	}
	if st, _ := s.Status(a.ID); st.State != StateCanceled {
		t.Fatalf("job a is %s", st.State)
	}
}

func TestQueueFullRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer shutdown(t, s)

	first := mustSubmit(t, s, slowRequest("running", 10))
	// Give the worker a moment to pick the first job up, freeing the queue
	// slot for the second; the third submission must then overflow.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := s.Status(first.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	mustSubmit(t, s, slowRequest("queued", 11))
	_, err := s.Submit(slowRequest("overflow", 12))
	if err == nil || httpStatus(err) != 429 {
		t.Fatalf("want 429, got %v", err)
	}
	if s.Stats().Rejected != 1 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func TestJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	req := slowRequest("deadline", 20)
	req.TimeoutMS = 50
	st := mustSubmit(t, s, req)
	end := waitDone(t, s, st.ID)
	if end.State != StateCanceled {
		t.Fatalf("timed-out job finished %s", end.State)
	}
	if end.Error == "" || !strings.Contains(end.Error, "deadline") {
		t.Fatalf("want deadline error, got %q", end.Error)
	}
}

// TestCoalescedJobKeepsOwnTimeout: a short-deadline job attaching to a
// long-running shared computation must time out on its own schedule without
// killing the computation for the job that wanted it.
func TestCoalescedJobKeepsOwnTimeout(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	patient := mustSubmit(t, s, slowRequest("patient", 30))
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, _ := s.Status(patient.ID)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("patient job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	hurried := slowRequest("hurried", 30)
	hurried.TimeoutMS = 50
	h := mustSubmit(t, s, hurried)
	if !h.Coalesced {
		t.Fatalf("fixture must coalesce: %+v", h)
	}
	end := waitDone(t, s, h.ID)
	if end.State != StateCanceled || !strings.Contains(end.Error, "deadline") {
		t.Fatalf("hurried job: %+v", end)
	}
	// The shared computation must still be running for the patient job.
	if st, _ := s.Status(patient.ID); st.State != StateRunning {
		t.Fatalf("patient job is %s, want running", st.State)
	}
	if _, err := s.Cancel(patient.ID); err != nil {
		t.Fatal(err)
	}
}

// TestJobRetention: terminal jobs beyond the retention bound are evicted so
// the job table stays finite; active jobs survive.
func TestJobRetention(t *testing.T) {
	s := New(Config{Workers: 2, JobRetention: 5})
	defer shutdown(t, s)

	var ids []string
	for i := 0; i < 12; i++ {
		req := quickRequest(fmt.Sprintf("r-%d", i))
		req.Deployments[0].Name = fmt.Sprintf("d-%d", i) // distinct keys
		st := mustSubmit(t, s, req)
		waitDone(t, s, st.ID)
		ids = append(ids, st.ID)
	}
	if got := len(s.Jobs()); got > 5 {
		t.Fatalf("job table holds %d jobs, retention is 5", got)
	}
	if _, err := s.Status(ids[0]); httpStatus(err) != 404 {
		t.Fatalf("oldest job must be evicted, got %v", err)
	}
	if _, err := s.Status(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job must survive: %v", err)
	}
}

func TestShutdownRefusesNewWork(t *testing.T) {
	s := New(Config{Workers: 2})
	st := mustSubmit(t, s, quickRequest("before"))
	waitDone(t, s, st.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("graceful shutdown with idle pool: %v", err)
	}
	if _, err := s.Submit(quickRequest("after")); httpStatus(err) != 503 {
		t.Fatalf("want 503 after shutdown, got %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown must be a no-op: %v", err)
	}
}

func TestPreloadedDBSnapshotIsolation(t *testing.T) {
	db := testDB(t)
	s := New(Config{Workers: 1, DB: db})
	defer shutdown(t, s)

	req := &SubmitRequest{Deployments: []DeploymentWire{{Name: "d", Servers: []string{"s1", "s2"}}}}
	a := mustSubmit(t, s, req)
	waitDone(t, s, a.ID)

	// Growing the live DB changes the fingerprint → a new cache key; the
	// old cached entry stays valid for its own content address.
	if err := db.Put(deps.NewSoftware("redis", "s1", "libjemalloc2")); err != nil {
		t.Fatal(err)
	}
	b := mustSubmit(t, s, req)
	if b.CacheKey == a.CacheKey {
		t.Fatal("DB growth must change the content address")
	}
	if b.Cached {
		t.Fatal("changed DB cannot be a cache hit")
	}
	waitDone(t, s, b.ID)
	if s.Stats().Computations != 2 {
		t.Fatalf("stats: %+v", s.Stats())
	}
}

func testDB(t *testing.T) *depdb.DB {
	t.Helper()
	db := depdb.New()
	for _, w := range testRecords() {
		r, err := w.Record()
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	return db
}
