package auditd

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIngestSubmitRecommend interleaves ingests, audits and
// recommendations on a durable server. The -race run in CI is the real
// assertion — ingest persistence, snapshot resolution, delta planning and
// lineage registration all racing — while the checks here pin that every
// job completes and every ingest lands.
func TestConcurrentIngestSubmitRecommend(t *testing.T) {
	st := openStore(t, t.TempDir())
	s := New(Config{Workers: 4, QueueDepth: 256, Store: st})
	defer gracefulShutdown(t, s)

	// Seed the pool so audits and recommendations always have subjects.
	mustIngest(t, s, deltaRecords())

	const (
		ingesters    = 3
		auditors     = 3
		recommenders = 2
		rounds       = 8
	)
	var wg sync.WaitGroup
	errs := make(chan error, (ingesters+auditors+recommenders)*rounds)

	for w := 0; w < ingesters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				_, err := s.Ingest(&IngestRequest{Records: []RecordWire{
					{Kind: "hardware", HW: fmt.Sprintf("m-%d-%d", w, i), Type: "NIC", Dep: fmt.Sprintf("nic-%d-%d", w, i)},
				}})
				if err != nil {
					errs <- fmt.Errorf("ingest %d/%d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wait := func(id string) error {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		end, err := s.WaitDone(ctx, id, 30*time.Second)
		if err != nil {
			return err
		}
		if end.State != StateDone {
			return fmt.Errorf("job %s finished %s (%s)", id, end.State, end.Error)
		}
		return nil
	}
	for w := 0; w < auditors; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				st, err := s.Submit(deltaAuditRequest(fmt.Sprintf("audit-%d-%d", w, i)))
				if err == nil {
					err = wait(st.ID)
				}
				if err != nil {
					errs <- fmt.Errorf("audit %d/%d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < recommenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				st, err := s.Recommend(&RecommendRequest{
					Nodes: []string{"s1", "s2", "s3", "s4"}, Replicas: 2, Strategy: "exact",
				})
				if err == nil {
					err = wait(st.ID)
				}
				if err != nil {
					errs <- fmt.Errorf("recommend %d/%d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	stats := s.Stats()
	if want := int64(ingesters*rounds + 16); stats.IngestedRecords != want {
		t.Fatalf("ingested %d records, want %d", stats.IngestedRecords, want)
	}
	if stats.Failed != 0 || stats.Rejected != 0 {
		t.Fatalf("stats: %+v", stats)
	}
}
