package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"indaas/internal/depdb"
	"indaas/internal/report"
	"indaas/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func gracefulShutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestRestartServesResultFromDisk is the durability contract for results: a
// report computed before a restart is served from disk afterwards — same
// bytes, no recomputation — and the job says so.
func TestRestartServesResultFromDisk(t *testing.T) {
	dir := t.TempDir()

	st1 := openStore(t, dir)
	s1 := New(Config{Workers: 1, Store: st1})
	first := mustSubmit(t, s1, quickRequest("durable"))
	if done := waitDone(t, s1, first.ID); done.State != StateDone {
		t.Fatalf("job finished %s (%s)", done.State, done.Error)
	}
	rep1, err := s1.Report(first.ID)
	if err != nil {
		t.Fatal(err)
	}
	gracefulShutdown(t, s1)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh store handle over the same directory, fresh server.
	st2 := openStore(t, dir)
	if rec := st2.Recovery(); rec.Entries != 1 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery = %+v", rec)
	}
	s2 := New(Config{Workers: 1, Store: st2})
	defer gracefulShutdown(t, s2)
	again := mustSubmit(t, s2, quickRequest("durable"))
	if again.State != StateDone || !again.Cached || !again.DiskHit {
		t.Fatalf("post-restart submit = %+v, want an instant disk hit", again)
	}
	if again.CacheKey != first.CacheKey {
		t.Fatalf("cache key drifted across restart: %s != %s", again.CacheKey, first.CacheKey)
	}
	rep2, err := s2.Report(again.ID)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(rep1)
	b2, _ := json.Marshal(rep2)
	if string(b1) != string(b2) {
		t.Fatalf("disk-served report differs:\n pre: %s\npost: %s", b1, b2)
	}
	stats := s2.Stats()
	if stats.StoreHits != 1 || stats.Computations != 0 {
		t.Fatalf("want 1 store hit and 0 computations, got %+v", stats)
	}
	if !stats.StoreEnabled || stats.Store.Entries == 0 {
		t.Fatalf("store stats not exported: %+v", stats)
	}
	// A third submission now hits the promoted in-memory copy, not disk.
	third := mustSubmit(t, s2, quickRequest("durable"))
	if !third.Cached || third.DiskHit {
		t.Fatalf("third submit = %+v, want a memory hit", third)
	}
}

// TestRestartServesIngestedFingerprint is the durability contract for
// ingests: records pushed through Ingest survive a restart with the same
// canonical fingerprint, so record-less jobs resolve to the same content
// addresses and are served from disk.
func TestRestartServesIngestedFingerprint(t *testing.T) {
	dir := t.TempDir()

	st1 := openStore(t, dir)
	s1 := New(Config{Workers: 1, Store: st1})
	ing, err := s1.Ingest(&IngestRequest{Records: testRecords()})
	if err != nil {
		t.Fatal(err)
	}
	if ing.Fingerprint == "" {
		t.Fatal("ingest returned no fingerprint")
	}
	rreq := &RecommendRequest{Replicas: 2} // record-less: uses the server DB
	rst, err := s1.Recommend(rreq)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s1, rst.ID)
	res1, err := s1.Result(rst.ID)
	if err != nil {
		t.Fatal(err)
	}
	gracefulShutdown(t, s1)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	db, err := RestoreDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	if db == nil {
		t.Fatal("RestoreDB found no persisted snapshot")
	}
	if got := db.Fingerprint(); got != ing.Fingerprint {
		t.Fatalf("restored fingerprint %s, want %s", got, ing.Fingerprint)
	}
	s2 := New(Config{Workers: 1, DB: db, Store: st2})
	defer gracefulShutdown(t, s2)
	rst2, err := s2.Recommend(&RecommendRequest{Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rst2.CacheKey != rst.CacheKey {
		t.Fatalf("record-less recommend key drifted: %s != %s", rst2.CacheKey, rst.CacheKey)
	}
	if rst2.State != StateDone || !rst2.DiskHit {
		t.Fatalf("post-restart recommend = %+v, want a disk hit", rst2)
	}
	res2, err := s2.Result(rst2.ID)
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := res1.(*RecommendResponse), res2.(*RecommendResponse)
	if len(r1.Rankings) == 0 || len(r1.Rankings) != len(r2.Rankings) {
		t.Fatalf("rankings differ: %d vs %d", len(r1.Rankings), len(r2.Rankings))
	}
	if strings.Join(r1.Rankings[0].Nodes, ",") != strings.Join(r2.Rankings[0].Nodes, ",") {
		t.Fatalf("top-1 differs: %v vs %v", r1.Rankings[0].Nodes, r2.Rankings[0].Nodes)
	}

	// A further ingest appends exactly one chain segment — O(batch) bytes —
	// alongside the base segment and the current pointer.
	ing2, err := s2.Ingest(&IngestRequest{Records: []RecordWire{
		{Kind: "hardware", HW: "s3", Type: "Disk", Dep: "S3-SED900"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if ing2.Fingerprint == ing.Fingerprint {
		t.Fatal("ingest did not change the fingerprint")
	}
	if snapshots, metas := countSnapshotEntries(st2); snapshots != 2 || metas != 1 {
		t.Fatalf("want base + 1 batch segment + 1 meta after second ingest, got %d + %d", snapshots, metas)
	}
	gracefulShutdown(t, s2)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}

	// A further restart replays the two-segment chain to the same
	// fingerprint and consolidates it back to a single segment.
	st3 := openStore(t, dir)
	db3, err := RestoreDB(st3)
	if err != nil {
		t.Fatal(err)
	}
	if got := db3.Fingerprint(); got != ing2.Fingerprint {
		t.Fatalf("chain replayed to %s, want %s", got, ing2.Fingerprint)
	}
	if snapshots, metas := countSnapshotEntries(st3); snapshots != 1 || metas != 1 {
		t.Fatalf("want a consolidated single-segment chain, got %d + %d", snapshots, metas)
	}
}

// TestRestoreLegacyStoreMigrates: stores written before the snapshot chain
// held one whole-database snapshot under depdb/<fp> with a raw-string
// current pointer (and an older fingerprint algorithm). RestoreDB must load
// it, re-address it under a fresh single-segment chain, and drop the legacy
// keys.
func TestRestoreLegacyStoreMigrates(t *testing.T) {
	st := openStore(t, t.TempDir())

	// Fabricate the legacy layout by hand.
	legacy := depdb.New()
	for _, w := range testRecords() {
		r, err := w.Record()
		if err != nil {
			t.Fatal(err)
		}
		if err := legacy.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := legacy.Snapshot().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	const oldFP = "0123456789abcdef-old-algorithm-fingerprint"
	if _, err := st.Put("depdb/"+oldFP, store.KindSnapshot, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Put("depdb/current", store.KindMeta, []byte(oldFP)); err != nil {
		t.Fatal(err)
	}

	db, err := RestoreDB(st)
	if err != nil {
		t.Fatal(err)
	}
	if db == nil || db.Len() != legacy.Len() {
		t.Fatalf("migrated database = %v", db)
	}
	if db.Fingerprint() != legacy.Fingerprint() {
		t.Fatal("migrated fingerprint must match a fresh load of the same records")
	}
	meta := readSnapMeta(st)
	if meta.Segments != 1 || meta.Fingerprint != db.Fingerprint() {
		t.Fatalf("migrated chain meta = %+v", meta)
	}
	if _, _, ok, _ := st.Get("depdb/" + oldFP); ok {
		t.Fatal("legacy snapshot entry survived migration")
	}
	// The migrated chain restores like a native one.
	db2, err := RestoreDB(st)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Fingerprint() != db.Fingerprint() {
		t.Fatal("second restore diverged")
	}
}

func countSnapshotEntries(st *store.Store) (snapshots, metas int) {
	for _, e := range st.Entries() {
		switch e.Kind {
		case store.KindSnapshot:
			snapshots++
		case store.KindMeta:
			metas++
		}
	}
	return snapshots, metas
}

// TestStoreEvictionMirroredIntoMemory pins the two-tier invariant: when the
// disk store evicts a result to stay within budget, the in-memory LRU drops
// it too, so the memory tier never serves an entry the durable tier gave up
// on.
func TestStoreEvictionMirroredIntoMemory(t *testing.T) {
	// Phase 1: measure the on-disk size of one persisted benchmark result.
	probeDir := t.TempDir()
	stp := openStore(t, probeDir)
	sp := New(Config{Workers: 1, Store: stp})
	p := mustSubmit(t, sp, quickRequest("probe"))
	waitDone(t, sp, p.ID)
	recBytes := stp.Stats().ResultBytes
	if recBytes == 0 {
		t.Fatal("probe result not persisted")
	}
	gracefulShutdown(t, sp)

	// Phase 2: budget holds one result but not two.
	st, err := store.Open(store.Options{Dir: t.TempDir(), MaxBytes: recBytes + recBytes/2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(Config{Workers: 1, Store: st})
	defer gracefulShutdown(t, s)

	reqA := quickRequest("A")
	reqB := quickRequest("B")
	reqB.Deployments = []DeploymentWire{{Name: "s1 only", Servers: []string{"s1"}}}

	a := mustSubmit(t, s, reqA)
	waitDone(t, s, a.ID)
	b := mustSubmit(t, s, reqB)
	waitDone(t, s, b.ID)

	stats := s.Stats()
	if stats.Store.Evictions == 0 || stats.StoreEvictions == 0 {
		t.Fatalf("persisting B should have evicted A from disk and memory: %+v", stats)
	}
	// A was evicted from both tiers: resubmitting recomputes.
	a2 := mustSubmit(t, s, reqA)
	if a2.Cached || a2.DiskHit {
		t.Fatalf("A should have been evicted everywhere, got %+v", a2)
	}
	waitDone(t, s, a2.ID)
	// B stayed in memory.
	b2 := mustSubmit(t, s, reqB)
	if !b2.Cached {
		t.Fatalf("B should still be served from memory, got %+v", b2)
	}
}

// TestResultCodec pins the disk envelope: both payload types round-trip,
// and garbage fails loudly instead of producing a zero-valued result.
func TestResultCodec(t *testing.T) {
	if _, err := encodeResult(42); err == nil {
		t.Error("encodeResult accepted an unpersistable type")
	}
	if _, err := decodeResult([]byte("{")); err == nil {
		t.Error("decodeResult accepted truncated JSON")
	}
	if _, err := decodeResult([]byte(`{"kind":"mystery","payload":{}}`)); err == nil {
		t.Error("decodeResult accepted an unknown kind")
	}

	rep := &report.Report{Title: "codec"}
	blob, err := encodeResult(rep)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := back.(*report.Report); !ok || got.Title != "codec" {
		t.Fatalf("report round-trip = %#v", back)
	}

	resp := &RecommendResponse{Strategy: "exact", Replicas: 2}
	blob, err = encodeResult(resp)
	if err != nil {
		t.Fatal(err)
	}
	back, err = decodeResult(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := back.(*RecommendResponse); !ok || got.Strategy != "exact" || got.Replicas != 2 {
		t.Fatalf("recommend round-trip = %#v", back)
	}
}

// TestMetricsExposeStoreCounters asserts the /metrics additions render only
// when a store is configured.
func TestMetricsExposeStoreCounters(t *testing.T) {
	st := openStore(t, t.TempDir())
	s := New(Config{Workers: 1, Store: st})
	defer gracefulShutdown(t, s)
	j := mustSubmit(t, s, quickRequest("metrics"))
	waitDone(t, s, j.ID)
	// Two puts per computed job — the crash journal and the result — and the
	// journal's tombstone lands shortly after the job settles.
	for i := 0; i < 200 && st.Stats().Entries != 1; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	var sb strings.Builder
	s.Stats().render(&sb)
	text := sb.String()
	for _, want := range []string{
		"auditd_store_hits_total 0",
		"auditd_store_puts_total 2",
		"auditd_store_entries 1",
		"auditd_store_recovered_entries 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	plain := New(Config{Workers: 1})
	defer gracefulShutdown(t, plain)
	sb.Reset()
	plain.Stats().render(&sb)
	if strings.Contains(sb.String(), "auditd_store_") {
		t.Error("memory-only service rendered store metrics")
	}
}
