package auditd

// Client peer-failover tests: a client given the cluster's peer list
// rotates to the next node when the current one refuses connections, and a
// client-wide header (how the cluster router marks forwarded traffic) rides
// on every request.

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// deadEndpoint grabs a loopback port and closes it, so dials are refused —
// the client's view of a killed node.
func deadEndpoint(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	ln.Close()
	return addr
}

// TestClientFailsOverToPeer: with a peer list, a refused connection rotates
// the retry onto the next node instead of hammering the dead one — the
// submit lands on the live peer, and follow-up calls start there directly.
func TestClientFailsOverToPeer(t *testing.T) {
	s := New(Config{Workers: 1})
	defer gracefulShutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx := context.Background()

	c := NewClient(deadEndpoint(t), nil)
	c.SetPeers(ts.URL)
	c.Retry = fastRetry()
	st, err := c.Submit(ctx, quickRequest("failover"))
	if err != nil {
		t.Fatalf("submit with dead primary: %v", err)
	}
	if done, err := c.WaitDone(ctx, st.ID); err != nil || done.State != StateDone {
		t.Fatalf("wait = %+v, %v", done, err)
	}
	if got := c.currentBase(); got != ts.URL {
		t.Fatalf("client still targets %s, want rotated to %s", got, ts.URL)
	}
}

// TestClientWithoutPeersKeepsRetryingOneBase: rotation is a no-op on a
// single-endpoint client — every attempt goes to the one base, preserving
// the pre-cluster retry behavior.
func TestClientWithoutPeersKeepsRetryingOneBase(t *testing.T) {
	ft := &flakyTransport{n: 2, base: http.DefaultTransport}
	s := New(Config{Workers: 1})
	defer gracefulShutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, &http.Client{Transport: ft})
	c.Retry = fastRetry()
	if _, err := c.Submit(context.Background(), quickRequest("single")); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if got := c.currentBase(); got != ts.URL {
		t.Fatalf("single-base client rotated to %s", got)
	}
}

// TestClientSetHeaderAppliesToEveryRequest: a header set once rides on every
// request the client sends — submits and polls alike — which is what lets
// the cluster router mark all its forwarded traffic.
func TestClientSetHeaderAppliesToEveryRequest(t *testing.T) {
	s := New(Config{Workers: 1})
	defer gracefulShutdown(t, s)
	inner := s.Handler()
	var total, tagged atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		total.Add(1)
		if r.Header.Get(ForwardedHeader) == "1" {
			tagged.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	ctx := context.Background()

	c := NewClient(ts.URL, nil)
	c.SetHeader(ForwardedHeader, "1")
	st, err := c.Submit(ctx, quickRequest("tagged"))
	if err != nil {
		t.Fatal(err)
	}
	if done, err := c.WaitDone(ctx, st.ID); err != nil || done.State != StateDone {
		t.Fatalf("wait = %+v, %v", done, err)
	}
	if total.Load() < 2 || tagged.Load() != total.Load() {
		t.Fatalf("%d/%d requests carried the header, want all", tagged.Load(), total.Load())
	}
}
