package auditd

import (
	"container/list"

	"indaas/internal/report"
)

// resultCache is a bounded LRU of completed audit reports, content-addressed
// by the canonical request hash. Cached reports are immutable: the server
// hands out shallow per-job copies (fresh Title, shared Audits), never the
// stored pointer's fields to mutate. Callers synchronize access (the server
// uses its own mutex, which also covers the job table).
type resultCache struct {
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	rep *report.Report
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached report for key and marks it recently used.
func (c *resultCache) get(key string) (*report.Report, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).rep, true
}

// put stores a completed report, evicting the least recently used entry
// beyond capacity.
func (c *resultCache) put(key string, rep *report.Report) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).rep = rep
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, rep: rep})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int { return c.order.Len() }
