package auditd

import (
	"container/list"
)

// resultCache is a bounded LRU of completed job results (audit reports and
// placement recommendations), content-addressed by the canonical request
// hash. Cached results are immutable: the server hands out shallow per-job
// copies (fresh Title, shared payload), never the stored pointer's fields to
// mutate. Callers synchronize access (the server uses its own mutex, which
// also covers the job table).
type resultCache struct {
	cap     int
	order   *list.List // front = most recently used; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key string
	res any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, order: list.New(), entries: make(map[string]*list.Element)}
}

// get returns the cached result for key and marks it recently used.
func (c *resultCache) get(key string) (any, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores a completed result, evicting the least recently used entry
// beyond capacity.
func (c *resultCache) put(key string, res any) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, res: res})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// remove drops key if present; used to mirror disk-store evictions so the
// memory tier never claims an entry the durable tier has given up on.
func (c *resultCache) remove(key string) {
	if el, ok := c.entries[key]; ok {
		c.order.Remove(el)
		delete(c.entries, key)
	}
}

func (c *resultCache) len() int { return c.order.Len() }
