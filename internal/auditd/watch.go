package auditd

// The watch subsystem keeps audits continuously fresh against a streaming
// DepDB: a client subscribes with an ordinary audit request, and every
// ingest that touches one of the request's subjects triggers a re-audit
// whose report is pushed to the subscriber over SSE (GET /v1/watch).
//
// The design leans entirely on the delta-audit machinery (delta.go): a
// refresh is a plain re-Submit of the stored request, so the lineage index
// decides — per refresh — whether the previous report can be adopted whole
// (the change missed this request's subjects), spliced (only the dirty
// deployments re-audit), or must recompute. Between refreshes, dirt only
// accumulates (internal/watch): a thousand ingests while one re-audit runs
// cost exactly one follow-up re-audit, never a backlog.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"indaas/internal/deps"
	"indaas/internal/report"
	"indaas/internal/sia"
	"indaas/internal/watch"
)

// watchPollInterval bounds one refresher wait on a running re-audit, so a
// closed subscription or a shutdown is observed promptly; watchRetryDelay
// is the pause before retrying a 429-rejected refresh. Variables so tests
// can shrink them.
var (
	watchPollInterval = time.Second
	watchRetryDelay   = 100 * time.Millisecond
)

// watchHeartbeat is the SSE comment-frame interval keeping idle streams
// alive through proxies. A variable so tests can shrink it.
var watchHeartbeat = 15 * time.Second

// WatchEvent is one frame of a watch stream: the re-audit job's status
// (which carries the delta verdict — delta_hit, dirty_subjects) and, when
// the job succeeded, the fresh report.
type WatchEvent struct {
	// Seq numbers the subscription's events from 1.
	Seq uint64 `json:"seq"`
	// Trigger lists the ingested subjects that caused this refresh; empty
	// for the subscription's initial report.
	Trigger []string `json:"trigger,omitempty"`
	// Job is the re-audit's terminal status: DeltaHit/DirtySubjects tell
	// whether the refresh adopted, spliced, or recomputed.
	Job JobStatus `json:"job"`
	// Fingerprint is the server database's canonical fingerprint at
	// delivery time.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Report is the fresh audit report (nil if the re-audit failed).
	Report *report.Report `json:"report,omitempty"`
	// Error carries the failure when the re-audit did not complete.
	Error string `json:"error,omitempty"`
}

// Subscription is a live watch registration. Consume Events — every element
// is a *WatchEvent — and Close when done. The channel closes when the
// subscription ends: Close, server shutdown, or slow-consumer eviction
// (Evicted distinguishes the last).
type Subscription struct {
	sub *watch.Sub
}

// Events delivers *WatchEvent payloads in order.
func (w *Subscription) Events() <-chan watch.Event { return w.sub.Events() }

// Close ends the subscription (idempotent).
func (w *Subscription) Close() { w.sub.Close() }

// Evicted reports whether the subscription was removed as a slow consumer.
func (w *Subscription) Evicted() bool { return w.sub.Evicted() }

// Watch subscribes to an audit request: the request is audited once
// immediately, then re-audited after every ingest touching its deployments'
// servers (of a kind some deployment wants), with each report streamed as a
// WatchEvent. buffer bounds the subscriber's event queue; <= 0 (or anything
// above it) means Config.WatchBuffer. The request must audit the server
// database — inline records never change, so watching them is a 400 — and
// the server must already have a database.
func (s *Server) Watch(req *SubmitRequest, buffer int) (*Subscription, error) {
	if len(req.Records) > 0 {
		return nil, &statusErr{code: 400, err: errors.New("watch audits the server database; a request with inline records can never change")}
	}
	n, _, err := req.normalize()
	if err != nil {
		return nil, &statusErr{code: 400, err: err}
	}
	if _, err := s.resolveDB(nil); err != nil {
		return nil, err // no server database yet: ingest first, then watch
	}
	if buffer <= 0 || buffer > s.cfg.WatchBuffer {
		buffer = s.cfg.WatchBuffer
	}

	// The closed check and the refresher accounting share one critical
	// section so Shutdown's watchWG.Wait can never miss a starting loop.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, &statusErr{code: 503, err: errors.New("service is shutting down")}
	}
	s.watchWG.Add(1)
	s.mu.Unlock()

	sub, err := s.watchHub.Subscribe(watchInterest(n.specs()), buffer)
	if err != nil {
		s.watchWG.Done()
		return nil, &statusErr{code: 503, err: err}
	}
	reqCopy := *req // the refresher re-submits it for the subscription's life
	sub.Kick()      // the initial report flows through the same refresh path
	go s.refreshLoop(sub, &reqCopy)
	return &Subscription{sub: sub}, nil
}

// watchInterest derives a subscription's interest from its graph specs: the
// union of the deployments' servers, and the union of the kinds any spec
// wants (any spec wanting all kinds widens the mask to all). This mirrors
// sia.DirtyDeployments — a touch that cannot dirty any spec never wakes the
// refresher; one that might is settled precisely by the delta planner.
func watchInterest(specs []sia.GraphSpec) watch.Interest {
	var in watch.Interest
	seen := make(map[string]struct{})
	allKinds := false
	for i := range specs {
		for _, srv := range specs[i].Servers {
			if _, dup := seen[srv]; !dup {
				seen[srv] = struct{}{}
				in.Subjects = append(in.Subjects, srv)
			}
		}
		if len(specs[i].Kinds) == 0 {
			allKinds = true
			continue
		}
		for _, k := range specs[i].Kinds {
			in.Kinds |= watch.KindMask(int(k))
		}
	}
	if allKinds {
		in.Kinds = 0
	}
	return in
}

// notifyWatchers marks subscriptions touched by an ingested batch dirty.
// Called by the ingest committer after the batch is live, before the
// ingest is acknowledged; cost is O(batch).
func (s *Server) notifyWatchers(records []deps.Record) {
	touches := make([]watch.Touch, len(records))
	for i, r := range records {
		touches[i] = watch.Touch{Subject: r.Subject(), Kind: int(r.Kind)}
	}
	s.watchHub.Notify(touches)
}

// refreshLoop is a subscription's refresher: it sleeps until dirt
// accumulates, re-audits the stored request through the ordinary Submit
// path (cache, lineage, delta planning and journaling all apply), and
// streams the outcome. It exits when the subscription ends — Close,
// eviction, shutdown — or on a fatal submit error.
func (s *Server) refreshLoop(sub *watch.Sub, req *SubmitRequest) {
	defer s.watchWG.Done()
	defer sub.Close()
	var seq uint64
	for {
		select {
		case <-sub.Done():
			return
		case <-sub.Signal():
		}
		trigger, kicked, since := sub.TakeDirty()
		if len(trigger) == 0 && !kicked {
			continue // the signal raced an earlier drain; nothing owed
		}
		ev, fatal := s.refreshOnce(sub, req, trigger)
		if ev != nil {
			seq++
			ev.Seq = seq
			if !sub.Send(ev) {
				return // evicted: the consumer fell a full buffer behind
			}
			// The owed notification is queued: close the ingest→notify
			// window opened by the oldest drained dirty mark, and stamp the
			// notify span (job completion → event queued, i.e. the re-audit
			// poll plus report rendering) onto the job's trace.
			if !since.IsZero() {
				s.m.ingestNotify.Observe(time.Since(since))
			}
			if ev.Job.FinishedAt != nil {
				s.appendJobSpan(ev.Job.ID, "notify", *ev.Job.FinishedAt, time.Since(*ev.Job.FinishedAt))
			}
		}
		if fatal {
			return
		}
	}
}

// refreshOnce runs one re-audit of the subscription's request and renders
// the event to stream (nil when the refresh was requeued instead). fatal
// reports that the loop should end: the subscription closed mid-wait, or
// the service refused the submission for a non-transient reason (shutdown,
// or a request the database outgrew).
func (s *Server) refreshOnce(sub *watch.Sub, req *SubmitRequest, trigger []string) (ev *WatchEvent, fatal bool) {
	st, err := s.Submit(req)
	if err != nil {
		if httpStatus(err) == 429 {
			// Queue full: requeue the refresh and retry after a beat. Kick
			// folds the pending dirt into the next round.
			sub.Kick()
			select {
			case <-sub.Done():
				return nil, true
			case <-time.After(watchRetryDelay):
			}
			return nil, false
		}
		return &WatchEvent{Trigger: trigger, Error: err.Error()}, true
	}
	s.m.watchReaudits.Add(1)
	// Wait the job out in short beats, re-checking the subscription so a
	// closed subscriber or a shutdown never strands this goroutine behind a
	// long computation.
	for st.State != StateDone && st.State != StateFailed && st.State != StateCanceled {
		select {
		case <-sub.Done():
			return nil, true
		default:
		}
		st, err = s.WaitDone(context.Background(), st.ID, watchPollInterval)
		if err != nil {
			return &WatchEvent{Trigger: trigger, Error: err.Error()}, true
		}
	}
	ev = &WatchEvent{Trigger: trigger, Job: st, Fingerprint: s.dbFingerprint()}
	switch {
	case st.State == StateDone:
		if rep, err := s.Report(st.ID); err == nil {
			ev.Report = rep
		} else {
			ev.Error = err.Error()
		}
	case st.Error != "":
		ev.Error = st.Error
	default:
		ev.Error = "re-audit " + st.State
	}
	return ev, false
}

// dbFingerprint snapshots the served database's canonical fingerprint
// ("" before the first ingest of a database-less server).
func (s *Server) dbFingerprint() string {
	s.mu.Lock()
	db := s.db
	s.mu.Unlock()
	if db == nil {
		return ""
	}
	return db.Snapshot().Fingerprint()
}

// handleWatch serves GET/POST /v1/watch as a Server-Sent-Events stream. The
// audit request rides in the POST body, or — for plain curl/EventSource
// GETs — JSON-encoded in the spec query parameter; ?buffer=N lowers the
// event-queue bound below Config.WatchBuffer. Frames:
//
//	event: report   data: WatchEvent JSON       (one per re-audit)
//	event: closed   data: {"reason": ...}       (terminal)
//	: keep-alive                                (comment heartbeat)
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if r.Method == http.MethodPost {
		if !decodeJSON(w, r, &req) {
			return
		}
	} else {
		spec := r.URL.Query().Get("spec")
		if spec == "" {
			writeJSON(w, 400, errorBody{Error: "missing spec query parameter (a /v1/audits request body)"})
			return
		}
		dec := json.NewDecoder(strings.NewReader(spec))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, 400, errorBody{Error: "bad spec: " + err.Error()})
			return
		}
	}
	buffer := 0
	if v := r.URL.Query().Get("buffer"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeJSON(w, 400, errorBody{Error: "bad buffer"})
			return
		}
		buffer = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, 500, errorBody{Error: "streaming is unsupported on this connection"})
		return
	}
	sub, err := s.Watch(&req, buffer)
	if err != nil {
		writeErr(w, err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(200)
	flusher.Flush()

	heartbeat := time.NewTicker(watchHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return // client hung up
		case <-heartbeat.C:
			fmt.Fprint(w, ": keep-alive\n\n")
			flusher.Flush()
		case raw, ok := <-sub.Events():
			if !ok {
				reason := "service shutting down"
				if sub.Evicted() {
					reason = "slow consumer: event queue overflowed"
				}
				fmt.Fprintf(w, "event: closed\ndata: {\"reason\":%q}\n\n", reason)
				flusher.Flush()
				return
			}
			ev, ok := raw.(*WatchEvent)
			if !ok {
				continue
			}
			blob, err := json.Marshal(ev) // single line: JSON escapes newlines
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: report\nid: %d\ndata: %s\n\n", ev.Seq, blob)
			flusher.Flush()
		}
	}
}
