package auditd

import (
	"context"
	"fmt"
	"testing"
	"time"

	"indaas/internal/core"
	"indaas/internal/store"
	"indaas/internal/topology"
)

// benchServer starts a service, primes it with one completed quickRequest
// audit, and returns the server plus the primed request.
func benchServer(b *testing.B, cfg Config) (*Server, *SubmitRequest) {
	b.Helper()
	s := New(cfg)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	req := quickRequest("bench")
	st, err := s.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	end, err := s.WaitDone(ctx, st.ID, 30*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	if end.State != StateDone {
		b.Fatalf("priming job finished %s (%s)", end.State, end.Error)
	}
	return s, req
}

// BenchmarkSubmitMemoryHit measures the hot submit path when the result is
// already in the in-memory LRU: the latency every repeat client sees.
func BenchmarkSubmitMemoryHit(b *testing.B) {
	s, req := benchServer(b, Config{Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != StateDone || !st.Cached {
			b.Fatalf("want cached done, got %+v", st)
		}
	}
}

// BenchmarkSubmitMemoryHitTraced is the telemetry-era twin of
// BenchmarkSubmitMemoryHit: same hot path, now with phase tracing threaded
// through the pipeline. It must match the untraced numbers (≤80 allocs/op,
// enforced by TestMemoryHitAllocBudget) because hit-path jobs never
// allocate a trace — tracing costs are deferred until a computation runs.
func BenchmarkSubmitMemoryHitTraced(b *testing.B) {
	s, req := benchServer(b, Config{Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	var last JobStatus
	for i := 0; i < b.N; i++ {
		st, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != StateDone || !st.Cached {
			b.Fatalf("want cached done, got %+v", st)
		}
		last = st
	}
	b.StopTimer()
	if tr, err := s.Trace(last.ID); err != nil || len(tr.Phases) != 0 {
		b.Fatalf("hit-path job grew a trace: %+v (err %v)", tr.Phases, err)
	}
}

// BenchmarkSubmitDiskHit measures the disk-tier fallback: the in-memory LRU
// is emptied before every submit, so each iteration pays the store read,
// checksum verification and JSON decode a restarted daemon pays on its
// first hit per key.
func BenchmarkSubmitDiskHit(b *testing.B) {
	st, err := store.Open(store.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s, req := benchServer(b, Config{Workers: 1, Store: st})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.mu.Lock()
		s.cache = newMemoryTier(s.cfg.CacheEntries)
		s.tiers[0] = s.cache
		s.mu.Unlock()
		b.StartTimer()
		st, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != StateDone || !st.DiskHit {
			b.Fatalf("want disk hit, got %+v", st)
		}
	}
}

// fig7Server boots a memory server whose database holds the network records
// of a 2-way deployment on a k-port fat tree — the Fig. 7 workload — and
// returns it with the deployment's audit request (minimal-rg, the exact
// algorithm the paper times).
func fig7Server(b testing.TB, k int, cfg Config) (*Server, *SubmitRequest) {
	b.Helper()
	ft, err := topology.FatTree(k)
	if err != nil {
		b.Fatal(err)
	}
	auditor := core.NewAuditor()
	if err := auditor.Register("net", core.TopologyAcquirer(ft)); err != nil {
		b.Fatal(err)
	}
	servers := []string{topology.FatTreeServer(0, 0, 0), topology.FatTreeServer(1, 0, 0)}
	if err := auditor.Acquire(servers...); err != nil {
		b.Fatal(err)
	}
	if cfg.Workers == 0 {
		cfg.Workers = 1
	}
	s := New(cfg)
	b.Cleanup(func() { benchShutdown(b, s) })
	if _, err := s.Ingest(&IngestRequest{Records: WireRecords(auditor.DB().Records())}); err != nil {
		b.Fatal(err)
	}
	req := &SubmitRequest{
		Title:       "fig7",
		Deployments: []DeploymentWire{{Name: fmt.Sprintf("fattree-k%d", k), Servers: servers}},
	}
	return s, req
}

// BenchmarkFig7DeltaResubmit is the delta-audit acceptance measurement on
// the Fig. 7 k=16 workload: each iteration ingests one record unrelated to
// the audited deployment (which invalidates the content address — the whole
// multi-minute recompute before delta audits) and re-submits the audit,
// which must finish instantly as a lineage hit. Compare against
// BenchmarkFig7ColdAudit, the price every such ingest used to cost.
func BenchmarkFig7DeltaResubmit(b *testing.B) {
	s, req := fig7Server(b, 16, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	cold, err := s.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	if end, err := s.WaitDone(ctx, cold.ID, time.Minute); err != nil || end.State != StateDone {
		b.Fatalf("cold audit: %v %+v", err, end)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Ingest(&IngestRequest{Records: []RecordWire{
			{Kind: "hardware", HW: fmt.Sprintf("spare-%d", i), Type: "NIC", Dep: fmt.Sprintf("nic-%d", i)},
		}}); err != nil {
			b.Fatal(err)
		}
		st, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != StateDone || !st.DeltaHit {
			b.Fatalf("resubmission was not a delta hit: %+v", st)
		}
	}
}

// BenchmarkFig7ColdAudit is the delta benchmark's baseline: the full k=16
// minimal-RG computation a delta hit avoids.
func BenchmarkFig7ColdAudit(b *testing.B) {
	s, req := fig7Server(b, 16, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := *req
		r.Deployments = []DeploymentWire{{Name: fmt.Sprintf("fattree-k16 #%d", i), Servers: req.Deployments[0].Servers}}
		st, err := s.Submit(&r)
		if err != nil {
			b.Fatal(err)
		}
		end, err := s.WaitDone(ctx, st.ID, time.Minute)
		if err != nil || end.State != StateDone {
			b.Fatalf("cold audit: %v %+v", err, end)
		}
	}
}

// BenchmarkColdCompute measures a full audit computation of the benchmark
// workload — the cost a cache hit (memory or disk) avoids. Each iteration
// submits a distinct cache key by varying the deployment name.
func BenchmarkColdCompute(b *testing.B) {
	s, req := benchServer(b, Config{Workers: 1, CacheEntries: -1})
	coldComputeLoop(b, s, req)
}

// BenchmarkColdComputeJournaled is BenchmarkColdCompute on a durable
// daemon: each job additionally pays the crash-safety writes — the job
// journal Put before it enters the queue, the result write-through, and the
// journal tombstone once it settles.
func BenchmarkColdComputeJournaled(b *testing.B) {
	st, err := store.Open(store.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s, req := benchServer(b, Config{Workers: 1, CacheEntries: -1, Store: st})
	coldComputeLoop(b, s, req)
}

func coldComputeLoop(b *testing.B, s *Server, req *SubmitRequest) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := *req
		r.Deployments = []DeploymentWire{
			{Name: "s1+s2 #" + string(rune('a'+i%26)) + time.Duration(i).String(), Servers: []string{"s1", "s2"}},
		}
		st, err := s.Submit(&r)
		if err != nil {
			b.Fatal(err)
		}
		end, err := s.WaitDone(ctx, st.ID, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if end.State != StateDone {
			b.Fatalf("job finished %s (%s)", end.State, end.Error)
		}
	}
}
