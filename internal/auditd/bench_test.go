package auditd

import (
	"context"
	"testing"
	"time"

	"indaas/internal/store"
)

// benchServer starts a service, primes it with one completed quickRequest
// audit, and returns the server plus the primed request.
func benchServer(b *testing.B, cfg Config) (*Server, *SubmitRequest) {
	b.Helper()
	s := New(cfg)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	req := quickRequest("bench")
	st, err := s.Submit(req)
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	end, err := s.WaitDone(ctx, st.ID, 30*time.Second)
	if err != nil {
		b.Fatal(err)
	}
	if end.State != StateDone {
		b.Fatalf("priming job finished %s (%s)", end.State, end.Error)
	}
	return s, req
}

// BenchmarkSubmitMemoryHit measures the hot submit path when the result is
// already in the in-memory LRU: the latency every repeat client sees.
func BenchmarkSubmitMemoryHit(b *testing.B) {
	s, req := benchServer(b, Config{Workers: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != StateDone || !st.Cached {
			b.Fatalf("want cached done, got %+v", st)
		}
	}
}

// BenchmarkSubmitDiskHit measures the disk-tier fallback: the in-memory LRU
// is emptied before every submit, so each iteration pays the store read,
// checksum verification and JSON decode a restarted daemon pays on its
// first hit per key.
func BenchmarkSubmitDiskHit(b *testing.B) {
	st, err := store.Open(store.Options{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s, req := benchServer(b, Config{Workers: 1, Store: st})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s.mu.Lock()
		s.cache = newResultCache(s.cfg.CacheEntries)
		s.mu.Unlock()
		b.StartTimer()
		st, err := s.Submit(req)
		if err != nil {
			b.Fatal(err)
		}
		if st.State != StateDone || !st.DiskHit {
			b.Fatalf("want disk hit, got %+v", st)
		}
	}
}

// BenchmarkColdCompute measures a full audit computation of the benchmark
// workload — the cost a cache hit (memory or disk) avoids. Each iteration
// submits a distinct cache key by varying the deployment name.
func BenchmarkColdCompute(b *testing.B) {
	s, req := benchServer(b, Config{Workers: 1, CacheEntries: -1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := *req
		r.Deployments = []DeploymentWire{
			{Name: "s1+s2 #" + string(rune('a'+i%26)) + time.Duration(i).String(), Servers: []string{"s1", "s2"}},
		}
		st, err := s.Submit(&r)
		if err != nil {
			b.Fatal(err)
		}
		end, err := s.WaitDone(ctx, st.ID, time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if end.State != StateDone {
			b.Fatalf("job finished %s (%s)", end.State, end.Error)
		}
	}
}
