package auditd

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"indaas/internal/pia"
	"indaas/internal/report"
	"indaas/internal/store"
)

// Private independence audits (§4.2) behind the daemon: POST
// /v1/private-audits runs the P-SOP / Kissner–Song / cleartext protocols of
// internal/pia as a run closure sharing the queue, worker pool,
// content-addressed caches, coalescing, cancellation and crash journal with
// audit and recommendation jobs. Provider datasets register once under POST
// /v1/providers; jobs are content-addressed by the providers' dataset
// *fingerprints*, so a repeated cross-provider audit — by any tenant — hits
// cache without the request ever carrying the raw components again.

// providerKeyPrefix namespaces registered provider datasets in the store.
// KindMeta entries are never evicted, so a registered dataset survives
// restarts for as long as the operator keeps it.
const providerKeyPrefix = "pia/provider/"

func providerKey(name string) string { return providerKeyPrefix + name }

// ProviderWire is one provider dataset in a private-audit request: inline
// when Components is non-empty, otherwise a reference to a dataset
// registered under POST /v1/providers.
type ProviderWire struct {
	Name       string   `json:"name"`
	Components []string `json:"components,omitempty"`
}

// RegisterProviderRequest is the body of POST /v1/providers: a provider
// hands the service its normalized component-set (§4.2.3) once, to be
// referenced by name in later private audits.
type RegisterProviderRequest struct {
	Name       string   `json:"name"`
	Components []string `json:"components"`
}

// ProviderInfo describes a registered dataset without revealing it: the
// name, the content fingerprint of the normalized component-set, and the
// component count. This is all GET /v1/providers exposes to other tenants.
type ProviderInfo struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	Components  int    `json:"components"`
}

// providerDataset is the in-memory registry entry (guarded by Server.mu).
type providerDataset struct {
	components []string // sorted, deduplicated
	fp         string
}

// persistedProvider is the disk form of a registered dataset.
type persistedProvider struct {
	Name       string   `json:"name"`
	Components []string `json:"components"`
}

// normalizeComponents canonicalizes a component-set: sorted, deduplicated,
// no empty strings.
func normalizeComponents(components []string) ([]string, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("auditd: provider has an empty component-set")
	}
	out := append([]string(nil), components...)
	sort.Strings(out)
	dst := out[:0]
	var prev string
	for i, c := range out {
		if c == "" {
			return nil, fmt.Errorf("auditd: empty component name")
		}
		if i > 0 && c == prev {
			continue
		}
		dst = append(dst, c)
		prev = c
	}
	return dst, nil
}

// providerFingerprint content-addresses a normalized component-set. The
// "provider" op keeps these fingerprints disjoint from job cache keys.
func providerFingerprint(components []string) string {
	return canonicalKey(&struct {
		Op         string   `json:"op"`
		Components []string `json:"components"`
	}{Op: "provider", Components: components})
}

// RegisterProvider validates and registers a provider dataset, persisting
// it durably (when the service has a store and is not degraded) and
// replacing any prior dataset under the same name. Re-registering changed
// components yields a new fingerprint, so stale cached audits are simply
// never addressed again.
func (s *Server) RegisterProvider(req *RegisterProviderRequest) (ProviderInfo, error) {
	if req.Name == "" {
		return ProviderInfo{}, &statusErr{code: 400, err: fmt.Errorf("auditd: provider needs a name")}
	}
	if strings.ContainsAny(req.Name, "/\x00") {
		return ProviderInfo{}, &statusErr{code: 400, err: fmt.Errorf("auditd: provider name %q may not contain '/'", req.Name)}
	}
	components, err := normalizeComponents(req.Components)
	if err != nil {
		return ProviderInfo{}, &statusErr{code: 400, err: fmt.Errorf("auditd: provider %q: %w", req.Name, err)}
	}
	ds := providerDataset{components: components, fp: providerFingerprint(components)}

	// Persist before publishing, like job journaling: once a client sees the
	// registration acknowledged it should survive a crash. Degraded mode
	// registers memory-only (mirroring degraded ingests).
	if s.store != nil && s.breaker.allow() {
		blob, err := json.Marshal(persistedProvider{Name: req.Name, Components: components})
		if err == nil {
			if _, err := s.store.Put(providerKey(req.Name), store.KindMeta, blob); err != nil {
				s.storeFailure("persisting provider "+req.Name, err)
			} else {
				s.storeOK()
			}
		}
	} else if s.store != nil {
		s.m.storeSkipped.Add(1)
	}

	s.mu.Lock()
	s.providers[req.Name] = ds
	s.mu.Unlock()
	return ProviderInfo{Name: req.Name, Fingerprint: ds.fp, Components: len(components)}, nil
}

// Providers lists the registered datasets (fingerprints and counts only),
// sorted by name.
func (s *Server) Providers() []ProviderInfo {
	s.mu.Lock()
	out := make([]ProviderInfo, 0, len(s.providers))
	for name, ds := range s.providers {
		out = append(out, ProviderInfo{Name: name, Fingerprint: ds.fp, Components: len(ds.components)})
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// lookupProvider resolves a registered dataset for request normalization.
func (s *Server) lookupProvider(name string) ([]string, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.providers[name]
	return ds.components, ds.fp, ok
}

// restoreProviders reloads the registry from the store at boot; called from
// New before any request (and before RecoverJobs, which may replay private
// audits referencing registered datasets). Unreadable entries are dropped
// with a log line rather than wedging the boot.
func (s *Server) restoreProviders() {
	for _, e := range s.store.Entries() {
		if e.Kind != store.KindMeta || !strings.HasPrefix(e.Key, providerKeyPrefix) {
			continue
		}
		blob, _, ok, err := s.store.Get(e.Key)
		if err != nil || !ok {
			log.Printf("auditd: dropping provider record %s: ok=%v err=%v", e.Key, ok, err)
			continue
		}
		var pp persistedProvider
		if err := json.Unmarshal(blob, &pp); err != nil {
			log.Printf("auditd: dropping provider record %s: %v", e.Key, err)
			continue
		}
		components, err := normalizeComponents(pp.Components)
		if err != nil || pp.Name == "" {
			log.Printf("auditd: dropping provider record %s: %v", e.Key, err)
			continue
		}
		s.providers[pp.Name] = providerDataset{components: components, fp: providerFingerprint(components)}
	}
}

// PrivateAuditRequest is the body of POST /v1/private-audits: audit the
// pairwise (or listed) independence of provider datasets through a privacy-
// preserving protocol (§4.2).
type PrivateAuditRequest struct {
	// Title names the report; like audit titles it does not contribute to
	// the cache key.
	Title string `json:"title,omitempty"`
	// Providers are the datasets to audit: inline (Components set) or
	// references to registered datasets (Components empty). At least two.
	Providers []ProviderWire `json:"providers"`
	// Deployments lists candidate deployments as provider-name lists (each
	// at least a pair). Empty means audit every provider pair.
	Deployments [][]string `json:"deployments,omitempty"`
	// Protocol is "p-sop" (default), "ks" or "cleartext".
	Protocol string `json:"protocol,omitempty"`
	// Bits is the protocol key size (default 512, the CI-scale setting;
	// 1024 is the paper's). Ignored — and excluded from the cache key —
	// under "cleartext".
	Bits int `json:"bits,omitempty"`
	// MinHashM estimates Jaccard from m-function MinHash signatures
	// (§4.2.4) instead of full component-sets; required under "ks"
	// (defaulting to 512 there).
	MinHashM int `json:"minhash_m,omitempty"`
	// MinHashThreshold switches to MinHash automatically for providers
	// whose component-sets exceed it.
	MinHashThreshold int `json:"minhash_threshold,omitempty"`
	// KSBlindBits bounds KS blinding-coefficient width (0 = full width).
	KSBlindBits int `json:"ks_blind_bits,omitempty"`
	// Workers parallelizes the per-pair protocol rounds and MinHash
	// signing. Parallelism never changes the report, so like Title it stays
	// out of the cache key; 0 means the server picks (one per CPU).
	Workers int `json:"workers,omitempty"`
	// TimeoutMS caps the job's run time; same semantics as audit jobs.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoForward pins the job to this node. Set by the HTTP layer for
	// requests a cluster peer already forwarded once (single-hop ownership);
	// never by clients, and excluded from JSON and the cache key.
	NoForward bool `json:"-"`
}

// providerRef is a provider's identity inside the canonical form: its name
// and dataset fingerprint — never the components, which keeps cache keys
// stable across inline and registered submissions of the same dataset.
type providerRef struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fp"`
}

// normalizedPrivate is the canonical, defaults-applied form the cache key
// hashes. Op keeps private-audit keys disjoint from the other job kinds.
type normalizedPrivate struct {
	Op               string        `json:"op"` // always "private-audit"
	Providers        []providerRef `json:"providers"`
	Deployments      [][]string    `json:"deployments"`
	Protocol         string        `json:"protocol"`
	Bits             int           `json:"bits,omitempty"`
	MinHashM         int           `json:"minhash_m,omitempty"`
	MinHashThreshold int           `json:"minhash_threshold,omitempty"`
	KSBlindBits      int           `json:"ks_blind_bits,omitempty"`
}

// key derives the content address of the normalized private audit.
func (n *normalizedPrivate) key() string { return canonicalKey(n) }

// normalize validates the request and produces the canonical form plus the
// resolved pia inputs. lookup resolves referenced (non-inline) providers to
// their registered components and fingerprint; a nil lookup — the CLI's
// offline mode — makes references an error. The CLI's local mode runs
// through this so offline and served audits cannot drift.
func (r *PrivateAuditRequest) normalize(lookup func(string) ([]string, string, bool)) (normalizedPrivate, pia.Config, []pia.Provider, []pia.Deployment, error) {
	n := normalizedPrivate{Op: "private-audit"}
	var cfg pia.Config
	if len(r.Providers) < 2 {
		return n, cfg, nil, nil, fmt.Errorf("auditd: need at least two providers, got %d", len(r.Providers))
	}
	if r.Bits < 0 || r.MinHashM < 0 || r.MinHashThreshold < 0 || r.KSBlindBits < 0 ||
		r.Workers < 0 || r.TimeoutMS < 0 {
		return n, cfg, nil, nil, fmt.Errorf("auditd: negative option")
	}

	switch r.Protocol {
	case "", "p-sop":
		n.Protocol = "p-sop"
		cfg.Protocol = pia.ProtocolPSOP
	case "ks":
		n.Protocol = "ks"
		cfg.Protocol = pia.ProtocolKS
	case "cleartext":
		n.Protocol = "cleartext"
		cfg.Protocol = pia.ProtocolCleartext
	default:
		return n, cfg, nil, nil, fmt.Errorf("auditd: unknown protocol %q", r.Protocol)
	}
	if n.Protocol != "cleartext" {
		n.Bits = r.Bits
		if n.Bits == 0 {
			n.Bits = 512
		}
		if n.Bits < 128 {
			return n, cfg, nil, nil, fmt.Errorf("auditd: bits=%d too small (need at least 128)", n.Bits)
		}
	}
	n.MinHashM = r.MinHashM
	if n.Protocol == "ks" && n.MinHashM == 0 {
		n.MinHashM = 512 // KS always estimates via MinHash; pin the default into the key
	}
	n.MinHashThreshold = r.MinHashThreshold
	if n.Protocol == "ks" {
		n.KSBlindBits = r.KSBlindBits
	}
	cfg.Bits = n.Bits
	cfg.MinHashM = n.MinHashM
	cfg.MinHashThreshold = n.MinHashThreshold
	cfg.KSBlindBits = n.KSBlindBits
	cfg.Workers = r.Workers

	// Resolve every provider to (sorted components, fingerprint), then sort
	// providers by name for a canonical order.
	seen := make(map[string]bool, len(r.Providers))
	provs := make([]pia.Provider, 0, len(r.Providers))
	for i, p := range r.Providers {
		if p.Name == "" {
			return n, cfg, nil, nil, fmt.Errorf("auditd: provider %d has no name", i)
		}
		if seen[p.Name] {
			return n, cfg, nil, nil, fmt.Errorf("auditd: duplicate provider %q", p.Name)
		}
		seen[p.Name] = true
		var components []string
		if len(p.Components) > 0 {
			c, err := normalizeComponents(p.Components)
			if err != nil {
				return n, cfg, nil, nil, fmt.Errorf("auditd: provider %q: %w", p.Name, err)
			}
			components = c
		} else {
			if lookup == nil {
				return n, cfg, nil, nil, fmt.Errorf("auditd: provider %q has no inline components and no registry is available", p.Name)
			}
			c, _, ok := lookup(p.Name)
			if !ok {
				return n, cfg, nil, nil, fmt.Errorf("auditd: unknown provider %q (not registered and no inline components)", p.Name)
			}
			components = c
		}
		provs = append(provs, pia.Provider{Name: p.Name, Components: components})
	}
	sort.Slice(provs, func(i, j int) bool { return provs[i].Name < provs[j].Name })
	index := make(map[string]int, len(provs))
	for i, p := range provs {
		index[p.Name] = i
		n.Providers = append(n.Providers, providerRef{Name: p.Name, Fingerprint: providerFingerprint(p.Components)})
	}

	// Canonicalize the deployment list: names sorted within each deployment,
	// the list sorted and deduplicated. The report is ranked after auditing,
	// so canonical order cannot change the result.
	var canon [][]string
	if len(r.Deployments) == 0 {
		for i := 0; i < len(provs); i++ {
			for j := i + 1; j < len(provs); j++ {
				canon = append(canon, []string{provs[i].Name, provs[j].Name})
			}
		}
	} else {
		for di, d := range r.Deployments {
			if len(d) < 2 {
				return n, cfg, nil, nil, fmt.Errorf("auditd: deployment %d needs at least two providers", di)
			}
			names := append([]string(nil), d...)
			sort.Strings(names)
			for i, name := range names {
				if _, ok := index[name]; !ok {
					return n, cfg, nil, nil, fmt.Errorf("auditd: deployment %d references unknown provider %q", di, name)
				}
				if i > 0 && names[i-1] == name {
					return n, cfg, nil, nil, fmt.Errorf("auditd: deployment %d lists provider %q twice", di, name)
				}
			}
			canon = append(canon, names)
		}
		sort.Slice(canon, func(i, j int) bool { return strings.Join(canon[i], "\x00") < strings.Join(canon[j], "\x00") })
		dst := canon[:0]
		for i, d := range canon {
			if i > 0 && strings.Join(canon[i-1], "\x00") == strings.Join(d, "\x00") {
				continue
			}
			dst = append(dst, d)
		}
		canon = dst
	}
	n.Deployments = canon
	deployments := make([]pia.Deployment, len(canon))
	for i, d := range canon {
		dep := make(pia.Deployment, len(d))
		for j, name := range d {
			dep[j] = index[name]
		}
		deployments[i] = dep
	}
	return n, cfg, provs, deployments, nil
}

// Local normalizes and runs the request in-process with no service — the
// CLI's offline mode. It applies the exact defaults the service would, so
// offline and served audits cannot drift; referencing a registered (non-
// inline) provider is an error, since there is no registry to resolve it.
func (r *PrivateAuditRequest) Local(ctx context.Context) (*PrivateAuditResponse, error) {
	n, cfg, provs, deployments, err := r.normalize(nil)
	if err != nil {
		return nil, err
	}
	infos := make([]ProviderInfo, len(n.Providers))
	for i, ref := range n.Providers {
		infos[i] = ProviderInfo{Name: ref.Name, Fingerprint: ref.Fingerprint, Components: len(provs[i].Components)}
	}
	start := time.Now()
	rep, err := pia.AuditDeploymentsContext(ctx, cfg, provs, deployments)
	if err != nil {
		return nil, err
	}
	resp := PrivateAuditResponseFromReport(rep, infos, n.Protocol, time.Since(start))
	resp.Title = r.Title
	return resp, nil
}

// PrivateAudit validates and accepts a private audit, returning the new
// job's status. Private-audit jobs share the audit queue, worker pool,
// result caches and cancellation plumbing: poll and fetch them through the
// same /v1/audits/{id} endpoints.
func (s *Server) PrivateAudit(req *PrivateAuditRequest) (JobStatus, error) {
	return s.privateAudit(req, "")
}

// privateAudit is PrivateAudit with a recovery id: RecoverJobs replays
// journaled requests through it so a crashed job reappears under its
// original id.
func (s *Server) privateAudit(req *PrivateAuditRequest, recoverID string) (JobStatus, error) {
	n, cfg, provs, deployments, err := req.normalize(s.lookupProvider)
	if err != nil {
		return JobStatus{}, &statusErr{code: 400, err: err}
	}
	infos := make([]ProviderInfo, len(n.Providers))
	for i, ref := range n.Providers {
		infos[i] = ProviderInfo{Name: ref.Name, Fingerprint: ref.Fingerprint, Components: len(provs[i].Components)}
	}
	protocol := n.Protocol
	pairs := len(deployments)
	run := func(ctx context.Context) (any, error) {
		start := time.Now()
		rep, err := pia.AuditDeploymentsContext(ctx, cfg, provs, deployments)
		if err != nil {
			return nil, err
		}
		s.m.privatePairs.Add(int64(pairs))
		return PrivateAuditResponseFromReport(rep, infos, protocol, time.Since(start)), nil
	}
	// The request is self-contained only when every provider inlines its
	// components; a registry reference resolves against THIS node's provider
	// registry and must not be forwarded to a peer that may lack it.
	inline := true
	for _, p := range req.Providers {
		if len(p.Components) == 0 {
			inline = false
			break
		}
	}
	extra := &jobExtras{
		journalKind: journalKindPrivate, journalReq: req, recoverID: recoverID,
		wire:          req,
		selfContained: inline,
		noForward:     req.NoForward || recoverID != "" || !inline,
	}
	st, err := s.enqueue(n.key(), req.Title, req.TimeoutMS, run, extra)
	if err == nil {
		s.m.privateAudits.Add(1)
	}
	return st, err
}

// PrivateAuditResponse is the wire form of a completed private audit. Its
// JSON is stable and NaN-safe: values that could be NaN or infinite are
// omitted rather than encoded, which encoding/json rejects.
type PrivateAuditResponse struct {
	Title    string `json:"title,omitempty"`
	Protocol string `json:"protocol"`
	// Providers identifies the audited datasets by fingerprint and size —
	// never by components.
	Providers []ProviderInfo `json:"providers"`
	// Pairs is how many deployments (pairs or larger groups) were audited.
	Pairs   int                     `json:"pairs"`
	Entries []PrivateAuditEntryWire `json:"entries"`
	// BytesSent totals the protocol bandwidth across all entries.
	BytesSent int64 `json:"bytes_sent"`
	ElapsedNS int64 `json:"elapsed_ns"`
	// PairsPerSec is the batch throughput; omitted when the elapsed time
	// was immeasurably small (a +Inf rate is not representable in JSON).
	PairsPerSec *float64 `json:"pairs_per_sec,omitempty"`
}

// PrivateAuditEntryWire is one audited deployment, ranked most independent
// (lowest Jaccard) first.
type PrivateAuditEntryWire struct {
	Providers []string `json:"providers"`
	// Jaccard is the (exact or MinHash-estimated) similarity; omitted
	// rather than NaN should a protocol ever fail to compute it.
	Jaccard *float64 `json:"jaccard,omitempty"`
	// Estimated marks MinHash-estimated similarities (§4.2.4).
	Estimated bool  `json:"estimated,omitempty"`
	BytesSent int64 `json:"bytes_sent,omitempty"`
	ElapsedNS int64 `json:"elapsed_ns"`
}

// PrivateAuditResponseFromReport converts a pia report to its wire form —
// shared by the service worker and CLI clients rendering local audits.
func PrivateAuditResponseFromReport(rep *report.PIAReport, providers []ProviderInfo, protocol string, elapsed time.Duration) *PrivateAuditResponse {
	out := &PrivateAuditResponse{
		Protocol:  protocol,
		Providers: providers,
		Pairs:     len(rep.Entries),
		ElapsedNS: elapsed.Nanoseconds(),
	}
	for _, e := range rep.Entries {
		w := PrivateAuditEntryWire{
			Providers: e.Providers,
			Estimated: e.Estimated,
			BytesSent: e.BytesSent,
			ElapsedNS: e.Elapsed.Nanoseconds(),
		}
		if !isNaN(e.Jaccard) {
			j := e.Jaccard
			w.Jaccard = &j
		}
		out.BytesSent += e.BytesSent
		out.Entries = append(out.Entries, w)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		rate := float64(out.Pairs) / secs
		out.PairsPerSec = &rate
	}
	return out
}

// isNaN avoids importing math for one comparison: NaN is the only value
// that differs from itself.
func isNaN(f float64) bool { return f != f }
