package auditd

import (
	"bufio"
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"indaas/internal/store"
	"indaas/internal/telemetry"
)

// TestColdFig7AuditTrace is the telemetry acceptance check on the paper's
// Fig. 7 workload: a cold k=16 minimal-RG audit on a durable daemon must
// leave a trace whose queue-wait, graph-build, minimal-rgs and persist
// phases account for (nearly) all of the job's end-to-end latency — the
// whole point of the trace is that an operator looking at a slow job sees
// where the time went, not an unexplained gap.
func TestColdFig7AuditTrace(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s, req := fig7Server(t, 16, Config{Workers: 1, Store: st})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	job := mustSubmit(t, s, req)
	if job.Cached {
		t.Fatalf("first fig7 audit was a cache hit: %+v", job)
	}
	end, err := s.WaitDone(ctx, job.ID, time.Minute)
	if err != nil || end.State != StateDone {
		t.Fatalf("cold audit: %v %+v", err, end)
	}

	tr, err := s.Trace(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.ID != job.ID || tr.State != StateDone {
		t.Fatalf("trace header = %s/%s, want %s/done", tr.ID, tr.State, job.ID)
	}
	byName := map[string]time.Duration{}
	var phaseSum time.Duration
	for _, p := range tr.Phases {
		if p.Running {
			t.Fatalf("phase %s still running on a settled job", p.Name)
		}
		byName[p.Name] += time.Duration(p.DurationNS)
		phaseSum += time.Duration(p.DurationNS)
	}
	for _, want := range []string{"queue-wait", "graph-build", "minimal-rgs", "persist"} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("trace lacks phase %q; phases = %+v", want, tr.Phases)
		}
	}
	if tr.Counts["rgs_found"] <= 0 {
		t.Fatalf("rgs_found = %d, want > 0", tr.Counts["rgs_found"])
	}

	// The trace is also the job status's timeline.
	if js, err := s.Status(job.ID); err != nil || len(js.Trace) != len(tr.Phases) {
		t.Fatalf("JobStatus trace = %d phases (err %v), want %d", len(js.Trace), err, len(tr.Phases))
	}

	// Acceptance: the phases explain the end-to-end latency. The daemon ran
	// exactly one job, so the job-duration histogram's sum IS this job's
	// end-to-end observation.
	stats := s.Stats()
	if n := stats.JobDuration.Count(); n != 1 {
		t.Fatalf("job duration observations = %d, want 1", n)
	}
	e2e := stats.JobDuration.Sum
	if phaseSum > e2e {
		t.Fatalf("phase sum %v exceeds end-to-end %v", phaseSum, e2e)
	}
	if gap := e2e - phaseSum; gap > e2e/10 {
		t.Fatalf("phases cover %v of %v end-to-end; gap %v > 10%%", phaseSum, e2e, gap)
	}

	// A repeat submission is a cache hit and must stay traceless: the trace
	// allocation is deferred until a computation actually runs.
	hit := mustSubmit(t, s, req)
	if !hit.Cached || hit.State != StateDone {
		t.Fatalf("resubmission not a cache hit: %+v", hit)
	}
	if htr, err := s.Trace(hit.ID); err != nil || len(htr.Phases) != 0 {
		t.Fatalf("hit-path trace = %+v (err %v), want empty", htr.Phases, err)
	}
}

// TestTraceUnknownJob pins the 404 contract.
func TestTraceUnknownJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	if _, err := s.Trace("nope"); httpStatus(err) != 404 {
		t.Fatalf("Trace(unknown) = %v, want 404", err)
	}
}

// TestWatchNotifyTelemetry checks the watch-side instrumentation: a
// re-audit streamed to a subscriber appends a notify span to the re-audit
// job's trace and lands one observation in the ingest→notify histogram.
func TestWatchNotifyTelemetry(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	mustIngest(t, s, deltaRecords())

	sub, err := s.Watch(deltaAuditRequest("telemetry"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	nextWatchEvent(t, sub) // initial report

	mustIngest(t, s, []RecordWire{{Kind: "software", Pgm: "etcd", HW: "s3", Deps: []string{"libc6"}}})
	ev := nextWatchEvent(t, sub)
	if ev.Job.State != StateDone {
		t.Fatalf("re-audit event job = %+v", ev.Job)
	}

	// The histogram observation and the notify span land right after the
	// event is queued; poll briefly rather than race the refresher.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Stats().IngestNotify.Count() >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("ingest→notify histogram never observed a sample")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for {
		tr, err := s.Trace(ev.Job.ID)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, p := range tr.Phases {
			if p.Name == "notify" {
				found = true
			}
		}
		if found {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-audit job trace never gained a notify phase: %+v", tr.Phases)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDegradedGaugeWithoutStore pins the fix for the vanished series: a
// memory-only daemon must still render auditd_degraded (as 0) so dashboards
// alerting on the gauge never lose it to a config difference.
func TestDegradedGaugeWithoutStore(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	var b strings.Builder
	s.Stats().render(&b)
	if !strings.Contains(b.String(), "\nauditd_degraded 0\n") {
		t.Fatal("memory-only /metrics lacks the auditd_degraded gauge")
	}
	if strings.Contains(b.String(), "auditd_store_hits_total") {
		t.Fatal("memory-only /metrics renders store counters")
	}
}

// expositionSample is one parsed sample line: base metric name (labels and
// histogram suffixes stripped), the le label if any, and the value.
type expositionSample struct {
	base  string // metric family name as declared by # TYPE
	name  string // full sample name (base + _bucket/_sum/_count for histograms)
	le    string
	value float64
}

// parseExposition splits Prometheus text exposition into # TYPE
// declarations and samples, attributing each sample to its family.
func parseExposition(t *testing.T, text string) (types map[string]string, samples []expositionSample) {
	t.Helper()
	types = map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "# HELP") {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if _, dup := types[name]; dup {
				t.Fatalf("duplicate # TYPE for %s", name)
			}
			types[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unrecognized comment line %q", line)
		}
		nameAndLabels, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			t.Fatalf("sample %q: bad value: %v", line, err)
		}
		smp := expositionSample{value: v}
		smp.name = nameAndLabels
		if i := strings.IndexByte(nameAndLabels, '{'); i >= 0 {
			smp.name = nameAndLabels[:i]
			labels := strings.TrimSuffix(nameAndLabels[i+1:], "}")
			for _, kv := range strings.Split(labels, ",") {
				if rest, ok := strings.CutPrefix(kv, "le="); ok {
					smp.le = strings.Trim(rest, "\"")
				}
			}
		}
		smp.base = smp.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(smp.name, suf)
			if trimmed != smp.name && types[trimmed] == "histogram" {
				smp.base = trimmed
			}
		}
		samples = append(samples, smp)
	}
	return types, samples
}

// TestMetricsExpositionWellFormed exercises every serve path (cold compute,
// memory hit, ingest) on a durable daemon and then validates the full
// /metrics exposition: every sample belongs to a declared # TYPE family,
// histogram buckets are cumulative with _count equal to the +Inf bucket,
// and every family declared actually has samples.
func TestMetricsExpositionWellFormed(t *testing.T) {
	st, err := store.Open(store.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	s := New(Config{Workers: 1, Store: st})
	defer shutdown(t, s)

	req := quickRequest("exposition")
	job := mustSubmit(t, s, req)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if end, err := s.WaitDone(ctx, job.ID, 30*time.Second); err != nil || end.State != StateDone {
		t.Fatalf("cold job: %v %+v", err, end)
	}
	mustSubmit(t, s, req) // memory hit → job-duration observation
	mustIngest(t, s, deltaRecords())

	var b strings.Builder
	s.Stats().render(&b)
	types, samples := parseExposition(t, b.String())

	seen := map[string]bool{}
	for _, smp := range samples {
		typ, ok := types[smp.base]
		if !ok {
			t.Fatalf("sample %s has no # TYPE declaration", smp.name)
		}
		seen[smp.base] = true
		switch typ {
		case "counter", "gauge":
			if smp.name != smp.base {
				t.Fatalf("%s sample %s does not match its family name", typ, smp.name)
			}
		case "histogram":
			switch {
			case smp.name == smp.base+"_bucket":
				if smp.le == "" {
					t.Fatalf("histogram bucket %s lacks an le label", smp.name)
				}
			case smp.name == smp.base+"_sum", smp.name == smp.base+"_count":
			default:
				t.Fatalf("histogram family %s has stray sample %s", smp.base, smp.name)
			}
		default:
			t.Fatalf("unexpected type %q for %s", typ, smp.base)
		}
	}
	for fam := range types {
		if !seen[fam] {
			t.Fatalf("family %s declared but has no samples", fam)
		}
	}

	// Histogram invariants, checked per family in exposition order: buckets
	// cumulative (non-decreasing), +Inf present, and _count == +Inf bucket.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		var prev, inf float64
		var count, sum float64
		var sawInf, sawCount, sawSum bool
		for _, smp := range samples {
			if smp.base != fam {
				continue
			}
			switch smp.name {
			case fam + "_bucket":
				if smp.value < prev {
					t.Fatalf("%s buckets not cumulative: le=%s drops to %v", fam, smp.le, smp.value)
				}
				prev = smp.value
				if smp.le == "+Inf" {
					inf, sawInf = smp.value, true
				}
			case fam + "_count":
				count, sawCount = smp.value, true
			case fam + "_sum":
				sum, sawSum = smp.value, true
			}
		}
		if !sawInf || !sawCount || !sawSum {
			t.Fatalf("%s misses +Inf/_count/_sum (%v/%v/%v)", fam, sawInf, sawCount, sawSum)
		}
		if count != inf {
			t.Fatalf("%s _count %v != +Inf bucket %v", fam, count, inf)
		}
		if count > 0 && sum < 0 {
			t.Fatalf("%s has %v observations but negative sum %v", fam, count, sum)
		}
	}

	// The serve paths above must have produced observations.
	for _, fam := range []string{"auditd_job_duration_seconds", "auditd_job_queue_wait_seconds",
		"auditd_job_compute_seconds", "auditd_ingest_commit_seconds",
		"auditd_store_put_seconds"} {
		if h, ok := telemetry.ParseHistogram(b.String(), fam); !ok || h.Count() == 0 {
			t.Fatalf("%s has no observations after cold+hit+ingest", fam)
		}
	}
	if !strings.Contains(b.String(), "auditd_build_info{go_version=") {
		t.Fatal("exposition lacks auditd_build_info")
	}
}

// missTier is a lower tier that never hits — the shape a clustered node's
// peer tier has when the owner's cache is cold. It must cost the memory-hit
// path nothing: a memory hit resolves at the first tier and the chain below
// is never probed.
type missTier struct{}

func (missTier) Name() string             { return "miss" }
func (missTier) Get(string) (any, bool)   { return nil, false }
func (missTier) Put(string, any) []string { return nil }
func (missTier) Remove(string)            {}

// TestMemoryHitAllocBudget is the alloc guard behind
// BenchmarkSubmitMemoryHitTraced: with tracing threaded through the
// pipeline, the memory-hit path must still stay within its historical
// budget because hits never allocate a trace. The "seams" variant runs the
// same budget with the executor wrapped and an extra result tier appended —
// the interfaces the cluster layer hangs off — proving the extraction left
// the hit path alone: hits never reach the executor, and the tier chain
// stops at memory.
func TestMemoryHitAllocBudget(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Workers: 1}},
		{"seams", Config{
			Workers:      1,
			WrapExecutor: func(e Executor) Executor { return e },
			ExtraTiers:   []ResultTier{missTier{}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(tc.cfg)
			defer shutdown(t, s)
			req := quickRequest("allocs-" + tc.name)
			job := mustSubmit(t, s, req)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if end, err := s.WaitDone(ctx, job.ID, 30*time.Second); err != nil || end.State != StateDone {
				t.Fatalf("priming job: %v %+v", err, end)
			}
			allocs := testing.AllocsPerRun(200, func() {
				st, err := s.Submit(req)
				if err != nil || st.State != StateDone || !st.Cached {
					panic(fmt.Sprintf("not a memory hit: %+v %v", st, err))
				}
			})
			if allocs > 80 {
				t.Fatalf("memory-hit submit = %.0f allocs/op, budget 80", allocs)
			}
		})
	}
}
