package auditd

import (
	"context"
	"fmt"
	"math"
	"sort"

	"indaas/internal/deps"
	"indaas/internal/placement"
	"indaas/internal/sia"
)

// RecommendRequest is the body of POST /v1/recommend: pick the most
// independent Replicas-node deployments out of a candidate pool, searched by
// the placement engine (see internal/placement).
type RecommendRequest struct {
	// Title names the recommendation; like audit titles it does not
	// contribute to the cache key.
	Title string `json:"title,omitempty"`
	// Records inlines the dependency records to search over. Empty means
	// use the server's database (preloaded or ingested via /v1/depdb).
	Records []RecordWire `json:"records,omitempty"`
	// Nodes is the candidate pool. Empty means every subject the database
	// has records for.
	Nodes []string `json:"nodes,omitempty"`
	// Fixed nodes are part of every candidate deployment (already-placed
	// replicas); the engine chooses the rest from Nodes.
	Fixed []string `json:"fixed,omitempty"`
	// Replicas is the total deployment size, Fixed included.
	Replicas int `json:"replicas"`
	// TopK is how many ranked deployments to return (default 3).
	TopK int `json:"top_k,omitempty"`
	// Strategy is "auto" (default), "exact", "greedy" or "beam".
	Strategy string `json:"strategy,omitempty"`
	// BeamWidth tunes the beam strategy (0 = engine default).
	BeamWidth int `json:"beam_width,omitempty"`
	// MaxCandidates bounds the exact search (0 = engine default).
	MaxCandidates int `json:"max_candidates,omitempty"`
	// Kinds restricts the dependency kinds considered; empty means all.
	Kinds []string `json:"kinds,omitempty"`
	// Algorithm is "minimal-rg" (default) or "failure-sampling", applied to
	// every candidate audit.
	Algorithm string `json:"algorithm,omitempty"`
	// Rounds / Seed / SamplerWorkers tune failure-sampling; the same
	// host-independence defaults as audit submissions apply.
	Rounds         int   `json:"rounds,omitempty"`
	Seed           int64 `json:"seed,omitempty"`
	SamplerWorkers int   `json:"sampler_workers,omitempty"`
	// FailureProb, when > 0, weights every component uniformly and ranks
	// deployments by Pr(outage).
	FailureProb float64 `json:"failure_prob,omitempty"`
	// MaxSets / MaxSize bound each candidate's minimal-RG run.
	MaxSets int `json:"max_sets,omitempty"`
	MaxSize int `json:"max_size,omitempty"`
	// Workers bounds the candidate audits scored concurrently (0 = one per
	// CPU). Parallelism never changes the ranking, so like Title it stays
	// out of the cache key.
	Workers int `json:"workers,omitempty"`
	// TimeoutMS caps the job's run time; same semantics as audit jobs.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoForward pins the job to this node. Set by the HTTP layer for
	// requests a cluster peer already forwarded once (single-hop ownership);
	// never by clients, and excluded from JSON and the cache key.
	NoForward bool `json:"-"`
}

// normalizedRecommend is the canonical, defaults-applied form the cache key
// hashes. Op keeps recommendation keys disjoint from audit keys even if the
// remaining fields ever marshaled identically.
type normalizedRecommend struct {
	Op            string   `json:"op"` // always "recommend"
	DBFingerprint string   `json:"db"`
	Nodes         []string `json:"nodes"`
	Fixed         []string `json:"fixed,omitempty"`
	Replicas      int      `json:"replicas"`
	TopK          int      `json:"top_k"`
	Strategy      string   `json:"strategy"`
	BeamWidth     int      `json:"beam_width,omitempty"`
	MaxCandidates int      `json:"max_candidates,omitempty"`
	Kinds         []string `json:"kinds,omitempty"`
	Algorithm     string   `json:"algorithm"`
	Rounds        int      `json:"rounds,omitempty"`
	Seed          int64    `json:"seed,omitempty"`
	Workers       int      `json:"workers,omitempty"` // sampler workers
	FailureProb   float64  `json:"failure_prob,omitempty"`
	MaxSets       int      `json:"max_sets,omitempty"`
	MaxSize       int      `json:"max_size,omitempty"`
}

// normalize validates the request and produces the canonical form (minus
// the DB fingerprint and node pool, resolved by the caller against the
// database snapshot) plus the placement request to run.
func (r *RecommendRequest) normalize() (normalizedRecommend, placement.Request, error) {
	n := normalizedRecommend{Op: "recommend"}
	var preq placement.Request
	if r.Replicas < 1 {
		return n, preq, fmt.Errorf("auditd: replicas=%d, need at least 1", r.Replicas)
	}
	strategy, err := placement.StrategyFromString(r.Strategy)
	if err != nil {
		return n, preq, fmt.Errorf("auditd: %w", err)
	}
	kinds := append([]string(nil), r.Kinds...)
	sort.Strings(kinds)
	var kindList []deps.Kind
	for _, name := range kinds {
		k, err := deps.KindFromString(name)
		if err != nil {
			return n, preq, fmt.Errorf("auditd: %w", err)
		}
		kindList = append(kindList, k)
	}
	var opts sia.Options
	switch r.Algorithm {
	case "", "minimal-rg":
		n.Algorithm = "minimal-rg"
		opts.Algorithm = sia.MinimalRG
	case "failure-sampling":
		n.Algorithm = "failure-sampling"
		opts.Algorithm = sia.FailureSampling
		n.Rounds = r.Rounds
		if n.Rounds == 0 {
			n.Rounds = 100_000
		}
		n.Seed = r.Seed
		if n.Seed == 0 {
			n.Seed = 1
		}
		n.Workers = r.SamplerWorkers
		if n.Workers == 0 {
			n.Workers = 1 // host-independent by default, like audits
		}
		opts.Rounds, opts.Seed, opts.Workers = n.Rounds, n.Seed, n.Workers
	default:
		return n, preq, fmt.Errorf("auditd: unknown algorithm %q", r.Algorithm)
	}
	if r.FailureProb < 0 || r.FailureProb > 1 {
		return n, preq, fmt.Errorf("auditd: failure_prob %v out of [0,1]", r.FailureProb)
	}
	if r.TopK < 0 || r.BeamWidth < 0 || r.MaxCandidates < 0 || r.MaxSets < 0 ||
		r.MaxSize < 0 || r.Rounds < 0 || r.TimeoutMS < 0 || r.SamplerWorkers < 0 || r.Workers < 0 {
		return n, preq, fmt.Errorf("auditd: negative option")
	}
	var probFn func(string) float64
	if r.FailureProb > 0 {
		p := r.FailureProb
		probFn = func(string) float64 { return p }
		opts.RankMode = sia.RankByProb
	}
	opts.MaxSets, opts.MaxSize = r.MaxSets, r.MaxSize

	n.Fixed = append([]string(nil), r.Fixed...)
	sort.Strings(n.Fixed)
	n.Replicas = r.Replicas
	n.TopK = r.TopK
	if n.TopK == 0 {
		n.TopK = placement.DefaultTopK
	}
	n.Strategy = strategy.String()
	n.BeamWidth = r.BeamWidth
	n.MaxCandidates = r.MaxCandidates
	n.Kinds = kinds
	n.FailureProb = r.FailureProb
	n.MaxSets, n.MaxSize = r.MaxSets, r.MaxSize

	preq = placement.Request{
		Fixed:         n.Fixed,
		Replicas:      n.Replicas,
		TopK:          n.TopK,
		Strategy:      strategy,
		BeamWidth:     n.BeamWidth,
		MaxCandidates: n.MaxCandidates,
		Workers:       r.Workers,
		Kinds:         kindList,
		Prob:          probFn,
		Audit:         opts,
	}
	return n, preq, nil
}

// key derives the content address of the normalized recommendation.
func (n *normalizedRecommend) key() string {
	return canonicalKey(n)
}

// requestKey derives the database-independent identity; see
// normalized.requestKey. The resolved node pool is part of the identity, so
// an ingest that adds a pool subject naturally starts a fresh lineage.
func (n *normalizedRecommend) requestKey() string {
	c := *n
	c.DBFingerprint = ""
	return canonicalKey(&c)
}

// PlacementRequest validates the request's options and converts them into
// the placement engine's form, with the same defaults the service applies
// (sampler pinned to Seed 1 / one worker for host-independent results).
// Pool resolution is left to the caller. The CLI's local mode runs through
// this so offline and served searches cannot drift.
func (r *RecommendRequest) PlacementRequest() (placement.Request, error) {
	_, preq, err := r.normalize()
	return preq, err
}

// Recommend validates and accepts a placement recommendation, returning the
// new job's status. Recommendation jobs share the audit queue, worker pool,
// result cache and cancellation plumbing: poll and fetch them through the
// same /v1/audits/{id} endpoints.
func (s *Server) Recommend(req *RecommendRequest) (JobStatus, error) {
	return s.recommend(req, "")
}

// recommend is Recommend with a recovery id: RecoverJobs replays journaled
// requests through it so a crashed job reappears under its original id.
func (s *Server) recommend(req *RecommendRequest, recoverID string) (JobStatus, error) {
	n, preq, err := req.normalize()
	if err != nil {
		return JobStatus{}, &statusErr{code: 400, err: err}
	}
	snap, err := s.resolveDB(req.Records)
	if err != nil {
		return JobStatus{}, err
	}
	n.DBFingerprint = snap.Fingerprint()

	// Resolve the candidate pool against the snapshot: an empty pool means
	// every subject with records, minus the fixed nodes.
	if len(req.Nodes) > 0 {
		n.Nodes = append([]string(nil), req.Nodes...)
		sort.Strings(n.Nodes)
	} else {
		fixed := make(map[string]bool, len(n.Fixed))
		for _, f := range n.Fixed {
			fixed[f] = true
		}
		for _, subj := range snap.Subjects() {
			if !fixed[subj] {
				n.Nodes = append(n.Nodes, subj) // Subjects() is sorted
			}
		}
	}
	if len(n.Nodes) == 0 {
		return JobStatus{}, &statusErr{code: 400, err: fmt.Errorf("auditd: no candidate nodes (empty pool and no database subjects)")}
	}
	preq.Nodes = n.Nodes
	// Fail structurally impossible searches (duplicate nodes, pool smaller
	// than replicas, fixed ⊇ replicas …) at submission time with a 400,
	// like every other invalid request — not as a failed job.
	if err := preq.Validate(); err != nil {
		return JobStatus{}, &statusErr{code: 400, err: err}
	}

	extra := &jobExtras{
		journalKind: journalKindRecommend, journalReq: req, recoverID: recoverID,
		wire: req, dbFP: n.DBFingerprint,
		selfContained: len(req.Records) > 0,
		noForward:     req.NoForward || recoverID != "",
	}
	if len(req.Records) == 0 {
		reqKey := n.requestKey()
		universe := append(append([]string(nil), n.Fixed...), n.Nodes...)
		entry := &lineageEntry{fp: snap.Fingerprint(), snap: snap, kinds: preq.Kinds, nodes: universe}
		extra.reg = &lineageReg{reqKey: reqKey, entry: entry}
		if plan := s.planRecommendDelta(reqKey, n.key(), snap, &preq, preq.Kinds, universe); plan != nil {
			extra.applyPlan(plan)
			entry.scores = plan.scores // adopt: chain the ancestor's memo on
			// The plan seeded preq with local lineage scores; keep it here.
			extra.noForward = true
		}
	}
	reg := extra.reg
	run := func(ctx context.Context) (any, error) {
		res, err := placement.Search(ctx, snap, preq)
		if err != nil {
			return nil, err
		}
		if reg != nil && len(res.Scores) <= lineageMaxScores {
			// Retain the memo for future delta searches. Safe without a
			// lock: the entry is published to the lineage only after this
			// closure returns (finishLocked).
			reg.entry.scores = res.Scores
		}
		return RecommendResponseFromResult(res), nil
	}
	st, err := s.enqueue(n.key(), req.Title, req.TimeoutMS, run, extra)
	if err == nil {
		s.m.recommendations.Add(1)
	}
	return st, err
}

// RecommendResponse is the wire form of a completed placement search. Its
// JSON is stable and NaN-safe: unknown failure probabilities are omitted
// rather than encoded as NaN, which encoding/json rejects.
type RecommendResponse struct {
	Title    string `json:"title,omitempty"`
	Strategy string `json:"strategy"`
	Replicas int    `json:"replicas"`
	// TotalCandidates is C(pool, replicas−fixed); Evaluated is how many
	// candidate audits actually ran.
	TotalCandidates int                  `json:"total_candidates"`
	Evaluated       int                  `json:"evaluated"`
	Rankings        []RecommendationWire `json:"rankings"`
	ElapsedNS       int64                `json:"elapsed_ns"`
}

// RecommendationWire is one ranked deployment.
type RecommendationWire struct {
	Rank  int      `json:"rank"`
	Nodes []string `json:"nodes"`
	// SizeVector counts risk groups by size (index i = RGs of size i+1).
	SizeVector []int `json:"size_vector"`
	RGCount    int   `json:"rg_count"`
	Unexpected int   `json:"unexpected"`
	// Score is the §4.1.4 independence score (higher is better).
	Score float64 `json:"score"`
	// FailureProb is Pr(outage); omitted when the search was unweighted.
	FailureProb *float64 `json:"failure_prob,omitempty"`
}

// RecommendResponseFromResult converts an engine result to its wire form —
// shared by the service worker and CLI clients rendering local searches.
func RecommendResponseFromResult(res *placement.Result) *RecommendResponse {
	out := &RecommendResponse{
		Strategy:        res.Strategy.String(),
		Replicas:        res.Replicas,
		TotalCandidates: res.TotalCandidates,
		Evaluated:       res.Evaluated,
		ElapsedNS:       res.Elapsed.Nanoseconds(),
	}
	for i, r := range res.Top {
		w := RecommendationWire{
			Rank:       i + 1,
			Nodes:      r.Nodes,
			SizeVector: r.Score.SizeVector,
			RGCount:    r.Score.RGCount,
			Unexpected: r.Score.Unexpected,
			Score:      r.Score.Independence,
		}
		if !math.IsNaN(r.Score.FailureProb) {
			p := r.Score.FailureProb
			w.FailureProb = &p
		}
		out.Rankings = append(out.Rankings, w)
	}
	return out
}
