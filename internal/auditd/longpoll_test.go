package auditd

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestStatusWaitCapAndClientLoops pins the long-poll contract: the server
// silently truncates ?wait at maxStatusWait and answers 200 with a
// NON-terminal state, and Client.WaitDone must treat that as "keep polling",
// not completion. The cap is shrunk so one WaitDone call provably spans
// several truncated polls.
func TestStatusWaitCapAndClientLoops(t *testing.T) {
	oldCap := maxStatusWait
	maxStatusWait = 30 * time.Millisecond
	defer func() { maxStatusWait = oldCap }()

	s := New(Config{Workers: 1})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Occupy the only worker so the target job stays queued for a while.
	blocker, err := c.Submit(ctx, slowRequest("blocker", 91))
	if err != nil {
		t.Fatal(err)
	}
	target, err := c.Submit(ctx, quickRequest("target"))
	if err != nil {
		t.Fatal(err)
	}

	// A wait far above the cap returns quickly — 200 with a non-terminal
	// state, NOT an error and NOT completion.
	start := time.Now()
	st, err := c.Status(ctx, target.ID, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("capped long-poll took %v", since)
	}
	if st.State == StateDone {
		t.Fatal("queued job cannot be done")
	}

	// Release the worker after several cap windows; WaitDone must survive
	// every early return in between and only come back terminal.
	release := 10 * maxStatusWait
	go func() {
		time.Sleep(release)
		c.Cancel(context.Background(), blocker.ID)
	}()
	start = time.Now()
	end, err := c.WaitDone(ctx, target.ID)
	if err != nil {
		t.Fatal(err)
	}
	if end.State != StateDone {
		t.Fatalf("target finished %s (%s)", end.State, end.Error)
	}
	if waited := time.Since(start); waited < release {
		t.Fatalf("WaitDone returned after %v, before the worker was even free (%v) — it treated an early return as completion", waited, release)
	}
}
