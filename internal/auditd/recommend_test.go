package auditd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// recommendRecords is a six-server pool: two per ToR, ToRs uplinked through
// shared cores, disks in three shared batches — the same correlated traps
// as the placement package's fixtures, as wire records.
func recommendRecords() []RecordWire {
	var out []RecordWire
	tors := []string{"ToR1", "ToR1", "ToR2", "ToR2", "ToR3", "ToR3"}
	batches := []string{"batch-0", "batch-1", "batch-2", "batch-0", "batch-1", "batch-2"}
	names := []string{"n1", "n2", "n3", "n4", "n5", "n6"}
	for i, name := range names {
		out = append(out,
			RecordWire{Kind: "network", Src: name, Dst: "Internet", Route: []string{tors[i], "Core1"}},
			RecordWire{Kind: "network", Src: name, Dst: "Internet", Route: []string{tors[i], "Core2"}},
			RecordWire{Kind: "hardware", HW: name, Type: "Disk", Dep: batches[i]},
		)
	}
	return out
}

func recommendRequest(title string) *RecommendRequest {
	return &RecommendRequest{
		Title:    title,
		Records:  recommendRecords(),
		Replicas: 2,
		TopK:     3,
		Strategy: "exact",
	}
}

// TestRecommendEndToEnd drives submit → poll → result over real HTTP and
// pins the ranking JSON to a golden file shared with scripts/smoke.sh.
func TestRecommendEndToEnd(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	st, err := c.Recommend(ctx, recommendRequest("recommend smoke"))
	if err != nil {
		t.Fatal(err)
	}
	end, err := c.WaitDone(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if end.State != StateDone {
		t.Fatalf("job finished %s (%s)", end.State, end.Error)
	}
	res, err := c.RecommendResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	compareRecommendGolden(t, res, filepath.Join("testdata", "e2e_recommend_golden.json"))

	// Structure sanity on top of the golden: the optimum crosses ToRs and
	// disk batches, so no size-1 risk group survives.
	if res.Strategy != "exact" || res.TotalCandidates != 15 || res.Evaluated != 15 {
		t.Fatalf("unexpected search shape: %+v", res)
	}
	if len(res.Rankings) != 3 {
		t.Fatalf("want top-3, got %d", len(res.Rankings))
	}
	if top := res.Rankings[0]; top.Unexpected != 0 || top.SizeVector[0] != 0 {
		t.Fatalf("optimum must have no size-1 RGs: %+v", top)
	}

	// An identical resubmission is a content-addressed cache hit carrying
	// its own title.
	again, err := c.Recommend(ctx, recommendRequest("same search, new title"))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.State != StateDone || again.CacheKey != st.CacheKey {
		t.Fatalf("identical recommendation must hit the cache: %+v", again)
	}
	res2, err := c.RecommendResult(ctx, again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Title != "same search, new title" {
		t.Fatalf("per-job title lost: %q", res2.Title)
	}

	// Recommendation counters surface in /metrics.
	text, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "auditd_recommendations_total 2") {
		t.Errorf("metrics missing recommendation counter:\n%s", text)
	}
}

// TestRecommendAndAuditKeysDisjoint: a recommendation and an audit over the
// same records must never collide in the content-addressed cache.
func TestRecommendAndAuditKeysDisjoint(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)

	rec, err := s.Recommend(recommendRequest("r"))
	if err != nil {
		t.Fatal(err)
	}
	aud, err := s.Submit(&SubmitRequest{
		Records:     recommendRecords(),
		Deployments: []DeploymentWire{{Name: "d", Servers: []string{"n1", "n2"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rec.CacheKey == aud.CacheKey {
		t.Fatal("audit and recommendation cache keys collide")
	}
	waitDone(t, s, rec.ID)
	waitDone(t, s, aud.ID)
	// The typed report accessor refuses the recommendation job.
	if _, err := s.Report(rec.ID); httpStatus(err) != 409 {
		t.Fatalf("Report on a recommendation job: want 409, got %v", err)
	}
	if _, err := s.Report(aud.ID); err != nil {
		t.Fatalf("Report on the audit job: %v", err)
	}
}

// TestRecommendCancellation: canceling an in-flight recommendation releases
// its worker — the placement search observes the context through its
// batch-parallel scorers.
func TestRecommendCancellation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer shutdown(t, s)

	slow := recommendRequest("slow")
	slow.Algorithm = "failure-sampling"
	slow.Rounds = 2_000_000_000 // can only end by cancellation
	st, err := s.Recommend(slow)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		js, err := s.Status(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if js.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("recommendation never started: %+v", js)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	quick := mustSubmit(t, s, quickRequest("after-cancel"))
	if end := waitDone(t, s, quick.ID); end.State != StateDone {
		t.Fatalf("post-cancel job finished %s (%s)", end.State, end.Error)
	}
}

// TestIngestThenRecommend: records pushed through /v1/depdb are immediately
// searchable — the "recommend against freshly pushed data" flow.
func TestIngestThenRecommend(t *testing.T) {
	s := New(Config{Workers: 2}) // note: no preloaded DB
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Before any ingest, a record-less recommendation has nothing to run on.
	empty := &RecommendRequest{Replicas: 2}
	if _, err := c.Recommend(ctx, empty); httpStatus(err) != 400 {
		t.Fatalf("recommend without data: want 400, got %v", err)
	}

	records := recommendRecords()
	resp, err := c.Ingest(ctx, records[:9]) // n1..n3
	if err != nil {
		t.Fatal(err)
	}
	if resp.Added != 9 || resp.Total != 9 || resp.Fingerprint == "" {
		t.Fatalf("first ingest: %+v", resp)
	}
	resp2, err := c.Ingest(ctx, records[9:]) // n4..n6
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Added != 9 || resp2.Total != 18 || resp2.Fingerprint == resp.Fingerprint {
		t.Fatalf("second ingest must grow the fingerprint: %+v", resp2)
	}

	// A pool-less recommendation resolves its candidates from the ingested
	// subjects and matches the inline-records run bit for bit.
	st, err := c.Recommend(ctx, &RecommendRequest{Replicas: 2, TopK: 3, Strategy: "exact"})
	if err != nil {
		t.Fatal(err)
	}
	if end, err := c.WaitDone(ctx, st.ID); err != nil || end.State != StateDone {
		t.Fatalf("ingested recommend: %v %+v", err, end)
	}
	res, err := c.RecommendResult(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	inline, err := c.Recommend(ctx, recommendRequest("inline"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitDone(ctx, inline.ID); err != nil {
		t.Fatal(err)
	}
	resInline, err := c.RecommendResult(ctx, inline.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rankings) != len(resInline.Rankings) {
		t.Fatalf("ingested vs inline rankings differ in length")
	}
	for i := range res.Rankings {
		a, b := res.Rankings[i], resInline.Rankings[i]
		if strings.Join(a.Nodes, ",") != strings.Join(b.Nodes, ",") {
			t.Fatalf("rank %d: ingested %v vs inline %v", i+1, a.Nodes, b.Nodes)
		}
	}

	// Ingest rejections: empty and malformed payloads, all-or-nothing.
	if _, err := c.Ingest(ctx, nil); httpStatus(err) != 400 {
		t.Fatalf("empty ingest: want 400, got %v", err)
	}
	bad := []RecordWire{
		{Kind: "network", Src: "ok", Dst: "Internet", Route: []string{"x"}},
		{Kind: "router"},
	}
	if _, err := c.Ingest(ctx, bad); httpStatus(err) != 400 {
		t.Fatalf("malformed ingest: want 400, got %v", err)
	}
	after, err := c.Ingest(ctx, records[:3])
	if err != nil {
		t.Fatal(err)
	}
	// 18 + 3 re-ingested records (depdb stores duplicates; the fingerprint
	// canonicalizes) — the rejected batch must not have left partial rows.
	if after.Total != 21 {
		t.Fatalf("rejected batch leaked rows: total=%d, want 21", after.Total)
	}
}

// compareRecommendGolden pins a recommendation's JSON to a golden file with
// the elapsed time zeroed (the only nondeterministic field).
func compareRecommendGolden(t *testing.T, res *RecommendResponse, golden string) {
	t.Helper()
	norm := *res
	norm.ElapsedNS = 0
	got, err := json.MarshalIndent(&norm, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/auditd -update`)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("recommendation drifted from %s.\ngot:\n%s", golden, got)
	}
}
