package auditd

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/placement"
	"indaas/internal/report"
	"indaas/internal/sia"
)

// deltaRecords builds records for servers s1..s4: per-server routes, disks
// and software, so each server is its own fault-graph cone.
func deltaRecords() []RecordWire {
	var out []RecordWire
	for i := 1; i <= 4; i++ {
		s := fmt.Sprintf("s%d", i)
		out = append(out, WireRecords([]deps.Record{
			deps.NewNetwork(s, "Internet", "ToR"+s, "Core1"),
			deps.NewNetwork(s, "Internet", "ToR"+s, "Core2"),
			deps.NewHardware(s, "Disk", s+"-disk"),
			deps.NewSoftware("nginx", s, "libc6", "libssl3"),
		})...)
	}
	return out
}

// deltaAuditRequest audits two deployments with disjoint server sets, so an
// ingest can dirty one deployment without touching the other.
func deltaAuditRequest(title string) *SubmitRequest {
	return &SubmitRequest{
		Title: title,
		Deployments: []DeploymentWire{
			{Name: "front", Servers: []string{"s1", "s2"}},
			{Name: "back", Servers: []string{"s3", "s4"}},
		},
	}
}

func mustIngest(t *testing.T, s *Server, records []RecordWire) IngestResponse {
	t.Helper()
	resp, err := s.Ingest(&IngestRequest{Records: records})
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// auditsJSON renders a report's audits with elapsed times zeroed — the
// byte-for-byte comparison form (titles are per-job and excluded).
func auditsJSON(t *testing.T, rep *report.Report) string {
	t.Helper()
	audits := append([]report.DeploymentAudit(nil), rep.Audits...)
	for i := range audits {
		audits[i].Elapsed = 0
	}
	blob, err := json.Marshal(audits)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestDeltaHitAfterUnrelatedIngest is the headline acceptance case: one
// ingested record that no audited deployment depends on must not force a
// recomputation — the re-submitted audit is answered instantly from the
// lineage, byte for byte.
func TestDeltaHitAfterUnrelatedIngest(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	mustIngest(t, s, deltaRecords())

	first := mustSubmit(t, s, deltaAuditRequest("cold"))
	waitDone(t, s, first.ID)
	rep1, err := s.Report(first.ID)
	if err != nil {
		t.Fatal(err)
	}

	// One NIC record about a server no deployment audits.
	mustIngest(t, s, []RecordWire{{Kind: "hardware", HW: "spare-9", Type: "NIC", Dep: "spare-9-X520"}})

	second := mustSubmit(t, s, deltaAuditRequest("warm"))
	if second.State != StateDone || !second.DeltaHit || second.Cached {
		t.Fatalf("resubmission after unrelated ingest = %+v, want an instant delta hit", second)
	}
	if second.CacheKey == first.CacheKey {
		t.Fatal("the ingest must have changed the content address")
	}
	if len(second.DirtySubjects) != 0 {
		t.Fatalf("unrelated ingest reported dirty subjects %v", second.DirtySubjects)
	}
	rep2, err := s.Report(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if auditsJSON(t, rep1) != auditsJSON(t, rep2) {
		t.Fatal("delta-served report differs from the original")
	}
	st := s.Stats()
	if st.Computations != 1 || st.DeltaHits != 1 || st.DeltaPartials != 0 {
		t.Fatalf("stats after delta hit: %+v", st)
	}
	// The adopted result is a first-class cache entry: a third identical
	// submission is a plain content-addressed hit.
	third := mustSubmit(t, s, deltaAuditRequest("again"))
	if !third.Cached || third.DeltaHit {
		t.Fatalf("third submission = %+v, want a plain cache hit", third)
	}
}

// TestDeltaPartialRecomputesOnlyDirty: an ingest touching one deployment's
// server re-audits that deployment only, splices the other from the
// ancestor, and still produces exactly what a full recompute would.
func TestDeltaPartialRecomputesOnlyDirty(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	records := deltaRecords()
	mustIngest(t, s, records)

	first := mustSubmit(t, s, deltaAuditRequest("cold"))
	waitDone(t, s, first.ID)

	dirtyRec := RecordWire{Kind: "software", Pgm: "etcd", HW: "s3", Deps: []string{"libc6"}}
	mustIngest(t, s, []RecordWire{dirtyRec})

	second := mustSubmit(t, s, deltaAuditRequest("delta"))
	end := waitDone(t, s, second.ID)
	if end.State != StateDone || !end.DeltaHit {
		t.Fatalf("partial delta job = %+v", end)
	}
	if !reflect.DeepEqual(end.DirtySubjects, []string{"s3"}) {
		t.Fatalf("DirtySubjects = %v, want [s3]", end.DirtySubjects)
	}
	st := s.Stats()
	if st.Computations != 2 || st.DeltaPartials != 1 || st.DeltaHits != 0 || st.DeltaDirtySubjects != 1 {
		t.Fatalf("stats after partial delta: %+v", st)
	}

	// Ground truth: a full recompute over the same post-ingest records.
	got, err := s.Report(second.ID)
	if err != nil {
		t.Fatal(err)
	}
	db := depdb.New()
	for _, w := range append(records, dirtyRec) {
		r, err := w.Record()
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	want, err := sia.AuditDeployments(db.Snapshot(), "", []sia.GraphSpec{
		{Deployment: "front", Servers: []string{"s1", "s2"}},
		{Deployment: "back", Servers: []string{"s3", "s4"}},
	}, sia.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if auditsJSON(t, got) != auditsJSON(t, want) {
		t.Fatalf("spliced report diverges from full recompute:\n got %s\nwant %s", auditsJSON(t, got), auditsJSON(t, want))
	}
}

// TestDeltaDifferentialRandomized is the property test: across a randomized
// ingest sequence — batches that hit audited servers, miss them, or both —
// every delta-served report must equal the full recompute byte for byte.
func TestDeltaDifferentialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := New(Config{Workers: 2})
	defer shutdown(t, s)

	var all []RecordWire
	ingest := func(batch []RecordWire) {
		mustIngest(t, s, batch)
		all = append(all, batch...)
	}
	ingest(deltaRecords())

	specs := []sia.GraphSpec{
		{Deployment: "front", Servers: []string{"s1", "s2"}},
		{Deployment: "back", Servers: []string{"s3", "s4"}},
	}
	randomBatch := func(i int) []RecordWire {
		var batch []RecordWire
		n := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			subj := fmt.Sprintf("u%d", rng.Intn(5)+1) // unrelated machine
			if rng.Intn(2) == 0 {
				subj = fmt.Sprintf("s%d", rng.Intn(4)+1) // audited server
			}
			switch rng.Intn(3) {
			case 0:
				batch = append(batch, RecordWire{Kind: "network", Src: subj, Dst: "Internet",
					Route: []string{fmt.Sprintf("ToR-x%d-%d", i, j), "Core1"}})
			case 1:
				batch = append(batch, RecordWire{Kind: "hardware", HW: subj, Type: "NIC",
					Dep: fmt.Sprintf("%s-nic-%d-%d", subj, i, j)})
			default:
				batch = append(batch, RecordWire{Kind: "software", Pgm: fmt.Sprintf("svc%d%d", i, j),
					HW: subj, Deps: []string{"libc6"}})
			}
		}
		return batch
	}

	for i := 0; i < 15; i++ {
		ingest(randomBatch(i))
		st := mustSubmit(t, s, deltaAuditRequest(fmt.Sprintf("round-%d", i)))
		end := waitDone(t, s, st.ID)
		if end.State != StateDone {
			t.Fatalf("round %d finished %s (%s)", i, end.State, end.Error)
		}
		got, err := s.Report(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		db := depdb.New()
		for _, w := range all {
			r, err := w.Record()
			if err != nil {
				t.Fatal(err)
			}
			if err := db.Put(r); err != nil {
				t.Fatal(err)
			}
		}
		want, err := sia.AuditDeployments(db.Snapshot(), "", specs, sia.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if auditsJSON(t, got) != auditsJSON(t, want) {
			t.Fatalf("round %d: delta result diverges from full recompute", i)
		}
	}
	st := s.Stats()
	if st.DeltaHits == 0 || st.DeltaPartials == 0 {
		t.Fatalf("randomized run exercised no delta paths: %+v", st)
	}
	// Partial jobs run a (reduced) computation; only whole-result adoptions
	// and cache hits skip the queue entirely.
	if st.DeltaHits+st.CacheHits+st.Computations != st.Submitted {
		t.Fatalf("job accounting inconsistent: %+v", st)
	}
	if st.DeltaPartials > st.Computations {
		t.Fatalf("more partials than computations: %+v", st)
	}
}

// TestRecommendDeltaSeedsScores: after an ingest that touches one pool node,
// a repeated recommendation re-audits only the candidates containing that
// node; after an unrelated ingest it does not search at all.
func TestRecommendDeltaSeedsScores(t *testing.T) {
	s := New(Config{Workers: 2})
	defer shutdown(t, s)
	mustIngest(t, s, recommendRecords()) // n1..n6

	// The pool is pinned explicitly: a record-less pool resolves from the
	// database's subjects, so ingesting ANY new machine would legitimately
	// change the search space (and thus the lineage identity).
	pool := []string{"n1", "n2", "n3", "n4", "n5", "n6"}
	req := func(title string) *RecommendRequest {
		return &RecommendRequest{Title: title, Nodes: pool, Replicas: 2, TopK: 3, Strategy: "exact"}
	}
	first, err := s.Recommend(req("cold"))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, first.ID)
	res1 := mustRecommendResult(t, s, first.ID)
	if res1.Evaluated != 15 {
		t.Fatalf("cold search evaluated %d, want 15", res1.Evaluated)
	}

	// Unrelated ingest → whole-result adoption.
	mustIngest(t, s, []RecordWire{{Kind: "hardware", HW: "spare-1", Type: "Disk", Dep: "spare-disk"}})
	second, err := s.Recommend(req("adopted"))
	if err != nil {
		t.Fatal(err)
	}
	if second.State != StateDone || !second.DeltaHit || len(second.DirtySubjects) != 0 {
		t.Fatalf("recommend after unrelated ingest = %+v, want instant delta hit", second)
	}

	// n1 grows a dependency → only the five n1-containing candidates move.
	mustIngest(t, s, []RecordWire{{Kind: "software", Pgm: "etcd", HW: "n1", Deps: []string{"libc6"}}})
	third, err := s.Recommend(req("partial"))
	if err != nil {
		t.Fatal(err)
	}
	end := waitDone(t, s, third.ID)
	if !end.DeltaHit || !reflect.DeepEqual(end.DirtySubjects, []string{"n1"}) {
		t.Fatalf("partial recommend = %+v", end)
	}
	res3 := mustRecommendResult(t, s, third.ID)
	if res3.Evaluated != 5 {
		t.Fatalf("partial delta evaluated %d candidates, want the 5 containing n1", res3.Evaluated)
	}

	// Ground truth: a full search over an equivalent local database.
	db := depdb.New()
	for _, w := range append(append([]RecordWire(nil), recommendRecords()...),
		RecordWire{Kind: "hardware", HW: "spare-1", Type: "Disk", Dep: "spare-disk"},
		RecordWire{Kind: "software", Pgm: "etcd", HW: "n1", Deps: []string{"libc6"}}) {
		r, err := w.Record()
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Put(r); err != nil {
			t.Fatal(err)
		}
	}
	full, err := placement.Search(context.Background(), db,
		placement.Request{Nodes: pool, Replicas: 2, TopK: 3, Strategy: placement.Exact})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Top) != len(res3.Rankings) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(full.Top), len(res3.Rankings))
	}
	for i := range full.Top {
		if !reflect.DeepEqual(full.Top[i].Nodes, res3.Rankings[i].Nodes) {
			t.Fatalf("rank %d: delta %v vs full %v", i+1, res3.Rankings[i].Nodes, full.Top[i].Nodes)
		}
	}
}

func mustRecommendResult(t *testing.T, s *Server, id string) *RecommendResponse {
	t.Helper()
	res, err := s.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := res.(*RecommendResponse)
	if !ok {
		t.Fatalf("job %s result is %T", id, res)
	}
	return resp
}

// TestDeltaSurvivesRestart: the lineage index is in-memory, but a restarted
// durable daemon re-anchors it from its first disk hit — so ingest-then-
// re-audit keeps delta-hitting across restarts.
func TestDeltaSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	s1 := New(Config{Workers: 1, Store: st1})
	mustIngest(t, s1, deltaRecords())
	first := mustSubmit(t, s1, deltaAuditRequest("pre-restart"))
	waitDone(t, s1, first.ID)
	gracefulShutdown(t, s1)
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir)
	db, err := RestoreDB(st2)
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, DB: db, Store: st2})
	defer gracefulShutdown(t, s2)

	// First post-restart submission: a disk hit that anchors the lineage.
	anchor := mustSubmit(t, s2, deltaAuditRequest("anchor"))
	if anchor.State != StateDone || !anchor.DiskHit {
		t.Fatalf("anchor = %+v, want a disk hit", anchor)
	}
	// Ingest-then-resubmit must now delta-hit with zero computations.
	mustIngest(t, s2, []RecordWire{{Kind: "hardware", HW: "spare-2", Type: "NIC", Dep: "spare-2-nic"}})
	after := mustSubmit(t, s2, deltaAuditRequest("post-restart"))
	if after.State != StateDone || !after.DeltaHit {
		t.Fatalf("post-restart delta = %+v", after)
	}
	if got := s2.Stats().Computations; got != 0 {
		t.Fatalf("restarted daemon ran %d computations, want 0", got)
	}
}
