package auditd

import (
	"errors"
	"fmt"

	"indaas/internal/depdb"
	"indaas/internal/deps"
)

// IngestRequest is the body of POST /v1/depdb: dependency records to append
// to the server's database.
type IngestRequest struct {
	Records []RecordWire `json:"records"`
}

// IngestResponse acknowledges an ingest with the database's new canonical
// fingerprint — the content-address component audits and recommendations
// against the server database will carry, so a client can tell exactly
// which data a later cached result was computed from.
type IngestResponse struct {
	// Added is the number of records stored by this request.
	Added int `json:"added"`
	// Total is the database's record count after the ingest.
	Total int `json:"total"`
	// Fingerprint is the canonical content hash of the database snapshot
	// registered by this ingest.
	Fingerprint string `json:"fingerprint"`
}

// Ingest validates and appends dependency records to the server's database,
// registering a fresh snapshot. All records are stored or none. Jobs
// submitted earlier keep auditing the snapshot they resolved at submission
// time; jobs submitted after see the grown database (and a new cache-key
// fingerprint).
func (s *Server) Ingest(req *IngestRequest) (IngestResponse, error) {
	if len(req.Records) == 0 {
		return IngestResponse{}, &statusErr{code: 400, err: errors.New("ingest has no records")}
	}
	records := make([]deps.Record, 0, len(req.Records))
	for i, w := range req.Records {
		r, err := w.Record()
		if err != nil {
			return IngestResponse{}, &statusErr{code: 400, err: fmt.Errorf("record %d: %w", i, err)}
		}
		records = append(records, r)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return IngestResponse{}, &statusErr{code: 503, err: errors.New("service is shutting down")}
	}
	if s.db == nil {
		s.db = depdb.New()
	}
	db := s.db
	s.mu.Unlock()

	// Put is atomic (all records or none) and safe against concurrent
	// snapshot readers; no need to hold the job-table lock across it.
	if err := db.Put(records...); err != nil {
		return IngestResponse{}, &statusErr{code: 400, err: err}
	}
	s.m.ingestedRecords.Add(int64(len(records)))
	snap := db.Snapshot()
	return IngestResponse{
		Added:       len(records),
		Total:       snap.Len(),
		Fingerprint: snap.Fingerprint(),
	}, nil
}
