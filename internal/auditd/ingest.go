package auditd

import (
	"errors"
	"fmt"
	"time"

	"indaas/internal/depdb"
	"indaas/internal/deps"
)

// IngestRequest is the body of POST /v1/depdb: dependency records to append
// to the server's database.
type IngestRequest struct {
	Records []RecordWire `json:"records"`
	// Replicated marks an ingest pushed by a cluster peer's replication hook
	// rather than originated by a client: it bypasses the admission rate
	// limit (the originating node already admitted it) and is not replicated
	// onward. Set by the HTTP layer from the replication header; never by
	// clients, and excluded from JSON.
	Replicated bool `json:"-"`
}

// IngestResponse acknowledges an ingest with the database's new canonical
// fingerprint — the content-address component audits and recommendations
// against the server database will carry, so a client can tell exactly
// which data a later cached result was computed from.
type IngestResponse struct {
	// Added is the number of records stored by this request.
	Added int `json:"added"`
	// Total is the database's record count after the ingest.
	Total int `json:"total"`
	// Fingerprint is the canonical content hash of the database snapshot
	// registered by this ingest. Concurrent ingests may commit as one group
	// (see the committer below); they then share the group's post-commit
	// fingerprint.
	Fingerprint string `json:"fingerprint"`
	// Durable reports whether the batch was persisted before being
	// acknowledged. False on a memory-only service, and on a durable one
	// while it serves degraded: the records are live but will not survive a
	// restart until the store recovers and a later ingest rebuilds the chain.
	Durable bool `json:"durable"`
}

// ingestWaiter is one admitted ingest parked on the committer: its records,
// and the response filled in when the group it joined commits.
type ingestWaiter struct {
	records []deps.Record
	// wire keeps the records' wire form for Config.ReplicateHook; replica
	// marks a peer-replicated ingest that must not be replicated onward.
	wire    []RecordWire
	replica bool
	done    chan struct{} // closed once resp/err are set
	resp    IngestResponse
	err     error
}

// Ingest validates and appends dependency records to the server's database,
// registering a fresh snapshot. All records are stored or none. Jobs
// submitted earlier keep auditing the snapshot they resolved at submission
// time; jobs submitted after see the grown database (and a new cache-key
// fingerprint).
//
// Durability is group-committed: admitted batches are handed to a single
// committer goroutine that folds every batch currently waiting into ONE
// snapshot-chain segment and ONE pointer update — two fsyncs per group
// instead of two per request — before any of them is acknowledged. A lone
// ingest on an idle daemon forms a group of one and behaves exactly as
// before; under a churn storm the fsync cost amortizes across the group,
// which is what lets a single-disk daemon absorb ~10k ingests/sec. An
// acknowledged ingest still survives a hard kill, and the request still
// costs O(batch) work no matter how large the database has grown.
//
// Admission is rate-limited when Config.IngestRate is set: a batch that
// outruns the token bucket is rejected with 429 and a Retry-After quoting
// when the bucket will have refilled, which the Client's backoff honors.
func (s *Server) Ingest(req *IngestRequest) (IngestResponse, error) {
	if len(req.Records) == 0 {
		return IngestResponse{}, &statusErr{code: 400, err: errors.New("ingest has no records")}
	}
	records := make([]deps.Record, 0, len(req.Records))
	for i, w := range req.Records {
		r, err := w.Record()
		if err != nil {
			return IngestResponse{}, &statusErr{code: 400, err: fmt.Errorf("record %d: %w", i, err)}
		}
		records = append(records, r)
	}

	if !req.Replicated {
		// Replicated ingests bypass admission: the originating node already
		// charged its own rate limit, and dropping a replica here would let
		// peer fingerprints diverge under load.
		if ok, retryAfter := s.ingestLimit.take(float64(len(records))); !ok {
			s.m.ingestThrottled.Add(1)
			return IngestResponse{}, &statusErr{
				code:       429,
				retryAfter: retryAfter,
				err:        fmt.Errorf("ingest rate limit exceeded, retry in %v (no records ingested)", retryAfter),
			}
		}
	}

	// The closed check and the in-flight count share one critical section:
	// after Shutdown flips closed, no new waiter can slip past the
	// ingestWG.Wait that precedes closing the channel.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return IngestResponse{}, &statusErr{code: 503, err: errors.New("service is shutting down")}
	}
	s.ingestWG.Add(1)
	s.mu.Unlock()

	w := &ingestWaiter{records: records, wire: req.Records, replica: req.Replicated, done: make(chan struct{})}
	s.ingestCh <- w
	s.ingestWG.Done()
	<-w.done
	return w.resp, w.err
}

// maxIngestGroup caps how many waiters one commit group folds together,
// bounding both the segment size and the latency of the first waiter.
const maxIngestGroup = 1024

// ingestCommitter is the single goroutine that owns ingest commits. It
// blocks for the next admitted batch, greedily drains everything else
// already waiting, and commits the lot as one group. It exits when Shutdown
// closes the channel — after committing whatever was already admitted.
func (s *Server) ingestCommitter() {
	defer s.wg.Done()
	for {
		w, ok := <-s.ingestCh
		if !ok {
			return
		}
		group := []*ingestWaiter{w}
		open := true
	drain:
		for len(group) < maxIngestGroup {
			select {
			case w2, ok2 := <-s.ingestCh:
				if !ok2 {
					open = false
					break drain
				}
				group = append(group, w2)
			default:
				break drain
			}
		}
		s.commitGroup(group)
		if !open {
			return
		}
	}
}

// commitGroup makes one group of admitted batches live: persisted (one
// segment + one pointer flip), committed to the in-memory database, watch
// subscriptions notified, and every waiter answered. On a persist failure
// the memory database is untouched and every waiter gets 503 — each client
// can safely retry, exactly as with per-request commits.
func (s *Server) commitGroup(group []*ingestWaiter) {
	commitStart := time.Now()
	n := 0
	for _, w := range group {
		n += len(w.records)
	}
	records := make([]deps.Record, 0, n)
	for _, w := range group {
		records = append(records, w.records...)
	}
	fail := func(code int, err error) {
		for _, w := range group {
			w.err = &statusErr{code: code, err: err}
			close(w.done)
		}
	}

	s.mu.Lock()
	if s.closed && s.db == nil {
		// Shutdown raced the admission of the very first ingest; refuse
		// rather than create a database nobody will serve.
		s.mu.Unlock()
		fail(503, errors.New("service is shutting down"))
		return
	}
	if s.db == nil {
		s.db = depdb.New()
	}
	db := s.db
	s.mu.Unlock()

	// ingestMu serializes the Put with its segment persistence (snapMeta is
	// guarded by it). Put itself is atomic (all records or none) and safe
	// against concurrent snapshot readers; the job-table lock is not held
	// across it.
	//
	// On a durable service, persist the group BEFORE committing to the live
	// database: a failed disk write then leaves the memory DB untouched, so
	// the clients' retries cannot duplicate records (depdb.Put appends
	// blindly and duplicates change the canonical fingerprint). Only the
	// group (and, the first time, the pre-existing records) is written —
	// never a copy of the whole database per request. While the breaker is
	// open the group is committed to memory only and the chain is marked
	// stale (snapDirty), so the next durable ingest rebuilds it in full.
	s.ingestMu.Lock()
	durable := false
	if s.store != nil {
		if s.breaker.allow() {
			if err := s.persistIngestLocked(db, records); err != nil {
				s.storeFailure(fmt.Sprintf("persisting ingest of %d records", len(records)), err)
				s.ingestMu.Unlock()
				fail(503, fmt.Errorf("snapshot not persisted, no records ingested (safe to retry): %w", err))
				return
			}
			s.storeOK()
			durable = true
		} else {
			s.m.storeSkipped.Add(1)
		}
	}
	if err := db.Put(records...); err != nil {
		// Unreachable after the per-record validation above, but never
		// silently diverge memory from the persisted snapshot chain.
		s.ingestMu.Unlock()
		fail(500, err)
		return
	}
	if s.store != nil && !durable {
		s.snapDirty = true
	}
	s.m.ingestedRecords.Add(int64(len(records)))
	s.m.ingestGroups.Add(1)
	snap := db.Snapshot()
	s.ingestMu.Unlock()

	// Mark watch subscriptions dirty BEFORE acknowledging any waiter: by the
	// time a pusher's ingest returns, the re-audit it owes is already owed.
	s.notifyWatchers(records)

	// Replicate locally originated records to cluster peers BEFORE
	// acknowledging: when an ingest through this node returns, the fleet's
	// fingerprints have converged (the hook retries/marks peers internally).
	// Peer-replicated records are never pushed onward — replication is a
	// star from the originating node, so there is no echo.
	if hook := s.cfg.ReplicateHook; hook != nil {
		var originated []RecordWire
		for _, w := range group {
			if !w.replica {
				originated = append(originated, w.wire...)
			}
		}
		if len(originated) > 0 {
			hook(originated)
		}
	}

	for _, w := range group {
		w.resp = IngestResponse{
			Added:       len(w.records),
			Total:       snap.Len(),
			Fingerprint: snap.Fingerprint(),
			Durable:     durable,
		}
		close(w.done)
	}
	s.m.ingestCommit.Observe(time.Since(commitStart))
}
