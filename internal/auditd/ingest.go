package auditd

import (
	"errors"
	"fmt"

	"indaas/internal/depdb"
	"indaas/internal/deps"
)

// IngestRequest is the body of POST /v1/depdb: dependency records to append
// to the server's database.
type IngestRequest struct {
	Records []RecordWire `json:"records"`
}

// IngestResponse acknowledges an ingest with the database's new canonical
// fingerprint — the content-address component audits and recommendations
// against the server database will carry, so a client can tell exactly
// which data a later cached result was computed from.
type IngestResponse struct {
	// Added is the number of records stored by this request.
	Added int `json:"added"`
	// Total is the database's record count after the ingest.
	Total int `json:"total"`
	// Fingerprint is the canonical content hash of the database snapshot
	// registered by this ingest.
	Fingerprint string `json:"fingerprint"`
	// Durable reports whether the batch was persisted before being
	// acknowledged. False on a memory-only service, and on a durable one
	// while it serves degraded: the records are live but will not survive a
	// restart until the store recovers and a later ingest rebuilds the chain.
	Durable bool `json:"durable"`
}

// Ingest validates and appends dependency records to the server's database,
// registering a fresh snapshot. All records are stored or none. Jobs
// submitted earlier keep auditing the snapshot they resolved at submission
// time; jobs submitted after see the grown database (and a new cache-key
// fingerprint). On a durable service the batch is persisted — as one
// snapshot-chain segment, with the post-ingest fingerprint previewed via
// depdb.FingerprintWith — before the response is written: an acknowledged
// ingest survives a hard kill, and the request costs O(batch) work no
// matter how large the database has grown.
func (s *Server) Ingest(req *IngestRequest) (IngestResponse, error) {
	if len(req.Records) == 0 {
		return IngestResponse{}, &statusErr{code: 400, err: errors.New("ingest has no records")}
	}
	records := make([]deps.Record, 0, len(req.Records))
	for i, w := range req.Records {
		r, err := w.Record()
		if err != nil {
			return IngestResponse{}, &statusErr{code: 400, err: fmt.Errorf("record %d: %w", i, err)}
		}
		records = append(records, r)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return IngestResponse{}, &statusErr{code: 503, err: errors.New("service is shutting down")}
	}
	if s.db == nil {
		s.db = depdb.New()
	}
	db := s.db
	s.mu.Unlock()

	// ingestMu serializes the Put with its segment persistence: without it
	// two concurrent ingests could append segments under the same index and
	// leave the durable chain missing one of the batches. Put itself is
	// atomic (all records or none) and safe against concurrent snapshot
	// readers; the job-table lock is not held across it.
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()

	// On a durable service, persist the batch BEFORE committing to the live
	// database: a failed disk write then leaves the memory DB untouched, so
	// the client's retry cannot duplicate records (depdb.Put appends blindly
	// and duplicates change the canonical fingerprint). Only the batch (and,
	// the first time, the pre-existing records) is written — never a copy of
	// the whole database per request. While the breaker is open the batch is
	// committed to memory only and the chain is marked stale (snapDirty), so
	// the next durable ingest rebuilds it in full.
	durable := false
	if s.store != nil {
		if s.breaker.allow() {
			if err := s.persistIngestLocked(db, records); err != nil {
				s.storeFailure(fmt.Sprintf("persisting ingest of %d records", len(records)), err)
				return IngestResponse{}, &statusErr{code: 503, err: fmt.Errorf("snapshot not persisted, no records ingested (safe to retry): %w", err)}
			}
			s.storeOK()
			durable = true
		} else {
			s.m.storeSkipped.Add(1)
		}
	}
	if err := db.Put(records...); err != nil {
		// Unreachable after the per-record validation above, but never
		// silently diverge memory from the persisted snapshot chain.
		return IngestResponse{}, &statusErr{code: 500, err: err}
	}
	if s.store != nil && !durable {
		s.snapDirty = true
	}
	s.m.ingestedRecords.Add(int64(len(records)))
	snap := db.Snapshot()
	return IngestResponse{
		Added:       len(records),
		Total:       snap.Len(),
		Fingerprint: snap.Fingerprint(),
		Durable:     durable,
	}, nil
}
