// Package auditd implements the INDaaS audit service: an HTTP/JSON daemon
// that runs structural independence audits (§4.1) as asynchronous jobs on a
// bounded worker pool, the always-on counterpart of the one-shot
// `indaas audit` CLI (§5, Fig. 5).
//
// Lifecycle of a job:
//
//	POST /v1/audits                submit → {id, state, cache_key}
//	POST /v1/recommend             submit a placement recommendation job
//	GET  /v1/audits/{id}           poll (or long-poll with ?wait=5s)
//	GET  /v1/audits/{id}/report    fetch the finished report/recommendation
//	DELETE /v1/audits/{id}         cancel; worker goroutines are released
//	POST /v1/depdb                 ingest dependency records → fingerprint
//	GET  /v1/cache/{key}           content-addressed result lookup
//	GET  /metrics                  queue depth, hit rate, worker utilization
//
// Work is deduplicated twice: completed reports live in a content-addressed
// LRU keyed by the canonical hash of (DepDB snapshot fingerprint, graph
// specs, algorithm options) — an identical audit from any client is a cache
// hit that never touches the queue — and identical jobs submitted while a
// computation is still in flight coalesce onto it instead of enqueueing
// again. Cancellation reference-counts coalesced jobs: a computation's
// context is canceled only when its last interested job is.
package auditd

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"indaas/internal/depdb"
	"indaas/internal/report"
	"indaas/internal/sia"
	"indaas/internal/store"
	"indaas/internal/telemetry"
	"indaas/internal/watch"
)

// Config tunes the service.
type Config struct {
	// Workers is the worker pool size (default: one per CPU).
	Workers int
	// QueueDepth bounds the number of computations waiting for a worker;
	// submissions beyond it are rejected with 429 (default 128).
	QueueDepth int
	// CacheEntries bounds the result cache (default 512; 0 keeps the
	// default, negative disables caching).
	CacheEntries int
	// DB is an optional preloaded dependency database, audited when a
	// request carries no inline records. Writers may keep inserting while
	// the service runs — /v1/depdb ingests land here too (a server started
	// without a DB creates one on first ingest): each job audits the
	// registered snapshot current at submission time.
	DB *depdb.DB
	// DefaultTimeout caps each job's run time — measured from the moment a
	// worker starts its computation, so queue wait does not count — when
	// the request does not set its own (default: none).
	DefaultTimeout time.Duration
	// JobRetention bounds the job table: once more jobs than this exist,
	// the oldest *terminal* jobs (and their report copies) are evicted, so
	// an always-on daemon does not grow without bound. Evicted jobs 404 on
	// status/report lookups; their reports stay reachable through
	// /v1/cache/{key} while cached. Default 4096; negative disables
	// eviction.
	JobRetention int
	// Store, when set, makes the service durable: completed results are
	// written through to disk before their jobs report done, in-memory cache
	// misses fall back to the disk tier, and /v1/depdb ingests persist the
	// snapshot so a restarted daemon serves the same fingerprints (see
	// RestoreDB). The caller owns the store's lifecycle and should close it
	// after Shutdown returns.
	Store *store.Store
	// StoreFailureThreshold is how many consecutive store-write failures trip
	// the daemon into degraded (memory-only) serving (default 3).
	StoreFailureThreshold int
	// StoreRetryInterval is how often a degraded daemon probes the store with
	// a real write to restore durable mode (default 15s).
	StoreRetryInterval time.Duration
	// RunHook, when set, runs before every computation's workload with the
	// computation's context and key; a non-nil error fails the computation.
	// It is the fault-injection seam: tests and `serve -chaos` use it to add
	// latency or errors to otherwise-instant workloads.
	RunHook func(ctx context.Context, key string) error
	// IngestRate caps /v1/depdb admission at roughly this many records per
	// second (token bucket; batches cost their record count). 0 disables the
	// limit. Over-limit requests get 429 with a Retry-After the Client's
	// backoff honors, so agent fleets self-pace through churn storms.
	IngestRate float64
	// IngestBurst is the token bucket's depth (default: one second's worth
	// of IngestRate).
	IngestBurst float64
	// WatchBuffer bounds each watch subscription's event queue (default 16).
	// A subscriber that falls a full buffer behind is evicted rather than
	// allowed to stall the daemon or grow memory without limit.
	WatchBuffer int
	// Now overrides the clock the store circuit breaker and the ingest rate
	// limiter use (tests only).
	Now func() time.Time

	// WrapExecutor, when set, wraps the in-process worker pool in another
	// Executor before the server starts using it. internal/cluster installs
	// its forwarding executor here; the wrapped local pool stays the
	// fallback. The returned executor owns the local one's lifecycle: its
	// Close/Wait must close and wait the pool.
	WrapExecutor func(local Executor) Executor
	// ExtraTiers are additional result tiers probed after memory and disk on
	// a cache miss — a clustered node adds a peer-cache tier here. Probed in
	// order without the server's lock held; tiers synchronize themselves.
	ExtraTiers []ResultTier
	// ReplicateHook, when set, is called by the ingest committer after a
	// commit group lands locally and before its waiters are acknowledged,
	// with the wire records of every locally originated (non-replicated)
	// ingest in the group. internal/cluster uses it to push the records to
	// peers so DepDB fingerprints converge across the fleet.
	ReplicateHook func(records []RecordWire)
	// ExtraMetrics, when set, is rendered after the built-in counters on
	// GET /metrics (Prometheus text exposition). internal/cluster appends
	// its auditd_cluster_* series here.
	ExtraMetrics func(w io.Writer)
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 128
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 512
	}
	if c.JobRetention == 0 {
		c.JobRetention = 4096
	}
	if c.WatchBuffer <= 0 {
		c.WatchBuffer = 16
	}
}

// Job states.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// computation is one unit of submitted work; several coalesced jobs may wait
// on it. The actual workload — an audit or a placement recommendation — is
// the Workload handed to the executor, so the queue, worker pool, cache and
// cancellation plumbing are shared across job kinds.
type computation struct {
	key     string
	ctx     context.Context
	cancel  context.CancelFunc
	jobs    []*job // attached jobs, including canceled ones
	refs    int    // attached jobs still interested in the result
	running bool   // the executor started it (guarded by Server.mu)
	// label names the computation in store-failure logs ("job <id>" of the
	// first attached job); set by compStarted, read only by compDone on the
	// same goroutine afterward.
	label string
	// reg, when set, publishes the completed result into the delta-audit
	// lineage index so later submissions against a grown database can reuse
	// it (see delta.go).
	reg *lineageReg
	// trace records the computation's pipeline phases; it is carried down to
	// sia/riskgroup/delta through the computation context. queueDone closes
	// the queue-wait phase when a worker picks the computation up. Both are
	// nil only for hit-path jobs, which never reach a worker.
	trace     *telemetry.Trace
	queueDone func()
}

// job is one client submission.
type job struct {
	id        string
	key       string
	title     string
	state     string
	cached    bool
	diskHit   bool // cached, and the copy came from the disk store
	coalesced bool
	// deltaHit marks a job answered through the delta-audit lineage;
	// dirtySubjects lists the re-audited servers (empty for a whole-result
	// adoption).
	deltaHit      bool
	dirtySubjects []string
	submitted     time.Time
	started       time.Time
	finished      time.Time
	err           error
	result        any           // per-job copy: own Title, shared payload
	done          chan struct{} // closed when the job reaches a terminal state
	comp          *computation  // nil once terminal or when served from cache
	// timeout is this job's run-time cap; the watchdog timer is armed when
	// the job enters StateRunning (also for jobs coalescing onto an
	// already-running computation), so each coalesced job keeps its own
	// deadline without imposing it on the shared computation.
	timeout time.Duration
	timer   *time.Timer
	// journaled means a job/<id> record is on disk and must be tombstoned
	// when the job settles (guarded by Server.mu; see journal.go).
	journaled bool
	// recovered marks a job replayed from the journal after a crash.
	recovered bool
	// trace is the attached computation's phase trace (shared by every
	// coalesced job); nil for jobs served from a cache/disk/delta hit, so
	// the hit path allocates nothing for telemetry.
	trace *telemetry.Trace
}

func (j *job) terminal() bool {
	return j.state == StateDone || j.state == StateFailed || j.state == StateCanceled
}

// Server is the audit service. Create with New, serve via Handler (any
// net/http server) and stop with Shutdown.
type Server struct {
	cfg     Config
	baseCtx context.Context
	stop    context.CancelFunc
	// exec runs every computation: the in-process worker pool, or whatever
	// Config.WrapExecutor put in front of it (a cluster router).
	exec Executor
	wg   sync.WaitGroup
	m    metrics
	// tiers is the result-tier probe chain: tiers[0] is always the memory
	// LRU (aliased as cache), then disk when a store is configured, then
	// Config.ExtraTiers.
	tiers []ResultTier

	mu       sync.Mutex
	db       *depdb.DB // cfg.DB, or created lazily by the first ingest
	jobs     map[string]*job
	order    []string // job IDs in submission order
	inflight map[string]*computation
	cache    *memoryTier
	lineage  *lineageIndex // delta-audit ancestry (see delta.go)
	nextID   uint64
	closed   bool
	// providers is the registered private-audit dataset registry (see
	// privateaudit.go), persisted under pia/provider/ store keys.
	providers map[string]providerDataset

	store *store.Store // cfg.Store; nil for a memory-only service
	// breaker trips the daemon into degraded (memory-only) serving after
	// repeated store-write failures; see breaker.go.
	breaker *breaker
	// ingestMu serializes ingests with their snapshot persistence so the
	// durable current-snapshot pointer can never lag a concurrent ingest.
	// snapMeta (the persisted snapshot chain's state) is guarded by it.
	// snapDirty records that an ingest was committed in memory only while
	// degraded: the persisted chain lags the live database, so the next
	// durable ingest must lay down a fresh full base segment.
	ingestMu  sync.Mutex
	snapMeta  snapMeta
	snapDirty bool
	// ingestCh feeds admitted ingest batches to the single committer
	// goroutine, which group-commits everything waiting as one snapshot
	// segment (see ingest.go). ingestWG counts admitted waiters not yet
	// handed over, so Shutdown can close the channel safely; ingestLimit is
	// the admission token bucket (nil = unlimited).
	ingestCh    chan *ingestWaiter
	ingestWG    sync.WaitGroup
	ingestLimit *tokenBucket

	// watchHub routes ingest touches to /v1/watch subscriptions; watchWG
	// tracks their refresher goroutines (see watch.go).
	watchHub *watch.Hub
	watchWG  sync.WaitGroup

	// began anchors auditd_uptime_seconds and /healthz's uptime field.
	began time.Time
}

// New starts a service with cfg's worker pool running. Callers own the HTTP
// side: mount Handler on any server. Call Shutdown to stop.
func New(cfg Config) *Server {
	cfg.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		baseCtx:   ctx,
		stop:      cancel,
		db:        cfg.DB,
		jobs:      make(map[string]*job),
		providers: make(map[string]providerDataset),
		inflight:  make(map[string]*computation),
		cache:     newMemoryTier(cfg.CacheEntries),
		lineage:   newLineageIndex(),
		store:     cfg.Store,
		breaker:   newBreaker(cfg.StoreFailureThreshold, cfg.StoreRetryInterval, cfg.Now),
		ingestCh:  make(chan *ingestWaiter, maxIngestGroup),
		watchHub:  watch.NewHub(),
		began:     time.Now(),
	}
	s.ingestLimit = newTokenBucket(cfg.IngestRate, cfg.IngestBurst, cfg.Now)
	// Assemble the result-tier chain: memory, then disk, then any extras.
	s.tiers = append(s.tiers, s.cache)
	if s.store != nil {
		s.tiers = append(s.tiers, &diskTier{s: s})
	}
	s.tiers = append(s.tiers, cfg.ExtraTiers...)
	// The executor owns the worker pool; WrapExecutor may interpose a
	// cluster router in front of it.
	s.exec = newLocalExecutor(cfg.Workers, cfg.QueueDepth, &s.m, cfg.RunHook)
	if cfg.WrapExecutor != nil {
		s.exec = cfg.WrapExecutor(s.exec)
	}
	if s.store != nil {
		// Resume the persisted snapshot chain where the store left it so the
		// next ingest appends a segment instead of restarting a generation.
		s.snapMeta = readSnapMeta(s.store)
		// Reload the private-audit provider registry before any request —
		// in particular before RecoverJobs replays journaled private audits
		// that reference registered datasets.
		s.restoreProviders()
	}
	s.wg.Add(1)
	go s.ingestCommitter()
	return s
}

// Submit validates and accepts an audit request, returning the new job's
// status. The error, when non-nil, carries an HTTP status via statusErr.
func (s *Server) Submit(req *SubmitRequest) (JobStatus, error) {
	return s.submit(req, "")
}

// submit is Submit with a recovery id: RecoverJobs replays journaled
// requests through it so a crashed job reappears under its original id.
func (s *Server) submit(req *SubmitRequest, recoverID string) (JobStatus, error) {
	n, opts, err := req.normalize()
	if err != nil {
		return JobStatus{}, &statusErr{code: 400, err: err}
	}
	snap, err := s.resolveDB(req.Records)
	if err != nil {
		return JobStatus{}, err
	}
	n.DBFingerprint = snap.Fingerprint()
	specs := n.specs()
	run := func(ctx context.Context) (any, error) {
		rep, err := sia.AuditDeploymentsContext(ctx, snap, "", specs, opts)
		if err != nil {
			return nil, err
		}
		return rep, nil
	}
	extra := &jobExtras{
		journalKind: journalKindAudit, journalReq: req, recoverID: recoverID,
		wire: req, dbFP: n.DBFingerprint,
		selfContained: len(req.Records) > 0,
		noForward:     req.NoForward || recoverID != "",
	}
	if len(req.Records) == 0 {
		// Server-database jobs participate in the delta lineage: register the
		// (fingerprint, snapshot, specs) generation on completion, and try to
		// reuse an ancestor generation now.
		reqKey := n.requestKey()
		extra.reg = &lineageReg{reqKey: reqKey, entry: &lineageEntry{
			fp: snap.Fingerprint(), snap: snap, specs: specs,
		}}
		if plan := s.planAuditDelta(reqKey, n.key(), snap, specs, opts); plan != nil {
			extra.applyPlan(plan)
			if plan.run != nil {
				run = plan.run
				// A delta splice embeds local lineage state; it cannot be
				// re-expressed to a remote node.
				extra.noForward = true
			}
		}
	}
	return s.enqueue(n.key(), req.Title, req.TimeoutMS, run, extra)
}

// resolveDB picks the dependency database a request runs against: a fresh
// store built from inline records, or the registered snapshot of the
// server's database (preloaded via Config.DB or grown through /v1/depdb
// ingests). The snapshot's fingerprint content-addresses the chosen view.
func (s *Server) resolveDB(records []RecordWire) (*depdb.Snapshot, error) {
	if len(records) > 0 {
		fresh := depdb.New()
		for i, w := range records {
			r, err := w.Record()
			if err != nil {
				return nil, &statusErr{code: 400, err: fmt.Errorf("record %d: %w", i, err)}
			}
			if err := fresh.Put(r); err != nil {
				return nil, &statusErr{code: 400, err: fmt.Errorf("record %d: %w", i, err)}
			}
		}
		return fresh.Snapshot(), nil
	}
	s.mu.Lock()
	db := s.db
	s.mu.Unlock()
	if db == nil {
		return nil, &statusErr{code: 400, err: errors.New("request has no records and the server has no preloaded database")}
	}
	return db.Snapshot(), nil
}

// jobExtras carries per-submission delta context into enqueue: how the job
// was planned (adopted ancestor result, partial recompute, dirty subjects)
// and what to publish into the lineage when it completes.
type jobExtras struct {
	adopt   any      // pre-resolved result: finish instantly, no computation
	deltaH  bool     // job is a delta hit (adopt) or delta partial
	partial bool     // job re-audits only its dirty subjects
	dirty   []string // the dirty subjects
	reg     *lineageReg
	// journalKind/journalReq describe how to journal the submission: the
	// wire request is marshaled and persisted under the job's id before the
	// job can enter the queue, so a kill -9 cannot silently discard accepted
	// work. Marshaling is deferred until the job is known to compute — hits
	// never pay for it. recoverID replays a journaled job under its original
	// id at boot.
	journalKind string
	journalReq  any
	recoverID   string
	// wire/dbFP/selfContained/noForward populate the Workload's routing
	// facts (see executor.go) when the job actually computes.
	wire          any
	dbFP          string
	selfContained bool
	noForward     bool
}

// applyPlan folds a delta plan into the extras.
func (e *jobExtras) applyPlan(p *deltaPlan) {
	e.deltaH = true
	if p.adopt != nil {
		e.adopt = p.adopt
		return
	}
	e.partial = true
	e.dirty = p.dirty
}

// enqueue registers a job for the content-addressed computation key: a
// cache hit or an adopted delta ancestor finishes instantly, an identical
// in-flight computation absorbs the job, and otherwise run is queued for the
// worker pool. Shared by audit submissions and placement recommendations.
func (s *Server) enqueue(key, title string, timeoutMS int64, run func(ctx context.Context) (any, error), extra *jobExtras) (JobStatus, error) {
	if extra == nil {
		extra = &jobExtras{}
	}
	timeout := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}

	if extra.adopt != nil {
		// Adopted ancestor result: write it through under its new content
		// address before any waiter can observe "done", like a computed
		// result (persistResult does IO; the lock is not held yet).
		evicted := s.persistResult("delta-adopted result", key, extra.adopt)
		defer func() {
			s.mu.Lock()
			s.dropCachedLocked(evicted, key)
			s.mu.Unlock()
		}()
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.m.rejected.Add(1)
		return JobStatus{}, &statusErr{code: 503, err: errors.New("service is shutting down")}
	}
	j := &job{
		id:        s.allocIDLocked(extra.recoverID),
		key:       key,
		title:     title,
		submitted: time.Now(),
		done:      make(chan struct{}),
		timeout:   timeout,
		recovered: extra.recoverID != "",
	}

	if extra.adopt != nil {
		// Delta hit: the database changed but the change missed this job's
		// subjects, so the ancestor result answers it verbatim.
		s.cache.Put(key, extra.adopt)
		j.state = StateDone
		j.deltaHit = true
		j.started, j.finished = j.submitted, j.submitted
		j.result = retitle(extra.adopt, j.title)
		close(j.done)
		s.m.jobDuration.Observe(0) // served within the submit call
		s.m.deltaHits.Add(1)
		if extra.reg != nil {
			extra.reg.entry.resultKey = key
			s.lineage.addLocked(extra.reg)
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.m.submitted.Add(1)
		s.pruneLocked()
		if extra.recoverID != "" {
			// The recovered job settled from its durable ancestor; its
			// journal record is done.
			go s.clearJournals([]string{j.id})
		}
		return j.statusLocked(), nil
	}

	var res any
	var hit, diskHit bool
	if r, ok := s.cache.Get(key); ok {
		res, hit = r, true
	} else if len(s.tiers) > 1 && s.inflight[key] == nil {
		// Probe the lower result tiers — disk, then any extras (a cluster
		// peer's cache) — with the job-table lock released: reading,
		// checksumming and decoding a large persisted report (or fetching it
		// over HTTP) must not stall unrelated submits and polls. The memory
		// fast path above never pays for this.
		s.mu.Unlock()
		r, tier, ok := s.probeLowerTiers(key)
		s.mu.Lock()
		if s.closed {
			// Shutdown began during the probe; the executor may be closed.
			s.m.rejected.Add(1)
			return JobStatus{}, &statusErr{code: 503, err: errors.New("service is shutting down")}
		}
		if ok {
			// An identical job may have promoted the same bytes during the
			// probe; overwriting with an equal decode is harmless.
			s.cache.Put(key, r)
			res, hit = r, true
			diskHit = tier == tierDisk
		}
	}

	if !hit && s.store != nil && extra.journalKind != "" {
		// The job will compute (or coalesce): journal it BEFORE it can enter
		// the queue. Once any client observes this job id, a kill -9 must not
		// silently discard the work — the next boot replays the journal. The
		// marshal and IO happen with the lock released (same discipline as
		// the disk probe).
		s.mu.Unlock()
		jr := s.journalFor(extra.journalKind, extra.journalReq)
		if jr != nil {
			s.persistJob(j.id, jr)
		}
		s.mu.Lock()
		if s.closed {
			go s.clearJournals([]string{j.id})
			s.m.rejected.Add(1)
			return JobStatus{}, &statusErr{code: 503, err: errors.New("service is shutting down")}
		}
		j.journaled = jr != nil
		if r, ok := s.cache.Get(key); ok {
			// The identical computation completed while the journal write was
			// in flight; serve the hit.
			res, hit = r, true
		}
	}

	if hit {
		// Content-addressed hit (memory or disk): finish instantly, never
		// touch the queue. A disk hit serves a result computed before a
		// restart (or evicted from the memory LRU) without recomputation.
		j.state = StateDone
		j.cached = true
		j.diskHit = diskHit
		j.started, j.finished = j.submitted, j.submitted
		j.result = retitle(res, j.title)
		close(j.done)
		s.m.jobDuration.Observe(time.Since(j.submitted)) // ≈0 in memory; the disk probe for disk hits
		if diskHit {
			s.m.storeHits.Add(1)
		} else {
			s.m.cacheHits.Add(1)
		}
		if extra.reg != nil {
			// A hit still anchors a lineage generation — after a restart the
			// first disk hit re-seeds the ancestry for future delta audits.
			extra.reg.entry.resultKey = key
			s.lineage.addLocked(extra.reg)
		}
		if j.journaled || extra.recoverID != "" {
			// The hit resolved after the journal write (or this is a
			// recovered job whose result was durable all along): the journal
			// record is stale.
			j.journaled = false
			go s.clearJournals([]string{j.id})
		}
	} else if comp := s.inflight[key]; comp != nil {
		// Identical computation already queued or running: coalesce.
		j.state = StateQueued
		if comp.running {
			j.state = StateRunning
			j.started = time.Now()
			s.armTimeoutLocked(j)
		}
		j.coalesced = true
		j.deltaHit = extra.partial
		j.dirtySubjects = extra.dirty
		j.comp = comp
		j.trace = comp.trace
		comp.jobs = append(comp.jobs, j)
		comp.refs++
		s.m.coalesced.Add(1)
	} else {
		// A computation will actually run: this is the only path that pays
		// for a trace. Backdating it to the submission instant puts the
		// journal write and queue time inside queue-wait instead of leaving
		// an unaccounted gap before the first phase.
		tr := telemetry.NewAt(j.submitted)
		j.trace = tr
		cctx, cancel := context.WithCancel(telemetry.WithTrace(s.baseCtx, tr))
		comp := &computation{
			key:       key,
			ctx:       cctx,
			cancel:    cancel,
			jobs:      []*job{j},
			refs:      1,
			reg:       extra.reg,
			trace:     tr,
			queueDone: tr.StartAt("queue-wait", j.submitted),
		}
		wl := &Workload{
			Key:           key,
			Kind:          extra.journalKind,
			Wire:          extra.wire,
			DBFingerprint: extra.dbFP,
			SelfContained: extra.selfContained,
			NoForward:     extra.noForward || extra.wire == nil,
			Run:           run,
		}
		cb := ExecCallbacks{
			Started: func() { s.compStarted(comp) },
			Done:    func(res any, err error) { s.compDone(comp, res, err) },
		}
		if err := s.exec.Submit(cctx, wl, cb); err == nil {
			j.state = StateQueued
			j.comp = comp
			s.inflight[key] = comp
			s.m.cacheMisses.Add(1)
			if extra.partial {
				j.deltaHit = true
				j.dirtySubjects = extra.dirty
				s.m.deltaPartials.Add(1)
				s.m.deltaDirty.Add(int64(len(extra.dirty)))
			}
		} else {
			cancel()
			s.m.rejected.Add(1)
			if j.journaled && extra.recoverID == "" {
				// The rejected submission never became a job; drop its
				// journal. A rejected *recovered* job keeps its record so the
				// next boot retries once the queue has room.
				j.journaled = false
				go s.clearJournals([]string{j.id})
			}
			return JobStatus{}, &statusErr{code: 429, err: fmt.Errorf("queue full (%d computations pending)", s.cfg.QueueDepth)}
		}
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.m.submitted.Add(1)
	s.pruneLocked()
	return j.statusLocked(), nil
}

// pruneLocked evicts the oldest terminal jobs beyond the retention bound so
// the job table (and the report copies it pins) stays finite in an
// always-on daemon. Active jobs are never evicted. Caller holds s.mu.
func (s *Server) pruneLocked() {
	if s.cfg.JobRetention < 0 {
		return
	}
	for len(s.jobs) > s.cfg.JobRetention {
		evicted := false
		for i, id := range s.order {
			if s.jobs[id].terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything is in flight; try again on the next submit
		}
	}
}

// armTimeoutLocked starts a job's run-time watchdog. Caller holds s.mu and
// has just moved the job into StateRunning.
func (s *Server) armTimeoutLocked(j *job) {
	if j.timeout <= 0 || j.timer != nil {
		return
	}
	d, id := j.timeout, j.id
	j.timer = time.AfterFunc(d, func() {
		s.expireJob(id, d)
	})
}

// expireJob cancels a job whose run-time cap elapsed. Only this job is
// detached; a computation shared with other jobs keeps running for them.
func (s *Server) expireJob(id string, after time.Duration) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok || j.terminal() {
		s.mu.Unlock()
		return
	}
	s.cancelLocked(j, fmt.Errorf("timed out after %v: %w", after, context.DeadlineExceeded))
	cleared := journaledIDsLocked([]*job{j})
	s.mu.Unlock()
	s.clearJournals(cleared)
}

// compStarted is the executor's Started callback: the computation left the
// queue and is about to run. It closes the queue-wait phase and moves every
// attached job into StateRunning.
func (s *Server) compStarted(comp *computation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	comp.running = true
	comp.label = "job " + comp.jobs[0].id // first attached job; fixed for the computation's life
	now := time.Now()
	if comp.queueDone != nil {
		comp.queueDone()
		s.m.queueWait.Observe(now.Sub(comp.jobs[0].submitted))
	}
	for _, j := range comp.jobs {
		if !j.terminal() {
			j.state = StateRunning
			j.started = now
			s.armTimeoutLocked(j)
		}
	}
}

// compDone is the executor's Done callback: the computation finished (or was
// discarded while queued — then running is still false and err carries the
// cancellation). It persists the result, settles every attached job and
// tombstones their journal records.
func (s *Server) compDone(comp *computation, res any, err error) {
	if !comp.running {
		// Canceled while queued: the executor discarded it without running.
		s.mu.Lock()
		if comp.queueDone != nil {
			comp.queueDone() // don't leave the phase open on the dead trace
		}
		s.finishLocked(comp, nil, err)
		s.mu.Unlock()
		return
	}

	// Write through to the disk store BEFORE any waiter observes "done": a
	// client that sees its job complete may kill -9 the daemon immediately
	// and must still find the result after restart.
	var evicted []string
	if err == nil && res != nil {
		endPersist := func() {}
		if s.store != nil {
			endPersist = comp.trace.Start("persist")
		}
		evicted = s.persistResult(comp.label, comp.key, res)
		endPersist()
	}

	s.mu.Lock()
	s.dropCachedLocked(evicted, comp.key)
	s.finishLocked(comp, res, err)
	cleared := journaledIDsLocked(comp.jobs)
	s.mu.Unlock()
	// The jobs are settled and (on success) the result is durable: their
	// journal records have done their work.
	s.clearJournals(cleared)
}

// finishLocked records a computation's outcome, caches successful results,
// and settles every attached job. Caller holds s.mu.
func (s *Server) finishLocked(comp *computation, res any, err error) {
	comp.cancel() // release the context's timer resources
	if s.inflight[comp.key] == comp {
		delete(s.inflight, comp.key)
	}
	if err == nil && res != nil {
		s.cache.Put(comp.key, res)
		if comp.reg != nil {
			comp.reg.entry.resultKey = comp.key
			s.lineage.addLocked(comp.reg)
		}
	}
	now := time.Now()
	for _, j := range comp.jobs {
		if j.terminal() { // canceled individually earlier
			continue
		}
		if j.timer != nil {
			j.timer.Stop()
		}
		j.finished = now
		j.comp = nil
		s.m.jobDuration.Observe(now.Sub(j.submitted))
		switch {
		case err == nil:
			j.state = StateDone
			j.result = retitle(res, j.title)
			s.m.completed.Add(1)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			j.state = StateCanceled
			j.err = err
			s.m.canceled.Add(1)
		default:
			j.state = StateFailed
			j.err = err
			s.m.failed.Add(1)
		}
		close(j.done)
	}
}

// Cancel cancels a job. Canceling the last job attached to a computation
// cancels the computation's context, which the RG algorithms observe within
// their poll interval, releasing the worker.
func (s *Server) Cancel(id string) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, &statusErr{code: 404, err: fmt.Errorf("unknown job %q", id)}
	}
	if j.terminal() {
		st := j.statusLocked()
		s.mu.Unlock()
		return st, nil // idempotent
	}
	s.cancelLocked(j, context.Canceled)
	st := j.statusLocked()
	// A deliberately canceled job must not be resurrected at the next boot.
	cleared := journaledIDsLocked([]*job{j})
	s.mu.Unlock()
	s.clearJournals(cleared)
	return st, nil
}

// cancelLocked moves a non-terminal job to StateCanceled with the given
// cause and detaches it from its computation, canceling the computation
// only when this was its last interested job. Caller holds s.mu.
func (s *Server) cancelLocked(j *job, cause error) {
	if j.timer != nil {
		j.timer.Stop()
	}
	j.state = StateCanceled
	j.finished = time.Now()
	j.err = cause
	s.m.canceled.Add(1)
	close(j.done)
	if comp := j.comp; comp != nil {
		j.comp = nil
		comp.refs--
		if comp.refs == 0 {
			// Last interested job: stop the computation and unregister it
			// so new identical submissions start fresh instead of
			// attaching to a dying run.
			comp.cancel()
			if s.inflight[comp.key] == comp {
				delete(s.inflight, comp.key)
			}
		}
	}
}

// Status returns a job's current status.
func (s *Server) Status(id string) (JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobStatus{}, &statusErr{code: 404, err: fmt.Errorf("unknown job %q", id)}
	}
	return j.statusLocked(), nil
}

// WaitDone blocks until the job reaches a terminal state, the wait elapses,
// or ctx is done; it returns the status current at that moment.
func (s *Server) WaitDone(ctx context.Context, id string, wait time.Duration) (JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, &statusErr{code: 404, err: fmt.Errorf("unknown job %q", id)}
	}
	if wait > 0 {
		t := time.NewTimer(wait)
		defer t.Stop()
		select {
		case <-j.done:
		case <-t.C:
		case <-ctx.Done():
		}
	}
	// Render from the job we already hold: re-resolving the ID could 404 if
	// retention pruning evicted the just-completed job mid-wait.
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.statusLocked(), nil
}

// Result returns a finished job's payload — a *report.Report for audit
// jobs, a *RecommendResponse for recommendation jobs. A 409 error means the
// job is not done yet (or was canceled/failed).
func (s *Server) Result(id string) (any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, &statusErr{code: 404, err: fmt.Errorf("unknown job %q", id)}
	}
	if j.state != StateDone {
		return nil, &statusErr{code: 409, err: fmt.Errorf("job %s is %s", id, j.state)}
	}
	return j.result, nil
}

// Report returns a finished audit job's report; see Result.
func (s *Server) Report(id string) (*report.Report, error) {
	res, err := s.Result(id)
	if err != nil {
		return nil, err
	}
	rep, ok := res.(*report.Report)
	if !ok {
		return nil, &statusErr{code: 409, err: fmt.Errorf("job %s is not an audit job", id)}
	}
	return rep, nil
}

// Cached returns the in-memory cached result for a content-address, if
// present. Deliberately memory-only: a clustered peer probes this endpoint
// through its peer tier, and answering from lower tiers here would let two
// nodes probe each other in a loop.
func (s *Server) Cached(key string) (any, error) {
	res, ok := s.cache.Get(key)
	if !ok {
		return nil, &statusErr{code: 404, err: fmt.Errorf("no cached result for %s", key)}
	}
	return res, nil
}

// Jobs lists every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].statusLocked())
	}
	return out
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	entries := s.cache.Len()
	var storeStats store.Stats
	if s.store != nil {
		storeStats = s.store.Stats()
	}
	ws := s.watchHub.Stats()
	degraded, reason := s.breaker.degraded()
	return Stats{
		StoreEnabled:       s.store != nil,
		StoreHits:          s.m.storeHits.Load(),
		StoreEvictions:     s.m.storeEvictions.Load(),
		StoreErrors:        s.m.storeErrors.Load(),
		StoreSkippedWrites: s.m.storeSkipped.Load(),
		StoreTrips:         s.breaker.tripCount(),
		Degraded:           degraded,
		DegradedReason:     reason,
		Store:              storeStats,

		Submitted:       s.m.submitted.Load(),
		Completed:       s.m.completed.Load(),
		Failed:          s.m.failed.Load(),
		Canceled:        s.m.canceled.Load(),
		CacheHits:       s.m.cacheHits.Load(),
		Coalesced:       s.m.coalesced.Load(),
		CacheMisses:     s.m.cacheMisses.Load(),
		Rejected:        s.m.rejected.Load(),
		Computations:    s.m.computations.Load(),
		BusyWorkers:     s.m.busyWorkers.Load(),
		QueueDepth:      s.exec.QueueDepth(),
		Workers:         s.cfg.Workers,
		CacheEntries:    entries,
		Recommendations: s.m.recommendations.Load(),
		PrivateAudits:   s.m.privateAudits.Load(),
		PrivatePairs:    s.m.privatePairs.Load(),
		IngestedRecords: s.m.ingestedRecords.Load(),
		IngestGroups:    s.m.ingestGroups.Load(),
		IngestThrottled: s.m.ingestThrottled.Load(),

		WatchSubscribers:   ws.Subscribers,
		WatchSubscriptions: ws.Subscribed,
		WatchEvents:        ws.EventsSent,
		WatchDropped:       ws.EventsDropped,
		WatchEvicted:       ws.Evicted,
		WatchDirtyMarks:    ws.DirtyMarks,
		WatchReaudits:      s.m.watchReaudits.Load(),

		DeltaHits:          s.m.deltaHits.Load(),
		DeltaPartials:      s.m.deltaPartials.Load(),
		DeltaDirtySubjects: s.m.deltaDirty.Load(),

		JobsRecovered: s.m.jobsRecovered.Load(),
		WorkerPanics:  s.m.workerPanics.Load(),

		JobDuration:  s.m.jobDuration.Snapshot(),
		QueueWait:    s.m.queueWait.Snapshot(),
		Compute:      s.m.compute.Snapshot(),
		IngestCommit: s.m.ingestCommit.Snapshot(),
		IngestNotify: s.m.ingestNotify.Snapshot(),

		Uptime:  time.Since(s.began),
		Runtime: telemetry.ReadRuntime(),
		Build:   telemetry.ReadBuild(),
	}
}

// Trace returns a job's phase timeline and pipeline counts. Jobs served
// from a cache, disk, or delta hit never ran a computation and have no
// phases; they return an empty timeline rather than an error.
func (s *Server) Trace(id string) (TraceResponse, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return TraceResponse{}, &statusErr{code: 404, err: fmt.Errorf("unknown job %q", id)}
	}
	resp := TraceResponse{ID: j.id, State: j.state}
	elapsed := time.Since(j.submitted)
	if !j.finished.IsZero() {
		elapsed = j.finished.Sub(j.submitted)
	}
	resp.ElapsedNS = elapsed.Nanoseconds()
	tr := j.trace
	s.mu.Unlock()
	// Snapshotting takes the trace's own lock; do it outside s.mu.
	resp.Phases = tr.Snapshot()
	resp.Counts = tr.Counts()
	return resp, nil
}

// appendJobSpan records a phase onto a settled job's trace after the fact —
// the watch refresher uses it to attach the notify span once the
// notification event is queued. Unknown or traceless jobs no-op.
func (s *Server) appendJobSpan(id, name string, start time.Time, d time.Duration) {
	s.mu.Lock()
	var tr *telemetry.Trace
	if j := s.jobs[id]; j != nil {
		tr = j.trace
	}
	s.mu.Unlock()
	tr.Span(name, start, d)
}

// StoreGC applies the persistent store's size/age eviction policy now and
// mirrors any evictions into the in-memory cache — the same bookkeeping a
// Put-triggered eviction gets. A memory-only service no-ops. It returns how
// many entries were evicted.
func (s *Server) StoreGC() (int, error) {
	if s.store == nil {
		return 0, nil
	}
	evicted, err := s.store.GC()
	if err != nil {
		s.m.storeErrors.Add(1)
	}
	if len(evicted) > 0 {
		s.mu.Lock()
		s.dropCachedLocked(evicted, "")
		s.mu.Unlock()
	}
	return len(evicted), err
}

// StartStoreGC runs StoreGC every interval until the returned stop function
// is called, so an idle daemon still enforces -store-max-age: without the
// ticker, eviction only runs inside Put and a quiet store never ages
// anything out. Stop is idempotent; a memory-only service (or interval <= 0)
// gets a no-op.
func (s *Server) StartStoreGC(interval time.Duration) (stop func()) {
	if s.store == nil || interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.StoreGC() // a GC failure increments auditd_store_errors_total
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// Shutdown stops the service gracefully: new submissions and ingests are
// refused immediately, already-admitted ingests are group-committed, watch
// subscriptions are closed (their refreshers exit, their SSE streams end),
// and queued and running jobs keep going until done or until ctx expires,
// at which point their contexts are canceled and the pool drains as the RG
// algorithms observe the cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.exec.Close()
	s.mu.Unlock()

	// Every ingest admitted before closed flipped is either already on the
	// channel or about to be; wait those handoffs out, then close the channel
	// so the committer commits what is queued and exits.
	s.ingestWG.Wait()
	close(s.ingestCh)
	// Evict every watch subscription: refresher loops observe Done and
	// return; SSE handlers observe the closed event channels and return.
	s.watchHub.Close()

	done := make(chan struct{})
	go func() {
		s.exec.Wait()
		s.wg.Wait()
		s.watchWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.stop() // cancel every computation's context
		<-done
		return ctx.Err()
	}
}

// statusLocked renders the job's wire status. Caller holds s.mu (or owns
// the job exclusively).
func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:            j.id,
		State:         j.state,
		CacheKey:      j.key,
		Cached:        j.cached,
		DiskHit:       j.diskHit,
		Coalesced:     j.coalesced,
		DeltaHit:      j.deltaHit,
		DirtySubjects: j.dirtySubjects,
		Recovered:     j.recovered,
		SubmittedAt:   j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.trace != nil {
		st.Trace = j.trace.Snapshot()
		st.TraceCounts = j.trace.Counts()
	}
	return st
}

// retitle shallow-copies a cached result with a per-job title; the payload
// slices are shared and treated as immutable once cached.
func retitle(res any, title string) any {
	switch v := res.(type) {
	case *report.Report:
		cp := *v
		cp.Title = title
		return &cp
	case *RecommendResponse:
		cp := *v
		cp.Title = title
		return &cp
	case *PrivateAuditResponse:
		cp := *v
		cp.Title = title
		return &cp
	default:
		return res
	}
}

// statusErr pairs an error with the HTTP status it should map to. On the
// client side it also carries the server's Retry-After hint, which the
// backoff honors.
type statusErr struct {
	code       int
	err        error
	retryAfter time.Duration
}

func (e *statusErr) Error() string { return e.err.Error() }
func (e *statusErr) Unwrap() error { return e.err }

// httpStatus extracts the status code, defaulting to 500.
func httpStatus(err error) int {
	var se *statusErr
	if errors.As(err, &se) {
		return se.code
	}
	return 500
}
