package cloudsim

import (
	"context"
	"errors"
	"testing"
)

// fig6bPreload replays the §6.2.2 pre-existing load that leaves Server2
// idle and makes the least-loaded policy co-locate the Riak replicas.
func fig6bPreload(t *testing.T, c *Cloud) {
	t.Helper()
	for _, pin := range []struct{ vm, host string }{
		{"web-vm1", "Server1"}, {"web-vm2", "Server1"},
		{"batch-vm3", "Server3"}, {"batch-vm4", "Server3"},
		{"db-vm5", "Server4"}, {"db-vm6", "Server4"},
	} {
		if _, err := c.PlaceOn(pin.vm, pin.host); err != nil {
			t.Fatal(err)
		}
	}
}

// TestIndependenceSchedulerAvoidsCorrelatedPlacement: on the Fig. 6b
// substrate, where least-loaded puts both replicas on Server2, the
// independence scheduler spreads them across hosts AND switches.
func TestIndependenceSchedulerAvoidsCorrelatedPlacement(t *testing.T) {
	cloud := FourServerLab(1)
	fig6bPreload(t, cloud)
	sched := &IndependenceScheduler{Cloud: cloud}

	vm7, err := sched.Place("VM7", "riak")
	if err != nil {
		t.Fatal(err)
	}
	vm8, err := sched.Place("VM8", "riak")
	if err != nil {
		t.Fatal(err)
	}
	if vm7.Host == vm8.Host {
		t.Fatalf("replicas co-located on %s", vm7.Host)
	}
	torOf := func(host string) string {
		srv, ok := cloud.server(host)
		if !ok {
			t.Fatalf("unknown host %s", host)
		}
		return srv.ToR
	}
	if torOf(vm7.Host) == torOf(vm8.Host) {
		t.Fatalf("replicas share switch %s (hosts %s/%s) — anti-affinity would allow this, independence must not",
			torOf(vm7.Host), vm7.Host, vm8.Host)
	}
	// With all hosts scoring equal for the first replica, the load
	// tie-break picks idle Server2; the second crosses the switch — the
	// §6.2.2 report's own suggested pair, reached without any migration.
	if vm7.Host != "Server2" || vm8.Host != "Server3" {
		t.Fatalf("placed %s/%s, want the paper's Server2/Server3", vm7.Host, vm8.Host)
	}
	// The group metadata survives for later scheduling decisions.
	if got, _ := cloud.VMOf("VM8"); got.Group != "riak" {
		t.Fatalf("group lost: %+v", got)
	}
}

// TestIndependenceSchedulerDeterminism: the decision is a pure function of
// cloud state, regardless of scoring parallelism.
func TestIndependenceSchedulerDeterminism(t *testing.T) {
	var ref [2]string
	for i, workers := range []int{1, 4} {
		cloud := FourServerLab(1)
		fig6bPreload(t, cloud)
		sched := &IndependenceScheduler{Cloud: cloud, Workers: workers}
		vm7, err := sched.Place("VM7", "riak")
		if err != nil {
			t.Fatal(err)
		}
		vm8, err := sched.Place("VM8", "riak")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = [2]string{vm7.Host, vm8.Host}
			continue
		}
		if got := [2]string{vm7.Host, vm8.Host}; got != ref {
			t.Fatalf("workers=%d placed %v, workers=1 placed %v", workers, got, ref)
		}
	}
}

// TestIndependenceSchedulerUngrouped: a group-less VM still places (a
// 1-replica search over all hosts).
func TestIndependenceSchedulerUngrouped(t *testing.T) {
	cloud := FourServerLab(1)
	sched := &IndependenceScheduler{Cloud: cloud}
	vm, err := sched.Place("solo", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cloud.server(vm.Host); !ok {
		t.Fatalf("placed on unknown host %q", vm.Host)
	}
	if _, err := sched.Place("solo", ""); err == nil {
		t.Fatal("duplicate VM must be rejected")
	}
}

// TestIndependenceSchedulerCancellation: a canceled context aborts the
// decision instead of committing a placement.
func TestIndependenceSchedulerCancellation(t *testing.T) {
	cloud := FourServerLab(1)
	sched := &IndependenceScheduler{Cloud: cloud}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sched.PlaceContext(ctx, "VM7", "riak"); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, ok := cloud.VMOf("VM7"); ok {
		t.Fatal("canceled placement must not commit")
	}
}
