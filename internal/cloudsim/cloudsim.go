// Package cloudsim simulates a small IaaS cloud with OpenStack-style
// virtual machine management — the substrate of the paper's second case
// study (§6.2.2, Fig. 6b): physical servers behind top-of-rack switches and
// redundant cores, VMs placed by a pluggable scheduler, and services
// deployed across VMs.
package cloudsim

import (
	"fmt"
	"math/rand"
	"sort"

	"indaas/internal/deps"
)

// Server is a physical host.
type Server struct {
	Name string
	// ToR is the top-of-rack switch the server uplinks through.
	ToR string
}

// VM is a virtual machine placed on a host.
type VM struct {
	Name string
	// Group identifies the service the VM belongs to (used by
	// anti-affinity placement).
	Group string
	Host  string
}

// Cloud is a small IaaS deployment: servers behind ToR switches, ToR
// switches behind redundant core routers.
type Cloud struct {
	Servers []Server
	// Cores are the redundant core routers every ToR uplinks through.
	Cores []string
	vms   map[string]VM
	load  map[string]int // VMs per server
	rng   *rand.Rand
}

// New creates a cloud. Every server's ToR must be non-empty; at least one
// core is required.
func New(servers []Server, cores []string, seed int64) (*Cloud, error) {
	if len(servers) == 0 || len(cores) == 0 {
		return nil, fmt.Errorf("cloudsim: need at least one server and one core")
	}
	seen := map[string]bool{}
	for _, s := range servers {
		if s.Name == "" || s.ToR == "" {
			return nil, fmt.Errorf("cloudsim: server %+v needs name and ToR", s)
		}
		if seen[s.Name] {
			return nil, fmt.Errorf("cloudsim: duplicate server %q", s.Name)
		}
		seen[s.Name] = true
	}
	c := &Cloud{
		Servers: append([]Server(nil), servers...),
		Cores:   append([]string(nil), cores...),
		vms:     make(map[string]VM),
		load:    make(map[string]int),
		rng:     rand.New(rand.NewSource(seed)),
	}
	return c, nil
}

// FourServerLab builds the lab cloud of Fig. 6b: servers Server1..Server4,
// Server1/Server2 behind Switch1, Server3/Server4 behind Switch2, both
// switches uplinked through Core1 and Core2.
func FourServerLab(seed int64) *Cloud {
	c, err := New([]Server{
		{Name: "Server1", ToR: "Switch1"},
		{Name: "Server2", ToR: "Switch1"},
		{Name: "Server3", ToR: "Switch2"},
		{Name: "Server4", ToR: "Switch2"},
	}, []string{"Core1", "Core2"}, seed)
	if err != nil {
		panic("cloudsim: FourServerLab is static and must not fail: " + err.Error())
	}
	return c
}

// Policy selects a host for a new VM.
type Policy int

const (
	// LeastLoaded picks randomly among the servers with the fewest VMs —
	// OpenStack's default behaviour the paper calls out: "the automatic
	// virtual machine placement policy randomly selects from the least
	// loaded resources to host a VM".
	LeastLoaded Policy = iota
	// AntiAffinity picks the least-loaded server that does not already host
	// a VM of the same group (the fix the audit report motivates).
	AntiAffinity
)

// Place creates a VM and schedules it per the policy. group identifies the
// service for anti-affinity (ignored by LeastLoaded).
func (c *Cloud) Place(vmName, group string, policy Policy) (VM, error) {
	if _, dup := c.vms[vmName]; dup {
		return VM{}, fmt.Errorf("cloudsim: duplicate VM %q", vmName)
	}
	var candidates []string
	switch policy {
	case LeastLoaded:
		candidates = c.leastLoaded(nil)
	case AntiAffinity:
		exclude := map[string]bool{}
		for _, vm := range c.vms {
			if group != "" && vm.Group == group {
				exclude[vm.Host] = true
			}
		}
		candidates = c.leastLoaded(exclude)
		if len(candidates) == 0 {
			return VM{}, fmt.Errorf("cloudsim: anti-affinity group %q cannot be satisfied", group)
		}
	default:
		return VM{}, fmt.Errorf("cloudsim: unknown policy %d", int(policy))
	}
	host := candidates[c.rng.Intn(len(candidates))]
	return c.placeOn(vmName, group, host)
}

// PlaceOn pins a VM to a specific host (used to model pre-existing load and
// audited re-deployments).
func (c *Cloud) PlaceOn(vmName, host string) (VM, error) {
	if _, dup := c.vms[vmName]; dup {
		return VM{}, fmt.Errorf("cloudsim: duplicate VM %q", vmName)
	}
	return c.placeOn(vmName, "", host)
}

func (c *Cloud) placeOn(vmName, group, host string) (VM, error) {
	if _, ok := c.server(host); !ok {
		return VM{}, fmt.Errorf("cloudsim: unknown host %q", host)
	}
	vm := VM{Name: vmName, Group: group, Host: host}
	c.vms[vmName] = vm
	c.load[host]++
	return vm, nil
}

// Migrate moves an existing VM to a new host.
func (c *Cloud) Migrate(vmName, newHost string) error {
	vm, ok := c.vms[vmName]
	if !ok {
		return fmt.Errorf("cloudsim: unknown VM %q", vmName)
	}
	if _, ok := c.server(newHost); !ok {
		return fmt.Errorf("cloudsim: unknown host %q", newHost)
	}
	c.load[vm.Host]--
	vm.Host = newHost
	c.vms[vmName] = vm
	c.load[newHost]++
	return nil
}

// VMOf returns a placed VM.
func (c *Cloud) VMOf(name string) (VM, bool) {
	vm, ok := c.vms[name]
	return vm, ok
}

// Load returns the number of VMs on a server.
func (c *Cloud) Load(server string) int { return c.load[server] }

func (c *Cloud) server(name string) (Server, bool) {
	for _, s := range c.Servers {
		if s.Name == name {
			return s, true
		}
	}
	return Server{}, false
}

// leastLoaded returns the non-excluded servers with minimal load, sorted.
func (c *Cloud) leastLoaded(exclude map[string]bool) []string {
	best := -1
	var out []string
	for _, s := range c.Servers {
		if exclude[s.Name] {
			continue
		}
		l := c.load[s.Name]
		switch {
		case best == -1 || l < best:
			best = l
			out = out[:0]
			out = append(out, s.Name)
		case l == best:
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// DependencyRecords emits the Table 1 records for a VM: its network routes
// (via the host's ToR and each redundant core) and its hardware dependency
// on the host server. The VM name itself appears as a hardware component of
// type "VM" so VM-level failures are auditable (the {VM7, VM8} risk group
// of §6.2.2).
func (c *Cloud) DependencyRecords(vmName string) ([]deps.Record, error) {
	vm, ok := c.vms[vmName]
	if !ok {
		return nil, fmt.Errorf("cloudsim: unknown VM %q", vmName)
	}
	srv, ok := c.server(vm.Host)
	if !ok {
		return nil, fmt.Errorf("cloudsim: VM %q host %q vanished", vmName, vm.Host)
	}
	var out []deps.Record
	for _, core := range c.Cores {
		out = append(out, deps.NewNetwork(vmName, "Internet", srv.ToR, core))
	}
	out = append(out,
		deps.NewHardware(vmName, "VM", vmName),
		deps.NewHardware(vmName, "Host", srv.Name),
	)
	return out, nil
}

// ServerPairs lists every unordered pair of distinct servers, in
// lexicographic order — the candidate two-way redundancy deployments.
func (c *Cloud) ServerPairs() [][2]string {
	names := make([]string, len(c.Servers))
	for i, s := range c.Servers {
		names[i] = s.Name
	}
	sort.Strings(names)
	var out [][2]string
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			out = append(out, [2]string{names[i], names[j]})
		}
	}
	return out
}
