package cloudsim

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/placement"
	"indaas/internal/sia"
)

// IndependenceScheduler places VMs by delegating the host choice to the
// placement engine: every candidate host is modeled as a hypothetical
// deployment of the VM's service group, the group's dependency records are
// synthesized into a scratch DepDB, and the engine's exact search ranks the
// candidates by independence. Where the paper's §6.2.2 workflow audits a
// deployment *after* the fact and suggests a migration, this scheduler runs
// the same audit *before* committing the VM — correlated placements like
// the Fig. 6b double-placement on Server2 never happen.
//
// Anti-affinity (the fix §6.2.2 motivates) only knows "not the same host";
// the independence search additionally avoids shared switches and any other
// dependency the records expose.
type IndependenceScheduler struct {
	Cloud *Cloud
	// Workers bounds the per-decision scoring parallelism
	// (0 = one per CPU); the choice never affects which host wins.
	Workers int
}

// probeSep joins a VM name and a candidate host into a probe subject. The
// VM's real dependency records never contain it, so probes cannot collide
// with placed VMs.
const probeSep = "@"

// Place creates the VM on the most independent host for its group and
// returns the placed VM. The decision is deterministic: among hosts the
// engine scores identically, the least loaded wins (so symmetric clouds
// still balance like the least-loaded policy), then lexicographic order.
func (s *IndependenceScheduler) Place(vmName, group string) (VM, error) {
	return s.PlaceContext(context.Background(), vmName, group)
}

// PlaceContext is Place under a context; the candidate audits abort
// promptly when it is canceled.
func (s *IndependenceScheduler) PlaceContext(ctx context.Context, vmName, group string) (VM, error) {
	c := s.Cloud
	if c == nil {
		return VM{}, fmt.Errorf("cloudsim: scheduler has no cloud")
	}
	if _, dup := c.vms[vmName]; dup {
		return VM{}, fmt.Errorf("cloudsim: duplicate VM %q", vmName)
	}
	host, err := s.recommendHost(ctx, vmName, group)
	if err != nil {
		return VM{}, err
	}
	return c.placeOn(vmName, group, host)
}

// recommendHost builds the hypothetical-deployment database and asks the
// placement engine which host keeps the group most independent.
func (s *IndependenceScheduler) recommendHost(ctx context.Context, vmName, group string) (string, error) {
	c := s.Cloud
	// The group's already-placed members are fixed deployment nodes.
	var members []string
	for name, vm := range c.vms {
		if group != "" && vm.Group == group {
			members = append(members, name)
		}
	}
	sort.Strings(members)

	// A scratch cloud replays the members on their real hosts and adds one
	// probe VM per candidate host; its records form the search database.
	scratch, err := New(c.Servers, c.Cores, 1)
	if err != nil {
		return "", err
	}
	db := depdb.New()
	addRecords := func(vm string) error {
		records, err := scratch.DependencyRecords(vm)
		if err != nil {
			return err
		}
		return db.Put(records...)
	}
	for _, m := range members {
		if _, err := scratch.PlaceOn(m, c.vms[m].Host); err != nil {
			return "", err
		}
		if err := addRecords(m); err != nil {
			return "", err
		}
	}
	probes := make([]string, 0, len(c.Servers))
	for _, srv := range c.Servers {
		probe := vmName + probeSep + srv.Name
		if _, err := scratch.PlaceOn(probe, srv.Name); err != nil {
			return "", err
		}
		if err := addRecords(probe); err != nil {
			return "", err
		}
		probes = append(probes, probe)
	}

	// Choose 1 of the probes alongside the fixed members: exact search,
	// network + hardware kinds (the §6.2.2 audit's scope). The full ranking
	// comes back so load can break score ties below.
	res, err := placement.Search(ctx, db, placement.Request{
		Nodes:    probes,
		Fixed:    members,
		Replicas: len(members) + 1,
		TopK:     len(probes),
		Strategy: placement.Exact,
		Workers:  s.Workers,
		Kinds:    []deps.Kind{deps.KindNetwork, deps.KindHardware},
		Audit:    sia.Options{Algorithm: sia.MinimalRG, RankMode: sia.RankBySize},
	})
	if err != nil {
		return "", err
	}
	// Among the hosts tied with the independence optimum, prefer the least
	// loaded (then lexicographic): a symmetric cloud should still balance.
	top := res.Top[0].Score
	bestHost, bestLoad := "", 0
	for _, r := range res.Top {
		if r.Score.Less(top) || top.Less(r.Score) {
			break // the ranking is sorted; past the tie block
		}
		host, err := s.probeHost(r.Nodes, vmName)
		if err != nil {
			return "", err
		}
		load := c.load[host]
		if bestHost == "" || load < bestLoad || (load == bestLoad && host < bestHost) {
			bestHost, bestLoad = host, load
		}
	}
	return bestHost, nil
}

// probeHost extracts the candidate host from a recommended deployment's
// probe node.
func (s *IndependenceScheduler) probeHost(nodes []string, vmName string) (string, error) {
	prefix := vmName + probeSep
	for _, node := range nodes {
		if strings.HasPrefix(node, prefix) {
			return strings.TrimPrefix(node, prefix), nil
		}
	}
	return "", fmt.Errorf("cloudsim: recommendation %v contains no probe for %q", nodes, vmName)
}
