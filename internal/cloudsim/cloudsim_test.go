package cloudsim

import (
	"reflect"
	"testing"

	"indaas/internal/deps"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, []string{"c"}, 1); err == nil {
		t.Error("no servers accepted")
	}
	if _, err := New([]Server{{Name: "S1", ToR: "T1"}}, nil, 1); err == nil {
		t.Error("no cores accepted")
	}
	if _, err := New([]Server{{Name: "S1"}}, []string{"c"}, 1); err == nil {
		t.Error("server without ToR accepted")
	}
	if _, err := New([]Server{{Name: "S1", ToR: "T"}, {Name: "S1", ToR: "T"}}, []string{"c"}, 1); err == nil {
		t.Error("duplicate server accepted")
	}
}

func TestLeastLoadedPlacement(t *testing.T) {
	c := FourServerLab(1)
	// Model the pre-existing load of §6.2.2: six unrelated VMs pinned so
	// that Server2 is idle.
	for _, pin := range []struct{ vm, host string }{
		{"web-vm1", "Server1"}, {"web-vm2", "Server1"},
		{"batch-vm3", "Server3"}, {"batch-vm4", "Server3"},
		{"db-vm5", "Server4"}, {"db-vm6", "Server4"},
	} {
		if _, err := c.PlaceOn(pin.vm, pin.host); err != nil {
			t.Fatal(err)
		}
	}
	// OpenStack-style least-loaded placement now puts both Riak VMs on
	// Server2 — the correlated placement the audit catches.
	vm7, err := c.Place("riak-vm7", "riak", LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	vm8, err := c.Place("riak-vm8", "riak", LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	if vm7.Host != "Server2" || vm8.Host != "Server2" {
		t.Errorf("VM7 on %s, VM8 on %s; want both on Server2", vm7.Host, vm8.Host)
	}
	if c.Load("Server2") != 2 {
		t.Errorf("Server2 load = %d", c.Load("Server2"))
	}
}

func TestAntiAffinityPlacement(t *testing.T) {
	c := FourServerLab(1)
	vm1, err := c.Place("riak-vm1", "riak", AntiAffinity)
	if err != nil {
		t.Fatal(err)
	}
	vm2, err := c.Place("riak-vm2", "riak", AntiAffinity)
	if err != nil {
		t.Fatal(err)
	}
	if vm1.Host == vm2.Host {
		t.Errorf("anti-affinity placed both VMs on %s", vm1.Host)
	}
	// Exhaust the four servers; the fifth placement must fail.
	if _, err := c.Place("riak-vm3", "riak", AntiAffinity); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place("riak-vm4", "riak", AntiAffinity); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place("riak-vm5", "riak", AntiAffinity); err == nil {
		t.Error("anti-affinity over capacity accepted")
	}
}

func TestPlaceErrors(t *testing.T) {
	c := FourServerLab(1)
	if _, err := c.Place("vm", "g", Policy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := c.PlaceOn("vm", "nope"); err == nil {
		t.Error("unknown host accepted")
	}
	if _, err := c.PlaceOn("vm", "Server1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PlaceOn("vm", "Server2"); err == nil {
		t.Error("duplicate VM accepted")
	}
}

func TestMigrate(t *testing.T) {
	c := FourServerLab(1)
	if _, err := c.PlaceOn("vm", "Server1"); err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate("vm", "Server3"); err != nil {
		t.Fatal(err)
	}
	vm, ok := c.VMOf("vm")
	if !ok || vm.Host != "Server3" {
		t.Errorf("after migrate: %+v", vm)
	}
	if c.Load("Server1") != 0 || c.Load("Server3") != 1 {
		t.Error("loads not updated by migration")
	}
	if err := c.Migrate("ghost", "Server1"); err == nil {
		t.Error("migrating unknown VM accepted")
	}
	if err := c.Migrate("vm", "nowhere"); err == nil {
		t.Error("migrating to unknown host accepted")
	}
}

func TestDependencyRecords(t *testing.T) {
	c := FourServerLab(1)
	if _, err := c.PlaceOn("riak-vm7", "Server2"); err != nil {
		t.Fatal(err)
	}
	recs, err := c.DependencyRecords("riak-vm7")
	if err != nil {
		t.Fatal(err)
	}
	var nets, hws int
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Errorf("invalid record %v: %v", r, err)
		}
		switch r.Kind {
		case deps.KindNetwork:
			nets++
			if r.Network.Route[0] != "Switch1" {
				t.Errorf("route %v should start at Switch1", r.Network.Route)
			}
		case deps.KindHardware:
			hws++
		}
	}
	if nets != 2 { // one route per core
		t.Errorf("network records = %d, want 2", nets)
	}
	if hws != 2 { // VM itself + host
		t.Errorf("hardware records = %d, want 2", hws)
	}
	if _, err := c.DependencyRecords("ghost"); err == nil {
		t.Error("unknown VM accepted")
	}
}

func TestServerPairs(t *testing.T) {
	c := FourServerLab(1)
	pairs := c.ServerPairs()
	if len(pairs) != 6 {
		t.Fatalf("pairs = %d, want 6", len(pairs))
	}
	if !reflect.DeepEqual(pairs[0], [2]string{"Server1", "Server2"}) {
		t.Errorf("first pair = %v", pairs[0])
	}
}

func TestVMGroupStored(t *testing.T) {
	c := FourServerLab(1)
	vm, err := c.Place("VM7", "riak", LeastLoaded)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Group != "riak" {
		t.Errorf("VM group = %q, want riak", vm.Group)
	}
	pinned, err := c.PlaceOn("VM9", "Server1")
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Group != "" {
		t.Errorf("pinned VM group = %q, want empty", pinned.Group)
	}
}
