// Package report defines INDaaS auditing reports (§4.1.4, §4.2.5): ranked
// risk groups per deployment, independence scores, deployment rankings, and
// text rendering for the auditing client.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// RGEntry is one ranked risk group in a deployment audit.
type RGEntry struct {
	Components []string // sorted component labels
	Size       int
	Prob       float64 // NaN when unweighted
	Importance float64 // I_C = Pr(C)/Pr(T); NaN when unweighted
}

// DeploymentAudit is the audit outcome for one redundancy deployment.
type DeploymentAudit struct {
	// Deployment names the audited configuration, e.g. "Rack5+Rack29".
	Deployment string
	// Sources are the redundant data sources of the deployment.
	Sources []string
	// Expected is the expected minimum RG size (the number of source
	// failures that should be required for an outage).
	Expected int
	// RGs is the ranking list of risk groups (§4.1.3 order).
	RGs []RGEntry
	// Unexpected counts RGs smaller than Expected.
	Unexpected int
	// Score is the paper's §4.1.4 independence score over the top-n RGs.
	Score float64
	// ScoreTopN records the n used for Score.
	ScoreTopN int
	// FailureProb is Pr(top event); NaN when unweighted.
	FailureProb float64
	// Algorithm and Elapsed record how the audit ran.
	Algorithm string
	Elapsed   time.Duration
	// Truncated indicates the RG list was cut for reporting.
	Truncated bool
}

// SizeVector returns how many RGs the audit has of each size 1..max. Used
// to compare deployments at the size level of detail: fewer small RGs is
// qualitatively safer (an RG of size s needs s simultaneous failures).
func (d *DeploymentAudit) SizeVector() []int {
	maxSize := 0
	for _, rg := range d.RGs {
		if rg.Size > maxSize {
			maxSize = rg.Size
		}
	}
	v := make([]int, maxSize)
	for _, rg := range d.RGs {
		v[rg.Size-1]++
	}
	return v
}

// Report is a full auditing report over alternative deployments, ranked
// most-independent first. Its JSON form is stable (see json.go): unknown
// probabilities are omitted rather than encoded as NaN, which
// encoding/json rejects.
type Report struct {
	Title  string            `json:"title"`
	Audits []DeploymentAudit `json:"audits"`
}

// CompareMode selects how deployments are ranked in the report.
type CompareMode int

const (
	// CompareBySizeVector orders deployments by (count of size-1 RGs,
	// count of size-2 RGs, …) ascending lexicographically — the qualitative
	// surrogate for failure probability when no weights are available.
	// Deterministic tie-break: deployment name.
	CompareBySizeVector CompareMode = iota
	// CompareByFailureProb orders deployments by Pr(top event) ascending.
	CompareByFailureProb
	// CompareByScore orders by the §4.1.4 independence score, descending
	// (larger top-n RG sizes / importances mean each failure mode needs
	// more simultaneous failures).
	CompareByScore
)

// Rank sorts the report's audits per the mode.
func (r *Report) Rank(mode CompareMode) {
	sort.SliceStable(r.Audits, func(i, j int) bool {
		a, b := &r.Audits[i], &r.Audits[j]
		switch mode {
		case CompareByFailureProb:
			ap, bp := a.FailureProb, b.FailureProb
			switch {
			case math.IsNaN(ap) && math.IsNaN(bp):
			case math.IsNaN(ap):
				return false
			case math.IsNaN(bp):
				return true
			case ap != bp:
				return ap < bp
			}
		case CompareByScore:
			if a.Score != b.Score {
				return a.Score > b.Score
			}
		default:
			av, bv := a.SizeVector(), b.SizeVector()
			for k := 0; k < len(av) || k < len(bv); k++ {
				var x, y int
				if k < len(av) {
					x = av[k]
				}
				if k < len(bv) {
					y = bv[k]
				}
				if x != y {
					return x < y
				}
			}
		}
		return a.Deployment < b.Deployment
	})
}

// Best returns the top-ranked audit; Rank must have been called.
func (r *Report) Best() (*DeploymentAudit, error) {
	if len(r.Audits) == 0 {
		return nil, fmt.Errorf("report: empty report")
	}
	return &r.Audits[0], nil
}

// Render writes a human-readable report. maxRGs caps the RGs printed per
// deployment (0 = 10).
func (r *Report) Render(w io.Writer, maxRGs int) error {
	if maxRGs <= 0 {
		maxRGs = 10
	}
	if _, err := fmt.Fprintf(w, "=== INDaaS auditing report: %s ===\n", r.Title); err != nil {
		return err
	}
	for rank, a := range r.Audits {
		head := fmt.Sprintf("#%d %s", rank+1, a.Deployment)
		if !math.IsNaN(a.FailureProb) {
			head += fmt.Sprintf("  Pr(outage)=%.6f", a.FailureProb)
		}
		head += fmt.Sprintf("  score=%.4f  unexpected-RGs=%d", a.Score, a.Unexpected)
		if _, err := fmt.Fprintln(w, head); err != nil {
			return err
		}
		for i, rg := range a.RGs {
			if i >= maxRGs {
				if _, err := fmt.Fprintf(w, "    … %d more RGs\n", len(a.RGs)-maxRGs); err != nil {
					return err
				}
				break
			}
			line := fmt.Sprintf("    RG%-3d size=%d {%s}", i+1, rg.Size, strings.Join(rg.Components, ", "))
			if !math.IsNaN(rg.Importance) {
				line += fmt.Sprintf("  importance=%.4f", rg.Importance)
			}
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}

// PIAEntry is one privately-audited deployment (§4.2.5).
type PIAEntry struct {
	Providers []string      `json:"providers"`
	Jaccard   float64       `json:"jaccard"`
	Estimated bool          `json:"estimated,omitempty"` // true when MinHash-estimated rather than exact
	BytesSent int64         `json:"bytes_sent,omitempty"`
	Elapsed   time.Duration `json:"elapsed_ns,omitempty"`
}

// PIAReport ranks redundancy deployments by Jaccard similarity: lower
// similarity means fewer shared components, i.e. more independence.
type PIAReport struct {
	Title   string     `json:"title"`
	Entries []PIAEntry `json:"entries"`
}

// Rank sorts entries ascending by Jaccard (most independent first),
// tie-breaking on the provider list.
func (r *PIAReport) Rank() {
	sort.SliceStable(r.Entries, func(i, j int) bool {
		if r.Entries[i].Jaccard != r.Entries[j].Jaccard {
			return r.Entries[i].Jaccard < r.Entries[j].Jaccard
		}
		return strings.Join(r.Entries[i].Providers, "+") < strings.Join(r.Entries[j].Providers, "+")
	})
}

// Render writes the PIA ranking table (the shape of the paper's Table 2).
func (r *PIAReport) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "=== INDaaS private auditing report: %s ===\n", r.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-4s %-40s %-8s\n", "Rank", "Redundancy Deployment", "Jaccard"); err != nil {
		return err
	}
	for i, e := range r.Entries {
		tag := ""
		if e.Estimated {
			tag = " (MinHash)"
		}
		if _, err := fmt.Fprintf(w, "%-4d %-40s %.4f%s\n",
			i+1, strings.Join(e.Providers, " & "), e.Jaccard, tag); err != nil {
			return err
		}
	}
	return nil
}
