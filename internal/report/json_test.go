package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureReport mixes a weighted audit with an unweighted one whose
// probability fields are all NaN — the case that used to make
// encoding/json fail outright.
func fixtureReport() *Report {
	return &Report{
		Title: "golden",
		Audits: []DeploymentAudit{
			{
				Deployment: "weighted",
				Sources:    []string{"s1", "s2"},
				Expected:   2,
				RGs: []RGEntry{
					{Components: []string{"ToR1"}, Size: 1, Prob: 0.01, Importance: 0.42},
					{Components: []string{"Core1", "Core2"}, Size: 2, Prob: 0.0001, Importance: 0.058},
				},
				Unexpected:  1,
				Score:       1.25,
				ScoreTopN:   2,
				FailureProb: 0.0101,
				Algorithm:   "minimal-rg",
				Elapsed:     1500 * time.Microsecond,
			},
			{
				Deployment: "unweighted",
				Sources:    []string{"s1", "s3"},
				Expected:   2,
				RGs: []RGEntry{
					{Components: []string{"libc6"}, Size: 1, Prob: math.NaN(), Importance: math.NaN()},
				},
				Unexpected:  1,
				Score:       1,
				ScoreTopN:   1,
				FailureProb: math.NaN(),
				Algorithm:   "failure-sampling",
				Elapsed:     2 * time.Millisecond,
				Truncated:   true,
			},
		},
	}
}

// TestReportJSONGoldenRoundTrip pins the wire format: marshaling the
// fixture must reproduce testdata/report_golden.json byte for byte, and
// decoding the golden file must round-trip back to the same bytes (NaN
// fields come back as NaN, not zero).
func TestReportJSONGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "report_golden.json")
	got, err := json.MarshalIndent(fixtureReport(), "", "  ")
	if err != nil {
		t.Fatalf("marshal with NaN fields: %v", err)
	}
	got = append(got, '\n')
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/report -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("encoding drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}

	var decoded Report
	if err := json.Unmarshal(want, &decoded); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(decoded.Audits[1].FailureProb) {
		t.Errorf("omitted failure_prob must decode to NaN, got %v", decoded.Audits[1].FailureProb)
	}
	if !math.IsNaN(decoded.Audits[1].RGs[0].Prob) || !math.IsNaN(decoded.Audits[1].RGs[0].Importance) {
		t.Error("omitted RG prob/importance must decode to NaN")
	}
	if decoded.Audits[0].Elapsed != 1500*time.Microsecond {
		t.Errorf("elapsed_ns round-trip: got %v", decoded.Audits[0].Elapsed)
	}
	again, err := json.MarshalIndent(&decoded, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	again = append(again, '\n')
	if !bytes.Equal(again, want) {
		t.Errorf("decode→encode is not stable.\ngot:\n%s", again)
	}
}

// TestRenderUnweightedStillWorks guards the text renderer against the NaN
// fields the JSON path special-cases.
func TestRenderUnweightedStillWorks(t *testing.T) {
	var buf bytes.Buffer
	if err := fixtureReport().Render(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}
