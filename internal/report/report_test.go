package report

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleAudits() []DeploymentAudit {
	return []DeploymentAudit{
		{
			Deployment: "risky",
			Expected:   2,
			RGs: []RGEntry{
				{Components: []string{"tor"}, Size: 1},
				{Components: []string{"a", "b"}, Size: 2},
			},
			Unexpected:  1,
			Score:       3,
			FailureProb: 0.3,
		},
		{
			Deployment: "safe",
			Expected:   2,
			RGs: []RGEntry{
				{Components: []string{"x", "y"}, Size: 2},
				{Components: []string{"p", "q"}, Size: 2},
			},
			Score:       4,
			FailureProb: 0.02,
		},
		{
			Deployment: "middling",
			Expected:   2,
			RGs: []RGEntry{
				{Components: []string{"x", "y"}, Size: 2},
				{Components: []string{"p", "q"}, Size: 2},
				{Components: []string{"r", "s"}, Size: 2},
			},
			Score:       6,
			FailureProb: 0.05,
		},
	}
}

func order(r *Report) []string {
	var out []string
	for _, a := range r.Audits {
		out = append(out, a.Deployment)
	}
	return out
}

func TestSizeVector(t *testing.T) {
	a := sampleAudits()[0]
	if got := a.SizeVector(); !reflect.DeepEqual(got, []int{1, 1}) {
		t.Errorf("SizeVector = %v", got)
	}
	empty := DeploymentAudit{}
	if got := empty.SizeVector(); len(got) != 0 {
		t.Errorf("empty SizeVector = %v", got)
	}
}

func TestRankBySizeVector(t *testing.T) {
	r := &Report{Audits: sampleAudits()}
	r.Rank(CompareBySizeVector)
	if got := order(r); !reflect.DeepEqual(got, []string{"safe", "middling", "risky"}) {
		t.Errorf("size-vector order = %v", got)
	}
}

func TestRankByFailureProb(t *testing.T) {
	r := &Report{Audits: sampleAudits()}
	r.Rank(CompareByFailureProb)
	if got := order(r); !reflect.DeepEqual(got, []string{"safe", "middling", "risky"}) {
		t.Errorf("probability order = %v", got)
	}
	// NaN probabilities sink to the bottom.
	r.Audits[0].FailureProb = math.NaN()
	r.Rank(CompareByFailureProb)
	if r.Audits[len(r.Audits)-1].Deployment != "safe" {
		t.Errorf("NaN should rank last: %v", order(r))
	}
}

func TestRankByScore(t *testing.T) {
	r := &Report{Audits: sampleAudits()}
	r.Rank(CompareByScore)
	if got := order(r); !reflect.DeepEqual(got, []string{"middling", "safe", "risky"}) {
		t.Errorf("score order = %v", got)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	r := &Report{Audits: []DeploymentAudit{
		{Deployment: "bbb", Score: 1},
		{Deployment: "aaa", Score: 1},
	}}
	r.Rank(CompareByScore)
	if got := order(r); !reflect.DeepEqual(got, []string{"aaa", "bbb"}) {
		t.Errorf("tie-break order = %v", got)
	}
}

func TestBest(t *testing.T) {
	r := &Report{}
	if _, err := r.Best(); err == nil {
		t.Error("Best on empty report succeeded")
	}
	r.Audits = sampleAudits()
	r.Rank(CompareByFailureProb)
	best, err := r.Best()
	if err != nil || best.Deployment != "safe" {
		t.Errorf("Best = %v, %v", best, err)
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{Title: "demo", Audits: sampleAudits()}
	r.Rank(CompareBySizeVector)
	var sb strings.Builder
	if err := r.Render(&sb, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"demo", "#1 safe", "Pr(outage)", "… 1 more RGs", "unexpected-RGs=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestReportRenderUnweighted(t *testing.T) {
	r := &Report{Title: "u", Audits: []DeploymentAudit{{
		Deployment:  "d",
		RGs:         []RGEntry{{Components: []string{"c"}, Size: 1, Prob: math.NaN(), Importance: math.NaN()}},
		FailureProb: math.NaN(),
	}}}
	var sb strings.Builder
	if err := r.Render(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Errorf("unweighted render leaks NaN:\n%s", sb.String())
	}
}

func TestPIAReportRankAndRender(t *testing.T) {
	r := &PIAReport{Title: "pia", Entries: []PIAEntry{
		{Providers: []string{"B", "C"}, Jaccard: 0.5},
		{Providers: []string{"A", "B"}, Jaccard: 0.1},
		{Providers: []string{"A", "C"}, Jaccard: 0.1},
	}}
	r.Rank()
	if r.Entries[0].Providers[1] != "B" { // A&B before A&C on tie
		t.Errorf("PIA order = %v", r.Entries)
	}
	r.Entries[0].Estimated = true
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "(MinHash)") || !strings.Contains(out, "B & C") {
		t.Errorf("PIA render:\n%s", out)
	}
}
