// Stable JSON encodings for audit reports.
//
// encoding/json refuses NaN outright, and unweighted audits legitimately
// carry NaN in RGEntry.Prob/Importance and DeploymentAudit.FailureProb ("no
// probability known"). The custom marshalers below encode unknown
// probabilities by omission and decode omission (or null) back to NaN, so a
// report round-trips bit-stable through the audit service's HTTP API.
// Elapsed times are pinned to integer nanoseconds under "elapsed_ns" rather
// than time.Duration's default encoding, keeping the wire format explicit.
package report

import (
	"encoding/json"
	"math"
	"time"
)

// nanOmit maps NaN to nil so "unknown" serializes as an omitted field.
func nanOmit(f float64) *float64 {
	if math.IsNaN(f) {
		return nil
	}
	return &f
}

// orNaN maps a missing/null field back to NaN.
func orNaN(p *float64) float64 {
	if p == nil {
		return math.NaN()
	}
	return *p
}

type rgEntryJSON struct {
	Components []string `json:"components"`
	Size       int      `json:"size"`
	Prob       *float64 `json:"prob,omitempty"`
	Importance *float64 `json:"importance,omitempty"`
}

// MarshalJSON encodes the entry with unknown (NaN) probabilities omitted.
func (e RGEntry) MarshalJSON() ([]byte, error) {
	return json.Marshal(rgEntryJSON{
		Components: e.Components,
		Size:       e.Size,
		Prob:       nanOmit(e.Prob),
		Importance: nanOmit(e.Importance),
	})
}

// UnmarshalJSON decodes the entry, mapping omitted or null probabilities
// back to NaN.
func (e *RGEntry) UnmarshalJSON(data []byte) error {
	var w rgEntryJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*e = RGEntry{
		Components: w.Components,
		Size:       w.Size,
		Prob:       orNaN(w.Prob),
		Importance: orNaN(w.Importance),
	}
	return nil
}

type deploymentAuditJSON struct {
	Deployment  string    `json:"deployment"`
	Sources     []string  `json:"sources"`
	Expected    int       `json:"expected"`
	RGs         []RGEntry `json:"rgs"`
	Unexpected  int       `json:"unexpected"`
	Score       *float64  `json:"score,omitempty"`
	ScoreTopN   int       `json:"score_top_n"`
	FailureProb *float64  `json:"failure_prob,omitempty"`
	Algorithm   string    `json:"algorithm"`
	ElapsedNS   int64     `json:"elapsed_ns"`
	Truncated   bool      `json:"truncated,omitempty"`
}

// MarshalJSON encodes the audit with an omitted failure probability when it
// is unknown (unweighted audits) and the elapsed time as integer
// nanoseconds.
func (d DeploymentAudit) MarshalJSON() ([]byte, error) {
	return json.Marshal(deploymentAuditJSON{
		Deployment:  d.Deployment,
		Sources:     d.Sources,
		Expected:    d.Expected,
		RGs:         d.RGs,
		Unexpected:  d.Unexpected,
		Score:       nanOmit(d.Score),
		ScoreTopN:   d.ScoreTopN,
		FailureProb: nanOmit(d.FailureProb),
		Algorithm:   d.Algorithm,
		ElapsedNS:   d.Elapsed.Nanoseconds(),
		Truncated:   d.Truncated,
	})
}

// UnmarshalJSON decodes the audit, mapping omitted probabilities back to
// NaN.
func (d *DeploymentAudit) UnmarshalJSON(data []byte) error {
	var w deploymentAuditJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*d = DeploymentAudit{
		Deployment:  w.Deployment,
		Sources:     w.Sources,
		Expected:    w.Expected,
		RGs:         w.RGs,
		Unexpected:  w.Unexpected,
		Score:       orNaN(w.Score),
		ScoreTopN:   w.ScoreTopN,
		FailureProb: orNaN(w.FailureProb),
		Algorithm:   w.Algorithm,
		Elapsed:     time.Duration(w.ElapsedNS),
		Truncated:   w.Truncated,
	}
	return nil
}
