package agent

import (
	"testing"

	"indaas/internal/audittrail"
)

// TestPSOPAuditTrail runs a P-SOP round and checks the §5.2 accountability
// path: every provider's signed commitment is collected and verified, and a
// later meta-audit accepts honest dataset reveals while catching
// under-declared ones.
func TestPSOPAuditTrail(t *testing.T) {
	sets := map[string][]string{
		"CloudA": {"pkg:libc6=2.19", "a/one", "a/two"},
		"CloudB": {"pkg:libc6=2.19", "b/one"},
	}
	var addrs []string
	order := []string{"CloudA", "CloudB"}
	for _, name := range order {
		px, err := NewNamedProxy("127.0.0.1:0", name, sets[name])
		if err != nil {
			t.Fatal(err)
		}
		defer px.Close()
		addrs = append(addrs, px.Addr())
	}
	inter, union, commitments, err := SupervisePSOPWithTrail("trail-run", addrs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if inter != 1 || union != 4 {
		t.Errorf("cardinalities = (%d, %d), want (1, 4)", inter, union)
	}
	if len(commitments) != 2 {
		t.Fatalf("commitments = %d, want 2", len(commitments))
	}
	byProvider := map[string]*audittrail.Commitment{}
	for _, c := range commitments {
		if err := c.Verify(); err != nil {
			t.Errorf("commitment from %s: %v", c.Provider, err)
		}
		if c.RunID != "trail-run" {
			t.Errorf("commitment run ID = %q", c.RunID)
		}
		byProvider[c.Provider] = c
	}
	for _, name := range order {
		c, ok := byProvider[name]
		if !ok {
			t.Fatalf("no commitment from %s", name)
		}
		// Honest reveal passes the meta-audit.
		if err := audittrail.MetaAudit(c, sets[name]); err != nil {
			t.Errorf("meta-audit of %s: %v", name, err)
		}
		// The §5.2 attack — revealing fewer components than were used —
		// is caught.
		if err := audittrail.MetaAudit(c, sets[name][:1]); err == nil {
			t.Errorf("%s: under-declared reveal accepted", name)
		}
	}
}
