package agent

import (
	"fmt"
	"log"
	"math"

	"indaas/internal/depdb"
	"indaas/internal/sia"
	"indaas/internal/wire"
)

// Agent is the auditing agent server: it receives client specifications,
// collects dependency data from the data sources, runs SIA and returns the
// ranked report (§2 Steps 2–6).
type Agent struct {
	srv *Server
}

// NewAgent starts an auditing agent on addr.
func NewAgent(addr string) (*Agent, error) {
	a := &Agent{}
	srv, err := newServer(addr, a.handle)
	if err != nil {
		return nil, err
	}
	a.srv = srv
	return a, nil
}

// Addr returns the agent's listen address.
func (a *Agent) Addr() string { return a.srv.Addr() }

// Close shuts the agent down.
func (a *Agent) Close() error { return a.srv.Close() }

func (a *Agent) handle(conn *wire.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		if msg.Type != TypeAuditRequest {
			_ = conn.SendError(fmt.Errorf("unexpected message %q", msg.Type))
			return
		}
		var req AuditRequest
		if err := msg.Decode(&req); err != nil {
			_ = conn.SendError(err)
			return
		}
		resp, err := a.runAudit(&req)
		if err != nil {
			_ = conn.SendError(err)
			continue
		}
		if err := conn.Send(TypeAuditResponse, resp); err != nil {
			log.Printf("agent: send report: %v", err)
			return
		}
	}
}

// runAudit executes §2 Steps 2–6 for one client specification.
func (a *Agent) runAudit(req *AuditRequest) (*AuditResponse, error) {
	if len(req.Sources) == 0 {
		return nil, fmt.Errorf("agent: audit request lists no data sources")
	}
	if len(req.Deployments) == 0 {
		return nil, fmt.Errorf("agent: audit request lists no deployments")
	}
	// Steps 2–3: query every data source for its dependency records.
	db := depdb.New()
	for _, addr := range req.Sources {
		if err := collectFrom(addr, req, db); err != nil {
			return nil, err
		}
	}
	// Step 4/5 (SIA path): build and audit each deployment alternative.
	algo, err := algorithmFromName(req.Algorithm)
	if err != nil {
		return nil, err
	}
	kinds, err := kindsFromNames(req.Kinds)
	if err != nil {
		return nil, err
	}
	opts := sia.Options{Algorithm: algo, Rounds: req.Rounds, RankMode: sia.RankBySize}
	var prob func(string) float64
	if req.FailureProb > 0 {
		if req.FailureProb > 1 {
			return nil, fmt.Errorf("agent: failure probability %v out of range", req.FailureProb)
		}
		p := req.FailureProb
		prob = func(string) float64 { return p }
		opts.RankMode = sia.RankByProb
	}
	var specs []sia.GraphSpec
	for _, d := range req.Deployments {
		if d.Name == "" || len(d.Servers) == 0 {
			return nil, fmt.Errorf("agent: deployment needs a name and servers: %+v", d)
		}
		specs = append(specs, sia.GraphSpec{
			Deployment: d.Name,
			Servers:    d.Servers,
			Needed:     d.Needed,
			Kinds:      kinds,
			Prob:       prob,
		})
	}
	rep, err := sia.AuditDeployments(db, req.Title, specs, opts)
	if err != nil {
		return nil, err
	}
	// Step 6: serialize the ranked report.
	resp := &AuditResponse{Title: rep.Title}
	for _, audit := range rep.Audits {
		wa := DeploymentAudit{
			Deployment: audit.Deployment,
			Expected:   audit.Expected,
			Unexpected: audit.Unexpected,
			Score:      audit.Score,
		}
		if !math.IsNaN(audit.FailureProb) {
			p := audit.FailureProb
			wa.FailureProb = &p
		}
		for _, rg := range audit.RGs {
			wa.RGs = append(wa.RGs, rg.Components)
		}
		resp.Audits = append(resp.Audits, wa)
	}
	return resp, nil
}

func collectFrom(addr string, req *AuditRequest, db *depdb.DB) error {
	conn, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(TypeCollectRequest, CollectRequest{Kinds: req.Kinds}); err != nil {
		return err
	}
	var resp CollectResponse
	if err := conn.Expect(TypeCollectResponse, &resp); err != nil {
		return fmt.Errorf("agent: collecting from %s: %w", addr, err)
	}
	for _, wr := range resp.Records {
		rec, err := FromWire(wr)
		if err != nil {
			return fmt.Errorf("agent: bad record from %s: %w", addr, err)
		}
		if err := db.Put(rec); err != nil {
			return err
		}
	}
	return nil
}

// Client is the auditing client library (Alice in Fig. 1).
type Client struct {
	conn *wire.Conn
}

// NewClient connects to an auditing agent.
func NewClient(agentAddr string) (*Client, error) {
	conn, err := wire.Dial(agentAddr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close disconnects from the agent.
func (c *Client) Close() error { return c.conn.Close() }

// Audit submits a specification (§2 Step 1) and waits for the report.
func (c *Client) Audit(req AuditRequest) (*AuditResponse, error) {
	if err := c.conn.Send(TypeAuditRequest, req); err != nil {
		return nil, err
	}
	var resp AuditResponse
	if err := c.conn.Expect(TypeAuditResponse, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}
