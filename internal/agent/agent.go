// Package agent implements the networked INDaaS roles of Fig. 1 and Fig. 5:
//
//   - Source: a data source server exposing its dependency acquisition
//     modules to the auditing agent (SIA, Fig. 5a);
//   - Agent: the auditing agent server mediating between auditing clients
//     and data sources;
//   - Client: the auditing client library (§2 Steps 1 and 6);
//   - Proxy: a cloud provider's PIA proxy executing the P-SOP ring protocol
//     with other proxies under agent supervision (Fig. 5b).
//
// All roles speak the wire package's length-prefixed JSON protocol over TCP.
package agent

import (
	"fmt"
	"log"
	"net"
	"sync"

	"indaas/internal/deps"
	"indaas/internal/sia"
	"indaas/internal/wire"
)

// Message types of the SIA flow.
const (
	TypeCollectRequest  = "collect-request"
	TypeCollectResponse = "collect-response"
	TypeAuditRequest    = "audit-request"
	TypeAuditResponse   = "audit-response"
)

// CollectRequest asks a data source for dependency records (§2 Step 2).
type CollectRequest struct {
	// Subjects restricts collection to these servers; empty = all.
	Subjects []string `json:"subjects,omitempty"`
	// Kinds restricts the dependency kinds (by Kind.String name); empty = all.
	Kinds []string `json:"kinds,omitempty"`
}

// WireRecord is the JSON encoding of one dependency record.
type WireRecord struct {
	Kind  string   `json:"kind"`
	Src   string   `json:"src,omitempty"`
	Dst   string   `json:"dst,omitempty"`
	Route []string `json:"route,omitempty"`
	HW    string   `json:"hw,omitempty"`
	Type  string   `json:"type,omitempty"`
	Dep   []string `json:"dep,omitempty"`
	Pgm   string   `json:"pgm,omitempty"`
}

// ToWire converts a dependency record for transport.
func ToWire(r deps.Record) WireRecord {
	w := WireRecord{Kind: r.Kind.String()}
	switch r.Kind {
	case deps.KindNetwork:
		w.Src, w.Dst, w.Route = r.Network.Src, r.Network.Dst, r.Network.Route
	case deps.KindHardware:
		w.HW, w.Type, w.Dep = r.Hardware.HW, r.Hardware.Type, []string{r.Hardware.Dep}
	case deps.KindSoftware:
		w.Pgm, w.HW, w.Dep = r.Software.Pgm, r.Software.HW, r.Software.Dep
	}
	return w
}

// FromWire converts a transported record back.
func FromWire(w WireRecord) (deps.Record, error) {
	kind, err := deps.KindFromString(w.Kind)
	if err != nil {
		return deps.Record{}, err
	}
	var rec deps.Record
	switch kind {
	case deps.KindNetwork:
		rec = deps.NewNetwork(w.Src, w.Dst, w.Route...)
	case deps.KindHardware:
		dep := ""
		if len(w.Dep) > 0 {
			dep = w.Dep[0]
		}
		rec = deps.NewHardware(w.HW, w.Type, dep)
	case deps.KindSoftware:
		rec = deps.NewSoftware(w.Pgm, w.HW, w.Dep...)
	}
	if err := rec.Validate(); err != nil {
		return deps.Record{}, err
	}
	return rec, nil
}

// CollectResponse returns the requested records (§2 Step 5).
type CollectResponse struct {
	Records []WireRecord `json:"records"`
}

// AuditRequest is the client's specification (§2 Step 1): data sources to
// contact, alternative deployments to audit, and auditing parameters.
type AuditRequest struct {
	Title string `json:"title"`
	// Sources lists the data source server addresses to collect from.
	Sources []string `json:"sources"`
	// Deployments lists the alternative redundancy deployments; each is a
	// named list of servers.
	Deployments []DeploymentSpec `json:"deployments"`
	// Kinds restricts dependency kinds considered (names); empty = all.
	Kinds []string `json:"kinds,omitempty"`
	// Algorithm: "minimal-rg" (default) or "failure-sampling".
	Algorithm string `json:"algorithm,omitempty"`
	// Rounds for failure sampling.
	Rounds int `json:"rounds,omitempty"`
	// FailureProb, when > 0, assigns this probability to every component
	// and ranks by failure probability; otherwise size ranking is used.
	FailureProb float64 `json:"failure_prob,omitempty"`
}

// DeploymentSpec names one alternative deployment.
type DeploymentSpec struct {
	Name    string   `json:"name"`
	Servers []string `json:"servers"`
	// Needed is the n of n-of-m redundancy; 0 = all.
	Needed int `json:"needed,omitempty"`
}

// AuditResponse carries the ranked report back to the client (§2 Step 6).
type AuditResponse struct {
	Title  string            `json:"title"`
	Audits []DeploymentAudit `json:"audits"`
}

// DeploymentAudit mirrors report.DeploymentAudit for transport.
type DeploymentAudit struct {
	Deployment  string     `json:"deployment"`
	Expected    int        `json:"expected"`
	Unexpected  int        `json:"unexpected"`
	Score       float64    `json:"score"`
	FailureProb *float64   `json:"failure_prob,omitempty"`
	RGs         [][]string `json:"rgs"`
}

// Server is a generic accept loop around a role-specific connection handler.
type Server struct {
	ln      net.Listener
	handler func(*wire.Conn)
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
}

func newServer(addr string, handler func(*wire.Conn)) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("agent: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, handler: handler}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			log.Printf("agent: accept: %v", err)
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			conn := wire.NewConn(c)
			defer conn.Close()
			s.handler(conn)
		}()
	}
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting and waits for in-flight handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// kindsFromNames parses dependency kind names.
func kindsFromNames(names []string) ([]deps.Kind, error) {
	var out []deps.Kind
	for _, n := range names {
		k, err := deps.KindFromString(n)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// algorithmFromName parses the audit algorithm name.
func algorithmFromName(name string) (sia.Algorithm, error) {
	switch name {
	case "", "minimal-rg":
		return sia.MinimalRG, nil
	case "failure-sampling":
		return sia.FailureSampling, nil
	default:
		return 0, fmt.Errorf("agent: unknown algorithm %q", name)
	}
}
