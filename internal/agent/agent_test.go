package agent

import (
	"math"
	"strings"
	"testing"

	"indaas/internal/deps"
	"indaas/internal/psi"
)

func TestWireRecordRoundTrip(t *testing.T) {
	records := []deps.Record{
		deps.NewNetwork("S1", "Internet", "ToR1", "Core1"),
		deps.NewHardware("S1", "Disk", "S1-SED900"),
		deps.NewSoftware("Riak1", "S1", "libc6", "libsvn1"),
	}
	for i, r := range records {
		got, err := FromWire(ToWire(r))
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !got.Equal(r) {
			t.Errorf("record %d: %v != %v", i, got, r)
		}
	}
	if _, err := FromWire(WireRecord{Kind: "bogus"}); err == nil {
		t.Error("bogus kind accepted")
	}
	if _, err := FromWire(WireRecord{Kind: "hardware"}); err == nil {
		t.Error("invalid hardware record accepted")
	}
}

func TestStaticAcquirer(t *testing.T) {
	a := StaticAcquirer{
		deps.NewHardware("S1", "CPU", "m1"),
		deps.NewHardware("S2", "CPU", "m2"),
	}
	all, err := a.Collect(nil)
	if err != nil || len(all) != 2 {
		t.Fatalf("Collect(nil) = %d records, %v", len(all), err)
	}
	one, err := a.Collect([]string{"S2"})
	if err != nil || len(one) != 1 || one[0].Hardware.HW != "S2" {
		t.Fatalf("Collect(S2) = %v, %v", one, err)
	}
}

// TestSIAOverLoopback exercises the full Fig. 5a flow: two data sources, an
// auditing agent, and a client, all over 127.0.0.1.
func TestSIAOverLoopback(t *testing.T) {
	// Data source 1 serves S1/S2 (shared ToR); source 2 serves S3/S4
	// (disjoint network).
	src1, err := NewSource("127.0.0.1:0", StaticAcquirer{
		deps.NewNetwork("S1", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("S2", "Internet", "ToR1", "Core2"),
		deps.NewHardware("S1", "Disk", "S1-disk"),
		deps.NewHardware("S2", "Disk", "S2-disk"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src1.Close()
	src2, err := NewSource("127.0.0.1:0", StaticAcquirer{
		deps.NewNetwork("S3", "Internet", "ToR3", "Core3"),
		deps.NewNetwork("S4", "Internet", "ToR4", "Core4"),
		deps.NewHardware("S3", "Disk", "S3-disk"),
		deps.NewHardware("S4", "Disk", "S4-disk"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src2.Close()

	ag, err := NewAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close()

	client, err := NewClient(ag.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	resp, err := client.Audit(AuditRequest{
		Title:   "loopback",
		Sources: []string{src1.Addr(), src2.Addr()},
		Deployments: []DeploymentSpec{
			{Name: "shared-tor", Servers: []string{"S1", "S2"}},
			{Name: "disjoint", Servers: []string{"S3", "S4"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Audits) != 2 {
		t.Fatalf("audits = %d", len(resp.Audits))
	}
	// The disjoint deployment must rank first (no unexpected RGs).
	if resp.Audits[0].Deployment != "disjoint" {
		t.Errorf("best = %q, want disjoint", resp.Audits[0].Deployment)
	}
	if resp.Audits[0].Unexpected != 0 {
		t.Errorf("disjoint unexpected = %d", resp.Audits[0].Unexpected)
	}
	if resp.Audits[1].Unexpected == 0 {
		t.Error("shared-tor should have an unexpected RG (ToR1)")
	}
	foundToR := false
	for _, rg := range resp.Audits[1].RGs {
		if len(rg) == 1 && rg[0] == "ToR1" {
			foundToR = true
		}
	}
	if !foundToR {
		t.Errorf("ToR1 RG missing: %v", resp.Audits[1].RGs)
	}
}

func TestSIAOverLoopbackWithProbabilities(t *testing.T) {
	src, err := NewSource("127.0.0.1:0", StaticAcquirer{
		deps.NewNetwork("S1", "Internet", "ToR1"),
		deps.NewNetwork("S2", "Internet", "ToR1"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	ag, err := NewAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close()
	client, err := NewClient(ag.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	resp, err := client.Audit(AuditRequest{
		Title:       "weighted",
		Sources:     []string{src.Addr()},
		Deployments: []DeploymentSpec{{Name: "pair", Servers: []string{"S1", "S2"}}},
		FailureProb: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Audits[0].FailureProb == nil {
		t.Fatal("failure probability missing")
	}
	// Single shared ToR: Pr(T) = 0.1.
	if math.Abs(*resp.Audits[0].FailureProb-0.1) > 1e-12 {
		t.Errorf("Pr(T) = %v", *resp.Audits[0].FailureProb)
	}
}

func TestAgentErrorsPropagate(t *testing.T) {
	ag, err := NewAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ag.Close()
	client, err := NewClient(ag.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// No sources.
	if _, err := client.Audit(AuditRequest{Deployments: []DeploymentSpec{{Name: "x", Servers: []string{"S"}}}}); err == nil {
		t.Error("missing sources accepted")
	}
	// Unreachable source.
	if _, err := client.Audit(AuditRequest{
		Sources:     []string{"127.0.0.1:1"},
		Deployments: []DeploymentSpec{{Name: "x", Servers: []string{"S"}}},
	}); err == nil {
		t.Error("unreachable source accepted")
	}
	// Bad algorithm.
	src, err := NewSource("127.0.0.1:0", StaticAcquirer{deps.NewHardware("S", "CPU", "m")})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if _, err := client.Audit(AuditRequest{
		Sources:     []string{src.Addr()},
		Deployments: []DeploymentSpec{{Name: "x", Servers: []string{"S"}}},
		Algorithm:   "quantum",
	}); err == nil || !strings.Contains(err.Error(), "algorithm") {
		t.Errorf("bad algorithm not rejected: %v", err)
	}
}

// TestPSOPOverLoopback runs the full Fig. 5b PIA flow: three provider
// proxies execute the ring protocol over TCP and the supervisor counts
// cardinalities on ciphertexts only.
func TestPSOPOverLoopback(t *testing.T) {
	sets := [][]string{
		{"pkg:libc6=2.19", "pkg:libssl=1.0.1", "c1/private-a", "c1/private-b"},
		{"pkg:libc6=2.19", "pkg:libssl=1.0.1", "c2/private"},
		{"pkg:libc6=2.19", "c3/priv-1", "c3/priv-2"},
	}
	var proxies []*Proxy
	var addrs []string
	for _, s := range sets {
		p, err := NewProxy("127.0.0.1:0", s)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		proxies = append(proxies, p)
		addrs = append(addrs, p.Addr())
	}
	inter, union, err := SupervisePSOP("run-1", addrs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	wantInter, wantUnion, err := psi.CleartextCardinality(sets)
	if err != nil {
		t.Fatal(err)
	}
	if inter != wantInter || union != wantUnion {
		t.Errorf("P-SOP over TCP = (%d,%d), want (%d,%d)", inter, union, wantInter, wantUnion)
	}
	// A second run on the same proxies must work (fresh run ID).
	inter2, union2, err := SupervisePSOP("run-2", addrs, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if inter2 != wantInter || union2 != wantUnion {
		t.Errorf("second run = (%d,%d)", inter2, union2)
	}
	// Duplicate run ID must be rejected.
	if _, _, err := SupervisePSOP("run-1", addrs, 1024); err == nil {
		t.Error("duplicate run ID accepted")
	}
}

func TestProxyValidation(t *testing.T) {
	if _, err := NewProxy("127.0.0.1:0", nil); err == nil {
		t.Error("empty component-set accepted")
	}
	if _, _, err := SupervisePSOP("r", []string{"127.0.0.1:1"}, 1024); err == nil {
		t.Error("single proxy accepted")
	}
}
