package agent

import (
	"fmt"
	"log"

	"indaas/internal/deps"
	"indaas/internal/wire"
)

// Acquirer is a pluggable dependency acquisition module (§3): anything that
// can produce Table 1 records — the netflow miner, the hardware inventory
// walker, the package resolver, or canned data.
type Acquirer interface {
	// Collect returns dependency records for the requested subjects (empty
	// means all known subjects).
	Collect(subjects []string) ([]deps.Record, error)
}

// AcquirerFunc adapts a function to the Acquirer interface.
type AcquirerFunc func(subjects []string) ([]deps.Record, error)

// Collect implements Acquirer.
func (f AcquirerFunc) Collect(subjects []string) ([]deps.Record, error) { return f(subjects) }

// StaticAcquirer serves a fixed record set, filtered by subject.
type StaticAcquirer []deps.Record

// Collect implements Acquirer.
func (a StaticAcquirer) Collect(subjects []string) ([]deps.Record, error) {
	if len(subjects) == 0 {
		return a, nil
	}
	want := make(map[string]bool, len(subjects))
	for _, s := range subjects {
		want[s] = true
	}
	var out []deps.Record
	for _, r := range a {
		if want[r.Subject()] {
			out = append(out, r)
		}
	}
	return out, nil
}

// Source is a data source server: it runs the provider's dependency
// acquisition modules on demand and returns the adapted records to the
// auditing agent (§2 Steps 3 and 5).
type Source struct {
	srv       *Server
	acquirers []Acquirer
}

// NewSource starts a data source server on addr (use "127.0.0.1:0" for an
// ephemeral port) serving the given acquisition modules.
func NewSource(addr string, acquirers ...Acquirer) (*Source, error) {
	if len(acquirers) == 0 {
		return nil, fmt.Errorf("agent: source needs at least one acquisition module")
	}
	src := &Source{acquirers: acquirers}
	srv, err := newServer(addr, src.handle)
	if err != nil {
		return nil, err
	}
	src.srv = srv
	return src, nil
}

// Addr returns the source's listen address.
func (s *Source) Addr() string { return s.srv.Addr() }

// Close shuts the source down.
func (s *Source) Close() error { return s.srv.Close() }

func (s *Source) handle(conn *wire.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return // connection closed
		}
		if msg.Type != TypeCollectRequest {
			_ = conn.SendError(fmt.Errorf("unexpected message %q", msg.Type))
			return
		}
		var req CollectRequest
		if err := msg.Decode(&req); err != nil {
			_ = conn.SendError(err)
			return
		}
		records, err := s.collect(req)
		if err != nil {
			_ = conn.SendError(err)
			continue
		}
		resp := CollectResponse{Records: make([]WireRecord, 0, len(records))}
		for _, r := range records {
			resp.Records = append(resp.Records, ToWire(r))
		}
		if err := conn.Send(TypeCollectResponse, resp); err != nil {
			log.Printf("agent: source send: %v", err)
			return
		}
	}
}

func (s *Source) collect(req CollectRequest) ([]deps.Record, error) {
	kinds, err := kindsFromNames(req.Kinds)
	if err != nil {
		return nil, err
	}
	wantKind := func(k deps.Kind) bool {
		if len(kinds) == 0 {
			return true
		}
		for _, kk := range kinds {
			if kk == k {
				return true
			}
		}
		return false
	}
	var out []deps.Record
	for _, a := range s.acquirers {
		records, err := a.Collect(req.Subjects)
		if err != nil {
			return nil, err
		}
		for _, r := range records {
			if wantKind(r.Kind) {
				out = append(out, r)
			}
		}
	}
	return out, nil
}
