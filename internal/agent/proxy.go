package agent

import (
	cryptorand "crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	mathrand "math/rand"
	"sync"
	"time"

	"indaas/internal/audittrail"
	"indaas/internal/crypto/commutative"
	"indaas/internal/wire"
)

// This file implements the PIA deployment of Fig. 5b over TCP: each cloud
// provider runs a Proxy next to its dependency acquisition modules; the
// auditing agent (or any supervisor) kicks off the P-SOP ring protocol by
// telling every proxy the ring membership, then collects the fully-encrypted
// datasets and counts |∩| and |∪| on ciphertexts. The supervisor never sees
// plaintext components; proxies never see each other's plaintexts either —
// only commutatively re-encrypted blobs (honest-but-curious, no collusion,
// §4.2.1).

// Message types of the PIA flow. Setup and launch are separate phases: a
// proxy must know a run (keys, ring) before any dataset of that run can
// reach it, so the supervisor first registers the run with every proxy and
// only then tells each proxy to launch its own dataset around the ring.
const (
	TypePSOPStart   = "psop-start"   // supervisor → proxy: ring setup
	TypePSOPGo      = "psop-go"      // supervisor → proxy: launch own dataset
	TypePSOPForward = "psop-forward" // proxy → successor: dataset hop
	TypePSOPFinal   = "psop-final"   // final holder → supervisor
	TypePSOPCommit  = "psop-commit"  // proxy → supervisor: signed commitment
	TypePSOPAck     = "psop-ack"     // acknowledgement
)

// PSOPCommit carries a provider's signed dataset commitment (§5.2, "trust
// but leave an audit trail"): the Merkle root of the exact component-set
// fed into this run, signed with the provider's key, so a later meta-audit
// can catch under-declared datasets. Only the root leaves the provider.
type PSOPCommit struct {
	RunID     string `json:"run_id"`
	Provider  string `json:"provider"`
	Position  int    `json:"position"`
	Root      []byte `json:"root"`
	Count     int    `json:"count"`
	At        int64  `json:"at"` // Unix seconds
	PublicKey []byte `json:"public_key"`
	Signature []byte `json:"signature"`
}

// PSOPGo tells a proxy to inject its own dataset into the ring.
type PSOPGo struct {
	RunID string `json:"run_id"`
}

// PSOPStart tells a proxy its ring position for one protocol run.
type PSOPStart struct {
	RunID string `json:"run_id"`
	// Ring lists the proxy addresses in ring order.
	Ring []string `json:"ring"`
	// Position is this proxy's index in Ring.
	Position int `json:"position"`
	// Supervisor is the address final datasets are reported to... the
	// final holder dials the supervisor's collector listener.
	Supervisor string `json:"supervisor"`
	// Bits selects the shared group modulus (1024 or 2048).
	Bits int `json:"bits"`
}

// PSOPForward carries one dataset hop around the ring.
type PSOPForward struct {
	RunID string `json:"run_id"`
	// Owner is the ring position whose dataset this is.
	Owner int `json:"owner"`
	// Hops counts how many parties have encrypted the dataset so far.
	Hops int `json:"hops"`
	// Elements are base64-encoded group elements.
	Elements []string `json:"elements"`
}

// PSOPFinal delivers a fully-encrypted dataset to the supervisor.
type PSOPFinal struct {
	RunID    string   `json:"run_id"`
	Owner    int      `json:"owner"`
	Elements []string `json:"elements"`
}

// Proxy is one provider's PIA proxy: it holds the provider's normalized
// component-set and participates in P-SOP runs. Every run leaves an audit
// trail: the proxy signs a commitment over the dataset it used (§5.2) and
// reports it to the supervisor alongside the protocol messages.
type Proxy struct {
	srv    *Server
	signer *audittrail.Signer

	mu       sync.Mutex
	name     string
	dataset  []string // normalized, disambiguated lazily per run
	runs     map[string]*proxyRun
	rngSeed  int64
	rngCount int64
}

type proxyRun struct {
	start PSOPStart
	group *commutative.Group
	key   *commutative.Key
	perm  *mathrand.Rand
}

// NewProxy starts a PIA proxy serving the provider's component-set.
func NewProxy(addr string, components []string) (*Proxy, error) {
	return NewNamedProxy(addr, "provider", components)
}

// NewNamedProxy starts a proxy with an explicit provider name (used in the
// signed audit-trail commitments).
func NewNamedProxy(addr, name string, components []string) (*Proxy, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("agent: proxy needs a non-empty component-set")
	}
	signer, err := audittrail.NewSigner(name)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		signer:  signer,
		name:    name,
		dataset: append([]string(nil), components...),
		runs:    make(map[string]*proxyRun),
	}
	var seed [8]byte
	if _, err := io.ReadFull(cryptorand.Reader, seed[:]); err != nil {
		return nil, err
	}
	p.rngSeed = int64(binary.LittleEndian.Uint64(seed[:]))
	srv, err := newServer(addr, p.handle)
	if err != nil {
		return nil, err
	}
	p.srv = srv
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.srv.Addr() }

// Close shuts the proxy down.
func (p *Proxy) Close() error { return p.srv.Close() }

func (p *Proxy) handle(conn *wire.Conn) {
	for {
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case TypePSOPStart:
			var start PSOPStart
			if err := msg.Decode(&start); err != nil {
				_ = conn.SendError(err)
				return
			}
			if err := p.startRun(start); err != nil {
				_ = conn.SendError(err)
				continue
			}
			if err := conn.Send(TypePSOPAck, nil); err != nil {
				return
			}
		case TypePSOPGo:
			var g PSOPGo
			if err := msg.Decode(&g); err != nil {
				_ = conn.SendError(err)
				return
			}
			if err := p.launch(g.RunID); err != nil {
				_ = conn.SendError(err)
				continue
			}
			if err := conn.Send(TypePSOPAck, nil); err != nil {
				return
			}
		case TypePSOPForward:
			var fwd PSOPForward
			if err := msg.Decode(&fwd); err != nil {
				_ = conn.SendError(err)
				return
			}
			if err := p.forward(fwd); err != nil {
				_ = conn.SendError(err)
				continue
			}
			if err := conn.Send(TypePSOPAck, nil); err != nil {
				return
			}
		default:
			_ = conn.SendError(fmt.Errorf("unexpected message %q", msg.Type))
			return
		}
	}
}

// startRun registers the run and prepares this proxy's key material.
func (p *Proxy) startRun(start PSOPStart) error {
	if start.RunID == "" || len(start.Ring) < 2 {
		return fmt.Errorf("agent: malformed P-SOP start")
	}
	if start.Position < 0 || start.Position >= len(start.Ring) {
		return fmt.Errorf("agent: ring position %d out of range", start.Position)
	}
	bits := start.Bits
	if bits == 0 {
		bits = 1024
	}
	if bits != 1024 && bits != 2048 {
		return fmt.Errorf("agent: P-SOP over TCP requires a shared builtin group (1024 or 2048 bits)")
	}
	group, err := commutative.NewGroup(bits)
	if err != nil {
		return err
	}
	key, err := group.GenerateKey(cryptorand.Reader)
	if err != nil {
		return err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.runs[start.RunID]; dup {
		return fmt.Errorf("agent: duplicate P-SOP run %q", start.RunID)
	}
	p.rngCount++
	p.runs[start.RunID] = &proxyRun{
		start: start,
		group: group,
		key:   key,
		perm:  mathrand.New(mathrand.NewSource(p.rngSeed + p.rngCount)),
	}
	return nil
}

// launch encrypts the proxy's own dataset, reports the signed commitment to
// the supervisor, and sends the encrypted dataset around the ring.
func (p *Proxy) launch(runID string) error {
	p.mu.Lock()
	run, ok := p.runs[runID]
	dataset := append([]string(nil), p.dataset...)
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("agent: unknown P-SOP run %q", runID)
	}
	if err := p.sendCommitment(run, runID, dataset); err != nil {
		return err
	}
	elems := make([]*big.Int, 0, len(dataset))
	counts := map[string]int{}
	for _, e := range dataset {
		counts[e]++
		tagged := fmt.Sprintf("%s\x00%d", e, counts[e])
		elems = append(elems, run.key.Encrypt(run.group.HashToGroup([]byte(tagged))))
	}
	run.perm.Shuffle(len(elems), func(a, b int) { elems[a], elems[b] = elems[b], elems[a] })
	return p.sendHop(run, PSOPForward{
		RunID:    runID,
		Owner:    run.start.Position,
		Hops:     1,
		Elements: encodeElements(run.group, elems),
	})
}

// forward re-encrypts a dataset received from the predecessor and passes it
// along (or to the supervisor once every party has encrypted it).
func (p *Proxy) forward(fwd PSOPForward) error {
	p.mu.Lock()
	run, ok := p.runs[fwd.RunID]
	p.mu.Unlock()
	if !ok {
		return fmt.Errorf("agent: unknown P-SOP run %q", fwd.RunID)
	}
	elems, err := decodeElements(run.group, fwd.Elements)
	if err != nil {
		return err
	}
	for i, e := range elems {
		elems[i] = run.key.Encrypt(e)
	}
	run.perm.Shuffle(len(elems), func(a, b int) { elems[a], elems[b] = elems[b], elems[a] })
	return p.sendHop(run, PSOPForward{
		RunID:    fwd.RunID,
		Owner:    fwd.Owner,
		Hops:     fwd.Hops + 1,
		Elements: encodeElements(run.group, elems),
	})
}

// sendCommitment signs the run's dataset and reports the commitment.
func (p *Proxy) sendCommitment(run *proxyRun, runID string, dataset []string) error {
	c, err := p.signer.Commit(runID, dataset, time.Now())
	if err != nil {
		return err
	}
	conn, err := wire.Dial(run.start.Supervisor)
	if err != nil {
		return err
	}
	defer conn.Close()
	return conn.Send(TypePSOPCommit, PSOPCommit{
		RunID:     runID,
		Provider:  p.name,
		Position:  run.start.Position,
		Root:      c.Root,
		Count:     c.Count,
		At:        c.At.Unix(),
		PublicKey: c.PublicKey,
		Signature: c.Signature,
	})
}

func (p *Proxy) sendHop(run *proxyRun, fwd PSOPForward) error {
	k := len(run.start.Ring)
	if fwd.Hops >= k {
		// Every party encrypted: deliver to the supervisor.
		conn, err := wire.Dial(run.start.Supervisor)
		if err != nil {
			return err
		}
		defer conn.Close()
		return conn.Send(TypePSOPFinal, PSOPFinal{RunID: fwd.RunID, Owner: fwd.Owner, Elements: fwd.Elements})
	}
	succ := run.start.Ring[(run.start.Position+1)%k]
	conn, err := wire.Dial(succ)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.Send(TypePSOPForward, fwd); err != nil {
		return err
	}
	return conn.Expect(TypePSOPAck, nil)
}

func encodeElements(group *commutative.Group, elems []*big.Int) []string {
	out := make([]string, len(elems))
	for i, e := range elems {
		out[i] = base64.StdEncoding.EncodeToString(group.Bytes(e))
	}
	return out
}

func decodeElements(group *commutative.Group, in []string) ([]*big.Int, error) {
	out := make([]*big.Int, len(in))
	for i, s := range in {
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return nil, fmt.Errorf("agent: bad element encoding: %w", err)
		}
		e, err := group.FromBytes(b)
		if err != nil {
			return nil, err
		}
		out[i] = e
	}
	return out, nil
}

// SupervisePSOP runs one P-SOP round across the given proxy addresses and
// returns |∩| and |∪| counted on the fully-encrypted datasets.
func SupervisePSOP(runID string, proxies []string, bits int) (inter, union int, err error) {
	inter, union, _, err = SupervisePSOPWithTrail(runID, proxies, bits)
	return inter, union, err
}

// SupervisePSOPWithTrail additionally collects and verifies each provider's
// signed dataset commitment (§5.2). The supervisor (typically the auditing
// agent) listens on an ephemeral collector port for commitments and final
// datasets; commitments with bad signatures abort the run.
func SupervisePSOPWithTrail(runID string, proxies []string, bits int) (inter, union int, commitments []*audittrail.Commitment, err error) {
	k := len(proxies)
	if k < 2 {
		return 0, 0, nil, fmt.Errorf("agent: P-SOP needs at least two proxies")
	}
	finals := make(chan PSOPFinal, k)
	commits := make(chan PSOPCommit, k)
	collector, err := newServer("127.0.0.1:0", func(conn *wire.Conn) {
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			switch msg.Type {
			case TypePSOPFinal:
				var f PSOPFinal
				if err := msg.Decode(&f); err != nil {
					_ = conn.SendError(err)
					return
				}
				if f.RunID == runID {
					finals <- f
				}
			case TypePSOPCommit:
				var c PSOPCommit
				if err := msg.Decode(&c); err != nil {
					_ = conn.SendError(err)
					return
				}
				if c.RunID == runID {
					commits <- c
				}
			default:
				_ = conn.SendError(fmt.Errorf("unexpected message %q", msg.Type))
				return
			}
		}
	})
	if err != nil {
		return 0, 0, nil, err
	}
	defer collector.Close()

	// Phase 1: register the run with every proxy.
	for i, addr := range proxies {
		conn, err := wire.Dial(addr)
		if err != nil {
			return 0, 0, nil, err
		}
		startErr := conn.Send(TypePSOPStart, PSOPStart{
			RunID:      runID,
			Ring:       proxies,
			Position:   i,
			Supervisor: collector.Addr(),
			Bits:       bits,
		})
		if startErr == nil {
			startErr = conn.Expect(TypePSOPAck, nil)
		}
		conn.Close()
		if startErr != nil {
			return 0, 0, nil, fmt.Errorf("agent: starting proxy %s: %w", addr, startErr)
		}
	}
	// Phase 2: every proxy injects its own dataset; the ack returns once
	// the dataset has completed all hops and reached the collector.
	for _, addr := range proxies {
		conn, err := wire.Dial(addr)
		if err != nil {
			return 0, 0, nil, err
		}
		goErr := conn.Send(TypePSOPGo, PSOPGo{RunID: runID})
		if goErr == nil {
			goErr = conn.Expect(TypePSOPAck, nil)
		}
		conn.Close()
		if goErr != nil {
			return 0, 0, nil, fmt.Errorf("agent: launching proxy %s: %w", addr, goErr)
		}
	}

	// Collect the k commitments and verify their signatures.
	seenCommits := make(map[int]bool, k)
	for len(seenCommits) < k {
		c := <-commits
		if seenCommits[c.Position] {
			return 0, 0, nil, fmt.Errorf("agent: duplicate commitment from position %d", c.Position)
		}
		seenCommits[c.Position] = true
		ac := &audittrail.Commitment{
			Provider:  c.Provider,
			RunID:     c.RunID,
			Root:      c.Root,
			Count:     c.Count,
			At:        time.Unix(c.At, 0).UTC(),
			PublicKey: c.PublicKey,
			Signature: c.Signature,
		}
		if err := ac.Verify(); err != nil {
			return 0, 0, nil, fmt.Errorf("agent: commitment from %q: %w", c.Provider, err)
		}
		commitments = append(commitments, ac)
	}

	// Collect the k fully-encrypted datasets.
	seen := make(map[int][]string, k)
	for len(seen) < k {
		f := <-finals
		if _, dup := seen[f.Owner]; dup {
			return 0, 0, nil, fmt.Errorf("agent: duplicate final dataset for owner %d", f.Owner)
		}
		seen[f.Owner] = f.Elements
	}
	// Count |∩| and |∪| on opaque ciphertexts.
	counts := make(map[string]int)
	for _, elems := range seen {
		for _, e := range elems {
			counts[e]++
		}
	}
	union = len(counts)
	for _, n := range counts {
		if n == k {
			inter++
		}
	}
	return inter, union, commitments, nil
}
