package pia

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"indaas/internal/deps"
)

func fourProviders() []Provider {
	// Hand-built sets with known Jaccards:
	// A∩B = {s1,s2}, |A∪B| = 6 → 1/3.
	return []Provider{
		{Name: "CloudA", Components: []string{"s1", "s2", "a1", "a2"}},
		{Name: "CloudB", Components: []string{"s1", "s2", "b1", "b2"}},
		{Name: "CloudC", Components: []string{"s1", "c1", "c2", "c3"}},
		{Name: "CloudD", Components: []string{"d1", "d2", "d3", "d4"}},
	}
}

func TestCleartextPairs(t *testing.T) {
	providers := fourProviders()
	rep, err := AuditDeployments(Config{Protocol: ProtocolCleartext}, providers, AllPairs(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 6 {
		t.Fatalf("entries = %d", len(rep.Entries))
	}
	// Most independent first: any pair with CloudD has Jaccard 0.
	if rep.Entries[0].Jaccard != 0 {
		t.Errorf("best pair Jaccard = %v", rep.Entries[0].Jaccard)
	}
	// A&B share 2 of 6.
	found := false
	for _, e := range rep.Entries {
		if DeploymentKey(e.Providers) == "CloudA & CloudB" {
			found = true
			if math.Abs(e.Jaccard-1.0/3.0) > 1e-12 {
				t.Errorf("J(A,B) = %v, want 1/3", e.Jaccard)
			}
			if e.Estimated {
				t.Error("cleartext exact mode marked estimated")
			}
		}
	}
	if !found {
		t.Error("CloudA & CloudB missing from report")
	}
	// Ranking is ascending.
	for i := 1; i < len(rep.Entries); i++ {
		if rep.Entries[i].Jaccard < rep.Entries[i-1].Jaccard {
			t.Error("report not ranked ascending")
		}
	}
}

func TestPSOPExactMatchesCleartext(t *testing.T) {
	providers := fourProviders()
	deployments := []Deployment{{0, 1}, {1, 2}, {0, 1, 2}}
	clear, err := AuditDeployments(Config{Protocol: ProtocolCleartext}, providers, deployments)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := AuditDeployments(Config{Protocol: ProtocolPSOP, Bits: 512}, providers, deployments)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clear.Entries {
		c, p := clear.Entries[i], priv.Entries[i]
		if DeploymentKey(c.Providers) != DeploymentKey(p.Providers) {
			t.Fatalf("entry order differs: %v vs %v", c.Providers, p.Providers)
		}
		if math.Abs(c.Jaccard-p.Jaccard) > 1e-12 {
			t.Errorf("%v: cleartext %v, P-SOP %v", c.Providers, c.Jaccard, p.Jaccard)
		}
		if p.BytesSent == 0 {
			t.Error("P-SOP reported zero bandwidth")
		}
	}
}

func TestPSOPMinHashApproximates(t *testing.T) {
	// Larger sets with J = 1/3.
	var a, b []string
	for i := 0; i < 100; i++ {
		shared := fmt.Sprintf("pkg:shared-%d", i)
		a = append(a, shared, fmt.Sprintf("a/only-%d", i))
		b = append(b, shared, fmt.Sprintf("b/only-%d", i))
	}
	providers := []Provider{{Name: "A", Components: a}, {Name: "B", Components: b}}
	rep, err := AuditDeployments(Config{Protocol: ProtocolPSOP, Bits: 512, MinHashM: 256},
		providers, []Deployment{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Entries[0]
	if !e.Estimated {
		t.Error("MinHash entry not marked estimated")
	}
	if math.Abs(e.Jaccard-1.0/3.0) > 4.0/16.0 { // 4/√256
		t.Errorf("MinHash estimate %v too far from 1/3", e.Jaccard)
	}
}

func TestMinHashThresholdAutoSwitch(t *testing.T) {
	var big []string
	for i := 0; i < 60; i++ {
		big = append(big, fmt.Sprintf("x-%d", i))
	}
	providers := []Provider{
		{Name: "A", Components: big},
		{Name: "B", Components: big[:50]},
	}
	rep, err := AuditDeployments(
		Config{Protocol: ProtocolCleartext, MinHashThreshold: 50, MinHashM: 128},
		providers, []Deployment{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Entries[0].Estimated {
		t.Error("threshold did not trigger MinHash")
	}
	// Under the threshold: exact.
	rep, err = AuditDeployments(
		Config{Protocol: ProtocolCleartext, MinHashThreshold: 500},
		providers, []Deployment{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Entries[0].Estimated {
		t.Error("small sets should not be estimated")
	}
}

func TestKSProtocolEstimates(t *testing.T) {
	providers := fourProviders()
	rep, err := AuditDeployments(
		Config{Protocol: ProtocolKS, Bits: 512, MinHashM: 64, KSBlindBits: 64},
		providers, []Deployment{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Entries[0]
	if !e.Estimated {
		t.Error("KS entry must be MinHash-estimated")
	}
	if e.Jaccard < 0 || e.Jaccard > 1 {
		t.Errorf("KS Jaccard = %v", e.Jaccard)
	}
	if e.BytesSent == 0 {
		t.Error("KS reported zero bandwidth")
	}
}

func TestAuditErrors(t *testing.T) {
	providers := fourProviders()
	if _, err := AuditDeployments(Config{}, providers[:1], AllPairs(1)); err == nil {
		t.Error("single provider accepted")
	}
	if _, err := AuditDeployments(Config{}, providers, nil); err == nil {
		t.Error("no deployments accepted")
	}
	if _, err := AuditDeployments(Config{}, providers, []Deployment{{0}}); err == nil {
		t.Error("single-member deployment accepted")
	}
	if _, err := AuditDeployments(Config{}, providers, []Deployment{{0, 9}}); err == nil {
		t.Error("out-of-range provider accepted")
	}
	bad := append([]Provider{}, providers...)
	bad[0].Components = nil
	if _, err := AuditDeployments(Config{}, bad, AllPairs(4)); err == nil {
		t.Error("empty component-set accepted")
	}
	bad2 := append([]Provider{}, providers...)
	bad2[1].Name = ""
	if _, err := AuditDeployments(Config{}, bad2, AllPairs(4)); err == nil {
		t.Error("unnamed provider accepted")
	}
}

func TestEnumerators(t *testing.T) {
	if got := len(AllPairs(20)); got != 190 {
		t.Errorf("AllPairs(20) = %d, want 190", got)
	}
	if got := len(AllTriples(4)); got != 4 {
		t.Errorf("AllTriples(4) = %d, want 4", got)
	}
	if got := len(AllPairs(1)); got != 0 {
		t.Errorf("AllPairs(1) = %d", got)
	}
}

func TestNormalizeProvider(t *testing.T) {
	n := deps.NewNormalizer("c1")
	n.AddSharedPackage("libc6=2.19")
	p := NormalizeProvider("Cloud1", n, []deps.Record{
		deps.NewSoftware("riak", "S1", "libc6=2.19", "internal=1"),
	})
	if p.Name != "Cloud1" || len(p.Components) != 2 {
		t.Fatalf("provider = %+v", p)
	}
	if !strings.Contains(strings.Join(p.Components, " "), "pkg:libc6=2.19") {
		t.Errorf("components = %v", p.Components)
	}
}

func TestPIAReportRendering(t *testing.T) {
	providers := fourProviders()
	rep, err := AuditDeployments(Config{Protocol: ProtocolCleartext}, providers, AllPairs(4))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := rep.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Rank", "Jaccard", "CloudA & CloudB"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
