package pia

// Parallelism tests: the worker pool must be invisible in the report (bit-
// identical results for every worker count), honor cancellation promptly,
// propagate per-pair errors, and feed the telemetry trace.

import (
	"context"
	"encoding/json"
	"fmt"
	"regexp"
	"testing"
	"time"

	"indaas/internal/crypto/commutative"
	"indaas/internal/telemetry"
)

// normalizeReport strips wall-clock fields so runs can be compared.
var elapsedField = regexp.MustCompile(`"elapsed_ns":\d+`)

func normalizeReport(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return elapsedField.ReplaceAllString(string(b), `"elapsed_ns":0`)
}

// TestParallelMatchesSequential: for every protocol, workers=4 produces the
// same ranked report as workers=1 — minima merges and cardinalities are
// order-free, so parallelism cannot change a single byte.
func TestParallelMatchesSequential(t *testing.T) {
	providers := fourProviders()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"cleartext", Config{Protocol: ProtocolCleartext}},
		{"cleartext minhash", Config{Protocol: ProtocolCleartext, MinHashM: 128}},
		{"p-sop", Config{Protocol: ProtocolPSOP, Bits: 128}},
		{"p-sop minhash", Config{Protocol: ProtocolPSOP, Bits: 128, MinHashM: 64}},
		{"ks", Config{Protocol: ProtocolKS, Bits: 128, MinHashM: 64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := tc.cfg
			seq.Workers = 1
			par := tc.cfg
			par.Workers = 4
			deployments := append(AllPairs(4), AllTriples(4)...)
			repSeq, err := AuditDeployments(seq, providers, deployments)
			if err != nil {
				t.Fatal(err)
			}
			repPar, err := AuditDeployments(par, providers, deployments)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := normalizeReport(t, repPar), normalizeReport(t, repSeq); got != want {
				t.Fatalf("parallel report diverges:\n%s\nvs\n%s", got, want)
			}
		})
	}
}

// TestParallelWorkerCap: more workers than deployments is fine — the pool
// shrinks to the work available.
func TestParallelWorkerCap(t *testing.T) {
	rep, err := AuditDeployments(Config{Protocol: ProtocolCleartext, Workers: 64},
		fourProviders(), AllPairs(4))
	if err != nil || len(rep.Entries) != 6 {
		t.Fatalf("rep = %v, err = %v", rep, err)
	}
}

// TestParallelErrorPropagates: a bad deployment in the middle of a parallel
// batch fails the whole audit with that deployment's error.
func TestParallelErrorPropagates(t *testing.T) {
	deployments := append(AllPairs(4), Deployment{0, 99})
	_, err := AuditDeployments(Config{Protocol: ProtocolCleartext, Workers: 4},
		fourProviders(), deployments)
	if err == nil {
		t.Fatal("out-of-range provider accepted by the parallel path")
	}
}

// TestCancellation: an already-canceled context aborts both the sequential
// and the parallel path with ctx's error before any protocol rounds run.
func TestCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := AuditDeploymentsContext(ctx, Config{Protocol: ProtocolCleartext, Workers: workers},
			fourProviders(), AllPairs(4))
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestCancellationMidRun: cancellation during a slow P-SOP batch aborts it
// rather than running to completion.
func TestCancellationMidRun(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	big := make([]string, 400)
	for i := range big {
		big[i] = fmt.Sprintf("pkg:p%03d", i)
	}
	providers := []Provider{
		{Name: "A", Components: append([]string{"uniq-a"}, big...)},
		{Name: "B", Components: append([]string{"uniq-b"}, big...)},
	}
	_, err := AuditDeploymentsContext(ctx, Config{Protocol: ProtocolPSOP, Bits: 512, Workers: 2},
		providers, []Deployment{{0, 1}, {1, 0}, {0, 1}})
	if err == nil {
		t.Fatal("timed-out audit completed")
	}
}

// TestTraceReceivesPairs: a telemetry trace on the context records the
// pia-pairs phase and the audited pair count.
func TestTraceReceivesPairs(t *testing.T) {
	tr := telemetry.New()
	ctx := telemetry.WithTrace(context.Background(), tr)
	if _, err := AuditDeploymentsContext(ctx, Config{Protocol: ProtocolCleartext, Workers: 2},
		fourProviders(), AllPairs(4)); err != nil {
		t.Fatal(err)
	}
	var sawPhase bool
	for _, ph := range tr.Snapshot() {
		if ph.Name == "pia-pairs" {
			sawPhase = true
		}
	}
	if !sawPhase {
		t.Fatalf("trace phases = %+v, want pia-pairs", tr.Snapshot())
	}
	if got := tr.Counts()["pairs_audited"]; got != 6 {
		t.Fatalf("pairs_audited = %d, want 6", got)
	}
}

// TestSharedGroupReused: supplying a pre-agreed group skips modulus
// generation and still matches the cleartext oracle.
func TestSharedGroupReused(t *testing.T) {
	providers := fourProviders()
	clear, err := AuditDeployments(Config{Protocol: ProtocolCleartext}, providers, AllPairs(4))
	if err != nil {
		t.Fatal(err)
	}
	g, err := commutative.NewGroup(128)
	if err != nil {
		t.Fatal(err)
	}
	priv, err := AuditDeployments(Config{Protocol: ProtocolPSOP, Group: g, Workers: 2}, providers, AllPairs(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := range clear.Entries {
		if clear.Entries[i].Jaccard != priv.Entries[i].Jaccard {
			t.Fatalf("entry %d: p-sop %v vs cleartext %v", i,
				priv.Entries[i].Jaccard, clear.Entries[i].Jaccard)
		}
	}
}
