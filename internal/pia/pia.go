// Package pia implements Private Independence Auditing (§4.2): Jaccard
// similarity over normalized component-sets, computed either exactly through
// the P-SOP private set intersection cardinality protocol, approximately
// through MinHash + P-SOP for large component-sets (§4.2.4), or through the
// Kissner–Song baseline (§6.3.2). A cleartext mode exists for validation and
// for the SIA-vs-PIA comparison of Fig. 9.
//
// Security model (§4.2.1): providers are honest but curious and do not
// collude. Under ProtocolPSOP and ProtocolKS each provider learns only the
// intersection cardinality |∩| (and, for P-SOP, the union cardinality |∪|)
// of the audited component-sets — equivalently the Jaccard similarity — and
// never another provider's raw components. MinHash compression preserves
// that boundary by running the protocols over signature elements (§4.2.4).
// ProtocolCleartext deliberately has no privacy: it is the trusted-auditor
// comparison point of §6.3.3 and the validation oracle for the private
// protocols.
package pia

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indaas/internal/crypto/commutative"
	"indaas/internal/deps"
	"indaas/internal/minhash"
	"indaas/internal/psi"
	"indaas/internal/report"
	"indaas/internal/telemetry"
)

// Provider is one cloud provider's private dataset: the normalized
// component-set of its infrastructure (§4.2.3).
type Provider struct {
	Name       string
	Components []string
}

// Protocol selects the private computation mechanism.
type Protocol int

const (
	// ProtocolPSOP uses the commutative-encryption ring protocol.
	ProtocolPSOP Protocol = iota
	// ProtocolKS uses the Kissner–Song-style baseline. Because KS yields
	// only the intersection cardinality, the Jaccard similarity is always
	// estimated via MinHash signatures under this protocol (the MinHashM
	// default applies when unset).
	ProtocolKS
	// ProtocolCleartext computes the same quantities without privacy —
	// the trusted-auditor comparison point of §6.3.3.
	ProtocolCleartext
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case ProtocolPSOP:
		return "p-sop"
	case ProtocolKS:
		return "ks"
	case ProtocolCleartext:
		return "cleartext"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config tunes a PIA run.
type Config struct {
	Protocol Protocol
	// Bits is the key size for the cryptographic protocols (default 1024).
	Bits int
	// MinHashM, when non-zero, estimates Jaccard from m-function MinHash
	// signatures instead of the full component-sets (§4.2.4). Required
	// (defaulting to 512) under ProtocolKS.
	MinHashM int
	// MinHashThreshold, when non-zero, switches to MinHash automatically for
	// providers whose component-sets exceed the threshold ("if cloud
	// providers ... have large component-sets", §4.2.4). MinHashM (or its
	// default 512) gives the signature width.
	MinHashThreshold int
	// KSBlindBits forwards to psi.KSConfig.BlindBits.
	KSBlindBits int
	// Workers bounds how many deployments are audited concurrently and is
	// also the parallelism of MinHash signing and the P-SOP encryption
	// loops inside each pair. Minima and cardinalities are order-free, so
	// the report is identical for every worker count; 0 or 1 is the
	// sequential path.
	Workers int
	// Group optionally supplies a pre-agreed commutative group for
	// ProtocolPSOP, skipping modulus generation. When nil, one group is
	// generated per audit and shared by every pair of the batch.
	Group *commutative.Group
}

// Deployment identifies a candidate redundancy deployment by provider
// indices into the provider list.
type Deployment []int

// AuditDeployments evaluates the Jaccard similarity of every candidate
// deployment (§4.2.4–§4.2.5) and returns the ranked PIA report: lowest
// similarity (most independent) first.
func AuditDeployments(cfg Config, providers []Provider, deployments []Deployment) (*report.PIAReport, error) {
	return AuditDeploymentsContext(context.Background(), cfg, providers, deployments)
}

// AuditDeploymentsContext is AuditDeployments with cancellation and
// parallelism: deployments are fanned across cfg.Workers goroutines, each
// running the full per-pair protocol, and the run aborts with ctx's error
// once the context ends. A telemetry trace attached to ctx receives the
// "pia-pairs" phase and the pairs_audited count.
func AuditDeploymentsContext(ctx context.Context, cfg Config, providers []Provider, deployments []Deployment) (*report.PIAReport, error) {
	if len(providers) < 2 {
		return nil, fmt.Errorf("pia: need at least two providers, got %d", len(providers))
	}
	for i, p := range providers {
		if p.Name == "" {
			return nil, fmt.Errorf("pia: provider %d has no name", i)
		}
		if len(p.Components) == 0 {
			return nil, fmt.Errorf("pia: provider %q has an empty component-set", p.Name)
		}
	}
	if len(deployments) == 0 {
		return nil, fmt.Errorf("pia: no deployments to audit")
	}
	// One pre-agreed group amortizes modulus generation across every pair of
	// the batch ("parties must share a modulus" is the documented reuse).
	group := cfg.Group
	if group == nil && cfg.Protocol == ProtocolPSOP {
		bits := cfg.Bits
		if bits == 0 {
			bits = 1024
		}
		g, err := commutative.NewGroup(bits)
		if err != nil {
			return nil, err
		}
		group = g
	}

	tr := telemetry.FromContext(ctx)
	endPairs := tr.Start("pia-pairs")
	defer endPairs()

	rep := &report.PIAReport{Title: fmt.Sprintf("%d providers, %d deployments (%s)",
		len(providers), len(deployments), cfg.Protocol)}
	entries := make([]report.PIAEntry, len(deployments))
	workers := cfg.Workers
	if workers > len(deployments) {
		workers = len(deployments)
	}
	if workers <= 1 {
		for i, d := range deployments {
			entry, err := auditOne(ctx, cfg, group, providers, d)
			if err != nil {
				return nil, err
			}
			entries[i] = *entry
		}
	} else {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var (
			wg       sync.WaitGroup
			next     atomic.Int64
			errMu    sync.Mutex
			firstErr error
		)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(deployments) || cctx.Err() != nil {
						return
					}
					entry, err := auditOne(cctx, cfg, group, providers, deployments[i])
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						cancel()
						return
					}
					entries[i] = *entry
				}
			}()
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	tr.Add("pairs_audited", int64(len(deployments)))
	rep.Entries = entries
	rep.Rank()
	return rep, nil
}

func auditOne(ctx context.Context, cfg Config, group *commutative.Group, providers []Provider, d Deployment) (*report.PIAEntry, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(d) < 2 {
		return nil, fmt.Errorf("pia: deployment %v needs at least two providers", d)
	}
	names := make([]string, len(d))
	sets := make([][]string, len(d))
	maxSet := 0
	for i, idx := range d {
		if idx < 0 || idx >= len(providers) {
			return nil, fmt.Errorf("pia: deployment references unknown provider %d", idx)
		}
		names[i] = providers[idx].Name
		sets[i] = providers[idx].Components
		if len(sets[i]) > maxSet {
			maxSet = len(sets[i])
		}
	}

	useMinHash := cfg.MinHashM > 0 ||
		cfg.Protocol == ProtocolKS ||
		(cfg.MinHashThreshold > 0 && maxSet > cfg.MinHashThreshold)
	m := cfg.MinHashM
	if useMinHash && m == 0 {
		m = 512
	}

	start := time.Now()
	var jaccard float64
	var bytes int64
	switch {
	case cfg.Protocol == ProtocolCleartext && !useMinHash:
		inter, union, err := psi.CleartextCardinality(sets)
		if err != nil {
			return nil, err
		}
		if union > 0 {
			jaccard = float64(inter) / float64(union)
		}
	case cfg.Protocol == ProtocolCleartext && useMinHash:
		sigs, err := signAll(sets, m, cfg.Workers)
		if err != nil {
			return nil, err
		}
		est, err := minhash.Estimate(sigs...)
		if err != nil {
			return nil, err
		}
		jaccard = est
	case cfg.Protocol == ProtocolPSOP && !useMinHash:
		res, err := psi.PSOPContext(ctx, psi.PSOPConfig{Bits: cfg.Bits, Group: group, Workers: cfg.Workers}, sets)
		if err != nil {
			return nil, err
		}
		j, err := res.Jaccard()
		if err != nil {
			return nil, err
		}
		jaccard = j
		bytes = res.Stats.BytesSent
	case cfg.Protocol == ProtocolPSOP && useMinHash:
		// §4.2.4: run P-SOP over the signature elements; the agreement
		// count is |∩ of signatures| and J ≈ |∩|/m.
		sigSets, err := signatureElements(sets, m, cfg.Workers)
		if err != nil {
			return nil, err
		}
		res, err := psi.PSOPContext(ctx, psi.PSOPConfig{Bits: cfg.Bits, Group: group, Workers: cfg.Workers}, sigSets)
		if err != nil {
			return nil, err
		}
		jaccard = float64(res.Intersection) / float64(m)
		bytes = res.Stats.BytesSent
	case cfg.Protocol == ProtocolKS:
		sigSets, err := signatureElements(sets, m, cfg.Workers)
		if err != nil {
			return nil, err
		}
		res, err := psi.KS(psi.KSConfig{Bits: cfg.Bits, BlindBits: cfg.KSBlindBits}, sigSets)
		if err != nil {
			return nil, err
		}
		jaccard = float64(res.Intersection) / float64(m)
		bytes = res.Stats.BytesSent
	default:
		return nil, fmt.Errorf("pia: unknown protocol %v", cfg.Protocol)
	}
	return &report.PIAEntry{
		Providers: names,
		Jaccard:   jaccard,
		Estimated: useMinHash,
		BytesSent: bytes,
		Elapsed:   time.Since(start),
	}, nil
}

func signAll(sets [][]string, m, workers int) ([]minhash.Signature, error) {
	h, err := minhash.NewHasher(m)
	if err != nil {
		return nil, err
	}
	out := make([]minhash.Signature, len(sets))
	for i, s := range sets {
		sig, err := h.SignParallel(s, workers)
		if err != nil {
			return nil, err
		}
		out[i] = sig
	}
	return out, nil
}

func signatureElements(sets [][]string, m, workers int) ([][]string, error) {
	sigs, err := signAll(sets, m, workers)
	if err != nil {
		return nil, err
	}
	out := make([][]string, len(sigs))
	for i, sig := range sigs {
		out[i] = sig.Elements()
	}
	return out, nil
}

// AllPairs enumerates every two-provider deployment over n providers.
func AllPairs(n int) []Deployment {
	var out []Deployment
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, Deployment{i, j})
		}
	}
	return out
}

// AllTriples enumerates every three-provider deployment over n providers.
func AllTriples(n int) []Deployment {
	var out []Deployment
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				out = append(out, Deployment{i, j, k})
			}
		}
	}
	return out
}

// NormalizeProvider builds a Provider from raw dependency records using the
// §4.2.3 normalization rules.
func NormalizeProvider(name string, n *deps.Normalizer, records []deps.Record) Provider {
	set := n.ComponentSetFromRecords(records)
	return Provider{Name: name, Components: set.Sorted()}
}

// DeploymentKey renders a deployment's provider names "A & B & C".
func DeploymentKey(names []string) string { return strings.Join(names, " & ") }
