package watch

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func signaled(t *testing.T, s *Sub) {
	t.Helper()
	select {
	case <-s.Signal():
	case <-time.After(2 * time.Second):
		t.Fatal("subscription was never signaled")
	}
}

func notSignaled(t *testing.T, s *Sub) {
	t.Helper()
	select {
	case <-s.Signal():
		t.Fatal("subscription was signaled unexpectedly")
	default:
	}
}

func TestNotifyRoutesBySubjectAndKind(t *testing.T) {
	h := NewHub()
	hw, err := h.Subscribe(Interest{Subjects: []string{"s1", "s2"}, Kinds: KindMask(1)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	anyKind, err := h.Subscribe(Interest{Subjects: []string{"s2"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	other, err := h.Subscribe(Interest{Subjects: []string{"s9"}}, 4)
	if err != nil {
		t.Fatal(err)
	}

	// A kind-0 touch on s2 reaches only the any-kind subscription.
	if n := h.Notify([]Touch{{Subject: "s2", Kind: 0}}); n != 1 {
		t.Fatalf("Notify marked %d subscriptions, want 1", n)
	}
	signaled(t, anyKind)
	notSignaled(t, hw)
	notSignaled(t, other)
	subj, all, since := anyKind.TakeDirty()
	if since.IsZero() {
		t.Fatal("TakeDirty since is zero after a dirty mark")
	}
	if all || len(subj) != 1 || subj[0] != "s2" {
		t.Fatalf("TakeDirty = %v, %v; want [s2], false", subj, all)
	}

	// A kind-1 touch on s1 reaches only the kind-masked subscription.
	if n := h.Notify([]Touch{{Subject: "s1", Kind: 1}}); n != 1 {
		t.Fatalf("Notify marked %d, want 1", n)
	}
	signaled(t, hw)
	subj, all, _ = hw.TakeDirty()
	if all || len(subj) != 1 || subj[0] != "s1" {
		t.Fatalf("TakeDirty = %v, %v; want [s1], false", subj, all)
	}

	// Unmatched subject reaches nobody.
	if n := h.Notify([]Touch{{Subject: "nope", Kind: 1}}); n != 0 {
		t.Fatalf("Notify marked %d, want 0", n)
	}
}

func TestNotifyCoalescesIntoOneSignal(t *testing.T) {
	h := NewHub()
	sub, err := h.Subscribe(Interest{Subjects: []string{"a", "b"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Notify([]Touch{{Subject: "a"}, {Subject: "b"}})
	}
	signaled(t, sub)
	subj, _, _ := sub.TakeDirty()
	if len(subj) != 2 || subj[0] != "a" || subj[1] != "b" {
		t.Fatalf("dirty subjects = %v, want [a b]", subj)
	}
	// The signal is level-triggered: one token no matter how many marks.
	notSignaled(t, sub)
	// And drained dirt stays drained.
	if subj, all, since := sub.TakeDirty(); len(subj) != 0 || all || !since.IsZero() {
		t.Fatalf("second TakeDirty = %v, %v; want empty", subj, all)
	}
}

func TestAllSubjectInterest(t *testing.T) {
	h := NewHub()
	sub, err := h.Subscribe(Interest{All: true, Kinds: KindMask(0, 2)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Notify([]Touch{{Subject: "anything", Kind: 2}})
	signaled(t, sub)
	if subj, _, _ := sub.TakeDirty(); len(subj) != 1 || subj[0] != "anything" {
		t.Fatalf("dirty = %v, want [anything]", subj)
	}
	// Kind 1 is filtered even for all-subject interest.
	if n := h.Notify([]Touch{{Subject: "anything", Kind: 1}}); n != 0 {
		t.Fatalf("Notify marked %d, want 0", n)
	}
}

func TestKickRequestsUnconditionalRefresh(t *testing.T) {
	h := NewHub()
	sub, err := h.Subscribe(Interest{Subjects: []string{"x"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	sub.Kick()
	signaled(t, sub)
	subj, all, since := sub.TakeDirty()
	if since.IsZero() {
		t.Fatal("Kick must stamp the dirty instant")
	}
	if !all || len(subj) != 0 {
		t.Fatalf("TakeDirty = %v, %v; want none, true", subj, all)
	}
	sub.Close()
	sub.Kick() // no-op after close, must not panic or signal
}

func TestSendAndSlowConsumerEviction(t *testing.T) {
	h := NewHub()
	sub, err := h.Subscribe(Interest{Subjects: []string{"x"}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !sub.Send("e1") || !sub.Send("e2") {
		t.Fatal("sends within the buffer must succeed")
	}
	// Third send overflows the unread queue: the subscriber is evicted.
	if sub.Send("e3") {
		t.Fatal("overflow send must report false")
	}
	if !sub.Evicted() {
		t.Fatal("subscription should be marked evicted")
	}
	select {
	case <-sub.Done():
	default:
		t.Fatal("Done must be closed after eviction")
	}
	// Queued events are still drainable, then the channel closes.
	if ev := <-sub.Events(); ev != "e1" {
		t.Fatalf("first event = %v, want e1", ev)
	}
	if ev := <-sub.Events(); ev != "e2" {
		t.Fatalf("second event = %v, want e2", ev)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("events channel must be closed after eviction")
	}
	// Post-eviction sends fail quietly.
	if sub.Send("e4") {
		t.Fatal("send after eviction must report false")
	}
	st := h.Stats()
	if st.Evicted != 1 || st.EventsSent != 2 || st.EventsDropped != 1 || st.Subscribers != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCloseUnsubscribes(t *testing.T) {
	h := NewHub()
	sub, err := h.Subscribe(Interest{Subjects: []string{"x", "x"}}, 1) // dup subject deduped
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close() // idempotent
	if n := h.Notify([]Touch{{Subject: "x"}}); n != 0 {
		t.Fatalf("Notify after close marked %d, want 0", n)
	}
	if _, ok := <-sub.Events(); ok {
		t.Fatal("events channel must be closed")
	}
	if sub.Evicted() {
		t.Fatal("a deliberate close is not an eviction")
	}
	st := h.Stats()
	if st.Subscribers != 0 || st.Closed != 1 || st.Subscribed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHubClose(t *testing.T) {
	h := NewHub()
	a, _ := h.Subscribe(Interest{All: true}, 1)
	b, _ := h.Subscribe(Interest{Subjects: []string{"x"}}, 1)
	h.Close()
	for _, sub := range []*Sub{a, b} {
		select {
		case <-sub.Done():
		default:
			t.Fatal("Done must be closed after hub close")
		}
	}
	if _, err := h.Subscribe(Interest{All: true}, 1); err != ErrClosed {
		t.Fatalf("Subscribe after close = %v, want ErrClosed", err)
	}
	if n := h.Notify([]Touch{{Subject: "x"}}); n != 0 {
		t.Fatalf("Notify after close marked %d, want 0", n)
	}
}

func TestKindMask(t *testing.T) {
	if m := KindMask(); m != 0 {
		t.Fatalf("empty mask = %d, want 0", m)
	}
	if m := KindMask(0, 2); m != 0b101 {
		t.Fatalf("mask = %b, want 101", m)
	}
	if m := KindMask(-1, 64); m != 0 {
		t.Fatalf("out-of-range ordinals must be ignored, got %b", m)
	}
}

// TestConcurrentNotifySendClose is the -race assertion: subscriptions churn
// while notifies and sends race against closes and evictions.
func TestConcurrentNotifySendClose(t *testing.T) {
	h := NewHub()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // notifier
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Notify([]Touch{{Subject: fmt.Sprintf("s%d", i%8), Kind: i % 3}})
		}
	}()

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) { // subscriber churn
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sub, err := h.Subscribe(Interest{Subjects: []string{fmt.Sprintf("s%d", i%8)}}, 2)
				if err != nil {
					t.Error(err)
					return
				}
				sub.Kick()
				select {
				case <-sub.Signal():
					sub.TakeDirty()
					sub.Send(i)
					sub.Send(i) // may evict; both outcomes fine
					sub.Send(i)
				case <-sub.Done():
				}
				sub.Close()
				for range sub.Events() {
				}
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.AfterFunc(2*time.Second, func() { close(stop) })
	// Subscriber churn finishes on its own; the notifier stops on the timer.
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("goroutines did not finish")
	}
	if st := h.Stats(); st.Subscribers != 0 {
		t.Fatalf("leaked %d subscribers", st.Subscribers)
	}
}
