// Package watch implements the subscription hub behind auditd's streaming
// /v1/watch endpoint: clients register interest in audit subjects, ingests
// mark matching subscriptions dirty, and a per-subscription refresher drains
// the dirt into re-audits whose results are delivered over a bounded event
// queue.
//
// The hub is deliberately decoupled from auditd: subjects are opaque
// strings, dependency kinds are small ordinals folded into a bitmask, and
// events are opaque payloads. Two properties matter at streaming ingest
// rates:
//
//   - Notify is O(touched subjects), not O(subscriptions): a per-subject
//     index maps each touched subject straight to the subscriptions that
//     registered it.
//   - Dirt accumulates, it does not queue. A subscription that is marked
//     dirty a thousand times between two refreshes owes exactly one
//     re-audit covering the union of its dirty subjects — the signal
//     channel is level-triggered, so a storm of ingests coalesces instead
//     of building a backlog.
//
// Event delivery is bounded: Send never blocks, and a subscriber that lets
// its queue fill is evicted (its channels close) rather than allowed to
// stall the daemon or grow memory without limit.
package watch

import (
	"errors"
	"sort"
	"sync"
	"time"
)

// Event is an opaque payload delivered to a subscriber.
type Event any

// Touch names one changed subject and the kind ordinal of the change, the
// unit Notify matches against subscription interest.
type Touch struct {
	Subject string
	Kind    int
}

// KindMask folds kind ordinals into an interest bitmask. An empty call (or
// a zero mask anywhere in the API) means "every kind".
func KindMask(kinds ...int) uint64 {
	var m uint64
	for _, k := range kinds {
		if k >= 0 && k < 64 {
			m |= 1 << uint(k)
		}
	}
	return m
}

// Interest describes what a subscription cares about. A Touch matches when
// its subject is listed (or All is set) and its kind is in the mask (or the
// mask is zero).
type Interest struct {
	// Subjects are the exact subject names of interest.
	Subjects []string
	// Kinds is a KindMask bitmask; 0 means every kind.
	Kinds uint64
	// All marks interest in every subject regardless of Subjects.
	All bool
}

// Stats is a point-in-time snapshot of the hub counters.
type Stats struct {
	// Subscribers is the number of currently live subscriptions.
	Subscribers int
	// Subscribed counts every subscription ever registered.
	Subscribed int64
	// Evicted counts subscriptions removed because their event queue was
	// full when an event arrived (slow consumers).
	Evicted int64
	// Closed counts subscriptions ended by their owner.
	Closed int64
	// DirtyMarks counts subscription dirty transitions: how many times a
	// Notify or Kick found a matching subscription to mark.
	DirtyMarks int64
	// EventsSent counts events successfully queued to a subscriber;
	// EventsDropped counts events lost because the queue was full (each
	// drop also evicts the subscriber).
	EventsSent    int64
	EventsDropped int64
}

// ErrClosed is returned by Subscribe after the hub shut down.
var ErrClosed = errors.New("watch: hub is closed")

// Hub routes subject touches to interested subscriptions. All state shares
// one mutex: the per-ingest work (Notify) is a handful of map lookups, and
// a single lock keeps the eviction/close/send interleavings trivially safe.
type Hub struct {
	mu        sync.Mutex
	closed    bool
	subs      map[*Sub]struct{}
	bySubject map[string]map[*Sub]struct{}
	all       map[*Sub]struct{}

	subscribed int64
	evicted    int64
	closedSubs int64
	dirtyMarks int64
	sent       int64
	dropped    int64
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{
		subs:      make(map[*Sub]struct{}),
		bySubject: make(map[string]map[*Sub]struct{}),
		all:       make(map[*Sub]struct{}),
	}
}

// Sub is one live subscription. The owner consumes Events and calls Close;
// the refresher side waits on Signal, drains TakeDirty and pushes results
// through Send.
type Sub struct {
	hub   *Hub
	kinds uint64
	keys  []string // registered subject index entries, for removal
	all   bool

	events chan Event
	signal chan struct{} // level-triggered, capacity 1
	done   chan struct{} // closed on Close or eviction

	// Guarded by hub.mu.
	closed   bool
	evicted  bool
	dirty    map[string]struct{}
	dirtyAll bool
	// since is when the oldest undrained dirty mark landed — the anchor for
	// ingest→notify latency. Zero while the subscription is clean.
	since time.Time
}

// Subscribe registers a subscription with a bounded event queue of the
// given capacity (minimum 1).
func (h *Hub) Subscribe(interest Interest, buffer int) (*Sub, error) {
	if buffer < 1 {
		buffer = 1
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	sub := &Sub{
		hub:    h,
		kinds:  interest.Kinds,
		all:    interest.All,
		events: make(chan Event, buffer),
		signal: make(chan struct{}, 1),
		done:   make(chan struct{}),
		dirty:  make(map[string]struct{}),
	}
	if !sub.all {
		seen := make(map[string]struct{}, len(interest.Subjects))
		for _, subj := range interest.Subjects {
			if _, dup := seen[subj]; dup {
				continue
			}
			seen[subj] = struct{}{}
			set := h.bySubject[subj]
			if set == nil {
				set = make(map[*Sub]struct{})
				h.bySubject[subj] = set
			}
			set[sub] = struct{}{}
			sub.keys = append(sub.keys, subj)
		}
	} else {
		h.all[sub] = struct{}{}
	}
	h.subs[sub] = struct{}{}
	h.subscribed++
	return sub, nil
}

// Notify marks every subscription whose interest matches a touch dirty with
// that touch's subject, signalling each matched subscription once. It
// returns the number of subscriptions marked.
func (h *Hub) Notify(touches []Touch) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	now := time.Now()
	marked := make(map[*Sub]struct{})
	mark := func(sub *Sub, t Touch) {
		if sub.kinds != 0 && sub.kinds&(1<<uint(t.Kind)) == 0 {
			return
		}
		sub.dirty[t.Subject] = struct{}{}
		if sub.since.IsZero() {
			sub.since = now
		}
		marked[sub] = struct{}{}
	}
	for _, t := range touches {
		for sub := range h.bySubject[t.Subject] {
			mark(sub, t)
		}
		for sub := range h.all {
			mark(sub, t)
		}
	}
	for sub := range marked {
		h.dirtyMarks++
		sub.raiseLocked()
	}
	return len(marked)
}

// Close evicts every subscription and refuses future subscribes. Pending
// queued events stay readable until each subscriber drains its channel.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for sub := range h.subs {
		h.removeLocked(sub, false)
	}
}

// Stats snapshots the hub counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{
		Subscribers:   len(h.subs),
		Subscribed:    h.subscribed,
		Evicted:       h.evicted,
		Closed:        h.closedSubs,
		DirtyMarks:    h.dirtyMarks,
		EventsSent:    h.sent,
		EventsDropped: h.dropped,
	}
}

// removeLocked unregisters a subscription and closes its channels. evict
// marks the removal as a slow-consumer eviction. Caller holds h.mu.
func (h *Hub) removeLocked(sub *Sub, evict bool) {
	if sub.closed {
		return
	}
	sub.closed = true
	sub.evicted = evict
	delete(h.subs, sub)
	delete(h.all, sub)
	for _, subj := range sub.keys {
		set := h.bySubject[subj]
		delete(set, sub)
		if len(set) == 0 {
			delete(h.bySubject, subj)
		}
	}
	if evict {
		h.evicted++
	} else {
		h.closedSubs++
	}
	close(sub.done)
	close(sub.events)
}

// raiseLocked sets the level-triggered signal. Caller holds h.mu.
func (s *Sub) raiseLocked() {
	if s.closed {
		return
	}
	select {
	case s.signal <- struct{}{}:
	default: // already raised
	}
}

// Signal is readable whenever dirt accumulated since the last TakeDirty.
func (s *Sub) Signal() <-chan struct{} { return s.signal }

// Done is closed when the subscription ends (Close or eviction).
func (s *Sub) Done() <-chan struct{} { return s.done }

// Events delivers the subscription's payloads; it is closed when the
// subscription ends, after any queued events are drained.
func (s *Sub) Events() <-chan Event { return s.events }

// Evicted reports whether the subscription was removed as a slow consumer.
func (s *Sub) Evicted() bool {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	return s.evicted
}

// Kick marks the subscription unconditionally dirty — "refresh regardless
// of subjects" — used to trigger the initial report of a new subscription.
func (s *Sub) Kick() {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	if s.closed {
		return
	}
	s.dirtyAll = true
	if s.since.IsZero() {
		s.since = time.Now()
	}
	s.hub.dirtyMarks++
	s.raiseLocked()
}

// TakeDirty drains and returns the accumulated dirty subjects (sorted),
// whether an unconditional refresh was requested, and when the oldest
// drained dirty mark landed (zero when nothing was pending). The timestamp
// anchors the ingest→notify latency histogram: the owed notification's
// clock started when the first undrained ingest touched this subscription.
// Subjects empty and all false means the signal raced an earlier drain and
// there is nothing left to do.
func (s *Sub) TakeDirty() (subjects []string, all bool, since time.Time) {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	all = s.dirtyAll
	s.dirtyAll = false
	since = s.since
	s.since = time.Time{}
	if len(s.dirty) > 0 {
		subjects = make([]string, 0, len(s.dirty))
		for subj := range s.dirty {
			subjects = append(subjects, subj)
		}
		sort.Strings(subjects)
		s.dirty = make(map[string]struct{})
	}
	return subjects, all, since
}

// Send queues an event without blocking. A full queue means the consumer
// fell behind an entire buffer's worth of re-audits: the event is dropped
// and the subscription evicted (channels closed), and Send reports false.
// Send also reports false on an already-ended subscription.
func (s *Sub) Send(ev Event) bool {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if s.closed {
		return false
	}
	select {
	case s.events <- ev:
		h.sent++
		return true
	default:
		h.dropped++
		h.removeLocked(s, true)
		return false
	}
}

// Close ends the subscription. Idempotent; queued events stay readable.
func (s *Sub) Close() {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	s.hub.removeLocked(s, false)
}
