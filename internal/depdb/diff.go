package depdb

import (
	"sort"

	"indaas/internal/deps"
)

// RecordChange pairs a removed record with the added record that replaced it
// — two records with the same identity (same route endpoints, same hardware
// slot, same program+host) but different content.
type RecordChange struct {
	Old, New deps.Record
}

// Diff is the canonical difference between two snapshots: the records one
// must add to and remove from the receiver to obtain the argument. Records
// sharing an identity on both sides are reported as Changed instead. The
// diff is order-independent — it compares record multisets, not insertion
// logs — and its slices are sorted canonically, so two equal-content
// snapshot pairs always diff identically.
type Diff struct {
	Added   []deps.Record
	Removed []deps.Record
	Changed []RecordChange
}

// Empty reports whether the two snapshots hold identical record multisets.
func (d Diff) Empty() bool {
	return len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// Touched returns every record the diff mentions: additions, removals, and
// both sides of each change. Dirty-subject analysis (sia.DirtySubjects)
// iterates this.
func (d Diff) Touched() []deps.Record {
	out := make([]deps.Record, 0, len(d.Added)+len(d.Removed)+2*len(d.Changed))
	out = append(out, d.Added...)
	out = append(out, d.Removed...)
	for _, c := range d.Changed {
		out = append(out, c.Old, c.New)
	}
	return out
}

// Subjects returns the sorted set of subjects the diff touches.
func (d Diff) Subjects() []string {
	set := make(map[string]bool)
	for _, r := range d.Touched() {
		set[r.Subject()] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Diff computes the canonical difference from snapshot a to snapshot b: the
// records to add and remove so a's multiset becomes b's. Snapshots of the
// same database short-circuit — the younger generation's log suffix IS the
// diff, making the ingest-then-re-audit case O(records ingested) — while
// snapshots of unrelated databases compare full multisets.
func (a *Snapshot) Diff(b *Snapshot) Diff {
	if a.db == b.db {
		lo, hi := a.limit, b.limit
		removed := false
		if lo > hi {
			lo, hi = hi, lo
			removed = true
		}
		a.db.mu.RLock()
		suffix := append([]deps.Record(nil), a.db.v.records[lo:hi]...)
		a.db.mu.RUnlock()
		sortCanonically(suffix)
		if removed {
			return Diff{Removed: suffix}
		}
		return Diff{Added: suffix}
	}

	// Cross-database: compare record multisets by canonical line.
	type slot struct {
		count int // b occurrences minus a occurrences
		rec   deps.Record
	}
	counts := make(map[string]*slot)
	for _, r := range b.Records() {
		line := canonicalLine(r)
		s := counts[line]
		if s == nil {
			s = &slot{rec: r}
			counts[line] = s
		}
		s.count++
	}
	for _, r := range a.Records() {
		line := canonicalLine(r)
		s := counts[line]
		if s == nil {
			s = &slot{rec: r}
			counts[line] = s
		}
		s.count--
	}
	var d Diff
	for _, s := range counts {
		for i := 0; i < s.count; i++ {
			d.Added = append(d.Added, s.rec)
		}
		for i := 0; i < -s.count; i++ {
			d.Removed = append(d.Removed, s.rec)
		}
	}
	sortCanonically(d.Added)
	sortCanonically(d.Removed)
	d.pairChanged()
	return d
}

// pairChanged moves added/removed pairs sharing an identity into Changed.
// Both slices are canonically sorted, so the pairing — first unconsumed
// match per identity — is deterministic.
func (d *Diff) pairChanged() {
	if len(d.Added) == 0 || len(d.Removed) == 0 {
		return
	}
	removedByID := make(map[string][]int, len(d.Removed))
	for i, r := range d.Removed {
		id := identityKey(r)
		removedByID[id] = append(removedByID[id], i)
	}
	consumedRemoved := make([]bool, len(d.Removed))
	var added []deps.Record
	for _, r := range d.Added {
		id := identityKey(r)
		if idxs := removedByID[id]; len(idxs) > 0 {
			old := d.Removed[idxs[0]]
			consumedRemoved[idxs[0]] = true
			removedByID[id] = idxs[1:]
			d.Changed = append(d.Changed, RecordChange{Old: old, New: r})
			continue
		}
		added = append(added, r)
	}
	var removed []deps.Record
	for i, r := range d.Removed {
		if !consumedRemoved[i] {
			removed = append(removed, r)
		}
	}
	d.Added, d.Removed = added, removed
}

// identityKey names what a record is *about*, content aside: a route between
// two endpoints, a hardware slot of a machine, a program on a host. Two
// records with equal identity but different content constitute a change.
func identityKey(r deps.Record) string {
	const fs = "\x1f"
	switch r.Kind {
	case deps.KindNetwork:
		return "net" + fs + r.Network.Src + fs + r.Network.Dst
	case deps.KindHardware:
		return "hw" + fs + r.Hardware.HW + fs + r.Hardware.Type
	case deps.KindSoftware:
		return "sw" + fs + r.Software.Pgm + fs + r.Software.HW
	default:
		return canonicalLine(r)
	}
}

// sortCanonically orders records by their canonical serialization.
func sortCanonically(records []deps.Record) {
	sort.Slice(records, func(i, j int) bool {
		return canonicalLine(records[i]) < canonicalLine(records[j])
	})
}
