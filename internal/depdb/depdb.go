// Package depdb implements DepDB, the dependency information database of §3.
//
// Dependency acquisition modules store their adapted records here; the
// auditing agent queries it while building dependency graphs (§4.1.1
// Steps 2-6). The store is safe for concurrent use, indexes records by
// subject (the server a record is about) and kind, and can persist itself to
// the Table 1 XML format.
package depdb

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"indaas/internal/deps"
)

// DB is an in-memory dependency database with per-subject, per-kind indexes.
// The zero value is not usable; call New.
type DB struct {
	mu      sync.RWMutex
	records []deps.Record
	// index[subject][kind] -> positions into records
	index map[string]map[deps.Kind][]int
}

// New returns an empty database.
func New() *DB {
	return &DB{index: make(map[string]map[deps.Kind][]int)}
}

// Put validates and stores records. Either all records are stored or none.
func (db *DB) Put(records ...deps.Record) error {
	for i, r := range records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("depdb: record %d: %w", i, err)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, r := range records {
		pos := len(db.records)
		db.records = append(db.records, r)
		subj := r.Subject()
		byKind := db.index[subj]
		if byKind == nil {
			byKind = make(map[deps.Kind][]int)
			db.index[subj] = byKind
		}
		byKind[r.Kind] = append(byKind[r.Kind], pos)
	}
	return nil
}

// Len returns the number of stored records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.records)
}

// Subjects returns every subject that has at least one record, sorted.
func (db *DB) Subjects() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.index))
	for s := range db.index {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Query returns the records for subject of the given kind, in insertion
// order. The returned slice is a copy.
func (db *DB) Query(subject string, kind deps.Kind) []deps.Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	byKind, ok := db.index[subject]
	if !ok {
		return nil
	}
	positions := byKind[kind]
	out := make([]deps.Record, 0, len(positions))
	for _, p := range positions {
		out = append(out, db.records[p])
	}
	return out
}

// QueryAll returns every record about subject, grouped network, hardware,
// software (each group in insertion order).
func (db *DB) QueryAll(subject string) []deps.Record {
	var out []deps.Record
	for _, k := range []deps.Kind{deps.KindNetwork, deps.KindHardware, deps.KindSoftware} {
		out = append(out, db.Query(subject, k)...)
	}
	return out
}

// Records returns a copy of every stored record in insertion order.
func (db *DB) Records() []deps.Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]deps.Record(nil), db.records...)
}

// Networks returns the network records for subject, unwrapped.
func (db *DB) Networks(subject string) []deps.Network {
	recs := db.Query(subject, deps.KindNetwork)
	out := make([]deps.Network, 0, len(recs))
	for _, r := range recs {
		out = append(out, *r.Network)
	}
	return out
}

// HardwareOf returns the hardware records for subject, unwrapped.
func (db *DB) HardwareOf(subject string) []deps.Hardware {
	recs := db.Query(subject, deps.KindHardware)
	out := make([]deps.Hardware, 0, len(recs))
	for _, r := range recs {
		out = append(out, *r.Hardware)
	}
	return out
}

// SoftwareOf returns the software records for subject, unwrapped.
func (db *DB) SoftwareOf(subject string) []deps.Software {
	recs := db.Query(subject, deps.KindSoftware)
	out := make([]deps.Software, 0, len(recs))
	for _, r := range recs {
		out = append(out, *r.Software)
	}
	return out
}

// WriteXML persists the whole database in the Table 1 XML format.
func (db *DB) WriteXML(w io.Writer) error {
	return deps.EncodeXML(w, db.Records())
}

// ReadXML loads records from the Table 1 XML format into the database,
// appending to any existing content.
func (db *DB) ReadXML(r io.Reader) error {
	records, err := deps.DecodeXML(r)
	if err != nil {
		return err
	}
	return db.Put(records...)
}
