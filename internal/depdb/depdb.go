// Package depdb implements DepDB, the dependency information database of §3.
//
// Dependency acquisition modules store their adapted records here; the
// auditing agent queries it while building dependency graphs (§4.1.1
// Steps 2-6). The store is safe for concurrent use, indexes records by
// subject (the server a record is about) and kind, and can persist itself to
// the Table 1 XML format.
//
// Long-running readers — concurrent audit jobs in particular — should not
// hold the database's lock for the duration of a graph build. Snapshot
// returns a registered immutable view over the append-only record log: the
// view is a (generation, fingerprint) pair, so taking one costs O(1) no
// matter how large the database has grown, and any number of snapshots of
// different generations share the same storage. Snapshot queries briefly
// read-lock the database per call (never across a graph build) and see only
// the frozen prefix of the log.
//
// A snapshot carries a content Fingerprint, the canonical hash the audit
// service uses to content-address cached results. The fingerprint is
// maintained incrementally as records are inserted — a homomorphic multiset
// hash over canonical record serializations — so appending a batch costs
// O(batch), not O(database). Two snapshots can also be compared record-wise
// with Diff, the primitive delta audits are built on.
package depdb

import (
	"crypto/sha256"
	"crypto/sha512"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"

	"indaas/internal/deps"
)

// Reader is the read side of a dependency database: what graph builders
// need. Both *DB (live) and *Snapshot (frozen) implement it.
type Reader interface {
	// Query returns the records for subject of the given kind, in
	// insertion order.
	Query(subject string, kind deps.Kind) []deps.Record
	// QueryAll returns every record about subject, grouped network,
	// hardware, software (each group in insertion order).
	QueryAll(subject string) []deps.Record
	// Networks returns the current network state for subject: one record
	// per distinct route, exact re-observations collapsed. Redundant routes
	// between the same endpoints are distinct routes and all survive.
	Networks(subject string) []deps.Network
	// HardwareOf returns the current hardware state for subject: the latest
	// record per slot (machine, component type), so a replaced component
	// shows only its present model.
	HardwareOf(subject string) []deps.Hardware
	// SoftwareOf returns the current software state for subject: the latest
	// record per program, so an upgrade shows only the new closure.
	SoftwareOf(subject string) []deps.Software
	// Subjects returns every subject with at least one record, sorted.
	Subjects() []string
	// Len returns the number of stored records.
	Len() int
}

// view is the shared read-only query core: an append-only record log plus a
// per-subject, per-kind position index. Positions within a bucket are
// strictly increasing, which lets a snapshot see the prefix of any bucket by
// cutting at its generation's record count.
type view struct {
	records []deps.Record
	// index[subject][kind] -> ascending positions into records
	index map[string]map[deps.Kind][]int
}

// query returns the records for subject of the given kind among the first
// limit log entries.
func (v *view) query(subject string, kind deps.Kind, limit int) []deps.Record {
	byKind, ok := v.index[subject]
	if !ok {
		return nil
	}
	positions := byKind[kind]
	cut := sort.SearchInts(positions, limit)
	if cut == 0 {
		return nil
	}
	out := make([]deps.Record, 0, cut)
	for _, p := range positions[:cut] {
		out = append(out, v.records[p])
	}
	return out
}

// subjects returns the subjects with at least one record among the first
// limit log entries, sorted.
func (v *view) subjects(limit int) []string {
	out := make([]string, 0, len(v.index))
	for s, byKind := range v.index {
		for _, positions := range byKind {
			if len(positions) > 0 && positions[0] < limit {
				out = append(out, s)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// fpSum is the incrementally-maintained fingerprint state: a 2048-bit
// homomorphic multiset hash (the wrapping sum of per-record digests,
// AdHash-style) plus the record count. Insertion order cannot matter
// because addition commutes; appending one record costs four SHA-512s over
// its canonical line, O(1) regardless of database size. The state is 2048
// bits — not one hash block — because additive multiset hashes at small
// moduli fall to Wagner's generalized-birthday attack (AdHash wants a
// modulus well past 1600 bits for a comfortable margin); an ingest client
// must not be able to craft a batch whose digest sum collides and thereby
// alias a changed database to stale content-addressed results.
type fpSum struct {
	count uint64
	limbs [fpLimbs]uint64 // little-endian 2048-bit accumulator
}

const fpLimbs = 32

// add folds one canonical record line into the sum. The record's 2048-bit
// digest is four domain-separated SHA-512s over the line.
func (s *fpSum) add(line string) {
	buf := make([]byte, 1+len(line))
	copy(buf[1:], line)
	var carry uint64
	limb := 0
	for block := byte(0); block < 4; block++ {
		buf[0] = block
		h := sha512.Sum512(buf)
		for i := 0; i < 8; i++ {
			s.limbs[limb], carry = bits.Add64(s.limbs[limb], binary.LittleEndian.Uint64(h[i*8:]), carry)
			limb++
		}
	}
	s.count++
}

// fingerprint renders the canonical content hash of the accumulated multiset.
func (s fpSum) fingerprint() string {
	var buf [len(fpDomain) + 8 + fpLimbs*8]byte
	copy(buf[:], fpDomain)
	binary.BigEndian.PutUint64(buf[len(fpDomain):], s.count)
	for i := 0; i < fpLimbs; i++ {
		binary.BigEndian.PutUint64(buf[len(fpDomain)+8+i*8:], s.limbs[i])
	}
	h := sha256.Sum256(buf[:])
	return hex.EncodeToString(h[:])
}

// fpDomain separates the fingerprint hash domain from raw record hashes.
const fpDomain = "indaas/depdb/fingerprint/v2\n"

// DB is an in-memory dependency database with per-subject, per-kind indexes.
// The zero value is not usable; call New.
type DB struct {
	mu   sync.RWMutex
	v    view
	sum  fpSum
	snap *Snapshot // registered snapshot; nil after a write
}

// New returns an empty database.
func New() *DB {
	return &DB{v: view{index: make(map[string]map[deps.Kind][]int)}}
}

// Put validates and stores records. Either all records are stored or none.
// Any registered snapshot is invalidated; snapshots taken earlier keep
// serving their frozen prefix of the log.
func (db *DB) Put(records ...deps.Record) error {
	for i, r := range records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("depdb: record %d: %w", i, err)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.snap = nil
	for _, r := range records {
		pos := len(db.v.records)
		db.v.records = append(db.v.records, r)
		subj := r.Subject()
		byKind := db.v.index[subj]
		if byKind == nil {
			byKind = make(map[deps.Kind][]int)
			db.v.index[subj] = byKind
		}
		byKind[r.Kind] = append(byKind[r.Kind], pos)
		db.sum.add(canonicalLine(r))
	}
	return nil
}

// Snapshot returns the registered immutable view of the database's current
// contents. The snapshot is built at most once per write generation: calls
// between two Puts return the identical *Snapshot, so concurrent audit jobs
// share one frozen view (and one Fingerprint). Creating it is O(1) — the
// snapshot is a generation mark over the append-only log, not a copy — and
// it stays valid, and unchanged, after later Puts.
func (db *DB) Snapshot() *Snapshot {
	db.mu.RLock()
	s := db.snap
	db.mu.RUnlock()
	if s != nil {
		return s
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.snap == nil {
		db.snap = &Snapshot{db: db, limit: len(db.v.records), fp: db.sum.fingerprint()}
	}
	return db.snap
}

// Fingerprint returns the canonical content hash of the current records;
// shorthand for db.Snapshot().Fingerprint().
func (db *DB) Fingerprint() string {
	return db.Snapshot().Fingerprint()
}

// FingerprintWith returns the fingerprint the database would have after
// appending records, without modifying anything — the audit service uses it
// to persist an ingest's outcome before committing the ingest. Cost is
// O(len(records)) regardless of database size. The records are assumed
// valid; invalid ones would make the eventual Put fail and the preview
// meaningless.
func (db *DB) FingerprintWith(records ...deps.Record) string {
	db.mu.RLock()
	sum := db.sum
	db.mu.RUnlock()
	for _, r := range records {
		sum.add(canonicalLine(r))
	}
	return sum.fingerprint()
}

// Len returns the number of stored records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.v.records)
}

// Subjects returns every subject that has at least one record, sorted.
func (db *DB) Subjects() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.v.subjects(len(db.v.records))
}

// Query returns the records for subject of the given kind, in insertion
// order. The returned slice is a copy.
func (db *DB) Query(subject string, kind deps.Kind) []deps.Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.v.query(subject, kind, len(db.v.records))
}

// QueryAll returns every record about subject, grouped network, hardware,
// software (each group in insertion order).
func (db *DB) QueryAll(subject string) []deps.Record {
	var out []deps.Record
	for _, k := range []deps.Kind{deps.KindNetwork, deps.KindHardware, deps.KindSoftware} {
		out = append(out, db.Query(subject, k)...)
	}
	return out
}

// Records returns a copy of every stored record in insertion order.
func (db *DB) Records() []deps.Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]deps.Record(nil), db.v.records...)
}

// Networks returns the current network state for subject; see Reader.
func (db *DB) Networks(subject string) []deps.Network {
	return unwrapNetworks(db.Query(subject, deps.KindNetwork))
}

// HardwareOf returns the current hardware state for subject; see Reader.
func (db *DB) HardwareOf(subject string) []deps.Hardware {
	return unwrapHardware(db.Query(subject, deps.KindHardware))
}

// SoftwareOf returns the current software state for subject; see Reader.
func (db *DB) SoftwareOf(subject string) []deps.Software {
	return unwrapSoftware(db.Query(subject, deps.KindSoftware))
}

// WriteXML persists the whole database in the Table 1 XML format.
func (db *DB) WriteXML(w io.Writer) error {
	return deps.EncodeXML(w, db.Records())
}

// ReadXML loads records from the Table 1 XML format into the database,
// appending to any existing content.
func (db *DB) ReadXML(r io.Reader) error {
	records, err := deps.DecodeXML(r)
	if err != nil {
		return err
	}
	return db.Put(records...)
}

// Snapshot is an immutable point-in-time view of a DB: the prefix of the
// database's append-only record log that existed when the snapshot was
// taken. Queries read-lock the owning database briefly per call — never for
// the duration of a graph build — so audit jobs and writers make progress
// together while the snapshot's contents stay frozen.
type Snapshot struct {
	db    *DB
	limit int // the snapshot sees records[:limit]
	fp    string
}

// Fingerprint returns the snapshot's canonical content hash: a SHA-256
// commitment to the multiset of its records' canonical serializations,
// hex-encoded. Two databases loaded with the same records in any insertion
// order have equal fingerprints, which is what makes the hash usable as a
// content-address for cached audit results.
func (s *Snapshot) Fingerprint() string { return s.fp }

// Len returns the number of records in the snapshot.
func (s *Snapshot) Len() int { return s.limit }

// Subjects returns every subject with at least one record, sorted.
func (s *Snapshot) Subjects() []string {
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return s.db.v.subjects(s.limit)
}

// Query returns the records for subject of the given kind, in insertion
// order.
func (s *Snapshot) Query(subject string, kind deps.Kind) []deps.Record {
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return s.db.v.query(subject, kind, s.limit)
}

// QueryAll returns every record about subject, grouped network, hardware,
// software.
func (s *Snapshot) QueryAll(subject string) []deps.Record {
	var out []deps.Record
	for _, k := range []deps.Kind{deps.KindNetwork, deps.KindHardware, deps.KindSoftware} {
		out = append(out, s.Query(subject, k)...)
	}
	return out
}

// Records returns a copy of every record in insertion order.
func (s *Snapshot) Records() []deps.Record {
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	return append([]deps.Record(nil), s.db.v.records[:s.limit]...)
}

// Encode writes the snapshot's records in the canonical Table 1 XML format,
// the durable form the audit service's disk store persists. DecodeSnapshot
// reverses it; the round-trip preserves the Fingerprint.
func (s *Snapshot) Encode(w io.Writer) error {
	return deps.EncodeXML(w, s.Records())
}

// DecodeDB reconstructs a mutable database from Encode's output — the form
// a restarted daemon wants, since later ingests keep appending to it.
func DecodeDB(r io.Reader) (*DB, error) {
	records, err := deps.DecodeXML(r)
	if err != nil {
		return nil, fmt.Errorf("depdb: decoding snapshot: %w", err)
	}
	db := New()
	if err := db.Put(records...); err != nil {
		return nil, fmt.Errorf("depdb: decoding snapshot: %w", err)
	}
	return db, nil
}

// DecodeSnapshot reconstructs an immutable snapshot from Encode's output.
// Record order inside the encoding does not matter: the fingerprint is
// order-independent, so the decoded snapshot content-addresses identically
// to the one encoded.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	db, err := DecodeDB(r)
	if err != nil {
		return nil, err
	}
	return db.Snapshot(), nil
}

// Networks returns the current network state for subject; see Reader.
func (s *Snapshot) Networks(subject string) []deps.Network {
	return unwrapNetworks(s.Query(subject, deps.KindNetwork))
}

// HardwareOf returns the current hardware state for subject; see Reader.
func (s *Snapshot) HardwareOf(subject string) []deps.Hardware {
	return unwrapHardware(s.Query(subject, deps.KindHardware))
}

// SoftwareOf returns the current software state for subject; see Reader.
func (s *Snapshot) SoftwareOf(subject string) []deps.Software {
	return unwrapSoftware(s.Query(subject, deps.KindSoftware))
}

// The unwrap helpers reduce a subject's insertion-ordered record log to its
// current state. The log is append-only — continuous acquisition re-observes
// the same dependencies indefinitely — so raw pass-through would hand graph
// builders every observation ever made: duplicate fault-graph events at
// best, an unboundedly growing graph at worst. Hardware and software reduce
// latest-wins per identity (a record supersedes the previous observation of
// the same slot or program); networks collapse exact re-observations only,
// because redundant routes between the same endpoints share an identity and
// must all survive. Order is first observation of each identity, so churn
// does not reshuffle graph layout.

func unwrapNetworks(recs []deps.Record) []deps.Network {
	seen := make(map[string]bool, len(recs))
	out := make([]deps.Network, 0, len(recs))
	for _, r := range recs {
		line := canonicalLine(r)
		if seen[line] {
			continue
		}
		seen[line] = true
		out = append(out, *r.Network)
	}
	return out
}

func unwrapHardware(recs []deps.Record) []deps.Hardware {
	at := make(map[string]int, len(recs))
	out := make([]deps.Hardware, 0, len(recs))
	for _, r := range recs {
		id := identityKey(r)
		if i, ok := at[id]; ok {
			out[i] = *r.Hardware
			continue
		}
		at[id] = len(out)
		out = append(out, *r.Hardware)
	}
	return out
}

func unwrapSoftware(recs []deps.Record) []deps.Software {
	at := make(map[string]int, len(recs))
	out := make([]deps.Software, 0, len(recs))
	for _, r := range recs {
		id := identityKey(r)
		if i, ok := at[id]; ok {
			out[i] = *r.Software
			continue
		}
		at[id] = len(out)
		out = append(out, *r.Software)
	}
	return out
}

// canonicalLine serializes one record canonically (field separator 0x1f,
// list separator 0x1e — neither occurs in component names); the fingerprint
// and Diff both key on it.
func canonicalLine(r deps.Record) string {
	const fs, ls = "\x1f", "\x1e"
	switch r.Kind {
	case deps.KindNetwork:
		n := r.Network
		return "net" + fs + n.Src + fs + n.Dst + fs + strings.Join(n.Route, ls)
	case deps.KindHardware:
		h := r.Hardware
		return "hw" + fs + h.HW + fs + h.Type + fs + h.Dep
	case deps.KindSoftware:
		s := r.Software
		return "sw" + fs + s.Pgm + fs + s.HW + fs + strings.Join(s.Dep, ls)
	default:
		return fmt.Sprintf("kind(%d)", int(r.Kind))
	}
}
