// Package depdb implements DepDB, the dependency information database of §3.
//
// Dependency acquisition modules store their adapted records here; the
// auditing agent queries it while building dependency graphs (§4.1.1
// Steps 2-6). The store is safe for concurrent use, indexes records by
// subject (the server a record is about) and kind, and can persist itself to
// the Table 1 XML format.
//
// Long-running readers — concurrent audit jobs in particular — should not
// hold the database's lock for the duration of a graph build. Snapshot
// returns a registered immutable view: the first call after a write
// materializes the view once, every further call returns the same one, and
// the next Put simply invalidates the registration. A snapshot also carries
// a content Fingerprint, the canonical hash the audit service uses to
// content-address cached results.
package depdb

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"indaas/internal/deps"
)

// Reader is the read side of a dependency database: what graph builders
// need. Both *DB (locked) and *Snapshot (immutable) implement it.
type Reader interface {
	// Query returns the records for subject of the given kind, in
	// insertion order.
	Query(subject string, kind deps.Kind) []deps.Record
	// QueryAll returns every record about subject, grouped network,
	// hardware, software (each group in insertion order).
	QueryAll(subject string) []deps.Record
	// Networks returns the network records for subject, unwrapped.
	Networks(subject string) []deps.Network
	// HardwareOf returns the hardware records for subject, unwrapped.
	HardwareOf(subject string) []deps.Hardware
	// SoftwareOf returns the software records for subject, unwrapped.
	SoftwareOf(subject string) []deps.Software
	// Subjects returns every subject with at least one record, sorted.
	Subjects() []string
	// Len returns the number of stored records.
	Len() int
}

// view is the shared read-only query core: a record log plus a
// per-subject, per-kind position index.
type view struct {
	records []deps.Record
	// index[subject][kind] -> positions into records
	index map[string]map[deps.Kind][]int
}

func (v *view) query(subject string, kind deps.Kind) []deps.Record {
	byKind, ok := v.index[subject]
	if !ok {
		return nil
	}
	positions := byKind[kind]
	out := make([]deps.Record, 0, len(positions))
	for _, p := range positions {
		out = append(out, v.records[p])
	}
	return out
}

func (v *view) subjects() []string {
	out := make([]string, 0, len(v.index))
	for s := range v.index {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// DB is an in-memory dependency database with per-subject, per-kind indexes.
// The zero value is not usable; call New.
type DB struct {
	mu   sync.RWMutex
	v    view
	snap *Snapshot // registered snapshot; nil after a write
}

// New returns an empty database.
func New() *DB {
	return &DB{v: view{index: make(map[string]map[deps.Kind][]int)}}
}

// Put validates and stores records. Either all records are stored or none.
// Any registered snapshot is invalidated; snapshots taken earlier keep
// serving their frozen view.
func (db *DB) Put(records ...deps.Record) error {
	for i, r := range records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("depdb: record %d: %w", i, err)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.snap = nil
	for _, r := range records {
		pos := len(db.v.records)
		db.v.records = append(db.v.records, r)
		subj := r.Subject()
		byKind := db.v.index[subj]
		if byKind == nil {
			byKind = make(map[deps.Kind][]int)
			db.v.index[subj] = byKind
		}
		byKind[r.Kind] = append(byKind[r.Kind], pos)
	}
	return nil
}

// Snapshot returns the registered immutable view of the database's current
// contents. The snapshot is built at most once per write generation: calls
// between two Puts return the identical *Snapshot, so concurrent audit jobs
// share one frozen view (and one Fingerprint) instead of copying the store
// per job. The snapshot stays valid — and unchanged — after later Puts.
func (db *DB) Snapshot() *Snapshot {
	db.mu.RLock()
	s := db.snap
	db.mu.RUnlock()
	if s != nil {
		return s
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.snap == nil {
		// Freeze the record log by capping its capacity (later appends
		// reallocate or write beyond the cap, never into the frozen
		// prefix) and deep-copy the position index, whose slices *are*
		// appended to in place.
		recs := db.v.records[:len(db.v.records):len(db.v.records)]
		idx := make(map[string]map[deps.Kind][]int, len(db.v.index))
		for subj, byKind := range db.v.index {
			m := make(map[deps.Kind][]int, len(byKind))
			for k, pos := range byKind {
				m[k] = append([]int(nil), pos...)
			}
			idx[subj] = m
		}
		db.snap = &Snapshot{v: view{records: recs, index: idx}, fp: fingerprint(recs)}
	}
	return db.snap
}

// Fingerprint returns the canonical content hash of the current records;
// shorthand for db.Snapshot().Fingerprint().
func (db *DB) Fingerprint() string {
	return db.Snapshot().Fingerprint()
}

// Len returns the number of stored records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.v.records)
}

// Subjects returns every subject that has at least one record, sorted.
func (db *DB) Subjects() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.v.subjects()
}

// Query returns the records for subject of the given kind, in insertion
// order. The returned slice is a copy.
func (db *DB) Query(subject string, kind deps.Kind) []deps.Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.v.query(subject, kind)
}

// QueryAll returns every record about subject, grouped network, hardware,
// software (each group in insertion order).
func (db *DB) QueryAll(subject string) []deps.Record {
	var out []deps.Record
	for _, k := range []deps.Kind{deps.KindNetwork, deps.KindHardware, deps.KindSoftware} {
		out = append(out, db.Query(subject, k)...)
	}
	return out
}

// Records returns a copy of every stored record in insertion order.
func (db *DB) Records() []deps.Record {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]deps.Record(nil), db.v.records...)
}

// Networks returns the network records for subject, unwrapped.
func (db *DB) Networks(subject string) []deps.Network {
	return unwrapNetworks(db.Query(subject, deps.KindNetwork))
}

// HardwareOf returns the hardware records for subject, unwrapped.
func (db *DB) HardwareOf(subject string) []deps.Hardware {
	return unwrapHardware(db.Query(subject, deps.KindHardware))
}

// SoftwareOf returns the software records for subject, unwrapped.
func (db *DB) SoftwareOf(subject string) []deps.Software {
	return unwrapSoftware(db.Query(subject, deps.KindSoftware))
}

// WriteXML persists the whole database in the Table 1 XML format.
func (db *DB) WriteXML(w io.Writer) error {
	return deps.EncodeXML(w, db.Records())
}

// ReadXML loads records from the Table 1 XML format into the database,
// appending to any existing content.
func (db *DB) ReadXML(r io.Reader) error {
	records, err := deps.DecodeXML(r)
	if err != nil {
		return err
	}
	return db.Put(records...)
}

// Snapshot is an immutable point-in-time view of a DB. It needs no locks,
// so any number of audit jobs can query it while writers keep inserting
// into the live database.
type Snapshot struct {
	v  view
	fp string
}

// Fingerprint returns the snapshot's canonical content hash: the SHA-256
// over the sorted canonical serializations of its records, hex-encoded.
// Two databases loaded with the same records in any insertion order have
// equal fingerprints, which is what makes the hash usable as a
// content-address for cached audit results.
func (s *Snapshot) Fingerprint() string { return s.fp }

// Len returns the number of records in the snapshot.
func (s *Snapshot) Len() int { return len(s.v.records) }

// Subjects returns every subject with at least one record, sorted.
func (s *Snapshot) Subjects() []string { return s.v.subjects() }

// Query returns the records for subject of the given kind, in insertion
// order.
func (s *Snapshot) Query(subject string, kind deps.Kind) []deps.Record {
	return s.v.query(subject, kind)
}

// QueryAll returns every record about subject, grouped network, hardware,
// software.
func (s *Snapshot) QueryAll(subject string) []deps.Record {
	var out []deps.Record
	for _, k := range []deps.Kind{deps.KindNetwork, deps.KindHardware, deps.KindSoftware} {
		out = append(out, s.Query(subject, k)...)
	}
	return out
}

// Records returns a copy of every record in insertion order.
func (s *Snapshot) Records() []deps.Record {
	return append([]deps.Record(nil), s.v.records...)
}

// Encode writes the snapshot's records in the canonical Table 1 XML format,
// the durable form the audit service's disk store persists. DecodeSnapshot
// reverses it; the round-trip preserves the Fingerprint.
func (s *Snapshot) Encode(w io.Writer) error {
	return deps.EncodeXML(w, s.v.records)
}

// DecodeDB reconstructs a mutable database from Encode's output — the form
// a restarted daemon wants, since later ingests keep appending to it.
func DecodeDB(r io.Reader) (*DB, error) {
	records, err := deps.DecodeXML(r)
	if err != nil {
		return nil, fmt.Errorf("depdb: decoding snapshot: %w", err)
	}
	db := New()
	if err := db.Put(records...); err != nil {
		return nil, fmt.Errorf("depdb: decoding snapshot: %w", err)
	}
	return db, nil
}

// DecodeSnapshot reconstructs an immutable snapshot from Encode's output.
// Record order inside the encoding does not matter: the fingerprint is
// order-independent, so the decoded snapshot content-addresses identically
// to the one encoded.
func DecodeSnapshot(r io.Reader) (*Snapshot, error) {
	db, err := DecodeDB(r)
	if err != nil {
		return nil, err
	}
	return db.Snapshot(), nil
}

// Networks returns the network records for subject, unwrapped.
func (s *Snapshot) Networks(subject string) []deps.Network {
	return unwrapNetworks(s.Query(subject, deps.KindNetwork))
}

// HardwareOf returns the hardware records for subject, unwrapped.
func (s *Snapshot) HardwareOf(subject string) []deps.Hardware {
	return unwrapHardware(s.Query(subject, deps.KindHardware))
}

// SoftwareOf returns the software records for subject, unwrapped.
func (s *Snapshot) SoftwareOf(subject string) []deps.Software {
	return unwrapSoftware(s.Query(subject, deps.KindSoftware))
}

func unwrapNetworks(recs []deps.Record) []deps.Network {
	out := make([]deps.Network, 0, len(recs))
	for _, r := range recs {
		out = append(out, *r.Network)
	}
	return out
}

func unwrapHardware(recs []deps.Record) []deps.Hardware {
	out := make([]deps.Hardware, 0, len(recs))
	for _, r := range recs {
		out = append(out, *r.Hardware)
	}
	return out
}

func unwrapSoftware(recs []deps.Record) []deps.Software {
	out := make([]deps.Software, 0, len(recs))
	for _, r := range recs {
		out = append(out, *r.Software)
	}
	return out
}

// fingerprint hashes records order-independently: each record serializes to
// a canonical line (field separator 0x1f, list separator 0x1e — neither
// occurs in component names), the lines are sorted, and the sorted block is
// SHA-256'd.
func fingerprint(records []deps.Record) string {
	lines := make([]string, 0, len(records))
	for _, r := range records {
		lines = append(lines, canonicalLine(r))
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		io.WriteString(h, l)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

func canonicalLine(r deps.Record) string {
	const fs, ls = "\x1f", "\x1e"
	switch r.Kind {
	case deps.KindNetwork:
		n := r.Network
		return "net" + fs + n.Src + fs + n.Dst + fs + strings.Join(n.Route, ls)
	case deps.KindHardware:
		h := r.Hardware
		return "hw" + fs + h.HW + fs + h.Type + fs + h.Dep
	case deps.KindSoftware:
		s := r.Software
		return "sw" + fs + s.Pgm + fs + s.HW + fs + strings.Join(s.Dep, ls)
	default:
		return fmt.Sprintf("kind(%d)", int(r.Kind))
	}
}
