package depdb

import (
	"reflect"
	"testing"

	"indaas/internal/deps"
)

func mustPut(t *testing.T, db *DB, records ...deps.Record) {
	t.Helper()
	if err := db.Put(records...); err != nil {
		t.Fatal(err)
	}
}

// TestDiffSameDBAppendOnly pins the fast path: two generations of one
// database diff to exactly the records ingested between them.
func TestDiffSameDBAppendOnly(t *testing.T) {
	db := New()
	mustPut(t, db, sampleRecords()...)
	a := db.Snapshot()
	extra := []deps.Record{
		deps.NewHardware("S9", "NIC", "S9-X520"),
		deps.NewNetwork("S9", "Internet", "ToR9"),
	}
	mustPut(t, db, extra...)
	b := db.Snapshot()

	d := a.Diff(b)
	if len(d.Added) != 2 || len(d.Removed) != 0 || len(d.Changed) != 0 {
		t.Fatalf("diff = %+v, want 2 additions", d)
	}
	if got := d.Subjects(); !reflect.DeepEqual(got, []string{"S9"}) {
		t.Fatalf("Subjects = %v, want [S9]", got)
	}
	// The reverse direction reports removals.
	rd := b.Diff(a)
	if len(rd.Removed) != 2 || len(rd.Added) != 0 {
		t.Fatalf("reverse diff = %+v, want 2 removals", rd)
	}
	if d.Empty() || !a.Diff(a).Empty() {
		t.Fatal("emptiness misreported")
	}
}

// TestDiffCrossDB compares unrelated databases: multiset semantics, order
// independence, and identity pairing into Changed.
func TestDiffCrossDB(t *testing.T) {
	a, b := New(), New()
	shared := []deps.Record{
		deps.NewNetwork("s1", "Internet", "tor1", "core1"),
		deps.NewSoftware("nginx", "s1", "libc6"),
	}
	mustPut(t, a, shared...)
	mustPut(t, a, deps.NewHardware("s1", "Disk", "old-model"))
	// b holds the shared records in reverse order, the disk replaced, and
	// one brand-new record.
	mustPut(t, b, shared[1], shared[0])
	mustPut(t, b, deps.NewHardware("s1", "Disk", "new-model"))
	mustPut(t, b, deps.NewHardware("s2", "Disk", "s2-model"))

	d := a.Snapshot().Diff(b.Snapshot())
	if len(d.Added) != 1 || d.Added[0].Hardware.HW != "s2" {
		t.Fatalf("Added = %+v", d.Added)
	}
	if len(d.Removed) != 0 {
		t.Fatalf("Removed = %+v", d.Removed)
	}
	if len(d.Changed) != 1 || d.Changed[0].Old.Hardware.Dep != "old-model" || d.Changed[0].New.Hardware.Dep != "new-model" {
		t.Fatalf("Changed = %+v", d.Changed)
	}
	if got := d.Subjects(); !reflect.DeepEqual(got, []string{"s1", "s2"}) {
		t.Fatalf("Subjects = %v", got)
	}
	// Equal multisets in different insertion orders diff empty.
	c := New()
	mustPut(t, c, shared[1], shared[0], deps.NewHardware("s1", "Disk", "old-model"))
	if d := a.Snapshot().Diff(c.Snapshot()); !d.Empty() {
		t.Fatalf("equal-content diff = %+v", d)
	}
}

// TestDiffDuplicateRecords: depdb stores duplicates; the diff counts
// multiplicities rather than treating records as a set.
func TestDiffDuplicateRecords(t *testing.T) {
	rec := deps.NewSoftware("redis", "s1", "libjemalloc2")
	a, b := New(), New()
	mustPut(t, a, rec)
	mustPut(t, b, rec, rec, rec)
	d := a.Snapshot().Diff(b.Snapshot())
	if len(d.Added) != 2 || len(d.Removed) != 0 || len(d.Changed) != 0 {
		t.Fatalf("diff = %+v, want 2 duplicate additions", d)
	}
}

// TestFingerprintWithMatchesPut: the O(batch) preview must agree with the
// fingerprint an actual Put produces.
func TestFingerprintWithMatchesPut(t *testing.T) {
	db := New()
	mustPut(t, db, sampleRecords()...)
	extra := []deps.Record{
		deps.NewHardware("S7", "NIC", "S7-X520"),
		deps.NewSoftware("etcd", "S7", "libc6"),
	}
	preview := db.FingerprintWith(extra...)
	if preview == db.Fingerprint() {
		t.Fatal("preview with additions must differ from the current fingerprint")
	}
	mustPut(t, db, extra...)
	if got := db.Fingerprint(); got != preview {
		t.Fatalf("FingerprintWith = %s, Put produced %s", preview, got)
	}
}
