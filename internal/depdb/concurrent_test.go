package depdb

import (
	"fmt"
	"sync"
	"testing"

	"indaas/internal/deps"
)

// TestConcurrentReadersDuringPut drives parallel readers (queries and
// snapshots) against a writer inserting batches; the -race run in CI is the
// actual assertion, the checks here just keep the compiler honest.
func TestConcurrentReadersDuringPut(t *testing.T) {
	db := New()
	if err := db.Put(deps.NewNetwork("seed", "Internet", "sw0")); err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		readers = 8
		batches = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				srv := fmt.Sprintf("srv-%d-%d", w, i)
				err := db.Put(
					deps.NewNetwork(srv, "Internet", "tor1", "agg1"),
					deps.NewHardware(srv, "Disk", srv+"-SED900"),
					deps.NewSoftware("nginx", srv, "libc6", "libssl3"),
				)
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := db.QueryAll("seed"); len(got) != 1 {
					t.Errorf("QueryAll(seed) = %d records, want 1", len(got))
					return
				}
				db.Subjects()
				db.Networks("seed")
				snap := db.Snapshot()
				if snap.Len() < 1 {
					t.Error("snapshot lost the seed record")
					return
				}
				if got := snap.QueryAll("seed"); len(got) != 1 {
					t.Errorf("snapshot QueryAll(seed) = %d records, want 1", len(got))
					return
				}
				snap.Fingerprint()
			}
		}()
	}
	wg.Wait()
	want := 1 + writers*batches*3
	if db.Len() != want {
		t.Fatalf("db.Len() = %d, want %d", db.Len(), want)
	}
}

func TestSnapshotRegistration(t *testing.T) {
	db := New()
	if err := db.Put(deps.NewHardware("s1", "Disk", "S1-SED900")); err != nil {
		t.Fatal(err)
	}
	s1 := db.Snapshot()
	if s2 := db.Snapshot(); s1 != s2 {
		t.Fatal("snapshots between writes must be the registered identical view")
	}
	if err := db.Put(deps.NewHardware("s2", "Disk", "S2-SED900")); err != nil {
		t.Fatal(err)
	}
	s3 := db.Snapshot()
	if s3 == s1 {
		t.Fatal("Put must invalidate the registered snapshot")
	}
	// The old snapshot keeps serving its frozen view.
	if s1.Len() != 1 || len(s1.HardwareOf("s2")) != 0 {
		t.Fatalf("old snapshot changed: Len=%d", s1.Len())
	}
	if s3.Len() != 2 || len(s3.HardwareOf("s2")) != 1 {
		t.Fatalf("new snapshot wrong: Len=%d", s3.Len())
	}
	if s1.Fingerprint() == s3.Fingerprint() {
		t.Fatal("different contents must have different fingerprints")
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	recs := []deps.Record{
		deps.NewNetwork("s1", "Internet", "tor1", "agg2", "core3"),
		deps.NewHardware("s1", "Disk", "S1-SED900"),
		deps.NewSoftware("mysql", "s1", "libc6", "libssl3"),
	}
	a, b := New(), New()
	if err := a.Put(recs...); err != nil {
		t.Fatal(err)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if err := b.Put(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprint must not depend on insertion order")
	}
	// Route order is semantic (an ordered path) and must stay significant.
	c := New()
	if err := c.Put(
		deps.NewNetwork("s1", "Internet", "agg2", "tor1", "core3"),
		recs[1], recs[2],
	); err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("reordering a route must change the fingerprint")
	}
}
