package depdb

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"indaas/internal/deps"
)

func sampleRecords() []deps.Record {
	return []deps.Record{
		deps.NewNetwork("S1", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("S1", "Internet", "ToR1", "Core2"),
		deps.NewNetwork("S2", "Internet", "ToR1", "Core1"),
		deps.NewHardware("S1", "CPU", "S1-X5550"),
		deps.NewHardware("S2", "Disk", "S2-SED900"),
		deps.NewSoftware("Riak1", "S1", "libc6", "libsvn1"),
		deps.NewSoftware("QueryEngine2", "S2", "libc6", "libgcc1"),
	}
}

func TestPutAndQuery(t *testing.T) {
	db := New()
	if err := db.Put(sampleRecords()...); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if db.Len() != 7 {
		t.Fatalf("Len = %d, want 7", db.Len())
	}
	nets := db.Networks("S1")
	if len(nets) != 2 {
		t.Fatalf("Networks(S1) = %d records, want 2", len(nets))
	}
	if nets[0].Route[1] != "Core1" || nets[1].Route[1] != "Core2" {
		t.Errorf("Networks(S1) order not preserved: %v", nets)
	}
	hw := db.HardwareOf("S2")
	if len(hw) != 1 || hw[0].Dep != "S2-SED900" {
		t.Errorf("HardwareOf(S2) = %v", hw)
	}
	sw := db.SoftwareOf("S1")
	if len(sw) != 1 || sw[0].Pgm != "Riak1" {
		t.Errorf("SoftwareOf(S1) = %v", sw)
	}
	if got := db.Query("S3", deps.KindNetwork); got != nil {
		t.Errorf("Query(unknown) = %v, want nil", got)
	}
}

func TestPutRejectsInvalidAtomically(t *testing.T) {
	db := New()
	err := db.Put(
		deps.NewNetwork("S1", "Internet", "ToR1"),
		deps.NewNetwork("", "Internet"), // invalid
	)
	if err == nil {
		t.Fatal("Put accepted an invalid record")
	}
	if db.Len() != 0 {
		t.Fatalf("Put was not atomic: %d records stored", db.Len())
	}
}

func TestSubjects(t *testing.T) {
	db := New()
	if err := db.Put(sampleRecords()...); err != nil {
		t.Fatal(err)
	}
	if got := db.Subjects(); !reflect.DeepEqual(got, []string{"S1", "S2"}) {
		t.Errorf("Subjects = %v", got)
	}
}

func TestQueryAllGroupsByKind(t *testing.T) {
	db := New()
	// Insert software before network; QueryAll must still group
	// network, hardware, software.
	if err := db.Put(
		deps.NewSoftware("P", "S1", "x"),
		deps.NewNetwork("S1", "Internet", "r1"),
		deps.NewHardware("S1", "CPU", "m"),
	); err != nil {
		t.Fatal(err)
	}
	all := db.QueryAll("S1")
	if len(all) != 3 {
		t.Fatalf("QueryAll = %d records", len(all))
	}
	wantKinds := []deps.Kind{deps.KindNetwork, deps.KindHardware, deps.KindSoftware}
	for i, k := range wantKinds {
		if all[i].Kind != k {
			t.Errorf("QueryAll[%d].Kind = %v, want %v", i, all[i].Kind, k)
		}
	}
}

func TestQueryReturnsCopy(t *testing.T) {
	db := New()
	if err := db.Put(deps.NewNetwork("S1", "Internet", "r1")); err != nil {
		t.Fatal(err)
	}
	got := db.Query("S1", deps.KindNetwork)
	got[0] = deps.NewNetwork("EVIL", "EVIL")
	if db.Query("S1", deps.KindNetwork)[0].Network.Src != "S1" {
		t.Error("Query result aliases internal storage")
	}
}

func TestXMLPersistence(t *testing.T) {
	db := New()
	if err := db.Put(sampleRecords()...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := db.WriteXML(&buf); err != nil {
		t.Fatalf("WriteXML: %v", err)
	}
	db2 := New()
	if err := db2.ReadXML(&buf); err != nil {
		t.Fatalf("ReadXML: %v", err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("reloaded %d records, want %d", db2.Len(), db.Len())
	}
	if !reflect.DeepEqual(db2.Subjects(), db.Subjects()) {
		t.Errorf("subjects differ after reload: %v vs %v", db2.Subjects(), db.Subjects())
	}
	if len(db2.Networks("S1")) != 2 || len(db2.SoftwareOf("S2")) != 1 {
		t.Error("per-kind queries differ after reload")
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	db := New()
	if err := db.Put(sampleRecords()...); err != nil {
		t.Fatalf("Put: %v", err)
	}
	snap := db.Snapshot()
	var buf bytes.Buffer
	if err := snap.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := DecodeSnapshot(&buf)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if decoded.Fingerprint() != snap.Fingerprint() {
		t.Errorf("fingerprint drifted across the round-trip:\n  encoded %s\n  decoded %s",
			snap.Fingerprint(), decoded.Fingerprint())
	}
	if decoded.Len() != snap.Len() {
		t.Errorf("Len = %d, want %d", decoded.Len(), snap.Len())
	}
	if !reflect.DeepEqual(decoded.Records(), snap.Records()) {
		t.Error("records differ after the round-trip")
	}
	if !reflect.DeepEqual(decoded.Subjects(), snap.Subjects()) {
		t.Error("subjects differ after the round-trip")
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	if _, err := DecodeSnapshot(bytes.NewBufferString("not xml")); err == nil {
		t.Error("DecodeSnapshot accepted garbage")
	}
}

func TestReadXMLRejectsGarbage(t *testing.T) {
	db := New()
	if err := db.ReadXML(bytes.NewBufferString("nope")); err == nil {
		t.Error("ReadXML accepted garbage")
	}
	if db.Len() != 0 {
		t.Error("garbage load modified the database")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				name := string(rune('A' + i))
				if err := db.Put(deps.NewHardware("S"+name, "CPU", "m")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				db.Query("S"+name, deps.KindHardware)
				db.Subjects()
				db.Len()
			}
		}(i)
	}
	wg.Wait()
	if db.Len() != 8*50 {
		t.Errorf("Len = %d, want %d", db.Len(), 8*50)
	}
}

// TestCurrentStateViews: the unwrapped accessors reduce the append-only log
// to current state. Continuous acquisition re-observes dependencies forever;
// graph builders must see one event per component, not one per observation.
func TestCurrentStateViews(t *testing.T) {
	db := New()
	err := db.Put(
		// NIC replaced twice: model A -> B -> A again.
		deps.NewHardware("S1", "NIC", "S1-modelA"),
		deps.NewHardware("S1", "NIC", "S1-modelB"),
		deps.NewHardware("S1", "NIC", "S1-modelA"),
		deps.NewHardware("S1", "Disk", "S1-SED900"),
		// svc upgraded: the new closure supersedes the old.
		deps.NewSoftware("svc", "S1", "libc6", "openssl-1.0.1"),
		deps.NewSoftware("svc", "S1", "libc6", "openssl-1.0.2"),
		// The same route observed in two capture windows, plus a genuinely
		// redundant second route between the same endpoints.
		deps.NewNetwork("S1", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("S1", "Internet", "ToR1", "Core1"),
		deps.NewNetwork("S1", "Internet", "ToR1", "Core2"),
	)
	if err != nil {
		t.Fatal(err)
	}

	hw := db.HardwareOf("S1")
	if len(hw) != 2 {
		t.Fatalf("HardwareOf = %v, want latest per slot (NIC, Disk)", hw)
	}
	if hw[0].Type != "NIC" || hw[0].Dep != "S1-modelA" {
		t.Errorf("NIC slot = %+v, want the latest observation in first-seen order", hw[0])
	}

	sw := db.SoftwareOf("S1")
	if len(sw) != 1 || !reflect.DeepEqual(sw[0].Dep, []string{"libc6", "openssl-1.0.2"}) {
		t.Errorf("SoftwareOf = %v, want only the upgraded closure", sw)
	}

	nets := db.Networks("S1")
	if len(nets) != 2 {
		t.Fatalf("Networks = %v, want re-observation collapsed, redundant route kept", nets)
	}
	if nets[0].Route[1] != "Core1" || nets[1].Route[1] != "Core2" {
		t.Errorf("Networks order changed: %v", nets)
	}

	// The snapshot view reduces identically.
	s := db.Snapshot()
	if len(s.HardwareOf("S1")) != 2 || len(s.SoftwareOf("S1")) != 1 || len(s.Networks("S1")) != 2 {
		t.Errorf("snapshot views disagree: hw=%v sw=%v net=%v",
			s.HardwareOf("S1"), s.SoftwareOf("S1"), s.Networks("S1"))
	}
	// The raw log is untouched: Query still returns every observation.
	if got := len(db.Query("S1", deps.KindHardware)); got != 4 {
		t.Errorf("raw hardware log has %d records, want 4", got)
	}
}
