package topology

import "fmt"

// FatTree generates a three-stage fat-tree topology [45] with k-port
// switches, the model behind the paper's Table 3:
//
//   - (k/2)² core routers, in k/2 groups of k/2;
//   - k pods, each with k/2 aggregation switches and k/2 ToR switches;
//   - every ToR hosts k/2 servers (k³/4 servers total);
//   - aggregation switch j of every pod uplinks to core group j.
//
// Table 3's configurations are k = 16 (Topology A: 1,344 devices), k = 24
// (Topology B: 4,176 devices) and k = 48 (Topology C: 30,528 devices).
//
// Device naming: core<g>_<i>, agg<p>_<j>, tor<p>_<j>, srv<p>_<t>_<s>.
// A server's routes to the Internet are [tor, agg, core] for every
// aggregation switch in its pod and every core in that switch's group —
// (k/2)² redundant routes.
func FatTree(k int) (*Topology, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree arity must be even and ≥ 2, got %d", k)
	}
	h := k / 2
	b := newTopologyBuilder(fmt.Sprintf("fattree-k%d", k))
	for g := 0; g < h; g++ {
		for i := 0; i < h; i++ {
			b.addDevice(coreName(g, i), KindCore, -1)
		}
	}
	for p := 0; p < k; p++ {
		for j := 0; j < h; j++ {
			b.addDevice(aggName(p, j), KindAgg, p)
			b.addDevice(torName(p, j), KindToR, p)
		}
		for tj := 0; tj < h; tj++ {
			for s := 0; s < h; s++ {
				b.addDevice(serverName(p, tj, s), KindServer, p)
			}
		}
	}
	// Routes are generated lazily: a k=48 tree has 27,648 servers with 576
	// routes each, which is wasteful to materialize up front.
	b.t.routeFn = func(server string) ([][]string, error) {
		var p, tj, s int
		if _, err := fmt.Sscanf(server, "srv%d_%d_%d", &p, &tj, &s); err != nil {
			return nil, fmt.Errorf("topology: %q is not a fat-tree server: %w", server, err)
		}
		out := make([][]string, 0, h*h)
		for j := 0; j < h; j++ {
			for c := 0; c < h; c++ {
				out = append(out, []string{torName(p, tj), aggName(p, j), coreName(j, c)})
			}
		}
		return out, nil
	}
	return b.build()
}

func coreName(group, i int) string    { return fmt.Sprintf("core%d_%d", group, i) }
func aggName(pod, j int) string       { return fmt.Sprintf("agg%d_%d", pod, j) }
func torName(pod, j int) string       { return fmt.Sprintf("tor%d_%d", pod, j) }
func serverName(pod, t, s int) string { return fmt.Sprintf("srv%d_%d_%d", pod, t, s) }

// FatTreeServer returns the canonical name of a server in the fat tree, for
// picking deployment members without string formatting at call sites.
func FatTreeServer(pod, tor, slot int) string { return serverName(pod, tor, slot) }

// ServerToServerRoutes returns the redundant routes between two servers of a
// fat tree, as ordered device lists excluding the endpoint servers:
//
//   - same ToR: [tor];
//   - same pod, different ToR: [torS, agg j, torD] for each aggregation j;
//   - different pods: [torS, agg j (src pod), core (group j), agg j (dst
//     pod), torD] for each j and each core in group j.
//
// Used by the netflow acquisition simulator to route service traffic.
func ServerToServerRoutes(t *Topology, src, dst string) ([][]string, error) {
	sd, ok := t.Device(src)
	if !ok || sd.Kind != KindServer {
		return nil, fmt.Errorf("topology: unknown server %q", src)
	}
	dd, ok := t.Device(dst)
	if !ok || dd.Kind != KindServer {
		return nil, fmt.Errorf("topology: unknown server %q", dst)
	}
	if src == dst {
		return nil, fmt.Errorf("topology: src and dst are the same server %q", src)
	}
	var sp, st, ss, dp, dt, ds int
	if _, err := fmt.Sscanf(src, "srv%d_%d_%d", &sp, &st, &ss); err != nil {
		return nil, fmt.Errorf("topology: %q is not a fat-tree server: %w", src, err)
	}
	if _, err := fmt.Sscanf(dst, "srv%d_%d_%d", &dp, &dt, &ds); err != nil {
		return nil, fmt.Errorf("topology: %q is not a fat-tree server: %w", dst, err)
	}
	// Infer arity from the core count.
	h := 0
	for _, d := range t.devices {
		if d.Kind == KindAgg && d.Pod == 0 {
			h++
		}
	}
	if h == 0 {
		return nil, fmt.Errorf("topology: %q has no aggregation layer", t.Name)
	}
	var out [][]string
	switch {
	case sp == dp && st == dt:
		out = append(out, []string{torName(sp, st)})
	case sp == dp:
		for j := 0; j < h; j++ {
			out = append(out, []string{torName(sp, st), aggName(sp, j), torName(dp, dt)})
		}
	default:
		for j := 0; j < h; j++ {
			for c := 0; c < h; c++ {
				out = append(out, []string{
					torName(sp, st), aggName(sp, j), coreName(j, c), aggName(dp, j), torName(dp, dt),
				})
			}
		}
	}
	return out, nil
}
