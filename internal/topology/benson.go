package topology

import (
	"fmt"
	"sort"
)

// BensonDC constructs the data-center topology of the paper's first case
// study (§6.2.1, Fig. 6a), modelled after a measured data center from
// Benson et al. [9]: 33 top-of-rack switches e1..e33, each serving one rack,
// and four core routers — b1, b2 (border tier) and c1, c2 (upper core tier)
// — connecting the ToRs to the Internet.
//
// The original measurement data is not public. This reconstruction wires the
// ToRs so that the case study's published ground truth holds exactly:
//
//   - 20 candidate racks host the audited service (BensonCandidateRacks);
//   - of the C(20,2) = 190 two-way redundancy deployments, exactly 27 have
//     no unexpected (size-1) risk group;
//   - with every device failing independently with probability 0.1,
//     {Rack5, Rack29} is the unique deployment with the lowest failure
//     probability.
//
// Wiring plan (each rack's representative server is Rack<i>, behind ToR e<i>):
//
//	Rack29:            e29→b1→c1 and e29→b1→c2   (dual core, single border)
//	Rack5:             e5→b2→c1  and e5→b2→c2    (dual core, single border)
//	Racks 2,3:         single route e→b1→c1
//	Racks 9,14,21,27:  single route e→b2→c2
//	12 other candidates: single route e→b1→c2
//	13 non-candidates: dual routes e→b1→c1 and e→b2→c2
func BensonDC() *Topology {
	b := newTopologyBuilder("benson-dc")
	for _, r := range []string{"b1", "b2"} {
		b.addDevice(r, KindAgg, -1)
	}
	for _, r := range []string{"c1", "c2"} {
		b.addDevice(r, KindCore, -1)
	}
	for i := 1; i <= bensonToRs; i++ {
		b.addDevice(fmt.Sprintf("e%d", i), KindToR, -1)
		b.addDevice(rackName(i), KindServer, -1)
	}
	addSingle := func(rack int, border, core string) {
		b.addRoute(rackName(rack), fmt.Sprintf("e%d", rack), border, core)
	}
	for _, i := range bensonGroupB1C1 {
		addSingle(i, "b1", "c1")
	}
	for _, i := range bensonGroupB2C2 {
		addSingle(i, "b2", "c2")
	}
	for _, i := range bensonGroupB1C2 {
		addSingle(i, "b1", "c2")
	}
	// Rack 29: both cores behind b1. Rack 5: both cores behind b2.
	addSingle(29, "b1", "c1")
	addSingle(29, "b1", "c2")
	addSingle(5, "b2", "c1")
	addSingle(5, "b2", "c2")
	// Non-candidate racks: fully redundant dual-homing.
	for i := 1; i <= bensonToRs; i++ {
		if !bensonCandidateSet[i] {
			addSingle(i, "b1", "c1")
			addSingle(i, "b2", "c2")
		}
	}
	t, err := b.build()
	if err != nil {
		panic("topology: BensonDC construction is static and must not fail: " + err.Error())
	}
	return t
}

const bensonToRs = 33

var (
	// bensonGroupB1C1 are candidates single-routed via b1 and c1.
	bensonGroupB1C1 = []int{2, 3}
	// bensonGroupB2C2 are candidates single-routed via b2 and c2.
	bensonGroupB2C2 = []int{9, 14, 21, 27}
	// bensonGroupB1C2 are candidates single-routed via b1 and c2.
	bensonGroupB1C2 = []int{7, 11, 12, 16, 17, 19, 23, 24, 26, 28, 31, 33}

	bensonCandidateSet = func() map[int]bool {
		m := map[int]bool{5: true, 29: true}
		for _, g := range [][]int{bensonGroupB1C1, bensonGroupB2C2, bensonGroupB1C2} {
			for _, i := range g {
				m[i] = true
			}
		}
		return m
	}()
)

func rackName(i int) string { return fmt.Sprintf("Rack%d", i) }

// BensonCandidateRacks returns the names of the 20 racks that are candidates
// for hosting the audited service, sorted by rack number.
func BensonCandidateRacks() []string {
	nums := make([]int, 0, len(bensonCandidateSet))
	for i := range bensonCandidateSet {
		nums = append(nums, i)
	}
	sort.Ints(nums)
	out := make([]string, len(nums))
	for i, n := range nums {
		out[i] = rackName(n)
	}
	return out
}
