// Package topology models data-center network topologies: the three-stage
// fat trees used by the paper's performance evaluation (Table 3, [45]) and a
// Benson-style measured data center [9] for the §6.2.1 case study.
//
// A topology knows its devices and, for every server, the redundant routes
// to the Internet (and between servers), expressed as ordered device lists —
// exactly the network dependency records of Table 1.
package topology

import (
	"fmt"
	"sort"
)

// Kind classifies a device.
type Kind int

const (
	// KindServer is a host machine.
	KindServer Kind = iota
	// KindToR is a top-of-rack (edge) switch.
	KindToR
	// KindAgg is an aggregation switch.
	KindAgg
	// KindCore is a core router.
	KindCore
)

// String returns the device kind's name.
func (k Kind) String() string {
	switch k {
	case KindServer:
		return "server"
	case KindToR:
		return "tor"
	case KindAgg:
		return "agg"
	case KindCore:
		return "core"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device is one network element or host.
type Device struct {
	Name string
	Kind Kind
	Pod  int // pod index for fat-tree members; -1 when not applicable
}

// Counts tallies devices by kind (the rows of Table 3).
type Counts struct {
	Cores, Aggs, ToRs, Servers int
}

// Total returns the total device count (servers + switches + routers).
func (c Counts) Total() int { return c.Cores + c.Aggs + c.ToRs + c.Servers }

// Switches returns the number of non-server devices.
func (c Counts) Switches() int { return c.Cores + c.Aggs + c.ToRs }

// Topology is an immutable network topology.
type Topology struct {
	Name    string
	devices []Device
	byName  map[string]int
	// routesUp[server] lists the redundant routes from the server to the
	// Internet; each route is the ordered device names traversed
	// (excluding the server itself and the Internet).
	routesUp map[string][][]string
	// routeFn lazily generates routes for generative topologies (fat trees)
	// where materializing every server's route list would be prohibitive.
	routeFn func(server string) ([][]string, error)
}

// Devices returns all devices. The slice is shared; treat as read-only.
func (t *Topology) Devices() []Device { return t.devices }

// Device looks a device up by name.
func (t *Topology) Device(name string) (Device, bool) {
	i, ok := t.byName[name]
	if !ok {
		return Device{}, false
	}
	return t.devices[i], true
}

// Servers returns the names of all servers in deterministic order.
func (t *Topology) Servers() []string {
	var out []string
	for _, d := range t.devices {
		if d.Kind == KindServer {
			out = append(out, d.Name)
		}
	}
	return out
}

// Counts tallies the devices by kind.
func (t *Topology) Counts() Counts {
	var c Counts
	for _, d := range t.devices {
		switch d.Kind {
		case KindCore:
			c.Cores++
		case KindAgg:
			c.Aggs++
		case KindToR:
			c.ToRs++
		case KindServer:
			c.Servers++
		}
	}
	return c
}

// RoutesToInternet returns the redundant routes from server to the Internet.
// The result is a deep copy (or freshly generated for lazy topologies).
func (t *Topology) RoutesToInternet(server string) ([][]string, error) {
	if routes, ok := t.routesUp[server]; ok {
		out := make([][]string, len(routes))
		for i, r := range routes {
			out[i] = append([]string(nil), r...)
		}
		return out, nil
	}
	if t.routeFn != nil {
		if d, ok := t.Device(server); ok && d.Kind == KindServer {
			return t.routeFn(server)
		}
	}
	return nil, fmt.Errorf("topology: unknown server %q", server)
}

// SortedRouteDevices returns the sorted set of distinct devices appearing on
// any of server's routes to the Internet.
func (t *Topology) SortedRouteDevices(server string) ([]string, error) {
	routes, err := t.RoutesToInternet(server)
	if err != nil {
		return nil, err
	}
	set := make(map[string]struct{})
	for _, r := range routes {
		for _, d := range r {
			set[d] = struct{}{}
		}
	}
	out := make([]string, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Strings(out)
	return out, nil
}

// builder helpers --------------------------------------------------------

type builder struct {
	t   *Topology
	err error
}

func newTopologyBuilder(name string) *builder {
	return &builder{t: &Topology{
		Name:     name,
		byName:   make(map[string]int),
		routesUp: make(map[string][][]string),
	}}
}

func (b *builder) addDevice(name string, kind Kind, pod int) {
	if b.err != nil {
		return
	}
	if _, dup := b.t.byName[name]; dup {
		b.err = fmt.Errorf("topology: duplicate device %q", name)
		return
	}
	b.t.byName[name] = len(b.t.devices)
	b.t.devices = append(b.t.devices, Device{Name: name, Kind: kind, Pod: pod})
}

func (b *builder) addRoute(server string, route ...string) {
	if b.err != nil {
		return
	}
	if _, ok := b.t.byName[server]; !ok {
		b.err = fmt.Errorf("topology: route for unknown server %q", server)
		return
	}
	for _, d := range route {
		if _, ok := b.t.byName[d]; !ok {
			b.err = fmt.Errorf("topology: route via unknown device %q", d)
			return
		}
	}
	b.t.routesUp[server] = append(b.t.routesUp[server], route)
}

func (b *builder) build() (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.t.routeFn == nil {
		for _, d := range b.t.devices {
			if d.Kind == KindServer && len(b.t.routesUp[d.Name]) == 0 {
				return nil, fmt.Errorf("topology: server %q has no routes", d.Name)
			}
		}
	}
	return b.t, nil
}
