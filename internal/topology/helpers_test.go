package topology

import "fmt"

func fmtSscanf(s, format string, args ...any) (int, error) {
	return fmt.Sscanf(s, format, args...)
}
