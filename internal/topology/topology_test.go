package topology

import (
	"reflect"
	"strings"
	"testing"
)

func TestFatTreeTable3Counts(t *testing.T) {
	// Table 3 of the paper.
	cases := []struct {
		k                          int
		cores, aggs, tors, servers int
		total                      int
	}{
		{16, 64, 128, 128, 1024, 1344},      // Topology A
		{24, 144, 288, 288, 3456, 4176},     // Topology B
		{48, 576, 1152, 1152, 27648, 30528}, // Topology C
	}
	for _, c := range cases {
		if c.k > 24 && testing.Short() {
			continue
		}
		ft, err := FatTree(c.k)
		if err != nil {
			t.Fatalf("FatTree(%d): %v", c.k, err)
		}
		got := ft.Counts()
		want := Counts{Cores: c.cores, Aggs: c.aggs, ToRs: c.tors, Servers: c.servers}
		if got != want {
			t.Errorf("k=%d: counts = %+v, want %+v", c.k, got, want)
		}
		if got.Total() != c.total {
			t.Errorf("k=%d: total = %d, want %d", c.k, got.Total(), c.total)
		}
	}
}

func TestFatTreeInvalidArity(t *testing.T) {
	for _, k := range []int{0, -2, 3, 7} {
		if _, err := FatTree(k); err == nil {
			t.Errorf("FatTree(%d) accepted", k)
		}
	}
}

func TestFatTreeRoutes(t *testing.T) {
	ft, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	srv := FatTreeServer(0, 0, 0)
	routes, err := ft.RoutesToInternet(srv)
	if err != nil {
		t.Fatal(err)
	}
	// (k/2)^2 = 4 routes, each [tor, agg, core].
	if len(routes) != 4 {
		t.Fatalf("routes = %d, want 4", len(routes))
	}
	for _, r := range routes {
		if len(r) != 3 {
			t.Fatalf("route %v should have 3 hops", r)
		}
		if r[0] != "tor0_0" {
			t.Errorf("route %v does not start at the server's ToR", r)
		}
		if !strings.HasPrefix(r[1], "agg0_") {
			t.Errorf("route %v second hop not an in-pod agg", r)
		}
		if !strings.HasPrefix(r[2], "core") {
			t.Errorf("route %v third hop not a core", r)
		}
	}
	// Aggregation switch j must pair only with core group j.
	for _, r := range routes {
		var aj, cg, ci int
		if _, err := sscan2(r[1], "agg0_%d", &aj); err != nil {
			t.Fatalf("parse %q: %v", r[1], err)
		}
		if _, err := sscan3(r[2], "core%d_%d", &cg, &ci); err != nil {
			t.Fatalf("parse %q: %v", r[2], err)
		}
		if aj != cg {
			t.Errorf("route %v pairs agg %d with core group %d", r, aj, cg)
		}
	}
	if _, err := ft.RoutesToInternet("nope"); err == nil {
		t.Error("RoutesToInternet(nope) succeeded")
	}
}

func TestFatTreeRouteDeviceSets(t *testing.T) {
	ft, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	devs, err := ft.SortedRouteDevices(FatTreeServer(1, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	// 1 ToR + 2 aggs + 4 cores.
	if len(devs) != 7 {
		t.Errorf("route device set = %v", devs)
	}
}

func TestServerToServerRoutes(t *testing.T) {
	ft, err := FatTree(4)
	if err != nil {
		t.Fatal(err)
	}
	sameToR, err := ServerToServerRoutes(ft, FatTreeServer(0, 0, 0), FatTreeServer(0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sameToR, [][]string{{"tor0_0"}}) {
		t.Errorf("same-ToR route = %v", sameToR)
	}
	samePod, err := ServerToServerRoutes(ft, FatTreeServer(0, 0, 0), FatTreeServer(0, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(samePod) != 2 {
		t.Fatalf("same-pod routes = %v", samePod)
	}
	for _, r := range samePod {
		if len(r) != 3 || r[0] != "tor0_0" || r[2] != "tor0_1" {
			t.Errorf("bad same-pod route %v", r)
		}
	}
	crossPod, err := ServerToServerRoutes(ft, FatTreeServer(0, 0, 0), FatTreeServer(2, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(crossPod) != 4 { // h*h = 4
		t.Fatalf("cross-pod routes = %d, want 4", len(crossPod))
	}
	for _, r := range crossPod {
		if len(r) != 5 {
			t.Errorf("cross-pod route %v should have 5 hops", r)
		}
	}
	if _, err := ServerToServerRoutes(ft, "bogus", FatTreeServer(0, 0, 0)); err == nil {
		t.Error("accepted bogus src")
	}
	if _, err := ServerToServerRoutes(ft, FatTreeServer(0, 0, 0), FatTreeServer(0, 0, 0)); err == nil {
		t.Error("accepted identical src/dst")
	}
}

func TestBensonDCShape(t *testing.T) {
	dc := BensonDC()
	c := dc.Counts()
	if c.ToRs != 33 {
		t.Errorf("ToRs = %d, want 33", c.ToRs)
	}
	if c.Aggs+c.Cores != 4 {
		t.Errorf("core routers = %d, want 4", c.Aggs+c.Cores)
	}
	if c.Servers != 33 {
		t.Errorf("rack representatives = %d, want 33", c.Servers)
	}
	cands := BensonCandidateRacks()
	if len(cands) != 20 {
		t.Fatalf("candidates = %d, want 20", len(cands))
	}
	has := func(name string) bool {
		for _, c := range cands {
			if c == name {
				return true
			}
		}
		return false
	}
	if !has("Rack5") || !has("Rack29") {
		t.Error("Rack5/Rack29 missing from candidates")
	}
}

func TestBensonRoutesByProfile(t *testing.T) {
	dc := BensonDC()
	cases := []struct {
		rack  string
		wants [][]string
	}{
		{"Rack29", [][]string{{"e29", "b1", "c1"}, {"e29", "b1", "c2"}}},
		{"Rack5", [][]string{{"e5", "b2", "c1"}, {"e5", "b2", "c2"}}},
		{"Rack2", [][]string{{"e2", "b1", "c1"}}},
		{"Rack9", [][]string{{"e9", "b2", "c2"}}},
		{"Rack7", [][]string{{"e7", "b1", "c2"}}},
		{"Rack1", [][]string{{"e1", "b1", "c1"}, {"e1", "b2", "c2"}}}, // non-candidate
	}
	for _, c := range cases {
		got, err := dc.RoutesToInternet(c.rack)
		if err != nil {
			t.Fatalf("%s: %v", c.rack, err)
		}
		if !reflect.DeepEqual(got, c.wants) {
			t.Errorf("%s routes = %v, want %v", c.rack, got, c.wants)
		}
	}
}

func TestDeviceLookup(t *testing.T) {
	dc := BensonDC()
	d, ok := dc.Device("e17")
	if !ok || d.Kind != KindToR {
		t.Errorf("Device(e17) = %+v, %v", d, ok)
	}
	if _, ok := dc.Device("nothere"); ok {
		t.Error("Device(nothere) found")
	}
	if KindServer.String() != "server" || KindCore.String() != "core" {
		t.Error("Kind.String broken")
	}
}

// tiny fmt.Sscanf helpers keeping test deps minimal.
func sscan2(s, format string, a *int) (int, error)    { return fmtSscanf(s, format, a) }
func sscan3(s, format string, a, b *int) (int, error) { return fmtSscanf(s, format, a, b) }
