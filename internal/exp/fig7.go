package exp

import (
	"fmt"
	"time"

	"indaas/internal/core"
	"indaas/internal/faultgraph"
	"indaas/internal/riskgroup"
	"indaas/internal/sia"
	"indaas/internal/topology"
)

// Fig7Point is one measurement: an algorithm run on one topology.
type Fig7Point struct {
	Topology  string
	Algorithm string // "minimal-rg" or "sampling(Nrounds)"
	Rounds    int    // 0 for the exact algorithm
	Elapsed   time.Duration
	// Detected is the fraction of true minimal RGs found (1.0 for the
	// exact algorithm) — Fig. 7's y-axis.
	Detected float64
	// MinimalRGs is the ground-truth family size.
	MinimalRGs int
}

// Fig7Result collects the accuracy/cost series of Fig. 7.
type Fig7Result struct {
	Points []Fig7Point
}

// Fig7Config scales the experiment.
type Fig7Config struct {
	// Arities lists the fat-tree port counts to run (default {8, 16};
	// the paper's Table 3 scale is {16, 24, 48}).
	Arities []int
	// RoundCounts lists the sampling round counts (default 10³..10⁵;
	// paper 10³..10⁷).
	RoundCounts []int
	// Replicas is the deployment width r (default 2): the audited service
	// replicates across r servers in distinct pods.
	Replicas int
	// Bias is the per-event failure probability of each sampling round's
	// coin flip (default 0.97). Fat-tree deployments have minimal RGs as
	// large as (k/2)² devices; a fair coin almost never produces rounds
	// containing such cuts, so the sampler would detect only the small
	// ones. Biasing the coin toward failure keeps every round informative —
	// the shrink step still reduces each failing sample to a minimal RG.
	Bias float64
	// Seed seeds the samplers.
	Seed int64
	// Workers is the sampler parallelism (0 = one goroutine per CPU).
	Workers int
}

func (c *Fig7Config) defaults() {
	if len(c.Arities) == 0 {
		c.Arities = []int{8, 16}
	}
	if len(c.RoundCounts) == 0 {
		c.RoundCounts = []int{1_000, 10_000, 100_000}
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Bias == 0 {
		c.Bias = 0.97
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig7FullConfig returns the near-paper-scale configuration (slow: the
// minimal RG algorithm on k=24 mirrors the paper's 1046-minute run in
// miniature and still takes a long time).
func Fig7FullConfig() Fig7Config {
	return Fig7Config{
		Arities:     []int{16, 24},
		RoundCounts: []int{1_000, 10_000, 100_000, 1_000_000},
	}
}

// fig7Graph builds the audited fault graph: an r-way redundant deployment
// across the first server of pods 0..r−1 on a k-port fat tree, at the fault
// graph level of detail (ToR / aggregation / core path structure).
func fig7Graph(k, r int) (*faultgraph.Graph, error) {
	ft, err := topology.FatTree(k)
	if err != nil {
		return nil, err
	}
	if r > k {
		return nil, fmt.Errorf("fig7: %d replicas need at least %d pods", r, r)
	}
	auditor := core.NewAuditor()
	if err := auditor.Register("net", core.TopologyAcquirer(ft)); err != nil {
		return nil, err
	}
	servers := make([]string, r)
	for i := range servers {
		servers[i] = topology.FatTreeServer(i, 0, 0)
	}
	if err := auditor.Acquire(servers...); err != nil {
		return nil, err
	}
	return sia.BuildGraph(auditor.DB(), sia.GraphSpec{
		Deployment: fmt.Sprintf("fattree-k%d-%dway", k, r),
		Servers:    servers,
	})
}

// RunFig7 measures the minimal RG algorithm and the failure sampling
// algorithm on each topology, reporting runtime and the fraction of
// ground-truth minimal RGs detected.
func RunFig7(cfg Fig7Config) (*Fig7Result, error) {
	cfg.defaults()
	res := &Fig7Result{}
	for _, k := range cfg.Arities {
		g, err := fig7Graph(k, cfg.Replicas)
		if err != nil {
			return nil, err
		}
		topoName := fmt.Sprintf("fat-tree k=%d (%d devices)", k, countsOf(k))

		var truth []riskgroup.RG
		elapsed, err := timed(func() error {
			var err error
			truth, err = riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("fig7: minimal RGs on k=%d: %w", k, err)
		}
		res.Points = append(res.Points, Fig7Point{
			Topology:   topoName,
			Algorithm:  "minimal-rg",
			Elapsed:    elapsed,
			Detected:   1,
			MinimalRGs: len(truth),
		})

		for _, rounds := range cfg.RoundCounts {
			var fam []riskgroup.RG
			elapsed, err := timed(func() error {
				var err error
				fam, err = riskgroup.Sampler{Rounds: rounds, Bias: cfg.Bias, Shrink: true, Seed: cfg.Seed, Workers: cfg.Workers}.Sample(g)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig7: sampling %d rounds on k=%d: %w", rounds, k, err)
			}
			res.Points = append(res.Points, Fig7Point{
				Topology:   topoName,
				Algorithm:  fmt.Sprintf("sampling(%d)", rounds),
				Rounds:     rounds,
				Elapsed:    elapsed,
				Detected:   riskgroup.DetectionRate(truth, fam),
				MinimalRGs: len(truth),
			})
		}
	}
	return res, nil
}

func countsOf(k int) int {
	ft, err := topology.FatTree(k)
	if err != nil {
		return 0
	}
	return ft.Counts().Total()
}

// Render formats the series.
func (r *Fig7Result) Render() *Table {
	t := &Table{
		Title:  "Fig. 7 — minimal RG algorithm vs failure sampling (§6.3.1, scaled)",
		Header: []string{"topology", "algorithm", "time", "% minimal RGs detected", "#minimal RGs"},
	}
	for _, p := range r.Points {
		t.Append(p.Topology, p.Algorithm, p.Elapsed, fmt.Sprintf("%.1f%%", 100*p.Detected), p.MinimalRGs)
	}
	return t
}

// Verify checks the qualitative claims of Fig. 7: the exact algorithm finds
// everything; sampling accuracy is monotone in rounds (within one topology)
// and the largest sampling run is much faster than exact on the largest
// topology would suggest — here we only assert detection ordering and that
// sampling reaches a usable detection rate at the top round count.
func (r *Fig7Result) Verify() error {
	byTopo := map[string][]Fig7Point{}
	for _, p := range r.Points {
		byTopo[p.Topology] = append(byTopo[p.Topology], p)
	}
	for topo, points := range byTopo {
		var prevRounds, prevIdx = -1, -1
		for i, p := range points {
			if p.Algorithm == "minimal-rg" {
				if p.Detected != 1 {
					return fmt.Errorf("fig7: exact algorithm detected %.2f on %s", p.Detected, topo)
				}
				continue
			}
			if prevIdx >= 0 && p.Rounds > prevRounds {
				if p.Detected+1e-9 < points[prevIdx].Detected {
					return fmt.Errorf("fig7: detection not monotone on %s: %d rounds %.3f < %d rounds %.3f",
						topo, p.Rounds, p.Detected, prevRounds, points[prevIdx].Detected)
				}
			}
			prevRounds, prevIdx = p.Rounds, i
		}
		last := points[len(points)-1]
		if last.Detected < 0.5 {
			return fmt.Errorf("fig7: top sampling run on %s detected only %.1f%%", topo, 100*last.Detected)
		}
	}
	return nil
}
