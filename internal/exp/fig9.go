package exp

import (
	"fmt"
	"time"

	"indaas/internal/faultgraph"
	"indaas/internal/pia"
	"indaas/internal/riskgroup"
)

// Fig9Point is one method's total cost over all candidate deployments for a
// given provider count.
type Fig9Point struct {
	Method    string // "PIA-KS", "SIA-minimal", "PIA-P-SOP", "SIA-sampling"
	Providers int
	Arity     int // 2 = two-way, 3 = three-way
	Elapsed   time.Duration
}

// Fig9Result collects the SIA-vs-PIA comparison of Fig. 9.
type Fig9Result struct {
	Points []Fig9Point
}

// Fig9Config scales the experiment.
type Fig9Config struct {
	// ProviderCounts lists the m values (paper: 5..20; default {4, 6}).
	ProviderCounts []int
	// Elements is each provider's component-set size (paper: 10⁴;
	// default 60 — the three-way minimal-RG families grow cubically in the
	// per-provider private-set size, which is exactly Fig. 9's point).
	Elements int
	// Arities lists the deployment widths to evaluate (default {2, 3}).
	Arities []int
	// Rounds is the sampling round count (paper: 10⁶; default 10⁴).
	Rounds int
	// Bits / KSBlindBits parametrize the private protocols.
	Bits        int
	KSBlindBits int
	// KSMinHashM is the MinHash signature width the KS runs use
	// (default 32 — KS cost is quadratic in the signature width).
	KSMinHashM int
	// SkipKS drops the (very slow) KS runs.
	SkipKS bool
	// Overlap is the fraction of components shared across providers.
	Overlap float64
	Seed    int64
}

func (c *Fig9Config) defaults() {
	if len(c.ProviderCounts) == 0 {
		c.ProviderCounts = []int{4, 6}
	}
	if c.Elements == 0 {
		c.Elements = 60
	}
	if len(c.Arities) == 0 {
		c.Arities = []int{2, 3}
	}
	if c.Rounds == 0 {
		c.Rounds = 10_000
	}
	if c.Bits == 0 {
		c.Bits = 512
	}
	if c.KSBlindBits == 0 {
		c.KSBlindBits = 64
	}
	if c.KSMinHashM == 0 {
		c.KSMinHashM = 32
	}
	if c.Overlap == 0 {
		c.Overlap = 0.2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Fig9FullConfig approaches the paper's setting.
func Fig9FullConfig() Fig9Config {
	return Fig9Config{
		ProviderCounts: []int{5, 10, 15, 20},
		Elements:       10_000,
		Rounds:         1_000_000,
		Bits:           1024,
		SkipKS:         false,
	}
}

// RunFig9 compares, for each provider count m, the total time to evaluate
// every two-way (and three-way) redundancy deployment with four methods:
// SIA with the minimal RG algorithm, SIA with failure sampling (both at the
// component-set level, as a trusted auditor), PIA with P-SOP, and PIA with
// the KS baseline.
func RunFig9(cfg Fig9Config) (*Fig9Result, error) {
	cfg.defaults()
	res := &Fig9Result{}
	for _, m := range cfg.ProviderCounts {
		providers := fig9Providers(m, cfg.Elements, cfg.Overlap)
		for _, arity := range cfg.Arities {
			var deployments []pia.Deployment
			switch arity {
			case 2:
				deployments = pia.AllPairs(m)
			case 3:
				deployments = pia.AllTriples(m)
			default:
				return nil, fmt.Errorf("fig9: unsupported arity %d", arity)
			}

			// SIA, minimal RG algorithm at the component-set level.
			elapsed, err := timed(func() error {
				return fig9SIA(providers, deployments, func(g *faultgraph.Graph) error {
					_, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
					return err
				})
			})
			if err != nil {
				return nil, fmt.Errorf("fig9: SIA-minimal m=%d: %w", m, err)
			}
			res.Points = append(res.Points, Fig9Point{Method: "SIA-minimal", Providers: m, Arity: arity, Elapsed: elapsed})

			// SIA, failure sampling.
			elapsed, err = timed(func() error {
				return fig9SIA(providers, deployments, func(g *faultgraph.Graph) error {
					_, err := riskgroup.Sampler{Rounds: cfg.Rounds, Shrink: false, Seed: cfg.Seed}.Sample(g)
					return err
				})
			})
			if err != nil {
				return nil, fmt.Errorf("fig9: SIA-sampling m=%d: %w", m, err)
			}
			res.Points = append(res.Points, Fig9Point{Method: "SIA-sampling", Providers: m, Arity: arity, Elapsed: elapsed})

			// PIA with P-SOP.
			elapsed, err = timed(func() error {
				_, err := pia.AuditDeployments(pia.Config{Protocol: pia.ProtocolPSOP, Bits: cfg.Bits}, providers, deployments)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig9: PIA-P-SOP m=%d: %w", m, err)
			}
			res.Points = append(res.Points, Fig9Point{Method: "PIA-P-SOP", Providers: m, Arity: arity, Elapsed: elapsed})

			// PIA with KS.
			if !cfg.SkipKS {
				elapsed, err = timed(func() error {
					_, err := pia.AuditDeployments(pia.Config{
						Protocol: pia.ProtocolKS, Bits: cfg.Bits,
						MinHashM: cfg.KSMinHashM, KSBlindBits: cfg.KSBlindBits,
					}, providers, deployments)
					return err
				})
				if err != nil {
					return nil, fmt.Errorf("fig9: PIA-KS m=%d: %w", m, err)
				}
				res.Points = append(res.Points, Fig9Point{Method: "PIA-KS", Providers: m, Arity: arity, Elapsed: elapsed})
			}
		}
	}
	return res, nil
}

// fig9Providers builds m component-sets of n elements with a shared core.
func fig9Providers(m, n int, overlap float64) []pia.Provider {
	shared := int(float64(n) * overlap)
	out := make([]pia.Provider, m)
	for i := range out {
		comps := make([]string, 0, n)
		for j := 0; j < shared; j++ {
			comps = append(comps, fmt.Sprintf("pkg:common-%d", j))
		}
		for j := shared; j < n; j++ {
			comps = append(comps, fmt.Sprintf("cloud%d/comp-%d", i, j))
		}
		out[i] = pia.Provider{Name: fmt.Sprintf("Cloud%d", i+1), Components: comps}
	}
	return out
}

// fig9SIA evaluates every deployment at the component-set level with the
// given analysis, modelling the trusted auditor of §6.3.3.
func fig9SIA(providers []pia.Provider, deployments []pia.Deployment, analyze func(*faultgraph.Graph) error) error {
	for _, d := range deployments {
		sources := make([]faultgraph.SourceSet, len(d))
		for i, idx := range d {
			sources[i] = faultgraph.SourceSet{
				Source:     providers[idx].Name,
				Components: providers[idx].Components,
			}
		}
		g, err := faultgraph.FromSourceSets("deployment fails", len(sources), sources)
		if err != nil {
			return err
		}
		if err := analyze(g); err != nil {
			return err
		}
	}
	return nil
}

// Render formats the series.
func (r *Fig9Result) Render() *Table {
	t := &Table{
		Title:  "Fig. 9 — SIA vs PIA computational cost (§6.3.3, scaled)",
		Header: []string{"method", "providers", "arity", "total time"},
	}
	for _, p := range r.Points {
		t.Append(p.Method, p.Providers, fmt.Sprintf("%d-way", p.Arity), p.Elapsed)
	}
	return t
}

// Verify checks Fig. 9's qualitative ordering at the largest provider
// count: SIA sampling is the cheapest; PIA-P-SOP costs more than SIA
// sampling; PIA-KS (when run) is the most expensive of the private methods.
func (r *Fig9Result) Verify() error {
	byMethod := map[string]time.Duration{}
	maxM := 0
	for _, p := range r.Points {
		if p.Providers > maxM {
			maxM = p.Providers
		}
	}
	for _, p := range r.Points {
		if p.Providers == maxM && p.Arity == 2 {
			byMethod[p.Method] += p.Elapsed
		}
	}
	sampling, okS := byMethod["SIA-sampling"]
	psop, okP := byMethod["PIA-P-SOP"]
	if !okS || !okP {
		return fmt.Errorf("fig9: missing methods in results: %v", byMethod)
	}
	if psop < sampling/2 {
		return fmt.Errorf("fig9: P-SOP (%v) implausibly cheaper than half of SIA sampling (%v)", psop, sampling)
	}
	if ks, ok := byMethod["PIA-KS"]; ok {
		if ks <= psop {
			return fmt.Errorf("fig9: KS (%v) not slower than P-SOP (%v)", ks, psop)
		}
	}
	return nil
}
