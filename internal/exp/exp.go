// Package exp implements the paper's evaluation (§6): every table and
// figure has a workload generator and a runner that reproduces the
// artifact's rows or series, at laptop scale by default and near paper
// scale with Full.
//
// Per-experiment index (see DESIGN.md §3):
//
//   - Table2 / Fig6c — PIA over the four key-value stores (§6.2.3)
//   - Table3 — generated fat-tree configurations (§6.3.1)
//   - Fig6a — common network dependency case study (§6.2.1)
//   - Fig6b — common hardware dependency case study (§6.2.2)
//   - Fig7 — minimal RG vs failure sampling accuracy/cost (§6.3.1)
//   - Fig8 — P-SOP vs KS protocol overheads (§6.3.2)
//   - Fig9 — SIA vs PIA computational cost (§6.3.3)
package exp

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a generic rendered result: a header and rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Append adds a row, formatting each cell with %v.
func (t *Table) Append(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4f", v)
		case time.Duration:
			row[i] = v.Round(time.Millisecond).String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "--- %s ---\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// timed measures one function call.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}
