package exp

import (
	"strings"
	"testing"

	"indaas/internal/pia"
)

// TestFig6aAcceptance reproduces the §6.2.1 case study end to end and
// checks every published number: 190 deployments, 27 without unexpected
// RGs, {Rack5, Rack29} suggested and uniquely optimal at p = 0.1.
func TestFig6aAcceptance(t *testing.T) {
	rounds := 40_000
	if testing.Short() {
		rounds = 10_000
	}
	res, err := RunFig6a(Fig6aConfig{Rounds: rounds})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	tbl := res.Render()
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Rack5+Rack29") {
		t.Errorf("rendered table missing the suggestion:\n%s", sb.String())
	}
}

// TestFig6bAcceptance reproduces the §6.2.2 case study: correlated VM
// placement, the paper's top-4 RGs, the Server2+Server3 suggestion, and a
// clean re-audit after migration.
func TestFig6bAcceptance(t *testing.T) {
	res, err := RunFig6b()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestTable2Acceptance reproduces Table 2 with exact cleartext Jaccards
// (every entry within tolerance, both rankings identical).
func TestTable2Acceptance(t *testing.T) {
	res, err := RunTable2(Table2Config{Protocol: pia.ProtocolCleartext})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestTable2PrivateMatchesCleartext runs the actual private protocol on one
// deployment and confirms it returns the same Jaccard as the cleartext
// computation (the full private Table 2 runs in cmd/experiments).
func TestTable2PrivateMatchesCleartext(t *testing.T) {
	if testing.Short() {
		t.Skip("private protocol run")
	}
	clear, err := RunTable2(Table2Config{Protocol: pia.ProtocolCleartext})
	if err != nil {
		t.Fatal(err)
	}
	priv, err := RunTable2(Table2Config{Protocol: pia.ProtocolPSOP, Bits: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := priv.Verify(); err != nil {
		t.Fatal(err)
	}
	for i := range clear.TwoWay {
		if clear.TwoWay[i].Key != priv.TwoWay[i].Key ||
			clear.TwoWay[i].Measured != priv.TwoWay[i].Measured {
			t.Errorf("entry %d differs: cleartext %+v, private %+v",
				i, clear.TwoWay[i], priv.TwoWay[i])
		}
	}
}

// TestTable3Acceptance checks the generated topologies against Table 3.
func TestTable3Acceptance(t *testing.T) {
	res, err := RunTable3()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFig7Acceptance runs the accuracy/cost comparison at miniature scale.
func TestFig7Acceptance(t *testing.T) {
	cfg := Fig7Config{Arities: []int{4, 8}, RoundCounts: []int{500, 2_000, 20_000}}
	res, err := RunFig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	// The exact algorithm's family on k=4, 2-way: per-server families are
	// {ToR} ∪ (2 aggs × their core groups); ground truth must be non-empty
	// and all sampling detections ≤ 1.
	for _, p := range res.Points {
		if p.MinimalRGs == 0 {
			t.Errorf("no minimal RGs on %s", p.Topology)
		}
		if p.Detected < 0 || p.Detected > 1 {
			t.Errorf("detection %v out of range", p.Detected)
		}
	}
}

// TestFig8Acceptance runs the protocol comparison at miniature scale and
// checks the qualitative cost shape.
func TestFig8Acceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto-heavy")
	}
	cfg := Fig8Config{
		Parties:      []int{2, 3},
		PSOPElements: []int{20, 40, 80},
		KSElements:   []int{10, 20, 40, 80},
	}
	res, err := RunFig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFig9Acceptance runs the SIA-vs-PIA comparison at miniature scale.
func TestFig9Acceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto-heavy")
	}
	cfg := Fig9Config{
		ProviderCounts: []int{4},
		Elements:       40,
		Rounds:         2_000,
		KSMinHashM:     32,
	}
	res, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	// 4 methods × 1 provider count × 2 arities.
	if len(res.Points) != 8 {
		t.Errorf("points = %d, want 8", len(res.Points))
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tbl.Append("x", 1.5)
	tbl.Append("longer-cell", "v")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "1.5000") {
		t.Errorf("render output:\n%s", out)
	}
}
