package exp

import (
	"fmt"
	"math"

	"indaas/internal/core"
	"indaas/internal/sia"
	"indaas/internal/topology"
)

// Fig6aResult is the outcome of the §6.2.1 network case study.
type Fig6aResult struct {
	// Pairs is the number of two-way redundancy deployments (paper: 190).
	Pairs int
	// SafePairs counts deployments without unexpected RGs (paper: 27).
	SafePairs int
	// RandomSuccess is SafePairs/Pairs (paper: ≈ 14%).
	RandomSuccess float64
	// SamplingBest is the deployment the sampling + size-ranking run
	// suggests (paper: {Rack5, Rack29}).
	SamplingBest string
	// ProbBest is the deployment with the lowest failure probability at
	// p = 0.1 per device (paper: {Rack5, Rack29}), with its probability.
	ProbBest     string
	ProbBestProb float64
	// ProbUnique reports whether ProbBest is the unique minimum.
	ProbUnique bool
	// SamplingRounds is the round count used (paper: 10⁶).
	SamplingRounds int
}

// Fig6aConfig scales the experiment.
type Fig6aConfig struct {
	// Rounds for the failure sampling run (default 2×10⁵; paper 10⁶).
	Rounds int
	// Seed for the sampler.
	Seed int64
}

// RunFig6a executes the common-network-dependency case study on the
// Benson-style data center: audit every two-way redundancy deployment over
// the 20 candidate racks, first with failure sampling + size ranking (the
// paper's run), then with the minimal RG algorithm + failure probability
// 0.1 per device (the paper's formal analysis).
func RunFig6a(cfg Fig6aConfig) (*Fig6aResult, error) {
	rounds := cfg.Rounds
	if rounds == 0 {
		rounds = 200_000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}

	dc := topology.BensonDC()
	candidates := topology.BensonCandidateRacks()
	auditor := core.NewAuditor()
	if err := auditor.Register("nsdminer", core.TopologyAcquirer(dc)); err != nil {
		return nil, err
	}
	if err := auditor.Acquire(candidates...); err != nil {
		return nil, err
	}

	var specs []sia.GraphSpec
	for i := 0; i < len(candidates); i++ {
		for j := i + 1; j < len(candidates); j++ {
			specs = append(specs, sia.GraphSpec{
				Deployment: candidates[i] + "+" + candidates[j],
				Servers:    []string{candidates[i], candidates[j]},
			})
		}
	}

	res := &Fig6aResult{Pairs: len(specs), SamplingRounds: rounds}

	// Run 1 (the paper's run): failure sampling + size-based ranking.
	sampled, err := auditor.AuditAlternatives("fig6a sampling", specs, sia.Options{
		Algorithm: sia.FailureSampling,
		Rounds:    rounds,
		Seed:      seed,
		RankMode:  sia.RankBySize,
	})
	if err != nil {
		return nil, err
	}
	best, err := sampled.Best()
	if err != nil {
		return nil, err
	}
	res.SamplingBest = best.Deployment
	for _, a := range sampled.Audits {
		if a.Unexpected == 0 {
			res.SafePairs++
		}
	}
	res.RandomSuccess = float64(res.SafePairs) / float64(res.Pairs)

	// Run 2 (the paper's formal check): minimal RGs + failure probability
	// 0.1 for every network device.
	weighted := make([]sia.GraphSpec, len(specs))
	copy(weighted, specs)
	for i := range weighted {
		weighted[i].Prob = func(string) float64 { return 0.1 }
	}
	probRep, err := auditor.AuditAlternatives("fig6a probability", weighted, sia.Options{
		Algorithm: sia.MinimalRG,
		RankMode:  sia.RankByProb,
	})
	if err != nil {
		return nil, err
	}
	pbest, err := probRep.Best()
	if err != nil {
		return nil, err
	}
	res.ProbBest = pbest.Deployment
	res.ProbBestProb = pbest.FailureProb
	res.ProbUnique = len(probRep.Audits) < 2 ||
		probRep.Audits[1].FailureProb > pbest.FailureProb+1e-15
	return res, nil
}

// Render formats the result alongside the paper's published numbers.
func (r *Fig6aResult) Render() *Table {
	t := &Table{
		Title:  "Fig. 6a — common network dependency case study (§6.2.1)",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Append("two-way deployments", r.Pairs, 190)
	t.Append("deployments w/o unexpected RGs", r.SafePairs, 27)
	t.Append("random-selection success", fmt.Sprintf("%.1f%%", 100*r.RandomSuccess), "14%")
	t.Append("sampling+size-rank suggestion", r.SamplingBest, "Rack5+Rack29")
	t.Append("lowest Pr(outage) @ p=0.1", fmt.Sprintf("%s (%.6f)", r.ProbBest, r.ProbBestProb), "Rack5+Rack29")
	t.Append("unique minimum", r.ProbUnique, true)
	return t
}

// Verify checks the acceptance criteria of DESIGN.md §3 against the paper.
func (r *Fig6aResult) Verify() error {
	if r.Pairs != 190 {
		return fmt.Errorf("fig6a: %d pairs, want 190", r.Pairs)
	}
	if r.SafePairs != 27 {
		return fmt.Errorf("fig6a: %d safe pairs, want 27", r.SafePairs)
	}
	if r.SamplingBest != "Rack5+Rack29" {
		return fmt.Errorf("fig6a: sampling suggests %q, want Rack5+Rack29", r.SamplingBest)
	}
	if r.ProbBest != "Rack5+Rack29" || !r.ProbUnique {
		return fmt.Errorf("fig6a: probability analysis picked %q (unique=%v)", r.ProbBest, r.ProbUnique)
	}
	// Analytic Pr for the winning pair at p = 0.1:
	// Pr = Pr(c1∧c2) + Pr(e5∨b2)·Pr(e29∨b1) − product = 0.045739.
	if math.Abs(r.ProbBestProb-0.045739) > 1e-9 {
		return fmt.Errorf("fig6a: Pr(best) = %v, want 0.045739", r.ProbBestProb)
	}
	return nil
}
