package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"indaas/internal/pia"
	"indaas/internal/swpkg"
)

// Table2Entry is one row of the Table 2 reproduction.
type Table2Entry struct {
	Key      string // e.g. "1+2" for Cloud1 & Cloud2
	Clouds   string // e.g. "Cloud1 & Cloud2"
	Measured float64
	Paper    float64
}

// Table2Result is the §6.2.3 / Table 2 reproduction.
type Table2Result struct {
	TwoWay   []Table2Entry // ranked ascending by measured Jaccard
	ThreeWay []Table2Entry
	// Protocol records how the similarities were computed.
	Protocol string
}

// Table2Config tunes the experiment.
type Table2Config struct {
	// Protocol selects the PIA mechanism (default ProtocolPSOP with exact
	// cardinalities, as in the paper's case study; ProtocolCleartext for
	// fast validation runs).
	Protocol pia.Protocol
	// Bits is the commutative key size (default 1024; 512 speeds up tests).
	Bits int
}

// RunTable2 reproduces Table 2: the four clouds run their software
// dependency acquisition (apt-rdepends closures of Riak, MongoDB, Redis and
// CouchDB), normalize the package identifiers, and PIA privately computes
// and ranks the Jaccard similarity of every two- and three-way redundancy
// deployment.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	u, roots := swpkg.KeyValueStoreUniverse()
	providers := make([]pia.Provider, len(roots))
	for i, root := range roots {
		ids, err := u.ClosureIDs(root)
		if err != nil {
			return nil, err
		}
		// §4.2.3 normalization: shared packages by name+version.
		comps := make([]string, len(ids))
		for j, id := range ids {
			comps[j] = "pkg:" + id
		}
		providers[i] = pia.Provider{Name: fmt.Sprintf("Cloud%d", i+1), Components: comps}
	}
	piaCfg := pia.Config{Protocol: cfg.Protocol, Bits: cfg.Bits}
	res := &Table2Result{Protocol: cfg.Protocol.String()}

	run := func(deployments []pia.Deployment) ([]Table2Entry, error) {
		rep, err := pia.AuditDeployments(piaCfg, providers, deployments)
		if err != nil {
			return nil, err
		}
		paper := swpkg.Table2Paper()
		var out []Table2Entry
		for _, e := range rep.Entries {
			var idx []string
			for _, name := range e.Providers {
				idx = append(idx, strings.TrimPrefix(name, "Cloud"))
			}
			sort.Strings(idx)
			key := strings.Join(idx, "+")
			out = append(out, Table2Entry{
				Key:      key,
				Clouds:   strings.Join(e.Providers, " & "),
				Measured: e.Jaccard,
				Paper:    paper[key],
			})
		}
		return out, nil
	}
	var err error
	if res.TwoWay, err = run(pia.AllPairs(4)); err != nil {
		return nil, err
	}
	if res.ThreeWay, err = run(pia.AllTriples(4)); err != nil {
		return nil, err
	}
	return res, nil
}

// Render formats both ranking lists with paper values side by side.
func (r *Table2Result) Render() *Table {
	t := &Table{
		Title:  fmt.Sprintf("Table 2 — Jaccard ranking of redundancy deployments (§6.2.3, protocol=%s)", r.Protocol),
		Header: []string{"Rank", "Redundancy Deployment", "Jaccard", "Paper"},
	}
	for i, e := range r.TwoWay {
		t.Append(i+1, e.Clouds, e.Measured, e.Paper)
	}
	for i, e := range r.ThreeWay {
		t.Append(i+1, e.Clouds, e.Measured, e.Paper)
	}
	return t
}

// Verify checks the acceptance criteria: every similarity within ±0.0035 of
// the paper and both rankings identical. (The paper's ten values are
// mutually inconsistent as exact Jaccards of four fixed sets — see
// EXPERIMENTS.md — so a tolerance is inherent, not a shortcut.)
func (r *Table2Result) Verify() error {
	check := func(entries []Table2Entry, arity string) error {
		for i, e := range entries {
			if math.Abs(e.Measured-e.Paper) > 0.0035 {
				return fmt.Errorf("table2: %s J(%s) = %.4f, paper %.4f", arity, e.Key, e.Measured, e.Paper)
			}
			if i > 0 && entries[i-1].Paper > e.Paper {
				return fmt.Errorf("table2: %s ranking diverges from the paper at rank %d (%s)", arity, i+1, e.Key)
			}
		}
		return nil
	}
	if len(r.TwoWay) != 6 || len(r.ThreeWay) != 4 {
		return fmt.Errorf("table2: %d two-way, %d three-way entries", len(r.TwoWay), len(r.ThreeWay))
	}
	if err := check(r.TwoWay, "two-way"); err != nil {
		return err
	}
	return check(r.ThreeWay, "three-way")
}
