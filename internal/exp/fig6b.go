package exp

import (
	"fmt"
	"reflect"
	"strings"

	"indaas/internal/cloudsim"
	"indaas/internal/core"
	"indaas/internal/deps"
	"indaas/internal/report"
	"indaas/internal/sia"
)

// Fig6bResult is the outcome of the §6.2.2 hardware case study.
type Fig6bResult struct {
	// VM7Host and VM8Host record where OpenStack-style placement put the
	// two Riak replicas (paper: both on Server2).
	VM7Host, VM8Host string
	// Top4 are the four highest-ranked RGs of the initial audit
	// (paper: {Server2}, {Switch1}, {Core1,Core2}, {VM7,VM8}).
	Top4 [][]string
	// Suggestion is the server pair the audit report recommends for
	// re-deployment (paper: {Server2, Server3}).
	Suggestion string
	// AfterUnexpected counts unexpected RGs after re-deploying per the
	// suggestion (paper: zero size-1 RGs remain).
	AfterUnexpected int
}

// RunFig6b executes the common-hardware-dependency case study: a four-server
// lab cloud with pre-existing load, least-loaded VM placement, a minimal-RG
// audit of the Riak deployment, and the re-deployment the report suggests.
func RunFig6b() (*Fig6bResult, error) {
	cloud := cloudsim.FourServerLab(1)
	// Pre-existing, unevenly distributed services (the "various services on
	// VMs for different uses" of §6.2.2) leave Server2 idle.
	for _, pin := range []struct{ vm, host string }{
		{"web-vm1", "Server1"}, {"web-vm2", "Server1"},
		{"batch-vm3", "Server3"}, {"batch-vm4", "Server3"},
		{"db-vm5", "Server4"}, {"db-vm6", "Server4"},
	} {
		if _, err := cloud.PlaceOn(pin.vm, pin.host); err != nil {
			return nil, err
		}
	}
	// OpenStack's least-loaded policy places both Riak VMs on Server2.
	vm7, err := cloud.Place("VM7", "riak", cloudsim.LeastLoaded)
	if err != nil {
		return nil, err
	}
	vm8, err := cloud.Place("VM8", "riak", cloudsim.LeastLoaded)
	if err != nil {
		return nil, err
	}
	res := &Fig6bResult{VM7Host: vm7.Host, VM8Host: vm8.Host}

	// Audit the deployed configuration (network + hardware dependencies,
	// minimal RG algorithm, size ranking).
	audit, err := auditRiakVMs(cloud)
	if err != nil {
		return nil, err
	}
	for i := 0; i < 4 && i < len(audit.RGs); i++ {
		res.Top4 = append(res.Top4, audit.RGs[i].Components)
	}

	// Consult the report for the most independent server pair, preferring
	// fewer migrations among ties (keep a replica on its current host).
	suggestion, err := suggestRedeployment(cloud, []string{vm7.Host, vm8.Host})
	if err != nil {
		return nil, err
	}
	res.Suggestion = suggestion[0] + "+" + suggestion[1]

	// Re-deploy per the suggestion and re-audit.
	if err := migrateTo(cloud, suggestion); err != nil {
		return nil, err
	}
	after, err := auditRiakVMs(cloud)
	if err != nil {
		return nil, err
	}
	res.AfterUnexpected = after.Unexpected
	return res, nil
}

// auditRiakVMs runs SIA over the two Riak VMs' current placement.
func auditRiakVMs(cloud *cloudsim.Cloud) (*report.DeploymentAudit, error) {
	auditor := core.NewAuditor()
	if err := auditor.Register("cloud", core.CloudAcquirer(cloud, []string{"VM7", "VM8"})); err != nil {
		return nil, err
	}
	if err := auditor.Acquire(); err != nil {
		return nil, err
	}
	spec := sia.GraphSpec{
		Deployment: "riak",
		Servers:    []string{"VM7", "VM8"},
		Kinds:      []deps.Kind{deps.KindNetwork, deps.KindHardware},
	}
	g, err := sia.BuildGraph(auditor.DB(), spec)
	if err != nil {
		return nil, err
	}
	return sia.Audit(g, spec, sia.Options{Algorithm: sia.MinimalRG, RankMode: sia.RankBySize})
}

// suggestRedeployment audits every server pair as a hypothetical placement
// of the two replicas and returns the most independent pair; among ties it
// prefers pairs that keep replicas on their current hosts (fewer
// migrations), then lexicographic order.
func suggestRedeployment(cloud *cloudsim.Cloud, current []string) ([2]string, error) {
	var all []scoredPair
	for _, pair := range cloud.ServerPairs() {
		audit, err := auditHypotheticalPair(cloud, pair)
		if err != nil {
			return [2]string{}, err
		}
		all = append(all, scoredPair{pair: pair, audit: audit})
	}
	curCount := func(pair [2]string) int {
		n := 0
		for _, host := range current {
			if host == pair[0] || host == pair[1] {
				n++
			}
		}
		return n
	}
	best := all[0]
	for _, s := range all[1:] {
		if lessPair(s, best, curCount) {
			best = s
		}
	}
	return best.pair, nil
}

type scoredPair struct {
	pair  [2]string
	audit *report.DeploymentAudit
}

func lessPair(a, b scoredPair, curCount func([2]string) int) bool {
	av, bv := a.audit.SizeVector(), b.audit.SizeVector()
	for k := 0; k < len(av) || k < len(bv); k++ {
		var x, y int
		if k < len(av) {
			x = av[k]
		}
		if k < len(bv) {
			y = bv[k]
		}
		if x != y {
			return x < y
		}
	}
	if ca, cb := curCount(a.pair), curCount(b.pair); ca != cb {
		return ca > cb // more replicas already in place = fewer migrations
	}
	return a.pair[0]+a.pair[1] < b.pair[0]+b.pair[1]
}

// auditHypotheticalPair audits VM7-on-pair[0], VM8-on-pair[1] without
// touching the real cloud: it builds the records a re-deployed pair would
// produce.
func auditHypotheticalPair(cloud *cloudsim.Cloud, pair [2]string) (*report.DeploymentAudit, error) {
	scratch, err := cloudsim.New(cloud.Servers, cloud.Cores, 1)
	if err != nil {
		return nil, err
	}
	if _, err := scratch.PlaceOn("VM7", pair[0]); err != nil {
		return nil, err
	}
	if _, err := scratch.PlaceOn("VM8", pair[1]); err != nil {
		return nil, err
	}
	return auditRiakVMs(scratch)
}

// migrateTo moves the replicas onto the suggested pair (keeping in-place
// replicas where possible).
func migrateTo(cloud *cloudsim.Cloud, pair [2]string) error {
	vm7, _ := cloud.VMOf("VM7")
	vm8, _ := cloud.VMOf("VM8")
	switch {
	case vm7.Host == pair[0]:
		return cloud.Migrate("VM8", pair[1])
	case vm7.Host == pair[1]:
		return cloud.Migrate("VM8", pair[0])
	case vm8.Host == pair[0]:
		return cloud.Migrate("VM7", pair[1])
	case vm8.Host == pair[1]:
		return cloud.Migrate("VM7", pair[0])
	default:
		if err := cloud.Migrate("VM7", pair[0]); err != nil {
			return err
		}
		return cloud.Migrate("VM8", pair[1])
	}
}

// Render formats the result alongside the paper's published outcome.
func (r *Fig6bResult) Render() *Table {
	t := &Table{
		Title:  "Fig. 6b — common hardware dependency case study (§6.2.2)",
		Header: []string{"metric", "measured", "paper"},
	}
	t.Append("VM7 placement", r.VM7Host, "Server2")
	t.Append("VM8 placement", r.VM8Host, "Server2")
	for i, rg := range r.Top4 {
		t.Append(fmt.Sprintf("top RG #%d", i+1), "{"+strings.Join(rg, ", ")+"}", fig6bPaperTop4[i])
	}
	t.Append("re-deployment suggestion", r.Suggestion, "Server2+Server3")
	t.Append("unexpected RGs after re-deploy", r.AfterUnexpected, 0)
	return t
}

var fig6bPaperTop4 = []string{"{Server2}", "{Switch1}", "{Core1, Core2}", "{VM7, VM8}"}

// Verify checks the acceptance criteria against the paper.
func (r *Fig6bResult) Verify() error {
	if r.VM7Host != "Server2" || r.VM8Host != "Server2" {
		return fmt.Errorf("fig6b: placement %s/%s, want Server2/Server2", r.VM7Host, r.VM8Host)
	}
	want := [][]string{
		{"Server2"},
		{"Switch1"},
		{"Core1", "Core2"},
		{"VM7", "VM8"},
	}
	if !reflect.DeepEqual(r.Top4, want) {
		return fmt.Errorf("fig6b: top-4 RGs = %v, want %v", r.Top4, want)
	}
	if r.Suggestion != "Server2+Server3" {
		return fmt.Errorf("fig6b: suggestion %q, want Server2+Server3", r.Suggestion)
	}
	if r.AfterUnexpected != 0 {
		return fmt.Errorf("fig6b: %d unexpected RGs after re-deploy", r.AfterUnexpected)
	}
	return nil
}
