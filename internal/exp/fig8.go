package exp

import (
	"fmt"
	"time"

	"indaas/internal/psi"
)

// Fig8Point is one protocol measurement.
type Fig8Point struct {
	Protocol string // "P-SOP" or "KS"
	Parties  int
	Elements int
	Bytes    int64
	Elapsed  time.Duration
}

// Fig8Result collects the Fig. 8 bandwidth/computation series.
type Fig8Result struct {
	Points []Fig8Point
}

// Fig8Config scales the experiment.
type Fig8Config struct {
	// Parties lists the provider counts (paper: 2, 3, 4).
	Parties []int
	// PSOPElements / KSElements list dataset sizes per protocol (the paper
	// sweeps 10³..10⁵; KS is quadratic, so its default list is smaller).
	PSOPElements []int
	KSElements   []int
	// Bits is the key size (paper: 1024 for both protocols; default 512
	// keeps the laptop-scale run fast).
	Bits int
	// KSBlindBits bounds KS blinding coefficients (see psi.KSConfig).
	KSBlindBits int
	// Overlap is the fraction of elements shared across parties.
	Overlap float64
}

func (c *Fig8Config) defaults() {
	if len(c.Parties) == 0 {
		c.Parties = []int{2, 3, 4}
	}
	if len(c.PSOPElements) == 0 {
		c.PSOPElements = []int{100, 200, 400, 800, 1600}
	}
	if len(c.KSElements) == 0 {
		c.KSElements = []int{25, 50, 100}
	}
	if c.Bits == 0 {
		c.Bits = 512
	}
	if c.KSBlindBits == 0 {
		c.KSBlindBits = 64
	}
	if c.Overlap == 0 {
		c.Overlap = 0.2
	}
}

// Fig8FullConfig approaches the paper's sweep (1024-bit keys, larger n).
func Fig8FullConfig() Fig8Config {
	return Fig8Config{
		PSOPElements: []int{1_000, 3_000, 10_000, 30_000, 100_000},
		KSElements:   []int{100, 300, 1_000},
		Bits:         1024,
	}
}

// fig8Sets builds k datasets of n elements with the configured overlap.
func fig8Sets(k, n int, overlap float64) [][]string {
	shared := int(float64(n) * overlap)
	sets := make([][]string, k)
	for i := range sets {
		set := make([]string, 0, n)
		for j := 0; j < shared; j++ {
			set = append(set, fmt.Sprintf("pkg:shared-%d", j))
		}
		for j := shared; j < n; j++ {
			set = append(set, fmt.Sprintf("cloud%d/private-%d", i, j))
		}
		sets[i] = set
	}
	return sets
}

// RunFig8 measures bandwidth and computational time of P-SOP and KS across
// party counts and dataset sizes.
func RunFig8(cfg Fig8Config) (*Fig8Result, error) {
	cfg.defaults()
	res := &Fig8Result{}
	for _, k := range cfg.Parties {
		for _, n := range cfg.PSOPElements {
			sets := fig8Sets(k, n, cfg.Overlap)
			var r *psi.Result
			elapsed, err := timed(func() error {
				var err error
				r, err = psi.PSOP(psi.PSOPConfig{Bits: cfg.Bits}, sets)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig8: P-SOP k=%d n=%d: %w", k, n, err)
			}
			res.Points = append(res.Points, Fig8Point{
				Protocol: "P-SOP", Parties: k, Elements: n,
				Bytes: r.Stats.BytesSent, Elapsed: elapsed,
			})
		}
		for _, n := range cfg.KSElements {
			sets := fig8Sets(k, n, cfg.Overlap)
			var r *psi.Result
			elapsed, err := timed(func() error {
				var err error
				r, err = psi.KS(psi.KSConfig{Bits: cfg.Bits, BlindBits: cfg.KSBlindBits}, sets)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("fig8: KS k=%d n=%d: %w", k, n, err)
			}
			res.Points = append(res.Points, Fig8Point{
				Protocol: "KS", Parties: k, Elements: n,
				Bytes: r.Stats.BytesSent, Elapsed: elapsed,
			})
		}
	}
	return res, nil
}

// Render formats the two series (bandwidth = Fig. 8a, time = Fig. 8b).
func (r *Fig8Result) Render() *Table {
	t := &Table{
		Title:  "Fig. 8 — PIA protocol overheads: P-SOP vs KS (§6.3.2, scaled)",
		Header: []string{"protocol", "k", "n", "traffic (KB)", "time"},
	}
	for _, p := range r.Points {
		t.Append(p.Protocol+fmt.Sprintf("(%d)", p.Parties), p.Parties, p.Elements,
			fmt.Sprintf("%.1f", float64(p.Bytes)/1024), p.Elapsed)
	}
	return t
}

// Verify checks Fig. 8's qualitative claims at harness scale:
//
//  1. P-SOP cost grows ~linearly in n (time per element roughly flat);
//  2. KS computation grows super-linearly in n (quadratic polynomial
//     arithmetic);
//  3. at equal (k, n), KS moves more bytes and takes longer than P-SOP.
func (r *Fig8Result) Verify() error {
	series := map[string][]Fig8Point{}
	for _, p := range r.Points {
		key := fmt.Sprintf("%s-%d", p.Protocol, p.Parties)
		series[key] = append(series[key], p)
	}
	for key, points := range series {
		if len(points) < 2 {
			continue
		}
		first, last := points[0], points[len(points)-1]
		growth := float64(last.Elapsed) / float64(first.Elapsed)
		sizeRatio := float64(last.Elements) / float64(first.Elements)
		if points[0].Protocol == "KS" {
			// Quadratic: time growth should clearly exceed the size ratio.
			if growth < sizeRatio*1.5 {
				return fmt.Errorf("fig8: %s grew only %.1fx over a %.1fx size sweep (expected super-linear)",
					key, growth, sizeRatio)
			}
		} else {
			// Linear-ish: time growth should not be wildly super-linear.
			if growth > sizeRatio*8 {
				return fmt.Errorf("fig8: %s grew %.1fx over a %.1fx size sweep (expected ~linear)",
					key, growth, sizeRatio)
			}
		}
	}
	// Head-to-head at matching (k, n) pairs.
	type knKey struct{ k, n int }
	psop := map[knKey]Fig8Point{}
	for _, p := range r.Points {
		if p.Protocol == "P-SOP" {
			psop[knKey{p.Parties, p.Elements}] = p
		}
	}
	compared := false
	for _, p := range r.Points {
		if p.Protocol != "KS" {
			continue
		}
		if q, ok := psop[knKey{p.Parties, p.Elements}]; ok {
			compared = true
			if p.Bytes <= q.Bytes {
				return fmt.Errorf("fig8: KS bytes %d ≤ P-SOP bytes %d at k=%d n=%d",
					p.Bytes, q.Bytes, p.Parties, p.Elements)
			}
		}
	}
	if !compared {
		return fmt.Errorf("fig8: no common (k, n) points to compare — configure overlapping element lists")
	}
	return nil
}
