package exp

import (
	"fmt"

	"indaas/internal/topology"
)

// Table3Row is one generated topology configuration.
type Table3Row struct {
	Name     string
	Ports    int
	Counts   topology.Counts
	Expected topology.Counts
}

// Table3Result reproduces Table 3: the three fat-tree configurations used
// by the performance evaluation.
type Table3Result struct {
	Rows []Table3Row
}

// table3Expected is the paper's Table 3.
var table3Expected = []struct {
	name  string
	ports int
	want  topology.Counts
}{
	{"Topology A", 16, topology.Counts{Cores: 64, Aggs: 128, ToRs: 128, Servers: 1024}},
	{"Topology B", 24, topology.Counts{Cores: 144, Aggs: 288, ToRs: 288, Servers: 3456}},
	{"Topology C", 48, topology.Counts{Cores: 576, Aggs: 1152, ToRs: 1152, Servers: 27648}},
}

// RunTable3 generates the three topologies and tallies their devices.
func RunTable3() (*Table3Result, error) {
	res := &Table3Result{}
	for _, cfg := range table3Expected {
		ft, err := topology.FatTree(cfg.ports)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table3Row{
			Name:     cfg.name,
			Ports:    cfg.ports,
			Counts:   ft.Counts(),
			Expected: cfg.want,
		})
	}
	return res, nil
}

// Render formats the table in the paper's layout.
func (r *Table3Result) Render() *Table {
	t := &Table{
		Title:  "Table 3 — configurations of the generated topologies (§6.3.1)",
		Header: []string{"", "Topology A", "Topology B", "Topology C"},
	}
	cell := func(f func(Table3Row) any) []any {
		out := []any{}
		for _, row := range r.Rows {
			out = append(out, f(row))
		}
		return out
	}
	row := func(label string, f func(Table3Row) any) {
		cells := append([]any{label}, cell(f)...)
		t.Append(cells...)
	}
	row("# switch ports", func(r Table3Row) any { return r.Ports })
	row("# core routers", func(r Table3Row) any { return r.Counts.Cores })
	row("# agg switches", func(r Table3Row) any { return r.Counts.Aggs })
	row("# ToR switches", func(r Table3Row) any { return r.Counts.ToRs })
	row("# servers", func(r Table3Row) any { return r.Counts.Servers })
	row("Total # devices", func(r Table3Row) any { return r.Counts.Total() })
	return t
}

// Verify checks every count against the paper.
func (r *Table3Result) Verify() error {
	if len(r.Rows) != 3 {
		return fmt.Errorf("table3: %d rows, want 3", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Counts != row.Expected {
			return fmt.Errorf("table3: %s counts %+v, paper %+v", row.Name, row.Counts, row.Expected)
		}
	}
	return nil
}
