package exp

import (
	"strings"
	"testing"
	"time"
)

// These tests exercise the Verify/Render branches of the experiment
// harnesses on hand-built results, so mismatch detection itself is tested
// without re-running the heavy workloads.

func TestFig6aVerifyRejectsDeviations(t *testing.T) {
	good := Fig6aResult{
		Pairs: 190, SafePairs: 27, RandomSuccess: 27.0 / 190,
		SamplingBest: "Rack5+Rack29",
		ProbBest:     "Rack5+Rack29", ProbBestProb: 0.045739, ProbUnique: true,
	}
	if err := good.Verify(); err != nil {
		t.Fatalf("good result rejected: %v", err)
	}
	cases := []func(*Fig6aResult){
		func(r *Fig6aResult) { r.Pairs = 189 },
		func(r *Fig6aResult) { r.SafePairs = 26 },
		func(r *Fig6aResult) { r.SamplingBest = "Rack2+Rack3" },
		func(r *Fig6aResult) { r.ProbBest = "Rack2+Rack3" },
		func(r *Fig6aResult) { r.ProbUnique = false },
		func(r *Fig6aResult) { r.ProbBestProb = 0.05 },
	}
	for i, mutate := range cases {
		bad := good
		mutate(&bad)
		if err := bad.Verify(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFig6bVerifyRejectsDeviations(t *testing.T) {
	good := Fig6bResult{
		VM7Host: "Server2", VM8Host: "Server2",
		Top4:       [][]string{{"Server2"}, {"Switch1"}, {"Core1", "Core2"}, {"VM7", "VM8"}},
		Suggestion: "Server2+Server3", AfterUnexpected: 0,
	}
	if err := good.Verify(); err != nil {
		t.Fatalf("good result rejected: %v", err)
	}
	bad := good
	bad.VM7Host = "Server1"
	if err := bad.Verify(); err == nil {
		t.Error("wrong placement accepted")
	}
	bad = good
	bad.Top4 = [][]string{{"Switch1"}, {"Server2"}, {"Core1", "Core2"}, {"VM7", "VM8"}}
	if err := bad.Verify(); err == nil {
		t.Error("reordered RGs accepted")
	}
	bad = good
	bad.Suggestion = "Server1+Server3"
	if err := bad.Verify(); err == nil {
		t.Error("wrong suggestion accepted")
	}
	bad = good
	bad.AfterUnexpected = 1
	if err := bad.Verify(); err == nil {
		t.Error("leftover unexpected RGs accepted")
	}
}

func TestTable2VerifyRejectsDeviations(t *testing.T) {
	mk := func() *Table2Result {
		return &Table2Result{
			TwoWay: []Table2Entry{
				{Key: "2+4", Measured: 0.1419, Paper: 0.1419},
				{Key: "2+3", Measured: 0.1547, Paper: 0.1547},
				{Key: "1+4", Measured: 0.2081, Paper: 0.2081},
				{Key: "1+3", Measured: 0.2939, Paper: 0.2939},
				{Key: "3+4", Measured: 0.3489, Paper: 0.3489},
				{Key: "1+2", Measured: 0.5059, Paper: 0.5059},
			},
			ThreeWay: []Table2Entry{
				{Key: "2+3+4", Measured: 0.1128, Paper: 0.1128},
				{Key: "1+2+4", Measured: 0.1207, Paper: 0.1207},
				{Key: "1+3+4", Measured: 0.1353, Paper: 0.1353},
				{Key: "1+2+3", Measured: 0.1536, Paper: 0.1536},
			},
		}
	}
	if err := mk().Verify(); err != nil {
		t.Fatalf("exact result rejected: %v", err)
	}
	drifted := mk()
	drifted.TwoWay[0].Measured = 0.16 // > tolerance
	if err := drifted.Verify(); err == nil {
		t.Error("out-of-tolerance entry accepted")
	}
	swapped := mk()
	swapped.TwoWay[0], swapped.TwoWay[1] = swapped.TwoWay[1], swapped.TwoWay[0]
	if err := swapped.Verify(); err == nil {
		t.Error("ranking inversion accepted")
	}
	short := mk()
	short.ThreeWay = short.ThreeWay[:3]
	if err := short.Verify(); err == nil {
		t.Error("missing entries accepted")
	}
}

func TestFig7VerifyRejectsDeviations(t *testing.T) {
	mk := func() *Fig7Result {
		return &Fig7Result{Points: []Fig7Point{
			{Topology: "t", Algorithm: "minimal-rg", Detected: 1, MinimalRGs: 10},
			{Topology: "t", Algorithm: "sampling(100)", Rounds: 100, Detected: 0.6, MinimalRGs: 10},
			{Topology: "t", Algorithm: "sampling(1000)", Rounds: 1000, Detected: 0.9, MinimalRGs: 10},
		}}
	}
	if err := mk().Verify(); err != nil {
		t.Fatalf("good curve rejected: %v", err)
	}
	broken := mk()
	broken.Points[0].Detected = 0.99
	if err := broken.Verify(); err == nil {
		t.Error("incomplete exact algorithm accepted")
	}
	nonmono := mk()
	nonmono.Points[2].Detected = 0.3
	if err := nonmono.Verify(); err == nil {
		t.Error("non-monotone detection accepted")
	}
	weak := mk()
	weak.Points[1].Detected = 0.1
	weak.Points[2].Detected = 0.2
	if err := weak.Verify(); err == nil {
		t.Error("weak top detection accepted")
	}
}

func TestFig8VerifyRejectsDeviations(t *testing.T) {
	mk := func() *Fig8Result {
		return &Fig8Result{Points: []Fig8Point{
			{Protocol: "P-SOP", Parties: 2, Elements: 100, Bytes: 1000, Elapsed: 100 * time.Millisecond},
			{Protocol: "P-SOP", Parties: 2, Elements: 400, Bytes: 4000, Elapsed: 420 * time.Millisecond},
			{Protocol: "KS", Parties: 2, Elements: 100, Bytes: 3000, Elapsed: 1 * time.Second},
			{Protocol: "KS", Parties: 2, Elements: 400, Bytes: 12000, Elapsed: 16 * time.Second},
		}}
	}
	if err := mk().Verify(); err != nil {
		t.Fatalf("good shape rejected: %v", err)
	}
	linearKS := mk()
	linearKS.Points[3].Elapsed = 4 * time.Second // only linear growth
	if err := linearKS.Verify(); err == nil {
		t.Error("linear KS accepted")
	}
	cheapKS := mk()
	cheapKS.Points[2].Bytes = 500 // cheaper than P-SOP at same (k, n)
	if err := cheapKS.Verify(); err == nil {
		t.Error("cheap KS bandwidth accepted")
	}
	noCommon := mk()
	noCommon.Points[2].Elements = 50
	noCommon.Points[3].Elements = 75
	if err := noCommon.Verify(); err == nil {
		t.Error("missing head-to-head points accepted")
	}
}

func TestFig9VerifyRejectsDeviations(t *testing.T) {
	mk := func() *Fig9Result {
		return &Fig9Result{Points: []Fig9Point{
			{Method: "SIA-sampling", Providers: 6, Arity: 2, Elapsed: time.Second},
			{Method: "SIA-minimal", Providers: 6, Arity: 2, Elapsed: 2 * time.Second},
			{Method: "PIA-P-SOP", Providers: 6, Arity: 2, Elapsed: 1500 * time.Millisecond},
			{Method: "PIA-KS", Providers: 6, Arity: 2, Elapsed: 20 * time.Second},
		}}
	}
	if err := mk().Verify(); err != nil {
		t.Fatalf("good ordering rejected: %v", err)
	}
	fastKS := mk()
	fastKS.Points[3].Elapsed = time.Millisecond
	if err := fastKS.Verify(); err == nil {
		t.Error("KS faster than P-SOP accepted")
	}
	missing := mk()
	missing.Points = missing.Points[:2]
	if err := missing.Verify(); err == nil {
		t.Error("missing methods accepted")
	}
}

func TestRenderersProduceTables(t *testing.T) {
	results := []interface {
		Render() *Table
	}{
		&Fig7Result{Points: []Fig7Point{{Topology: "t", Algorithm: "minimal-rg", Detected: 1}}},
		&Fig8Result{Points: []Fig8Point{{Protocol: "P-SOP", Parties: 2, Elements: 10}}},
		&Fig9Result{Points: []Fig9Point{{Method: "PIA-P-SOP", Providers: 4, Arity: 2}}},
		&Table2Result{TwoWay: []Table2Entry{{Clouds: "Cloud1 & Cloud2", Measured: 0.5, Paper: 0.5059}}},
	}
	for i, r := range results {
		tbl := r.Render()
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatalf("result %d: %v", i, err)
		}
		if len(sb.String()) == 0 {
			t.Errorf("result %d rendered empty", i)
		}
	}
}
