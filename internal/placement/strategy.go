package placement

import (
	"context"
	"fmt"
	"sort"
)

// searchExact scores every choose-(r−|Fixed|) combination of the pool — the
// brute-force oracle the heuristic strategies are differentially tested
// against. The whole batch fans out across the evaluator's worker pool.
func searchExact(ctx context.Context, e *evaluator, req *Request) ([]Ranked, error) {
	choose := req.Replicas - len(req.Fixed)
	var sets [][]string
	combo := make([]string, 0, choose)
	var emit func(start int)
	emit = func(start int) {
		if len(combo) == choose {
			sets = append(sets, sortedCopy(append(append([]string(nil), req.Fixed...), combo...)))
			return
		}
		// Prune: not enough nodes left to complete the combination.
		for i := start; i <= len(req.Nodes)-(choose-len(combo)); i++ {
			combo = append(combo, req.Nodes[i])
			emit(i + 1)
			combo = combo[:len(combo)-1]
		}
	}
	emit(0)
	scores, err := e.scoreBatch(ctx, sets)
	if err != nil {
		return nil, err
	}
	return rank(sets, scores, req.TopK), nil
}

// searchGreedy grows one deployment by marginal independence: each round
// audits every single-node extension of the current partial deployment in
// parallel and keeps the best. r−|Fixed| rounds of ≤n audits replace the
// exact search's C(n, r); the price is vulnerability to local traps, which
// Beam exists to soften.
func searchGreedy(ctx context.Context, e *evaluator, req *Request) ([]Ranked, error) {
	cur := sortedCopy(req.Fixed)
	used := make(map[string]bool, req.Replicas)
	for _, n := range cur {
		used[n] = true
	}
	var last Score
	for len(cur) < req.Replicas {
		var exps [][]string
		for _, n := range req.Nodes {
			if !used[n] {
				exps = append(exps, sortedCopy(append(append([]string(nil), cur...), n)))
			}
		}
		scores, err := e.scoreBatch(ctx, exps)
		if err != nil {
			return nil, err
		}
		best := rank(exps, scores, 1)[0]
		// Mark the node this round added as used.
		for _, n := range best.Nodes {
			if !used[n] {
				used[n] = true
				break
			}
		}
		cur, last = best.Nodes, best.Score
	}
	return []Ranked{{Nodes: cur, Score: last}}, nil
}

// searchBeam keeps the BeamWidth best partial deployments per round,
// expanding each by every unused pool node. Width 1 degenerates to greedy;
// width ≥ C(n, r−|Fixed|) to exact. Expansions arising from different beams
// deduplicate onto one audit via the evaluator's memo.
func searchBeam(ctx context.Context, e *evaluator, req *Request) ([]Ranked, error) {
	beam := [][]string{sortedCopy(req.Fixed)}
	for size := len(req.Fixed); size < req.Replicas; size++ {
		seen := make(map[string]bool)
		var exps [][]string
		for _, partial := range beam {
			inSet := make(map[string]bool, len(partial))
			for _, n := range partial {
				inSet[n] = true
			}
			for _, n := range req.Nodes {
				if inSet[n] {
					continue
				}
				ext := sortedCopy(append(append([]string(nil), partial...), n))
				if key := deploymentKey(ext); !seen[key] {
					seen[key] = true
					exps = append(exps, ext)
				}
			}
		}
		if len(exps) == 0 {
			return nil, fmt.Errorf("placement: beam exhausted the pool at size %d", size)
		}
		// Keep expansions deterministic across map iteration orders.
		sort.Slice(exps, func(i, j int) bool {
			return deploymentKey(exps[i]) < deploymentKey(exps[j])
		})
		scores, err := e.scoreBatch(ctx, exps)
		if err != nil {
			return nil, err
		}
		ranked := rank(exps, scores, req.BeamWidth)
		beam = beam[:0]
		for _, r := range ranked {
			beam = append(beam, r.Nodes)
		}
	}
	// The final beam is complete deployments; re-rank (cache hits) for the
	// top-k cut.
	scores, err := e.scoreBatch(ctx, beam)
	if err != nil {
		return nil, err
	}
	return rank(beam, scores, req.TopK), nil
}
