// Package placement searches the redundancy-deployment space for the most
// independent configurations — the decision INDaaS audits exist to enable
// (§6.2, Figs. 6b/6c). Given a dependency database, a pool of candidate
// nodes and a replication degree r, it scores "choose r of n" deployments by
// auditing each candidate through the SIA pipeline (fault graph build +
// risk-group determination) and returns the top-k ranked by independence:
// minimal-RG size profile when unweighted, failure probability when
// component weights are available.
//
// Three strategies share one batch-parallel evaluator:
//
//   - Exact enumerates every combination — the differential oracle,
//     practical for small pools;
//   - Greedy grows one deployment by marginal independence, r sequential
//     rounds of n parallel audits;
//   - Beam keeps the Width best partial deployments per round, a middle
//     ground that recovers from greedy's local traps at bounded cost.
//
// Every strategy fans its candidate audits across a worker pool and honors
// context cancellation, so one recommendation job shards hundreds of audits
// across cores and aborts promptly when the caller gives up.
package placement

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/sia"
)

// Strategy selects the deployment-space search algorithm.
type Strategy int

const (
	// Auto picks Exact when the combination count fits MaxCandidates and
	// Beam otherwise.
	Auto Strategy = iota
	// Exact scores every r-of-n combination — the brute-force oracle.
	Exact
	// Greedy grows a single deployment node by node, each round adding the
	// node whose marginal audit scores best.
	Greedy
	// Beam is a beam search: the Width best partial deployments survive
	// each round.
	Beam
)

// String names the strategy for reports and wire forms.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Exact:
		return "exact"
	case Greedy:
		return "greedy"
	case Beam:
		return "beam"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// StrategyFromString parses the name produced by Strategy.String.
func StrategyFromString(s string) (Strategy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return Auto, nil
	case "exact":
		return Exact, nil
	case "greedy":
		return Greedy, nil
	case "beam":
		return Beam, nil
	default:
		return Auto, fmt.Errorf("placement: unknown strategy %q", s)
	}
}

// Defaults applied by Request.validate.
const (
	// DefaultTopK is the number of ranked deployments returned.
	DefaultTopK = 3
	// DefaultMaxCandidates bounds the exact search (and Auto's use of it):
	// above this many combinations Exact refuses and Auto switches to Beam.
	DefaultMaxCandidates = 100_000
)

// Request describes one recommendation: choose Replicas nodes out of
// Fixed ∪ Nodes, always keeping Fixed (already-placed replicas), maximizing
// independence.
type Request struct {
	// Nodes is the candidate pool. Every node must have dependency records
	// in the database.
	Nodes []string
	// Fixed nodes are part of every candidate deployment — the engine
	// chooses the remaining Replicas−len(Fixed) from Nodes. Incremental
	// placement (cloudsim's IndependenceScheduler) pins the replicas that
	// already run here.
	Fixed []string
	// Replicas is the total deployment size, Fixed included.
	Replicas int
	// TopK is how many ranked deployments to return (default DefaultTopK).
	// Greedy always returns exactly one.
	TopK int
	// Strategy picks the search algorithm (default Auto).
	Strategy Strategy
	// BeamWidth is Beam's surviving-set size per round
	// (default max(8, 4·TopK)).
	BeamWidth int
	// MaxCandidates bounds the exact search (default DefaultMaxCandidates).
	MaxCandidates int
	// Workers bounds the candidate audits scored concurrently
	// (0 = one per CPU). Parallelism never changes the result: scoring is
	// deterministic per deployment and ranking is a stable sort.
	Workers int
	// Kinds restricts the dependency kinds audited; empty means all.
	Kinds []deps.Kind
	// Prob optionally weights components with failure probabilities; when
	// set, deployments rank by Pr(outage) instead of size profile. The
	// caller must set Audit.RankMode to sia.RankByProb alongside it.
	Prob func(component string) float64
	// Audit tunes each candidate's SIA run (algorithm, rounds, bounds).
	Audit sia.Options
	// SeedScores primes the evaluator's memo with already-known deployment
	// scores, keyed by DeploymentKey. Delta recommendations pass the scores
	// of a previous identical search here, restricted to deployments whose
	// servers' records are unchanged — the search then re-audits only the
	// candidates that actually moved. Seeding never changes the result,
	// only which candidates are recomputed; Result.Evaluated counts actual
	// audits, so seeded candidates don't inflate it.
	SeedScores map[string]Score
}

// Validate applies defaults in place and rejects impossible searches.
// Search calls it implicitly; services call it at submission time so a
// malformed request fails fast instead of occupying a worker.
func (r *Request) Validate() error { return r.validate() }

// validate applies defaults and rejects impossible searches.
func (r *Request) validate() error {
	if r.Replicas < 1 {
		return fmt.Errorf("placement: replicas=%d, need at least 1", r.Replicas)
	}
	seen := make(map[string]bool, len(r.Nodes)+len(r.Fixed))
	for _, n := range append(append([]string(nil), r.Fixed...), r.Nodes...) {
		if n == "" {
			return fmt.Errorf("placement: empty node name")
		}
		if seen[n] {
			return fmt.Errorf("placement: duplicate node %q", n)
		}
		seen[n] = true
	}
	if r.Replicas <= len(r.Fixed) {
		return fmt.Errorf("placement: replicas=%d does not exceed the %d fixed nodes", r.Replicas, len(r.Fixed))
	}
	if need := r.Replicas - len(r.Fixed); need > len(r.Nodes) {
		return fmt.Errorf("placement: need %d more nodes but the pool has %d", need, len(r.Nodes))
	}
	if r.TopK <= 0 {
		r.TopK = DefaultTopK
	}
	if r.MaxCandidates <= 0 {
		r.MaxCandidates = DefaultMaxCandidates
	}
	if r.BeamWidth <= 0 {
		r.BeamWidth = 4 * r.TopK
		if r.BeamWidth < 8 {
			r.BeamWidth = 8
		}
	}
	return nil
}

// Score is a deployment's independence profile, the comparison key of the
// search. Lower is better under Less.
type Score struct {
	// SizeVector counts risk groups by size: SizeVector[i] RGs need i+1
	// simultaneous component failures.
	SizeVector []int
	// RGCount is the total number of risk groups found.
	RGCount int
	// Unexpected counts RGs smaller than the replication degree — the
	// correlated failures redundancy was supposed to rule out.
	Unexpected int
	// Independence is the §4.1.4 independence score (higher is better).
	Independence float64
	// FailureProb is Pr(top event); NaN when the audit is unweighted.
	FailureProb float64
}

// Less orders scores most-independent first: by failure probability when
// both sides are weighted, else by size vector (fewer small RGs first),
// with the independence score as the final numeric tie-break.
func (s Score) Less(o Score) bool {
	ap, bp := s.FailureProb, o.FailureProb
	if !math.IsNaN(ap) && !math.IsNaN(bp) && ap != bp {
		return ap < bp
	}
	for k := 0; k < len(s.SizeVector) || k < len(o.SizeVector); k++ {
		var x, y int
		if k < len(s.SizeVector) {
			x = s.SizeVector[k]
		}
		if k < len(o.SizeVector) {
			y = o.SizeVector[k]
		}
		if x != y {
			return x < y
		}
	}
	if s.Independence != o.Independence {
		return s.Independence > o.Independence
	}
	return false
}

// Ranked is one recommended deployment.
type Ranked struct {
	// Nodes is the deployment, sorted.
	Nodes []string
	Score Score
}

// Result is a completed search.
type Result struct {
	Strategy Strategy
	Replicas int
	// TotalCandidates is the full combination count C(pool, choose); the
	// exact strategy scores all of them, greedy and beam a fraction.
	TotalCandidates int
	// Evaluated counts the candidate audits actually run (deployments
	// re-visited by beam rounds are scored once).
	Evaluated int
	// Top is the ranking, most independent first, at most TopK entries.
	Top     []Ranked
	Elapsed time.Duration
	// Scores is the evaluator's full memo after the search — every
	// deployment scored (or seeded), keyed by DeploymentKey. A later delta
	// search over a changed database seeds from it via Request.SeedScores.
	Scores map[string]Score
}

// Search runs the requested strategy and returns the ranked recommendation.
func Search(ctx context.Context, db depdb.Reader, req Request) (*Result, error) {
	start := time.Now()
	if err := req.validate(); err != nil {
		return nil, err
	}
	choose := req.Replicas - len(req.Fixed)
	total := combinations(len(req.Nodes), choose)
	strategy := req.Strategy
	if strategy == Auto {
		if total <= req.MaxCandidates {
			strategy = Exact
		} else {
			strategy = Beam
		}
	}
	e := newEvaluator(db, &req)
	var top []Ranked
	var err error
	switch strategy {
	case Exact:
		if total > req.MaxCandidates {
			return nil, fmt.Errorf("placement: exact search over %d candidates exceeds MaxCandidates=%d; use greedy or beam", total, req.MaxCandidates)
		}
		top, err = searchExact(ctx, e, &req)
	case Greedy:
		top, err = searchGreedy(ctx, e, &req)
	case Beam:
		top, err = searchBeam(ctx, e, &req)
	default:
		return nil, fmt.Errorf("placement: unknown strategy %v", strategy)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Strategy:        strategy,
		Replicas:        req.Replicas,
		TotalCandidates: total,
		Evaluated:       e.evaluatedCount(),
		Top:             top,
		Elapsed:         time.Since(start),
		Scores:          e.scoresCopy(),
	}, nil
}

// ScoreDeployment audits one fixed deployment with the request's kinds,
// weights and audit options — the single-candidate entry point schedulers
// use to compare hypothetical placements.
func ScoreDeployment(ctx context.Context, db depdb.Reader, nodes []string, req Request) (Score, error) {
	if len(nodes) == 0 {
		return Score{}, fmt.Errorf("placement: empty deployment")
	}
	e := newEvaluator(db, &req)
	scores, err := e.scoreBatch(ctx, [][]string{sortedCopy(nodes)})
	if err != nil {
		return Score{}, err
	}
	return scores[0], nil
}

// rank stably sorts deployments most-independent first, tie-breaking on the
// node list so results are deterministic, and truncates to k.
func rank(sets [][]string, scores []Score, k int) []Ranked {
	out := make([]Ranked, len(sets))
	for i := range sets {
		out[i] = Ranked{Nodes: sets[i], Score: scores[i]}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score.Less(out[j].Score) {
			return true
		}
		if out[j].Score.Less(out[i].Score) {
			return false
		}
		return deploymentKey(out[i].Nodes) < deploymentKey(out[j].Nodes)
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// combinations is C(n, k), saturating instead of overflowing so the guard
// against runaway exact searches stays meaningful at any pool size.
func combinations(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	const saturate = math.MaxInt / 2
	c := 1
	for i := 1; i <= k; i++ {
		if c > saturate/(n-k+i) {
			return saturate
		}
		c = c * (n - k + i) / i
	}
	return c
}

// sortedCopy returns a sorted copy of nodes — the canonical deployment form.
func sortedCopy(nodes []string) []string {
	out := append([]string(nil), nodes...)
	sort.Strings(out)
	return out
}

// deploymentKey is the canonical identity of a node set.
func deploymentKey(sorted []string) string {
	return strings.Join(sorted, "\x1f")
}

// DeploymentKey returns the canonical identity of a deployment's node set —
// the key space of Request.SeedScores and Result.Scores. Node order does not
// matter.
func DeploymentKey(nodes []string) string {
	return deploymentKey(sortedCopy(nodes))
}

// KeyNodes inverts DeploymentKey.
func KeyNodes(key string) []string {
	return strings.Split(key, "\x1f")
}
