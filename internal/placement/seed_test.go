package placement

import (
	"context"
	"testing"

	"indaas/internal/deps"
)

// TestSeedScoresSkipRecomputation: a search seeded with the full memo of an
// identical previous search re-audits nothing and ranks identically — the
// contract the audit service's delta recommendations rely on.
func TestSeedScoresSkipRecomputation(t *testing.T) {
	db, nodes := labDB(t, 8, 2, 3)
	req := Request{Nodes: nodes, Replicas: 2, TopK: 3, Strategy: Exact}
	ctx := context.Background()

	first, err := Search(ctx, db, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Evaluated == 0 || len(first.Scores) != first.Evaluated {
		t.Fatalf("first search: evaluated=%d scores=%d", first.Evaluated, len(first.Scores))
	}

	seeded := req
	seeded.SeedScores = first.Scores
	second, err := Search(ctx, db, seeded)
	if err != nil {
		t.Fatal(err)
	}
	if second.Evaluated != 0 {
		t.Fatalf("fully seeded search ran %d audits, want 0", second.Evaluated)
	}
	if !rankedEqual(first.Top, second.Top) {
		t.Fatalf("seeded ranking differs:\n%+v\n%+v", first.Top, second.Top)
	}

	// Partial seeding after a record change: drop every deployment touching
	// s01 from the seed, grow s01's dependencies, and re-search. Only the
	// s01 candidates may be re-audited; the rest come from the seed.
	if err := db.Put(deps.NewSoftware("etcd", "s01", "libc6")); err != nil {
		t.Fatal(err)
	}
	partial := req
	partial.SeedScores = make(map[string]Score)
	dirtyCandidates := 0
	for k, s := range first.Scores {
		touched := false
		for _, n := range KeyNodes(k) {
			if n == "s01" {
				touched = true
				break
			}
		}
		if touched {
			dirtyCandidates++
			continue
		}
		partial.SeedScores[k] = s
	}
	third, err := Search(ctx, db, partial)
	if err != nil {
		t.Fatal(err)
	}
	if third.Evaluated != dirtyCandidates {
		t.Fatalf("partial delta re-audited %d candidates, want %d", third.Evaluated, dirtyCandidates)
	}
	full, err := Search(ctx, db, req) // unseeded ground truth on the new DB
	if err != nil {
		t.Fatal(err)
	}
	if !rankedEqual(third.Top, full.Top) {
		t.Fatalf("partial-seeded ranking diverges from full recompute:\n%+v\n%+v", third.Top, full.Top)
	}
}
