package placement

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"

	"indaas/internal/depdb"
	"indaas/internal/deps"
	"indaas/internal/sia"
)

// labDB builds a rack-structured fixture: n servers, torSize per top-of-rack
// switch, every ToR uplinked through Core1+Core2, one disk per server drawn
// from diskBatches shared batches (0 = private disks). Shared ToRs and
// shared disk batches are the correlated-failure traps the search must
// avoid.
func labDB(t testing.TB, n, torSize, diskBatches int) (*depdb.DB, []string) {
	t.Helper()
	db := depdb.New()
	nodes := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%02d", i+1)
		tor := fmt.Sprintf("ToR%d", i/torSize+1)
		disk := fmt.Sprintf("disk-%02d", i+1)
		if diskBatches > 0 {
			disk = fmt.Sprintf("batch-%d", i%diskBatches)
		}
		if err := db.Put(
			deps.NewNetwork(name, "Internet", tor, "Core1"),
			deps.NewNetwork(name, "Internet", tor, "Core2"),
			deps.NewHardware(name, "Disk", disk),
		); err != nil {
			t.Fatal(err)
		}
		nodes[i] = name
	}
	return db, nodes
}

// scoresEquivalent reports whether two scores compare equal under the
// ranking order (neither strictly better).
func scoresEquivalent(a, b Score) bool {
	return !a.Less(b) && !b.Less(a)
}

// rankedEqual compares rankings NaN-aware (reflect.DeepEqual treats the
// unweighted NaN failure probability as unequal to itself).
func rankedEqual(a, b []Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if !reflect.DeepEqual(x.Nodes, y.Nodes) ||
			!reflect.DeepEqual(x.Score.SizeVector, y.Score.SizeVector) ||
			x.Score.RGCount != y.Score.RGCount ||
			x.Score.Unexpected != y.Score.Unexpected ||
			x.Score.Independence != y.Score.Independence {
			return false
		}
		if math.IsNaN(x.Score.FailureProb) != math.IsNaN(y.Score.FailureProb) {
			return false
		}
		if !math.IsNaN(x.Score.FailureProb) && x.Score.FailureProb != y.Score.FailureProb {
			return false
		}
	}
	return true
}

// TestDifferentialAgainstExactOracle is the acceptance differential: on
// small-n fixtures the greedy and beam strategies must land on a deployment
// scoring exactly as well as the brute-force optimum.
func TestDifferentialAgainstExactOracle(t *testing.T) {
	cases := []struct {
		n, torSize, batches, replicas int
	}{
		{4, 2, 0, 2},
		{6, 2, 3, 2},
		{6, 3, 0, 3},
		{7, 2, 3, 3},
		{8, 2, 4, 3},
		{9, 3, 2, 4},
	}
	for _, tc := range cases {
		name := fmt.Sprintf("n=%d/tor=%d/batches=%d/r=%d", tc.n, tc.torSize, tc.batches, tc.replicas)
		t.Run(name, func(t *testing.T) {
			db, nodes := labDB(t, tc.n, tc.torSize, tc.batches)
			base := Request{Nodes: nodes, Replicas: tc.replicas, TopK: 3}

			exact := base
			exact.Strategy = Exact
			oracle, err := Search(context.Background(), db, exact)
			if err != nil {
				t.Fatal(err)
			}
			if oracle.Evaluated != oracle.TotalCandidates {
				t.Fatalf("exact evaluated %d of %d candidates", oracle.Evaluated, oracle.TotalCandidates)
			}
			for i := 1; i < len(oracle.Top); i++ {
				if oracle.Top[i].Score.Less(oracle.Top[i-1].Score) {
					t.Fatalf("exact ranking out of order at %d", i)
				}
			}

			for _, strat := range []Strategy{Greedy, Beam} {
				req := base
				req.Strategy = strat
				res, err := Search(context.Background(), db, req)
				if err != nil {
					t.Fatalf("%v: %v", strat, err)
				}
				if len(res.Top) == 0 {
					t.Fatalf("%v returned no deployments", strat)
				}
				got, want := res.Top[0], oracle.Top[0]
				if !scoresEquivalent(got.Score, want.Score) {
					t.Errorf("%v top-1 %v (score %+v) worse than exact optimum %v (score %+v)",
						strat, got.Nodes, got.Score, want.Nodes, want.Score)
				}
			}
		})
	}
}

// TestExactRanking pins the concrete optimum on the 4-server/2-ToR fixture:
// cross-ToR pairs have no size-1 risk group, same-ToR pairs do.
func TestExactRanking(t *testing.T) {
	db, nodes := labDB(t, 4, 2, 0)
	res, err := Search(context.Background(), db, Request{
		Nodes: nodes, Replicas: 2, TopK: 6, Strategy: Exact,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCandidates != 6 || len(res.Top) != 6 {
		t.Fatalf("want all 6 pairs ranked, got %d/%d", len(res.Top), res.TotalCandidates)
	}
	best := res.Top[0]
	if !reflect.DeepEqual(best.Nodes, []string{"s01", "s03"}) {
		t.Fatalf("top-1 = %v, want the lexicographically first cross-ToR pair", best.Nodes)
	}
	if best.Score.Unexpected != 0 || best.Score.SizeVector[0] != 0 {
		t.Fatalf("cross-ToR pair must have no size-1 RGs: %+v", best.Score)
	}
	// The two same-ToR pairs sink to the bottom with their {ToR} RG.
	for _, worst := range res.Top[4:] {
		if worst.Score.Unexpected == 0 {
			t.Fatalf("same-ToR pair ranked too well: %+v", worst)
		}
	}
}

// TestWeightedRanking: with component weights the ranking flips to failure
// probability and the response carries Pr(outage).
func TestWeightedRanking(t *testing.T) {
	db, nodes := labDB(t, 4, 2, 0)
	req := Request{
		Nodes: nodes, Replicas: 2, Strategy: Exact, TopK: 6,
		Prob:  func(string) float64 { return 0.01 },
		Audit: sia.Options{RankMode: sia.RankByProb},
	}
	res, err := Search(context.Background(), db, req)
	if err != nil {
		t.Fatal(err)
	}
	top, bottom := res.Top[0], res.Top[len(res.Top)-1]
	if math.IsNaN(top.Score.FailureProb) {
		t.Fatal("weighted search must report failure probabilities")
	}
	if !(top.Score.FailureProb < bottom.Score.FailureProb) {
		t.Fatalf("ranking not ordered by Pr(outage): %v vs %v", top.Score.FailureProb, bottom.Score.FailureProb)
	}
}

// TestFixedNodes: every recommended deployment contains the pinned nodes,
// across all strategies.
func TestFixedNodes(t *testing.T) {
	db, nodes := labDB(t, 6, 2, 0)
	for _, strat := range []Strategy{Exact, Greedy, Beam} {
		res, err := Search(context.Background(), db, Request{
			Nodes: nodes[1:], Fixed: nodes[:1], Replicas: 3, Strategy: strat,
		})
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for _, r := range res.Top {
			found := false
			for _, n := range r.Nodes {
				if n == "s01" {
					found = true
				}
			}
			if !found || len(r.Nodes) != 3 {
				t.Fatalf("%v: deployment %v must contain fixed s01 and have 3 nodes", strat, r.Nodes)
			}
		}
	}
}

// TestParallelScoringDeterminism: worker-pool fan-out must not change the
// result — scoring is per-deployment deterministic and ranking stable.
func TestParallelScoringDeterminism(t *testing.T) {
	db, nodes := labDB(t, 9, 3, 4)
	for _, strat := range []Strategy{Exact, Greedy, Beam} {
		var ref *Result
		for _, workers := range []int{1, 8} {
			res, err := Search(context.Background(), db, Request{
				Nodes: nodes, Replicas: 3, Strategy: strat, Workers: workers, TopK: 4,
			})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", strat, workers, err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !rankedEqual(res.Top, ref.Top) || res.Evaluated != ref.Evaluated {
				t.Fatalf("%v: workers=%d diverged from sequential:\n%+v\nvs\n%+v", strat, workers, res.Top, ref.Top)
			}
		}
	}
}

// TestSearchCancellation is the acceptance cancellation point: a recommend
// job fanning hundreds of slow candidate audits across workers must abort
// promptly — and cleanly under -race — when its context is canceled.
func TestSearchCancellation(t *testing.T) {
	db, nodes := labDB(t, 16, 2, 0)
	req := Request{
		Nodes: nodes, Replicas: 3, Strategy: Exact, Workers: 4,
		// Each candidate audit samples an absurd number of rounds: the
		// search can only end by cancellation.
		Audit: sia.Options{Algorithm: sia.FailureSampling, Rounds: 2_000_000_000, Workers: 1},
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := Search(ctx, db, req)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("search did not observe cancellation")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestScoreDeployment: the single-candidate entry point matches what the
// exact search computes for the same node set.
func TestScoreDeployment(t *testing.T) {
	db, nodes := labDB(t, 4, 2, 0)
	req := Request{Nodes: nodes, Replicas: 2, Strategy: Exact, TopK: 6}
	res, err := Search(context.Background(), db, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Top {
		got, err := ScoreDeployment(context.Background(), db, r.Nodes, Request{Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.SizeVector, r.Score.SizeVector) || got.RGCount != r.Score.RGCount {
			t.Fatalf("ScoreDeployment(%v) = %+v, search said %+v", r.Nodes, got, r.Score)
		}
	}
}

// TestRequestValidation rejects impossible searches up front.
func TestRequestValidation(t *testing.T) {
	db, nodes := labDB(t, 4, 2, 0)
	bad := []Request{
		{Nodes: nodes, Replicas: 0},
		{Nodes: nodes, Replicas: 5},                              // pool too small
		{Nodes: []string{"s01", "s01"}, Replicas: 2},             // duplicate
		{Nodes: nodes[1:], Fixed: nodes[:1], Replicas: 1},        // fixed fills it
		{Nodes: nodes, Fixed: []string{"s01"}, Replicas: 2},      // fixed duplicated in pool
		{Nodes: []string{""}, Replicas: 1},                       // empty name
		{Nodes: []string{"ghost"}, Replicas: 1, Strategy: Exact}, // no records
		{Nodes: nodes, Replicas: 2, Strategy: Strategy(99)},      // unknown strategy
	}
	for i, req := range bad {
		if _, err := Search(context.Background(), db, req); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

// TestAutoStrategy: Auto runs exact within MaxCandidates and switches to
// beam beyond it.
func TestAutoStrategy(t *testing.T) {
	db, nodes := labDB(t, 6, 2, 0)
	res, err := Search(context.Background(), db, Request{Nodes: nodes, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != Exact {
		t.Fatalf("small pool should resolve to exact, got %v", res.Strategy)
	}
	res, err = Search(context.Background(), db, Request{Nodes: nodes, Replicas: 3, MaxCandidates: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strategy != Beam {
		t.Fatalf("over-budget pool should resolve to beam, got %v", res.Strategy)
	}
	// Explicit exact over budget refuses instead of silently degrading.
	if _, err := Search(context.Background(), db, Request{Nodes: nodes, Replicas: 3, MaxCandidates: 5, Strategy: Exact}); err == nil {
		t.Fatal("explicit exact over MaxCandidates must error")
	}
}

func TestStrategyRoundTrip(t *testing.T) {
	for _, s := range []Strategy{Auto, Exact, Greedy, Beam} {
		got, err := StrategyFromString(s.String())
		if err != nil || got != s {
			t.Errorf("round trip %v: got %v, %v", s, got, err)
		}
	}
	if _, err := StrategyFromString("magic"); err == nil {
		t.Error("want error for unknown strategy name")
	}
}

func TestCombinations(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{4, 2, 6}, {6, 3, 20}, {10, 0, 1}, {10, 10, 1}, {5, 6, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := combinations(c.n, c.k); got != c.want {
			t.Errorf("C(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
	if got := combinations(300, 150); got <= 0 {
		t.Errorf("saturating C(300,150) must stay positive, got %d", got)
	}
}
