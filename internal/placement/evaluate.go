package placement

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"indaas/internal/depdb"
	"indaas/internal/sia"
)

// evaluator scores candidate deployments through the SIA pipeline, fanning
// batches across a worker pool and memoizing per-deployment scores so the
// iterative strategies (greedy, beam) never audit the same node set twice.
type evaluator struct {
	db  depdb.Reader
	req *Request

	mu        sync.Mutex
	cache     map[string]Score
	evaluated int // audits actually run (cache misses)
}

func newEvaluator(db depdb.Reader, req *Request) *evaluator {
	cache := make(map[string]Score, len(req.SeedScores))
	// Seeded scores behave exactly like memoized ones: consulted before any
	// audit runs, excluded from the evaluated count.
	for k, s := range req.SeedScores {
		cache[k] = s
	}
	return &evaluator{db: db, req: req, cache: cache}
}

func (e *evaluator) evaluatedCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evaluated
}

// scoresCopy snapshots the memo (seeds included) for Result.Scores.
func (e *evaluator) scoresCopy() map[string]Score {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]Score, len(e.cache))
	for k, s := range e.cache {
		out[k] = s
	}
	return out
}

// scoreBatch returns one score per deployment (each a sorted node list),
// auditing cache misses in parallel. The first audit error cancels the rest
// of the batch; a canceled context surfaces as ctx.Err().
func (e *evaluator) scoreBatch(ctx context.Context, sets [][]string) ([]Score, error) {
	scores := make([]Score, len(sets))
	var misses []int
	e.mu.Lock()
	for i, set := range sets {
		if s, ok := e.cache[deploymentKey(set)]; ok {
			scores[i] = s
		} else {
			misses = append(misses, i)
		}
	}
	e.evaluated += len(misses)
	e.mu.Unlock()
	if len(misses) == 0 {
		return scores, nil
	}

	workers := e.req.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(misses) {
		workers = len(misses)
	}
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel() // stop the rest of the batch promptly
		})
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(misses) {
					return
				}
				if err := bctx.Err(); err != nil {
					fail(err)
					return
				}
				idx := misses[i]
				s, err := e.scoreOne(bctx, sets[idx])
				if err != nil {
					fail(err)
					return
				}
				scores[idx] = s
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		// Prefer the caller's cancellation cause over the derived batch
		// context's.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, firstErr
	}
	e.mu.Lock()
	for _, idx := range misses {
		e.cache[deploymentKey(sets[idx])] = scores[idx]
	}
	e.mu.Unlock()
	return scores, nil
}

// scoreOne audits a single deployment: fault graph build (§4.1.1) plus RG
// determination and ranking (§4.1.2–4.1.4) under the request's options.
func (e *evaluator) scoreOne(ctx context.Context, nodes []string) (Score, error) {
	// The "placement:" prefix keeps the top-event label distinct from the
	// per-server gates (a one-node deployment named "s01" would otherwise
	// collide with its own "s01 fails" gate).
	spec := sia.GraphSpec{
		Deployment: "placement:" + strings.Join(nodes, "+"),
		Servers:    nodes,
		Kinds:      e.req.Kinds,
		Prob:       e.req.Prob,
	}
	g, err := sia.BuildGraph(e.db, spec)
	if err != nil {
		return Score{}, err
	}
	audit, err := sia.AuditContext(ctx, g, spec, e.req.Audit)
	if err != nil {
		return Score{}, err
	}
	return Score{
		SizeVector:   audit.SizeVector(),
		RGCount:      len(audit.RGs),
		Unexpected:   audit.Unexpected,
		Independence: audit.Score,
		FailureProb:  audit.FailureProb,
	}, nil
}
