package riskgroup

import (
	"context"
	mbits "math/bits"
	"sort"

	"indaas/internal/bitset"
	"indaas/internal/faultgraph"
)

func trailingZeros64(w uint64) int { return mbits.TrailingZeros64(w) }

// brg is a risk group in dense form: a bitset over basic-event ranks (or raw
// node IDs for graphless minimization) plus its cached cardinality. All brgs
// of one computation share a word width.
type brg struct {
	w bitset.Set
	n int
}

// minCtx holds the scratch state of one bitset RG computation: a word arena
// so product sets are carved out of large slabs instead of allocated
// individually, a hash-keyed dedup index, and witness postings for
// absorption. One context is reused across every minimize/product call of a
// MinimalRGs run.
type minCtx struct {
	words    int
	arena    []uint64
	slab     int // current slab size in words; doubles per refill
	scratch  bitset.Set
	probe    bitset.Set // the set currently tested by a dedup eq closure
	dedup    dedupTable
	postings [][]int32 // witness index → kept positions (absorption)
	touched  []int32   // witness indices to clear after a minimize

	// cctx, when non-nil, is polled every pollInterval set operations so
	// fat-tree-scale products and absorption passes stay cancellable;
	// cancelErr latches the first observed ctx error so every later poll
	// bails without re-asking the context.
	cctx      context.Context
	steps     uint32
	cancelErr error
}

// pollInterval is how many set operations pass between context polls: large
// enough that the mutex inside context.Err stays off the profile, small
// enough (~a few hundred µs of work) that cancellation lands promptly.
const pollInterval = 4096

// poll reports whether the computation is canceled, checking the context
// once every pollInterval calls.
func (c *minCtx) poll() bool {
	if c.cancelErr != nil {
		return true
	}
	if c.cctx == nil {
		return false
	}
	c.steps++
	if c.steps%pollInterval != 0 {
		return false
	}
	if err := c.cctx.Err(); err != nil {
		c.cancelErr = err
		return true
	}
	return false
}

func newMinCtx(width int) *minCtx {
	return &minCtx{
		words:    bitset.Words(width),
		slab:     128,
		scratch:  bitset.New(width),
		postings: make([][]int32, width),
	}
}

// dedupTable is an open-addressed hash index over family positions,
// replacing a map[hash][]index whose per-bucket slices dominated the
// allocation profile of large products. Slots hold position+1 (0 = empty)
// and the table is reused — cleared, not reallocated — across the thousands
// of minimize/product calls of one MinimalRGs run.
type dedupTable struct {
	slots []int32
	n     int
}

// reset prepares the table for about capHint insertions.
func (d *dedupTable) reset(capHint int) {
	want := 64
	for want < 2*capHint {
		want <<= 1
	}
	if len(d.slots) < want || len(d.slots) > 8*want {
		d.slots = make([]int32, want)
	} else {
		for i := range d.slots {
			d.slots[i] = 0
		}
	}
	d.n = 0
}

func (d *dedupTable) place(h uint64, v int32) {
	mask := uint64(len(d.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		if d.slots[i] == 0 {
			d.slots[i] = v
			return
		}
	}
}

func (d *dedupTable) grow(hashOf func(int32) uint64) {
	old := d.slots
	d.slots = make([]int32, 2*len(old))
	for _, v := range old {
		if v != 0 {
			d.place(hashOf(v-1), v)
		}
	}
}

// lookupOrInsert reports whether a position equal (per eq) to the probed set
// already exists; if not, it files idx under hash h. hashOf recomputes the
// hash of a stored position, needed when the table grows.
func (d *dedupTable) lookupOrInsert(h uint64, idx int32, eq func(int32) bool, hashOf func(int32) uint64) bool {
	mask := uint64(len(d.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		v := d.slots[i]
		if v == 0 {
			if 4*(d.n+1) > 3*len(d.slots) {
				d.grow(hashOf)
				d.place(h, idx+1)
			} else {
				d.slots[i] = idx + 1
			}
			d.n++
			return false
		}
		if eq(v - 1) {
			return true
		}
	}
}

// alloc carves a zeroed set of the context's width out of the arena. Slabs
// double per refill (1KB up to 512KB) so small audits stay light while
// fat-tree products amortize to one allocation per thousands of sets.
func (c *minCtx) alloc() bitset.Set {
	if len(c.arena) < c.words {
		if c.slab < 1<<16 {
			c.slab *= 2
		}
		n := c.slab
		if n < c.words {
			n = c.words
		}
		c.arena = make([]uint64, n)
	}
	s := bitset.Set(c.arena[:c.words:c.words])
	c.arena = c.arena[c.words:]
	return s
}

// sortBrgs orders a family by cardinality, then by lowest differing member —
// exactly the size-then-lexicographic order of the slice representation.
func sortBrgs(fam []brg) {
	sort.Slice(fam, func(i, j int) bool {
		if fam[i].n != fam[j].n {
			return fam[i].n < fam[j].n
		}
		return fam[i].w.Less(fam[j].w)
	})
}

// minimize removes duplicates and non-minimal sets by absorption: any set
// that is a superset of another kept set is dropped. Runs in place over
// fam's backing array; the result is sorted by size then lexicographically.
//
// Absorption uses witness postings: a kept set t can only absorb a candidate
// s if t ⊆ s, which requires t's smallest member (its witness) to appear in
// s. Each kept set is filed under its witness alone, so candidates scan just
// the kept sets witnessed by their own members and confirm with a word-wise
// subset test. Postings are published one size class at a time: only
// strictly smaller sets can absorb (equal-size absorbers would be
// duplicates, removed up front), so candidates within a class skip each
// other entirely.
func (c *minCtx) minimize(fam []brg) []brg {
	if len(fam) == 0 {
		return nil
	}
	c.dedup.reset(len(fam))
	uniq := fam[:0]
	eq := func(i int32) bool { return uniq[i].w.Equal(c.probe) }
	hashOf := func(i int32) uint64 { return uniq[i].w.Hash() }
	for _, s := range fam {
		c.probe = s.w
		if c.dedup.lookupOrInsert(s.w.Hash(), int32(len(uniq)), eq, hashOf) {
			continue
		}
		uniq = append(uniq, s)
	}
	sortBrgs(uniq)
	kept := uniq[:0]
	classStart := 0 // first kept index not yet published to postings
	prevSize := -1
	publish := func(upto int) {
		for i := classStart; i < upto; i++ {
			w := kept[i].w.First()
			if w < 0 {
				continue // the empty set files no witness
			}
			if len(c.postings[w]) == 0 {
				c.touched = append(c.touched, int32(w))
			}
			c.postings[w] = append(c.postings[w], int32(i))
		}
		classStart = upto
	}
	for _, s := range uniq {
		if c.poll() {
			break // canceled: caller sees cancelErr, partial result is discarded
		}
		if s.n != prevSize {
			publish(len(kept))
			prevSize = s.n
		}
		absorbed := false
	scan:
		for wi, w := range s.w {
			base := wi << 6
			for w != 0 {
				e := base + trailingZeros64(w)
				w &= w - 1
				for _, ti := range c.postings[e] {
					if kept[ti].w.SubsetOf(s.w) {
						absorbed = true
						break scan
					}
				}
			}
		}
		if !absorbed {
			kept = append(kept, s)
		}
	}
	for _, w := range c.touched {
		c.postings[w] = c.postings[w][:0]
	}
	c.touched = c.touched[:0]
	return kept
}

// graphIndexer maps RGs between node-ID space and bit-index space.
type graphIndexer struct{ g *faultgraph.Graph }

// width returns the bit-universe size: basic ranks with a graph, raw node
// IDs without one (graphless Minimize).
func (ix graphIndexer) width(sets []RG) int {
	if ix.g != nil {
		return ix.g.NumBasics()
	}
	w := 0
	for _, s := range sets {
		for _, id := range s {
			if int(id)+1 > w {
				w = int(id) + 1
			}
		}
	}
	return w
}

func (ix graphIndexer) bitOf(id faultgraph.NodeID) int {
	if ix.g != nil {
		return ix.g.BasicRank(id)
	}
	return int(id)
}

func (ix graphIndexer) idOf(bit int) faultgraph.NodeID {
	if ix.g != nil {
		return ix.g.BasicAt(bit)
	}
	return faultgraph.NodeID(bit)
}

// toBrg converts an RG into the context's dense form.
func (c *minCtx) toBrg(ix graphIndexer, s RG) brg {
	w := c.alloc()
	for _, id := range s {
		w.Set(ix.bitOf(id))
	}
	return brg{w: w, n: w.Count()}
}

// toRG expands a dense set back into a sorted RG. Bit order follows
// ascending node ID in both index spaces, so the members come out sorted.
func (ix graphIndexer) toRG(s brg) RG {
	out := make(RG, 0, s.n)
	for wi, w := range s.w {
		base := wi << 6
		for w != 0 {
			out = append(out, ix.idOf(base+trailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

func (ix graphIndexer) toFamily(fam []brg) []RG {
	if len(fam) == 0 {
		return nil
	}
	out := make([]RG, len(fam))
	for i, s := range fam {
		out[i] = ix.toRG(s)
	}
	return out
}
