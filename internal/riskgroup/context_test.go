package riskgroup

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"indaas/internal/faultgraph"
	"indaas/internal/topology"
)

// fatTreeDeployment builds the Fig. 7 two-way deployment graph over a k-port
// fat tree — the workload whose k=24 instance motivated cancellable audits.
func fatTreeDeployment(t testing.TB, k int) *faultgraph.Graph {
	t.Helper()
	ft, err := topology.FatTree(k)
	if err != nil {
		t.Fatal(err)
	}
	b := faultgraph.NewBuilder()
	var servers []faultgraph.NodeID
	for pod := 0; pod < 2; pod++ {
		srv := topology.FatTreeServer(pod, 0, 0)
		routes, err := ft.RoutesToInternet(srv)
		if err != nil {
			t.Fatal(err)
		}
		var routeNodes []faultgraph.NodeID
		for ri, route := range routes {
			var devs []faultgraph.NodeID
			for _, d := range route {
				devs = append(devs, b.Basic(d))
			}
			routeNodes = append(routeNodes, b.Gate(fmt.Sprintf("%s r%d", srv, ri), faultgraph.OR, devs...))
		}
		servers = append(servers, b.Gate(srv+" fails", faultgraph.AND, routeNodes...))
	}
	b.SetTop(b.Gate("deployment fails", faultgraph.AND, servers...))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestMinimalRGsContextPreCanceled(t *testing.T) {
	g := fig4c(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fam, err := MinimalRGsContext(ctx, g, MinimalOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if fam != nil {
		t.Fatalf("canceled run must discard partial state, got %d RGs", len(fam))
	}
}

// TestMinimalRGsContextCancelMidRun cancels a fat-tree enumeration that
// takes several seconds uncancelled (k=18 ≈ 1 s, see PERFORMANCE.md) and
// requires the call to return ctx.Err() long before it could have finished.
func TestMinimalRGsContextCancelMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload")
	}
	g := fatTreeDeployment(t, 18)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	fam, err := MinimalRGsContext(ctx, g, MinimalOptions{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (after %v)", err, elapsed)
	}
	if fam != nil {
		t.Fatalf("canceled run must discard partial state, got %d RGs", len(fam))
	}
	// Uncancelled the run takes ≳1 s (more under -race); the poll interval
	// is a few hundred µs of work, so a generous bound still proves the
	// cancellation landed mid-computation rather than at the end.
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

func TestMinimalRGsContextDeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second workload")
	}
	g := fatTreeDeployment(t, 18)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := MinimalRGsContext(ctx, g, MinimalOptions{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

func TestSamplerContextPreCanceled(t *testing.T) {
	g := fig4c(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fam, err := Sampler{Rounds: 1000, Seed: 1}.SampleContext(ctx, g)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if fam != nil {
		t.Fatalf("canceled run must discard partial state, got %d RGs", len(fam))
	}
}

// TestSamplerContextCancelMidRun cancels a huge sampling run fanned out
// across 8 workers. SampleContext only returns after every worker goroutine
// has exited (it waits on the worker WaitGroup), so a prompt return also
// proves all goroutines were released; -race in CI checks the shutdown for
// data races.
func TestSamplerContextCancelMidRun(t *testing.T) {
	g := fatTreeDeployment(t, 8)
	// ~50M rounds ≈ minutes of work: the test only passes through prompt
	// cancellation, never by finishing.
	s := Sampler{Rounds: 50_000_000, Bias: 0.97, Shrink: true, Seed: 1, Workers: 8}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	fam, err := s.SampleContext(ctx, g)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v (after %v)", err, elapsed)
	}
	if fam != nil {
		t.Fatalf("canceled run must discard partial state, got %d RGs", len(fam))
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestSamplerContextCompletedRunIgnoresLateCancel checks the boundary case:
// a context canceled only after Sample returned does not poison the result.
func TestSamplerContextCompletedRunIgnoresLateCancel(t *testing.T) {
	g := fig4c(t)
	ctx, cancel := context.WithCancel(context.Background())
	fam, err := Sampler{Rounds: 2000, Shrink: true, Seed: 7, Workers: 4}.SampleContext(ctx, g)
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) == 0 {
		t.Fatal("expected detected RGs")
	}
}
