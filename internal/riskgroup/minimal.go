package riskgroup

import (
	"context"
	"fmt"
	"indaas/internal/telemetry"
	"sort"

	"indaas/internal/faultgraph"
)

// MinimalOptions tunes the exact minimal RG algorithm.
type MinimalOptions struct {
	// MaxSets aborts the computation if any intermediate family exceeds this
	// many cut sets (0 = unlimited). The algorithm is NP-hard [59]; this is
	// the safety valve for adversarial graphs.
	MaxSets int
	// MaxSize prunes cut sets larger than this many events (0 = unlimited).
	// Pruning keeps the result sound (every returned set is a minimal RG)
	// but possibly incomplete above the bound; useful when only RGs up to
	// the redundancy level matter.
	MaxSize int
	// FinalMinimizeOnly disables per-node absorption, minimizing only the
	// top family. Exposed for the ablation bench; dramatically slower on
	// graphs with shared subtrees.
	FinalMinimizeOnly bool
}

// MinimalRGs computes the family of all minimal RGs of g's top event using
// the classic bottom-up cut-set construction (§4.1.2): basic events
// contribute {themselves}; OR gates union their children's families; AND
// gates take the cartesian product (set-union of one cut per child); K-of-N
// gates union the products over every K-subset of children. Families are
// minimized by absorption at every node.
//
// Internally every family is a dense bitset over basic-event ranks, so set
// union is a word-wise OR, absorption a word-wise subset test, and dedup a
// word hash — the representation that keeps large fat-tree products
// tractable. The result is sorted by size, then lexicographically.
func MinimalRGs(g *faultgraph.Graph, opts MinimalOptions) ([]RG, error) {
	return MinimalRGsContext(context.Background(), g, opts)
}

// MinimalRGsContext is MinimalRGs under a context. Cancellation is polled
// inside the cartesian-product and absorption loops (every few thousand set
// operations), so even a runaway k=24 fat-tree enumeration aborts promptly:
// the call returns ctx.Err() (wrapped with the event being expanded) and
// discards all partial families. A nil result always accompanies the error.
func MinimalRGsContext(cctx context.Context, g *faultgraph.Graph, opts MinimalOptions) ([]RG, error) {
	tr := telemetry.FromContext(cctx)
	defer tr.Start("minimal-rgs")()
	ctx := newMinCtx(g.NumBasics())
	ctx.cctx = cctx
	families := make([][]brg, g.Len())
	for _, id := range g.TopoOrder() {
		if err := cctx.Err(); err != nil {
			return nil, err
		}
		n := g.Node(id)
		var fam []brg
		switch n.Gate {
		case faultgraph.Basic:
			w := ctx.alloc()
			w.Set(g.BasicRank(id))
			fam = []brg{{w: w, n: 1}}
		case faultgraph.OR:
			total := 0
			for _, c := range n.Children {
				total += len(families[c])
			}
			fam = make([]brg, 0, total)
			for _, c := range n.Children {
				fam = append(fam, families[c]...)
			}
			if !opts.FinalMinimizeOnly {
				fam = ctx.minimize(fam)
			}
		case faultgraph.AND:
			var err error
			fam, err = productFamilies(ctx, childFamilies(families, n.Children), opts)
			if err != nil {
				return nil, fmt.Errorf("riskgroup: at event %q: %w", n.Label, err)
			}
		case faultgraph.KofN:
			// Union of products over all K-subsets of children.
			children := n.Children
			subset := make([]int, n.K)
			var all []brg
			var rec func(start, depth int) error
			rec = func(start, depth int) error {
				if depth == n.K {
					chosen := make([][]brg, n.K)
					for i, ci := range subset {
						chosen[i] = families[children[ci]]
					}
					prod, err := productFamilies(ctx, chosen, opts)
					if err != nil {
						return err
					}
					if opts.MaxSets > 0 && len(all)+len(prod) > opts.MaxSets {
						return fmt.Errorf("family of %d sets exceeds MaxSets=%d", len(all)+len(prod), opts.MaxSets)
					}
					all = append(all, prod...)
					return nil
				}
				for i := start; i <= len(children)-(n.K-depth); i++ {
					subset[depth] = i
					if err := rec(i+1, depth+1); err != nil {
						return err
					}
				}
				return nil
			}
			if err := rec(0, 0); err != nil {
				return nil, fmt.Errorf("riskgroup: at event %q: %w", n.Label, err)
			}
			if !opts.FinalMinimizeOnly {
				all = ctx.minimize(all)
			}
			fam = all
		}
		if ctx.cancelErr != nil { // a minimize pass bailed mid-absorption
			return nil, fmt.Errorf("riskgroup: at event %q: %w", n.Label, ctx.cancelErr)
		}
		if opts.MaxSets > 0 && len(fam) > opts.MaxSets {
			return nil, fmt.Errorf("riskgroup: at event %q: family of %d sets exceeds MaxSets=%d", n.Label, len(fam), opts.MaxSets)
		}
		families[id] = fam
	}
	top := ctx.minimize(families[g.Top()]) // idempotent when per-node minimization ran
	if ctx.cancelErr != nil {
		return nil, ctx.cancelErr
	}
	sortBrgs(top)
	out := graphIndexer{g: g}.toFamily(top)
	tr.Add("rgs_found", int64(len(out)))
	return out, nil
}

func childFamilies(families [][]brg, children []faultgraph.NodeID) [][]brg {
	out := make([][]brg, len(children))
	for i, c := range children {
		out[i] = families[c]
	}
	return out
}

// productFamilies folds the cartesian product over the child families,
// unioning one cut set from each child and minimizing as it goes.
func productFamilies(ctx *minCtx, fams [][]brg, opts MinimalOptions) ([]brg, error) {
	if len(fams) == 0 {
		return nil, nil
	}
	// Start from the smallest family to keep intermediates small.
	order := make([]int, len(fams))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return len(fams[order[i]]) < len(fams[order[j]]) })
	acc := fams[order[0]]
	for _, oi := range order[1:] {
		out, err := ctx.product(acc, fams[oi], opts)
		if err != nil {
			return nil, err
		}
		if !opts.FinalMinimizeOnly {
			out = ctx.minimize(out)
		}
		if opts.MaxSets > 0 && len(out) > opts.MaxSets {
			return nil, fmt.Errorf("product family of %d sets exceeds MaxSets=%d", len(out), opts.MaxSets)
		}
		acc = out
	}
	return acc, nil
}

// product unions every pair across two families, deduplicating by word hash
// as it goes. New sets are carved from the context arena; the scratch set
// holds each candidate union so rejected pairs allocate nothing.
func (c *minCtx) product(a, b []brg, opts MinimalOptions) ([]brg, error) {
	c.dedup.reset(len(a))
	out := make([]brg, 0, len(a))
	c.probe = c.scratch
	eq := func(i int32) bool { return out[i].w.Equal(c.probe) }
	hashOf := func(i int32) uint64 { return out[i].w.Hash() }
	for _, x := range a {
		for _, y := range b {
			if c.poll() {
				return nil, c.cancelErr
			}
			c.scratch.OrOf(x.w, y.w)
			n := c.scratch.Count()
			if opts.MaxSize > 0 && n > opts.MaxSize {
				continue
			}
			if c.dedup.lookupOrInsert(c.scratch.Hash(), int32(len(out)), eq, hashOf) {
				continue
			}
			w := c.alloc()
			w.CopyFrom(c.scratch)
			out = append(out, brg{w: w, n: n})
			if opts.MaxSets > 0 && len(out) > 4*opts.MaxSets {
				return nil, fmt.Errorf("product exceeds 4×MaxSets=%d before minimization", 4*opts.MaxSets)
			}
		}
	}
	return out, nil
}

// BruteForceMinimalRGs enumerates every subset of basic events up to
// maxSize and keeps the minimal failing ones. Exponential; used to validate
// MinimalRGs in tests on small graphs.
func BruteForceMinimalRGs(g *faultgraph.Graph, maxSize int) []RG {
	basics := g.BasicEvents()
	var all []RG
	a := g.AcquireAssignment()
	defer g.ReleaseAssignment(a)
	var rec func(start int, cur RG)
	rec = func(start int, cur RG) {
		if len(cur) > 0 {
			for _, id := range cur {
				a[id] = true
			}
			failed := g.Evaluate(a)
			for _, id := range cur {
				a[id] = false
			}
			if failed {
				cp := make(RG, len(cur))
				copy(cp, cur)
				all = append(all, cp)
				return // supersets are non-minimal; pruned by absorption anyway
			}
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < len(basics); i++ {
			rec(i+1, append(cur, basics[i]))
		}
	}
	rec(0, nil)
	return Minimize(all)
}
