package riskgroup

import (
	"fmt"

	"indaas/internal/faultgraph"
)

// MinimalOptions tunes the exact minimal RG algorithm.
type MinimalOptions struct {
	// MaxSets aborts the computation if any intermediate family exceeds this
	// many cut sets (0 = unlimited). The algorithm is NP-hard [59]; this is
	// the safety valve for adversarial graphs.
	MaxSets int
	// MaxSize prunes cut sets larger than this many events (0 = unlimited).
	// Pruning keeps the result sound (every returned set is a minimal RG)
	// but possibly incomplete above the bound; useful when only RGs up to
	// the redundancy level matter.
	MaxSize int
	// FinalMinimizeOnly disables per-node absorption, minimizing only the
	// top family. Exposed for the ablation bench; dramatically slower on
	// graphs with shared subtrees.
	FinalMinimizeOnly bool
}

// MinimalRGs computes the family of all minimal RGs of g's top event using
// the classic bottom-up cut-set construction (§4.1.2): basic events
// contribute {themselves}; OR gates union their children's families; AND
// gates take the cartesian product (set-union of one cut per child); K-of-N
// gates union the products over every K-subset of children. Families are
// minimized by absorption at every node.
//
// The result is sorted by size, then lexicographically.
func MinimalRGs(g *faultgraph.Graph, opts MinimalOptions) ([]RG, error) {
	families := make([][]RG, g.Len())
	postings := make(map[faultgraph.NodeID][]int)
	for _, id := range g.TopoOrder() {
		n := g.Node(id)
		var fam []RG
		switch n.Gate {
		case faultgraph.Basic:
			fam = []RG{{id}}
		case faultgraph.OR:
			total := 0
			for _, c := range n.Children {
				total += len(families[c])
			}
			fam = make([]RG, 0, total)
			for _, c := range n.Children {
				fam = append(fam, families[c]...)
			}
			if !opts.FinalMinimizeOnly {
				fam = minimize(fam, postings)
			}
		case faultgraph.AND:
			var err error
			fam, err = productFamilies(childFamilies(families, n.Children), opts, postings)
			if err != nil {
				return nil, fmt.Errorf("riskgroup: at event %q: %w", n.Label, err)
			}
		case faultgraph.KofN:
			// Union of products over all K-subsets of children.
			children := n.Children
			subset := make([]int, n.K)
			var all []RG
			var rec func(start, depth int) error
			rec = func(start, depth int) error {
				if depth == n.K {
					chosen := make([][]RG, n.K)
					for i, ci := range subset {
						chosen[i] = families[children[ci]]
					}
					prod, err := productFamilies(chosen, opts, postings)
					if err != nil {
						return err
					}
					all = append(all, prod...)
					if opts.MaxSets > 0 && len(all) > opts.MaxSets {
						return fmt.Errorf("family exceeds MaxSets=%d", opts.MaxSets)
					}
					return nil
				}
				for i := start; i <= len(children)-(n.K-depth); i++ {
					subset[depth] = i
					if err := rec(i+1, depth+1); err != nil {
						return err
					}
				}
				return nil
			}
			if err := rec(0, 0); err != nil {
				return nil, fmt.Errorf("riskgroup: at event %q: %w", n.Label, err)
			}
			if !opts.FinalMinimizeOnly {
				all = minimize(all, postings)
			}
			fam = all
		}
		if opts.MaxSets > 0 && len(fam) > opts.MaxSets {
			return nil, fmt.Errorf("riskgroup: at event %q: family of %d sets exceeds MaxSets=%d", n.Label, len(fam), opts.MaxSets)
		}
		families[id] = fam
	}
	top := families[g.Top()]
	top = minimize(top, postings) // idempotent when per-node minimization ran
	sortFamily(top)
	return top, nil
}

func childFamilies(families [][]RG, children []faultgraph.NodeID) [][]RG {
	out := make([][]RG, len(children))
	for i, c := range children {
		out[i] = families[c]
	}
	return out
}

// productFamilies folds the cartesian product over the child families,
// unioning one cut set from each child and minimizing as it goes.
func productFamilies(fams [][]RG, opts MinimalOptions, postings map[faultgraph.NodeID][]int) ([]RG, error) {
	if len(fams) == 0 {
		return nil, nil
	}
	// Start from the smallest family to keep intermediates small.
	order := make([]int, len(fams))
	for i := range order {
		order[i] = i
	}
	for i := range order {
		for j := i + 1; j < len(order); j++ {
			if len(fams[order[j]]) < len(fams[order[i]]) {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	acc := fams[order[0]]
	for _, oi := range order[1:] {
		next := fams[oi]
		var out []RG
		seen := make(map[string]struct{}, len(acc)*min(len(next), 8))
		for _, a := range acc {
			for _, b := range next {
				u := mergeUnion(a, b)
				if opts.MaxSize > 0 && len(u) > opts.MaxSize {
					continue
				}
				k := u.key()
				if _, ok := seen[k]; ok {
					continue
				}
				seen[k] = struct{}{}
				out = append(out, u)
				if opts.MaxSets > 0 && len(out) > 4*opts.MaxSets {
					return nil, fmt.Errorf("product exceeds 4×MaxSets=%d before minimization", 4*opts.MaxSets)
				}
			}
		}
		if !opts.FinalMinimizeOnly {
			out = minimize(out, postings)
		}
		if opts.MaxSets > 0 && len(out) > opts.MaxSets {
			return nil, fmt.Errorf("product family of %d sets exceeds MaxSets=%d", len(out), opts.MaxSets)
		}
		acc = out
	}
	return acc, nil
}

// BruteForceMinimalRGs enumerates every subset of basic events up to
// maxSize and keeps the minimal failing ones. Exponential; used to validate
// MinimalRGs in tests on small graphs.
func BruteForceMinimalRGs(g *faultgraph.Graph, maxSize int) []RG {
	basics := g.BasicEvents()
	var all []RG
	a := g.NewAssignment()
	var rec func(start int, cur RG)
	rec = func(start int, cur RG) {
		if len(cur) > 0 {
			for _, id := range cur {
				a[id] = true
			}
			failed := g.Evaluate(a)
			for _, id := range cur {
				a[id] = false
			}
			if failed {
				cp := make(RG, len(cur))
				copy(cp, cur)
				all = append(all, cp)
				return // supersets are non-minimal; pruned by absorption anyway
			}
		}
		if len(cur) == maxSize {
			return
		}
		for i := start; i < len(basics); i++ {
			rec(i+1, append(cur, basics[i]))
		}
	}
	rec(0, nil)
	return Minimize(all)
}
