package riskgroup

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"indaas/internal/faultgraph"
)

// fig4a builds the component-set example of Fig. 4a: E1 = {A1, A2},
// E2 = {A2, A3}, two-way redundancy.
func fig4a(t *testing.T) *faultgraph.Graph {
	t.Helper()
	g, err := faultgraph.FromSourceSets("T", 2, []faultgraph.SourceSet{
		{Source: "E1", Components: []string{"A1", "A2"}},
		{Source: "E2", Components: []string{"A2", "A3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fig4c builds a graph shaped like the paper's Fig. 4c: two servers, each
// with network (redundant cores behind a shared ToR) and software (shared
// libc6 under both programs).
func fig4c(t *testing.T) *faultgraph.Graph {
	t.Helper()
	b := faultgraph.NewBuilder()
	tor := b.Basic("ToR1")
	core1 := b.Basic("Core1")
	core2 := b.Basic("Core2")
	libc := b.Basic("libc6")

	mkServer := func(name, lib2 string) faultgraph.NodeID {
		p1 := b.Gate(name+" path1", faultgraph.OR, tor, core1)
		p2 := b.Gate(name+" path2", faultgraph.OR, tor, core2)
		net := b.Gate(name+" network", faultgraph.AND, p1, p2)
		other := b.Basic(lib2)
		sw := b.Gate(name+" software", faultgraph.OR, libc, other)
		return b.Gate(name, faultgraph.OR, net, sw)
	}
	s1 := mkServer("S1", "libgcc1")
	s2 := mkServer("S2", "libsvn1")
	b.SetTop(b.Gate("R", faultgraph.AND, s1, s2))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func labelsOf(g *faultgraph.Graph, fam []RG) [][]string {
	out := make([][]string, len(fam))
	for i, rg := range fam {
		out[i] = Labels(g, rg)
	}
	return out
}

func TestMinimalRGsFig4a(t *testing.T) {
	g := fig4a(t)
	fam, err := MinimalRGs(g, MinimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: minimal RGs are {A2} and {A1, A3}.
	want := [][]string{{"A2"}, {"A1", "A3"}}
	if got := labelsOf(g, fam); !reflect.DeepEqual(got, want) {
		t.Errorf("minimal RGs = %v, want %v", got, want)
	}
}

func TestMinimalRGsFig4c(t *testing.T) {
	g := fig4c(t)
	fam, err := MinimalRGs(g, MinimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := labelsOf(g, fam)
	// The paper: "the minimal RGs in Figure 4(c) are {ToR1 fails},
	// {Core1 fails, Core2 fails}, etc."
	want := [][]string{
		{"ToR1"},
		{"libc6"},
		{"Core1", "Core2"},
		{"libgcc1", "libsvn1"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("minimal RGs = %v, want %v", got, want)
	}
	for _, rg := range fam {
		if !IsMinimalRG(g, rg) {
			t.Errorf("%v is not a minimal RG", Labels(g, rg))
		}
	}
}

func TestMinimalRGsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(6), 1+r.Intn(7))
		exact, err := MinimalRGs(g, MinimalOptions{})
		if err != nil {
			return false
		}
		brute := BruteForceMinimalRGs(g, len(g.BasicEvents()))
		if len(exact) != len(brute) {
			return false
		}
		for i := range exact {
			if !reflect.DeepEqual(exact[i], brute[i]) {
				return false
			}
		}
		for _, rg := range exact {
			if !IsMinimalRG(g, rg) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMinimalRGsFinalMinimizeOnlyEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		g := randomDAG(r, 2+r.Intn(5), 1+r.Intn(5))
		a, err := MinimalRGs(g, MinimalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := MinimalRGs(g, MinimalOptions{FinalMinimizeOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("graph %d: per-node vs final-only minimization differ:\n%v\n%v",
				i, labelsOf(g, a), labelsOf(g, b))
		}
	}
}

func TestMinimalRGsKofN(t *testing.T) {
	b := faultgraph.NewBuilder()
	x := b.Basic("x")
	y := b.Basic("y")
	z := b.Basic("z")
	b.SetTop(b.GateK("top", 2, x, y, z))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fam, err := MinimalRGs(g, MinimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"x", "y"}, {"x", "z"}, {"y", "z"}}
	if got := labelsOf(g, fam); !reflect.DeepEqual(got, want) {
		t.Errorf("2-of-3 minimal RGs = %v, want %v", got, want)
	}
}

func TestMinimalRGsMaxSets(t *testing.T) {
	g := fig4c(t)
	if _, err := MinimalRGs(g, MinimalOptions{MaxSets: 1}); err == nil {
		t.Error("MaxSets=1 did not abort")
	}
}

func TestMinimalRGsMaxSizeSound(t *testing.T) {
	g := fig4c(t)
	fam, err := MinimalRGs(g, MinimalOptions{MaxSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"ToR1"}, {"libc6"}}
	if got := labelsOf(g, fam); !reflect.DeepEqual(got, want) {
		t.Errorf("MaxSize=1 RGs = %v, want %v", got, want)
	}
	for _, rg := range fam {
		if !IsMinimalRG(g, rg) {
			t.Errorf("%v not minimal", Labels(g, rg))
		}
	}
}

func TestMinimize(t *testing.T) {
	sets := []RG{
		{1, 2, 3},
		{2},
		{1, 3},
		{2, 4}, // superset of {2}
		{1, 3}, // duplicate
		{5},
	}
	got := Minimize(sets)
	want := []RG{{2}, {5}, {1, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Minimize = %v, want %v", got, want)
	}
	if Minimize(nil) != nil {
		t.Error("Minimize(nil) != nil")
	}
}

func TestMinimizeProperty(t *testing.T) {
	f := func(raw [][]uint8) bool {
		var sets []RG
		for _, xs := range raw {
			rg := make(RG, 0, len(xs))
			seen := map[faultgraph.NodeID]bool{}
			for _, x := range xs {
				id := faultgraph.NodeID(x % 10)
				if !seen[id] {
					seen[id] = true
					rg = append(rg, id)
				}
			}
			if len(rg) == 0 {
				continue
			}
			sortFamily([]RG{rg})
			// sort members
			for i := range rg {
				for j := i + 1; j < len(rg); j++ {
					if rg[j] < rg[i] {
						rg[i], rg[j] = rg[j], rg[i]
					}
				}
			}
			sets = append(sets, rg)
		}
		out := Minimize(sets)
		// 1. No member of out is subset of another.
		for i := range out {
			for j := range out {
				if i != j && out[i].subsetOf(out[j]) {
					return false
				}
			}
		}
		// 2. Every input set has a kept subset.
		for _, s := range sets {
			found := false
			for _, k := range out {
				if k.subsetOf(s) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestUnexpected(t *testing.T) {
	sets := []RG{{1}, {2, 3}, {4, 5, 6}}
	got := Unexpected(sets, 2)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Errorf("Unexpected(expected=2) = %v", got)
	}
	if got := Unexpected(sets, 4); len(got) != 3 {
		t.Errorf("Unexpected(expected=4) = %v", got)
	}
}

func TestFromLabelsAndProb(t *testing.T) {
	g := fig4a(t)
	rg, err := FromLabels(g, "A1", "A3", "A1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rg) != 2 {
		t.Fatalf("FromLabels dedup failed: %v", rg)
	}
	if !IsRG(g, rg) || !IsMinimalRG(g, rg) {
		t.Error("{A1,A3} should be a minimal RG")
	}
	if _, err := FromLabels(g, "nope"); err == nil {
		t.Error("FromLabels accepted unknown label")
	}
	if _, err := FromLabels(g, "E1 fails"); err == nil {
		t.Error("FromLabels accepted non-basic label")
	}
	if _, err := Prob(g, rg); err == nil {
		t.Error("Prob without probabilities should fail")
	}
}

func TestProb(t *testing.T) {
	g, err := faultgraph.FromSourceSets("T", 2, []faultgraph.SourceSet{
		{Source: "E1", Components: []string{"A1", "A2"}, Probs: map[string]float64{"A1": 0.1, "A2": 0.2}},
		{Source: "E2", Components: []string{"A2", "A3"}, Probs: map[string]float64{"A2": 0.2, "A3": 0.3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rg, err := FromLabels(g, "A1", "A3")
	if err != nil {
		t.Fatal(err)
	}
	p, err := Prob(g, rg)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.1*0.3 {
		t.Errorf("Prob = %v, want 0.03", p)
	}
}

func TestSamplerFindsAllOnSmallGraph(t *testing.T) {
	g := fig4c(t)
	fam, err := Sampler{Rounds: 4000, Shrink: true, Seed: 7}.Sample(g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := MinimalRGs(g, MinimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rate := DetectionRate(ref, fam); rate != 1 {
		t.Errorf("detection rate = %v, want 1 (found %v)", rate, labelsOf(g, fam))
	}
	for _, rg := range fam {
		if !IsMinimalRG(g, rg) {
			t.Errorf("shrunken sample %v not minimal", Labels(g, rg))
		}
	}
}

func TestSamplerWithoutShrinkSound(t *testing.T) {
	g := fig4c(t)
	fam, err := Sampler{Rounds: 500, Seed: 3}.Sample(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) == 0 {
		t.Fatal("no RGs sampled")
	}
	for _, rg := range fam {
		if !IsRG(g, rg) {
			t.Errorf("sampled %v is not an RG", Labels(g, rg))
		}
	}
}

func TestSamplerDeterministicBySeed(t *testing.T) {
	g := fig4c(t)
	a, err := Sampler{Rounds: 300, Shrink: true, Seed: 5}.Sample(g)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sampler{Rounds: 300, Shrink: true, Seed: 5}.Sample(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different families")
	}
	c, err := Sampler{Rounds: 300, Shrink: true, Seed: 6}.Sample(g)
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may or may not differ; just must not crash
}

func TestSamplerErrors(t *testing.T) {
	g := fig4a(t)
	if _, err := (Sampler{}).Sample(g); err == nil {
		t.Error("Rounds=0 accepted")
	}
	if _, err := (Sampler{Rounds: 1, Bias: 2}).Sample(g); err == nil {
		t.Error("Bias=2 accepted")
	}
	if _, err := (Sampler{Rounds: 1, UseEventProbs: true}).Sample(g); err == nil {
		t.Error("UseEventProbs without probabilities accepted")
	}
}

func TestSamplerUseEventProbs(t *testing.T) {
	g, err := faultgraph.FromSourceSets("T", 2, []faultgraph.SourceSet{
		{Source: "E1", Components: []string{"A1", "A2"}, Probs: map[string]float64{"A1": 0.5, "A2": 0.5}},
		{Source: "E2", Components: []string{"A2", "A3"}, Probs: map[string]float64{"A2": 0.5, "A3": 0.5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fam, err := Sampler{Rounds: 2000, Shrink: true, UseEventProbs: true, Seed: 11}.Sample(g)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := MinimalRGs(g, MinimalOptions{})
	if rate := DetectionRate(ref, fam); rate != 1 {
		t.Errorf("detection rate with event probs = %v", rate)
	}
}

func TestDetectionRate(t *testing.T) {
	ref := []RG{{1}, {2, 3}}
	if got := DetectionRate(ref, []RG{{1}}); got != 0.5 {
		t.Errorf("DetectionRate = %v, want 0.5", got)
	}
	if got := DetectionRate(ref, []RG{{1}, {2, 3}, {9}}); got != 1 {
		t.Errorf("DetectionRate = %v, want 1", got)
	}
	if got := DetectionRate(nil, nil); got != 1 {
		t.Errorf("DetectionRate(empty ref) = %v, want 1", got)
	}
}

func TestSubsetOf(t *testing.T) {
	cases := []struct {
		a, b RG
		want bool
	}{
		{RG{}, RG{1}, true},
		{RG{1}, RG{1}, true},
		{RG{1}, RG{1, 2}, true},
		{RG{1, 3}, RG{1, 2, 3}, true},
		{RG{1, 4}, RG{1, 2, 3}, false},
		{RG{1, 2, 3}, RG{1, 2}, false},
	}
	for i, c := range cases {
		if got := c.a.subsetOf(c.b); got != c.want {
			t.Errorf("case %d: %v ⊆ %v = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

// randomDAG builds a random fault graph for property tests.
func randomDAG(r *rand.Rand, nb, ng int) *faultgraph.Graph {
	b := faultgraph.NewBuilder()
	var ids []faultgraph.NodeID
	for i := 0; i < nb; i++ {
		ids = append(ids, b.Basic(string(rune('a'+i))))
	}
	for i := 0; i < ng; i++ {
		nkids := 1 + r.Intn(min(3, len(ids)))
		perm := r.Perm(len(ids))[:nkids]
		kids := make([]faultgraph.NodeID, nkids)
		for j, p := range perm {
			kids[j] = ids[p]
		}
		var id faultgraph.NodeID
		switch r.Intn(3) {
		case 0:
			id = b.Gate(string(rune('A'+i)), faultgraph.AND, kids...)
		case 1:
			id = b.Gate(string(rune('A'+i)), faultgraph.OR, kids...)
		default:
			id = b.GateK(string(rune('A'+i)), 1+r.Intn(nkids), kids...)
		}
		ids = append(ids, id)
	}
	b.SetTop(b.Gate("TOP", faultgraph.OR, ids[len(ids)-1]))
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
