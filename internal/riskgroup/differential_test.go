package riskgroup

// Differential tests: the bitset-backed engine (bitfamily.go) must produce
// exactly the families the original sorted-slice implementation produced.
// The reference implementations below are verbatim ports of the pre-bitset
// code paths, kept test-only.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"indaas/internal/faultgraph"
)

// refSubsetOf reports whether rg ⊆ other, both sorted (reference impl).
func refSubsetOf(rg, other RG) bool {
	if len(rg) > len(other) {
		return false
	}
	i := 0
	for _, id := range rg {
		for i < len(other) && other[i] < id {
			i++
		}
		if i >= len(other) || other[i] != id {
			return false
		}
		i++
	}
	return true
}

// refMinimize is the original slice-based absorption routine: dedup by
// string key, sort by size, counting-based absorption over posting lists.
func refMinimize(sets []RG) []RG {
	if len(sets) == 0 {
		return nil
	}
	seen := make(map[string]struct{}, len(sets))
	uniq := make([]RG, 0, len(sets))
	for _, s := range sets {
		k := s.key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		uniq = append(uniq, s)
	}
	sortFamily(uniq)
	var kept []RG
	for _, s := range uniq {
		absorbed := false
		for _, t := range kept {
			if len(t) < len(s) && refSubsetOf(t, s) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			kept = append(kept, s)
		}
	}
	return kept
}

// randomFamily builds a random family of RGs over a small universe.
func randomFamily(r *rand.Rand) []RG {
	n := r.Intn(30)
	sets := make([]RG, 0, n)
	for i := 0; i < n; i++ {
		size := 1 + r.Intn(6)
		members := map[faultgraph.NodeID]bool{}
		for len(members) < size {
			members[faultgraph.NodeID(r.Intn(12))] = true
		}
		rg := make(RG, 0, size)
		for id := range members {
			rg = append(rg, id)
		}
		sort.Slice(rg, func(a, b int) bool { return rg[a] < rg[b] })
		sets = append(sets, rg)
	}
	return sets
}

func TestMinimizeMatchesSliceReference(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		sets := randomFamily(r)
		got := Minimize(sets)
		want := refMinimize(sets)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("family %d: bitset Minimize = %v, slice reference = %v (input %v)", i, got, want, sets)
		}
	}
}

// TestMinimalRGsMatchesBruteForceWide re-checks the bitset MinimalRGs
// against subset enumeration on randomized DAGs wider than the base test,
// exercising multi-word bitsets (>64 basic events universes are covered by
// TestMinimizeMultiWord below; DAG building here stays small for brute
// force tractability).
func TestMinimalRGsMatchesBruteForceWide(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+r.Intn(8), 1+r.Intn(8))
		exact, err := MinimalRGs(g, MinimalOptions{})
		if err != nil {
			return false
		}
		brute := BruteForceMinimalRGs(g, len(g.BasicEvents()))
		return reflect.DeepEqual(exact, brute)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestMinimizeMultiWord exercises universes beyond one 64-bit word.
func TestMinimizeMultiWord(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		n := 5 + r.Intn(40)
		sets := make([]RG, 0, n)
		for j := 0; j < n; j++ {
			size := 1 + r.Intn(5)
			members := map[faultgraph.NodeID]bool{}
			for len(members) < size {
				members[faultgraph.NodeID(r.Intn(200))] = true // multi-word universe
			}
			rg := make(RG, 0, size)
			for id := range members {
				rg = append(rg, id)
			}
			sort.Slice(rg, func(a, b int) bool { return rg[a] < rg[b] })
			sets = append(sets, rg)
		}
		got := Minimize(sets)
		want := refMinimize(sets)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: bitset Minimize = %v, reference = %v", i, got, want)
		}
	}
}

// TestSamplerWorkersConverge: on small graphs with plenty of rounds, the
// single-threaded legacy path, the parallel path, and the exact algorithm
// must all land on the same (complete) minimal-RG family.
func TestSamplerWorkersConverge(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 12; i++ {
		g := randomDAG(r, 2+r.Intn(6), 1+r.Intn(6))
		exact, err := MinimalRGs(g, MinimalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		single, err := Sampler{Rounds: 6000, Shrink: true, Seed: 5, Workers: 1}.Sample(g)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Sampler{Rounds: 6000, Shrink: true, Seed: 5, Workers: 4}.Sample(g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(single, exact) {
			t.Errorf("graph %d: single-threaded sampler %v != exact %v", i, labelsOf(g, single), labelsOf(g, exact))
		}
		if !reflect.DeepEqual(parallel, exact) {
			t.Errorf("graph %d: parallel sampler %v != exact %v", i, labelsOf(g, parallel), labelsOf(g, exact))
		}
	}
}

// TestSamplerParallelDeterministic: a fixed (Seed, Workers) pair must yield
// identical families run-to-run, including with more workers than CPUs.
func TestSamplerParallelDeterministic(t *testing.T) {
	g := fig4cGraph(t)
	for _, workers := range []int{1, 2, 3, 8} {
		a, err := Sampler{Rounds: 500, Shrink: true, Seed: 9, Workers: workers}.Sample(g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Sampler{Rounds: 500, Shrink: true, Seed: 9, Workers: workers}.Sample(g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("workers=%d: same (Seed, Workers) produced different families", workers)
		}
	}
}

// TestSamplerDetectionMonotoneInRounds: for fixed (Seed, Workers), growing
// the round count only extends each worker's sample stream, so the detected
// family must be a superset of the smaller run's (the property Fig. 7's
// Verify relies on).
func TestSamplerDetectionMonotoneInRounds(t *testing.T) {
	g := fig4cGraph(t)
	for _, workers := range []int{1, 3} {
		var prev []RG
		for _, rounds := range []int{50, 200, 800} {
			fam, err := Sampler{Rounds: rounds, Shrink: true, Seed: 3, Workers: workers}.Sample(g)
			if err != nil {
				t.Fatal(err)
			}
			for _, rg := range prev {
				found := false
				for _, s := range fam {
					if reflect.DeepEqual(rg, s) {
						found = true
						break
					}
				}
				// A previously detected RG may only disappear if something
				// smaller absorbed it in the bigger run's Minimize.
				if !found {
					absorbed := false
					for _, s := range fam {
						if refSubsetOf(s, rg) {
							absorbed = true
							break
						}
					}
					if !absorbed {
						t.Errorf("workers=%d: RG %v detected at fewer rounds lost at %d rounds", workers, rg, rounds)
					}
				}
			}
			prev = fam
		}
	}
}

// TestSamplerWorkersBeyondRounds: more workers than rounds must not hang or
// misbehave.
func TestSamplerWorkersBeyondRounds(t *testing.T) {
	g := fig4cGraph(t)
	fam, err := Sampler{Rounds: 3, Shrink: true, Seed: 1, Workers: 16}.Sample(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, rg := range fam {
		if !IsMinimalRG(g, rg) {
			t.Errorf("%v not minimal", Labels(g, rg))
		}
	}
}

// fig4cGraph rebuilds the Fig. 4c graph without the testing.T helper
// signature used by the main test file.
func fig4cGraph(t *testing.T) *faultgraph.Graph {
	t.Helper()
	return fig4c(t)
}

// TestEvaluatorMatchesEvaluate cross-checks the incremental evaluator
// against Graph.Evaluate over random flip sequences.
func TestEvaluatorMatchesEvaluate(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 30; i++ {
		g := randomDAG(r, 2+r.Intn(7), 1+r.Intn(7))
		ev := g.NewEvaluator()
		a := g.NewAssignment()
		basics := g.BasicEvents()
		for _, id := range basics {
			a[id] = r.Intn(2) == 0
		}
		want := g.Evaluate(append(faultgraph.Assignment(nil), a...))
		if got := ev.EvalBasics(a); got != want {
			t.Fatalf("graph %d: EvalBasics = %v, Evaluate = %v", i, got, want)
		}
		for flip := 0; flip < 50; flip++ {
			id := basics[r.Intn(len(basics))]
			a[id] = !a[id]
			ev.SetBasic(id, a[id])
			want := g.Evaluate(append(faultgraph.Assignment(nil), a...))
			if got := ev.TopFailed(); got != want {
				t.Fatalf("graph %d flip %d: TopFailed = %v, Evaluate = %v", i, flip, got, want)
			}
		}
	}
}
