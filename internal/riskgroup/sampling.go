package riskgroup

import (
	"context"
	"encoding/binary"
	"fmt"
	"indaas/internal/telemetry"
	"math/rand"
	"runtime"
	"sync"

	"indaas/internal/faultgraph"
)

// Sampler implements the failure sampling algorithm of §4.1.2: each round
// assigns random failures to basic events (fair coin flips by default),
// propagates them bottom-up, and, when the top event fails, records the
// failed basic events as an RG.
//
// The algorithm runs in time linear in the graph size per round, is
// non-deterministic (seeded here for reproducibility), and cannot guarantee
// its RGs are minimal. With Shrink enabled each failing sample is greedily
// reduced to an irreducible — hence minimal — RG before aggregation, which
// is how "% of minimal RGs detected" (Fig. 7) is measured.
//
// Rounds are partitioned across Workers goroutines, each with its own
// generator and reusable scratch state, so sampling scales with cores while
// remaining reproducible: the detected family is a deterministic function of
// (Seed, Workers) on any machine.
type Sampler struct {
	// Rounds is the number of sampling rounds (paper: 10³–10⁷).
	Rounds int
	// Bias is the per-event failure probability of the coin flip.
	// 0 means the default fair coin (0.5).
	Bias float64
	// UseEventProbs flips each basic event with its own failure probability
	// instead of Bias (ablation; requires probabilities on all events).
	UseEventProbs bool
	// Shrink greedily minimizes each failing sample.
	Shrink bool
	// Seed seeds the random generators. Seed==0 means the fixed default
	// seed 1 — the zero value samples reproducibly, it does not randomize.
	// Worker w (0-based) draws from its own generator seeded Seed+w; note
	// that sweeping nearby seeds with Workers>1 therefore reuses worker
	// streams across runs (run Seed and Seed+1 share Workers−1 generator
	// seeds), so use well-separated seeds when runs must be statistically
	// independent.
	Seed int64
	// Workers is the number of concurrent sampling goroutines. 0 (or any
	// negative value) means runtime.GOMAXPROCS(0) — fastest, but the
	// detected family then depends on the host's CPU count; fix Workers
	// explicitly for output that reproduces across machines. Workers==1
	// retains the single-threaded path, whose output is identical to the
	// historical sequential sampler for a given Seed.
	Workers int
}

// Sample runs the sampler on g and returns the deduplicated family of
// detected RGs, sorted by size then lexicographically. With Shrink the
// family is additionally minimized (every member verified irreducible).
func (s Sampler) Sample(g *faultgraph.Graph) ([]RG, error) {
	return s.SampleContext(context.Background(), g)
}

// SampleContext is Sample under a context. Every worker goroutine polls the
// context once per sampleCheckInterval rounds: on cancellation all workers
// exit promptly (typically within a millisecond of sampling work), their
// partial families are discarded, and the call returns ctx.Err() with a nil
// family. Cancellation observed only after every round completed still
// reports ctx.Err(), matching the usual Go convention that a canceled call
// never returns a result.
func (s Sampler) SampleContext(ctx context.Context, g *faultgraph.Graph) ([]RG, error) {
	if s.Rounds <= 0 {
		return nil, fmt.Errorf("riskgroup: Sampler.Rounds must be positive, got %d", s.Rounds)
	}
	bias := s.Bias
	if bias == 0 {
		bias = 0.5
	}
	if bias < 0 || bias > 1 {
		return nil, fmt.Errorf("riskgroup: Sampler.Bias %v out of [0,1]", bias)
	}
	basics := g.BasicEvents()
	probs := make([]float64, len(basics))
	for i, id := range basics {
		if s.UseEventProbs {
			n := g.Node(id)
			if !n.HasProb() {
				return nil, fmt.Errorf("riskgroup: UseEventProbs set but event %q has no probability", n.Label)
			}
			probs[i] = n.Prob
		} else {
			probs[i] = bias
		}
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > s.Rounds {
		workers = s.Rounds
	}

	tr := telemetry.FromContext(ctx)
	defer tr.Start("sampling")()

	// Worker w samples ceil((Rounds−w)/workers) rounds from generator
	// Seed+w: the rounds a striped n≡w (mod workers) split would assign it.
	// Growing Rounds with (Seed, Workers) fixed only extends each worker's
	// stream, so detected families grow monotonically with the round count,
	// matching the sequential sampler's behavior on Fig. 7 curves.
	results := make([][]RG, workers)
	if workers == 1 {
		results[0] = sampleRounds(ctx, g, basics, probs, seed, s.Rounds, s.Shrink)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			share := (s.Rounds - w + workers - 1) / workers
			if share == 0 {
				continue
			}
			wg.Add(1)
			go func(w, share int) {
				defer wg.Done()
				results[w] = sampleRounds(ctx, g, basics, probs, seed+int64(w), share, s.Shrink)
			}(w, share)
		}
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Merge in worker order, deduplicating across workers; the final
	// canonical sort makes the outcome independent of scheduling anyway.
	seen := make(map[string]struct{})
	var out []RG
	for _, part := range results {
		for _, rg := range part {
			k := rg.key()
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, rg)
		}
	}
	if s.Shrink {
		// Graph-aware minimize: bitsets over basic ranks, not raw node IDs.
		out = minimizeFamily(graphIndexer{g: g}, out)
	}
	sortFamily(out)
	tr.Add("rounds_sampled", int64(s.Rounds))
	tr.Add("rgs_found", int64(len(out)))
	return out, nil
}

// sampleCheckInterval is how many rounds a sampling worker runs between
// context polls: a round costs microseconds, so cancellation lands within
// about a millisecond without the context's mutex showing up in profiles.
const sampleCheckInterval = 256

// sampleRounds is one worker's sampling loop. All per-round state — the
// assignment, the failed/shuffle/shrink buffers, the dedup key — is reused
// across rounds; the only allocations are one copy per unique detected RG.
// On context cancellation the worker abandons its remaining rounds and
// returns early; the caller discards the partial family.
func sampleRounds(ctx context.Context, g *faultgraph.Graph, basics []faultgraph.NodeID, probs []float64, seed int64, rounds int, shrink bool) []RG {
	rng := rand.New(rand.NewSource(seed))
	ev := g.NewEvaluator()
	a := g.AcquireAssignment()
	defer g.ReleaseAssignment(a)
	failed := make(RG, 0, len(basics))
	shuffled := make(RG, 0, len(basics))
	kept := make(RG, 0, len(basics))
	keybuf := make([]byte, 0, 4*len(basics))
	seen := make(map[string]struct{})
	var out []RG
	for round := 0; round < rounds; round++ {
		if round%sampleCheckInterval == 0 && ctx.Err() != nil {
			return nil
		}
		failed = failed[:0]
		for i, id := range basics {
			f := rng.Float64() < probs[i]
			a[id] = f
			if f {
				failed = append(failed, id)
			}
		}
		if len(failed) == 0 || !ev.EvalBasics(a) {
			continue
		}
		rg := failed
		if shrink {
			// Shrink in random order: a fixed removal order would collapse
			// most samples onto the same few minimal RGs and cripple the
			// detection rate on graphs with many cuts (Fig. 7). Removal
			// trials flip one event at a time, so the incremental evaluator
			// answers each in time proportional to the affected ancestors
			// instead of re-walking the whole graph.
			shuffled = append(shuffled[:0], failed...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			kept = kept[:0]
			for _, id := range shuffled {
				ev.SetBasic(id, false)
				if !ev.TopFailed() {
					ev.SetBasic(id, true) // necessary: keep it
					kept = append(kept, id)
				}
			}
			rg = kept
			sortRG(rg)
		}
		keybuf = keybuf[:0]
		for _, id := range rg {
			keybuf = binary.LittleEndian.AppendUint32(keybuf, uint32(id))
		}
		if _, ok := seen[string(keybuf)]; ok { // no allocation: key lookup only
			continue
		}
		cp := make(RG, len(rg))
		copy(cp, rg)
		seen[string(keybuf)] = struct{}{}
		out = append(out, cp)
	}
	return out
}

// sortRG orders an RG's members ascending (shrink output follows the
// randomized removal order).
func sortRG(rg RG) {
	for i := 1; i < len(rg); i++ {
		for j := i; j > 0 && rg[j] < rg[j-1]; j-- {
			rg[j], rg[j-1] = rg[j-1], rg[j]
		}
	}
}

// DetectionRate reports what fraction of the reference minimal RGs appear in
// the detected family (Fig. 7's y-axis). Both families should be families of
// minimal RGs (use Shrink when sampling). Nil or empty families are fine:
// an empty reference counts as fully detected, an empty detected family
// scores zero without allocating.
func DetectionRate(reference, detected []RG) float64 {
	if len(reference) == 0 {
		return 1
	}
	if len(detected) == 0 {
		return 0
	}
	idx := make(map[string]struct{}, len(detected))
	for _, rg := range detected {
		idx[rg.key()] = struct{}{}
	}
	hit := 0
	for _, rg := range reference {
		if _, ok := idx[rg.key()]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(reference))
}
