package riskgroup

import (
	"fmt"
	"math/rand"

	"indaas/internal/faultgraph"
)

// Sampler implements the failure sampling algorithm of §4.1.2: each round
// assigns random failures to basic events (fair coin flips by default),
// propagates them bottom-up, and, when the top event fails, records the
// failed basic events as an RG.
//
// The algorithm runs in time linear in the graph size per round, is
// non-deterministic (seeded here for reproducibility), and cannot guarantee
// its RGs are minimal. With Shrink enabled each failing sample is greedily
// reduced to an irreducible — hence minimal — RG before aggregation, which
// is how "% of minimal RGs detected" (Fig. 7) is measured.
type Sampler struct {
	// Rounds is the number of sampling rounds (paper: 10³–10⁷).
	Rounds int
	// Bias is the per-event failure probability of the coin flip.
	// 0 means the default fair coin (0.5).
	Bias float64
	// UseEventProbs flips each basic event with its own failure probability
	// instead of Bias (ablation; requires probabilities on all events).
	UseEventProbs bool
	// Shrink greedily minimizes each failing sample.
	Shrink bool
	// Seed seeds the random generator; 0 means a fixed default.
	Seed int64
}

// Sample runs the sampler on g and returns the deduplicated family of
// detected RGs, sorted by size then lexicographically. With Shrink the
// family is additionally minimized (every member verified irreducible).
func (s Sampler) Sample(g *faultgraph.Graph) ([]RG, error) {
	if s.Rounds <= 0 {
		return nil, fmt.Errorf("riskgroup: Sampler.Rounds must be positive, got %d", s.Rounds)
	}
	bias := s.Bias
	if bias == 0 {
		bias = 0.5
	}
	if bias < 0 || bias > 1 {
		return nil, fmt.Errorf("riskgroup: Sampler.Bias %v out of [0,1]", bias)
	}
	basics := g.BasicEvents()
	if s.UseEventProbs {
		for _, id := range basics {
			if !g.Node(id).HasProb() {
				return nil, fmt.Errorf("riskgroup: UseEventProbs set but event %q has no probability", g.Node(id).Label)
			}
		}
	}
	seed := s.Seed
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	a := g.NewAssignment()
	seen := make(map[string]struct{})
	var out []RG
	for round := 0; round < s.Rounds; round++ {
		var failed RG
		for _, id := range basics {
			p := bias
			if s.UseEventProbs {
				p = g.Node(id).Prob
			}
			f := rng.Float64() < p
			a[id] = f
			if f {
				failed = append(failed, id)
			}
		}
		if len(failed) == 0 || !g.Evaluate(a) {
			continue
		}
		rg := failed
		if s.Shrink {
			// Shrink in random order: a fixed removal order would collapse
			// most samples onto the same few minimal RGs and cripple the
			// detection rate on graphs with many cuts (Fig. 7).
			shuffled := append(RG(nil), failed...)
			rng.Shuffle(len(shuffled), func(i, j int) {
				shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
			})
			rg = shrink(g, a, shuffled)
			sortRG(rg)
			// shrink leaves a dirty; reset the survivors' flags after copy.
			for _, id := range failed {
				a[id] = false
			}
		}
		cp := make(RG, len(rg))
		copy(cp, rg)
		k := cp.key()
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, cp)
	}
	if s.Shrink {
		out = Minimize(out)
	}
	sortFamily(out)
	return out, nil
}

// sortRG orders an RG's members ascending (shrink output follows the
// randomized removal order).
func sortRG(rg RG) {
	for i := 1; i < len(rg); i++ {
		for j := i; j > 0 && rg[j] < rg[j-1]; j-- {
			rg[j], rg[j-1] = rg[j-1], rg[j]
		}
	}
}

// shrink greedily removes events from a failing assignment while the top
// event keeps failing, yielding an irreducible (minimal) RG contained in the
// sample. a must reflect exactly the failures in failed.
func shrink(g *faultgraph.Graph, a faultgraph.Assignment, failed RG) RG {
	kept := make(RG, 0, len(failed))
	remaining := append(RG(nil), failed...)
	for i := 0; i < len(remaining); i++ {
		id := remaining[i]
		a[id] = false
		if !g.Evaluate(a) {
			a[id] = true // necessary: keep it
			kept = append(kept, id)
		}
	}
	return kept
}

// DetectionRate reports what fraction of the reference minimal RGs appear in
// the detected family (Fig. 7's y-axis). Both families should be families of
// minimal RGs (use Shrink when sampling).
func DetectionRate(reference, detected []RG) float64 {
	if len(reference) == 0 {
		return 1
	}
	idx := make(map[string]struct{}, len(detected))
	for _, rg := range detected {
		idx[rg.key()] = struct{}{}
	}
	hit := 0
	for _, rg := range reference {
		if _, ok := idx[rg.key()]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(reference))
}
