// Package riskgroup determines risk groups (RGs) in fault graphs (§4.1.2).
//
// An RG is a set of basic failure events whose simultaneous occurrence fires
// the top event. A minimal RG stops being an RG if any member is removed —
// minimal RGs are the fault-tree "minimal cut sets" of the deployment.
//
// Two pluggable algorithms are provided, mirroring the paper:
//
//   - MinimalRGs: exact bottom-up cut-set computation (NP-hard in general);
//   - Sampler: Monte-Carlo failure sampling — linear per round, fast,
//     non-deterministic and possibly incomplete.
package riskgroup

import (
	"encoding/binary"
	"fmt"
	"sort"

	"indaas/internal/faultgraph"
)

// RG is a risk group: a set of basic events, held as sorted node IDs.
type RG []faultgraph.NodeID

// key returns a compact unique byte-string for map keys.
func (rg RG) key() string {
	buf := make([]byte, 4*len(rg))
	for i, id := range rg {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(id))
	}
	return string(buf)
}

// subsetOf reports whether rg ⊆ other, both sorted.
func (rg RG) subsetOf(other RG) bool {
	if len(rg) > len(other) {
		return false
	}
	i := 0
	for _, id := range rg {
		for i < len(other) && other[i] < id {
			i++
		}
		if i >= len(other) || other[i] != id {
			return false
		}
		i++
	}
	return true
}

// Labels maps an RG to its sorted component labels.
func Labels(g *faultgraph.Graph, rg RG) []string {
	return g.SortedLabels([]faultgraph.NodeID(rg))
}

// FromLabels builds an RG from basic-event labels. Unknown or non-basic
// labels yield an error.
func FromLabels(g *faultgraph.Graph, labels ...string) (RG, error) {
	rg := make(RG, 0, len(labels))
	for _, l := range labels {
		id, ok := g.Lookup(l)
		if !ok {
			return nil, fmt.Errorf("riskgroup: unknown event %q", l)
		}
		if g.Node(id).Gate != faultgraph.Basic {
			return nil, fmt.Errorf("riskgroup: event %q is not basic", l)
		}
		rg = append(rg, id)
	}
	sort.Slice(rg, func(i, j int) bool { return rg[i] < rg[j] })
	// Dedup.
	out := rg[:0]
	for i, id := range rg {
		if i == 0 || rg[i-1] != id {
			out = append(out, id)
		}
	}
	return out, nil
}

// IsRG verifies by evaluation that rg actually fails the top event.
func IsRG(g *faultgraph.Graph, rg RG) bool {
	a := g.AcquireAssignment()
	for _, id := range rg {
		a[id] = true
	}
	res := g.Evaluate(a)
	g.ReleaseAssignment(a)
	return res
}

// IsMinimalRG verifies that rg is an RG and that removing any single member
// stops it being one.
func IsMinimalRG(g *faultgraph.Graph, rg RG) bool {
	if !IsRG(g, rg) {
		return false
	}
	a := g.AcquireAssignment()
	defer g.ReleaseAssignment(a)
	for _, id := range rg {
		a[id] = true
	}
	for _, id := range rg {
		a[id] = false
		if g.Evaluate(a) {
			return false
		}
		a[id] = true
	}
	return true
}

// Minimize removes duplicates and non-minimal sets from a family of RGs:
// any RG that is a superset of another RG in the family is dropped
// (absorption). The result is sorted by size, then lexicographically.
//
// The work happens on dense bitsets (see bitfamily.go); the member IDs
// themselves index the bit universe, so no graph is needed.
func Minimize(sets []RG) []RG {
	return minimizeFamily(graphIndexer{}, sets)
}

// minimizeFamily is the shared entry behind Minimize: with a graph-backed
// indexer the bit universe is the compact basic-event rank space; without
// one it falls back to raw node IDs.
func minimizeFamily(ix graphIndexer, sets []RG) []RG {
	if len(sets) == 0 {
		return nil
	}
	ctx := newMinCtx(ix.width(sets))
	fam := make([]brg, len(sets))
	for i, s := range sets {
		fam[i] = ctx.toBrg(ix, s)
	}
	return ix.toFamily(ctx.minimize(fam))
}

// sortFamily orders RGs by size then lexicographically by member IDs.
func sortFamily(sets []RG) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Unexpected returns the RGs smaller than the expected redundancy level
// (§1: an unexpected RG is "a smaller than expected RG, whose failure could
// disable the whole service despite redundancy efforts").
func Unexpected(sets []RG, expected int) []RG {
	var out []RG
	for _, s := range sets {
		if len(s) < expected {
			out = append(out, s)
		}
	}
	return out
}

// Prob returns the probability that all events of rg fail simultaneously,
// assuming independent basic events. Every member must carry a probability.
func Prob(g *faultgraph.Graph, rg RG) (float64, error) {
	p := 1.0
	for _, id := range rg {
		n := g.Node(id)
		if !n.HasProb() {
			return 0, fmt.Errorf("riskgroup: event %q has no probability", n.Label)
		}
		p *= n.Prob
	}
	return p, nil
}
