package ranking

import (
	"math/rand"
	"sort"

	"indaas/internal/faultgraph"
	"indaas/internal/riskgroup"
)

// karpLuby estimates Pr(⋃_i "all events of fam[i] fail") — the top-event
// probability given its minimal-RG family — with the Karp–Luby coverage
// estimator for DNF probability. Unlike naive Monte Carlo it remains
// accurate when the union probability is tiny.
//
// Let w_i = Pr(C_i) (product of member probabilities) and W = Σ w_i.
// Each sample draws a clause i with probability w_i/W, then an assignment x
// of the *involved* events conditioned on C_i being satisfied; the unbiased
// estimate is W · E[1/N(x)] where N(x) counts the clauses satisfied by x.
func karpLuby(g *faultgraph.Graph, fam []riskgroup.RG, samples int, seed int64) float64 {
	// Involved events, densely renumbered.
	index := make(map[faultgraph.NodeID]int)
	var events []faultgraph.NodeID
	for _, rg := range fam {
		for _, id := range rg {
			if _, ok := index[id]; !ok {
				index[id] = len(events)
				events = append(events, id)
			}
		}
	}
	probs := make([]float64, len(events))
	for i, id := range events {
		probs[i] = g.Node(id).Prob
	}
	clauses := make([][]int, len(fam))
	// clausesByEvent lets N(x) be computed by scanning only clauses that
	// could be satisfied; for dense families this is still O(Σ|C|) worst
	// case, so we simply scan all clauses with early exit per clause.
	weights := make([]float64, len(fam))
	cum := make([]float64, len(fam))
	total := 0.0
	for i, rg := range fam {
		c := make([]int, len(rg))
		w := 1.0
		for j, id := range rg {
			c[j] = index[id]
			w *= g.Node(id).Prob
		}
		clauses[i] = c
		weights[i] = w
		total += w
		cum[i] = total
	}
	if total == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]bool, len(events))
	sum := 0.0
	for s := 0; s < samples; s++ {
		// Draw clause i ∝ w_i.
		t := rng.Float64() * total
		i := sort.SearchFloat64s(cum, t)
		if i >= len(cum) {
			i = len(cum) - 1
		}
		// Draw assignment conditioned on clause i satisfied.
		for e := range x {
			x[e] = rng.Float64() < probs[e]
		}
		for _, e := range clauses[i] {
			x[e] = true
		}
		// Count satisfied clauses.
		n := 0
		for _, c := range clauses {
			sat := true
			for _, e := range c {
				if !x[e] {
					sat = false
					break
				}
			}
			if sat {
				n++
			}
		}
		sum += 1 / float64(n) // n ≥ 1: clause i is satisfied by construction
	}
	p := total * sum / float64(samples)
	if p > 1 {
		p = 1
	}
	return p
}

// KarpLubyEstimate exposes the estimator with explicit sample count and seed
// for the accuracy/cost ablation bench.
func KarpLubyEstimate(g *faultgraph.Graph, fam []riskgroup.RG, samples int, seed int64) float64 {
	if len(fam) == 0 || samples <= 0 {
		return 0
	}
	return karpLuby(g, fam, samples, seed)
}
