package ranking

import (
	"math/rand"
	"sort"

	"indaas/internal/bitset"
	"indaas/internal/faultgraph"
	"indaas/internal/riskgroup"
)

// karpLuby estimates Pr(⋃_i "all events of fam[i] fail") — the top-event
// probability given its minimal-RG family — with the Karp–Luby coverage
// estimator for DNF probability. Unlike naive Monte Carlo it remains
// accurate when the union probability is tiny.
//
// Let w_i = Pr(C_i) (product of member probabilities) and W = Σ w_i.
// Each sample draws a clause i with probability w_i/W, then an assignment x
// of the *involved* events conditioned on C_i being satisfied; the unbiased
// estimate is W · E[1/N(x)] where N(x) counts the clauses satisfied by x.
func karpLuby(g *faultgraph.Graph, fam []riskgroup.RG, samples int, seed int64) float64 {
	// Involved events, densely renumbered.
	index := make(map[faultgraph.NodeID]int)
	var events []faultgraph.NodeID
	for _, rg := range fam {
		for _, id := range rg {
			if _, ok := index[id]; !ok {
				index[id] = len(events)
				events = append(events, id)
			}
		}
	}
	probs := make([]float64, len(events))
	for i, id := range events {
		probs[i] = g.Node(id).Prob
	}
	// Clauses as dense bitsets over the involved events: "clause satisfied
	// by x" becomes a word-wise subset test, so N(x) costs a few words per
	// clause instead of a member-by-member scan.
	clauses := make([]bitset.Set, len(fam))
	weights := make([]float64, len(fam))
	cum := make([]float64, len(fam))
	total := 0.0
	for i, rg := range fam {
		c := bitset.New(len(events))
		w := 1.0
		for _, id := range rg {
			c.Set(index[id])
			w *= g.Node(id).Prob
		}
		clauses[i] = c
		weights[i] = w
		total += w
		cum[i] = total
	}
	if total == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	x := bitset.New(len(events))
	sum := 0.0
	for s := 0; s < samples; s++ {
		// Draw clause i ∝ w_i.
		t := rng.Float64() * total
		i := sort.SearchFloat64s(cum, t)
		if i >= len(cum) {
			i = len(cum) - 1
		}
		// Draw assignment conditioned on clause i satisfied.
		x.Reset()
		for e := range probs {
			if rng.Float64() < probs[e] {
				x.Set(e)
			}
		}
		x.Or(clauses[i])
		// Count satisfied clauses.
		n := 0
		for _, c := range clauses {
			if c.SubsetOf(x) {
				n++
			}
		}
		sum += 1 / float64(n) // n ≥ 1: clause i is satisfied by construction
	}
	p := total * sum / float64(samples)
	if p > 1 {
		p = 1
	}
	return p
}

// KarpLubyEstimate exposes the estimator with explicit sample count and seed
// for the accuracy/cost ablation bench.
func KarpLubyEstimate(g *faultgraph.Graph, fam []riskgroup.RG, samples int, seed int64) float64 {
	if len(fam) == 0 || samples <= 0 {
		return 0
	}
	return karpLuby(g, fam, samples, seed)
}
