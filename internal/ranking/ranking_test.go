package ranking

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"indaas/internal/faultgraph"
	"indaas/internal/riskgroup"
)

// fig4b builds the weighted Fig. 4b example: E1={A1,A2}, E2={A2,A3},
// Pr(A1)=0.1, Pr(A2)=0.2, Pr(A3)=0.3.
func fig4b(t *testing.T) (*faultgraph.Graph, []riskgroup.RG) {
	t.Helper()
	probs := map[string]float64{"A1": 0.1, "A2": 0.2, "A3": 0.3}
	g, err := faultgraph.FromSourceSets("T", 2, []faultgraph.SourceSet{
		{Source: "E1", Components: []string{"A1", "A2"}, Probs: probs},
		{Source: "E2", Components: []string{"A2", "A3"}, Probs: probs},
	})
	if err != nil {
		t.Fatal(err)
	}
	fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return g, fam
}

func TestTopProbFig4b(t *testing.T) {
	g, fam := fig4b(t)
	// Paper: Pr(T) = 0.1·0.3 + 0.2 − 0.1·0.3·0.2 = 0.224.
	p, err := TopProb(g, fam)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.224) > 1e-12 {
		t.Errorf("Pr(T) = %v, want 0.224", p)
	}
}

func TestByProbFig4b(t *testing.T) {
	g, fam := fig4b(t)
	ranked, topProb, err := ByProb(g, fam)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(topProb-0.224) > 1e-12 {
		t.Fatalf("topProb = %v", topProb)
	}
	// Paper: I({A2}) = 0.2/0.224 = 0.8929, I({A1,A3}) = 0.03/0.224 = 0.1339.
	if len(ranked) != 2 {
		t.Fatalf("ranked %d RGs, want 2", len(ranked))
	}
	if !reflect.DeepEqual(ranked[0].Labels, []string{"A2"}) {
		t.Errorf("top-ranked RG = %v, want {A2}", ranked[0].Labels)
	}
	if math.Abs(ranked[0].Importance-0.2/0.224) > 1e-9 {
		t.Errorf("I({A2}) = %v, want %v", ranked[0].Importance, 0.2/0.224)
	}
	if math.Abs(ranked[1].Importance-0.03/0.224) > 1e-9 {
		t.Errorf("I({A1,A3}) = %v, want %v", ranked[1].Importance, 0.03/0.224)
	}
	if math.Abs(ranked[0].Importance-0.8929) > 1e-4 || math.Abs(ranked[1].Importance-0.1339) > 1e-4 {
		t.Errorf("importances %.4f/%.4f do not match the paper's 0.8929/0.1339",
			ranked[0].Importance, ranked[1].Importance)
	}
}

func TestBySize(t *testing.T) {
	g, fam := fig4b(t)
	ranked := BySize(g, fam)
	if len(ranked) != 2 || ranked[0].Size != 1 || ranked[1].Size != 2 {
		t.Fatalf("BySize sizes = %v", ranked)
	}
	if !reflect.DeepEqual(ranked[0].Labels, []string{"A2"}) {
		t.Errorf("smallest RG = %v", ranked[0].Labels)
	}
	if !math.IsNaN(ranked[0].Prob) || !math.IsNaN(ranked[0].Importance) {
		t.Error("size ranking should not carry probabilities")
	}
}

func TestBySizeDeterministicTieBreak(t *testing.T) {
	b := faultgraph.NewBuilder()
	z := b.Basic("z")
	aa := b.Basic("aa")
	m := b.Basic("m")
	e1 := b.Gate("E1", faultgraph.OR, z, aa, m)
	b.SetTop(b.Gate("T", faultgraph.AND, e1))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ranked := BySize(g, fam)
	var got []string
	for _, r := range ranked {
		got = append(got, r.Labels[0])
	}
	if !reflect.DeepEqual(got, []string{"aa", "m", "z"}) {
		t.Errorf("tie break order = %v", got)
	}
}

func TestTopProbAgainstExactEnumeration(t *testing.T) {
	// Random small weighted graphs: inclusion-exclusion over minimal RGs
	// must equal brute-force probability enumeration.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 25; trial++ {
		g := randomWeightedDAG(rng, 2+rng.Intn(6), 1+rng.Intn(6))
		fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := g.TopProbExact()
		if err != nil {
			t.Fatal(err)
		}
		got, err := TopProb(g, fam)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("trial %d: inclusion-exclusion %v != exact %v", trial, got, want)
		}
	}
}

func TestTopProbEmptyFamily(t *testing.T) {
	g, _ := fig4b(t)
	p, err := TopProb(g, nil)
	if err != nil || p != 0 {
		t.Errorf("TopProb(empty) = %v, %v", p, err)
	}
}

func TestTopProbMissingProbability(t *testing.T) {
	g, err := faultgraph.FromSourceSets("T", 1, []faultgraph.SourceSet{
		{Source: "E1", Components: []string{"A1"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TopProb(g, fam); err == nil {
		t.Error("TopProb accepted unweighted events")
	}
}

func TestBonferroniBoundsBracketExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		g := randomWeightedDAG(rng, 3+rng.Intn(5), 1+rng.Intn(5))
		fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		exact, err := g.TopProbExact()
		if err != nil {
			t.Fatal(err)
		}
		for depth := 1; depth <= 4; depth++ {
			lo, hi := BonferroniBounds(g, fam, depth)
			if exact < lo-1e-9 || exact > hi+1e-9 {
				t.Errorf("trial %d depth %d: exact %v outside [%v, %v]", trial, depth, exact, lo, hi)
			}
		}
	}
}

func TestTopProbLargeFamilyFallback(t *testing.T) {
	// A graph with > MaxExactRGs minimal RGs triggers the Bonferroni
	// midpoint path; with small probabilities the bracket is tight.
	b := faultgraph.NewBuilder()
	var e1kids, e2kids []faultgraph.NodeID
	for i := 0; i < 25; i++ {
		e1kids = append(e1kids, b.BasicProb(labelN("x", i), 0.01))
		e2kids = append(e2kids, b.BasicProb(labelN("y", i), 0.01))
	}
	e1 := b.Gate("E1", faultgraph.OR, e1kids...)
	e2 := b.Gate("E2", faultgraph.OR, e2kids...)
	b.SetTop(b.Gate("T", faultgraph.AND, e1, e2))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 625 {
		t.Fatalf("family size %d, want 625", len(fam))
	}
	got, err := TopProb(g, fam)
	if err != nil {
		t.Fatal(err)
	}
	// True Pr(T) = (1 - 0.99^25)^2. Karp-Luby at 10^5 samples has standard
	// error well below 1e-3 here.
	q := 1 - math.Pow(0.99, 25)
	want := q * q
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("fallback TopProb = %v, want ≈ %v", got, want)
	}
}

func TestKarpLubyMatchesExactOnSmallFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := randomWeightedDAG(rng, 3+rng.Intn(4), 1+rng.Intn(4))
		fam, err := riskgroup.MinimalRGs(g, riskgroup.MinimalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(fam) == 0 {
			continue
		}
		exact, err := g.TopProbExact()
		if err != nil {
			t.Fatal(err)
		}
		est := KarpLubyEstimate(g, fam, 200_000, int64(trial+1))
		if math.Abs(est-exact) > 0.01 {
			t.Errorf("trial %d: Karp-Luby %v vs exact %v", trial, est, exact)
		}
	}
}

func TestKarpLubyEdgeCases(t *testing.T) {
	g, fam := fig4b(t)
	if got := KarpLubyEstimate(g, nil, 100, 1); got != 0 {
		t.Errorf("empty family estimate = %v", got)
	}
	if got := KarpLubyEstimate(g, fam, 0, 1); got != 0 {
		t.Errorf("zero samples estimate = %v", got)
	}
	a := KarpLubyEstimate(g, fam, 5000, 9)
	b := KarpLubyEstimate(g, fam, 5000, 9)
	if a != b {
		t.Error("same seed gave different estimates")
	}
}

func TestScore(t *testing.T) {
	ranked := []Ranked{
		{Size: 1, Importance: 0.8},
		{Size: 2, Importance: 0.15},
		{Size: 2, Importance: 0.05},
	}
	if got := Score(ranked, 2, ScoreSize); got != 3 {
		t.Errorf("ScoreSize top-2 = %v, want 3", got)
	}
	if got := Score(ranked, 10, ScoreSize); got != 5 {
		t.Errorf("ScoreSize capped = %v, want 5", got)
	}
	if got := Score(ranked, 2, ScoreImportance); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("ScoreImportance top-2 = %v, want 0.95", got)
	}
}

func labelN(prefix string, i int) string {
	return prefix + string(rune('a'+i/5)) + string(rune('a'+i%5))
}

// randomWeightedDAG builds a random fault graph whose basic events all carry
// probabilities.
func randomWeightedDAG(r *rand.Rand, nb, ng int) *faultgraph.Graph {
	b := faultgraph.NewBuilder()
	var ids []faultgraph.NodeID
	for i := 0; i < nb; i++ {
		ids = append(ids, b.BasicProb(string(rune('a'+i)), 0.05+0.9*r.Float64()))
	}
	for i := 0; i < ng; i++ {
		nkids := 1 + r.Intn(min(3, len(ids)))
		perm := r.Perm(len(ids))[:nkids]
		kids := make([]faultgraph.NodeID, nkids)
		for j, p := range perm {
			kids[j] = ids[p]
		}
		var id faultgraph.NodeID
		switch r.Intn(3) {
		case 0:
			id = b.Gate(string(rune('A'+i)), faultgraph.AND, kids...)
		case 1:
			id = b.Gate(string(rune('A'+i)), faultgraph.OR, kids...)
		default:
			id = b.GateK(string(rune('A'+i)), 1+r.Intn(nkids), kids...)
		}
		ids = append(ids, id)
	}
	b.SetTop(b.Gate("TOP", faultgraph.OR, ids[len(ids)-1]))
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
