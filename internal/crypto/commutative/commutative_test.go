package commutative

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

func group512(t *testing.T) *Group {
	t.Helper()
	g, err := NewGroup(512)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuiltinGroups(t *testing.T) {
	for _, bits := range []int{1024, 2048} {
		g, err := NewGroup(bits)
		if err != nil {
			t.Fatalf("NewGroup(%d): %v", bits, err)
		}
		if g.P.BitLen() != bits {
			t.Errorf("group modulus has %d bits, want %d", g.P.BitLen(), bits)
		}
		if !g.P.ProbablyPrime(20) {
			t.Errorf("%d-bit builtin modulus not prime", bits)
		}
		// Safe prime: (p−1)/2 is prime.
		q := new(big.Int).Rsh(new(big.Int).Sub(g.P, big.NewInt(1)), 1)
		if !q.ProbablyPrime(20) {
			t.Errorf("%d-bit builtin modulus is not a safe prime", bits)
		}
	}
	if _, err := NewGroup(64); err == nil {
		t.Error("tiny modulus accepted")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	g := group512(t)
	k, err := g.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range []string{"libc6=2.19", "router:203.0.113.7", "", "x"} {
		x := g.HashToGroup([]byte(data))
		c := k.Encrypt(x)
		if c.Cmp(x) == 0 {
			t.Errorf("ciphertext equals plaintext for %q", data)
		}
		if got := k.Decrypt(c); got.Cmp(x) != 0 {
			t.Errorf("round trip failed for %q", data)
		}
	}
}

func TestCommutativity(t *testing.T) {
	g := group512(t)
	k1, err := g.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := g.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := g.GenerateKey(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	x := g.HashToGroup([]byte("shared component"))
	a := k3.Encrypt(k2.Encrypt(k1.Encrypt(x)))
	b := k1.Encrypt(k3.Encrypt(k2.Encrypt(x)))
	c := k2.Encrypt(k1.Encrypt(k3.Encrypt(x)))
	if a.Cmp(b) != 0 || b.Cmp(c) != 0 {
		t.Error("encryption order changed the result")
	}
	// Peeling off in any order recovers x.
	if got := k1.Decrypt(k2.Decrypt(k3.Decrypt(a))); got.Cmp(x) != 0 {
		t.Error("decrypt composition failed")
	}
	if got := k3.Decrypt(k1.Decrypt(k2.Decrypt(a))); got.Cmp(x) != 0 {
		t.Error("out-of-order decrypt composition failed")
	}
}

func TestDeterministicEquality(t *testing.T) {
	// The PSI-critical property: same plaintext, same key set → same
	// ciphertext; different plaintexts → different ciphertexts.
	g := group512(t)
	k1, _ := g.GenerateKey(rand.Reader)
	k2, _ := g.GenerateKey(rand.Reader)
	x := g.HashToGroup([]byte("pkg:libssl=1.0.1"))
	y := g.HashToGroup([]byte("pkg:libssl=1.0.2"))
	if k2.Encrypt(k1.Encrypt(x)).Cmp(k1.Encrypt(k2.Encrypt(x))) != 0 {
		t.Error("equal plaintexts should collide under the same key set")
	}
	if k2.Encrypt(k1.Encrypt(x)).Cmp(k2.Encrypt(k1.Encrypt(y))) == 0 {
		t.Error("different plaintexts collided")
	}
}

func TestHashToGroup(t *testing.T) {
	g := group512(t)
	a := g.HashToGroup([]byte("a"))
	b := g.HashToGroup([]byte("b"))
	if a.Cmp(b) == 0 {
		t.Error("distinct inputs hashed equal")
	}
	if a.Cmp(big.NewInt(2)) < 0 || a.Cmp(g.P) >= 0 {
		t.Error("hash out of range")
	}
	if g.HashToGroup([]byte("a")).Cmp(a) != 0 {
		t.Error("hash not deterministic")
	}
}

func TestSerialization(t *testing.T) {
	g := group512(t)
	x := g.HashToGroup([]byte("serialize me"))
	b := g.Bytes(x)
	if len(b) != g.CiphertextSize() {
		t.Fatalf("serialized to %d bytes, want %d", len(b), g.CiphertextSize())
	}
	y, err := g.FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if x.Cmp(y) != 0 {
		t.Error("serialization round trip failed")
	}
	if _, err := g.FromBytes(b[:3]); err == nil {
		t.Error("short input accepted")
	}
	tooBig := bytes.Repeat([]byte{0xff}, g.CiphertextSize())
	if _, err := g.FromBytes(tooBig); err == nil {
		t.Error("out-of-range element accepted")
	}
}

func TestKeyGenRejectsBadReader(t *testing.T) {
	g := group512(t)
	if _, err := g.GenerateKey(bytes.NewReader(nil)); err == nil {
		t.Error("empty randomness source accepted")
	}
}
