// Package commutative implements a commutative encryption scheme — the
// Pohlig–Hellman/SRA exponentiation cipher the paper's P-SOP prototype uses
// ("commutative RSA" [56], §6.1.2).
//
// All parties share a public prime modulus p; a key is a secret exponent e
// coprime to p−1, and encryption is E_e(x) = x^e mod p. Because
// (x^e)^f = (x^f)^e, encryptions under different keys commute — the property
// P-SOP's ring protocol relies on (§4.2.2). Decryption uses d = e⁻¹ mod p−1.
//
// This is not semantically secure encryption (it is deterministic), which is
// exactly what private set intersection needs: equal plaintexts encrypt to
// equal ciphertexts under the same key set, so ciphertext multisets can be
// compared without revealing plaintexts.
package commutative

import (
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
	"math/big"
)

// Group is the shared modulus all parties agree on.
type Group struct {
	P    *big.Int // prime modulus
	pm1  *big.Int // p − 1
	size int      // ciphertext byte width
}

// rfc3526Group2 is the 1024-bit MODP group (RFC 2409 Oakley group 2), a safe
// prime; rfc3526Group14 is the 2048-bit MODP group (RFC 3526 group 14).
const (
	rfc3526Group2 = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
		"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
		"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
		"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
		"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381" +
		"FFFFFFFFFFFFFFFF"
	rfc3526Group14 = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
		"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
		"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
		"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
		"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
		"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
		"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
		"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
		"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
		"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
		"15728E5A8AACAA68FFFFFFFFFFFFFFFF"
)

// NewGroup returns the shared group for the given modulus size. 1024 and
// 2048 bits use well-known safe primes (RFC 2409/3526 MODP groups); other
// sizes generate a fresh random prime — useful for the key-size ablation,
// not for interoperating parties, who must share p out of band.
func NewGroup(bits int) (*Group, error) {
	switch bits {
	case 1024:
		return groupFromHex(rfc3526Group2)
	case 2048:
		return groupFromHex(rfc3526Group14)
	}
	if bits < 128 {
		return nil, fmt.Errorf("commutative: modulus of %d bits is too small", bits)
	}
	p, err := rand.Prime(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("commutative: generating %d-bit prime: %w", bits, err)
	}
	return newGroup(p), nil
}

func groupFromHex(hexP string) (*Group, error) {
	p, ok := new(big.Int).SetString(hexP, 16)
	if !ok {
		return nil, fmt.Errorf("commutative: bad builtin prime")
	}
	return newGroup(p), nil
}

func newGroup(p *big.Int) *Group {
	return &Group{
		P:    p,
		pm1:  new(big.Int).Sub(p, big.NewInt(1)),
		size: (p.BitLen() + 7) / 8,
	}
}

// CiphertextSize returns the fixed byte width of serialized group elements.
func (g *Group) CiphertextSize() int { return g.size }

// HashToGroup maps arbitrary data to a non-trivial group element: the
// SHA-256 digest (extended to the modulus width by counter-mode hashing)
// reduced mod p, avoiding 0 and 1.
func (g *Group) HashToGroup(data []byte) *big.Int {
	buf := make([]byte, 0, g.size+sha256.Size)
	var ctr byte
	for len(buf) < g.size {
		h := sha256.New()
		h.Write([]byte{ctr})
		h.Write(data)
		buf = h.Sum(buf)
		ctr++
	}
	x := new(big.Int).SetBytes(buf[:g.size])
	x.Mod(x, g.P)
	if x.Cmp(big.NewInt(2)) < 0 {
		x.Add(x, big.NewInt(2))
	}
	return x
}

// Bytes serializes a group element at fixed width.
func (g *Group) Bytes(x *big.Int) []byte {
	out := make([]byte, g.size)
	x.FillBytes(out)
	return out
}

// FromBytes parses a fixed-width group element.
func (g *Group) FromBytes(b []byte) (*big.Int, error) {
	if len(b) != g.size {
		return nil, fmt.Errorf("commutative: element of %d bytes, want %d", len(b), g.size)
	}
	x := new(big.Int).SetBytes(b)
	if x.Cmp(g.P) >= 0 {
		return nil, fmt.Errorf("commutative: element out of group range")
	}
	return x, nil
}

// Key is one party's secret exponent pair.
type Key struct {
	g *Group
	e *big.Int // encryption exponent, coprime to p−1
	d *big.Int // decryption exponent, e⁻¹ mod p−1
}

// GenerateKey draws a fresh key from the given randomness source.
func (g *Group) GenerateKey(rng io.Reader) (*Key, error) {
	one := big.NewInt(1)
	for tries := 0; tries < 1000; tries++ {
		e, err := rand.Int(rng, g.pm1)
		if err != nil {
			return nil, fmt.Errorf("commutative: drawing exponent: %w", err)
		}
		if e.Cmp(big.NewInt(2)) < 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, e, g.pm1).Cmp(one) != 0 {
			continue
		}
		d := new(big.Int).ModInverse(e, g.pm1)
		if d == nil {
			continue
		}
		return &Key{g: g, e: e, d: d}, nil
	}
	return nil, fmt.Errorf("commutative: could not find invertible exponent")
}

// Group returns the key's group.
func (k *Key) Group() *Group { return k.g }

// Encrypt computes x^e mod p.
func (k *Key) Encrypt(x *big.Int) *big.Int {
	return new(big.Int).Exp(x, k.e, k.g.P)
}

// Decrypt computes y^d mod p, inverting Encrypt.
func (k *Key) Decrypt(y *big.Int) *big.Int {
	return new(big.Int).Exp(y, k.d, k.g.P)
}
