// Package paillier implements the Paillier additively-homomorphic
// cryptosystem, the building block of the Kissner–Song private set
// operation protocol the paper benchmarks PIA against (§6.3.2, [38]).
//
// Supported homomorphic operations: Add (ciphertext × ciphertext ↦ sum of
// plaintexts) and MulConst (ciphertext ^ constant ↦ product of plaintext and
// constant) — enough to evaluate encrypted polynomials by Horner's rule.
package paillier

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// PublicKey encrypts and performs homomorphic arithmetic.
type PublicKey struct {
	N  *big.Int // modulus, product of two primes
	N2 *big.Int // N²
}

// PrivateKey decrypts.
type PrivateKey struct {
	PublicKey
	lambda *big.Int // lcm(p−1, q−1)
	mu     *big.Int // (L(g^lambda mod N²))⁻¹ mod N
}

// GenerateKey creates a key pair with an N of the given bit size.
func GenerateKey(rng io.Reader, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("paillier: modulus of %d bits is too small", bits)
	}
	for tries := 0; tries < 100; tries++ {
		p, err := rand.Prime(rng, bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating p: %w", err)
		}
		q, err := rand.Prime(rng, bits-bits/2)
		if err != nil {
			return nil, fmt.Errorf("paillier: generating q: %w", err)
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)
		n2 := new(big.Int).Mul(n, n)
		// With g = N+1: L(g^λ mod N²) = λ mod N, so μ = λ⁻¹ mod N.
		mu := new(big.Int).ModInverse(new(big.Int).Mod(lambda, n), n)
		if mu == nil {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2},
			lambda:    lambda,
			mu:        mu,
		}, nil
	}
	return nil, fmt.Errorf("paillier: key generation failed")
}

// Encrypt encrypts m ∈ [0, N) with fresh randomness:
// c = (1 + m·N) · r^N mod N².
func (pk *PublicKey) Encrypt(rng io.Reader, m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of range")
	}
	r, err := pk.randomUnit(rng)
	if err != nil {
		return nil, err
	}
	// (1 + m·N) mod N²
	c := new(big.Int).Mul(m, pk.N)
	c.Add(c, big.NewInt(1))
	c.Mod(c, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c.Mul(c, rn)
	c.Mod(c, pk.N2)
	return c, nil
}

func (pk *PublicKey) randomUnit(rng io.Reader) (*big.Int, error) {
	one := big.NewInt(1)
	for {
		r, err := rand.Int(rng, pk.N)
		if err != nil {
			return nil, fmt.Errorf("paillier: drawing randomness: %w", err)
		}
		if r.Sign() == 0 {
			continue
		}
		if new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// Add returns a ciphertext of m1 + m2 mod N given ciphertexts of m1 and m2.
func (pk *PublicKey) Add(c1, c2 *big.Int) *big.Int {
	out := new(big.Int).Mul(c1, c2)
	return out.Mod(out, pk.N2)
}

// MulConst returns a ciphertext of k·m mod N given a ciphertext of m.
// Negative constants are reduced mod N first.
func (pk *PublicKey) MulConst(c, k *big.Int) *big.Int {
	kk := new(big.Int).Mod(k, pk.N)
	return new(big.Int).Exp(c, kk, pk.N2)
}

// EncryptZero returns a fresh encryption of zero (used for re-randomizing).
func (pk *PublicKey) EncryptZero(rng io.Reader) (*big.Int, error) {
	return pk.Encrypt(rng, big.NewInt(0))
}

// Decrypt recovers the plaintext: L(c^λ mod N²) · μ mod N, L(x) = (x−1)/N.
func (sk *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() <= 0 || c.Cmp(sk.N2) >= 0 {
		return nil, fmt.Errorf("paillier: ciphertext out of range")
	}
	x := new(big.Int).Exp(c, sk.lambda, sk.N2)
	x.Sub(x, big.NewInt(1))
	x.Div(x, sk.N)
	x.Mul(x, sk.mu)
	x.Mod(x, sk.N)
	return x, nil
}

// CiphertextSize returns the byte width of serialized ciphertexts.
func (pk *PublicKey) CiphertextSize() int { return (pk.N2.BitLen() + 7) / 8 }
