package paillier

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

func key(t *testing.T) *PrivateKey {
	t.Helper()
	sk, err := GenerateKey(rand.Reader, 512)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := key(t)
	for _, m := range []int64{0, 1, 2, 255, 65537, 1 << 40} {
		c, err := sk.Encrypt(rand.Reader, big.NewInt(m))
		if err != nil {
			t.Fatalf("Encrypt(%d): %v", m, err)
		}
		got, err := sk.Decrypt(c)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if got.Int64() != m {
			t.Errorf("round trip %d -> %d", m, got.Int64())
		}
	}
}

func TestEncryptRandomized(t *testing.T) {
	sk := key(t)
	m := big.NewInt(42)
	c1, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.Encrypt(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	if c1.Cmp(c2) == 0 {
		t.Error("Paillier must be probabilistic: two encryptions collided")
	}
}

func TestEncryptRange(t *testing.T) {
	sk := key(t)
	if _, err := sk.Encrypt(rand.Reader, big.NewInt(-1)); err == nil {
		t.Error("negative plaintext accepted")
	}
	if _, err := sk.Encrypt(rand.Reader, sk.N); err == nil {
		t.Error("plaintext ≥ N accepted")
	}
}

func TestDecryptRange(t *testing.T) {
	sk := key(t)
	if _, err := sk.Decrypt(big.NewInt(0)); err == nil {
		t.Error("zero ciphertext accepted")
	}
	if _, err := sk.Decrypt(sk.N2); err == nil {
		t.Error("ciphertext ≥ N² accepted")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	sk := key(t)
	f := func(a, b uint32) bool {
		ca, err := sk.Encrypt(rand.Reader, big.NewInt(int64(a)))
		if err != nil {
			return false
		}
		cb, err := sk.Encrypt(rand.Reader, big.NewInt(int64(b)))
		if err != nil {
			return false
		}
		sum, err := sk.Decrypt(sk.Add(ca, cb))
		if err != nil {
			return false
		}
		return sum.Int64() == int64(a)+int64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestMulConst(t *testing.T) {
	sk := key(t)
	c, err := sk.Encrypt(rand.Reader, big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(sk.MulConst(c, big.NewInt(6)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Errorf("7 * 6 = %v", got)
	}
	// Negative constants wrap mod N.
	neg, err := sk.Decrypt(sk.MulConst(c, big.NewInt(-1)))
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Sub(sk.N, big.NewInt(7))
	if neg.Cmp(want) != 0 {
		t.Errorf("7 * -1 = %v, want N-7", neg)
	}
}

func TestHornerEvaluation(t *testing.T) {
	// Evaluate P(x) = (x−3)(x−5) = x² −8x +15 homomorphically at 3, 5, 7.
	sk := key(t)
	coeffs := []*big.Int{big.NewInt(15), big.NewInt(-8), big.NewInt(1)} // low to high
	enc := make([]*big.Int, len(coeffs))
	for i, c := range coeffs {
		e, err := sk.Encrypt(rand.Reader, new(big.Int).Mod(c, sk.N))
		if err != nil {
			t.Fatal(err)
		}
		enc[i] = e
	}
	eval := func(x int64) *big.Int {
		// Horner from the top coefficient down: acc = acc*x + coeff.
		acc := enc[len(enc)-1]
		for i := len(enc) - 2; i >= 0; i-- {
			acc = sk.Add(sk.MulConst(acc, big.NewInt(x)), enc[i])
		}
		v, err := sk.Decrypt(acc)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if v := eval(3); v.Sign() != 0 {
		t.Errorf("P(3) = %v, want 0", v)
	}
	if v := eval(5); v.Sign() != 0 {
		t.Errorf("P(5) = %v, want 0", v)
	}
	if v := eval(7); v.Int64() != 8 {
		t.Errorf("P(7) = %v, want 8", v)
	}
}

func TestEncryptZero(t *testing.T) {
	sk := key(t)
	z, err := sk.EncryptZero(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(z)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Errorf("EncryptZero decrypts to %v", got)
	}
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(rand.Reader, 64); err == nil {
		t.Error("64-bit modulus accepted")
	}
}

func TestCiphertextSize(t *testing.T) {
	sk := key(t)
	c, err := sk.Encrypt(rand.Reader, big.NewInt(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Bytes()) > sk.CiphertextSize() {
		t.Errorf("ciphertext %d bytes exceeds declared size %d", len(c.Bytes()), sk.CiphertextSize())
	}
}
