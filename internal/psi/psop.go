package psi

import (
	"context"
	cryptorand "crypto/rand"
	"fmt"
	"io"
	"math/big"
	mathrand "math/rand"
	"sync"

	"indaas/internal/crypto/commutative"
)

// PSOPConfig tunes the P-SOP protocol.
type PSOPConfig struct {
	// Bits is the commutative-cipher modulus size (default 1024, the
	// paper's setting; 512/2048 for the key-size ablation).
	Bits int
	// Rand is the randomness source for key generation (default
	// crypto/rand). Permutations are seeded from it as well.
	Rand io.Reader
	// Group optionally reuses a pre-agreed group, skipping generation —
	// required for non-builtin sizes when parties must share a modulus, and
	// useful to amortize setup in benches.
	Group *commutative.Group
	// Workers parallelizes the modular-exponentiation loops — each party
	// encrypting its own dataset and every re-encryption hop — across up to
	// Workers goroutines. Key generation and permutation stay sequential so
	// a fixed Rand still yields a deterministic transcript; the protocol
	// result is identical for every worker count. 0 or 1 is sequential.
	Workers int
}

// PSOP runs the private set intersection cardinality protocol of §4.2.2 over
// the given parties' datasets (multisets of normalized component
// identifiers) and returns |∩|, |∪| and measured costs.
//
// Protocol, per the paper: the k parties form a logical ring and agree on a
// deterministic hash. Each party disambiguates duplicates (e‖i), hashes and
// encrypts every element under its own commutative key, permutes the result
// and sends it to its successor; each successor re-encrypts, re-permutes and
// forwards. After k hops every dataset is encrypted under all k keys, so
// equal plaintexts — regardless of owner — have equal ciphertexts; the
// parties then share the encrypted datasets and count |∩| and |∪| on
// ciphertexts.
func PSOP(cfg PSOPConfig, sets [][]string) (*Result, error) {
	return PSOPContext(context.Background(), cfg, sets)
}

// PSOPContext is PSOP with cancellation: the encryption loops poll ctx and
// abandon the run with ctx's error once it is done.
func PSOPContext(ctx context.Context, cfg PSOPConfig, sets [][]string) (*Result, error) {
	k := len(sets)
	if k < 2 {
		return nil, fmt.Errorf("psi: P-SOP needs at least two parties, got %d", k)
	}
	for i, s := range sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("psi: party %d has an empty dataset", i)
		}
	}
	bits := cfg.Bits
	if bits == 0 {
		bits = 1024
	}
	rng := cfg.Rand
	if rng == nil {
		rng = cryptorand.Reader
	}
	group := cfg.Group
	if group == nil {
		var err error
		group, err = commutative.NewGroup(bits)
		if err != nil {
			return nil, err
		}
	}

	// Per-party key and permutation source.
	keys := make([]*commutative.Key, k)
	perms := make([]*mathrand.Rand, k)
	for i := range keys {
		key, err := group.GenerateKey(rng)
		if err != nil {
			return nil, fmt.Errorf("psi: party %d keygen: %w", i, err)
		}
		keys[i] = key
		var seed [8]byte
		if _, err := io.ReadFull(rng, seed[:]); err != nil {
			return nil, fmt.Errorf("psi: party %d permutation seed: %w", i, err)
		}
		perms[i] = mathrand.New(mathrand.NewSource(int64(seed[0]) | int64(seed[1])<<8 |
			int64(seed[2])<<16 | int64(seed[3])<<24 | int64(seed[4])<<32 |
			int64(seed[5])<<40 | int64(seed[6])<<48 | int64(seed[7])<<56))
	}

	var stats Stats
	elemSize := int64(group.CiphertextSize())

	// Step 1: each party hashes, encrypts and permutes its own dataset.
	datasets := make([][]*big.Int, k)
	for i, s := range sets {
		uniq := disambiguate(s)
		ds := make([]*big.Int, len(uniq))
		key := keys[i]
		err := parallelFor(ctx, len(uniq), cfg.Workers, func(j int) {
			ds[j] = key.Encrypt(group.HashToGroup([]byte(uniq[j])))
		})
		if err != nil {
			return nil, err
		}
		permute(perms[i], ds)
		datasets[i] = ds
	}

	// Step 2: k−1 ring hops; each hop re-encrypts and re-permutes.
	for hop := 1; hop < k; hop++ {
		for owner := 0; owner < k; owner++ {
			holder := (owner + hop) % k
			sender := (owner + hop - 1) % k
			stats.send(sender, int64(len(datasets[owner]))*elemSize)
			ds := datasets[owner]
			key := keys[holder]
			err := parallelFor(ctx, len(ds), cfg.Workers, func(j int) {
				ds[j] = key.Encrypt(ds[j])
			})
			if err != nil {
				return nil, err
			}
			permute(perms[holder], ds)
		}
	}

	// Step 3: each final holder shares the fully-encrypted dataset with the
	// other k−1 parties so everyone can count.
	for owner := 0; owner < k; owner++ {
		holder := (owner + k - 1) % k
		stats.send(holder, int64(len(datasets[owner]))*elemSize*int64(k-1))
	}

	// Step 4: count on ciphertexts. Disambiguation turned multisets into
	// sets, so min/max counts reduce to membership.
	inter, union := countCiphertexts(group, datasets)
	return &Result{Intersection: inter, Union: union, Stats: stats}, nil
}

// parallelFor runs fn(0..n-1) across up to workers goroutines (striped so
// slot j is always written exactly once), polling ctx between elements. With
// workers <= 1 it degrades to a plain loop. It returns ctx's error if the
// context ended before every element was processed.
func parallelFor(ctx context.Context, n, workers int, fn func(j int)) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for j := 0; j < n; j++ {
			if j&0x3f == 0 && ctx.Err() != nil {
				return ctx.Err()
			}
			fn(j)
		}
		return ctx.Err()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := w; j < n; j += workers {
				if ctx.Err() != nil {
					return
				}
				fn(j)
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

func permute(rng *mathrand.Rand, ds []*big.Int) {
	rng.Shuffle(len(ds), func(a, b int) { ds[a], ds[b] = ds[b], ds[a] })
}

func countCiphertexts(group *commutative.Group, datasets [][]*big.Int) (inter, union int) {
	k := len(datasets)
	seenIn := make(map[string]int)
	for _, ds := range datasets {
		for _, c := range ds {
			seenIn[string(group.Bytes(c))]++
		}
	}
	union = len(seenIn)
	for _, n := range seenIn {
		if n == k {
			inter++
		}
	}
	return inter, union
}
