package psi

import (
	"fmt"
	"math/rand"
	"testing"

	"indaas/internal/deps"
)

func TestCleartextCardinality(t *testing.T) {
	cases := []struct {
		sets         [][]string
		inter, union int
	}{
		{[][]string{{"a", "b"}, {"b", "c"}}, 1, 3},
		{[][]string{{"a"}, {"b"}}, 0, 2},
		{[][]string{{"a", "a", "b"}, {"a", "a", "c"}}, 2, 4},   // multiset: two a's shared
		{[][]string{{"a", "a"}, {"a"}}, 1, 2},                  // min/max counts
		{[][]string{{"x", "y"}, {"x", "y"}, {"x", "z"}}, 1, 3}, // 3-way
	}
	for i, c := range cases {
		inter, union, err := CleartextCardinality(c.sets)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if inter != c.inter || union != c.union {
			t.Errorf("case %d: got (%d,%d), want (%d,%d)", i, inter, union, c.inter, c.union)
		}
	}
	if _, _, err := CleartextCardinality([][]string{{"a"}}); err == nil {
		t.Error("single set accepted")
	}
}

func TestDisambiguate(t *testing.T) {
	got := disambiguate([]string{"b", "a", "b"})
	want := []string{"a\x001", "b\x001", "b\x002"}
	if len(got) != len(want) {
		t.Fatalf("disambiguate = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("disambiguate[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestPSOPMatchesCleartext(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		k := 2 + trial%3
		sets := make([][]string, k)
		for i := range sets {
			n := 5 + rng.Intn(15)
			for j := 0; j < n; j++ {
				// Overlapping universes with duplicates.
				sets[i] = append(sets[i], fmt.Sprintf("comp-%d", rng.Intn(12)))
			}
		}
		wantInter, wantUnion, err := CleartextCardinality(sets)
		if err != nil {
			t.Fatal(err)
		}
		res, err := PSOP(PSOPConfig{Bits: 512}, sets)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Intersection != wantInter || res.Union != wantUnion {
			t.Errorf("trial %d (k=%d): P-SOP (%d,%d), cleartext (%d,%d)",
				trial, k, res.Intersection, res.Union, wantInter, wantUnion)
		}
		j, err := res.Jaccard()
		if err != nil {
			t.Fatal(err)
		}
		if wantUnion > 0 && j != float64(wantInter)/float64(wantUnion) {
			t.Errorf("trial %d: Jaccard %v", trial, j)
		}
	}
}

func TestPSOPJaccardMatchesPlainJaccard(t *testing.T) {
	a := []string{"pkg:libc6=2.19", "pkg:libssl=1.0.1", "router:10.0.0.1", "c1/private"}
	b := []string{"pkg:libc6=2.19", "pkg:libssl=1.0.1", "c2/other"}
	res, err := PSOP(PSOPConfig{Bits: 512}, [][]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Jaccard()
	if err != nil {
		t.Fatal(err)
	}
	want := deps.Jaccard(deps.NewComponentSet(a...), deps.NewComponentSet(b...))
	if got != want {
		t.Errorf("P-SOP Jaccard %v, cleartext %v", got, want)
	}
}

func TestPSOPErrors(t *testing.T) {
	if _, err := PSOP(PSOPConfig{Bits: 512}, [][]string{{"a"}}); err == nil {
		t.Error("single party accepted")
	}
	if _, err := PSOP(PSOPConfig{Bits: 512}, [][]string{{"a"}, {}}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestPSOPStats(t *testing.T) {
	sets := [][]string{
		make([]string, 10), make([]string, 10), make([]string, 10),
	}
	for i := range sets {
		for j := range sets[i] {
			sets[i][j] = fmt.Sprintf("p%d-e%d", i, j%7)
		}
	}
	res, err := PSOP(PSOPConfig{Bits: 512}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BytesSent <= 0 || res.Stats.Messages <= 0 {
		t.Errorf("stats not recorded: %+v", res.Stats)
	}
	if len(res.Stats.PerParty) != 3 {
		t.Errorf("per-party stats for %d parties", len(res.Stats.PerParty))
	}
	// Ring phase: each dataset of 10 elements × 64 bytes × (k−1)=2 hops,
	// share phase: ×(k−1) more. Total = 10·64·(2·3 + 3·2) = 7680.
	want := int64(10 * 64 * (2*3 + 2*3))
	if res.Stats.BytesSent != want {
		t.Errorf("BytesSent = %d, want %d", res.Stats.BytesSent, want)
	}
}

func TestKSMatchesCleartextIntersection(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 4; trial++ {
		k := 2 + trial%3
		sets := make([][]string, k)
		for i := range sets {
			n := 4 + rng.Intn(8)
			seen := map[string]bool{}
			for j := 0; j < n; j++ {
				e := fmt.Sprintf("comp-%d", rng.Intn(10))
				if !seen[e] {
					seen[e] = true
					sets[i] = append(sets[i], e)
				}
			}
		}
		// Reference with set semantics.
		dedupSets := make([][]string, k)
		for i := range sets {
			dedupSets[i] = dedupe(sets[i])
		}
		wantInter, _, err := CleartextCardinality(dedupSets)
		if err != nil {
			t.Fatal(err)
		}
		res, err := KS(KSConfig{Bits: 512, BlindBits: 64}, sets)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Intersection != wantInter {
			t.Errorf("trial %d (k=%d): KS intersection %d, want %d",
				trial, k, res.Intersection, wantInter)
		}
		if res.Union != -1 {
			t.Errorf("KS should not report a union, got %d", res.Union)
		}
		if _, err := res.Jaccard(); err == nil {
			t.Error("Jaccard over KS result should error")
		}
	}
}

func TestKSDisjointAndIdentical(t *testing.T) {
	disjoint := [][]string{{"a", "b"}, {"c", "d"}}
	res, err := KS(KSConfig{Bits: 512, BlindBits: 64}, disjoint)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intersection != 0 {
		t.Errorf("disjoint intersection = %d", res.Intersection)
	}
	same := [][]string{{"x", "y", "z"}, {"z", "x", "y"}, {"y", "z", "x"}}
	res, err = KS(KSConfig{Bits: 512, BlindBits: 64}, same)
	if err != nil {
		t.Fatal(err)
	}
	if res.Intersection != 3 {
		t.Errorf("identical 3-way intersection = %d, want 3", res.Intersection)
	}
}

func TestKSMultisetInputsDeduplicated(t *testing.T) {
	res, err := KS(KSConfig{Bits: 512, BlindBits: 64}, [][]string{{"a", "a", "b"}, {"a", "b", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Intersection != 2 {
		t.Errorf("KS set-semantics intersection = %d, want 2", res.Intersection)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KS(KSConfig{Bits: 512, BlindBits: 64}, [][]string{{"a"}}); err == nil {
		t.Error("single party accepted")
	}
	if _, err := KS(KSConfig{Bits: 512, BlindBits: 64}, [][]string{{"a"}, {}}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestKSStats(t *testing.T) {
	sets := [][]string{{"a", "b", "c"}, {"b", "c", "d"}, {"c", "d", "e"}}
	res, err := KS(KSConfig{Bits: 512, BlindBits: 64}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BytesSent <= 0 {
		t.Error("no bandwidth recorded")
	}
	if len(res.Stats.PerParty) == 0 {
		t.Error("no per-party stats")
	}
}

func TestProtocolCostShape(t *testing.T) {
	// The core Fig. 8 qualitative claim at miniature scale: KS costs more
	// bandwidth per element than P-SOP as k grows, because it ships
	// 2n+1 double-width ciphertext coefficients around the ring.
	mk := func(n int, tag string) []string {
		out := make([]string, n)
		for i := range out {
			out[i] = fmt.Sprintf("%s-%d", tag, i)
		}
		return out
	}
	sets := [][]string{mk(20, "a"), mk(20, "b"), mk(20, "c"), mk(20, "d")}
	psop, err := PSOP(PSOPConfig{Bits: 512}, sets)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := KS(KSConfig{Bits: 512, BlindBits: 64}, sets)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Stats.BytesSent <= psop.Stats.BytesSent {
		t.Errorf("expected KS bandwidth (%d) > P-SOP bandwidth (%d) at k=4",
			ks.Stats.BytesSent, psop.Stats.BytesSent)
	}
}
