package psi

import (
	cryptorand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	mathrand "math/rand"

	"indaas/internal/crypto/paillier"
)

// KSConfig tunes the Kissner–Song-style protocol.
type KSConfig struct {
	// Bits is the Paillier modulus size (default 1024, matching the paper's
	// Fig. 8 setting; 512 keeps CI-scale benches fast).
	Bits int
	// Rand is the randomness source (default crypto/rand).
	Rand io.Reader
	// Key optionally reuses the leader's key pair, amortizing generation.
	Key *paillier.PrivateKey
	// BlindBits bounds the bit width of random blinding-polynomial
	// coefficients; 0 means full plaintext width (the faithful setting).
	// Small widths (e.g. 64) cut the homomorphic exponentiation cost
	// roughly proportionally at a corresponding loss of blinding slack —
	// used to keep CI-scale tests fast; correctness is unaffected.
	BlindBits int
}

// KS runs a Kissner–Song-style private set intersection cardinality protocol
// [38] over the parties' datasets and returns |∩| (set semantics; the union
// is not computed — Result.Union is -1).
//
// Honest-but-curious construction following the communication pattern of
// [38] (leader = party 0 holds the Paillier key; real KS uses threshold
// decryption, which changes trust but not asymptotics):
//
//  1. Every party i represents its (deduplicated, hashed) set as the
//     polynomial f_i(x) = Π (x − a), encrypts its coefficients and
//     broadcasts them to every other party — k(k−1) transfers of n+1
//     ciphertexts.
//  2. Every party i multiplies each received encrypted polynomial by a
//     fresh random polynomial of matching degree (scalar-multiplying
//     encrypted coefficients) and broadcasts its partial sum
//     Enc(Σ_j f_j·r_{i,j}) — k(k−1) transfers of 2n+1 ciphertexts. Summing
//     all partials yields Enc(λ), λ = Σ_{i,j} f_j·r_{i,j}: an element a is
//     in every set iff every f_j(a) = 0, hence λ(a) = 0 (and λ(a) ≠ 0
//     w.h.p. otherwise).
//  3. The last party evaluates Enc(λ(a)) for each of its elements by
//     Horner's rule over the encrypted coefficients, blinds each value with
//     a fresh random multiplier, re-randomizes, shuffles, and returns the
//     batch to the leader, which decrypts and counts zeros: |∩|.
//
// Both the O(k²·n) ciphertext traffic and the O(k²·n²) homomorphic
// polynomial arithmetic are the scaling behaviour Fig. 8 contrasts with
// P-SOP's linear pipeline.
func KS(cfg KSConfig, sets [][]string) (*Result, error) {
	k := len(sets)
	if k < 2 {
		return nil, fmt.Errorf("psi: KS needs at least two parties, got %d", k)
	}
	for i, s := range sets {
		if len(s) == 0 {
			return nil, fmt.Errorf("psi: party %d has an empty dataset", i)
		}
	}
	bits := cfg.Bits
	if bits == 0 {
		bits = 1024
	}
	rng := cfg.Rand
	if rng == nil {
		rng = cryptorand.Reader
	}
	sk := cfg.Key
	if sk == nil {
		var err error
		sk, err = paillier.GenerateKey(rng, bits)
		if err != nil {
			return nil, err
		}
	}
	pk := &sk.PublicKey

	var seed [8]byte
	if _, err := io.ReadFull(rng, seed[:]); err != nil {
		return nil, fmt.Errorf("psi: drawing shuffle seed: %w", err)
	}
	shuffler := mathrand.New(mathrand.NewSource(int64(binary.LittleEndian.Uint64(seed[:]))))

	var stats Stats
	ctSize := int64(pk.CiphertextSize())

	// Hash every party's deduplicated set to 64-bit field elements (small
	// evaluation points keep the homomorphic exponentiations affordable;
	// collisions are negligible at these set sizes).
	hashed := make([][]*big.Int, k)
	for i, s := range sets {
		uniq := dedupe(s)
		hs := make([]*big.Int, len(uniq))
		for j, e := range uniq {
			hs[j] = hashElement64(e)
		}
		hashed[i] = hs
	}

	// Maximum blinded-polynomial degree across parties (deg f_i·r_{j,i} = 2n_i).
	maxDeg := 0
	for _, hs := range hashed {
		if d := 2 * len(hs); d > maxDeg {
			maxDeg = d
		}
	}

	// Phase 1: every party encrypts its polynomial's coefficients and
	// broadcasts them to the other k−1 parties.
	encPolys := make([][]*big.Int, k)
	for i := 0; i < k; i++ {
		fi := polyFromRoots(hashed[i], pk.N)
		enc := make([]*big.Int, len(fi))
		for j, coeff := range fi {
			c, err := pk.Encrypt(rng, coeff)
			if err != nil {
				return nil, err
			}
			enc[j] = c
		}
		encPolys[i] = enc
		stats.send(i, int64(len(enc))*ctSize*int64(k-1))
	}

	// Phase 2: every party i computes its partial Enc(Σ_j f_j·r_{i,j}) by
	// scalar-multiplying each encrypted polynomial with a fresh random
	// polynomial, and broadcasts the partial to the other parties.
	// Summing every partial yields Enc(λ).
	blindMax := pk.N
	if cfg.BlindBits > 0 && cfg.BlindBits < pk.N.BitLen() {
		blindMax = new(big.Int).Lsh(big.NewInt(1), uint(cfg.BlindBits))
	}
	acc := make([]*big.Int, maxDeg+1) // encrypted coefficients, low to high
	for i := 0; i < k; i++ {
		partial := make([]*big.Int, maxDeg+1)
		for j := 0; j < k; j++ {
			ri, err := randomPoly(rng, len(hashed[j]), blindMax)
			if err != nil {
				return nil, err
			}
			// Enc(f_j · r_{i,j})[d] = Σ_{a+b=d} Enc(f_j[a])^{r_{i,j}[b]}.
			for a, cf := range encPolys[j] {
				for b, rb := range ri {
					term := pk.MulConst(cf, rb)
					if partial[a+b] == nil {
						partial[a+b] = term
					} else {
						partial[a+b] = pk.Add(partial[a+b], term)
					}
				}
			}
		}
		stats.send(i, int64(len(partial))*ctSize*int64(k-1))
		for d, c := range partial {
			if c == nil {
				continue
			}
			if acc[d] == nil {
				acc[d] = c
			} else {
				acc[d] = pk.Add(acc[d], c)
			}
		}
	}
	for d, c := range acc {
		if c == nil {
			z, err := pk.EncryptZero(rng)
			if err != nil {
				return nil, err
			}
			acc[d] = z
		}
	}

	// Last party evaluates, blinds, shuffles, returns to the leader.
	evaluator := k - 1
	evals := make([]*big.Int, 0, len(hashed[evaluator]))
	for _, a := range hashed[evaluator] {
		// Horner: acc_high … acc_low.
		v := acc[len(acc)-1]
		for j := len(acc) - 2; j >= 0; j-- {
			v = pk.Add(pk.MulConst(v, a), acc[j])
		}
		s, err := randomUnitScalar(rng, blindMax)
		if err != nil {
			return nil, err
		}
		v = pk.MulConst(v, s)
		z, err := pk.EncryptZero(rng)
		if err != nil {
			return nil, err
		}
		evals = append(evals, pk.Add(v, z))
	}
	shuffler.Shuffle(len(evals), func(a, b int) { evals[a], evals[b] = evals[b], evals[a] })
	stats.send(evaluator, int64(len(evals))*ctSize)

	// Leader decrypts and counts zeros.
	inter := 0
	for _, c := range evals {
		m, err := sk.Decrypt(c)
		if err != nil {
			return nil, err
		}
		if m.Sign() == 0 {
			inter++
		}
	}
	return &Result{Intersection: inter, Union: -1, Stats: stats}, nil
}

// hashElement64 maps an element to a 64-bit non-zero integer.
func hashElement64(e string) *big.Int {
	sum := sha256.Sum256([]byte(e))
	v := binary.BigEndian.Uint64(sum[:8])
	if v == 0 {
		v = 1
	}
	return new(big.Int).SetUint64(v)
}

// polyFromRoots builds Π (x − r) mod n, coefficients low to high.
func polyFromRoots(roots []*big.Int, n *big.Int) []*big.Int {
	coeffs := []*big.Int{big.NewInt(1)}
	for _, r := range roots {
		negR := new(big.Int).Neg(r)
		negR.Mod(negR, n)
		next := make([]*big.Int, len(coeffs)+1)
		for i := range next {
			next[i] = big.NewInt(0)
		}
		for i, c := range coeffs {
			// (x)·c term
			next[i+1].Add(next[i+1], c)
			// (−r)·c term
			tmp := new(big.Int).Mul(c, negR)
			next[i].Add(next[i], tmp)
		}
		for i := range next {
			next[i].Mod(next[i], n)
		}
		coeffs = next
	}
	return coeffs
}

// randomPoly draws a degree-deg polynomial with coefficients in [0, max).
func randomPoly(rng io.Reader, deg int, max *big.Int) ([]*big.Int, error) {
	out := make([]*big.Int, deg+1)
	for i := range out {
		c, err := cryptorand.Int(rng, max)
		if err != nil {
			return nil, fmt.Errorf("psi: drawing polynomial coefficient: %w", err)
		}
		out[i] = c
	}
	// Ensure the leading coefficient is non-zero so deg(f·r) = 2n.
	if out[deg].Sign() == 0 {
		out[deg] = big.NewInt(1)
	}
	return out, nil
}

// polyMul multiplies two coefficient vectors mod n.
func polyMul(a, b []*big.Int, n *big.Int) []*big.Int {
	out := make([]*big.Int, len(a)+len(b)-1)
	for i := range out {
		out[i] = big.NewInt(0)
	}
	tmp := new(big.Int)
	for i, ai := range a {
		if ai.Sign() == 0 {
			continue
		}
		for j, bj := range b {
			tmp.Mul(ai, bj)
			out[i+j].Add(out[i+j], tmp)
			out[i+j].Mod(out[i+j], n)
		}
	}
	return out
}

func randomUnitScalar(rng io.Reader, n *big.Int) (*big.Int, error) {
	for {
		s, err := cryptorand.Int(rng, n)
		if err != nil {
			return nil, fmt.Errorf("psi: drawing blinding scalar: %w", err)
		}
		if s.Sign() != 0 {
			return s, nil
		}
	}
}
