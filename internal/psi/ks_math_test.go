package psi

import (
	"math/big"
	"testing"
	"testing/quick"
)

// evalPoly evaluates a coefficient vector (low to high) at x, mod n.
func evalPoly(coeffs []*big.Int, x, n *big.Int) *big.Int {
	acc := big.NewInt(0)
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc.Mul(acc, x)
		acc.Add(acc, coeffs[i])
		acc.Mod(acc, n)
	}
	return acc
}

func TestPolyFromRootsVanishesAtRoots(t *testing.T) {
	n := big.NewInt(1_000_003) // prime modulus for the test field
	f := func(rootVals []uint16, probe uint16) bool {
		if len(rootVals) == 0 || len(rootVals) > 8 {
			return true
		}
		roots := make([]*big.Int, len(rootVals))
		isRoot := map[uint64]bool{}
		for i, r := range rootVals {
			roots[i] = new(big.Int).SetUint64(uint64(r))
			isRoot[uint64(r)] = true
		}
		coeffs := polyFromRoots(roots, n)
		if len(coeffs) != len(roots)+1 {
			return false
		}
		for _, r := range roots {
			if evalPoly(coeffs, r, n).Sign() != 0 {
				return false
			}
		}
		// A non-root probe should (generically) not vanish.
		if !isRoot[uint64(probe)] {
			p := new(big.Int).SetUint64(uint64(probe))
			if evalPoly(coeffs, p, n).Sign() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPolyMulMatchesEvaluation(t *testing.T) {
	n := big.NewInt(1_000_003)
	a := []*big.Int{big.NewInt(3), big.NewInt(0), big.NewInt(2)} // 2x²+3
	b := []*big.Int{big.NewInt(1), big.NewInt(5)}                // 5x+1
	prod := polyMul(a, b, n)
	if len(prod) != 4 {
		t.Fatalf("product degree: len = %d", len(prod))
	}
	for _, x := range []int64{0, 1, 2, 17, 999} {
		xx := big.NewInt(x)
		va := evalPoly(a, xx, n)
		vb := evalPoly(b, xx, n)
		want := new(big.Int).Mul(va, vb)
		want.Mod(want, n)
		if got := evalPoly(prod, xx, n); got.Cmp(want) != 0 {
			t.Errorf("at x=%d: product eval %v, want %v", x, got, want)
		}
	}
}

func TestHashElement64NonZeroDeterministic(t *testing.T) {
	a := hashElement64("component-a")
	b := hashElement64("component-a")
	c := hashElement64("component-b")
	if a.Cmp(b) != 0 {
		t.Error("hash not deterministic")
	}
	if a.Cmp(c) == 0 {
		t.Error("distinct elements collided")
	}
	if a.Sign() == 0 {
		t.Error("hash may not be zero")
	}
}
