// Package psi implements private set intersection cardinality protocols:
//
//   - PSOP: the paper's ring protocol based on commutative encryption
//     ([58], §4.2.2), computing both |∩| and |∪| of k ≥ 2 private multisets;
//   - KS: a Kissner–Song-style protocol based on Paillier homomorphic
//     encryption and polynomial evaluation ([38], §6.3.2), the baseline the
//     paper compares PIA against.
//
// Both protocols run all parties in-process over an accounting transport so
// tests and benches can measure exact bandwidth; the agent package wires the
// same message flow over TCP for the deployment scenario of Fig. 5b.
//
// Threat model (§4.2.1): parties are honest but curious and do not collude.
package psi

import (
	"fmt"
	"sort"
)

// Stats records protocol costs.
type Stats struct {
	// BytesSent is the total application payload sent by all parties.
	BytesSent int64
	// PerParty is the payload each party sent, by party index.
	PerParty []int64
	// Messages counts protocol messages.
	Messages int
}

func (s *Stats) send(party int, bytes int64) {
	for len(s.PerParty) <= party {
		s.PerParty = append(s.PerParty, 0)
	}
	s.PerParty[party] += bytes
	s.BytesSent += bytes
	s.Messages++
}

// Result is the outcome of a cardinality protocol.
type Result struct {
	// Intersection is the number of elements common to all parties
	// (multiset semantics for PSOP, set semantics for KS).
	Intersection int
	// Union is the number of distinct elements across all parties;
	// -1 when the protocol does not compute it (KS).
	Union int
	// Stats are the measured protocol costs.
	Stats Stats
}

// Jaccard returns Intersection/Union, the similarity PIA ranks deployments
// by (§4.2.4). It errors when the protocol did not compute the union.
func (r *Result) Jaccard() (float64, error) {
	if r.Union < 0 {
		return 0, fmt.Errorf("psi: protocol did not compute the union cardinality")
	}
	if r.Union == 0 {
		return 0, nil
	}
	return float64(r.Intersection) / float64(r.Union), nil
}

// disambiguate makes multiset elements unique by appending an occurrence
// counter: an element e appearing t times becomes e‖1 … e‖t (§4.2.2,
// "any element e appearing t times in Si is represented as t unique
// elements"). The output is sorted for determinism; permutation happens
// inside the protocols.
func disambiguate(set []string) []string {
	counts := make(map[string]int, len(set))
	out := make([]string, 0, len(set))
	sorted := append([]string(nil), set...)
	sort.Strings(sorted)
	for _, e := range sorted {
		counts[e]++
		out = append(out, fmt.Sprintf("%s\x00%d", e, counts[e]))
	}
	return out
}

// dedupe returns the distinct elements of a set, sorted.
func dedupe(set []string) []string {
	seen := make(map[string]struct{}, len(set))
	out := make([]string, 0, len(set))
	for _, e := range set {
		if _, ok := seen[e]; ok {
			continue
		}
		seen[e] = struct{}{}
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// CleartextCardinality computes the reference |∩| and |∪| with multiset
// semantics, for validating the private protocols in tests and for SIA-side
// component-set comparisons where no privacy is needed.
func CleartextCardinality(sets [][]string) (inter, union int, err error) {
	if len(sets) < 2 {
		return 0, 0, fmt.Errorf("psi: need at least two sets, got %d", len(sets))
	}
	counts := make([]map[string]int, len(sets))
	for i, s := range sets {
		counts[i] = make(map[string]int)
		for _, e := range s {
			counts[i][e]++
		}
	}
	all := make(map[string]struct{})
	for _, c := range counts {
		for e := range c {
			all[e] = struct{}{}
		}
	}
	for e := range all {
		mn := counts[0][e]
		mx := counts[0][e]
		for _, c := range counts[1:] {
			if c[e] < mn {
				mn = c[e]
			}
			if c[e] > mx {
				mx = c[e]
			}
		}
		inter += mn
		union += mx
	}
	return inter, union, nil
}
