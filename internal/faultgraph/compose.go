package faultgraph

import (
	"fmt"
	"io"
	"sort"
)

// Compose merges several dependency graphs into one aggregate graph whose
// top event fires per the given gate over the input graphs' top events
// (tech-report feature referenced in §4.1.1: e.g. EC2 instances depending on
// services offered by EBS and ELB). Basic events are merged by label —
// a component appearing in two graphs becomes a single shared event —
// while gate events are qualified "g<i>/<label>" on collision so that
// structurally distinct intermediate events never merge accidentally.
//
// Probabilities on merged basic events must agree (unknown merges with
// anything).
func Compose(top string, gate Gate, k int, graphs ...*Graph) (*Graph, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("faultgraph: Compose with no graphs")
	}
	b := NewBuilder()
	gateLabels := make(map[string]bool)
	var tops []NodeID
	for i, g := range graphs {
		mapping := make([]NodeID, g.Len())
		for j := range mapping {
			mapping[j] = -1
		}
		for _, id := range g.TopoOrder() {
			n := g.Node(id)
			if n.Gate == Basic {
				mapping[id] = b.BasicProb(n.Label, n.Prob)
				continue
			}
			label := n.Label
			if gateLabels[label] {
				label = fmt.Sprintf("g%d/%s", i, n.Label)
			}
			gateLabels[label] = true
			children := make([]NodeID, len(n.Children))
			for ci, c := range n.Children {
				children[ci] = mapping[c]
			}
			mapping[id] = b.gate(label, n.Gate, n.K, n.Prob, children)
		}
		tops = append(tops, mapping[g.Top()])
	}
	var topID NodeID
	switch gate {
	case AND:
		topID = b.Gate(top, AND, tops...)
	case OR:
		topID = b.Gate(top, OR, tops...)
	case KofN:
		topID = b.GateK(top, k, tops...)
	default:
		return nil, fmt.Errorf("faultgraph: Compose: invalid gate %v", gate)
	}
	b.SetTop(topID)
	return b.Build()
}

// WriteDOT renders the graph in Graphviz DOT format for inspection. Basic
// events are boxes; gates are labelled ellipses; edges point from parent
// event to child event, matching the paper's Fig. 4 orientation.
func (g *Graph) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph faultgraph {"); err != nil {
		return err
	}
	// Deterministic order: by node ID.
	ids := append([]NodeID(nil), g.topo...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		n := g.Node(id)
		switch n.Gate {
		case Basic:
			label := n.Label
			if n.HasProb() {
				label = fmt.Sprintf("%s\\np=%.4g", n.Label, n.Prob)
			}
			if _, err := fmt.Fprintf(w, "  n%d [shape=box,label=\"%s\"];\n", id, label); err != nil {
				return err
			}
		default:
			gate := n.Gate.String()
			if n.Gate == KofN {
				gate = fmt.Sprintf("%d-of-%d", n.K, len(n.Children))
			}
			shape := "ellipse"
			if id == g.top {
				shape = "doubleoctagon"
			}
			if _, err := fmt.Fprintf(w, "  n%d [shape=%s,label=\"%s\\n[%s]\"];\n", id, shape, n.Label, gate); err != nil {
				return err
			}
		}
		for _, c := range n.Children {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", id, c); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
