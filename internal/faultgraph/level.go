package faultgraph

import (
	"fmt"
	"sort"
)

// SourceSet is the flat dependency set of one data source (one redundant
// system): the component-set level of detail when Probs is empty, the
// fault-set level when probabilities are attached (§4.1.1, Fig. 4a/4b).
type SourceSet struct {
	// Source names the redundant system (e.g. "E1", "Rack5", "Cloud2").
	Source string
	// Components are the components whose individual failure fails Source.
	Components []string
	// Probs optionally assigns failure probabilities to components (and may
	// carry entries for components of other sources; extra keys are ignored).
	Probs map[string]float64
}

// FromSourceSets builds the two-level "AND-of-ORs" dependency graph of
// Fig. 4a/4b: the top event is a K-of-N gate over the sources (K = number of
// source failures that kill the deployment; pass len(sources) for plain
// redundancy, m−n+1 for an n-of-m deployment), and each source is an OR over
// its components. Shared components become shared basic events.
func FromSourceSets(top string, k int, sources []SourceSet) (*Graph, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("faultgraph: no sources")
	}
	b := NewBuilder()
	var sourceIDs []NodeID
	for _, s := range sources {
		if len(s.Components) == 0 {
			return nil, fmt.Errorf("faultgraph: source %q has no components", s.Source)
		}
		var compIDs []NodeID
		for _, c := range s.Components {
			prob := ProbUnknown
			if p, ok := s.Probs[c]; ok {
				prob = p
			}
			compIDs = append(compIDs, b.BasicProb(c, prob))
		}
		sourceIDs = append(sourceIDs, b.Gate(s.Source+" fails", OR, compIDs...))
	}
	var topID NodeID
	if k == len(sources) {
		topID = b.Gate(top, AND, sourceIDs...)
	} else {
		topID = b.GateK(top, k, sourceIDs...)
	}
	b.SetTop(topID)
	return b.Build()
}

// SourceSets downgrades a fault graph to the fault-set level of detail: for
// every child of the top event, the set of basic events that can contribute
// to its failure, with whatever probabilities are known. Downgrading loses
// the internal redundancy structure (that is the point: Fig. 4c → 4b).
func (g *Graph) SourceSets() []SourceSet {
	topChildren := g.nodes[g.top].Children
	out := make([]SourceSet, 0, len(topChildren))
	for _, c := range topChildren {
		basics := g.reachableBasics(c)
		s := SourceSet{Source: g.nodes[c].Label, Probs: make(map[string]float64)}
		for _, id := range basics {
			n := &g.nodes[id]
			s.Components = append(s.Components, n.Label)
			if n.HasProb() {
				s.Probs[n.Label] = n.Prob
			}
		}
		sort.Strings(s.Components)
		if len(s.Probs) == 0 {
			s.Probs = nil
		}
		out = append(out, s)
	}
	return out
}

// ComponentSets downgrades the graph to the component-set level: the sorted
// basic-event labels reachable from each top-level child, probabilities
// discarded (Fig. 4c → 4a).
func (g *Graph) ComponentSets() map[string][]string {
	out := make(map[string][]string)
	for _, s := range g.SourceSets() {
		out[s.Source] = s.Components
	}
	return out
}

// AllComponents returns the sorted labels of every basic event reachable
// from the top event — the provider-wide component-set PIA feeds into the
// private set intersection protocol (§4.2.3).
func (g *Graph) AllComponents() []string {
	labels := g.SortedLabels(g.reachableBasics(g.top))
	return labels
}

func (g *Graph) reachableBasics(root NodeID) []NodeID {
	visited := make([]bool, len(g.nodes))
	stack := []NodeID{root}
	visited[root] = true
	var out []NodeID
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &g.nodes[id]
		if n.Gate == Basic {
			out = append(out, id)
			continue
		}
		for _, c := range n.Children {
			if !visited[c] {
				visited[c] = true
				stack = append(stack, c)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
