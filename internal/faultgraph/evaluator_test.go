package faultgraph

import (
	"reflect"
	"testing"
)

// diamond builds a small shared-dependency graph: two servers behind a
// shared ToR plus private cores, AND at the top.
func diamond(t *testing.T) (*Graph, map[string]NodeID) {
	t.Helper()
	b := NewBuilder()
	ids := map[string]NodeID{}
	ids["tor"] = b.Basic("tor")
	ids["c1"] = b.Basic("c1")
	ids["c2"] = b.Basic("c2")
	s1 := b.Gate("s1", OR, ids["tor"], ids["c1"])
	s2 := b.Gate("s2", OR, ids["tor"], ids["c2"])
	b.SetTop(b.Gate("top", AND, s1, s2))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, ids
}

func TestBasicRankTable(t *testing.T) {
	g, ids := diamond(t)
	if g.NumBasics() != 3 {
		t.Fatalf("NumBasics = %d, want 3", g.NumBasics())
	}
	want := g.BasicEvents()
	for r := 0; r < g.NumBasics(); r++ {
		id := g.BasicAt(r)
		if id != want[r] {
			t.Errorf("BasicAt(%d) = %d, want %d", r, id, want[r])
		}
		if g.BasicRank(id) != r {
			t.Errorf("BasicRank(%d) = %d, want %d", id, g.BasicRank(id), r)
		}
	}
	top, _ := g.Lookup("top")
	if g.BasicRank(top) != -1 {
		t.Error("gate event has a basic rank")
	}
	// Ranks follow ascending ID order.
	if !reflect.DeepEqual(want, []NodeID{ids["tor"], ids["c1"], ids["c2"]}) {
		t.Errorf("BasicEvents = %v", want)
	}
}

func TestEvaluateBasicRanks(t *testing.T) {
	g, ids := diamond(t)
	words := make([]uint64, 1)
	set := func(id NodeID) { words[0] |= 1 << uint(g.BasicRank(id)) }
	if g.EvaluateBasicRanks(words) {
		t.Error("empty failure set failed the top event")
	}
	set(ids["tor"])
	if !g.EvaluateBasicRanks(words) {
		t.Error("{tor} should fail the top event")
	}
	words[0] = 0
	set(ids["c1"])
	if g.EvaluateBasicRanks(words) {
		t.Error("{c1} alone should not fail the top event")
	}
	set(ids["c2"])
	if !g.EvaluateBasicRanks(words) {
		t.Error("{c1,c2} should fail the top event")
	}
}

func TestAssignmentPoolReturnsCleanAssignments(t *testing.T) {
	g, ids := diamond(t)
	a := g.AcquireAssignment()
	a[ids["tor"]] = true
	if !g.Evaluate(a) {
		t.Fatal("tor failure should fire the top")
	}
	g.ReleaseAssignment(a)
	b := g.AcquireAssignment()
	for i, v := range b {
		if v {
			t.Fatalf("pooled assignment dirty at %d", i)
		}
	}
	g.ReleaseAssignment(b)
}

func TestEvaluatorKofN(t *testing.T) {
	b := NewBuilder()
	x := b.Basic("x")
	y := b.Basic("y")
	z := b.Basic("z")
	b.SetTop(b.GateK("top", 2, x, y, z))
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := g.NewEvaluator()
	a := g.NewAssignment()
	a[x] = true
	if ev.EvalBasics(a) {
		t.Error("1 of 3 fired a 2-of-3 gate")
	}
	ev.SetBasic(y, true)
	if !ev.TopFailed() {
		t.Error("2 of 3 did not fire")
	}
	ev.SetBasic(x, false)
	if ev.TopFailed() {
		t.Error("1 of 3 still firing after removal")
	}
	ev.SetBasic(z, true)
	if !ev.TopFailed() {
		t.Error("y+z did not fire")
	}
	// Redundant set to the current state must be a no-op.
	ev.SetBasic(z, true)
	if !ev.TopFailed() {
		t.Error("no-op SetBasic changed state")
	}
}
