package faultgraph

// Evaluator is a mutable failure-propagation engine over one Graph, built
// for workloads that evaluate many closely related assignments — above all
// the sampler's shrink loop, which flips one basic event at a time and asks
// whether the top event still fails.
//
// It keeps, per gate, the count of currently failed children. A full
// bottom-up pass (EvalBasics) costs O(edges) like Graph.Evaluate but runs on
// flat int32 arrays; a single-event flip (SetBasic) propagates counter
// deltas only to the ancestors whose state actually changes, which on
// fan-out-heavy graphs is a tiny fraction of the graph. Evaluators are not
// safe for concurrent use; give each goroutine its own.
type Evaluator struct {
	g *Graph
	// Flat mirrors of the graph, indexed by NodeID.
	k      []int32 // gate threshold (K); 0 for basics
	state  []bool  // current failure state
	cnt    []int32 // failed-children count, gates only
	pStart []int32 // CSR offsets into parents
	pList  []int32 // concatenated parent IDs (all parents are gates)
	gates  []int32 // non-basic nodes, children-before-parents order
	cStart []int32 // CSR offsets into children, aligned with gates
	cList  []int32 // concatenated child IDs of gates
	stack  []int32 // scratch for SetBasic propagation
}

// NewEvaluator builds an Evaluator for g with every event healthy.
func (g *Graph) NewEvaluator() *Evaluator {
	n := len(g.nodes)
	e := &Evaluator{
		g:      g,
		k:      make([]int32, n),
		state:  make([]bool, n),
		cnt:    make([]int32, n),
		pStart: make([]int32, n+1),
	}
	for i := range g.nodes {
		nd := &g.nodes[i]
		e.k[i] = int32(nd.K)
		for _, c := range nd.Children {
			e.pStart[c+1]++
		}
	}
	for i := 0; i < n; i++ {
		e.pStart[i+1] += e.pStart[i]
	}
	fill := make([]int32, n)
	e.pList = make([]int32, e.pStart[n])
	for i := range g.nodes {
		for _, c := range g.nodes[i].Children {
			e.pList[e.pStart[c]+fill[c]] = int32(i)
			fill[c]++
		}
	}
	for _, id := range g.topo {
		nd := &g.nodes[id]
		if nd.Gate == Basic {
			continue
		}
		e.gates = append(e.gates, int32(id))
		e.cStart = append(e.cStart, int32(len(e.cList)))
		for _, c := range nd.Children {
			e.cList = append(e.cList, int32(c))
		}
	}
	e.cStart = append(e.cStart, int32(len(e.cList)))
	return e
}

// EvalBasics installs the basic-event failure states of a (gate entries are
// ignored) and recomputes every gate bottom-up. It returns whether the top
// event fails. Use it once per fresh assignment, then SetBasic for
// incremental edits.
func (e *Evaluator) EvalBasics(a Assignment) bool {
	for _, id := range e.g.basics {
		e.state[id] = a[id]
	}
	return e.evalGates()
}

// evalGates recomputes cnt and state for every gate from the current basic
// states, bottom-up.
func (e *Evaluator) evalGates() bool {
	for gi, id := range e.gates {
		failed := int32(0)
		for _, c := range e.cList[e.cStart[gi]:e.cStart[gi+1]] {
			if e.state[c] {
				failed++
			}
		}
		e.cnt[id] = failed
		e.state[id] = failed >= e.k[id]
	}
	return e.state[e.g.top]
}

// SetBasic flips one basic event to the given failure state and propagates
// the change to the (transitively) affected gates only.
func (e *Evaluator) SetBasic(id NodeID, failed bool) {
	if e.state[id] == failed {
		return
	}
	e.state[id] = failed
	e.stack = append(e.stack[:0], int32(id))
	for len(e.stack) > 0 {
		c := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		var delta int32 = 1
		if !e.state[c] {
			delta = -1
		}
		for _, p := range e.pList[e.pStart[c]:e.pStart[c+1]] {
			e.cnt[p] += delta
			ps := e.cnt[p] >= e.k[p]
			if ps != e.state[p] {
				e.state[p] = ps
				e.stack = append(e.stack, p)
			}
		}
	}
}

// TopFailed reports the current state of the top event.
func (e *Evaluator) TopFailed() bool { return e.state[e.g.top] }
