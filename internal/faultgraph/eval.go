package faultgraph

import (
	"fmt"
	"math"
	mbits "math/bits"
)

// Assignment maps every node ID to a failure state. Index by NodeID.
type Assignment []bool

// NewAssignment allocates an all-healthy assignment for graph g.
func (g *Graph) NewAssignment() Assignment { return make(Assignment, len(g.nodes)) }

// AcquireAssignment returns an all-healthy assignment from the graph's
// internal pool, avoiding an allocation per evaluation in hot paths. Pair
// with ReleaseAssignment.
func (g *Graph) AcquireAssignment() Assignment {
	if v := g.apool.Get(); v != nil {
		return v.(Assignment)
	}
	return g.NewAssignment()
}

// ReleaseAssignment clears a and returns it to the pool. The caller must not
// use a afterwards.
func (g *Graph) ReleaseAssignment(a Assignment) {
	for i := range a {
		a[i] = false
	}
	g.apool.Put(a)
}

// EvaluateBasicRanks returns whether the top event fails when exactly the
// basic events whose ranks (see BasicRank) are set in words have failed.
// It is the bitset fast path of Evaluate: no caller-managed Assignment, no
// allocation (a pooled scratch assignment is used internally).
func (g *Graph) EvaluateBasicRanks(words []uint64) bool {
	a := g.AcquireAssignment()
	for wi, w := range words {
		base := wi << 6
		for w != 0 {
			r := base + mbits.TrailingZeros64(w)
			w &= w - 1
			if r >= len(g.basics) {
				break // stray bits beyond the basic universe are ignored
			}
			a[g.basics[r]] = true
		}
	}
	failed := g.Evaluate(a)
	g.ReleaseAssignment(a)
	return failed
}

// Evaluate propagates the failure states of basic events bottom-up through
// the gates (§4.1.2, failure sampling semantics) and returns whether the top
// event fails. Non-basic entries of a are overwritten.
func (g *Graph) Evaluate(a Assignment) bool {
	if len(a) != len(g.nodes) {
		panic(fmt.Sprintf("faultgraph: assignment length %d, graph has %d nodes", len(a), len(g.nodes)))
	}
	for _, id := range g.topo {
		n := &g.nodes[id]
		if n.Gate == Basic {
			continue
		}
		failed := 0
		for _, c := range n.Children {
			if a[c] {
				failed++
				if failed >= n.K {
					break
				}
			}
		}
		a[id] = failed >= n.K
	}
	return a[g.top]
}

// EvaluateSet returns whether the top event fails when exactly the basic
// events in failed (by label) have failed. Unknown labels are ignored.
func (g *Graph) EvaluateSet(failed []string) bool {
	a := g.AcquireAssignment()
	for _, label := range failed {
		if id, ok := g.byLabel[label]; ok && g.nodes[id].Gate == Basic {
			a[id] = true
		}
	}
	res := g.Evaluate(a)
	g.ReleaseAssignment(a)
	return res
}

// TopProbExact computes the exact failure probability of the top event by
// enumerating all 2^b assignments of the b basic events, assuming basic
// events fail independently with their assigned probabilities. Every basic
// event must carry a probability. Exponential — intended for validating
// other estimators on small graphs (b ≤ ~20).
func (g *Graph) TopProbExact() (float64, error) {
	basics := g.BasicEvents()
	for _, id := range basics {
		if !g.nodes[id].HasProb() {
			return 0, fmt.Errorf("faultgraph: basic event %q has no probability", g.nodes[id].Label)
		}
	}
	if len(basics) > 26 {
		return 0, fmt.Errorf("faultgraph: TopProbExact limited to 26 basic events, graph has %d", len(basics))
	}
	a := g.NewAssignment()
	total := 0.0
	for mask := 0; mask < 1<<len(basics); mask++ {
		p := 1.0
		for i, id := range basics {
			fail := mask&(1<<i) != 0
			a[id] = fail
			if fail {
				p *= g.nodes[id].Prob
			} else {
				p *= 1 - g.nodes[id].Prob
			}
		}
		if p == 0 {
			continue
		}
		if g.Evaluate(a) {
			total += p
		}
	}
	return total, nil
}

// TopProbBottomUp computes the top event probability by propagating
// probabilities through the gates assuming *independent* child events.
// This is exact only when the graph is a tree (no shared subtrees); with
// shared dependencies it is an approximation — precisely the error that
// motivates risk-group analysis. Exposed for ablation studies.
func (g *Graph) TopProbBottomUp() (float64, error) {
	probs := make([]float64, len(g.nodes))
	for _, id := range g.topo {
		n := &g.nodes[id]
		if n.Gate == Basic {
			if !n.HasProb() {
				return 0, fmt.Errorf("faultgraph: basic event %q has no probability", n.Label)
			}
			probs[id] = n.Prob
			continue
		}
		switch n.Gate {
		case AND:
			p := 1.0
			for _, c := range n.Children {
				p *= probs[c]
			}
			probs[id] = p
		case OR:
			q := 1.0
			for _, c := range n.Children {
				q *= 1 - probs[c]
			}
			probs[id] = 1 - q
		case KofN:
			probs[id] = kOfNProb(n.K, n.Children, probs)
		}
	}
	return probs[g.top], nil
}

// kOfNProb computes P(at least k of the children fail) for independent
// children via dynamic programming over the count of failures.
func kOfNProb(k int, children []NodeID, probs []float64) float64 {
	// dist[j] = P(exactly j failures among children seen so far).
	dist := make([]float64, len(children)+1)
	dist[0] = 1
	for i, c := range children {
		p := probs[c]
		for j := i + 1; j >= 1; j-- {
			dist[j] = dist[j]*(1-p) + dist[j-1]*p
		}
		dist[0] *= 1 - p
	}
	total := 0.0
	for j := k; j <= len(children); j++ {
		total += dist[j]
	}
	return math.Min(total, 1)
}
