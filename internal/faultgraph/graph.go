// Package faultgraph implements INDaaS's dependency graph representation
// (§4.1.1), an adaptation of classic fault trees [52,60] to directed acyclic
// graphs supporting three levels of detail:
//
//   - component-set: a two-level AND-of-ORs over shared components (Fig. 4a);
//   - fault-set: component-sets whose events carry failure probabilities
//     (Fig. 4b);
//   - fault graph: arbitrary DAGs of failure events joined by AND / OR /
//     K-of-N gates, optionally weighted (Fig. 4c).
//
// Nodes are failure events. Basic events (no children) model component
// failures; the root is the top event (failure of the whole redundancy
// deployment R); everything in between is an intermediate event. A node
// "fails" when its gate, applied to its children's failure states, fires.
package faultgraph

import (
	"fmt"
	"sort"
	"sync"
)

// Gate is the logic connecting an event to its child events.
type Gate int

const (
	// Basic marks a leaf event (component failure); it has no children.
	Basic Gate = iota
	// AND fires when every child fails — redundancy: all replicas must die.
	AND
	// OR fires when any child fails — a chain of single points of failure.
	OR
	// KofN fires when at least K children fail. AND is KofN(K=N), OR is
	// KofN(K=1). An n-of-m redundant deployment (service survives with any n
	// of m replicas, n ≤ m) fails when m−n+1 replicas fail, so it is modelled
	// as KofN with K = m−n+1.
	KofN
)

// String returns the gate's conventional name.
func (g Gate) String() string {
	switch g {
	case Basic:
		return "BASIC"
	case AND:
		return "AND"
	case OR:
		return "OR"
	case KofN:
		return "K-of-N"
	default:
		return fmt.Sprintf("Gate(%d)", int(g))
	}
}

// NodeID identifies a node within one Graph; IDs are dense indices.
type NodeID int

// ProbUnknown is the Prob value of an event without failure-likelihood
// information (component-set level of detail).
const ProbUnknown = -1.0

// Node is one failure event.
type Node struct {
	ID       NodeID
	Label    string // unique within the graph; component or event name
	Gate     Gate
	K        int      // threshold, used only by KofN
	Children []NodeID // child events, empty iff Gate == Basic
	Prob     float64  // failure probability in [0,1], or ProbUnknown
}

// HasProb reports whether the event carries failure-likelihood information.
func (n *Node) HasProb() bool { return n.Prob >= 0 }

// Graph is an immutable fault graph. Build one with a Builder.
type Graph struct {
	nodes   []Node
	byLabel map[string]NodeID
	top     NodeID
	topo    []NodeID // children-before-parents order
	basics  []NodeID // basic events in ascending ID order
	rank    []int32  // NodeID → dense basic-event rank, -1 for gates
	apool   sync.Pool
}

// Top returns the top event's ID.
func (g *Graph) Top() NodeID { return g.top }

// Len returns the number of events in the graph.
func (g *Graph) Len() int { return len(g.nodes) }

// Node returns the node with the given ID. The returned pointer aliases the
// graph's storage and must be treated as read-only.
func (g *Graph) Node(id NodeID) *Node { return &g.nodes[id] }

// Lookup returns the ID of the event with the given label.
func (g *Graph) Lookup(label string) (NodeID, bool) {
	id, ok := g.byLabel[label]
	return id, ok
}

// BasicEvents returns the IDs of all basic events in ascending order.
func (g *Graph) BasicEvents() []NodeID {
	return append([]NodeID(nil), g.basics...)
}

// NumBasics returns the number of basic events.
func (g *Graph) NumBasics() int { return len(g.basics) }

// BasicRank returns the dense rank of a basic event: basics are numbered
// 0..NumBasics()-1 in ascending ID order, giving bitset representations of
// event sets a compact universe. Returns -1 for gate events.
func (g *Graph) BasicRank(id NodeID) int { return int(g.rank[id]) }

// BasicAt returns the basic event with the given rank. Because ranks follow
// ascending ID order, iterating ranks 0..NumBasics()-1 yields IDs ascending.
func (g *Graph) BasicAt(rank int) NodeID { return g.basics[rank] }

// TopoOrder returns every event reachable from the top in an order where
// children precede parents. The slice is shared; do not modify.
func (g *Graph) TopoOrder() []NodeID { return g.topo }

// Labels maps a list of node IDs to their labels.
func (g *Graph) Labels(ids []NodeID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.nodes[id].Label
	}
	return out
}

// SortedLabels maps node IDs to labels and sorts them, for stable output.
func (g *Graph) SortedLabels(ids []NodeID) []string {
	out := g.Labels(ids)
	sort.Strings(out)
	return out
}

// Builder incrementally assembles a Graph. Basic events are deduplicated by
// label so that shared components (the same switch feeding two racks) become
// shared subtrees — the property independence auditing exists to detect.
type Builder struct {
	nodes   []Node
	byLabel map[string]NodeID
	top     NodeID
	topSet  bool
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{byLabel: make(map[string]NodeID)}
}

func (b *Builder) fail(format string, args ...any) NodeID {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
	return -1
}

// Basic adds (or returns the existing) basic event with the given label and
// no probability information.
func (b *Builder) Basic(label string) NodeID {
	return b.BasicProb(label, ProbUnknown)
}

// BasicProb adds (or returns the existing) basic event with the given label
// and failure probability. Re-adding an existing basic event with a
// different, known probability is an error; re-adding with ProbUnknown
// leaves the stored probability untouched.
func (b *Builder) BasicProb(label string, prob float64) NodeID {
	if b.err != nil {
		return -1
	}
	if label == "" {
		return b.fail("faultgraph: basic event with empty label")
	}
	if prob != ProbUnknown && (prob < 0 || prob > 1) {
		return b.fail("faultgraph: event %q probability %v out of [0,1]", label, prob)
	}
	if id, ok := b.byLabel[label]; ok {
		n := &b.nodes[id]
		if n.Gate != Basic {
			return b.fail("faultgraph: label %q reused for basic and gate events", label)
		}
		if prob != ProbUnknown {
			if n.HasProb() && n.Prob != prob {
				return b.fail("faultgraph: basic event %q given conflicting probabilities %v and %v", label, n.Prob, prob)
			}
			n.Prob = prob
		}
		return id
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Label: label, Gate: Basic, Prob: prob})
	b.byLabel[label] = id
	return id
}

// Gate adds an intermediate (or top) event with the given gate over children.
func (b *Builder) Gate(label string, gate Gate, children ...NodeID) NodeID {
	return b.gate(label, gate, 0, ProbUnknown, children)
}

// GateK adds a K-of-N event over children.
func (b *Builder) GateK(label string, k int, children ...NodeID) NodeID {
	return b.gate(label, KofN, k, ProbUnknown, children)
}

// GateProb adds a gate event with an explicitly assigned probability (the
// paper allows weights on intermediate events; analyses that compute
// probabilities bottom-up ignore such overrides unless stated otherwise).
func (b *Builder) GateProb(label string, gate Gate, prob float64, children ...NodeID) NodeID {
	return b.gate(label, gate, 0, prob, children)
}

func (b *Builder) gate(label string, gate Gate, k int, prob float64, children []NodeID) NodeID {
	if b.err != nil {
		return -1
	}
	if label == "" {
		return b.fail("faultgraph: gate event with empty label")
	}
	if _, ok := b.byLabel[label]; ok {
		return b.fail("faultgraph: duplicate event label %q", label)
	}
	if gate != AND && gate != OR && gate != KofN {
		return b.fail("faultgraph: event %q: invalid gate %v", label, gate)
	}
	if len(children) == 0 {
		return b.fail("faultgraph: gate event %q has no children", label)
	}
	switch gate {
	case KofN:
		if k < 1 || k > len(children) {
			return b.fail("faultgraph: event %q: K=%d out of range 1..%d", label, k, len(children))
		}
	case AND:
		k = len(children)
	case OR:
		k = 1
	}
	seen := make(map[NodeID]bool, len(children))
	for _, c := range children {
		if c < 0 || int(c) >= len(b.nodes) {
			return b.fail("faultgraph: event %q: unknown child %d", label, c)
		}
		if seen[c] {
			return b.fail("faultgraph: event %q: duplicate child %q", label, b.nodes[c].Label)
		}
		seen[c] = true
	}
	if prob != ProbUnknown && (prob < 0 || prob > 1) {
		return b.fail("faultgraph: event %q probability %v out of [0,1]", label, prob)
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{ID: id, Label: label, Gate: gate, K: k, Children: append([]NodeID(nil), children...), Prob: prob})
	b.byLabel[label] = id
	return id
}

// SetTop designates the top event.
func (b *Builder) SetTop(id NodeID) {
	if b.err != nil {
		return
	}
	if id < 0 || int(id) >= len(b.nodes) {
		b.fail("faultgraph: SetTop: unknown node %d", id)
		return
	}
	b.top = id
	b.topSet = true
}

// Err returns the first error recorded by the builder, if any.
func (b *Builder) Err() error { return b.err }

// Build validates the graph (top set, acyclic — guaranteed by construction
// since children must pre-exist — and top reachability) and freezes it.
// The Builder must not be used afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if !b.topSet {
		return nil, fmt.Errorf("faultgraph: top event not set")
	}
	g := &Graph{nodes: b.nodes, byLabel: b.byLabel, top: b.top}
	g.topo = topoFrom(g, g.top)
	if g.nodes[g.top].Gate == Basic {
		return nil, fmt.Errorf("faultgraph: top event %q is a basic event", g.nodes[g.top].Label)
	}
	g.rank = make([]int32, len(g.nodes))
	for i := range g.nodes {
		if g.nodes[i].Gate == Basic {
			g.rank[i] = int32(len(g.basics))
			g.basics = append(g.basics, NodeID(i))
		} else {
			g.rank[i] = -1
		}
	}
	return g, nil
}

// topoFrom returns the events reachable from root in children-before-parents
// order. Construction guarantees acyclicity (a gate can only reference nodes
// created before it), so an iterative post-order DFS suffices.
func topoFrom(g *Graph, root NodeID) []NodeID {
	visited := make([]bool, len(g.nodes))
	var order []NodeID
	type frame struct {
		id    NodeID
		child int
	}
	stack := []frame{{id: root}}
	visited[root] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		children := g.nodes[f.id].Children
		if f.child < len(children) {
			c := children[f.child]
			f.child++
			if !visited[c] {
				visited[c] = true
				stack = append(stack, frame{id: c})
			}
			continue
		}
		order = append(order, f.id)
		stack = stack[:len(stack)-1]
	}
	return order
}
