package faultgraph

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// fig4ab builds the Fig. 4a/4b example: E1 depends on {A1,A2}, E2 on
// {A2,A3}; with probabilities it is the fault-set example of Fig. 4b.
func fig4ab(withProbs bool) (*Graph, error) {
	sets := []SourceSet{
		{Source: "E1", Components: []string{"A1", "A2"}},
		{Source: "E2", Components: []string{"A2", "A3"}},
	}
	if withProbs {
		probs := map[string]float64{"A1": 0.1, "A2": 0.2, "A3": 0.3}
		sets[0].Probs = probs
		sets[1].Probs = probs
	}
	return FromSourceSets("deployment fails", 2, sets)
}

func TestFromSourceSetsStructure(t *testing.T) {
	g, err := fig4ab(false)
	if err != nil {
		t.Fatalf("FromSourceSets: %v", err)
	}
	// 3 shared basics + 2 OR gates + 1 AND top.
	if g.Len() != 6 {
		t.Fatalf("Len = %d, want 6", g.Len())
	}
	top := g.Node(g.Top())
	if top.Gate != AND || len(top.Children) != 2 {
		t.Fatalf("top gate = %v/%d children", top.Gate, len(top.Children))
	}
	a2, ok := g.Lookup("A2")
	if !ok {
		t.Fatal("A2 missing")
	}
	// A2 must be shared: referenced by both OR gates.
	refs := 0
	for i := 0; i < g.Len(); i++ {
		for _, c := range g.Node(NodeID(i)).Children {
			if c == a2 {
				refs++
			}
		}
	}
	if refs != 2 {
		t.Errorf("A2 referenced %d times, want 2 (shared component)", refs)
	}
}

func TestEvaluateFig4a(t *testing.T) {
	g, err := fig4ab(false)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		failed []string
		want   bool
	}{
		{nil, false},
		{[]string{"A1"}, false},
		{[]string{"A2"}, true}, // shared component alone kills both sources
		{[]string{"A3"}, false},
		{[]string{"A1", "A3"}, true},
		{[]string{"A1", "A2"}, true},
		{[]string{"A1", "A2", "A3"}, true},
		{[]string{"nonexistent"}, false},
	}
	for i, c := range cases {
		if got := g.EvaluateSet(c.failed); got != c.want {
			t.Errorf("case %d: EvaluateSet(%v) = %v, want %v", i, c.failed, got, c.want)
		}
	}
}

func TestTopProbExactFig4b(t *testing.T) {
	g, err := fig4ab(true)
	if err != nil {
		t.Fatal(err)
	}
	// The paper computes Pr(T) = 0.1*0.3 + 0.2 - 0.1*0.3*0.2 = 0.224 via
	// inclusion-exclusion over the minimal RGs {A2} and {A1,A3}.
	got, err := g.TopProbExact()
	if err != nil {
		t.Fatalf("TopProbExact: %v", err)
	}
	if math.Abs(got-0.224) > 1e-12 {
		t.Errorf("Pr(T) = %v, want 0.224", got)
	}
}

func TestTopProbExactRequiresProbs(t *testing.T) {
	g, err := fig4ab(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.TopProbExact(); err == nil {
		t.Error("TopProbExact accepted a graph without probabilities")
	}
}

func TestTopProbBottomUpTree(t *testing.T) {
	// On a tree (no shared events) bottom-up equals exact.
	b := NewBuilder()
	x := b.BasicProb("x", 0.5)
	y := b.BasicProb("y", 0.25)
	z := b.BasicProb("z", 0.125)
	or := b.Gate("or", OR, x, y)
	top := b.Gate("top", AND, or, z)
	b.SetTop(top)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.TopProbExact()
	if err != nil {
		t.Fatal(err)
	}
	bu, err := g.TopProbBottomUp()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-bu) > 1e-12 {
		t.Errorf("tree: exact %v != bottom-up %v", exact, bu)
	}
}

func TestTopProbBottomUpSharedDiverges(t *testing.T) {
	// With a shared component, naive bottom-up over-/under-estimates —
	// this is the error INDaaS's RG analysis avoids.
	g, err := fig4ab(true)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.TopProbExact()
	if err != nil {
		t.Fatal(err)
	}
	bu, err := g.TopProbBottomUp()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-bu) < 1e-6 {
		t.Errorf("shared-component graph: bottom-up %v suspiciously equals exact %v", bu, exact)
	}
}

func TestKofNGate(t *testing.T) {
	b := NewBuilder()
	var kids []NodeID
	for _, l := range []string{"a", "b", "c"} {
		kids = append(kids, b.Basic(l))
	}
	top := b.GateK("top", 2, kids...)
	b.SetTop(top)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		failed []string
		want   bool
	}{
		{nil, false},
		{[]string{"a"}, false},
		{[]string{"a", "b"}, true},
		{[]string{"a", "c"}, true},
		{[]string{"a", "b", "c"}, true},
	}
	for i, c := range cases {
		if got := g.EvaluateSet(c.failed); got != c.want {
			t.Errorf("case %d: 2-of-3 with %v = %v, want %v", i, c.failed, got, c.want)
		}
	}
}

func TestKofNProbMatchesExact(t *testing.T) {
	b := NewBuilder()
	var kids []NodeID
	probs := []float64{0.1, 0.4, 0.7, 0.25}
	for i, p := range probs {
		kids = append(kids, b.BasicProb(string(rune('a'+i)), p))
	}
	top := b.GateK("top", 3, kids...)
	b.SetTop(top)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	exact, err := g.TopProbExact()
	if err != nil {
		t.Fatal(err)
	}
	bu, err := g.TopProbBottomUp()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-bu) > 1e-12 {
		t.Errorf("KofN DP %v != exact %v", bu, exact)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("empty label", func(t *testing.T) {
		b := NewBuilder()
		b.Basic("")
		if b.Err() == nil {
			t.Error("accepted empty label")
		}
	})
	t.Run("bad probability", func(t *testing.T) {
		b := NewBuilder()
		b.BasicProb("x", 1.5)
		if b.Err() == nil {
			t.Error("accepted probability > 1")
		}
	})
	t.Run("conflicting probabilities", func(t *testing.T) {
		b := NewBuilder()
		b.BasicProb("x", 0.1)
		b.BasicProb("x", 0.2)
		if b.Err() == nil {
			t.Error("accepted conflicting probabilities")
		}
	})
	t.Run("unknown merges with known", func(t *testing.T) {
		b := NewBuilder()
		b.BasicProb("x", 0.1)
		id := b.Basic("x")
		y := b.Basic("y")
		b.SetTop(b.Gate("t", OR, id, y))
		g, err := b.Build()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if n := g.Node(id); n.Prob != 0.1 {
			t.Errorf("probability lost on re-add: %v", n.Prob)
		}
	})
	t.Run("duplicate gate label", func(t *testing.T) {
		b := NewBuilder()
		x := b.Basic("x")
		b.Gate("g", OR, x)
		b.Gate("g", OR, x)
		if b.Err() == nil {
			t.Error("accepted duplicate gate label")
		}
	})
	t.Run("label reuse basic/gate", func(t *testing.T) {
		b := NewBuilder()
		x := b.Basic("x")
		b.Gate("x2", OR, x)
		b.Basic("x2")
		if b.Err() == nil {
			t.Error("accepted basic with a gate's label")
		}
	})
	t.Run("gate without children", func(t *testing.T) {
		b := NewBuilder()
		b.Gate("g", AND)
		if b.Err() == nil {
			t.Error("accepted childless gate")
		}
	})
	t.Run("unknown child", func(t *testing.T) {
		b := NewBuilder()
		b.Gate("g", AND, NodeID(99))
		if b.Err() == nil {
			t.Error("accepted unknown child")
		}
	})
	t.Run("duplicate child", func(t *testing.T) {
		b := NewBuilder()
		x := b.Basic("x")
		b.Gate("g", AND, x, x)
		if b.Err() == nil {
			t.Error("accepted duplicate child")
		}
	})
	t.Run("K out of range", func(t *testing.T) {
		b := NewBuilder()
		x := b.Basic("x")
		y := b.Basic("y")
		b.GateK("g", 3, x, y)
		if b.Err() == nil {
			t.Error("accepted K > N")
		}
		b2 := NewBuilder()
		b2.GateK("g", 0, b2.Basic("x"))
		if b2.Err() == nil {
			t.Error("accepted K = 0")
		}
	})
	t.Run("top not set", func(t *testing.T) {
		b := NewBuilder()
		b.Basic("x")
		if _, err := b.Build(); err == nil {
			t.Error("Build without SetTop succeeded")
		}
	})
	t.Run("basic top", func(t *testing.T) {
		b := NewBuilder()
		b.SetTop(b.Basic("x"))
		if _, err := b.Build(); err == nil {
			t.Error("Build with basic top succeeded")
		}
	})
	t.Run("SetTop unknown", func(t *testing.T) {
		b := NewBuilder()
		b.SetTop(NodeID(5))
		if b.Err() == nil {
			t.Error("SetTop accepted unknown node")
		}
	})
	t.Run("errors sticky", func(t *testing.T) {
		b := NewBuilder()
		b.Basic("")
		first := b.Err()
		b.Basic("ok")
		if b.Err() != first {
			t.Error("error not sticky")
		}
		if _, err := b.Build(); err != first {
			t.Error("Build did not return first error")
		}
	})
}

func TestTopoOrder(t *testing.T) {
	g, err := fig4ab(false)
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[NodeID]int)
	for i, id := range g.TopoOrder() {
		pos[id] = i
	}
	if len(pos) != g.Len() {
		t.Fatalf("topo order covers %d of %d nodes", len(pos), g.Len())
	}
	for i := 0; i < g.Len(); i++ {
		n := g.Node(NodeID(i))
		for _, c := range n.Children {
			if pos[c] >= pos[n.ID] {
				t.Errorf("child %q not before parent %q", g.Node(c).Label, n.Label)
			}
		}
	}
	if g.TopoOrder()[g.Len()-1] != g.Top() {
		t.Error("top event not last in topo order")
	}
}

func TestSourceSetsDowngrade(t *testing.T) {
	// Build a deep fault graph and downgrade to fault sets.
	b := NewBuilder()
	tor := b.BasicProb("ToR1", 0.1)
	core1 := b.BasicProb("Core1", 0.1)
	core2 := b.BasicProb("Core2", 0.1)
	path1 := b.Gate("S1 path1", OR, tor, core1)
	path2 := b.Gate("S1 path2", OR, tor, core2)
	net := b.Gate("S1 network", AND, path1, path2)
	disk := b.BasicProb("S1-disk", 0.05)
	s1 := b.Gate("S1", OR, net, disk)
	s2disk := b.BasicProb("S2-disk", 0.05)
	s2 := b.Gate("S2", OR, s2disk)
	top := b.Gate("R", AND, s1, s2)
	b.SetTop(top)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	sets := g.SourceSets()
	if len(sets) != 2 {
		t.Fatalf("SourceSets = %d, want 2", len(sets))
	}
	if sets[0].Source != "S1" || sets[1].Source != "S2" {
		t.Fatalf("source names: %v, %v", sets[0].Source, sets[1].Source)
	}
	wantS1 := []string{"Core1", "Core2", "S1-disk", "ToR1"}
	if !reflect.DeepEqual(sets[0].Components, wantS1) {
		t.Errorf("S1 components = %v, want %v", sets[0].Components, wantS1)
	}
	if sets[0].Probs["ToR1"] != 0.1 || sets[0].Probs["S1-disk"] != 0.05 {
		t.Errorf("S1 probs = %v", sets[0].Probs)
	}
	cs := g.ComponentSets()
	if !reflect.DeepEqual(cs["S2"], []string{"S2-disk"}) {
		t.Errorf("S2 component set = %v", cs["S2"])
	}
	all := g.AllComponents()
	want := []string{"Core1", "Core2", "S1-disk", "S2-disk", "ToR1"}
	if !reflect.DeepEqual(all, want) {
		t.Errorf("AllComponents = %v, want %v", all, want)
	}
}

func TestFromSourceSetsErrors(t *testing.T) {
	if _, err := FromSourceSets("t", 1, nil); err == nil {
		t.Error("accepted zero sources")
	}
	if _, err := FromSourceSets("t", 1, []SourceSet{{Source: "E1"}}); err == nil {
		t.Error("accepted source without components")
	}
}

func TestFromSourceSetsKofN(t *testing.T) {
	// 2-of-3 redundancy deployment: n=2 of m=3 needed, fails when 2 fail.
	sets := []SourceSet{
		{Source: "E1", Components: []string{"A"}},
		{Source: "E2", Components: []string{"B"}},
		{Source: "E3", Components: []string{"C"}},
	}
	g, err := FromSourceSets("t", 2, sets)
	if err != nil {
		t.Fatal(err)
	}
	if g.EvaluateSet([]string{"A"}) {
		t.Error("one failure should not fire 2-of-3")
	}
	if !g.EvaluateSet([]string{"A", "C"}) {
		t.Error("two failures should fire 2-of-3")
	}
}

func TestCompose(t *testing.T) {
	g1, err := FromSourceSets("ebs fails", 2, []SourceSet{
		{Source: "ebs1", Components: []string{"disk1", "pdu"}},
		{Source: "ebs2", Components: []string{"disk2", "pdu"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromSourceSets("elb fails", 2, []SourceSet{
		{Source: "elb1", Components: []string{"lb1", "pdu"}},
		{Source: "elb2", Components: []string{"lb2"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// EC2 service fails if EBS fails OR ELB fails.
	g, err := Compose("ec2 fails", OR, 0, g1, g2)
	if err != nil {
		t.Fatalf("Compose: %v", err)
	}
	// "pdu" appears in both graphs: must be merged to a single basic event.
	count := 0
	for i := 0; i < g.Len(); i++ {
		if g.Node(NodeID(i)).Gate == Basic && g.Node(NodeID(i)).Label == "pdu" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("pdu appears %d times, want 1", count)
	}
	// pdu alone takes out EBS (both replicas) and hence the composition.
	if !g.EvaluateSet([]string{"pdu"}) {
		t.Error("shared pdu failure should fail the composed service")
	}
	if g.EvaluateSet([]string{"disk1"}) {
		t.Error("single disk should not fail the composed service")
	}
	if !g.EvaluateSet([]string{"lb1", "lb2"}) {
		t.Error("both load balancers failing should fail the composed service")
	}
}

func TestComposeLabelCollision(t *testing.T) {
	mk := func() *Graph {
		g, err := FromSourceSets("svc fails", 1, []SourceSet{
			{Source: "E1", Components: []string{"shared"}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g, err := Compose("top", AND, 0, mk(), mk())
	if err != nil {
		t.Fatalf("Compose with colliding gate labels: %v", err)
	}
	// Both subtrees share the basic event, so its failure fails everything.
	if !g.EvaluateSet([]string{"shared"}) {
		t.Error("shared basic should fail composed AND")
	}
	if _, ok := g.Lookup("g1/svc fails"); !ok {
		t.Error("colliding gate label not qualified")
	}
}

func TestComposeErrors(t *testing.T) {
	if _, err := Compose("t", AND, 0); err == nil {
		t.Error("Compose with no graphs succeeded")
	}
	g, err := fig4ab(false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compose("t", Basic, 0, g); err == nil {
		t.Error("Compose with Basic gate succeeded")
	}
}

func TestWriteDOT(t *testing.T) {
	g, err := fig4ab(true)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := g.WriteDOT(&sb); err != nil {
		t.Fatalf("WriteDOT: %v", err)
	}
	dot := sb.String()
	for _, want := range []string{"digraph faultgraph", "A1", "p=0.1", "AND", "doubleoctagon", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

// randomGraph builds a random DAG fault graph with b basic events and g
// gates, returning it and a straightforward recursive evaluator to check
// Evaluate against.
func randomGraph(r *rand.Rand, nb, ng int) *Graph {
	b := NewBuilder()
	var ids []NodeID
	for i := 0; i < nb; i++ {
		ids = append(ids, b.BasicProb(string(rune('a'+i)), r.Float64()))
	}
	for i := 0; i < ng; i++ {
		nkids := 1 + r.Intn(min(4, len(ids)))
		perm := r.Perm(len(ids))[:nkids]
		kids := make([]NodeID, nkids)
		for j, p := range perm {
			kids[j] = ids[p]
		}
		var id NodeID
		switch r.Intn(3) {
		case 0:
			id = b.Gate(string(rune('A'+i)), AND, kids...)
		case 1:
			id = b.Gate(string(rune('A'+i)), OR, kids...)
		default:
			id = b.GateK(string(rune('A'+i)), 1+r.Intn(nkids), kids...)
		}
		ids = append(ids, id)
	}
	top := b.Gate("TOP", OR, ids[len(ids)-1])
	b.SetTop(top)
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func recursiveEval(g *Graph, id NodeID, a Assignment, memo map[NodeID]int) bool {
	if v, ok := memo[id]; ok {
		return v == 1
	}
	n := g.Node(id)
	var out bool
	if n.Gate == Basic {
		out = a[id]
	} else {
		failed := 0
		for _, c := range n.Children {
			if recursiveEval(g, c, a, memo) {
				failed++
			}
		}
		out = failed >= n.K
	}
	v := 0
	if out {
		v = 1
	}
	memo[id] = v
	return out
}

func TestEvaluateMatchesRecursiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 2+r.Intn(8), 1+r.Intn(10))
		for trial := 0; trial < 10; trial++ {
			a := g.NewAssignment()
			ref := g.NewAssignment()
			for _, id := range g.BasicEvents() {
				v := r.Intn(2) == 0
				a[id] = v
				ref[id] = v
			}
			want := recursiveEval(g, g.Top(), ref, map[NodeID]int{})
			if got := g.Evaluate(a); got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTopProbExactMatchesMonteCarlo(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g := randomGraph(r, 8, 6)
	exact, err := g.TopProbExact()
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 200000
	hits := 0
	a := g.NewAssignment()
	for i := 0; i < rounds; i++ {
		for _, id := range g.BasicEvents() {
			a[id] = r.Float64() < g.Node(id).Prob
		}
		if g.Evaluate(a) {
			hits++
		}
	}
	mc := float64(hits) / rounds
	if math.Abs(mc-exact) > 0.01 {
		t.Errorf("Monte-Carlo %v vs exact %v", mc, exact)
	}
}
